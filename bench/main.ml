(* Benchmark harness: regenerates every table of the paper's evaluation
   section (printed as ASCII tables with the paper's own ratios alongside),
   runs the ablation benches DESIGN.md lists, and finishes with a bechamel
   micro-benchmark per table kernel.

     dune exec bench/main.exe            # full pass (FBP_BENCH_SCALE=2)
     FBP_BENCH_QUICK=1 dune exec bench/main.exe   # small subset

   Absolute numbers differ from the paper (synthetic scaled instances, one
   container instead of an 8-CPU Xeon); the ratios are the reproduction
   targets — see EXPERIMENTS.md. *)

let quick () = Sys.getenv_opt "FBP_BENCH_QUICK" <> None

let print_table t =
  print_string (Fbp_util.Table.render t);
  print_newline ()

let section title =
  Printf.printf "\n==================== %s ====================\n\n%!" title

(* ------------------------------------------------------------ ablations *)

let ablation_table () =
  let t =
    Fbp_util.Table.create
      ~title:
        "ABLATIONS (design `rabe`, no movebounds unless stated): design choices from DESIGN.md"
      ~header:[ "variant"; "HPWL"; "global time"; "notes" ]
      ~aligns:[ Fbp_util.Table.Left; Fbp_util.Table.Right; Fbp_util.Table.Right; Fbp_util.Table.Left ]
      ()
  in
  let spec = Option.get (Fbp_workloads.Designs.find_spec "rabe") in
  let d = Fbp_workloads.Designs.instantiate spec in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let run name config notes =
    match Fbp_workloads.Runner.run_fbp ~config inst with
    | Error e -> Fbp_util.Table.add_row t [ name; "error: " ^ Fbp_resilience.Fbp_error.to_string e; "-"; notes ]
    | Ok m ->
      Fbp_util.Table.add_row t
        [
          name;
          Printf.sprintf "%.1fk" (m.Fbp_workloads.Runner.hpwl /. 1e3);
          Fbp_util.Duration.pretty m.Fbp_workloads.Runner.global_time;
          notes;
        ]
  in
  run "fbp (default)" Fbp_core.Config.default "local QP on, 1 domain";
  run "fbp, no local QP"
    { Fbp_core.Config.default with local_qp = false }
    "realization cost = plain movement penalty";
  run "fbp, 4 domains"
    { Fbp_core.Config.default with domains = 4 }
    "deterministic parallel realization";
  run "fbp, coarse stop"
    { Fbp_core.Config.default with min_window_rows = 10.0 }
    "refinement stops early";
  (* BestChoice clustering (the paper's setup: ratio 5): cluster, place the
     coarse netlist, expand, then refine flat *)
  (let t0 = Fbp_util.Timer.now () in
   let nl = d.Fbp_netlist.Design.netlist in
   let cl = Fbp_netlist.Clustering.best_choice ~ratio:5.0 nl in
   let coarse_design =
     { d with
       Fbp_netlist.Design.netlist = cl.Fbp_netlist.Clustering.coarse;
       initial =
         Fbp_netlist.Clustering.coarse_placement cl nl d.Fbp_netlist.Design.initial }
   in
   match Fbp_core.Placer.place (Fbp_movebound.Instance.unconstrained coarse_design) with
   | Error e -> Fbp_util.Table.add_row t [ "fbp + BestChoice r=5"; "error: " ^ Fbp_resilience.Fbp_error.to_string e; "-"; "" ]
   | Ok coarse_rep ->
     let expanded = Fbp_netlist.Placement.create (Fbp_netlist.Netlist.n_cells nl) in
     Fbp_netlist.Clustering.expand cl coarse_rep.Fbp_core.Placer.placement expanded;
     let flat_design = { d with Fbp_netlist.Design.initial = expanded } in
     (match Fbp_workloads.Runner.run_fbp
              (Fbp_movebound.Instance.unconstrained flat_design) with
      | Error e ->
        Fbp_util.Table.add_row t [ "fbp + BestChoice r=5"; "error: " ^ Fbp_resilience.Fbp_error.to_string e; "-"; "" ]
      | Ok m ->
        Fbp_util.Table.add_row t
          [
            "fbp + BestChoice r=5";
            Printf.sprintf "%.1fk" (m.Fbp_workloads.Runner.hpwl /. 1e3);
            Fbp_util.Duration.pretty (Fbp_util.Timer.now () -. t0);
            Printf.sprintf "%d coarse cells seed the flat pass"
              (Fbp_netlist.Netlist.n_cells cl.Fbp_netlist.Clustering.coarse);
          ]));
  (* Brenner-Vygen-style flow legalizer vs the default Tetris/interval one *)
  (match Fbp_core.Placer.place inst with
   | Error e -> Fbp_util.Table.add_row t [ "fbp + flow legalizer"; "error: " ^ Fbp_resilience.Fbp_error.to_string e; "-"; "" ]
   | Ok rep ->
     let t0 = Fbp_util.Timer.now () in
     let pos = Fbp_netlist.Placement.copy rep.Fbp_core.Placer.placement in
     let st = Fbp_legalize.Flow_legalizer.run inst rep.Fbp_core.Placer.regions pos in
     Fbp_util.Table.add_row t
       [
         "fbp + flow legalizer [6]";
         Printf.sprintf "%.1fk" (Fbp_netlist.Hpwl.total d.Fbp_netlist.Design.netlist pos /. 1e3);
         Fbp_util.Duration.pretty (Fbp_util.Timer.now () -. t0);
         Printf.sprintf "avg displacement %.2f rows (Tetris default shown above)"
           st.Fbp_legalize.Flow_legalizer.avg_displacement;
       ]);
  (* recursive-partitioning baseline (global HPWL, pre-legalization) *)
  (match Fbp_baselines.Recursive.place inst with
   | Error e -> Fbp_util.Table.add_row t [ "recursive 2x2 (old)"; "error: " ^ e; "-"; "" ]
   | Ok r ->
     Fbp_util.Table.add_row t
       [
         "recursive 2x2 (old)";
         Printf.sprintf "%.1fk (global)" (r.Fbp_baselines.Recursive.hpwl /. 1e3);
         Fbp_util.Duration.pretty r.Fbp_baselines.Recursive.global_time;
         Printf.sprintf "%d local capacity overruns (the Section-IV drawback)"
           r.Fbp_baselines.Recursive.overflow_events;
       ]);
  print_table t

(* --------------------------------------------------------- parallel scan *)

let parallel_table () =
  let t =
    Fbp_util.Table.create
      ~title:"PARALLEL REALIZATION (design `max`): wall time vs domains (paper: up to 7.9x with 8 CPUs)"
      ~header:[ "domains"; "realization time"; "speedup"; "identical result" ]
      ()
  in
  let spec = Option.get (Fbp_workloads.Designs.find_spec "max") in
  let d = Fbp_workloads.Designs.instantiate spec in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let run domains =
    match Fbp_core.Placer.place ~config:{ Fbp_core.Config.default with domains } inst with
    | Error e -> failwith (Fbp_resilience.Fbp_error.to_string e)
    | Ok rep ->
      let rt =
        List.fold_left
          (fun a (l : Fbp_core.Placer.level_report) -> a +. l.Fbp_core.Placer.realization_time)
          0.0 rep.Fbp_core.Placer.levels
      in
      (rt, rep.Fbp_core.Placer.placement)
  in
  let base_t, base_p = run 1 in
  List.iter
    (fun domains ->
      let rt, p = run domains in
      let same = p.Fbp_netlist.Placement.x = base_p.Fbp_netlist.Placement.x in
      Fbp_util.Table.add_row t
        [
          string_of_int domains;
          Fbp_util.Duration.pretty rt;
          Printf.sprintf "%.2fx" (base_t /. Float.max 1e-6 rt);
          string_of_bool same;
        ])
    [ 1; 2; 4; 8 ];
  print_table t

(* ------------------------------------------------------------- bechamel *)

let bechamel_suite () =
  let open Bechamel in
  let spec = Option.get (Fbp_workloads.Designs.find_spec "dagmar") in
  let d = Fbp_workloads.Designs.instantiate spec in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let regions =
    Fbp_movebound.Regions.decompose ~chip:d.Fbp_netlist.Design.chip [||]
  in
  let density = Fbp_core.Density.create d in
  let grid =
    Fbp_core.Grid.create ~chip:d.Fbp_netlist.Design.chip ~nx:8 ~ny:8 ~regions ~density ()
  in
  let pos = d.Fbp_netlist.Design.initial in
  let nl = d.Fbp_netlist.Design.netlist in
  let tests =
    [
      (* t1: the FBP partitioning kernel (model build + MinCostFlow) *)
      Test.make ~name:"t1/fbp-flow-model+mcf"
        (Staged.stage (fun () ->
             let model = Fbp_core.Fbp_model.build inst regions grid pos in
             ignore (Fbp_core.Fbp_model.solve model)));
      (* t2: one global QP solve (the per-level workhorse of Table II runs) *)
      Test.make ~name:"t2/global-qp"
        (Staged.stage (fun () ->
             let p = Fbp_netlist.Placement.copy pos in
             ignore
               (Fbp_core.Qp.solve_global Fbp_core.Config.default nl p
                  ~anchor:(fun _ -> None) ())));
      (* t3: region decomposition of a 16-movebound layout *)
      Test.make ~name:"t3/region-decomposition"
        (Staged.stage (fun () ->
             let rng = Fbp_util.Rng.create 5 in
             let rects =
               List.init 16 (fun i ->
                   ignore i;
                   let x0 = Fbp_util.Rng.range rng 0.0 80.0 in
                   let y0 = Fbp_util.Rng.range rng 0.0 80.0 in
                   Fbp_geometry.Rect.of_corner ~x:x0 ~y:y0 ~w:20.0 ~h:20.0)
             in
             let mbs =
               Array.of_list
                 (List.mapi
                    (fun i r ->
                      Fbp_movebound.Movebound.make ~id:i ~name:(string_of_int i)
                        ~kind:Fbp_movebound.Movebound.Inclusive [ r ])
                    rects)
             in
             ignore
               (Fbp_movebound.Regions.decompose
                  ~chip:(Fbp_geometry.Rect.of_corner ~x:0.0 ~y:0.0 ~w:100.0 ~h:100.0)
                  mbs)));
      (* t4/t5: movebound feasibility check (Theorem 2 kernel) *)
      Test.make ~name:"t4/feasibility-maxflow"
        (Staged.stage (fun () ->
             ignore (Fbp_movebound.Feasibility.check_instance inst)));
      (* t6: legalization *)
      Test.make ~name:"t6/legalization"
        (Staged.stage (fun () ->
             let p = Fbp_netlist.Placement.copy pos in
             ignore
               (Fbp_legalize.Legalizer.run inst regions p
                  ~piece_of_cell:(Array.make (Fbp_netlist.Netlist.n_cells nl) (-1))
                  ~grid:None)));
      (* t7: HPWL + density scoring (contest formula kernel) *)
      Test.make ~name:"t7/hpwl+density-score"
        (Staged.stage (fun () ->
             ignore (Fbp_workloads.Ispd.score d pos ~time:1.0 ~reference_time:1.0)));
    ]
  in
  Printf.printf "bechamel micro-benchmarks (ns/run, monotonic clock):\n";
  List.iter
    (fun test ->
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let res = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-28s %12.0f ns/run\n%!" name est
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        res)
    tests

(* ------------------------------------------------ machine-readable JSON *)

(* BENCH_pr3.json: the headline numbers of a bench run in machine-readable
   form — per-design HPWL and wall-time split (with the per-phase QP / flow /
   realization breakdown summed over levels) plus the full observability
   metrics (counters and histogram summaries).  check.sh diffs the key set.
   FBP_BENCH_SMOKE=1 emits only this file (flagged "smoke":true) and exits;
   FBP_BENCH_JSON overrides the output path. *)
let emit_bench_json () =
  let path =
    match Sys.getenv_opt "FBP_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_pr3.json"
  in
  Fbp_obs.Obs.reset ();
  Fbp_obs.Obs.enable ();
  let one name =
    let spec = Option.get (Fbp_workloads.Designs.find_spec name) in
    let d = Fbp_workloads.Designs.instantiate spec in
    let inst = Fbp_movebound.Instance.unconstrained d in
    match Fbp_workloads.Runner.run_fbp inst with
    | Error e ->
      Printf.sprintf "    {\"name\":%S,\"error\":%S}" name
        (Fbp_resilience.Fbp_error.to_string e)
    | Ok m ->
      let qp, flow, real =
        List.fold_left
          (fun (q, f, r) (l : Fbp_core.Placer.level_report) ->
            ( q +. l.Fbp_core.Placer.qp_time,
              f +. l.Fbp_core.Placer.flow_time,
              r +. l.Fbp_core.Placer.realization_time ))
          (0.0, 0.0, 0.0) m.Fbp_workloads.Runner.levels
      in
      Printf.sprintf
        "    {\"name\":%S,\"hpwl\":%.6e,\"total_time\":%.6f,\
         \"global_time\":%.6f,\"legalize_time\":%.6f,\
         \"phase_times\":{\"qp\":%.6f,\"flow\":%.6f,\"realization\":%.6f}}"
        name m.Fbp_workloads.Runner.hpwl m.Fbp_workloads.Runner.total_time
        m.Fbp_workloads.Runner.global_time m.Fbp_workloads.Runner.legalize_time
        qp flow real
  in
  let designs = List.map one [ "rabe"; "ashraf" ] in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\"schema\":\"fbp-bench-pr3\",\n\"smoke\":%b,\n\"designs\":[\n%s\n],\n\"metrics\":%s}\n"
    (Sys.getenv_opt "FBP_BENCH_SMOKE" <> None)
    (String.concat ",\n" designs)
    (Fbp_obs.Obs.metrics_json ());
  close_out oc;
  Fbp_obs.Obs.disable ();
  Printf.printf "wrote %s\n%!" path

(* BENCH_pr4.json: sanitizer-mode overhead.  Each design is placed with the
   flow-invariant sanitizer off and on (best of [reps] runs to damp timer
   noise); the JSON records both times, the overhead percentage, the number
   of checks executed, and whether the sanitized run reproduced the same
   HPWL (it must: checks only read solver state).  Also measures the
   disabled-check fast path — one atomic read — in ns/call, which is the
   cost every production run pays per instrumented site.
   FBP_BENCH_SMOKE=1 emits with "smoke":true; FBP_BENCH_JSON4 overrides the
   output path. *)
let emit_sanitizer_json () =
  let path =
    match Sys.getenv_opt "FBP_BENCH_JSON4" with
    | Some p -> p
    | None -> "BENCH_pr4.json"
  in
  let reps =
    match Sys.getenv_opt "FBP_BENCH_REPS" with
    | Some r -> (try max 1 (int_of_string r) with Failure _ -> 3)
    | None -> if Sys.getenv_opt "FBP_BENCH_SMOKE" <> None then 2 else 3
  in
  let place name =
    let spec = Option.get (Fbp_workloads.Designs.find_spec name) in
    let d = Fbp_workloads.Designs.instantiate spec in
    let inst = Fbp_movebound.Instance.unconstrained d in
    match Fbp_workloads.Runner.run_fbp inst with
    | Error e -> Error (Fbp_resilience.Fbp_error.to_string e)
    | Ok m -> Ok (m.Fbp_workloads.Runner.hpwl, m.Fbp_workloads.Runner.total_time)
  in
  let best name =
    let rec go best_time hpwl r =
      if r = 0 then Ok (hpwl, best_time)
      else
        match place name with
        | Error e -> Error e
        | Ok (h, t) -> go (Float.min best_time t) h (r - 1)
    in
    go infinity nan reps
  in
  let one name =
    Fbp_resilience.Sanitize.set_enabled false;
    let off = best name in
    Fbp_resilience.Sanitize.set_enabled true;
    let c0 = Fbp_resilience.Sanitize.checks_run () in
    let on_ = best name in
    let checks = Fbp_resilience.Sanitize.checks_run () - c0 in
    Fbp_resilience.Sanitize.set_enabled false;
    match (off, on_) with
    | Error e, _ | _, Error e -> Printf.sprintf "    {\"name\":%S,\"error\":%S}" name e
    | Ok (h_off, t_off), Ok (h_on, t_on) ->
      let overhead = 100.0 *. ((t_on -. t_off) /. t_off) in
      Printf.sprintf
        "    {\"name\":%S,\"off_time\":%.6f,\"on_time\":%.6f,\
         \"overhead_pct\":%.2f,\"checks_run\":%d,\"hpwl\":%.6e,\
         \"hpwl_match\":%b}"
        name t_off t_on overhead (checks / reps) h_off
        (Float.abs (h_on -. h_off) <= 1e-9 *. Float.max 1.0 (Float.abs h_off))
  in
  let names = [ "rabe"; "ashraf" ] in
  let designs = List.map one names in
  (* disabled fast path: ns per check call when the sanitizer is off *)
  let disabled_ns =
    Fbp_resilience.Sanitize.set_enabled false;
    let n = 2_000_000 in
    let t0 = Fbp_util.Timer.now () in
    for _ = 1 to n do
      Fbp_resilience.Sanitize.check ~site:"bench" ~invariant:"noop" (fun () ->
          Ok ())
    done;
    1e9 *. (Fbp_util.Timer.now () -. t0) /. float_of_int n
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\"schema\":\"fbp-bench-pr4\",\n\"smoke\":%b,\n\"sanitizer\":{\n\
     \"designs\":[\n%s\n],\n\"disabled_check_ns\":%.2f\n}\n}\n"
    (Sys.getenv_opt "FBP_BENCH_SMOKE" <> None)
    (String.concat ",\n" designs)
    disabled_ns;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* BENCH_pr5.json: the PR 5 performance-architecture numbers.  Four
   sections, all measured on identical inputs:

   - "spmv" / "cg": the new pool-backed kernels against [Seed_kernels]
     (the pre-PR5 implementations preserved verbatim as a baseline), on
     the x-axis QP system of a real design, with pinned iteration counts
     for CG so both sides do exactly the same mathematical work;
   - "assemble": the triplet-stream -> CSR path three ways (seed list
     builder + Hashtbl freeze; new unboxed builder + stamp freeze; new
     builder + symbolic [refreeze]), both axis systems per round exactly
     like [Qp.solve_global], plus the end-to-end [Netmodel.assemble]
     fresh-vs-cached times on the real net model;
   - "scaling": full placer runs at 1/2/4/8 domains with per-phase times
     and bitwise HPWL equality against the 1-domain run ("hpwl_match" —
     check.sh fails the build if any entry is false);
   - "qp_phase": the composite global-QP round (two assemblies + x/y CG)
     seed vs new-at-8-domains, the PR's headline speedup.

   FBP_BENCH_JSON5 overrides the output path; FBP_BENCH_SMOKE shrinks
   repetition counts and uses the small kernel design. *)
let emit_parallel_json () =
  let path =
    match Sys.getenv_opt "FBP_BENCH_JSON5" with
    | Some p -> p
    | None -> "BENCH_pr5.json"
  in
  let smoke = Sys.getenv_opt "FBP_BENCH_SMOKE" <> None in
  let time reps f =
    f ();  (* warm-up: faults, lazy pool spawns, JIT-free but cache-warm *)
    let t0 = Fbp_util.Timer.now () in
    for _ = 1 to reps do
      f ()
    done;
    (Fbp_util.Timer.now () -. t0) /. float_of_int reps
  in
  (* ---- the QP systems of a real design ---- *)
  let kernel_design = if smoke then "rabe" else "max" in
  let spec = Option.get (Fbp_workloads.Designs.find_spec kernel_design) in
  let d = Fbp_workloads.Designs.instantiate spec in
  let nl = d.Fbp_netlist.Design.netlist in
  let pos = Fbp_netlist.Placement.copy d.Fbp_netlist.Design.initial in
  let cfg = Fbp_core.Config.default in
  let center = Fbp_geometry.Rect.center d.Fbp_netlist.Design.chip in
  let movable = Fbp_core.Qp.all_movable nl in
  let anchor _ =
    Some (1e-6, center.Fbp_geometry.Point.x, 1e-6, center.Fbp_geometry.Point.y)
  in
  let assemble ?cache () =
    Fbp_core.Netmodel.assemble nl pos ?cache ~movable
      ~clique_max_degree:cfg.Fbp_core.Config.clique_max_degree ~anchor ()
  in
  let sys = assemble () in
  let nv = sys.Fbp_core.Netmodel.n_vars in
  let ax = sys.Fbp_core.Netmodel.ax and ay = sys.Fbp_core.Netmodel.ay in
  let bxr = sys.Fbp_core.Netmodel.bx and byr = sys.Fbp_core.Netmodel.by in
  (* replay streams: the frozen entries of each axis system, fed through
     every assembly variant so all sides consume the identical triplets *)
  let stream_of m =
    let n = Fbp_linalg.Csr.nnz m in
    let rows = Array.make n 0 and cols = Array.make n 0 in
    let vals = Array.make n 0.0 in
    let i = ref 0 in
    Fbp_linalg.Csr.iter_entries m (fun r c v ->
        rows.(!i) <- r;
        cols.(!i) <- c;
        vals.(!i) <- v;
        incr i);
    (rows, cols, vals)
  in
  let stream_x = stream_of ax and stream_y = stream_of ay in
  let replay_seed (rows, cols, vals) =
    let b = Seed_kernels.SCsr.builder nv in
    Array.iteri
      (fun k r -> Seed_kernels.SCsr.add b ~row:r ~col:cols.(k) vals.(k))
      rows;
    Seed_kernels.SCsr.freeze b
  in
  let bldx = Fbp_linalg.Csr.builder nv and bldy = Fbp_linalg.Csr.builder nv in
  let replay_new b (rows, cols, vals) =
    Fbp_linalg.Csr.reset b;
    Array.iteri (fun k r -> Fbp_linalg.Csr.add b ~row:r ~col:cols.(k) vals.(k)) rows;
    b
  in
  let sa_x = replay_seed stream_x and sa_y = replay_seed stream_y in
  (* ---- spmv ---- *)
  let xvec = Array.init nv (fun i -> float_of_int (i mod 17) /. 17.0) in
  let out = Array.make nv 0.0 in
  let spmv_reps = if smoke then 100 else 400 in
  let spmv_seed_s = time spmv_reps (fun () -> Seed_kernels.SCsr.mul sa_x xvec out) in
  let spmv_new_s = time spmv_reps (fun () -> Fbp_linalg.Csr.mul ax xvec out) in
  (* ---- cg (pinned iteration count = what the placer tolerance needs) ---- *)
  let probe =
    Fbp_linalg.Cg.solve ~record:false ~max_iter:cfg.Fbp_core.Config.cg_max_iter
      ~tol:cfg.Fbp_core.Config.cg_tol ax bxr (Array.make nv 0.0)
  in
  let k_iters = max 20 probe.Fbp_linalg.Cg.iterations in
  let cg_reps = if smoke then 3 else 6 in
  let xwork = Array.make nv 0.0 in
  let seed_cg a b =
    Array.fill xwork 0 nv 0.0;
    ignore (Seed_kernels.scg_solve ~max_iter:k_iters ~tol:0.0 a b xwork)
  in
  let new_cg a b =
    Array.fill xwork 0 nv 0.0;
    ignore
      (Fbp_linalg.Cg.solve ~record:false ~max_iter:k_iters ~tol:0.0 a b xwork)
  in
  let cg_seed_x_s = time cg_reps (fun () -> seed_cg sa_x bxr) in
  let cg_seed_y_s = time cg_reps (fun () -> seed_cg sa_y byr) in
  let cg_new_x_s = time cg_reps (fun () -> new_cg ax bxr) in
  let cg_new_y_s = time cg_reps (fun () -> new_cg ay byr) in
  let seed_iters, _ =
    Seed_kernels.scg_solve ~max_iter:k_iters ~tol:0.0 sa_x bxr
      (Array.make nv 0.0)
  in
  let new_iters =
    (Fbp_linalg.Cg.solve ~record:false ~max_iter:k_iters ~tol:0.0 ax bxr
       (Array.make nv 0.0))
      .Fbp_linalg.Cg.iterations
  in
  (* ---- assembly: stream -> CSR, both axes per round ---- *)
  let rounds = if smoke then 15 else 40 in
  let asm_seed_s =
    time rounds (fun () ->
        ignore (replay_seed stream_x);
        ignore (replay_seed stream_y))
  in
  let asm_fresh_s =
    time rounds (fun () ->
        ignore (Fbp_linalg.Csr.freeze (replay_new bldx stream_x));
        ignore (Fbp_linalg.Csr.freeze (replay_new bldy stream_y)))
  in
  let _, str_x = Fbp_linalg.Csr.freeze_capture (replay_new bldx stream_x) in
  let _, str_y = Fbp_linalg.Csr.freeze_capture (replay_new bldy stream_y) in
  let refreeze_round () =
    (match Fbp_linalg.Csr.refreeze str_x (replay_new bldx stream_x) with
    | Some _ -> ()
    | None -> failwith "bench: refreeze missed on an identical stream");
    match Fbp_linalg.Csr.refreeze str_y (replay_new bldy stream_y) with
    | Some _ -> ()
    | None -> failwith "bench: refreeze missed on an identical stream"
  in
  let asm_cached_s = time rounds refreeze_round in
  (* ---- assembly: end-to-end Netmodel.assemble, fresh vs cached ---- *)
  Fbp_obs.Obs.reset ();
  Fbp_obs.Obs.enable ();
  let nm_rounds = if smoke then 5 else 12 in
  let nm_fresh_s = time nm_rounds (fun () -> ignore (assemble ())) in
  let cache = Fbp_core.Netmodel.create_cache () in
  ignore (assemble ~cache ());
  let nm_cached_s = time nm_rounds (fun () -> ignore (assemble ~cache ())) in
  let refreeze_hits = Fbp_obs.Obs.counter_value "netmodel.refreeze_hits" in
  Fbp_obs.Obs.disable ();
  (* ---- composite QP round, seed sequential vs new at 8 domains ---- *)
  let prev_domains = Fbp_util.Pool.get_default_domains () in
  Fbp_util.Pool.set_default_domains 8;
  let asm_cached8_s = time rounds refreeze_round in
  let cg_new8_x_s = time cg_reps (fun () -> new_cg ax bxr) in
  let cg_new8_y_s = time cg_reps (fun () -> new_cg ay byr) in
  Fbp_util.Pool.set_default_domains prev_domains;
  let qp_seed_s = asm_seed_s +. cg_seed_x_s +. cg_seed_y_s in
  let qp_new8_s = asm_cached8_s +. cg_new8_x_s +. cg_new8_y_s in
  (* ---- scaling sweep: full placer, bitwise HPWL equality ---- *)
  let sspec = Option.get (Fbp_workloads.Designs.find_spec "rabe") in
  let sinst =
    Fbp_movebound.Instance.unconstrained (Fbp_workloads.Designs.instantiate sspec)
  in
  let run_scale domains =
    Fbp_util.Pool.set_default_domains domains;
    let r =
      Fbp_workloads.Runner.run_fbp
        ~config:{ Fbp_core.Config.default with domains }
        sinst
    in
    Fbp_util.Pool.set_default_domains prev_domains;
    match r with
    | Error e -> Error (Fbp_resilience.Fbp_error.to_string e)
    | Ok m ->
      let qp, real =
        List.fold_left
          (fun (q, rr) (l : Fbp_core.Placer.level_report) ->
            (q +. l.Fbp_core.Placer.qp_time, rr +. l.Fbp_core.Placer.realization_time))
          (0.0, 0.0) m.Fbp_workloads.Runner.levels
      in
      Ok (m.Fbp_workloads.Runner.hpwl, qp, real, m.Fbp_workloads.Runner.global_time)
  in
  (* steady-state sweep: spawn the workers and run one discarded warmup
     first, so per-domain entries no longer fold pool cold-start into
     their timings (the PR5 sweep did — it spawned 7 workers inside the
     timed entries) *)
  (* steady-state sweep: pre-spawn the (hardware-clamped) workers and run
     one discarded warmup so per-domain entries no longer fold pool
     cold-start into their timings (the PR5 sweep did — it spawned its
     workers inside the timed entries) *)
  Fbp_util.Pool.prewarm 8;
  ignore (run_scale 8);
  let base = run_scale 1 in
  let all_match = ref true in
  let scaling_rows =
    List.map
      (fun domains ->
        match (run_scale domains, base) with
        | Ok (h, qp, real, g), Ok (h1, _, _, _) ->
          let m = Int64.equal (Int64.bits_of_float h) (Int64.bits_of_float h1) in
          if not m then all_match := false;
          Printf.sprintf
            "    {\"domains\":%d,\"qp_s\":%.6f,\"realization_s\":%.6f,\
             \"global_s\":%.6f,\"hpwl\":%.6e,\"hpwl_match\":%b}"
            domains qp real g h m
        | Error e, _ | _, Error e ->
          all_match := false;
          Printf.sprintf "    {\"domains\":%d,\"error\":%S}" domains e)
      [ 1; 2; 4; 8 ]
  in
  let sp a b = a /. Float.max 1e-12 b in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
     \"schema\":\"fbp-bench-pr5\",\n\
     \"smoke\":%b,\n\
     \"kernel_design\":%S,\n\
     \"vars\":%d,\n\
     \"nnz_x\":%d,\n\
     \"spmv\":{\"reps\":%d,\"seed_s\":%.6e,\"new_s\":%.6e,\"speedup\":%.2f},\n\
     \"cg\":{\"pinned_iters\":%d,\"seed_iters\":%d,\"new_iters\":%d,\
     \"seed_x_s\":%.6e,\"new_x_s\":%.6e,\"seed_y_s\":%.6e,\"new_y_s\":%.6e,\
     \"speedup\":%.2f},\n\
     \"assemble\":{\"rounds\":%d,\"seed_s\":%.6e,\"fresh_s\":%.6e,\
     \"cached_s\":%.6e,\"reuse_speedup\":%.2f,\"vs_seed_speedup\":%.2f,\
     \"netmodel_fresh_s\":%.6e,\"netmodel_cached_s\":%.6e,\
     \"netmodel_reuse_speedup\":%.2f,\"refreeze_hits\":%d},\n\
     \"qp_phase\":{\"seed_s\":%.6e,\"new_domains8_s\":%.6e,\
     \"qp_speedup_8\":%.2f},\n\
     \"scaling\":[\n%s\n],\n\
     \"workers_spawned\":%d,\n\
     \"hpwl_match\":%b\n\
     }\n"
    smoke kernel_design nv (Fbp_linalg.Csr.nnz ax) spmv_reps spmv_seed_s
    spmv_new_s
    (sp spmv_seed_s spmv_new_s)
    k_iters seed_iters new_iters cg_seed_x_s cg_new_x_s cg_seed_y_s cg_new_y_s
    (sp (cg_seed_x_s +. cg_seed_y_s) (cg_new_x_s +. cg_new_y_s))
    rounds asm_seed_s asm_fresh_s asm_cached_s
    (sp asm_fresh_s asm_cached_s)
    (sp asm_seed_s asm_cached_s)
    nm_fresh_s nm_cached_s
    (sp nm_fresh_s nm_cached_s)
    refreeze_hits qp_seed_s qp_new8_s
    (sp qp_seed_s qp_new8_s)
    (String.concat ",\n" scaling_rows)
    (Fbp_util.Pool.n_workers_spawned ())
    !all_match;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* BENCH_pr7.json: the realization anti-scaling fix gate.  A 1/2/4/8-domain
   sweep of the full placer on the design where PR5 regressed ("rabe"),
   measured steady-state: workers pre-warmed, one discarded warmup run per
   domain count, best-of-[reps] wall clocks.  Every entry must be bitwise
   HPWL-identical to the 1-domain run, and on real multi-core hardware
   8-domain realization_s/global_s must beat 1-domain (check.sh enforces
   both; the time gate only when >= 4 CPUs are present).

   FBP_BENCH_JSON7 overrides the output path; FBP_BENCH_SMOKE shrinks the
   repetition count. *)
let emit_realization_scaling_json () =
  let path =
    match Sys.getenv_opt "FBP_BENCH_JSON7" with
    | Some p -> p
    | None -> "BENCH_pr7.json"
  in
  let smoke = Sys.getenv_opt "FBP_BENCH_SMOKE" <> None in
  let reps = if smoke then 5 else 7 in
  let spec = Option.get (Fbp_workloads.Designs.find_spec "rabe") in
  let inst =
    Fbp_movebound.Instance.unconstrained
      (Fbp_workloads.Designs.instantiate spec)
  in
  Fbp_util.Pool.prewarm 8;
  let prev_domains = Fbp_util.Pool.get_default_domains () in
  let d0_disp = Fbp_util.Pool.n_dispatches () in
  let run_once domains =
    Fbp_util.Pool.set_default_domains domains;
    let r =
      Fbp_workloads.Runner.run_fbp
        ~config:{ Fbp_core.Config.default with domains }
        inst
    in
    Fbp_util.Pool.set_default_domains prev_domains;
    match r with
    | Error e -> Error (Fbp_resilience.Fbp_error.to_string e)
    | Ok m ->
      let qp, real =
        List.fold_left
          (fun (q, rr) (l : Fbp_core.Placer.level_report) ->
            ( q +. l.Fbp_core.Placer.qp_time,
              rr +. l.Fbp_core.Placer.realization_time ))
          (0.0, 0.0) m.Fbp_workloads.Runner.levels
      in
      Ok
        ( m.Fbp_workloads.Runner.hpwl,
          qp,
          real,
          m.Fbp_workloads.Runner.global_time )
  in
  let run_best domains =
    match run_once domains with
    | Error e -> Error e  (* warmup round, discarded on success *)
    | Ok _ ->
      let rec go i acc =
        if i = 0 then acc
        else
          match (run_once domains, acc) with
          | (Error _ as e), _ -> e
          | Ok (h, q, r, g), Ok (_, _, _, gb) when g < gb ->
            go (i - 1) (Ok (h, q, r, g))
          | Ok _, acc -> go (i - 1) acc
      in
      (match run_once domains with
      | Error e -> Error e
      | Ok r0 -> go (reps - 1) (Ok r0))
  in
  let results = List.map (fun d -> (d, run_best d)) [ 1; 2; 4; 8 ] in
  let result_for domains =
    let _, r = List.find (fun (d, _) -> Int.equal d domains) results in
    r
  in
  let base = result_for 1 in
  let all_match = ref true in
  let rows =
    List.map
      (fun (domains, r) ->
        match (r, base) with
        | Ok (h, qp, real, g), Ok (h1, _, _, _) ->
          let m =
            Int64.equal (Int64.bits_of_float h) (Int64.bits_of_float h1)
          in
          if not m then all_match := false;
          Printf.sprintf
            "    {\"domains\":%d,\"qp_s\":%.6f,\"realization_s\":%.6f,\
             \"global_s\":%.6f,\"hpwl\":%.6e,\"hpwl_match\":%b}"
            domains qp real g h m
        | Error e, _ | _, Error e ->
          all_match := false;
          Printf.sprintf "    {\"domains\":%d,\"error\":%S}" domains e)
      results
  in
  let speedup_real, speedup_global =
    match (base, result_for 8) with
    | Ok (_, _, r1, g1), Ok (_, _, r8, g8) ->
      (r1 /. Float.max 1e-12 r8, g1 /. Float.max 1e-12 g8)
    | _ -> (0.0, 0.0)
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
     \"schema\":\"fbp-bench-pr7\",\n\
     \"smoke\":%b,\n\
     \"design\":\"rabe\",\n\
     \"reps\":%d,\n\
     \"hardware_domains\":%d,\n\
     \"scaling\":[\n\
     %s\n\
     ],\n\
     \"speedup_8\":{\"realization\":%.3f,\"global\":%.3f},\n\
     \"pool\":{\"workers_spawned\":%d,\"dispatches\":%d},\n\
     \"hpwl_match\":%b\n\
     }\n"
    smoke reps Fbp_util.Pool.hardware_domains
    (String.concat ",\n" rows)
    speedup_real speedup_global
    (Fbp_util.Pool.n_workers_spawned ())
    (Fbp_util.Pool.n_dispatches () - d0_disp)
    !all_match;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* BENCH_pr8.json: the PR 8 domain-profiler numbers.  The profiler is an
   observer, so the bench measures exactly that claim:

   - "off_time" / "on_time": best-of-reps full placer runs (4 domains, no
     hardware clamp so the helpers exist even on a 1-core container) with
     the profiler disarmed vs armed, same config — "overhead_pct" is the
     armed tax and check.sh gates it below 5%;
   - "hpwl_match": bitwise HPWL equality between the two, the
     observer-property check;
   - "disabled_probe_ns": ns per [Profiler.poll] call when not running —
     the cost every instrumented level boundary pays in production;
   - "sum_consistency": per domain, busy + spin + park + stw must equal
     the wall clock within 5% (the occupancy state machine accounts for
     all time or it is lying);
   - "stw_count"/"events": how much the runtime actually reported.

   FBP_BENCH_JSON8 overrides the output path; FBP_BENCH_SMOKE shrinks the
   repetition count. *)
let emit_profile_json () =
  let path =
    match Sys.getenv_opt "FBP_BENCH_JSON8" with
    | Some p -> p
    | None -> "BENCH_pr8.json"
  in
  let smoke = Sys.getenv_opt "FBP_BENCH_SMOKE" <> None in
  let reps = if smoke then 2 else 4 in
  let spec = Option.get (Fbp_workloads.Designs.find_spec "rabe") in
  let inst =
    Fbp_movebound.Instance.unconstrained
      (Fbp_workloads.Designs.instantiate spec)
  in
  let config = { Fbp_core.Config.default with domains = 4; hw_clamp = false } in
  let place () =
    match Fbp_workloads.Runner.run_fbp ~config inst with
    | Error e -> Error (Fbp_resilience.Fbp_error.to_string e)
    | Ok m ->
      Ok (m.Fbp_workloads.Runner.hpwl, m.Fbp_workloads.Runner.global_time)
  in
  let best_off () =
    let rec go best_t h r =
      if r = 0 then Ok (h, best_t)
      else
        match place () with
        | Error e -> Error e
        | Ok (h', t) -> go (Float.min best_t t) h' (r - 1)
    in
    go infinity nan reps
  in
  let best_on () =
    let rec go acc r =
      if r = 0 then acc
      else begin
        Fbp_obs.Profiler.start ();
        let res = place () in
        let s = Fbp_obs.Profiler.stop () in
        match (res, acc) with
        | Error e, _ -> Error e
        | Ok (h, t), Ok (_, bt, _) when t >= bt -> go (Ok (h, bt, s)) (r - 1)
        | Ok (h, t), _ -> go (Ok (h, t, s)) (r - 1)
      end
    in
    go (Error "unreached") reps
  in
  (* one discarded warmup per mode: the first armed run pays the one-time
     runtime-events ring creation, which is setup, not per-run overhead *)
  ignore (place ());
  let off = best_off () in
  Fbp_obs.Profiler.start ();
  ignore (place ());
  ignore (Fbp_obs.Profiler.stop ());
  let on_ = best_on () in
  (* disabled fast path: a poll at a level boundary when nothing is armed *)
  let disabled_probe_ns =
    let n = 2_000_000 in
    let t0 = Fbp_util.Timer.now () in
    for _ = 1 to n do
      Fbp_obs.Profiler.poll ()
    done;
    1e9 *. (Fbp_util.Timer.now () -. t0) /. float_of_int n
  in
  let body =
    match (off, on_) with
    | Error e, _ | _, Error e -> Printf.sprintf "\"error\":%S" e
    | Ok (h_off, t_off), Ok (h_on, t_on, s) ->
      let module P = Fbp_obs.Profiler in
      let overhead = 100.0 *. ((t_on -. t_off) /. Float.max 1e-12 t_off) in
      let sum_consistency =
        s.P.s_domains <> []
        && List.for_all
             (fun (d : P.domain_summary) ->
               let acc =
                 d.P.d_busy_us +. d.P.d_spin_us +. d.P.d_park_us
                 +. d.P.d_stw_us
               in
               Float.abs (acc -. d.P.d_wall_us) <= 0.05 *. d.P.d_wall_us)
             s.P.s_domains
      in
      let hpwl_match =
        Int64.equal (Int64.bits_of_float h_off) (Int64.bits_of_float h_on)
      in
      Printf.sprintf
        "\"design\":\"rabe\",\n\
         \"reps\":%d,\n\
         \"domains\":4,\n\
         \"off_time\":%.6f,\n\
         \"on_time\":%.6f,\n\
         \"overhead_pct\":%.2f,\n\
         \"disabled_probe_ns\":%.2f,\n\
         \"available\":%b,\n\
         \"events\":%d,\n\
         \"lost\":%d,\n\
         \"stw_count\":%d,\n\
         \"minor_us\":%.1f,\n\
         \"major_us\":%.1f,\n\
         \"sum_consistency\":%b,\n\
         \"hpwl\":%.6e,\n\
         \"hpwl_match\":%b"
        reps t_off t_on overhead disabled_probe_ns s.P.s_available
        s.P.s_events s.P.s_lost s.P.s_stw_count s.P.s_minor_us s.P.s_major_us
        sum_consistency h_off hpwl_match
  in
  let oc = open_out path in
  Printf.fprintf oc "{\n\"schema\":\"fbp-bench-pr8\",\n\"smoke\":%b,\n%s\n}\n"
    smoke body;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* BENCH_trajectory.json: fold the committed per-PR BENCH artifacts into
   one per-PR performance trajectory (1-domain qp / realization / global
   times where each schema provides them).  Machines differ across PRs, so
   the artifact is a trend line, not a benchmark.  Run as
   [bench/main.exe trajectory]; FBP_BENCH_JSONT overrides the output path,
   FBP_BENCH_TRAJ_DIR the directory scanned. *)
let emit_trajectory () =
  let module J = Fbp_obs.Obs.Json in
  let out =
    match Sys.getenv_opt "FBP_BENCH_JSONT" with
    | Some p -> p
    | None -> "BENCH_trajectory.json"
  in
  let dir =
    match Sys.getenv_opt "FBP_BENCH_TRAJ_DIR" with Some d -> d | None -> "."
  in
  let pr_of_file f =
    let pre = "BENCH_pr" and suf = ".json" in
    let np = String.length pre and ns = String.length suf in
    if
      String.length f > np + ns
      && String.sub f 0 np = pre
      && String.sub f (String.length f - ns) ns = suf
    then int_of_string_opt (String.sub f np (String.length f - np - ns))
    else None
  in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun f ->
           match pr_of_file f with
           | Some pr -> Some (pr, Filename.concat dir f)
           | None -> None)
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let read_json path =
    let ic = open_in_bin path in
    let doc =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match J.parse doc with Ok j -> Some j | Error _ -> None
  in
  let num k o = match J.member k o with Some (J.Num f) -> Some f | _ -> None in
  (* per-schema extraction: every artifact names its own shape, so the
     folder knows each one rather than guessing *)
  let extract j =
    let from_scaling () =
      match J.member "scaling" j with
      | Some (J.Arr (row :: _)) ->
        Some (num "qp_s" row, num "realization_s" row, num "global_s" row)
      | _ -> None
    in
    let from_designs () =
      match J.member "designs" j with
      | Some (J.Arr (row :: _)) ->
        let qp, real =
          match J.member "phase_times" row with
          | Some pt -> (num "qp" pt, num "realization" pt)
          | None -> (None, None)
        in
        Some (qp, real, num "global_time" row)
      | _ -> None
    in
    let from_sanitizer () =
      match J.member "sanitizer" j with
      | Some s ->
        (match J.member "designs" s with
         | Some (J.Arr (row :: _)) -> Some (None, None, num "off_time" row)
         | _ -> None)
      | None -> None
    in
    let from_profile () =
      match num "off_time" j with
      | Some g -> Some (None, None, Some g)
      | None -> None
    in
    match from_scaling () with
    | Some r -> Some r
    | None ->
      (match from_designs () with
       | Some r -> Some r
       | None ->
         (match from_sanitizer () with
          | Some r -> Some r
          | None -> from_profile ()))
  in
  let entries =
    List.filter_map
      (fun (pr, path) ->
        match read_json path with
        | None ->
          Printf.eprintf "trajectory: skipping unparseable %s\n" path;
          None
        | Some j ->
          (match extract j with
           | None ->
             Printf.eprintf "trajectory: no times in %s\n" path;
             None
           | Some (qp, real, global) -> Some (pr, qp, real, global)))
      files
  in
  let field k = function
    | Some v -> Printf.sprintf ",%S:%.6f" k v
    | None -> ""
  in
  let rows =
    List.map
      (fun (pr, qp, real, global) ->
        Printf.sprintf "    {\"pr\":%d%s%s%s}" pr (field "qp_s" qp)
          (field "realization_s" real)
          (field "global_s" global))
      entries
  in
  let globals =
    List.filter_map (fun (_, _, _, g) -> g) entries
  in
  let speedup =
    match globals with
    | first :: _ :: _ ->
      let last = List.nth globals (List.length globals - 1) in
      Printf.sprintf ",\n\"global_first_over_last\":%.3f"
        (first /. Float.max 1e-12 last)
    | _ -> ""
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\"schema\":\"fbp-bench-trajectory\",\n\"entries\":[\n%s\n]%s\n}\n"
    (String.concat ",\n" rows)
    speedup;
  close_out oc;
  Printf.printf "wrote %s (%d PRs)\n%!" out (List.length entries)

(* ----------------------------------------------------------------- main *)

let () =
  if Array.length Sys.argv > 1 && String.equal Sys.argv.(1) "trajectory"
  then begin
    emit_trajectory ();
    exit 0
  end;
  if Sys.getenv_opt "FBP_BENCH_SMOKE" <> None then begin
    emit_bench_json ();
    emit_sanitizer_json ();
    emit_parallel_json ();
    emit_realization_scaling_json ();
    emit_profile_json ();
    exit 0
  end;
  let t0 = Fbp_util.Timer.now () in
  Printf.printf
    "BonnPlace-FBP reproduction benchmark harness\nscale=%.1f cells/paper-kilocell%s\n"
    (Fbp_workloads.Designs.scale ())
    (if quick () then " (QUICK subset)" else "");
  let quick_names = if quick () then Some Fbp_workloads.Designs.quick_names else None in
  section "TABLE I";
  let t1, _ = Fbp_workloads.Tables.table1 ~design:(if quick () then "rabe" else "erhard") () in
  print_table t1;
  section "TABLE II";
  let t2, _ = Fbp_workloads.Tables.table2 ?names:quick_names () in
  print_table t2;
  section "TABLE III";
  let t3, _ = Fbp_workloads.Tables.table3 () in
  print_table t3;
  section "TABLES IV + VI";
  let scenarios =
    if quick () then
      List.filter
        (fun (s : Fbp_workloads.Mb_gen.scenario) ->
          List.exists (String.equal s.Fbp_workloads.Mb_gen.design) [ "rabe"; "ashraf"; "erhard" ])
        Fbp_workloads.Mb_gen.table3_scenarios
    else Fbp_workloads.Mb_gen.table3_scenarios
  in
  let t4, rows4 = Fbp_workloads.Tables.table4 ~scenarios () in
  print_table t4;
  print_table (Fbp_workloads.Tables.table6 rows4);
  section "TABLE V";
  let designs5 =
    if quick () then [ "rabe"; "ashraf" ] else Fbp_workloads.Mb_gen.table5_designs
  in
  let t5, _ = Fbp_workloads.Tables.table5 ~designs:designs5 () in
  print_table t5;
  section "TABLE VII";
  let specs7 =
    if quick () then
      List.filteri (fun i _ -> i < 2) (Array.to_list Fbp_workloads.Ispd.specs)
    else Array.to_list Fbp_workloads.Ispd.specs
  in
  print_table (Fbp_workloads.Tables.table7 ~specs:specs7 ());
  section "ABLATIONS";
  ablation_table ();
  parallel_table ();
  section "MICRO-BENCHMARKS";
  bechamel_suite ();
  emit_bench_json ();
  emit_sanitizer_json ();
  emit_parallel_json ();
  emit_realization_scaling_json ();
  emit_profile_json ();
  Printf.printf "\ntotal bench wall time: %s\n" (Fbp_util.Duration.pretty (Fbp_util.Timer.now () -. t0))
