(* Faithful re-implementations of the pre-PR5 ("seed") linear-algebra
   paths, kept only as the benchmark baseline for BENCH_pr5.json:

   - [SCsr]: triplets in three boxed lists (three allocations per add, a
     full unspool at freeze), freeze with an [order] indirection array and
     a per-row [Hashtbl] for duplicate accumulation, bounds-checked
     sequential SpMV;
   - [scg]: the unfused Jacobi-PCG loop — separate preconditioner sweep,
     separate dot products, and [norm2 r] recomputed from scratch for every
     convergence check and again for the final stats.

   Nothing in the placer links against this module; comparing against it
   measures exactly what the PR 5 kernel rework changed, on identical
   inputs and identical iteration counts. *)

module SCsr = struct
  type t = {
    n : int;
    row_start : int array;
    col : int array;
    value : float array;
  }

  type builder = {
    dim : int;
    mutable rows : int list;  (* triplets, reversed *)
    mutable cols : int list;
    mutable vals : float list;
    mutable count : int;
  }

  let builder n = { dim = n; rows = []; cols = []; vals = []; count = 0 }

  let add b ~row ~col v =
    (* fbp-lint: allow float-discipline — verbatim seed code kept as baseline *)
    if v <> 0.0 then begin
      b.rows <- row :: b.rows;
      b.cols <- col :: b.cols;
      b.vals <- v :: b.vals;
      b.count <- b.count + 1
    end

  let freeze b =
    let n = b.dim in
    let m = b.count in
    let rows = Array.make m 0 and cols = Array.make m 0 and vals = Array.make m 0.0 in
    let rec fill i rl cl vl =
      match (rl, cl, vl) with
      | r :: rl, c :: cl, v :: vl ->
        rows.(i) <- r;
        cols.(i) <- c;
        vals.(i) <- v;
        fill (i - 1) rl cl vl
      | [], [], [] -> ()
      | _ -> assert false
    in
    fill (m - 1) b.rows b.cols b.vals;
    let count = Array.make (n + 1) 0 in
    for k = 0 to m - 1 do
      count.(rows.(k) + 1) <- count.(rows.(k) + 1) + 1
    done;
    for i = 1 to n do
      count.(i) <- count.(i) + count.(i - 1)
    done;
    let order = Array.make m 0 in
    let cursor = Array.copy count in
    for k = 0 to m - 1 do
      let r = rows.(k) in
      order.(cursor.(r)) <- k;
      cursor.(r) <- cursor.(r) + 1
    done;
    let row_start = Array.make (n + 1) 0 in
    let col_acc = Array.make m 0 and val_acc = Array.make m 0.0 in
    let nnz = ref 0 in
    let scratch = Hashtbl.create 16 in
    for r = 0 to n - 1 do
      Hashtbl.reset scratch;
      row_start.(r) <- !nnz;
      for idx = count.(r) to count.(r + 1) - 1 do
        let k = order.(idx) in
        let c = cols.(k) in
        match Hashtbl.find_opt scratch c with
        | Some slot -> val_acc.(slot) <- val_acc.(slot) +. vals.(k)
        | None ->
          Hashtbl.add scratch c !nnz;
          col_acc.(!nnz) <- c;
          val_acc.(!nnz) <- vals.(k);
          incr nnz
      done
    done;
    row_start.(n) <- !nnz;
    {
      n;
      row_start;
      col = Array.sub col_acc 0 !nnz;
      value = Array.sub val_acc 0 !nnz;
    }

  let mul t x out =
    for r = 0 to t.n - 1 do
      let acc = ref 0.0 in
      for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
        acc := !acc +. (t.value.(k) *. x.(t.col.(k)))
      done;
      out.(r) <- !acc
    done

  let diagonal t =
    let d = Array.make t.n 0.0 in
    for r = 0 to t.n - 1 do
      for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
        if t.col.(k) = r then d.(r) <- d.(r) +. t.value.(k)
      done
    done;
    d
end

(* Seed BLAS-1: plain sequential loops, no fusion. *)
let sdot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let snorm2 a = sqrt (sdot a a)

let saxpy ~alpha x y =
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let ssub a b out =
  for i = 0 to Array.length a - 1 do
    out.(i) <- a.(i) -. b.(i)
  done

(* The pre-PR5 CG loop, verbatim structure: separate preconditioner sweep,
   separate r.z dot, and ||r|| recomputed by a fresh [norm2] sweep at every
   convergence check plus once more for the final residual. *)
let scg_solve ~max_iter ~tol (a : SCsr.t) (b : float array) (x : float array) =
  let n = a.SCsr.n in
  let inv_diag =
    Array.map
      (fun d -> if Float.abs d > 1e-30 then 1.0 /. d else 1.0)
      (SCsr.diagonal a)
  in
  let r = Array.make n 0.0 and z = Array.make n 0.0 in
  let p = Array.make n 0.0 and ap = Array.make n 0.0 in
  SCsr.mul a x ap;
  ssub b ap r;
  let bnorm = Float.max 1.0 (snorm2 b) in
  let apply_precond () =
    for i = 0 to n - 1 do
      z.(i) <- inv_diag.(i) *. r.(i)
    done
  in
  apply_precond ();
  Array.blit z 0 p 0 n;
  let rz = ref (sdot r z) in
  let iter = ref 0 in
  let finished = ref (snorm2 r /. bnorm <= tol) in
  while (not !finished) && !iter < max_iter do
    incr iter;
    SCsr.mul a p ap;
    let pap = sdot p ap in
    if pap <= 0.0 then finished := true
    else begin
      let alpha = !rz /. pap in
      saxpy ~alpha p x;
      saxpy ~alpha:(-.alpha) ap r;
      if snorm2 r /. bnorm <= tol then finished := true
      else begin
        apply_precond ();
        let rz' = sdot r z in
        let beta = rz' /. !rz in
        rz := rz';
        for i = 0 to n - 1 do
          p.(i) <- z.(i) +. (beta *. p.(i))
        done
      end
    end
  done;
  (!iter, snorm2 r /. bnorm)
