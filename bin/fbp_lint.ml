(* fbp-lint CLI: lint the repo's own sources with the Fbp_analysis rules.

   Exit codes: 0 clean, 1 findings (or a refused baseline update), 2
   file/parse errors (or bad usage).  Run from the repo root (paths are
   repo-relative); the @lint alias does this under dune with the source
   tree and .cmt artifacts as dependencies. *)

let usage =
  "usage: fbp_lint [--json] [--json-out FILE] [--baseline FILE] \
   [--update-baseline] [--interproc] [--cmt-root DIR] [--rules] [PATH...]\n\
   Lints .ml files under the given paths (default: lib bin bench).\n\
  \  --json             emit a JSON report instead of text\n\
  \  --json-out FILE    also write the JSON report to FILE\n\
  \  --baseline FILE    hide findings listed in FILE (one file:line:rule per \
   line)\n\
  \  --update-baseline  shrink FILE to the still-firing keys; refuses to add \
   entries\n\
  \  --interproc        also run the typed whole-program pass (needs .cmt \
   files\n\
  \                     from `dune build @check`)\n\
  \  --cmt-root DIR     scan DIR for .cmt files (repeatable; default: the \
   build\n\
  \                     contexts of the lint paths)\n\
  \  --rules            list the rule catalogue and exit\n"

let () =
  let json = ref false in
  let json_out = ref None in
  let baseline = ref None in
  let update = ref false in
  let interproc = ref false in
  let cmt_roots = ref [] in
  let list_rules = ref false in
  let paths = ref [] in
  let bad msg =
    prerr_string (msg ^ "\n" ^ usage);
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--json-out" :: file :: rest ->
      json_out := Some file;
      parse rest
    | "--json-out" :: [] -> bad "--json-out needs a file argument"
    | "--baseline" :: file :: rest ->
      baseline := Some file;
      parse rest
    | "--baseline" :: [] -> bad "--baseline needs a file argument"
    | "--update-baseline" :: rest ->
      update := true;
      parse rest
    | "--interproc" :: rest ->
      interproc := true;
      parse rest
    | "--cmt-root" :: dir :: rest ->
      cmt_roots := dir :: !cmt_roots;
      parse rest
    | "--cmt-root" :: [] -> bad "--cmt-root needs a directory argument"
    | "--rules" :: rest ->
      list_rules := true;
      parse rest
    | "--help" :: _ | "-h" :: _ ->
      print_string usage;
      exit 0
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      bad ("unknown option " ^ arg)
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_rules then begin
    List.iter
      (fun (id, summary) -> Printf.printf "%-17s %s\n" id summary)
      Fbp_analysis.Rules.catalogue;
    exit 0
  end;
  let roots =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  let ip_config =
    if not !interproc then None
    else
      let cmt_roots =
        match List.rev !cmt_roots with
        | [] -> Fbp_analysis.Cmt_loader.default_roots roots
        | rs -> rs
      in
      Some (Fbp_analysis.Interproc.default_config ~cmt_roots)
  in
  if !update then begin
    let file =
      match !baseline with
      | Some f -> f
      | None -> bad "--update-baseline needs --baseline FILE"
    in
    (* ratchet: run without the baseline filter, then keep only the
       intersection of old keys and current findings.  Any finding not
       already baselined is a refusal — fix or suppress it instead. *)
    let report = Fbp_analysis.Lint.run_paths ?interproc:ip_config roots in
    let old_keys = Fbp_analysis.Lint.load_baseline (Some file) in
    let r =
      Fbp_analysis.Lint.ratchet ~old_keys
        ~current:report.Fbp_analysis.Lint.diagnostics
    in
    if r.Fbp_analysis.Lint.rejected <> [] then begin
      Printf.eprintf
        "fbp-lint: refusing to grow the baseline; %d finding(s) are not in \
         %s:\n"
        (List.length r.Fbp_analysis.Lint.rejected)
        file;
      List.iter (Printf.eprintf "  %s\n") r.Fbp_analysis.Lint.rejected;
      Printf.eprintf
        "fbp-lint: fix them or add an inline suppression with a reason.\n";
      exit 1
    end;
    let oc = open_out file in
    output_string oc
      "# fbp-lint baseline: one file:line:rule per line. Policy: keep empty.\n";
    List.iter (fun k -> output_string oc (k ^ "\n")) r.Fbp_analysis.Lint.kept;
    close_out oc;
    Printf.eprintf "fbp-lint: baseline %s: %d key(s) kept, %d retired\n" file
      (List.length r.Fbp_analysis.Lint.kept)
      (List.length r.Fbp_analysis.Lint.retired);
    exit 0
  end;
  let report =
    Fbp_analysis.Lint.run_paths ?baseline:!baseline ?interproc:ip_config roots
  in
  (match !json_out with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    output_string oc (Fbp_analysis.Lint.render_json report);
    close_out oc);
  print_string
    (if !json then Fbp_analysis.Lint.render_json report
     else Fbp_analysis.Lint.render_text report);
  match (report.Fbp_analysis.Lint.errors, report.Fbp_analysis.Lint.diagnostics)
  with
  | [], [] -> exit 0
  | [], _ -> exit 1
  | _, _ -> exit 2
