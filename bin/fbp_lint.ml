(* fbp-lint CLI: lint the repo's own sources with the Fbp_analysis rules.

   Exit codes: 0 clean, 1 findings, 2 file/parse errors (or bad usage).
   Run from the repo root (paths are repo-relative); the @lint alias does
   this under dune with the source tree as dependencies. *)

let usage =
  "usage: fbp_lint [--json] [--baseline FILE] [--update-baseline] [--rules] \
   [PATH...]\n\
   Lints .ml files under the given paths (default: lib bin bench).\n\
  \  --json             emit a JSON report instead of text\n\
  \  --baseline FILE    hide findings listed in FILE (one file:line:rule per \
   line)\n\
  \  --update-baseline  rewrite FILE with the current findings and exit 0\n\
  \  --rules            list the rule catalogue and exit\n"

let () =
  let json = ref false in
  let baseline = ref None in
  let update = ref false in
  let list_rules = ref false in
  let paths = ref [] in
  let bad msg =
    prerr_string (msg ^ "\n" ^ usage);
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--baseline" :: file :: rest ->
      baseline := Some file;
      parse rest
    | "--baseline" :: [] -> bad "--baseline needs a file argument"
    | "--update-baseline" :: rest ->
      update := true;
      parse rest
    | "--rules" :: rest ->
      list_rules := true;
      parse rest
    | "--help" :: _ | "-h" :: _ ->
      print_string usage;
      exit 0
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      bad ("unknown option " ^ arg)
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list_rules then begin
    List.iter
      (fun (id, summary) -> Printf.printf "%-17s %s\n" id summary)
      Fbp_analysis.Rules.catalogue;
    exit 0
  end;
  let roots =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  if !update then begin
    let file =
      match !baseline with
      | Some f -> f
      | None -> bad "--update-baseline needs --baseline FILE"
    in
    let report = Fbp_analysis.Lint.run_paths roots in
    let oc = open_out file in
    output_string oc
      "# fbp-lint baseline: one file:line:rule per line. Policy: keep empty.\n";
    output_string oc
      (Fbp_analysis.Lint.baseline_of report.Fbp_analysis.Lint.diagnostics);
    close_out oc;
    Printf.eprintf "fbp-lint: wrote %d key(s) to %s\n"
      (List.length report.Fbp_analysis.Lint.diagnostics)
      file;
    exit 0
  end;
  let report = Fbp_analysis.Lint.run_paths ?baseline:!baseline roots in
  print_string
    (if !json then Fbp_analysis.Lint.render_json report
     else Fbp_analysis.Lint.render_text report);
  match (report.Fbp_analysis.Lint.errors, report.Fbp_analysis.Lint.diagnostics)
  with
  | [], [] -> exit 0
  | [], _ -> exit 1
  | _, _ -> exit 2
