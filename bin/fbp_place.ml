(* Command-line driver: generate designs, check movebound feasibility, place
   with any of the three engines, and draw placements.

     fbp_place generate --cells 5000 -o design.book
     fbp_place check design.book
     fbp_place place design.book --tool fbp --svg out.svg
     fbp_place place design.book --deadline 30 --strict
     fbp_place tables --table 2 --quick

   Failures exit with the typed error's class code (see
   Fbp_resilience.Fbp_error.exit_code): infeasible/capacity 2, parse 3,
   deadline 4, invalid input 5, CG divergence 6, internal 7. *)

open Cmdliner
module Err = Fbp_resilience.Fbp_error

let print_table t =
  print_string (Fbp_util.Table.render t);
  print_newline ()

let read_design path = Fbp_netlist.Bookshelf.read_file_result path

let fail_typed e =
  prerr_endline (Err.to_string e);
  Err.exit_code e

(* movebounds are carried in the bookshelf cell column; rebuild rectangles
   as the bounding boxes of each class's cells is lossy, so the CLI only
   supports movebounds generated via --movebounds *)
let instance_of design ~movebounds =
  if movebounds <= 0 then Fbp_movebound.Instance.unconstrained design
  else begin
    let scenario =
      {
        Fbp_workloads.Mb_gen.design = design.Fbp_netlist.Design.name;
        shape = Fbp_workloads.Mb_gen.Flatten movebounds;
        coverage = 0.5;
        max_density = 0.75;
        kind = Fbp_movebound.Movebound.Inclusive;
      }
    in
    Fbp_workloads.Mb_gen.attach scenario design
  end

(* ------------------------------------------------------------ generate *)

let generate_cmd =
  let cells =
    Arg.(value & opt int 2000 & info [ "cells"; "n" ] ~doc:"Number of cells.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let run cells seed out =
    let d = Fbp_netlist.Generator.quick ~seed ~name:(Filename.basename out) cells in
    Fbp_netlist.Bookshelf.write_file out d;
    Printf.printf "wrote %s (%d cells, %d nets)\n" out
      (Fbp_netlist.Netlist.n_cells d.Fbp_netlist.Design.netlist)
      (Fbp_netlist.Netlist.n_nets d.Fbp_netlist.Design.netlist);
    0
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic design.")
    Term.(const run $ cells $ seed $ out)

(* --------------------------------------------------------------- check *)

let check_cmd =
  let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN") in
  let movebounds =
    Arg.(value & opt int 0 & info [ "movebounds" ] ~doc:"Attach N movebounds first.")
  in
  let run input movebounds =
    match read_design input with
    | Error e -> fail_typed e
    | Ok d ->
      let inst = instance_of d ~movebounds in
      (match Fbp_movebound.Feasibility.check_instance inst with
       | Error e -> fail_typed (Err.Invalid_input e)
       | Ok (Fbp_movebound.Feasibility.Feasible, regions) ->
         Printf.printf "feasible (%d maximal regions, %d movebounds)\n"
           (Fbp_movebound.Regions.n_regions regions)
           (Fbp_movebound.Instance.n_movebounds inst);
         0
       | Ok (Fbp_movebound.Feasibility.Infeasible { classes; demand; capacity }, _) ->
         let e = Err.Capacity_overflow { demand; capacity; classes } in
         Printf.printf "INFEASIBLE: %s\n" (Err.to_string e);
         Err.exit_code e)
  in
  Cmd.v (Cmd.info "check" ~doc:"Movebound feasibility check (Theorems 1-2).")
    Term.(const run $ input $ movebounds)

(* --------------------------------------------------------------- place *)

let place_cmd =
  let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN") in
  let tool =
    Arg.(value & opt (enum [ ("fbp", `Fbp); ("rql", `Rql); ("kraftwerk", `Kw) ]) `Fbp
         & info [ "tool" ] ~doc:"Placement engine: fbp | rql | kraftwerk.")
  in
  let movebounds =
    Arg.(value & opt int 0 & info [ "movebounds" ] ~doc:"Attach N movebounds first.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains"; "j" ] ~doc:"Parallel domains (FBP).")
  in
  let svg = Arg.(value & opt (some string) None & info [ "svg" ] ~doc:"Plot output.") in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ]
           ~doc:"Wall-clock budget in seconds for global placement; on \
                 timeout the last-good per-level checkpoint is returned.")
  in
  let strict =
    Arg.(value & flag
         & info [ "strict" ]
           ~doc:"Fail with a typed error instead of degrading gracefully \
                 (reports Theorem 3 infeasibility certificates as errors).")
  in
  let sanitize =
    Arg.(value & flag
         & info [ "sanitize" ]
           ~doc:"Run flow-invariant sanitizer checks at solver-stage \
                 boundaries (MCF conservation and capacity bounds, \
                 transport row/column balance, CSR well-formedness, \
                 post-realization movebound containment); a violation \
                 stops the run with exit code 8.  Also enabled by \
                 $(b,FBP_SANITIZE=1).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ]
           ~doc:"Write a Chrome trace-event JSON of the run to $(docv) \
                 (loadable in chrome://tracing or Perfetto)." ~docv:"FILE")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ]
           ~doc:"Write solver counters and histogram summaries as JSON to \
                 $(docv)." ~docv:"FILE")
  in
  let record =
    Arg.(value & opt (some string) None
         & info [ "record" ]
           ~doc:"Write a quality flight record (per-level HPWL, density \
                 overflow, movebound violations, solver effort, phase \
                 times, GC deltas) as a versioned run-record JSON to \
                 $(docv); render it with $(b,fbp_place report), gate CI \
                 with $(b,fbp_place diff-record)." ~docv:"FILE")
  in
  let run input tool movebounds domains svg deadline strict sanitize trace metrics record =
    if sanitize then Fbp_resilience.Sanitize.set_enabled true;
    let module Obs = Fbp_obs.Obs in
    let module Rec = Fbp_obs.Recorder in
    if trace <> None || metrics <> None || record <> None then begin
      Obs.reset ();
      Obs.enable ()
    end;
    if record <> None then begin
      Rec.reset ();
      Rec.enable ()
    end;
    (* FBP_PROFILE=1 arms the domain profiler alongside whatever other
       exporters are on; its summary lands in the run record's [profile]
       section and its GC pauses in the trace's per-domain tracks *)
    let profile_armed = Sys.getenv_opt "FBP_PROFILE" = Some "1" in
    if profile_armed then Fbp_obs.Profiler.start ();
    (* export whatever was recorded on every exit path, including typed
       failures — a trace of a failed run is the one you want most *)
    let finish code =
      (* stop first: the final drain injects gc.* intervals into the trace
         and the summary must be attached before the record is written *)
      if profile_armed then begin
        let s = Fbp_obs.Profiler.stop () in
        if Rec.enabled () then Rec.set_profile s
      end;
      (match trace with
       | Some f -> Obs.write_trace f; Printf.printf "wrote %s\n" f
       | None -> ());
      (match metrics with
       | Some f -> Obs.write_metrics f; Printf.printf "wrote %s\n" f
       | None -> ());
      (match record with
       | Some f ->
         (match Obs.Json.parse (Obs.metrics_json ()) with
          | Ok m -> Rec.set_metrics m
          | Error _ -> ());
         Rec.write_current f;
         Rec.disable ();
         Printf.printf "wrote %s\n" f
       | None -> ());
      code
    in
    match read_design input with
    | Error e -> finish (fail_typed e)
    | Ok d ->
      let inst = instance_of d ~movebounds in
      Rec.set_provenance
        {
          Rec.design = input;
          cells = Fbp_netlist.Netlist.n_cells d.Fbp_netlist.Design.netlist;
          nets = Fbp_netlist.Netlist.n_nets d.Fbp_netlist.Design.netlist;
          movebounds = Fbp_movebound.Instance.n_movebounds inst;
          seed = None;
          tool = (match tool with `Fbp -> "fbp" | `Rql -> "rql" | `Kw -> "kraftwerk");
          config =
            [ ("domains", string_of_int domains);
              ("strict", string_of_bool strict);
              ("sanitize", string_of_bool (Fbp_resilience.Sanitize.enabled ())) ]
            @ (match deadline with
               | Some dl -> [ ("deadline", Printf.sprintf "%g" dl) ]
               | None -> []);
          host = None;  (* filled by Runner once the pool resolves *)
        };
      let result =
        (* belt and braces: nothing may bypass [finish] — an exception
           escaping any engine (e.g. a sanitizer violation raised past a
           result boundary) still becomes a typed exit with the trace,
           metrics and run record written *)
        try
          Obs.span "cli.place"
            ~args:(fun () -> [ ("design", input) ])
            (fun () ->
              match tool with
              | `Fbp ->
                Fbp_workloads.Runner.run_fbp
                  ~config:{ Fbp_core.Config.default with domains; deadline; strict } inst
              | `Rql -> Fbp_workloads.Runner.run_rql inst
              | `Kw -> Fbp_workloads.Runner.run_kraftwerk inst)
        with e -> Error (Err.of_exn ~site:"cli.place" e)
      in
      (match result with
       | Error e -> finish (fail_typed e)
       | Ok m ->
         Printf.printf "%s: HPWL %.6e  time %.2fs (global %.2fs + legalize %.2fs)\n"
           m.Fbp_workloads.Runner.tool m.Fbp_workloads.Runner.hpwl
           m.Fbp_workloads.Runner.total_time m.Fbp_workloads.Runner.global_time
           m.Fbp_workloads.Runner.legalize_time;
         Printf.printf "legal=%b movebound-violations=%d\n" m.Fbp_workloads.Runner.legal
           m.Fbp_workloads.Runner.violations;
         List.iter
           (fun dg ->
             Printf.printf "degraded: %s\n" (Fbp_core.Placer.degradation_to_string dg))
           m.Fbp_workloads.Runner.degradations;
         (match svg with
          | Some path ->
            let inst_n =
              match Fbp_movebound.Instance.normalize inst with Ok i -> i | Error _ -> inst
            in
            Fbp_viz.Svg.write_file path
              (Fbp_viz.Draw.placement inst_n m.Fbp_workloads.Runner.placement);
            Printf.printf "wrote %s\n" path
          | None -> ());
         finish 0)
  in
  Cmd.v (Cmd.info "place" ~doc:"Place a design.")
    Term.(const run $ input $ tool $ movebounds $ domains $ svg $ deadline $ strict
          $ sanitize $ trace $ metrics $ record)

(* ------------------------------------------------------------- profile *)

let profile_cmd =
  let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN") in
  let movebounds =
    Arg.(value & opt int 0 & info [ "movebounds" ] ~doc:"Attach N movebounds first.")
  in
  let domains =
    (* default 4 and no hardware clamp: the point of profiling is to see
       the helper domains, even on a small container *)
    Arg.(value & opt int 4 & info [ "domains"; "j" ] ~doc:"Parallel domains.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ]
           ~doc:"Write the machine-readable profile summary to $(docv)."
           ~docv:"FILE")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ]
           ~doc:"Write a Chrome trace with per-domain gc.* pause tracks to \
                 $(docv)." ~docv:"FILE")
  in
  let run input movebounds domains json trace =
    let module Obs = Fbp_obs.Obs in
    let module Prof = Fbp_obs.Profiler in
    Obs.reset ();
    Obs.enable ();
    Prof.start ();
    match read_design input with
    | Error e ->
      ignore (Prof.stop ());
      fail_typed e
    | Ok d ->
      let inst = instance_of d ~movebounds in
      let config =
        { Fbp_core.Config.default with domains; hw_clamp = false }
      in
      let result =
        try Fbp_workloads.Runner.run_fbp ~config inst
        with e -> Error (Err.of_exn ~site:"cli.profile" e)
      in
      let s = Prof.stop () in
      (match trace with
       | Some f -> Obs.write_trace f; Printf.printf "wrote %s\n" f
       | None -> ());
      Obs.disable ();
      (match json with
       | Some f ->
         let oc = open_out f in
         output_string oc (Obs.Json.to_string (Prof.summary_json s));
         output_string oc "\n";
         close_out oc;
         Printf.printf "wrote %s\n" f
       | None -> ());
      (match result with
       | Error e -> fail_typed e
       | Ok m ->
         print_string (Prof.render s);
         Printf.printf
           "\n%s: HPWL %.6e  time %.2fs (global %.2fs + legalize %.2fs)\n"
           m.Fbp_workloads.Runner.tool m.Fbp_workloads.Runner.hpwl
           m.Fbp_workloads.Runner.total_time m.Fbp_workloads.Runner.global_time
           m.Fbp_workloads.Runner.legalize_time;
         0)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Place a design with the domain-level runtime profiler armed \
             and print the per-domain utilization / GC pause table.  The \
             profiler merges OCaml runtime events (minor/major GC, \
             stop-the-world rendezvous) with pool worker occupancy; the \
             placement result is bit-identical to an unprofiled run.")
    Term.(const run $ input $ movebounds $ domains $ json $ trace)

(* --------------------------------------------------------- trace-check *)

let trace_check_cmd =
  let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE") in
  let run input =
    match Fbp_obs.Obs.validate_trace_file input with
    | Ok n ->
      Printf.printf "ok: %d balanced span pairs\n" n;
      0
    | Error msg ->
      Printf.eprintf "invalid trace: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a Chrome trace-event JSON file (parses, spans balance).")
    Term.(const run $ input)

(* ------------------------------------------------------------- report *)

let report_cmd =
  let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"RECORD") in
  let out =
    Arg.(value & opt string "report.html"
         & info [ "o"; "output" ] ~doc:"HTML output file." ~docv:"FILE")
  in
  let trajectory =
    Arg.(value & opt (some string) None
         & info [ "trajectory" ]
           ~doc:"Fold a BENCH_trajectory.json (written by $(b,bench \
                 trajectory)) into the report as a per-PR performance \
                 sparkline section." ~docv:"FILE")
  in
  let run input out trajectory =
    let read_trajectory path =
      let ic = open_in_bin path in
      let doc =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Fbp_obs.Obs.Json.parse doc with
      | Ok j -> Some j
      | Error msg ->
        Printf.eprintf "warning: cannot parse trajectory %s: %s\n" path msg;
        None
    in
    match Fbp_obs.Recorder.read_file input with
    | Error msg ->
      Printf.eprintf "cannot read run record %s: %s\n" input msg;
      Err.exit_code (Err.Parse_error { file = input; line = 0; msg })
    | Ok rec_ ->
      let trajectory = Option.bind trajectory read_trajectory in
      let html = Fbp_viz.Report.render ?trajectory rec_ in
      let oc = open_out_bin out in
      output_string oc html;
      close_out oc;
      Printf.printf "wrote %s (%d levels, %d bytes)\n" out
        (List.length rec_.Fbp_obs.Recorder.levels)
        (String.length html);
      0
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render a flight-recorder run record as a self-contained HTML \
             report (convergence curve, phase times, density heatmap, \
             domain utilization, metric tables).")
    Term.(const run $ input $ out $ trajectory)

(* -------------------------------------------------------- diff-record *)

let diff_record_cmd =
  let base = Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE") in
  let cand = Arg.(required & pos 1 (some string) None & info [] ~docv:"CANDIDATE") in
  let max_hpwl =
    Arg.(value & opt float 0.02
         & info [ "max-hpwl-regress" ]
           ~doc:"Maximum tolerated relative HPWL increase (e.g. 0.02 = 2%).")
  in
  let max_time =
    Arg.(value & opt float 0.25
         & info [ "max-time-regress" ]
           ~doc:"Maximum tolerated relative total-time increase.")
  in
  let max_gc =
    Arg.(value & opt (some float) None
         & info [ "max-gc-regress" ]
           ~doc:"Maximum tolerated relative GC/STW pause-time increase \
                 (profiled records only; 10ms absolute floor).")
  in
  let run base cand max_hpwl max_time max_gc =
    let read path =
      match Fbp_obs.Recorder.read_file path with
      | Ok r -> Ok r
      | Error msg ->
        Printf.eprintf "cannot read run record %s: %s\n" path msg;
        Error (Err.exit_code (Err.Parse_error { file = path; line = 0; msg }))
    in
    match (read base, read cand) with
    | Error c, _ | _, Error c -> c
    | Ok b, Ok c ->
      let cmp =
        Fbp_obs.Recorder.diff ?max_gc_regress:max_gc
          ~max_hpwl_regress:max_hpwl ~max_time_regress:max_time ~base:b
          ~cand:c ()
      in
      List.iter print_endline cmp.Fbp_obs.Recorder.lines;
      if cmp.Fbp_obs.Recorder.regressions = [] then begin
        Printf.printf "ok: no regressions (%s vs %s)\n" base cand;
        0
      end
      else begin
        Printf.printf "FAIL: %d regression(s)\n"
          (List.length cmp.Fbp_obs.Recorder.regressions);
        1
      end
  in
  Cmd.v
    (Cmd.info "diff-record"
       ~doc:"Compare two run records and exit non-zero if the candidate \
             regresses HPWL, wall time, legality, movebound violations, or \
             (with --max-gc-regress) GC pause time beyond the thresholds.")
    Term.(const run $ base $ cand $ max_hpwl $ max_time $ max_gc)

(* ------------------------------------------------------- metrics-check *)

let metrics_check_cmd =
  let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"METRICS") in
  let run input =
    match Fbp_obs.Obs.validate_metrics_file input with
    | Ok n ->
      Printf.printf "ok: %d metrics\n" n;
      0
    | Error msg ->
      Printf.eprintf "invalid metrics: %s\n" msg;
      1
  in
  Cmd.v
    (Cmd.info "metrics-check"
       ~doc:"Validate a metrics JSON file (counters integral, histogram \
             summaries complete, keys sorted).")
    Term.(const run $ input)

(* ---------------------------------------------------------------- fuzz *)

let fuzz_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.") in
  let count =
    Arg.(value & opt int 200
         & info [ "count"; "n" ] ~doc:"Number of scenarios to generate.")
  in
  let matrix =
    Arg.(value & flag
         & info [ "matrix" ]
           ~doc:"Also run every scenario against all fault-matrix cells \
                 (each scenario crossed with every injection site × fault \
                 kind the pipeline documents).")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ]
           ~doc:"Replay a single repro artifact written by a previous fuzz \
                 run instead of fuzzing; exits with the scenario's taxonomy \
                 code." ~docv:"FILE")
  in
  let out_dir =
    Arg.(value & opt (some string) None
         & info [ "out" ]
           ~doc:"Write shrunk repro artifacts and run records for findings \
                 into $(docv)." ~docv:"DIR")
  in
  let time_cap =
    Arg.(value & opt (some float) None
         & info [ "time-cap" ]
           ~doc:"Wall-clock cap in seconds; generation stops early (the \
                 report is marked truncated) but never mid-scenario."
           ~docv:"SECONDS")
  in
  let run seed count matrix replay out_dir time_cap =
    let module Fuzz = Fbp_workloads.Fuzz in
    match replay with
    | Some file ->
      let text =
        let ic = open_in_bin file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      (match Fuzz.repro_of_json text with
       | Error msg ->
         prerr_endline ("bad repro artifact: " ^ msg);
         Err.exit_code (Err.Parse_error { file; line = 0; msg })
       | Ok scenario ->
         Printf.printf "replaying %s\n" (Fuzz.scenario_to_json scenario);
         let rr = Fuzz.run_scenario scenario in
         Printf.printf "outcome: %s (fault %s)\n"
           (Fuzz.outcome_label rr.Fuzz.outcome)
           (if rr.Fuzz.fault_fired then "fired" else "not fired");
         (match rr.Fuzz.outcome with
          | Fuzz.Passed -> 0
          | Fuzz.Typed e -> Err.exit_code e
          | Fuzz.Invariant _ | Fuzz.Uncaught _ -> 1))
    | None ->
      (* CI smoke mode: a short, seed-pinned, hard-capped campaign *)
      let smoke =
        match Sys.getenv_opt "FBP_FUZZ_SMOKE" with
        | Some "1" -> true
        | Some _ | None -> false
      in
      let count = if smoke then min count 50 else count in
      let time_cap =
        if smoke then Some (match time_cap with Some c -> c | None -> 120.0)
        else time_cap
      in
      let report =
        Fuzz.run ~matrix ?time_cap ?out_dir ~seed ~count ()
      in
      print_string (Fuzz.render_report report);
      if report.Fuzz.failures = [] then 0 else 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Property-based scenario fuzzing: generate random design / \
             movebound / fault configurations, run each through the full \
             placer with the sanitizer on, check flow/transport/containment \
             invariants and the feasibility promise, shrink failures to \
             minimal replayable repro artifacts.  Deterministic for a given \
             seed.")
    Term.(const run $ seed $ count $ matrix $ replay $ out_dir $ time_cap)

(* -------------------------------------------------------------- tables *)

let tables_cmd =
  let which =
    Arg.(value & opt (some int) None & info [ "table" ] ~doc:"Only table N (1-7).")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Small design subset.") in
  let run which quick =
    let quick_names = if quick then Some Fbp_workloads.Designs.quick_names else None in
    let want n = match which with None -> true | Some w -> w = n in
    if want 1 then begin
      let t, _ = Fbp_workloads.Tables.table1 ~design:(if quick then "rabe" else "erhard") () in
      print_table t
    end;
    if want 2 then begin
      let t, _ = Fbp_workloads.Tables.table2 ?names:quick_names () in
      print_table t
    end;
    if want 3 then begin
      let t, _ = Fbp_workloads.Tables.table3 () in
      print_table t
    end;
    (if want 4 || want 6 then begin
       let t4, rows = Fbp_workloads.Tables.table4 () in
       if want 4 then print_table t4;
       if want 6 then print_table (Fbp_workloads.Tables.table6 rows)
     end);
    if want 5 then begin
      let t, _ = Fbp_workloads.Tables.table5 () in
      print_table t
    end;
    if want 7 then print_table (Fbp_workloads.Tables.table7 ());
    0
  in
  Cmd.v (Cmd.info "tables" ~doc:"Reproduce the paper's tables.")
    Term.(const run $ which $ quick)

let () =
  let info = Cmd.info "fbp_place" ~doc:"BonnPlace-FBP reproduction toolkit." in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ generate_cmd; check_cmd; place_cmd; profile_cmd; fuzz_cmd;
            report_cmd; diff_record_cmd; metrics_check_cmd; tables_cmd;
            trace_check_cmd ]))
