(* Tests for fbp_geometry: rectangle algebra, disjoint rectangle sets and the
   Hanan grid decomposition (Lemma 1 of the paper). *)

open Fbp_geometry

let check_float = Alcotest.(check (float 1e-6))

(* ---------- Rect ---------- *)

let test_rect_basic () =
  let r = Rect.of_corner ~x:1.0 ~y:2.0 ~w:3.0 ~h:4.0 in
  check_float "width" 3.0 (Rect.width r);
  check_float "height" 4.0 (Rect.height r);
  check_float "area" 12.0 (Rect.area r);
  let c = Rect.center r in
  check_float "cx" 2.5 c.Point.x;
  check_float "cy" 4.0 c.Point.y

let test_rect_invalid () =
  Alcotest.check_raises "negative extent" (Invalid_argument "Rect.make: negative extent")
    (fun () -> ignore (Rect.make ~x0:1.0 ~y0:0.0 ~x1:0.0 ~y1:1.0))

let test_rect_intersect () =
  let a = Rect.make ~x0:0.0 ~y0:0.0 ~x1:4.0 ~y1:4.0 in
  let b = Rect.make ~x0:2.0 ~y0:2.0 ~x1:6.0 ~y1:6.0 in
  (match Rect.intersect a b with
  | None -> Alcotest.fail "expected overlap"
  | Some i -> check_float "overlap area" 4.0 (Rect.area i));
  let c = Rect.make ~x0:4.0 ~y0:0.0 ~x1:5.0 ~y1:1.0 in
  Alcotest.(check bool) "touching edges don't overlap" false (Rect.overlaps a c);
  Alcotest.(check bool) "touching intersect = None" true (Rect.intersect a c = None)

let test_rect_contains () =
  let a = Rect.make ~x0:0.0 ~y0:0.0 ~x1:4.0 ~y1:4.0 in
  Alcotest.(check bool) "contains inner" true
    (Rect.contains a (Rect.make ~x0:1.0 ~y0:1.0 ~x1:3.0 ~y1:3.0));
  Alcotest.(check bool) "contains itself" true (Rect.contains a a);
  Alcotest.(check bool) "not contains overflow" false
    (Rect.contains a (Rect.make ~x0:1.0 ~y0:1.0 ~x1:5.0 ~y1:3.0))

let test_rect_clamp_dist () =
  let r = Rect.make ~x0:0.0 ~y0:0.0 ~x1:2.0 ~y1:2.0 in
  let p = Point.make 5.0 1.0 in
  let q = Rect.clamp_point r p in
  check_float "clamped x" 2.0 q.Point.x;
  check_float "clamped y" 1.0 q.Point.y;
  check_float "L1 dist" 3.0 (Rect.dist_l1_point r p);
  check_float "dist inside = 0" 0.0 (Rect.dist_l1_point r (Point.make 1.0 1.0))

let test_rect_subtract_disjoint_pieces () =
  let a = Rect.make ~x0:0.0 ~y0:0.0 ~x1:4.0 ~y1:4.0 in
  let b = Rect.make ~x0:1.0 ~y0:1.0 ~x1:3.0 ~y1:3.0 in
  let pieces = Rect.subtract a b in
  Alcotest.(check int) "4 pieces for interior hole" 4 (List.length pieces);
  let total = List.fold_left (fun acc r -> acc +. Rect.area r) 0.0 pieces in
  check_float "area identity" (Rect.area a -. Rect.area b) total;
  List.iteri
    (fun i ri ->
      List.iteri
        (fun j rj ->
          if i < j then Alcotest.(check bool) "pieces disjoint" false (Rect.overlaps ri rj))
        pieces)
    pieces

let rect_gen =
  QCheck.Gen.(
    let coord = float_bound_inclusive 10.0 in
    map
      (fun (x, y, w, h) -> Rect.of_corner ~x ~y ~w:(w +. 0.1) ~h:(h +. 0.1))
      (quad coord coord (float_bound_inclusive 5.0) (float_bound_inclusive 5.0)))

let rect_arb = QCheck.make ~print:Rect.to_string rect_gen

let prop_subtract_area =
  QCheck.Test.make ~name:"rect subtract area identity" ~count:300
    (QCheck.pair rect_arb rect_arb)
    (fun (a, b) ->
      let pieces = Rect.subtract a b in
      let total = List.fold_left (fun acc r -> acc +. Rect.area r) 0.0 pieces in
      Float.abs (total -. (Rect.area a -. Rect.intersection_area a b)) < 1e-6)

let prop_subtract_no_overlap_with_b =
  QCheck.Test.make ~name:"rect subtract pieces avoid b" ~count:300
    (QCheck.pair rect_arb rect_arb)
    (fun (a, b) ->
      List.for_all (fun p -> not (Rect.overlaps p b)) (Rect.subtract a b))

let test_rect_adjacent () =
  let a = Rect.make ~x0:0.0 ~y0:0.0 ~x1:1.0 ~y1:1.0 in
  let right = Rect.make ~x0:1.0 ~y0:0.0 ~x1:2.0 ~y1:1.0 in
  let above = Rect.make ~x0:0.0 ~y0:1.0 ~x1:1.0 ~y1:2.0 in
  let corner = Rect.make ~x0:1.0 ~y0:1.0 ~x1:2.0 ~y1:2.0 in
  let far = Rect.make ~x0:5.0 ~y0:5.0 ~x1:6.0 ~y1:6.0 in
  Alcotest.(check bool) "right adjacent" true (Rect.adjacent a right);
  Alcotest.(check bool) "above adjacent" true (Rect.adjacent a above);
  Alcotest.(check bool) "corner-only not adjacent" false (Rect.adjacent a corner);
  Alcotest.(check bool) "far not adjacent" false (Rect.adjacent a far)

(* ---------- Rect_set ---------- *)

let test_set_union_overlapping () =
  let s =
    Rect_set.of_rects
      [ Rect.make ~x0:0.0 ~y0:0.0 ~x1:2.0 ~y1:2.0;
        Rect.make ~x0:1.0 ~y0:1.0 ~x1:3.0 ~y1:3.0 ]
  in
  check_float "union area (inclusion-exclusion)" 7.0 (Rect_set.area s);
  let rs = Rect_set.rects s in
  List.iteri
    (fun i ri ->
      List.iteri
        (fun j rj ->
          if i < j then Alcotest.(check bool) "disjoint" false (Rect.overlaps ri rj))
        rs)
    rs

let test_set_covers () =
  let l_shape =
    Rect_set.of_rects
      [ Rect.make ~x0:0.0 ~y0:0.0 ~x1:3.0 ~y1:1.0;
        Rect.make ~x0:0.0 ~y0:1.0 ~x1:1.0 ~y1:3.0 ]
  in
  Alcotest.(check bool) "covers inner rect spanning both arms" true
    (Rect_set.covers_rect l_shape (Rect.make ~x0:0.0 ~y0:0.0 ~x1:1.0 ~y1:2.0));
  Alcotest.(check bool) "does not cover the missing corner" false
    (Rect_set.covers_rect l_shape (Rect.make ~x0:2.0 ~y0:2.0 ~x1:3.0 ~y1:3.0));
  Alcotest.(check bool) "covers whole L as a set" true
    (Rect_set.covers l_shape l_shape)

let test_set_subtract () =
  let s = Rect_set.of_rect (Rect.make ~x0:0.0 ~y0:0.0 ~x1:4.0 ~y1:4.0) in
  let hole = Rect_set.of_rect (Rect.make ~x0:1.0 ~y0:1.0 ~x1:2.0 ~y1:2.0) in
  let diff = Rect_set.subtract s hole in
  check_float "subtract area" 15.0 (Rect_set.area diff);
  Alcotest.(check bool) "hole not contained" false
    (Rect_set.contains_point diff (Fbp_geometry.Point.make 1.5 1.5));
  Alcotest.(check bool) "rest contained" true
    (Rect_set.contains_point diff (Fbp_geometry.Point.make 3.0 3.0))

let test_set_project () =
  let s =
    Rect_set.of_rects
      [ Rect.make ~x0:0.0 ~y0:0.0 ~x1:1.0 ~y1:1.0;
        Rect.make ~x0:5.0 ~y0:0.0 ~x1:6.0 ~y1:1.0 ]
  in
  let q = Rect_set.project_point s (Point.make 5.5 3.0) in
  check_float "projects to near rect x" 5.5 q.Point.x;
  check_float "projects to near rect y" 1.0 q.Point.y;
  Alcotest.(check bool) "projection lies in set" true (Rect_set.contains_point s q)

let test_set_cog () =
  let s =
    Rect_set.of_rects
      [ Rect.make ~x0:0.0 ~y0:0.0 ~x1:2.0 ~y1:1.0;
        Rect.make ~x0:0.0 ~y0:1.0 ~x1:1.0 ~y1:3.0 ]
  in
  let c = Rect_set.center_of_gravity s in
  (* masses: 2 at (1, 0.5); 2 at (0.5, 2) *)
  check_float "cog x" 0.75 c.Point.x;
  check_float "cog y" 1.25 c.Point.y

let prop_set_area_superadditive =
  QCheck.Test.make ~name:"rect_set union area <= sum of areas" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 6) rect_arb)
    (fun rs ->
      let s = Rect_set.of_rects rs in
      let sum = List.fold_left (fun acc r -> acc +. Rect.area r) 0.0 rs in
      Rect_set.area s <= sum +. 1e-6)

let prop_set_covers_members =
  QCheck.Test.make ~name:"rect_set covers each input rect" ~count:200
    (QCheck.list_of_size (QCheck.Gen.int_range 1 6) rect_arb)
    (fun rs ->
      let s = Rect_set.of_rects rs in
      List.for_all (fun r -> Rect_set.covers_rect s r) rs)

let prop_subtract_then_disjoint =
  QCheck.Test.make ~name:"rect_set subtract leaves no overlap" ~count:200
    (QCheck.pair
       (QCheck.list_of_size (QCheck.Gen.int_range 1 4) rect_arb)
       (QCheck.list_of_size (QCheck.Gen.int_range 1 4) rect_arb))
    (fun (xs, ys) ->
      let a = Rect_set.of_rects xs and b = Rect_set.of_rects ys in
      let d = Rect_set.subtract a b in
      (not (Rect_set.overlaps d b))
      && Float.abs (Rect_set.area d +. Rect_set.overlap_area a b -. Rect_set.area a) < 1e-5)

(* ---------- Hanan ---------- *)

let chip = Rect.make ~x0:0.0 ~y0:0.0 ~x1:10.0 ~y1:10.0

let test_hanan_cells_partition_chip () =
  let rects =
    [ Rect.make ~x0:2.0 ~y0:2.0 ~x1:5.0 ~y1:6.0;
      Rect.make ~x0:4.0 ~y0:1.0 ~x1:8.0 ~y1:3.0 ]
  in
  let h = Hanan.create ~chip rects in
  let total = ref 0.0 in
  Hanan.iter_cells h (fun ~ix:_ ~iy:_ r -> total := !total +. Rect.area r);
  check_float "cells tile the chip" (Rect.area chip) !total;
  (* every cell is entirely inside or outside each input rect *)
  Hanan.iter_cells h (fun ~ix:_ ~iy:_ c ->
      List.iter
        (fun r ->
          let inside = Rect.contains r c in
          let outside = not (Rect.overlaps r c) in
          Alcotest.(check bool) "inside xor outside" true (inside || outside))
        rects)

let test_hanan_indexing () =
  let h = Hanan.create ~chip [ Rect.make ~x0:3.0 ~y0:4.0 ~x1:7.0 ~y1:8.0 ] in
  Alcotest.(check int) "n_cells = nx*ny" (Hanan.nx h * Hanan.ny h) (Hanan.n_cells h);
  for idx = 0 to Hanan.n_cells h - 1 do
    let ix, iy = Hanan.cell_coords h idx in
    Alcotest.(check int) "roundtrip" idx (Hanan.cell_index h ~ix ~iy)
  done

let test_hanan_neighbors () =
  let h = Hanan.create ~chip [ Rect.make ~x0:5.0 ~y0:5.0 ~x1:6.0 ~y1:6.0 ] in
  (* 3x3 cells; center cell has 4 neighbours, corner has 2 *)
  Alcotest.(check int) "center degree" 4 (List.length (Hanan.neighbors h ~ix:1 ~iy:1));
  Alcotest.(check int) "corner degree" 2 (List.length (Hanan.neighbors h ~ix:0 ~iy:0))

let prop_hanan_quadratic_bound =
  (* Lemma 1: decomposition has O(l^2) rectangles, concretely <= (2l+1)^2 *)
  QCheck.Test.make ~name:"hanan cell count quadratic bound" ~count:100
    (QCheck.list_of_size (QCheck.Gen.int_range 0 8) rect_arb)
    (fun rs ->
      let h = Hanan.create ~chip:(Rect.make ~x0:(-1.0) ~y0:(-1.0) ~x1:16.0 ~y1:16.0) rs in
      let l = List.length rs in
      Hanan.n_cells h <= ((2 * l) + 1) * ((2 * l) + 1))

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "rect basics" `Quick test_rect_basic;
    Alcotest.test_case "rect invalid" `Quick test_rect_invalid;
    Alcotest.test_case "rect intersect" `Quick test_rect_intersect;
    Alcotest.test_case "rect contains" `Quick test_rect_contains;
    Alcotest.test_case "rect clamp/dist" `Quick test_rect_clamp_dist;
    Alcotest.test_case "rect subtract pieces" `Quick test_rect_subtract_disjoint_pieces;
    qcheck prop_subtract_area;
    qcheck prop_subtract_no_overlap_with_b;
    Alcotest.test_case "rect adjacency" `Quick test_rect_adjacent;
    Alcotest.test_case "set union overlapping" `Quick test_set_union_overlapping;
    Alcotest.test_case "set covers (L-shape)" `Quick test_set_covers;
    Alcotest.test_case "set subtract" `Quick test_set_subtract;
    Alcotest.test_case "set project point" `Quick test_set_project;
    Alcotest.test_case "set center of gravity" `Quick test_set_cog;
    qcheck prop_set_area_superadditive;
    qcheck prop_set_covers_members;
    qcheck prop_subtract_then_disjoint;
    Alcotest.test_case "hanan tiles chip" `Quick test_hanan_cells_partition_chip;
    Alcotest.test_case "hanan indexing" `Quick test_hanan_indexing;
    Alcotest.test_case "hanan neighbors" `Quick test_hanan_neighbors;
    qcheck prop_hanan_quadratic_bound;
  ]
