(* Tests for fbp_linalg: CSR assembly and CG on random SPD systems. *)

open Fbp_linalg

let check_float = Alcotest.(check (float 1e-6))

let test_vec_ops () =
  let a = [| 1.0; 2.0; 3.0 |] and b = [| 4.0; 5.0; 6.0 |] in
  check_float "dot" 32.0 (Vec.dot a b);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 a);
  check_float "norm_inf" 3.0 (Vec.norm_inf a);
  let y = Vec.copy b in
  Vec.axpy ~alpha:2.0 a y;
  Alcotest.(check (array (float 1e-9))) "axpy" [| 6.0; 9.0; 12.0 |] y;
  Vec.scale ~alpha:0.5 y;
  Alcotest.(check (array (float 1e-9))) "scale" [| 3.0; 4.5; 6.0 |] y;
  let out = Vec.create 3 in
  Vec.sub b a out;
  Alcotest.(check (array (float 1e-9))) "sub" [| 3.0; 3.0; 3.0 |] out

let test_csr_assembly_accumulates () =
  let b = Csr.builder 3 in
  Csr.add b ~row:0 ~col:1 2.0;
  Csr.add b ~row:0 ~col:1 3.0;
  Csr.add b ~row:2 ~col:0 1.0;
  Csr.add b ~row:1 ~col:1 4.0;
  let a = Csr.freeze b in
  Alcotest.(check int) "nnz after merge" 3 (Csr.nnz a);
  check_float "merged entry" 5.0 (Csr.get a 0 1);
  check_float "diag" 4.0 (Csr.get a 1 1);
  check_float "absent" 0.0 (Csr.get a 2 2)

let test_csr_mul () =
  let b = Csr.builder 2 in
  Csr.add b ~row:0 ~col:0 2.0;
  Csr.add b ~row:0 ~col:1 1.0;
  Csr.add b ~row:1 ~col:1 3.0;
  let a = Csr.freeze b in
  let out = Vec.create 2 in
  Csr.mul a [| 1.0; 2.0 |] out;
  Alcotest.(check (array (float 1e-9))) "A x" [| 4.0; 6.0 |] out

let test_csr_spring_symmetric () =
  let b = Csr.builder 4 in
  Csr.add_spring b 0 1 2.0;
  Csr.add_spring b 1 3 1.0;
  Csr.add_diag b 2 5.0;
  let a = Csr.freeze b in
  Alcotest.(check bool) "symmetric" true (Csr.is_symmetric a);
  let d = Csr.diagonal a in
  check_float "degree 1" 3.0 d.(1);
  check_float "anchor" 5.0 d.(2)

let test_cg_identity () =
  let b = Csr.builder 3 in
  for i = 0 to 2 do Csr.add_diag b i 1.0 done;
  let a = Csr.freeze b in
  let x = Vec.create 3 in
  let st = Cg.solve a [| 1.0; -2.0; 3.0 |] x in
  Alcotest.(check bool) "converged" true st.Cg.converged;
  Alcotest.(check (array (float 1e-6))) "identity solve" [| 1.0; -2.0; 3.0 |] x

let test_cg_small_spd () =
  (* [[4,1],[1,3]] x = [1,2]  =>  x = [1/11, 7/11] *)
  let b = Csr.builder 2 in
  Csr.add b ~row:0 ~col:0 4.0;
  Csr.add b ~row:0 ~col:1 1.0;
  Csr.add b ~row:1 ~col:0 1.0;
  Csr.add b ~row:1 ~col:1 3.0;
  let a = Csr.freeze b in
  let x = Vec.create 2 in
  let st = Cg.solve a [| 1.0; 2.0 |] x in
  Alcotest.(check bool) "converged" true st.Cg.converged;
  check_float "x0" (1.0 /. 11.0) x.(0);
  check_float "x1" (7.0 /. 11.0) x.(1)

(* Random Laplacian + diagonal systems (exactly the QP's structure). *)
let random_spd =
  QCheck.Gen.(
    int_range 3 25 >>= fun n ->
    let edge = triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range 0.1 5.0) in
    pair (list_size (int_range 1 60) edge) (list_size (return n) (float_range 0.1 2.0))
    >>= fun (edges, anchors) -> return (n, edges, anchors))

let prop_cg_solves_spd =
  QCheck.Test.make ~name:"cg solves random Laplacian+diag systems" ~count:100
    (QCheck.make random_spd)
    (fun (n, edges, anchors) ->
      let b = Csr.builder n in
      List.iter (fun (i, j, w) -> if i <> j then Csr.add_spring b i j w) edges;
      List.iteri (fun i w -> Csr.add_diag b i w) anchors;
      let a = Csr.freeze b in
      let rng = Fbp_util.Rng.create (n * 7919) in
      let rhs = Array.init n (fun _ -> Fbp_util.Rng.range rng (-5.0) 5.0) in
      let x = Vec.create n in
      let st = Cg.solve ~tol:1e-9 a rhs x in
      (* verify the residual independently *)
      let ax = Vec.create n in
      Csr.mul a x ax;
      let r = Vec.create n in
      Vec.sub rhs ax r;
      st.Cg.converged && Vec.norm2 r /. Float.max 1.0 (Vec.norm2 rhs) < 1e-6)

let prop_csr_mul_matches_dense =
  QCheck.Test.make ~name:"csr mul matches dense multiply" ~count:100
    (QCheck.make
       QCheck.Gen.(
         int_range 1 8 >>= fun n ->
         list_size (int_range 0 30)
           (triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (float_range (-3.0) 3.0))
         >>= fun ts -> return (n, ts)))
    (fun (n, triplets) ->
      let b = Csr.builder n in
      let dense = Array.make_matrix n n 0.0 in
      List.iter
        (fun (i, j, v) ->
          Csr.add b ~row:i ~col:j v;
          dense.(i).(j) <- dense.(i).(j) +. v)
        triplets;
      let a = Csr.freeze b in
      let x = Array.init n (fun i -> float_of_int (i + 1)) in
      let out = Vec.create n in
      Csr.mul a x out;
      let ok = ref true in
      for i = 0 to n - 1 do
        let acc = ref 0.0 in
        for j = 0 to n - 1 do
          acc := !acc +. (dense.(i).(j) *. x.(j))
        done;
        if Float.abs (!acc -. out.(i)) > 1e-9 then ok := false
      done;
      !ok)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    Alcotest.test_case "csr accumulates duplicates" `Quick test_csr_assembly_accumulates;
    Alcotest.test_case "csr mul" `Quick test_csr_mul;
    Alcotest.test_case "csr springs symmetric" `Quick test_csr_spring_symmetric;
    Alcotest.test_case "cg identity" `Quick test_cg_identity;
    Alcotest.test_case "cg small spd" `Quick test_cg_small_spd;
    qcheck prop_cg_solves_spd;
    qcheck prop_csr_mul_matches_dense;
  ]
