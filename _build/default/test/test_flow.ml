(* Tests for fbp_flow: Dinic max-flow against brute-force min cuts,
   min-cost-flow optimality audits, and the transportation solver against
   the exact MCF reference. *)

open Fbp_flow

let check_float = Alcotest.(check (float 1e-6))

(* ---------- Graph ---------- *)

let test_graph_arcs () =
  let g = Graph.create 3 in
  let a = Graph.add_edge g ~u:0 ~v:1 ~cap:5.0 ~cost:2.0 in
  let b = Graph.add_edge g ~u:1 ~v:2 ~cap:3.0 ~cost:1.0 in
  Alcotest.(check int) "ids even" 0 (a mod 2);
  Alcotest.(check int) "rev pairing" (a + 1) (Graph.rev a);
  Alcotest.(check int) "second arc id" 2 b;
  Alcotest.(check int) "dst" 1 (Graph.dst g a);
  Alcotest.(check int) "src" 0 (Graph.src g a);
  check_float "cost negated on twin" (-2.0) (Graph.cost g (Graph.rev a));
  Graph.push g a 2.0;
  check_float "flow recorded" 2.0 (Graph.flow g a);
  check_float "residual opened" 2.0 (Graph.capacity g (Graph.rev a));
  Graph.reset_flow g;
  check_float "reset" 0.0 (Graph.flow g a)

let test_graph_iter_out () =
  let g = Graph.create 2 in
  ignore (Graph.add_edge g ~u:0 ~v:1 ~cap:1.0 ~cost:0.0);
  ignore (Graph.add_edge g ~u:0 ~v:1 ~cap:2.0 ~cost:0.0);
  let count = ref 0 in
  Graph.iter_out g 0 (fun _ -> incr count);
  (* two forward arcs leave node 0; twins leave node 1 *)
  Alcotest.(check int) "out-degree" 2 !count

(* ---------- Maxflow ---------- *)

let test_maxflow_known () =
  (* Classic 4-node example: s=0, t=3; max flow 5. *)
  let g = Graph.create 4 in
  ignore (Graph.add_edge g ~u:0 ~v:1 ~cap:3.0 ~cost:0.0);
  ignore (Graph.add_edge g ~u:0 ~v:2 ~cap:2.0 ~cost:0.0);
  ignore (Graph.add_edge g ~u:1 ~v:2 ~cap:5.0 ~cost:0.0);
  ignore (Graph.add_edge g ~u:1 ~v:3 ~cap:2.0 ~cost:0.0);
  ignore (Graph.add_edge g ~u:2 ~v:3 ~cap:3.0 ~cost:0.0);
  let r = Maxflow.solve g ~source:0 ~sink:3 in
  check_float "value" 5.0 r.Maxflow.value;
  Alcotest.(check bool) "source in cut" true r.Maxflow.min_cut.(0);
  Alcotest.(check bool) "sink not in cut" false r.Maxflow.min_cut.(3)

let test_maxflow_disconnected () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge g ~u:0 ~v:1 ~cap:4.0 ~cost:0.0);
  let r = Maxflow.solve g ~source:0 ~sink:2 in
  check_float "no path -> 0" 0.0 r.Maxflow.value

(* Random graph generator for cross-checks: n <= 7 nodes, arcs with integer
   capacities so brute-force min-cut enumeration is exact. *)
let random_graph_arcs =
  QCheck.Gen.(
    let n = 6 in
    let arc = triple (int_range 0 (n - 1)) (int_range 0 (n - 1)) (int_range 1 9) in
    map (fun arcs -> (n, arcs)) (list_size (int_range 1 14) arc))

let brute_force_mincut n arcs ~source ~sink =
  (* Enumerate all subsets containing source but not sink. *)
  let best = ref infinity in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land (1 lsl source) <> 0 && mask land (1 lsl sink) = 0 then begin
      let cut =
        List.fold_left
          (fun acc (u, v, c) ->
            if mask land (1 lsl u) <> 0 && mask land (1 lsl v) = 0 then
              acc +. float_of_int c
            else acc)
          0.0 arcs
      in
      if cut < !best then best := cut
    end
  done;
  !best

let prop_maxflow_equals_mincut =
  QCheck.Test.make ~name:"maxflow = brute-force mincut" ~count:200
    (QCheck.make random_graph_arcs)
    (fun (n, arcs) ->
      let arcs = List.filter (fun (u, v, _) -> u <> v) arcs in
      let g = Graph.create n in
      List.iter
        (fun (u, v, c) ->
          ignore (Graph.add_edge g ~u ~v ~cap:(float_of_int c) ~cost:0.0))
        arcs;
      let r = Maxflow.solve g ~source:0 ~sink:(n - 1) in
      let cut = brute_force_mincut n arcs ~source:0 ~sink:(n - 1) in
      Float.abs (r.Maxflow.value -. cut) < 1e-6)

let prop_maxflow_conservation =
  QCheck.Test.make ~name:"maxflow conserves at inner nodes" ~count:200
    (QCheck.make random_graph_arcs)
    (fun (n, arcs) ->
      let arcs = List.filter (fun (u, v, _) -> u <> v) arcs in
      let g = Graph.create n in
      List.iter
        (fun (u, v, c) ->
          ignore (Graph.add_edge g ~u ~v ~cap:(float_of_int c) ~cost:0.0))
        arcs;
      ignore (Maxflow.solve g ~source:0 ~sink:(n - 1));
      let balance = Array.make n 0.0 in
      Graph.iter_edges g (fun a ->
          let f = Graph.flow g a in
          balance.(Graph.src g a) <- balance.(Graph.src g a) -. f;
          balance.(Graph.dst g a) <- balance.(Graph.dst g a) +. f);
      let ok = ref true in
      for v = 1 to n - 2 do
        if Float.abs balance.(v) > 1e-6 then ok := false
      done;
      !ok)

(* ---------- Mcf ---------- *)

let test_mcf_known () =
  (* Two routes of different cost: cheap one has limited capacity. *)
  let g = Graph.create 4 in
  ignore (Graph.add_edge g ~u:0 ~v:1 ~cap:2.0 ~cost:1.0);
  ignore (Graph.add_edge g ~u:0 ~v:2 ~cap:10.0 ~cost:3.0);
  ignore (Graph.add_edge g ~u:1 ~v:3 ~cap:10.0 ~cost:1.0);
  ignore (Graph.add_edge g ~u:2 ~v:3 ~cap:10.0 ~cost:1.0);
  let supply = [| 5.0; 0.0; 0.0; -5.0 |] in
  (match Mcf.solve g ~supply with
  | Mcf.Feasible { cost } ->
    (* 2 units via cheap route (cost 2 each), 3 via expensive (cost 4 each) *)
    check_float "optimal cost" 16.0 cost
  | Mcf.Infeasible _ -> Alcotest.fail "expected feasible");
  Alcotest.(check bool) "optimality audit" true (Mcf.check_optimal g)

let test_mcf_infeasible () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge g ~u:0 ~v:1 ~cap:1.0 ~cost:0.0);
  (* node 2 demands 5 but only supplies at 0 reach node 1 *)
  let supply = [| 5.0; 0.0; -5.0 |] in
  match Mcf.solve g ~supply with
  | Mcf.Feasible _ -> Alcotest.fail "expected infeasible"
  | Mcf.Infeasible { unrouted } -> check_float "unrouted amount" 5.0 unrouted

let test_mcf_demand_slack () =
  (* Total demand exceeds supply: demands are upper bounds. *)
  let g = Graph.create 3 in
  ignore (Graph.add_edge g ~u:0 ~v:1 ~cap:10.0 ~cost:1.0);
  ignore (Graph.add_edge g ~u:0 ~v:2 ~cap:10.0 ~cost:2.0);
  let supply = [| 4.0; -10.0; -10.0 |] in
  match Mcf.solve g ~supply with
  | Mcf.Feasible { cost } -> check_float "all to cheap sink" 4.0 cost
  | Mcf.Infeasible _ -> Alcotest.fail "expected feasible"

let test_mcf_rejects_negative_cost () =
  let g = Graph.create 2 in
  ignore (Graph.add_edge g ~u:0 ~v:1 ~cap:1.0 ~cost:(-1.0));
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Mcf.solve: negative arc cost") (fun () ->
      ignore (Mcf.solve g ~supply:[| 1.0; -1.0 |]))

(* Random MCF instances: bipartite transportation with integer data, checked
   for optimality via the negative-cycle audit and conservation. *)
let random_transport =
  QCheck.Gen.(
    let src_n = int_range 1 4 and snk_n = int_range 1 4 in
    pair src_n snk_n >>= fun (ns, nk) ->
    let costs = list_size (return (ns * nk)) (int_range 0 9) in
    let supplies = list_size (return ns) (int_range 1 9) in
    let caps = list_size (return nk) (int_range 1 9) in
    map
      (fun (costs, supplies, caps) -> (ns, nk, costs, supplies, caps))
      (triple costs supplies caps))

let prop_mcf_optimal_and_conserving =
  QCheck.Test.make ~name:"mcf residual has no negative cycle + conservation" ~count:200
    (QCheck.make random_transport)
    (fun (ns, nk, costs, supplies, caps) ->
      let n = ns + nk in
      let g = Graph.create n in
      List.iteri
        (fun idx c ->
          let i = idx / nk and j = idx mod nk in
          ignore (Graph.add_edge g ~u:i ~v:(ns + j) ~cap:100.0 ~cost:(float_of_int c)))
        costs;
      let supply = Array.make n 0.0 in
      List.iteri (fun i s -> supply.(i) <- float_of_int s) supplies;
      List.iteri (fun j c -> supply.(ns + j) <- -.float_of_int c) caps;
      let total_supply = List.fold_left ( + ) 0 supplies in
      let total_cap = List.fold_left ( + ) 0 caps in
      match Mcf.solve g ~supply with
      | Mcf.Infeasible _ -> total_supply > total_cap
      | Mcf.Feasible { cost } ->
        let recomputed = ref 0.0 in
        let balance = Array.make n 0.0 in
        Graph.iter_edges g (fun a ->
            let f = Graph.flow g a in
            recomputed := !recomputed +. (f *. Graph.cost g a);
            balance.(Graph.src g a) <- balance.(Graph.src g a) -. f;
            balance.(Graph.dst g a) <- balance.(Graph.dst g a) +. f);
        let ok_balance = ref true in
        for i = 0 to ns - 1 do
          (* each source ships out exactly its supply *)
          if Float.abs (balance.(i) +. supply.(i)) > 1e-6 then ok_balance := false
        done;
        for j = ns to n - 1 do
          (* sinks receive at most their capacity *)
          if balance.(j) > -.supply.(j) +. 1e-6 then ok_balance := false
        done;
        total_supply <= total_cap
        && Float.abs (cost -. !recomputed) < 1e-6
        && !ok_balance
        && Mcf.check_optimal g)

(* ---------- Transport ---------- *)

let mk_problem sizes caps cost = { Transport.sizes; capacities = caps; cost }

let test_transport_simple () =
  (* 3 unit cells, 2 sinks with capacity 2 and 1; cell 2 prefers sink 0 but
     must be displaced when sink 0 fills up. *)
  let cost i j =
    match (i, j) with
    | 0, 0 -> 0.0 | 0, 1 -> 10.0
    | 1, 0 -> 0.0 | 1, 1 -> 10.0
    | 2, 0 -> 1.0 | 2, 1 -> 2.0
    | _ -> infinity
  in
  let p = mk_problem [| 1.0; 1.0; 1.0 |] [| 2.0; 1.0 |] cost in
  match Transport.solve p with
  | Error e -> Alcotest.fail e
  | Ok a ->
    Alcotest.(check bool) "converged" true a.Transport.converged;
    Alcotest.(check bool) "capacities respected" true (Transport.max_overflow p a <= 1e-6);
    check_float "optimal cost" 2.0 a.Transport.cost

let test_transport_inadmissible () =
  let cost i j = if i = 0 && j = 0 then infinity else 1.0 in
  let p = mk_problem [| 1.0 |] [| 5.0 |] cost in
  match Transport.solve p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected no admissible sink error"

let test_transport_fractional_split () =
  (* One big cell of size 2 must split across two sinks of capacity 1. *)
  let cost _ j = float_of_int j in
  let p = mk_problem [| 2.0 |] [| 1.0; 1.0 |] cost in
  match Transport.solve p with
  | Error e -> Alcotest.fail e
  | Ok a ->
    Alcotest.(check bool) "capacities respected" true (Transport.max_overflow p a <= 1e-6);
    Alcotest.(check int) "one fractional cell" 1 (Transport.n_fractional a);
    let fr = a.Transport.frac.(0) in
    check_float "fractions sum to 1" 1.0 (List.fold_left (fun acc (_, f) -> acc +. f) 0.0 fr)

let random_transport_problem =
  QCheck.Gen.(
    int_range 2 12 >>= fun n ->
    int_range 2 4 >>= fun k ->
    let sizes = list_size (return n) (float_range 0.5 3.0) in
    let cost_rows = list_size (return (n * k)) (float_range 0.0 20.0) in
    map
      (fun (sizes, costs) ->
        let sizes = Array.of_list sizes in
        let total = Array.fold_left ( +. ) 0.0 sizes in
        (* capacities comfortably feasible: total * 1.2 split across sinks *)
        let caps = Array.make k (total *. 1.2 /. float_of_int k) in
        let costs = Array.of_list costs in
        (n, k, sizes, caps, costs))
      (pair sizes cost_rows))

let prop_transport_respects_capacities =
  QCheck.Test.make ~name:"transport respects capacities when feasible" ~count:150
    (QCheck.make random_transport_problem)
    (fun (_n, k, sizes, caps, costs) ->
      let cost i j = costs.((i * k) + j) in
      let p = mk_problem sizes caps cost in
      match Transport.solve p with
      | Error _ -> false
      | Ok a ->
        a.Transport.converged
        && Transport.max_overflow p a <= 1e-6
        && Array.for_all
             (fun fr ->
               Float.abs (List.fold_left (fun acc (_, f) -> acc +. f) 0.0 fr -. 1.0) < 1e-6)
             a.Transport.frac)

(* Deterministic optimality-gap audit: the heuristic must stay within 30% of
   the exact optimum on every instance and within 5% on average over a fixed
   batch of 200 random instances (the average is what placement quality
   feels). *)
let test_transport_near_exact () =
  let rng = Fbp_util.Rng.create 12345 in
  let gaps = ref [] in
  for _ = 1 to 200 do
    let n = 2 + Fbp_util.Rng.int rng 14 and k = 2 + Fbp_util.Rng.int rng 4 in
    let sizes = Array.init n (fun _ -> Fbp_util.Rng.range rng 0.5 3.0) in
    let total = Array.fold_left ( +. ) 0.0 sizes in
    let caps = Array.make k (total *. 1.2 /. float_of_int k) in
    let costs = Array.init (n * k) (fun _ -> Fbp_util.Rng.range rng 0.0 20.0) in
    let p = mk_problem sizes caps (fun i j -> costs.((i * k) + j)) in
    match (Transport.solve p, Transport.solve_exact p) with
    | Ok a, Ok ex ->
      let gap =
        if ex.Transport.cost < 1e-9 then 0.0
        else (a.Transport.cost -. ex.Transport.cost) /. ex.Transport.cost
      in
      if gap > 0.30 then
        Alcotest.failf "instance gap %.1f%% exceeds 30%% (heur %.3f vs exact %.3f)"
          (100.0 *. gap) a.Transport.cost ex.Transport.cost;
      gaps := gap :: !gaps
    | _ -> Alcotest.fail "solver failed on feasible instance"
  done;
  let gaps = Array.of_list !gaps in
  let mean = Fbp_util.Stats.mean gaps in
  Alcotest.(check bool)
    (Printf.sprintf "mean gap %.2f%% <= 5%%" (100.0 *. mean))
    true (mean <= 0.05)

let prop_exact_transport_optimal =
  QCheck.Test.make ~name:"exact transport matches load bookkeeping" ~count:60
    (QCheck.make random_transport_problem)
    (fun (_n, k, sizes, caps, costs) ->
      let cost i j = costs.((i * k) + j) in
      let p = mk_problem sizes caps cost in
      match Transport.solve_exact p with
      | Error _ -> false
      | Ok a ->
        Transport.max_overflow p a <= 1e-6
        && Float.abs (Transport.total_cost p a.Transport.frac -. a.Transport.cost) < 1e-4)

let test_transport_round_integral () =
  let cost _ j = float_of_int j in
  let p = mk_problem [| 2.0; 1.0 |] [| 2.0; 2.0 |] cost in
  match Transport.solve p with
  | Error e -> Alcotest.fail e
  | Ok a ->
    let assign = Transport.round_integral a in
    Array.iter (fun j -> Alcotest.(check bool) "sink valid" true (j >= 0 && j < 2)) assign

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "graph arcs and twins" `Quick test_graph_arcs;
    Alcotest.test_case "graph iter_out" `Quick test_graph_iter_out;
    Alcotest.test_case "maxflow known" `Quick test_maxflow_known;
    Alcotest.test_case "maxflow disconnected" `Quick test_maxflow_disconnected;
    qcheck prop_maxflow_equals_mincut;
    qcheck prop_maxflow_conservation;
    Alcotest.test_case "mcf known" `Quick test_mcf_known;
    Alcotest.test_case "mcf infeasible" `Quick test_mcf_infeasible;
    Alcotest.test_case "mcf demand slack" `Quick test_mcf_demand_slack;
    Alcotest.test_case "mcf rejects negative cost" `Quick test_mcf_rejects_negative_cost;
    qcheck prop_mcf_optimal_and_conserving;
    Alcotest.test_case "transport simple" `Quick test_transport_simple;
    Alcotest.test_case "transport inadmissible" `Quick test_transport_inadmissible;
    Alcotest.test_case "transport fractional split" `Quick test_transport_fractional_split;
    qcheck prop_transport_respects_capacities;
    Alcotest.test_case "transport near exact (deterministic)" `Quick test_transport_near_exact;
    qcheck prop_exact_transport_optimal;
    Alcotest.test_case "transport round integral" `Quick test_transport_round_integral;
  ]
