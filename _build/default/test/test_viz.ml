(* Tests for fbp_viz: well-formedness of the generated SVGs. *)

open Fbp_geometry
open Fbp_viz

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let count_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if m = 0 then 0 else go 0 0

let test_svg_basics () =
  let svg = Svg.create ~width:10.0 ~height:8.0 in
  Svg.rect svg (Rect.make ~x0:1.0 ~y0:1.0 ~x1:3.0 ~y1:2.0) ~fill:"#ff0000" ();
  Svg.line svg ~x1:0.0 ~y1:0.0 ~x2:5.0 ~y2:5.0 ~stroke:"#000" ();
  Svg.circle svg ~cx:2.0 ~cy:2.0 ~r:0.5 ~fill:"#00ff00" ();
  Svg.text svg ~x:1.0 ~y:1.0 ~size:0.5 "hello";
  let s = Svg.to_string svg in
  Alcotest.(check bool) "opens svg" true (contains_sub s "<svg");
  Alcotest.(check bool) "closes svg" true (contains_sub s "</svg>");
  Alcotest.(check bool) "rect present" true (contains_sub s "<rect");
  Alcotest.(check bool) "text present" true (contains_sub s "hello");
  (* y axis flipped: rect y1=2 maps to 8-2=6 *)
  Alcotest.(check bool) "y flip applied" true (contains_sub s "y=\"6\"")

let test_svg_colors_cycle () =
  Alcotest.(check string) "color 0 stable" (Svg.color 0) (Svg.color 10);
  Alcotest.(check bool) "distinct adjacent colors" true (Svg.color 0 <> Svg.color 1)

let test_placement_plot () =
  let d = Fbp_netlist.Generator.quick ~seed:61 ~name:"viz" 200 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let svg = Draw.placement inst d.Fbp_netlist.Design.initial in
  let s = Svg.to_string svg in
  (* one rect per movable cell plus the chip frame and blockages *)
  Alcotest.(check bool) "at least n_cells rects" true (count_sub s "<rect" >= 200)

let test_fig1_renders () =
  let chip = Rect.make ~x0:0.0 ~y0:0.0 ~x1:16.0 ~y1:12.0 in
  let mbs =
    [| Fbp_movebound.Movebound.make ~id:0 ~name:"N" ~kind:Fbp_movebound.Movebound.Exclusive
         [ Rect.make ~x0:1.0 ~y0:7.0 ~x1:5.0 ~y1:11.0 ];
       Fbp_movebound.Movebound.make ~id:1 ~name:"M" ~kind:Fbp_movebound.Movebound.Inclusive
         [ Rect.make ~x0:6.0 ~y0:1.0 ~x1:15.0 ~y1:8.0 ] |]
  in
  let s = Svg.to_string (Draw.fig1_movebounds chip mbs) in
  Alcotest.(check bool) "labels present" true (contains_sub s ">N<");
  let regions = Fbp_movebound.Regions.decompose ~chip mbs in
  let s2 = Svg.to_string (Draw.fig1_regions chip regions) in
  Alcotest.(check bool) "region labels" true (contains_sub s2 ">r0<")

let test_flow_model_figure () =
  let d = Fbp_netlist.Generator.quick ~seed:62 ~name:"vizflow" 300 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let regions = Fbp_movebound.Regions.decompose ~chip:d.Fbp_netlist.Design.chip [||] in
  let density = Fbp_core.Density.create d in
  let grid =
    Fbp_core.Grid.create ~chip:d.Fbp_netlist.Design.chip ~nx:2 ~ny:2 ~regions ~density ()
  in
  let model = Fbp_core.Fbp_model.build inst regions grid d.Fbp_netlist.Design.initial in
  let s = Svg.to_string (Draw.flow_model model) in
  Alcotest.(check bool) "has lines (arcs)" true (count_sub s "<line" > 10);
  Alcotest.(check bool) "has circles (nodes)" true (count_sub s "<circle" > 4)

let suite =
  [
    Alcotest.test_case "svg basics" `Quick test_svg_basics;
    Alcotest.test_case "svg palette" `Quick test_svg_colors_cycle;
    Alcotest.test_case "placement plot" `Quick test_placement_plot;
    Alcotest.test_case "figure 1 renders" `Quick test_fig1_renders;
    Alcotest.test_case "flow model figure" `Quick test_flow_model_figure;
  ]
