(* Tests for fbp_netlist: structure validation, HPWL, the synthetic design
   generator's invariants, and Bookshelf round-trips. *)

open Fbp_netlist
open Fbp_geometry

let check_float = Alcotest.(check (float 1e-6))

(* A tiny 3-cell, 2-net fixture. *)
let tiny () =
  let nets =
    [|
      { Netlist.weight = 1.0;
        pins = [| { Netlist.cell = 0; dx = 0.0; dy = 0.0 };
                  { Netlist.cell = 1; dx = 0.0; dy = 0.0 } |] };
      { Netlist.weight = 2.0;
        pins = [| { Netlist.cell = 1; dx = 0.5; dy = 0.0 };
                  { Netlist.cell = 2; dx = 0.0; dy = 0.0 };
                  { Netlist.cell = -1; dx = 10.0; dy = 10.0 } |] };
    |]
  in
  {
    Netlist.n_cells = 3;
    names = [| "a"; "b"; "c" |];
    widths = [| 1.0; 2.0; 1.0 |];
    heights = [| 1.0; 1.0; 1.0 |];
    fixed = [| false; false; false |];
    movebound = [| -1; -1; -1 |];
    nets;
  }

let test_netlist_basics () =
  let nl = tiny () in
  Alcotest.(check int) "cells" 3 (Netlist.n_cells nl);
  Alcotest.(check int) "nets" 2 (Netlist.n_nets nl);
  Alcotest.(check int) "pins" 5 (Netlist.n_pins nl);
  check_float "size" 2.0 (Netlist.size nl 1);
  check_float "movable area" 4.0 (Netlist.total_movable_area nl);
  (match Netlist.validate nl with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let incident = Netlist.cell_nets nl in
  Alcotest.(check int) "cell 1 on two nets" 2 (List.length incident.(1));
  Alcotest.(check int) "cell 0 on one net" 1 (List.length incident.(0))

let test_netlist_validate_rejects () =
  let nl = tiny () in
  let bad = { nl with Netlist.widths = [| 1.0; -1.0; 1.0 |] } in
  (match Netlist.validate bad with
   | Ok () -> Alcotest.fail "negative width accepted"
   | Error _ -> ());
  let bad_pin =
    { nl with
      Netlist.nets =
        [| { Netlist.weight = 1.0; pins = [| { Netlist.cell = 99; dx = 0.0; dy = 0.0 } |] } |] }
  in
  match Netlist.validate bad_pin with
  | Ok () -> Alcotest.fail "dangling pin accepted"
  | Error _ -> ()

let test_hpwl () =
  let nl = tiny () in
  let p = Placement.create 3 in
  Placement.set p 0 (Point.make 0.0 0.0);
  Placement.set p 1 (Point.make 3.0 4.0);
  Placement.set p 2 (Point.make 5.0 1.0);
  (* net 0: bbox (0,0)-(3,4): 7. net 1: pins (3.5,4),(5,1),(10,10):
     bbox width 6.5 height 9 -> 15.5, weight 2 -> 31 *)
  check_float "net0" 7.0 (Hpwl.of_net nl p nl.Netlist.nets.(0));
  check_float "net1" 31.0 (Hpwl.of_net nl p nl.Netlist.nets.(1));
  check_float "total" 38.0 (Hpwl.total nl p);
  check_float "millions" 38e-6 (Hpwl.total_millions nl p)

let test_hpwl_single_pin_net () =
  let nl =
    { (tiny ()) with
      Netlist.nets = [| { Netlist.weight = 1.0; pins = [| { Netlist.cell = 0; dx = 0.0; dy = 0.0 } |] } |] }
  in
  let p = Placement.create 3 in
  check_float "degenerate net is free" 0.0 (Hpwl.total nl p)

let test_placement_helpers () =
  let nl = tiny () in
  let a = Placement.create 3 and b = Placement.create 3 in
  Placement.set b 0 (Point.make 1.0 1.0);
  check_float "avg displacement" (2.0 /. 3.0) (Placement.avg_displacement a b);
  check_float "max displacement" 2.0 (Placement.max_displacement a b);
  let r = Placement.cell_rect nl b 0 in
  check_float "cell rect centered" 0.5 r.Rect.x0;
  (match Placement.center_of_gravity nl b [ 0; 1 ] with
   | None -> Alcotest.fail "expected cog"
   | Some c ->
     (* masses 1 at (1,1) and 2 at (0,0) *)
     check_float "cog x" (1.0 /. 3.0) c.Point.x);
  Alcotest.(check bool) "cog of empty" true
    (Placement.center_of_gravity nl b [] = None)

(* ---------- Generator ---------- *)

let test_generator_deterministic () =
  let d1 = Generator.quick ~seed:5 500 and d2 = Generator.quick ~seed:5 500 in
  Alcotest.(check (array (float 0.0))) "same golden x"
    d1.Design.initial.Placement.x d2.Design.initial.Placement.x;
  Alcotest.(check int) "same net count"
    (Netlist.n_nets d1.Design.netlist) (Netlist.n_nets d2.Design.netlist)

let test_generator_valid_design () =
  let d = Generator.quick ~seed:2 800 in
  (match Design.validate d with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "whitespace >= 1" true (Design.whitespace_ratio d >= 1.0);
  (* golden placement inside chip *)
  let nl = d.Design.netlist in
  for c = 0 to Netlist.n_cells nl - 1 do
    let r = Placement.cell_rect nl d.Design.initial c in
    if not (Rect.contains d.Design.chip r) then
      Alcotest.failf "cell %d outside chip: %s" c (Rect.to_string r)
  done

let test_generator_net_structure () =
  let d = Generator.quick ~seed:3 1000 in
  let nl = d.Design.netlist in
  Alcotest.(check bool) "has nets" true (Netlist.n_nets nl > 500);
  (* all nets connect at least 2 distinct endpoints *)
  Array.iter
    (fun (net : Netlist.net) ->
      let distinct =
        List.sort_uniq compare
          (Array.to_list (Array.map (fun p -> p.Netlist.cell) net.Netlist.pins))
      in
      Alcotest.(check bool) "net nondegenerate" true (List.length distinct >= 2))
    nl.Netlist.nets;
  (* average degree in a sane band *)
  let avg = float_of_int (Netlist.n_pins nl) /. float_of_int (Netlist.n_nets nl) in
  Alcotest.(check bool) "avg degree in [2,6]" true (avg >= 2.0 && avg <= 6.0)

let test_generator_macros_disjoint () =
  let d =
    Generator.generate
      { Generator.default_params with n_cells = 600; n_macros = 4; seed = 11 }
  in
  let rec pairs = function
    | [] -> ()
    | m :: rest ->
      List.iter
        (fun m' -> Alcotest.(check bool) "macros disjoint" false (Rect.overlaps m m'))
        rest;
      pairs rest
  in
  pairs d.Design.blockages;
  List.iter
    (fun m -> Alcotest.(check bool) "macro inside chip" true (Rect.contains d.Design.chip m))
    d.Design.blockages

let test_generator_golden_hpwl_beats_random () =
  (* The golden placement must be substantially better than a random shuffle
     of the same positions — otherwise the netlist carries no locality and
     placement quality comparisons would be meaningless. *)
  let d = Generator.quick ~seed:4 1500 in
  let nl = d.Design.netlist in
  let golden = Hpwl.total nl d.Design.initial in
  let shuffled = Placement.copy d.Design.initial in
  let rng = Fbp_util.Rng.create 99 in
  let perm = Array.init (Netlist.n_cells nl) (fun i -> i) in
  Fbp_util.Rng.shuffle rng perm;
  let px = Array.copy shuffled.Placement.x and py = Array.copy shuffled.Placement.y in
  Array.iteri
    (fun i j ->
      shuffled.Placement.x.(i) <- px.(j);
      shuffled.Placement.y.(i) <- py.(j))
    perm;
  let random = Hpwl.total nl shuffled in
  Alcotest.(check bool)
    (Printf.sprintf "golden (%.0f) < 0.6 * random (%.0f)" golden random)
    true
    (golden < 0.6 *. random)

(* ---------- Clustering (BestChoice) ---------- *)

let test_clustering_ratio () =
  let d = Generator.quick ~seed:41 ~name:"clu" 1000 in
  let cl = Clustering.best_choice ~ratio:5.0 d.Design.netlist in
  let nc = Netlist.n_cells cl.Clustering.coarse in
  Alcotest.(check bool)
    (Printf.sprintf "coarse cells %d near n/5" nc)
    true
    (nc >= 180 && nc <= 400);
  (* area conserved *)
  Alcotest.(check (float 1e-3)) "area conserved"
    (Netlist.total_movable_area d.Design.netlist
    +. (* fixed cells keep area too *)
    (let acc = ref 0.0 in
     for c = 0 to Netlist.n_cells d.Design.netlist - 1 do
       if d.Design.netlist.Netlist.fixed.(c) then
         acc := !acc +. Netlist.size d.Design.netlist c
     done;
     !acc))
    (let acc = ref 0.0 in
     for g = 0 to nc - 1 do
       acc := !acc +. Netlist.size cl.Clustering.coarse g
     done;
     !acc);
  (* partition: every original cell in exactly one cluster *)
  let seen = Array.make (Netlist.n_cells d.Design.netlist) false in
  Array.iter
    (List.iter (fun c ->
         Alcotest.(check bool) "member unique" false seen.(c);
         seen.(c) <- true))
    cl.Clustering.members;
  Alcotest.(check bool) "all cells covered" true (Array.for_all (fun b -> b) seen);
  (match Netlist.validate cl.Clustering.coarse with
   | Ok () -> ()
   | Error e -> Alcotest.fail e)

let test_clustering_fixed_not_merged () =
  let d =
    Generator.generate
      { Generator.default_params with n_cells = 400; n_macros = 3; seed = 42 }
  in
  (* mark some cells fixed *)
  let nl = d.Design.netlist in
  for c = 0 to 9 do
    nl.Netlist.fixed.(c) <- true
  done;
  let cl = Clustering.best_choice ~ratio:4.0 nl in
  for c = 0 to 9 do
    let g = cl.Clustering.cluster_of.(c) in
    Alcotest.(check int) "fixed cell alone in its cluster" 1
      (List.length cl.Clustering.members.(g))
  done

let test_clustering_roundtrip_positions () =
  let d = Generator.quick ~seed:43 ~name:"clu2" 600 in
  let cl = Clustering.best_choice ~ratio:3.0 d.Design.netlist in
  let coarse_pos = Clustering.coarse_placement cl d.Design.netlist d.Design.initial in
  let out = Placement.create (Netlist.n_cells d.Design.netlist) in
  Clustering.expand cl coarse_pos out;
  (* every member sits at its cluster position *)
  Array.iteri
    (fun c g ->
      Alcotest.(check (float 1e-9)) "x" coarse_pos.Placement.x.(g) out.Placement.x.(c))
    cl.Clustering.cluster_of

let test_clustering_coarse_hpwl_sane () =
  (* clustering must not blow HPWL up: the coarse netlist under the coarse
     placement should cost no more than the flat netlist *)
  let d = Generator.quick ~seed:44 ~name:"clu3" 1200 in
  let cl = Clustering.best_choice ~ratio:5.0 d.Design.netlist in
  let coarse_pos = Clustering.coarse_placement cl d.Design.netlist d.Design.initial in
  let flat = Hpwl.total d.Design.netlist d.Design.initial in
  let coarse = Hpwl.total cl.Clustering.coarse coarse_pos in
  Alcotest.(check bool)
    (Printf.sprintf "coarse %.0f <= flat %.0f" coarse flat)
    true (coarse <= flat +. 1e-6)

(* ---------- Bookshelf ---------- *)

let test_bookshelf_roundtrip () =
  let d = Generator.quick ~seed:7 120 in
  let path = Filename.temp_file "fbp" ".book" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bookshelf.write_file path d;
      let d' = Bookshelf.read_file path in
      let nl = d.Design.netlist and nl' = d'.Design.netlist in
      Alcotest.(check int) "cells" (Netlist.n_cells nl) (Netlist.n_cells nl');
      Alcotest.(check int) "nets" (Netlist.n_nets nl) (Netlist.n_nets nl');
      Alcotest.(check int) "pins" (Netlist.n_pins nl) (Netlist.n_pins nl');
      Alcotest.(check (array string)) "names" nl.Netlist.names nl'.Netlist.names;
      check_float "same HPWL under initial placement"
        (Hpwl.total nl d.Design.initial)
        (Hpwl.total nl' d'.Design.initial);
      check_float "chip width" (Rect.width d.Design.chip) (Rect.width d'.Design.chip);
      Alcotest.(check int) "blockages" (List.length d.Design.blockages)
        (List.length d'.Design.blockages))

let prop_bookshelf_roundtrip_random =
  QCheck.Test.make ~name:"bookshelf roundtrip over random designs" ~count:15
    QCheck.(pair (int_range 50 250) (int_range 1 1000))
    (fun (n, seed) ->
      let d = Generator.quick ~seed ~name:"fuzz" n in
      let path = Filename.temp_file "fbpfuzz" ".book" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Bookshelf.write_file path d;
          let d' = Bookshelf.read_file path in
          Netlist.n_cells d.Design.netlist = Netlist.n_cells d'.Design.netlist
          && Netlist.n_pins d.Design.netlist = Netlist.n_pins d'.Design.netlist
          && Float.abs
               (Hpwl.total d.Design.netlist d.Design.initial
               -. Hpwl.total d'.Design.netlist d'.Design.initial)
             < 1e-6
          && d.Design.target_density = d'.Design.target_density))

let test_bookshelf_rejects_garbage () =
  let path = Filename.temp_file "fbp" ".book" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "chip 0 0 10 10\nfrobnicate 1 2 3\n";
      close_out oc;
      match Bookshelf.read_file path with
      | exception Bookshelf.Parse_error (2, _) -> ()
      | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "garbage accepted")

let suite =
  [
    Alcotest.test_case "netlist basics" `Quick test_netlist_basics;
    Alcotest.test_case "netlist validation rejects" `Quick test_netlist_validate_rejects;
    Alcotest.test_case "hpwl known values" `Quick test_hpwl;
    Alcotest.test_case "hpwl single-pin net" `Quick test_hpwl_single_pin_net;
    Alcotest.test_case "placement helpers" `Quick test_placement_helpers;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator valid design" `Quick test_generator_valid_design;
    Alcotest.test_case "generator net structure" `Quick test_generator_net_structure;
    Alcotest.test_case "generator macros disjoint" `Quick test_generator_macros_disjoint;
    Alcotest.test_case "golden beats random" `Quick test_generator_golden_hpwl_beats_random;
    Alcotest.test_case "bookshelf roundtrip" `Quick test_bookshelf_roundtrip;
    Alcotest.test_case "clustering ratio + partition" `Quick test_clustering_ratio;
    Alcotest.test_case "clustering keeps fixed cells" `Quick test_clustering_fixed_not_merged;
    Alcotest.test_case "clustering expand roundtrip" `Quick test_clustering_roundtrip_positions;
    Alcotest.test_case "clustering coarse hpwl sane" `Quick test_clustering_coarse_hpwl_sane;
    QCheck_alcotest.to_alcotest prop_bookshelf_roundtrip_random;
    Alcotest.test_case "bookshelf rejects garbage" `Quick test_bookshelf_rejects_garbage;
  ]
