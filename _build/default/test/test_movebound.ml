(* Tests for fbp_movebound: Definition 1-2 semantics, the Figure 1 region
   decomposition, Theorem 1/2 feasibility (cross-checked against explicit
   enumeration of inequality (1)), and the legality audit. *)

open Fbp_geometry
open Fbp_movebound
open Fbp_netlist

let check_float = Alcotest.(check (float 1e-6))

let chip = Rect.make ~x0:0.0 ~y0:0.0 ~x1:10.0 ~y1:10.0

(* Build a minimal design carrying [cells] = (w, h, movebound id) triples. *)
let design_of_cells ?(density = 1.0) cells =
  let n = Array.length cells in
  let netlist =
    {
      Netlist.n_cells = n;
      names = Array.init n (Printf.sprintf "c%d");
      widths = Array.map (fun (w, _, _) -> w) cells;
      heights = Array.map (fun (_, h, _) -> h) cells;
      fixed = Array.make n false;
      movebound = Array.map (fun (_, _, mb) -> mb) cells;
      nets = [||];
    }
  in
  {
    Design.name = "test";
    chip;
    row_height = 1.0;
    netlist;
    blockages = [];
    initial = Placement.create n;
    target_density = density;
  }

(* The Figure 1 scenario: exclusive N, inclusive M, inclusive L with
   A(L) inside A(M). *)
let fig1_movebounds () =
  [|
    Movebound.make ~id:0 ~name:"N" ~kind:Movebound.Exclusive
      [ Rect.make ~x0:0.0 ~y0:6.0 ~x1:3.0 ~y1:9.0 ];
    Movebound.make ~id:1 ~name:"M" ~kind:Movebound.Inclusive
      [ Rect.make ~x0:4.0 ~y0:1.0 ~x1:9.0 ~y1:6.0 ];
    Movebound.make ~id:2 ~name:"L" ~kind:Movebound.Inclusive
      [ Rect.make ~x0:5.0 ~y0:2.0 ~x1:7.0 ~y1:4.0 ];
  |]

let test_movebound_basics () =
  let m = Movebound.make ~id:0 ~name:"m" ~kind:Movebound.Inclusive
      [ Rect.make ~x0:0.0 ~y0:0.0 ~x1:2.0 ~y1:2.0;
        Rect.make ~x0:2.0 ~y0:0.0 ~x1:4.0 ~y1:1.0 ] in
  Alcotest.(check bool) "contains inner" true
    (Movebound.contains_rect m (Rect.make ~x0:0.5 ~y0:0.2 ~x1:3.0 ~y1:0.8));
  Alcotest.(check bool) "not contains outside" false
    (Movebound.contains_rect m (Rect.make ~x0:3.0 ~y0:0.5 ~x1:4.0 ~y1:1.5));
  Alcotest.(check bool) "exclusive flag" false (Movebound.is_exclusive m);
  Alcotest.check_raises "empty area" (Invalid_argument "Movebound.make: empty area")
    (fun () -> ignore (Movebound.make ~id:1 ~name:"e" ~kind:Movebound.Exclusive []))

let test_instance_validate_and_normalize () =
  (* exclusive overlapping an inclusive movebound must be detected... *)
  let mbs =
    [|
      Movebound.make ~id:0 ~name:"E" ~kind:Movebound.Exclusive
        [ Rect.make ~x0:0.0 ~y0:0.0 ~x1:4.0 ~y1:4.0 ];
      Movebound.make ~id:1 ~name:"I" ~kind:Movebound.Inclusive
        [ Rect.make ~x0:2.0 ~y0:2.0 ~x1:6.0 ~y1:6.0 ];
    |]
  in
  let inst = { Instance.design = design_of_cells [| (1.0, 1.0, 0); (1.0, 1.0, 1) |];
               movebounds = mbs } in
  (match Instance.validate inst with
   | Ok () -> Alcotest.fail "overlap not detected"
   | Error _ -> ());
  (* ...and fixed by normalize *)
  match Instance.normalize inst with
  | Error e -> Alcotest.fail e
  | Ok inst' ->
    (match Instance.validate inst' with
     | Ok () -> ()
     | Error e -> Alcotest.fail e);
    check_float "inclusive area shrunk" 12.0
      (Rect_set.area inst'.Instance.movebounds.(1).Movebound.area)

let test_normalize_vanishing_movebound () =
  let mbs =
    [|
      Movebound.make ~id:0 ~name:"E" ~kind:Movebound.Exclusive
        [ Rect.make ~x0:0.0 ~y0:0.0 ~x1:4.0 ~y1:4.0 ];
      Movebound.make ~id:1 ~name:"I" ~kind:Movebound.Inclusive
        [ Rect.make ~x0:1.0 ~y0:1.0 ~x1:3.0 ~y1:3.0 ];
    |]
  in
  let inst = { Instance.design = design_of_cells [| (1.0, 1.0, 1) |]; movebounds = mbs } in
  match Instance.normalize inst with
  | Ok _ -> Alcotest.fail "vanishing movebound accepted"
  | Error _ -> ()

let test_fig1_regions () =
  let regions = Regions.decompose ~chip (fig1_movebounds ()) in
  (* expected maximal regions: N's area, L's area ({L,M}), M minus L ({M}),
     and the default rest — 4 regions *)
  Alcotest.(check int) "four maximal regions" 4 (Regions.n_regions regions);
  let at x y = Regions.region_at regions (Point.make x y) in
  let r_n = at 1.0 7.0 and r_l = at 6.0 3.0 and r_m = at 8.0 5.0 and r_d = at 1.0 1.0 in
  Alcotest.(check int) "N owner" 0 r_n.Regions.signature.Regions.exclusive_owner;
  Alcotest.(check (list int)) "L signature" [ 1; 2 ] r_l.Regions.signature.Regions.inclusive;
  Alcotest.(check (list int)) "M-only signature" [ 1 ] r_m.Regions.signature.Regions.inclusive;
  Alcotest.(check (list int)) "default signature" [] r_d.Regions.signature.Regions.inclusive;
  (* admissibility semantics *)
  Alcotest.(check bool) "N cell in N" true (Regions.admissible r_n ~mb:0);
  Alcotest.(check bool) "default cell not in N" false (Regions.admissible r_n ~mb:(-1));
  Alcotest.(check bool) "M cell in L-region" true (Regions.admissible r_l ~mb:1);
  Alcotest.(check bool) "L cell in L-region" true (Regions.admissible r_l ~mb:2);
  Alcotest.(check bool) "L cell not in M-only region" false (Regions.admissible r_m ~mb:2);
  Alcotest.(check bool) "default cell in M (inclusive)" true (Regions.admissible r_m ~mb:(-1));
  Alcotest.(check bool) "N cell cannot leave N" false (Regions.admissible r_d ~mb:0);
  (* covering movebounds per Definition 2 *)
  Alcotest.(check (list int)) "L-region covered by M and L" [ 1; 2 ]
    (Regions.covering_movebounds r_l)

let test_regions_partition_chip () =
  let regions = Regions.decompose ~chip (fig1_movebounds ()) in
  let total =
    Array.fold_left
      (fun acc (r : Regions.region) -> acc +. Rect_set.area r.Regions.area)
      0.0 regions.Regions.regions
  in
  check_float "regions tile the chip" (Rect.area chip) total

let prop_region_signature_matches_geometry =
  (* For random movebound layouts, the signature at random points must agree
     with direct containment tests. *)
  QCheck.Test.make ~name:"region signature = direct geometry" ~count:60
    (QCheck.make
       QCheck.Gen.(
         let rect =
           map
             (fun (x, y, w, h) ->
               Rect.of_corner ~x:(8.0 *. x) ~y:(8.0 *. y) ~w:(0.5 +. (4.0 *. w))
                 ~h:(0.5 +. (4.0 *. h)))
             (quad (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)
                (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
         in
         pair (list_size (int_range 1 4) rect) (int_range 0 1000)))
    (fun (rects, seed) ->
      (* clip to chip and build inclusive movebounds (exclusives are covered
         by the fig1 unit test; inclusive overlap is the tricky case) *)
      let rects = List.filter_map (fun r -> Rect.intersect r chip) rects in
      if rects = [] then true
      else begin
        let mbs =
          Array.of_list
            (List.mapi
               (fun i r ->
                 Movebound.make ~id:i ~name:(string_of_int i) ~kind:Movebound.Inclusive [ r ])
               rects)
        in
        let regions = Regions.decompose ~chip mbs in
        let rng = Fbp_util.Rng.create seed in
        let ok = ref true in
        for _ = 1 to 50 do
          let p =
            Point.make (Fbp_util.Rng.range rng 0.01 9.99) (Fbp_util.Rng.range rng 0.01 9.99)
          in
          let r = Regions.region_at regions p in
          let expected =
            List.sort compare
              (Array.to_list mbs
              |> List.filter_map (fun (m : Movebound.t) ->
                     if Rect_set.contains_point m.Movebound.area p then
                       Some m.Movebound.id
                     else None))
          in
          (* skip points within epsilon of a boundary where both answers are
             legitimately ambiguous *)
          let near_boundary =
            List.exists
              (fun (rc : Rect.t) ->
                Float.abs (p.Point.x -. rc.Rect.x0) < 1e-6
                || Float.abs (p.Point.x -. rc.Rect.x1) < 1e-6
                || Float.abs (p.Point.y -. rc.Rect.y0) < 1e-6
                || Float.abs (p.Point.y -. rc.Rect.y1) < 1e-6)
              rects
          in
          if (not near_boundary) && r.Regions.signature.Regions.inclusive <> expected then
            ok := false
        done;
        !ok
      end)

(* ---------- Feasibility (Theorems 1-2) ---------- *)

let mb_rect id name kind r = Movebound.make ~id ~name ~kind [ r ]

let test_feasibility_simple_feasible () =
  (* movebound of area 4 (density 1) with 3 units of cells *)
  let mbs = [| mb_rect 0 "A" Movebound.Inclusive (Rect.make ~x0:0.0 ~y0:0.0 ~x1:2.0 ~y1:2.0) |] in
  let cells = [| (1.0, 1.0, 0); (1.0, 1.0, 0); (1.0, 1.0, 0); (2.0, 1.0, -1) |] in
  let inst = { Instance.design = design_of_cells cells; movebounds = mbs } in
  match Feasibility.check_instance inst with
  | Error e -> Alcotest.fail e
  | Ok (Feasibility.Feasible, _) -> ()
  | Ok (Feasibility.Infeasible _, _) -> Alcotest.fail "expected feasible"

let test_feasibility_overfull_movebound () =
  let mbs = [| mb_rect 0 "A" Movebound.Inclusive (Rect.make ~x0:0.0 ~y0:0.0 ~x1:2.0 ~y1:2.0) |] in
  let cells = [| (3.0, 1.0, 0); (2.5, 1.0, 0) |] in
  (* 5.5 units into area 4 *)
  let inst = { Instance.design = design_of_cells cells; movebounds = mbs } in
  match Feasibility.check_instance inst with
  | Error e -> Alcotest.fail e
  | Ok (Feasibility.Feasible, _) -> Alcotest.fail "expected infeasible"
  | Ok (Feasibility.Infeasible { classes; demand; capacity }, _) ->
    Alcotest.(check (list int)) "witness is class 0" [ 0 ] classes;
    check_float "demand" 5.5 demand;
    check_float "capacity" 4.0 capacity

let test_feasibility_exclusive_steals_capacity () =
  (* Chip 100 total; exclusive movebound of 96 leaves 4 for 6 units of
     unconstrained cells -> infeasible even though the chip is big enough. *)
  let mbs = [| mb_rect 0 "E" Movebound.Exclusive (Rect.make ~x0:0.0 ~y0:0.0 ~x1:9.6 ~y1:10.0) |] in
  let cells = [| (1.0, 1.0, 0); (3.0, 2.0, -1) |] in
  let inst = { Instance.design = design_of_cells cells; movebounds = mbs } in
  match Feasibility.check_instance inst with
  | Error e -> Alcotest.fail e
  | Ok (Feasibility.Feasible, _) -> Alcotest.fail "expected infeasible"
  | Ok (Feasibility.Infeasible { classes; _ }, _) ->
    (* the unconstrained class (id 1 = n_movebounds) is the witness *)
    Alcotest.(check (list int)) "witness is unconstrained class" [ 1 ] classes

let test_feasibility_nested_exclusive_infeasible () =
  (* The paper notes nested overlapping movebounds are infeasible in the
     exclusive case: normalize makes the inner bound vanish. *)
  let mbs =
    [|
      mb_rect 0 "outer" Movebound.Exclusive (Rect.make ~x0:0.0 ~y0:0.0 ~x1:6.0 ~y1:6.0);
      mb_rect 1 "inner" Movebound.Inclusive (Rect.make ~x0:1.0 ~y0:1.0 ~x1:3.0 ~y1:3.0);
    |]
  in
  let cells = [| (1.0, 1.0, 0); (1.0, 1.0, 1) |] in
  let inst = { Instance.design = design_of_cells cells; movebounds = mbs } in
  match Feasibility.check_instance inst with
  | Error _ -> ()  (* normalize reports the vanishing movebound *)
  | Ok (Feasibility.Infeasible _, _) -> ()
  | Ok (Feasibility.Feasible, _) -> Alcotest.fail "expected infeasible/ill-formed"

(* Cross-check Theorem 1: flow verdict == explicit enumeration of (1) over
   all subsets of classes. *)
let prop_feasibility_matches_enumeration =
  QCheck.Test.make ~name:"flow feasibility = subset inequality (1)" ~count:80
    (QCheck.make
       QCheck.Gen.(
         let rect =
           map
             (fun (x, y, w, h) ->
               Rect.of_corner ~x:(6.0 *. x) ~y:(6.0 *. y) ~w:(1.0 +. (3.0 *. w))
                 ~h:(1.0 +. (3.0 *. h)))
             (quad (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)
                (float_bound_inclusive 1.0) (float_bound_inclusive 1.0))
         in
         triple (pair rect rect)
           (list_size (int_range 1 6) (pair (float_range 0.5 6.0) (int_range (-1) 1)))
           unit))
    (fun ((r0, r1), cell_specs, ()) ->
      let mbs =
        [| Movebound.make ~id:0 ~name:"A" ~kind:Movebound.Inclusive [ r0 ];
           Movebound.make ~id:1 ~name:"B" ~kind:Movebound.Inclusive [ r1 ] |]
      in
      let cells =
        Array.of_list (List.map (fun (w, mb) -> (w, 1.0, mb)) cell_specs)
      in
      let inst = { Instance.design = design_of_cells cells; movebounds = mbs } in
      match Feasibility.check_instance inst with
      | Error _ -> true (* normalize can only fail with exclusives: not here *)
      | Ok (verdict, regions) ->
        let density = 1.0 in
        let class_area = Instance.area_by_class inst in
        (* enumerate all subsets of {A, B, unconstrained} *)
        let feasible_enum = ref true in
        for mask = 1 to 7 do
          let in_subset i = mask land (1 lsl i) <> 0 in
          let demand = ref 0.0 in
          for i = 0 to 2 do
            if in_subset i then demand := !demand +. class_area.(i)
          done;
          (* capacity of regions admissible to at least one subset class *)
          let cap = ref 0.0 in
          Array.iter
            (fun (r : Regions.region) ->
              let admissible_to_subset =
                (in_subset 0 && Regions.admissible r ~mb:0)
                || (in_subset 1 && Regions.admissible r ~mb:1)
                || (in_subset 2 && Regions.admissible r ~mb:(-1))
              in
              if admissible_to_subset then
                cap := !cap +. (density *. Rect_set.area r.Regions.area))
            regions.Regions.regions;
          if !demand > !cap +. 1e-6 then feasible_enum := false
        done;
        (match verdict with
         | Feasibility.Feasible -> !feasible_enum
         | Feasibility.Infeasible _ -> not !feasible_enum))

(* ---------- Legality ---------- *)

let test_legality_report () =
  let mbs = fig1_movebounds () in
  let cells = [| (1.0, 1.0, 1); (1.0, 1.0, -1); (1.0, 1.0, 2) |] in
  let design = design_of_cells cells in
  let inst = { Instance.design; movebounds = mbs } in
  let p = Placement.create 3 in
  (* cell 0 (bound M) inside M; cell 1 (default) on N (exclusive!);
     cell 2 (bound L) outside L *)
  Placement.set p 0 (Point.make 6.0 3.0);
  Placement.set p 1 (Point.make 1.0 7.0);
  Placement.set p 2 (Point.make 9.5 9.5);
  let report = Legality.check inst p in
  Alcotest.(check int) "two violations" 2 report.Legality.n_violations;
  Alcotest.(check bool) "not legal" false (Legality.is_legal inst p);
  (* fix both *)
  Placement.set p 1 (Point.make 5.0 8.0);
  Placement.set p 2 (Point.make 6.0 3.0);
  Alcotest.(check bool) "legal after fix" true (Legality.is_legal inst p);
  Alcotest.(check int) "all inside chip" 0 (Legality.count_outside_chip inst p)

let qcheck = QCheck_alcotest.to_alcotest

let suite =
  [
    Alcotest.test_case "movebound basics" `Quick test_movebound_basics;
    Alcotest.test_case "instance validate + normalize" `Quick test_instance_validate_and_normalize;
    Alcotest.test_case "normalize vanishing movebound" `Quick test_normalize_vanishing_movebound;
    Alcotest.test_case "figure-1 regions" `Quick test_fig1_regions;
    Alcotest.test_case "regions partition chip" `Quick test_regions_partition_chip;
    qcheck prop_region_signature_matches_geometry;
    Alcotest.test_case "feasibility: simple feasible" `Quick test_feasibility_simple_feasible;
    Alcotest.test_case "feasibility: overfull movebound" `Quick test_feasibility_overfull_movebound;
    Alcotest.test_case "feasibility: exclusive steals capacity" `Quick
      test_feasibility_exclusive_steals_capacity;
    Alcotest.test_case "feasibility: nested exclusive infeasible" `Quick
      test_feasibility_nested_exclusive_infeasible;
    qcheck prop_feasibility_matches_enumeration;
    Alcotest.test_case "legality report" `Quick test_legality_report;
  ]
