test/test_flow.ml: Alcotest Array Fbp_flow Fbp_util Float Graph List Maxflow Mcf Printf QCheck QCheck_alcotest Transport
