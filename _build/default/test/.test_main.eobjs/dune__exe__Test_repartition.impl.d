test/test_repartition.ml: Alcotest Array Design Fbp_core Fbp_geometry Fbp_movebound Fbp_netlist Fbp_util Fbp_workloads Float Generator List Netlist Option Printf
