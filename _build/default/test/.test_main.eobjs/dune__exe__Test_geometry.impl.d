test/test_geometry.ml: Alcotest Fbp_geometry Float Hanan List Point QCheck QCheck_alcotest Rect Rect_set
