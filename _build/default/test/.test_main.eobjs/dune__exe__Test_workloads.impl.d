test/test_workloads.ml: Alcotest Array Designs Fbp_core Fbp_geometry Fbp_legalize Fbp_movebound Fbp_netlist Fbp_workloads Float Ispd List Mb_gen Option Printf Runner
