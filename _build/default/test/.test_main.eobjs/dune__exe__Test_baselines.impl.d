test/test_baselines.ml: Alcotest Array Design Fbp_baselines Fbp_geometry Fbp_legalize Fbp_movebound Fbp_netlist Fbp_util Fbp_workloads Generator Hpwl Netlist Option Placement Printf
