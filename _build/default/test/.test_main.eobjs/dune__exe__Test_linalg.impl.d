test/test_linalg.ml: Alcotest Array Cg Csr Fbp_linalg Fbp_util Float List QCheck QCheck_alcotest Vec
