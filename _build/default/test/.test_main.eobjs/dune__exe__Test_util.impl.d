test/test_util.ml: Alcotest Array Duration Fbp_util List Parallel Pq Printf QCheck QCheck_alcotest Rng Stats String Sys Table Timer Union_find
