test/test_viz.ml: Alcotest Draw Fbp_core Fbp_geometry Fbp_movebound Fbp_netlist Fbp_viz Rect String Svg
