examples/quickstart.ml: Design Fbp_core Fbp_legalize Fbp_movebound Fbp_netlist Fbp_viz Generator Hpwl List Netlist Printf Unix
