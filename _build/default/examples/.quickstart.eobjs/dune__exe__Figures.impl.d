examples/figures.ml: Array Design Fbp_core Fbp_geometry Fbp_movebound Fbp_netlist Fbp_viz Generator List Netlist Placement Printf Rect Unix
