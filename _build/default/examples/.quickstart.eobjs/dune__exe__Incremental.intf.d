examples/incremental.mli:
