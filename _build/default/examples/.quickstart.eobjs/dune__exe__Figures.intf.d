examples/figures.mli:
