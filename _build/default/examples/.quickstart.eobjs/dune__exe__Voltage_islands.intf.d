examples/voltage_islands.mli:
