examples/soc_hierarchy.ml: Design Fbp_movebound Fbp_netlist Fbp_viz Fbp_workloads List Option Printf Unix
