examples/soc_hierarchy.mli:
