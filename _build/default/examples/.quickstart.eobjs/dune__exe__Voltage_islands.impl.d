examples/voltage_islands.ml: Array Design Fbp_core Fbp_geometry Fbp_legalize Fbp_movebound Fbp_netlist Fbp_util Fbp_viz Generator Hpwl List Netlist Printf Rect String Unix
