examples/quickstart.mli:
