examples/incremental.ml: Array Design Fbp_core Fbp_geometry Fbp_legalize Fbp_movebound Fbp_netlist Fbp_util Generator Hpwl List Netlist Placement Point Printf Rect
