(* Regenerate the paper's figures as SVGs in ./out:

   - fig1_movebounds.svg / fig1_regions.svg — the three movebounds N
     (exclusive), M, L (nested inclusive) and the resulting maximal regions;
   - fig2.svg — the FBP edge families inside one window;
   - fig3.svg — external transit arcs between the windows of a 2x2 grid;
   - fig4_step<k>.svg — realization snapshots (placement + remaining
     flow-carrying external arcs) before and after realization.

     dune exec examples/figures.exe *)

open Fbp_geometry
open Fbp_netlist

let () =
  (try Unix.mkdir "out" 0o755 with _ -> ());
  (* ------------------------------------------------ Figure 1 *)
  let chip = Rect.make ~x0:0.0 ~y0:0.0 ~x1:16.0 ~y1:12.0 in
  let movebounds =
    [|
      Fbp_movebound.Movebound.make ~id:0 ~name:"N" ~kind:Fbp_movebound.Movebound.Exclusive
        [ Rect.make ~x0:1.0 ~y0:7.0 ~x1:5.0 ~y1:11.0 ];
      Fbp_movebound.Movebound.make ~id:1 ~name:"M" ~kind:Fbp_movebound.Movebound.Inclusive
        [ Rect.make ~x0:6.0 ~y0:1.0 ~x1:15.0 ~y1:8.0 ];
      Fbp_movebound.Movebound.make ~id:2 ~name:"L" ~kind:Fbp_movebound.Movebound.Inclusive
        [ Rect.make ~x0:8.0 ~y0:2.5 ~x1:12.0 ~y1:6.0 ];
    |]
  in
  Fbp_viz.Svg.write_file "out/fig1_movebounds.svg"
    (Fbp_viz.Draw.fig1_movebounds chip movebounds);
  let regions = Fbp_movebound.Regions.decompose ~chip movebounds in
  Fbp_viz.Svg.write_file "out/fig1_regions.svg" (Fbp_viz.Draw.fig1_regions chip regions);
  Printf.printf "fig1: %d maximal regions\n" (Fbp_movebound.Regions.n_regions regions);

  (* -------------------------------------------- Figures 2, 3 *)
  let design = Generator.quick ~seed:3 ~name:"figs" 400 in
  let nl = design.Design.netlist in
  (* one small movebound so the model has a non-trivial class *)
  let c = design.Design.chip in
  let m =
    Fbp_movebound.Movebound.make ~id:0 ~name:"M" ~kind:Fbp_movebound.Movebound.Inclusive
      [ Rect.make ~x0:c.Rect.x0 ~y0:c.Rect.y0
          ~x1:(c.Rect.x0 +. (0.5 *. Rect.width c))
          ~y1:(c.Rect.y0 +. (0.5 *. Rect.height c)) ]
  in
  for i = 0 to (Netlist.n_cells nl / 5) - 1 do
    nl.Netlist.movebound.(i * 5) <- 0
  done;
  let inst = { Fbp_movebound.Instance.design; movebounds = [| m |] } in
  let inst = match Fbp_movebound.Instance.normalize inst with Ok i -> i | Error e -> failwith e in
  let regions2 = Fbp_movebound.Regions.decompose ~chip:c [| m |] in
  let density = Fbp_core.Density.create design in
  (* fig 2: a single window *)
  let grid1 = Fbp_core.Grid.create ~chip:c ~nx:1 ~ny:1 ~regions:regions2 ~density () in
  let model1 = Fbp_core.Fbp_model.build inst regions2 grid1 design.Design.initial in
  Fbp_viz.Svg.write_file "out/fig2.svg" (Fbp_viz.Draw.flow_model model1);
  (* fig 3: 2x2 windows with external transit arcs *)
  let grid2 = Fbp_core.Grid.create ~chip:c ~nx:2 ~ny:2 ~regions:regions2 ~density () in
  let model2 = Fbp_core.Fbp_model.build inst regions2 grid2 design.Design.initial in
  Fbp_viz.Svg.write_file "out/fig3.svg" (Fbp_viz.Draw.flow_model model2);
  Printf.printf "fig2: |V|=%d |E|=%d; fig3: |V|=%d |E|=%d\n"
    model1.Fbp_core.Fbp_model.n_nodes model1.Fbp_core.Fbp_model.n_edges
    model2.Fbp_core.Fbp_model.n_nodes model2.Fbp_core.Fbp_model.n_edges;

  (* ------------------------------------------------ Figure 4 *)
  (* realization steps on a 4x4 grid: snapshot before (with the flow's
     external arcs) and after realization *)
  let grid4 = Fbp_core.Grid.create ~chip:c ~nx:4 ~ny:4 ~regions:regions2 ~density () in
  let pos = Placement.copy design.Design.initial in
  let model4 = Fbp_core.Fbp_model.build inst regions2 grid4 pos in
  let sol = Fbp_core.Fbp_model.solve model4 in
  Fbp_viz.Svg.write_file "out/fig4_step1_flow.svg"
    (Fbp_viz.Draw.realization_snapshot inst pos grid4 sol.Fbp_core.Fbp_model.externals);
  let cell_nets = Netlist.cell_nets nl in
  let _ =
    Fbp_core.Realization.realize Fbp_core.Config.default inst regions2 sol pos ~cell_nets
  in
  Fbp_viz.Svg.write_file "out/fig4_step2_realized.svg"
    (Fbp_viz.Draw.realization_snapshot inst pos grid4 []);
  Printf.printf "fig4: %d external arcs realized\n"
    (List.length sol.Fbp_core.Fbp_model.externals);
  print_endline "figures written to out/"
