(** Residual flow networks with arena-allocated arcs.

    Each [add_edge] creates a forward arc (even id) and its residual twin
    (odd id); the twin of arc [a] is [rev a = a lxor 1]. Capacities, flows
    and costs are floats (cell sizes are areas). *)

type t

(** [create n] makes an empty network on nodes [0 .. n-1]. *)
val create : int -> t

val n_nodes : t -> int

(** Total number of arcs including residual twins. *)
val n_arcs : t -> int

(** Add a directed arc; returns the (even) forward arc id.
    Raises [Invalid_argument] on bad endpoints or negative capacity. *)
val add_edge : t -> u:int -> v:int -> cap:float -> cost:float -> int

(** Residual twin of an arc. *)
val rev : int -> int

val dst : t -> int -> int
val src : t -> int -> int

(** Remaining residual capacity. *)
val capacity : t -> int -> float

(** Capacity as given at construction (0 for twins). *)
val original_capacity : t -> int -> float

val cost : t -> int -> float

(** Flow currently on a forward arc. *)
val flow : t -> int -> float

(** [push t a delta] sends [delta] units over arc [a]. *)
val push : t -> int -> float -> unit

(** Iterate over all arcs (forward and residual) leaving a node. *)
val iter_out : t -> int -> (int -> unit) -> unit

val fold_out : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

(** Iterate over forward arcs only. *)
val iter_edges : t -> (int -> unit) -> unit

(** Remove all flow, restoring original capacities. *)
val reset_flow : t -> unit
