(* Maximum flow by Dinic's algorithm.

   Used for the movebound feasibility checks of Theorems 1 and 2: the
   bipartite cluster network (movebounds -> regions) is tiny, but the solver
   is written for general networks so property tests can cross-check it
   against brute-force min cuts on random graphs. *)

let eps = 1e-9

type result = {
  value : float;
  (* Nodes reachable from the source in the final residual network: the
     source side of a minimum cut (by max-flow/min-cut duality). *)
  min_cut : bool array;
}

let bfs g s level =
  Array.fill level 0 (Array.length level) (-1);
  level.(s) <- 0;
  let q = Queue.create () in
  Queue.push s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Graph.iter_out g u (fun a ->
        let v = Graph.dst g a in
        if level.(v) < 0 && Graph.capacity g a > eps then begin
          level.(v) <- level.(u) + 1;
          Queue.push v q
        end)
  done

(* DFS blocking flow with per-node arc iterators (standard Dinic detail: a
   node's exhausted arcs are skipped on re-entry). *)
let rec dfs g level iter t u pushed =
  if u = t then pushed
  else begin
    let result = ref 0.0 in
    (try
       while !result <= eps do
         match iter.(u) with
         | [] -> raise Exit
         | a :: rest ->
           let v = Graph.dst g a in
           if level.(v) = level.(u) + 1 && Graph.capacity g a > eps then begin
             let d = dfs g level iter t v (Float.min pushed (Graph.capacity g a)) in
             if d > eps then begin
               Graph.push g a d;
               result := d
             end
             else iter.(u) <- rest
           end
           else iter.(u) <- rest
       done
     with Exit -> ());
    !result
  end

let solve g ~source ~sink =
  if source = sink then invalid_arg "Maxflow.solve: source = sink";
  let n = Graph.n_nodes g in
  let level = Array.make n (-1) in
  let value = ref 0.0 in
  let continue_ = ref true in
  while !continue_ do
    bfs g source level;
    if level.(sink) < 0 then continue_ := false
    else begin
      let iter = Array.init n (fun u -> Graph.fold_out g u (fun acc a -> a :: acc) []) in
      let pushed = ref (dfs g level iter sink source infinity) in
      while !pushed > eps do
        value := !value +. !pushed;
        pushed := dfs g level iter sink source infinity
      done
    end
  done;
  (* Final BFS labels give the min-cut source side. *)
  bfs g source level;
  { value = !value; min_cut = Array.map (fun l -> l >= 0) level }
