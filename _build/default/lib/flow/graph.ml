(* Residual flow networks.

   Arcs are stored in a flat arena; every call to [add_edge] creates a
   forward arc with the given capacity and its residual twin with capacity 0,
   paired as ids [2k] and [2k+1] so the reverse of arc [a] is [a lxor 1].
   Node adjacency is a linked list threaded through the arena ([head]/[next]),
   which makes edge insertion O(1) and iteration cache-friendly enough for
   the instance sizes FBP produces (|V|, |E| linear in the number of windows,
   not cells — see paper Table I). *)

type t = {
  n : int;
  mutable m : int;                (* number of arcs incl. residual twins *)
  mutable dst : int array;        (* arc -> head node *)
  mutable src : int array;        (* arc -> tail node *)
  mutable cap : float array;      (* residual capacity *)
  mutable cap0 : float array;     (* original capacity (0 for twins) *)
  mutable cost : float array;     (* cost per unit (negated on twins) *)
  mutable next : int array;       (* adjacency linked list *)
  head : int array;               (* node -> first arc, -1 if none *)
}

let create n =
  {
    n;
    m = 0;
    dst = [||];
    src = [||];
    cap = [||];
    cap0 = [||];
    cost = [||];
    next = [||];
    head = Array.make n (-1);
  }

let n_nodes t = t.n
let n_arcs t = t.m

let ensure_capacity t =
  let capm = Array.length t.dst in
  if t.m + 2 > capm then begin
    let ncap = max 16 (2 * capm) in
    let grow_i a = let b = Array.make ncap 0 in Array.blit a 0 b 0 t.m; b in
    let grow_f a = let b = Array.make ncap 0.0 in Array.blit a 0 b 0 t.m; b in
    t.dst <- grow_i t.dst;
    t.src <- grow_i t.src;
    t.next <- grow_i t.next;
    t.cap <- grow_f t.cap;
    t.cap0 <- grow_f t.cap0;
    t.cost <- grow_f t.cost
  end

(* Add a directed arc [u -> v]; returns the forward arc id (always even). *)
let add_edge t ~u ~v ~cap ~cost =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Graph.add_edge";
  if cap < 0.0 then invalid_arg "Graph.add_edge: negative capacity";
  ensure_capacity t;
  let a = t.m in
  t.dst.(a) <- v; t.src.(a) <- u;
  t.cap.(a) <- cap; t.cap0.(a) <- cap; t.cost.(a) <- cost;
  t.next.(a) <- t.head.(u); t.head.(u) <- a;
  let b = a + 1 in
  t.dst.(b) <- u; t.src.(b) <- v;
  t.cap.(b) <- 0.0; t.cap0.(b) <- 0.0; t.cost.(b) <- -.cost;
  t.next.(b) <- t.head.(v); t.head.(v) <- b;
  t.m <- t.m + 2;
  a

let rev a = a lxor 1

let dst t a = t.dst.(a)
let src t a = t.src.(a)
let capacity t a = t.cap.(a)
let original_capacity t a = t.cap0.(a)
let cost t a = t.cost.(a)

(* Flow currently on a forward arc (meaningless on residual twins). *)
let flow t a = t.cap0.(a) -. t.cap.(a)

(* Push [delta] units over arc [a] (consuming residual capacity and opening
   the twin). *)
let push t a delta =
  t.cap.(a) <- t.cap.(a) -. delta;
  t.cap.(rev a) <- t.cap.(rev a) +. delta

let iter_out t u f =
  let a = ref t.head.(u) in
  while !a >= 0 do
    f !a;
    a := t.next.(!a)
  done

let fold_out t u f init =
  let acc = ref init in
  iter_out t u (fun a -> acc := f !acc a);
  !acc

(* Iterate over forward arcs only. *)
let iter_edges t f =
  let a = ref 0 in
  while !a < t.m do
    f !a;
    a := !a + 2
  done

(* Reset all flow to zero. *)
let reset_flow t =
  for a = 0 to t.m - 1 do
    t.cap.(a) <- t.cap0.(a)
  done
