lib/flow/graph.ml: Array
