lib/flow/maxflow.ml: Array Float Graph Queue
