lib/flow/maxflow.mli: Graph
