lib/flow/transport.mli:
