lib/flow/mcf.ml: Array Fbp_util Float Graph
