lib/flow/graph.mli:
