lib/flow/transport.ml: Array Fbp_util Float Graph List Mcf Printf
