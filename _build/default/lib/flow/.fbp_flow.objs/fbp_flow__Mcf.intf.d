lib/flow/mcf.mli: Graph
