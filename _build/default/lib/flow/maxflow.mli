(** Maximum flow (Dinic).

    Backs the movebound feasibility checks of Theorems 1–2. The graph is
    mutated: after [solve] it holds a maximum flow (readable per-arc through
    {!Graph.flow}). *)

type result = {
  value : float;  (** value of the maximum flow *)
  min_cut : bool array;
      (** [min_cut.(v)] iff [v] is on the source side of a minimum cut *)
}

(** Raises [Invalid_argument] if [source = sink]. *)
val solve : Graph.t -> source:int -> sink:int -> result
