(* Placements: cell-center coordinates for every cell of a netlist.

   Center coordinates are used throughout (the QP is naturally formulated on
   centers); conversion to lower-left corners happens only at the
   legalization/IO boundary. *)

open Fbp_geometry

type t = {
  x : float array;
  y : float array;
}

let create n = { x = Array.make n 0.0; y = Array.make n 0.0 }

let copy p = { x = Array.copy p.x; y = Array.copy p.y }

let n_cells p = Array.length p.x

let get p c = Point.make p.x.(c) p.y.(c)

let set p c (pt : Point.t) =
  p.x.(c) <- pt.Point.x;
  p.y.(c) <- pt.Point.y

(* Rectangle covered by cell [c] of netlist [nl] under this placement. *)
let cell_rect nl p c =
  Rect.of_center ~cx:p.x.(c) ~cy:p.y.(c) ~w:nl.Netlist.widths.(c)
    ~h:nl.Netlist.heights.(c)

(* Average displacement from another placement — the metric legalization
   minimizes. *)
let avg_displacement a b =
  let n = n_cells a in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    for c = 0 to n - 1 do
      acc := !acc +. Float.abs (a.x.(c) -. b.x.(c)) +. Float.abs (a.y.(c) -. b.y.(c))
    done;
    !acc /. float_of_int n
  end

let max_displacement a b =
  let n = n_cells a in
  let worst = ref 0.0 in
  for c = 0 to n - 1 do
    let d = Float.abs (a.x.(c) -. b.x.(c)) +. Float.abs (a.y.(c) -. b.y.(c)) in
    if d > !worst then worst := d
  done;
  !worst

(* Center of gravity of a set of cells, weighted by area. *)
let center_of_gravity nl p cells =
  let sx = ref 0.0 and sy = ref 0.0 and mass = ref 0.0 in
  List.iter
    (fun c ->
      let m = Netlist.size nl c in
      sx := !sx +. (m *. p.x.(c));
      sy := !sy +. (m *. p.y.(c));
      mass := !mass +. m)
    cells;
  if !mass <= 0.0 then None
  else Some (Point.make (!sx /. !mass) (!sy /. !mass))
