(** Placements: cell-center coordinates for every cell of a netlist. *)

open Fbp_geometry

type t = {
  x : float array;
  y : float array;
}

(** All-zero placement for [n] cells. *)
val create : int -> t

val copy : t -> t
val n_cells : t -> int
val get : t -> int -> Point.t
val set : t -> int -> Point.t -> unit

(** Rectangle covered by a cell under this placement. *)
val cell_rect : Netlist.t -> t -> int -> Rect.t

(** Mean per-cell L1 displacement between two placements. *)
val avg_displacement : t -> t -> float

val max_displacement : t -> t -> float

(** Area-weighted centroid of a set of cells; [None] for zero mass. *)
val center_of_gravity : Netlist.t -> t -> int list -> Point.t option
