(** BestChoice clustering (Nam et al., the paper's experimental setup uses
    it with cluster ratio 5 for the industrial tables and 2 for ISPD).

    Score-based bottom-up merging (connectivity over combined area) with a
    lazy-update global heap, down to n/ratio clusters.  Fixed cells never
    merge; a cluster keeps a movebound only when all members agree. *)

type t = {
  coarse : Netlist.t;
  cluster_of : int array;  (** original cell → coarse cell *)
  members : int list array;  (** coarse cell → original cells *)
}

(** [best_choice ~ratio nl] clusters to ~[n/ratio] cells.
    [max_cluster_area] bounds individual clusters. *)
val best_choice : ?ratio:float -> ?max_cluster_area:float -> Netlist.t -> t

(** Cluster positions = area-weighted member centroids. *)
val coarse_placement : t -> Netlist.t -> Placement.t -> Placement.t

(** Write every member at its cluster's position into [out]. *)
val expand : t -> Placement.t -> Placement.t -> unit
