(** Plain-text design interchange, loosely Bookshelf-style (one file per
    design; see the grammar in the implementation header). *)

(** Raised by readers with the line number and a message. *)
exception Parse_error of int * string

val write_channel : out_channel -> Design.t -> unit
val write_file : string -> Design.t -> unit

(** Raises {!Parse_error} on malformed input. *)
val read_channel : ?name:string -> in_channel -> Design.t

val read_file : string -> Design.t
