(** Deterministic synthetic design generator (see DESIGN.md for why the
    paper's proprietary testbed is substituted).

    Reproduces the structural knobs that drive placement difficulty: a
    clustered golden placement, a Rent-style net-degree distribution with
    mostly-local pins, fixed macros, boundary pads, rows, and a target
    density. Same parameters ⇒ bit-identical design. *)

type params = {
  name : string;
  n_cells : int;
  utilization : float;  (** movable area / chip capacity *)
  n_macros : int;
  macro_fraction : float;  (** chip-area fraction covered by macros *)
  n_pads : int;
  avg_net_degree : float;
  locality : float;  (** probability a net pin stays in-cluster *)
  cluster_size : int;
  target_density : float;
  seed : int;
}

val default_params : params

(** Raises [Invalid_argument] for fewer than 2 cells. *)
val generate : params -> Design.t

(** [quick n] = default parameters with [n] cells. *)
val quick : ?seed:int -> ?name:string -> int -> Design.t
