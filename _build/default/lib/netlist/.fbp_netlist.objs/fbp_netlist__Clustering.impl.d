lib/netlist/clustering.ml: Array Fbp_util Float Hashtbl List Netlist Placement Pq Union_find
