lib/netlist/design.ml: Fbp_geometry Float List Netlist Placement Rect Rect_set
