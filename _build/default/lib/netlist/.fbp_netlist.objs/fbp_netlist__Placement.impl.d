lib/netlist/placement.ml: Array Fbp_geometry Float List Netlist Point Rect
