lib/netlist/bookshelf.ml: Array Design Fbp_geometry Filename Fun List Netlist Placement Printf Rect String
