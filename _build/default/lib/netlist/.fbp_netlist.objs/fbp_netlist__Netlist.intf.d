lib/netlist/netlist.mli:
