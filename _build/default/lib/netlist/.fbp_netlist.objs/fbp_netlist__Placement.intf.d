lib/netlist/placement.mli: Fbp_geometry Netlist Point Rect
