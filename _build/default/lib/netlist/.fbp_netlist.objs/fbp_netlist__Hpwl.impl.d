lib/netlist/hpwl.ml: Array Netlist Placement
