lib/netlist/design.mli: Fbp_geometry Netlist Placement Rect
