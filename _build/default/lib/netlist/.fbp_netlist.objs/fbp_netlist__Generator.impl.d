lib/netlist/generator.ml: Array Design Fbp_geometry Fbp_util Float List Netlist Placement Point Printf Rect Rng
