lib/netlist/hpwl.mli: Netlist Placement
