lib/netlist/generator.mli: Design
