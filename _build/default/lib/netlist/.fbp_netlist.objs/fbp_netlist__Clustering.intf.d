lib/netlist/clustering.mli: Netlist Placement
