lib/netlist/netlist.ml: Array Printf
