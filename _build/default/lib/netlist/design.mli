(** A placement instance: netlist plus chip geometry. *)

open Fbp_geometry

type t = {
  name : string;
  chip : Rect.t;
  row_height : float;
  netlist : Netlist.t;
  blockages : Rect.t list;  (** fixed-macro outlines and hard blockages *)
  initial : Placement.t;
      (** golden/starting placement (FBP accepts any initial placement) *)
  target_density : float;  (** max bin utilization placers may reach *)
}

val n_rows : t -> int

(** Chip capacity available to movable cells under the target density. *)
val capacity : t -> float

(** capacity / movable area; >= 1 for feasible designs. *)
val whitespace_ratio : t -> float

val validate : t -> (unit, string) result
