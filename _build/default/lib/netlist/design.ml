(* A placement instance: netlist plus chip geometry.

   [initial] plays two roles, matching the paper's setting: it is the
   "golden" placement the synthetic generator derives net locality from, and
   it is the starting point handed to the placers (FBP explicitly supports
   starting from *any* given placement — Section IV). *)

open Fbp_geometry

type t = {
  name : string;
  chip : Rect.t;
  row_height : float;
  netlist : Netlist.t;
  blockages : Rect.t list;  (* fixed-macro outlines and hard blockages *)
  initial : Placement.t;
  target_density : float;  (* max utilization placers may fill bins to *)
}

let n_rows d =
  int_of_float (Float.round (Rect.height d.chip /. d.row_height))

(* Free area of the chip under the target density — the capacity available
   to movable cells ("capa" in the paper, for the whole chip). *)
let capacity d =
  let block_area =
    Rect_set.area
      (Rect_set.of_rects (List.filter_map (fun b -> Rect.intersect b d.chip) d.blockages))
  in
  (Rect.area d.chip -. block_area) *. d.target_density

(* Whitespace ratio: capacity / movable area (>= 1 for feasible designs). *)
let whitespace_ratio d =
  let movable = Netlist.total_movable_area d.netlist in
  if movable <= 0.0 then infinity else capacity d /. movable

let validate d =
  match Netlist.validate d.netlist with
  | Error _ as e -> e
  | Ok () ->
    if Rect.is_empty d.chip then Error "empty chip area"
    else if d.row_height <= 0.0 then Error "non-positive row height"
    else if d.target_density <= 0.0 || d.target_density > 1.0 then
      Error "target density must be in (0, 1]"
    else if whitespace_ratio d < 1.0 then
      Error "movable cell area exceeds chip capacity"
    else Ok ()
