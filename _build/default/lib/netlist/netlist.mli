(** Circuits: rectangular cells connected by multi-pin nets
    (struct-of-arrays layout for the placement hot loops). *)

type pin = {
  cell : int;  (** -1 for a fixed pad; otherwise a cell index *)
  dx : float;  (** offset from cell center, or absolute x for pads *)
  dy : float;
}

type net = { pins : pin array; weight : float }

type t = {
  n_cells : int;
  names : string array;
  widths : float array;
  heights : float array;
  fixed : bool array;  (** pre-placed macros keep their initial position *)
  movebound : int array;  (** movebound id; -1 = unconstrained *)
  nets : net array;
}

val n_cells : t -> int
val n_nets : t -> int
val n_pins : t -> int

(** Cell area (the "size(c)" of the paper). *)
val size : t -> int -> float

val total_movable_area : t -> float

(** Structural sanity check: array lengths, pin targets, weights, sizes. *)
val validate : t -> (unit, string) result

(** Incident net ids per cell (fresh arrays; cache at call sites). *)
val cell_nets : t -> int list array
