(* Half-perimeter wirelength — the quality metric of every table in the
   paper.  For each net, the bounding box of its pin positions contributes
   weight * (width + height). *)

let pin_position (_nl : Netlist.t) (p : Placement.t) (pin : Netlist.pin) =
  if pin.Netlist.cell < 0 then (pin.Netlist.dx, pin.Netlist.dy)
  else
    ( p.Placement.x.(pin.Netlist.cell) +. pin.Netlist.dx,
      p.Placement.y.(pin.Netlist.cell) +. pin.Netlist.dy )

let of_net nl p (net : Netlist.net) =
  let np = Array.length net.Netlist.pins in
  if np <= 1 then 0.0
  else begin
    let x0 = ref infinity and x1 = ref neg_infinity in
    let y0 = ref infinity and y1 = ref neg_infinity in
    for i = 0 to np - 1 do
      let x, y = pin_position nl p net.Netlist.pins.(i) in
      if x < !x0 then x0 := x;
      if x > !x1 then x1 := x;
      if y < !y0 then y0 := y;
      if y > !y1 then y1 := y
    done;
    net.Netlist.weight *. (!x1 -. !x0 +. !y1 -. !y0)
  end

let total nl p =
  Array.fold_left (fun acc net -> acc +. of_net nl p net) 0.0 nl.Netlist.nets

(* HPWL in the "millions of layout units" scale the tables use. *)
let total_millions nl p = total nl p /. 1e6
