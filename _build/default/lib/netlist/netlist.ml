(* Circuits: rectangular cells connected by multi-pin nets.

   Struct-of-arrays layout: placement algorithms sweep over millions of cells
   and the hot loops (HPWL, QP system assembly, partitioning) only touch a
   couple of attributes at a time.

   A pin either belongs to a cell (offset from the cell's center) or is a
   fixed pad at absolute chip coordinates ([cell = -1]).  Fixed cells
   (macros, pre-placed blocks) keep their initial position through placement
   and act as blockages via the density map. *)

type pin = {
  cell : int;  (* -1 for a fixed pad; otherwise a cell index *)
  dx : float;  (* offset from cell center, or absolute x for pads *)
  dy : float;
}

type net = {
  pins : pin array;
  weight : float;
}

type t = {
  n_cells : int;
  names : string array;
  widths : float array;
  heights : float array;
  fixed : bool array;
  movebound : int array;  (* movebound id, -1 = unconstrained *)
  nets : net array;
}

let n_cells t = t.n_cells
let n_nets t = Array.length t.nets

let size t c = t.widths.(c) *. t.heights.(c)

let total_movable_area t =
  let acc = ref 0.0 in
  for c = 0 to t.n_cells - 1 do
    if not t.fixed.(c) then acc := !acc +. size t c
  done;
  !acc

let n_pins t =
  Array.fold_left (fun acc n -> acc + Array.length n.pins) 0 t.nets

let validate t =
  let n = t.n_cells in
  if Array.length t.names <> n || Array.length t.widths <> n
     || Array.length t.heights <> n || Array.length t.fixed <> n
     || Array.length t.movebound <> n
  then Error "attribute arrays disagree with n_cells"
  else begin
    let bad = ref None in
    Array.iteri
      (fun i (net : net) ->
        if Array.length net.pins < 1 then bad := Some (Printf.sprintf "net %d has no pins" i);
        Array.iter
          (fun p ->
            if p.cell < -1 || p.cell >= n then
              bad := Some (Printf.sprintf "net %d has pin on bad cell %d" i p.cell))
          net.pins;
        if net.weight <= 0.0 then bad := Some (Printf.sprintf "net %d has weight <= 0" i))
      t.nets;
    Array.iteri
      (fun c w ->
        if w <= 0.0 || t.heights.(c) <= 0.0 then
          bad := Some (Printf.sprintf "cell %d has non-positive size" c))
      t.widths;
    match !bad with None -> Ok () | Some m -> Error m
  end

(* Per-cell incident nets, computed once and cached by callers that need it
   (QP assembly, local realization). *)
let cell_nets t =
  let out = Array.make t.n_cells [] in
  Array.iteri
    (fun i (net : net) ->
      Array.iter (fun p -> if p.cell >= 0 then out.(p.cell) <- i :: out.(p.cell)) net.pins)
    t.nets;
  out
