(** Half-perimeter wirelength, the quality metric of all paper tables. *)

(** Absolute position of a pin under a placement. *)
val pin_position : Netlist.t -> Placement.t -> Netlist.pin -> float * float

(** Weighted half-perimeter of one net's pin bounding box. *)
val of_net : Netlist.t -> Placement.t -> Netlist.net -> float

val total : Netlist.t -> Placement.t -> float

(** [total] scaled by 1e-6 (the paper's table units). *)
val total_millions : Netlist.t -> Placement.t -> float
