(** A movebounded placement instance: design + movebound table. *)

open Fbp_geometry

type t = {
  design : Fbp_netlist.Design.t;
  movebounds : Movebound.t array;  (** index = movebound id *)
}

val n_movebounds : t -> int

val movebound_of_cell : t -> int -> Movebound.t option

(** Movable cells per movebound class; entry [n_movebounds t] holds the
    unconstrained cells. *)
val cells_by_class : t -> int list array

(** Movable cell area per class (same indexing as {!cells_by_class}). *)
val area_by_class : t -> float array

(** Structural checks, including the paper's preprocessing assumption that
    exclusive movebounds overlap no other movebound. *)
val validate : t -> (unit, string) result

(** Subtract exclusive areas from all other movebounds (the modification the
    paper assumes done "at the input"); [Error] if a movebound vanishes. *)
val normalize : t -> (t, string) result

(** A(μ(c)) minus all foreign exclusive areas — where cell [c] may legally
    be placed. *)
val admissible_area : t -> int -> Rect_set.t

(** Wrap a plain design as an instance with no movebounds. *)
val unconstrained : Fbp_netlist.Design.t -> t
