(** Feasibility of movebounded placement (Theorems 1–2): a clustered MaxFlow
    decides in polynomial time whether a fractional placement exists; the
    min cut witnesses the violated instance of inequality (1). *)

type verdict =
  | Feasible
  | Infeasible of {
      classes : int list;
          (** movebound ids (index [n_movebounds] = unconstrained class) on
              the source side of the min cut — a violating M′ of (1) *)
      demand : float;  (** total cell size of those classes *)
      capacity : float;  (** capacity of their admissible regions *)
    }

(** [check inst regions ~capacity_of] runs the clustered MaxFlow of
    Theorem 2. [capacity_of] maps a region to its free capacity. *)
val check :
  Instance.t -> Regions.t -> capacity_of:(Regions.region -> float) -> verdict

(** Region area times a uniform density target. *)
val plain_capacity : density:float -> Regions.region -> float

(** Normalize → decompose → check; returns the verdict and the regions. *)
val check_instance :
  ?capacity_of:(Regions.region -> float) option ->
  Instance.t ->
  (verdict * Regions.t, string) result
