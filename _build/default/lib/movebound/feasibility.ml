(* Feasibility of movebounded placement (Theorems 1 and 2).

   Condition (1): for every subset M' of movebounds, the total size of cells
   bound to M' must fit in the capacity of the union of their areas.
   Theorem 1 reduces the exponentially many subset checks to one MaxFlow on
   the bipartite network cells -> regions; Theorem 2 clusters all cells of
   the same movebound into a single node, giving the
   O(|C| + |M|^2 |R|) bound.  We implement the clustered variant (the
   unclustered one would only differ in the trivially-parallel supply arcs).

   On infeasibility the MaxFlow min cut yields a witness: the movebound
   classes on the source side of the cut violate inequality (1). *)

open Fbp_flow

type verdict =
  | Feasible
  | Infeasible of {
      classes : int list;
          (* movebound ids (n_movebounds = unconstrained class) on the
             source side of the min cut: a violating M' of condition (1) *)
      demand : float;  (* total size of cells in those classes *)
      capacity : float;  (* capacity of the union of admissible regions *)
    }

(* [capacity_of] maps a region to its free capacity (area minus blockages,
   times target density); supplied by the caller so that the density model
   lives in one place (fbp_core.Density). *)
let check (inst : Instance.t) (regions : Regions.t) ~capacity_of =
  let k = Instance.n_movebounds inst in
  let nr = Regions.n_regions regions in
  let class_area = Instance.area_by_class inst in
  (* nodes: 0 = source, 1 = sink, 2..2+k = classes, then regions *)
  let source = 0 and sink = 1 in
  let class_node i = 2 + i in
  let region_node r = 2 + k + 1 + r in
  let g = Graph.create (2 + k + 1 + nr) in
  let total_demand = Array.fold_left ( +. ) 0.0 class_area in
  let infinite = total_demand +. 1.0 in
  Array.iteri
    (fun i area ->
      if area > 0.0 then
        ignore (Graph.add_edge g ~u:source ~v:(class_node i) ~cap:area ~cost:0.0))
    class_area;
  Array.iter
    (fun (r : Regions.region) ->
      let cap = capacity_of r in
      if cap > 0.0 then
        ignore (Graph.add_edge g ~u:(region_node r.Regions.id) ~v:sink ~cap ~cost:0.0);
      (* admissible classes *)
      for i = 0 to k do
        let mb = if i = k then -1 else i in
        if class_area.(i) > 0.0 && Regions.admissible r ~mb then
          ignore
            (Graph.add_edge g ~u:(class_node i) ~v:(region_node r.Regions.id)
               ~cap:infinite ~cost:0.0)
      done)
    regions.Regions.regions;
  let result = Maxflow.solve g ~source ~sink in
  if result.Maxflow.value >= total_demand -. 1e-6 then Feasible
  else begin
    (* Classes on the source side of the min cut witness the violation. *)
    let classes = ref [] in
    for i = 0 to k do
      if class_area.(i) > 0.0 && result.Maxflow.min_cut.(class_node i) then
        classes := i :: !classes
    done;
    let demand =
      List.fold_left (fun acc i -> acc +. class_area.(i)) 0.0 !classes
    in
    let capacity =
      Array.fold_left
        (fun acc (r : Regions.region) ->
          (* regions reachable from the cut classes are on the source side *)
          if result.Maxflow.min_cut.(region_node r.Regions.id) then
            acc +. capacity_of r
          else acc)
        0.0 regions.Regions.regions
    in
    Infeasible { classes = List.rev !classes; demand; capacity }
  end

(* Default capacity model when no density/blockage information is needed:
   plain region area times a uniform density target. *)
let plain_capacity ~density (r : Regions.region) =
  density *. Fbp_geometry.Rect_set.area r.Regions.area

(* End-to-end convenience used by the CLI and the examples: normalize,
   decompose, check. *)
let check_instance ?(capacity_of = None) (inst : Instance.t) =
  match Instance.normalize inst with
  | Error e -> Error e
  | Ok inst ->
    let regions =
      Regions.decompose ~chip:inst.Instance.design.Fbp_netlist.Design.chip
        inst.Instance.movebounds
    in
    let capacity_of =
      match capacity_of with
      | Some f -> f
      | None ->
        plain_capacity ~density:inst.Instance.design.Fbp_netlist.Design.target_density
    in
    Ok (check inst regions ~capacity_of, regions)
