(** Movebounds (Definition 1): a finite rectangle set plus a flavour. *)

open Fbp_geometry

type kind =
  | Inclusive  (** cells of M must stay inside A(M) *)
  | Exclusive  (** additionally, A(M) is a blockage for every other cell *)

type t = {
  id : int;  (** dense index; the value stored in [Netlist.movebound] *)
  name : string;
  kind : kind;
  area : Rect_set.t;
}

(** Raises [Invalid_argument] if the union of [rects] is empty. *)
val make : id:int -> name:string -> kind:kind -> Rect.t list -> t

val is_exclusive : t -> bool
val kind_to_string : kind -> string

(** Is the rectangle entirely inside A(M)? *)
val contains_rect : t -> Rect.t -> bool

val pp : Format.formatter -> t -> unit
