(** Region decomposition (Definition 2 + Lemma 1): Hanan cells stamped with
    coverage signatures and merged into maximal regions. *)

open Fbp_geometry

type signature = {
  exclusive_owner : int;  (** movebound id, -1 = none *)
  inclusive : int list;  (** sorted ids of inclusive movebounds covering *)
}

val default_signature : signature
val signature_equal : signature -> signature -> bool

type region = {
  id : int;
  area : Rect_set.t;
  signature : signature;
}

type t = {
  regions : region array;
  hanan : Hanan.t;
  region_of_cell : int array;  (** hanan cell -> region id *)
}

val n_regions : t -> int

(** May a cell of movebound [mb] ([-1] = unconstrained) sit in the region? *)
val admissible : region -> mb:int -> bool

(** Movebound ids covering the region (Definition 2's "M covers r"). *)
val covering_movebounds : region -> int list

(** Decompose the chip into maximal regions. Call after
    {!Instance.normalize} so exclusive areas overlap nothing. *)
val decompose : chip:Rect.t -> Movebound.t array -> t

(** Region containing a point (clamped into the chip). *)
val region_at : t -> Point.t -> region
