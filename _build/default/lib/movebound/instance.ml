(* A movebounded placement instance: a design plus its movebound table.

   The paper assumes (Section II) that no exclusive movebound overlaps any
   other movebound — "such situations can easily be detected and modified at
   the input".  [normalize] performs exactly that modification: exclusive
   areas are subtracted from every other movebound's area (and from the
   implicit chip-wide bound of unconstrained cells, which the region
   decomposition handles via signatures). *)

open Fbp_geometry

type t = {
  design : Fbp_netlist.Design.t;
  movebounds : Movebound.t array;  (* index = movebound id *)
}

let n_movebounds t = Array.length t.movebounds

let movebound_of_cell t c =
  let id = t.design.Fbp_netlist.Design.netlist.Fbp_netlist.Netlist.movebound.(c) in
  if id < 0 then None else Some t.movebounds.(id)

(* Cells per movebound class; class index |M| is the unconstrained class. *)
let cells_by_class t =
  let nl = t.design.Fbp_netlist.Design.netlist in
  let k = n_movebounds t in
  let classes = Array.make (k + 1) [] in
  for c = nl.Fbp_netlist.Netlist.n_cells - 1 downto 0 do
    if not nl.Fbp_netlist.Netlist.fixed.(c) then begin
      let id = nl.Fbp_netlist.Netlist.movebound.(c) in
      let idx = if id < 0 then k else id in
      classes.(idx) <- c :: classes.(idx)
    end
  done;
  classes

(* Total movable cell area per class (last entry = unconstrained). *)
let area_by_class t =
  let nl = t.design.Fbp_netlist.Design.netlist in
  let k = n_movebounds t in
  let areas = Array.make (k + 1) 0.0 in
  for c = 0 to nl.Fbp_netlist.Netlist.n_cells - 1 do
    if not nl.Fbp_netlist.Netlist.fixed.(c) then begin
      let id = nl.Fbp_netlist.Netlist.movebound.(c) in
      let idx = if id < 0 then k else id in
      areas.(idx) <- areas.(idx) +. Fbp_netlist.Netlist.size nl c
    end
  done;
  areas

let validate t =
  let nl = t.design.Fbp_netlist.Design.netlist in
  let k = n_movebounds t in
  let bad = ref None in
  Array.iteri
    (fun i (m : Movebound.t) ->
      if m.Movebound.id <> i then bad := Some (Printf.sprintf "movebound %d has id %d" i m.Movebound.id))
    t.movebounds;
  Array.iteri
    (fun c id ->
      if id >= k then bad := Some (Printf.sprintf "cell %d references movebound %d" c id))
    nl.Fbp_netlist.Netlist.movebound;
  (* exclusive movebounds must not overlap any other movebound *)
  Array.iter
    (fun (m : Movebound.t) ->
      if Movebound.is_exclusive m then
        Array.iter
          (fun (m' : Movebound.t) ->
            if m'.Movebound.id <> m.Movebound.id
               && Rect_set.overlaps m.Movebound.area m'.Movebound.area
            then
              bad :=
                Some
                  (Printf.sprintf "exclusive movebound %s overlaps %s (run normalize)"
                     m.Movebound.name m'.Movebound.name))
          t.movebounds)
    t.movebounds;
  match !bad with None -> Ok () | Some m -> Error m

(* Subtract exclusive areas from every *other* movebound, enforcing the
   paper's preprocessing assumption.  Fails if some movebound's area becomes
   empty (its cells would have nowhere to go). *)
let normalize t =
  let exclusive_union =
    Array.fold_left
      (fun acc (m : Movebound.t) ->
        if Movebound.is_exclusive m then Rect_set.union acc m.Movebound.area else acc)
      Rect_set.empty t.movebounds
  in
  let bad = ref None in
  let movebounds =
    Array.map
      (fun (m : Movebound.t) ->
        if Movebound.is_exclusive m then m
        else begin
          let area = Rect_set.subtract m.Movebound.area exclusive_union in
          if Rect_set.is_empty area then begin
            bad := Some (Printf.sprintf "movebound %s vanishes under exclusive areas" m.Movebound.name);
            m
          end
          else { m with Movebound.area }
        end)
      t.movebounds
  in
  match !bad with
  | Some msg -> Error msg
  | None -> Ok { t with movebounds }

(* The admissible area of a cell: A(mu(c)), minus every foreign exclusive
   movebound (the paper's legality condition after normalization). *)
let admissible_area t c =
  let chip_set = Rect_set.of_rect t.design.Fbp_netlist.Design.chip in
  let base =
    match movebound_of_cell t c with
    | Some m -> m.Movebound.area
    | None -> chip_set
  in
  Array.fold_left
    (fun acc (m : Movebound.t) ->
      match movebound_of_cell t c with
      | Some own when own.Movebound.id = m.Movebound.id -> acc
      | _ ->
        if Movebound.is_exclusive m then Rect_set.subtract acc m.Movebound.area else acc)
    base t.movebounds

(* Instance without movebounds (every placement problem is a movebounded one
   with A(mu(c)) = chip — Section II). *)
let unconstrained design = { design; movebounds = [||] }
