(* Movebounds (Definition 1 of the paper): a movebound M is a pair
   (A(M), xi(M)) of a finite set of axis-parallel rectangles — possibly
   non-convex, possibly overlapping other movebounds — and a flavour:

   - inclusive: cells with mu(c) = M must be placed inside A(M); other cells
     may still use the area;
   - exclusive: additionally, A(M) is a blockage for every other cell. *)

open Fbp_geometry

type kind =
  | Inclusive
  | Exclusive

type t = {
  id : int;  (* dense index; equals the value stored in Netlist.movebound *)
  name : string;
  kind : kind;
  area : Rect_set.t;
}

let make ~id ~name ~kind rects =
  let area = Rect_set.of_rects rects in
  if Rect_set.is_empty area then invalid_arg "Movebound.make: empty area";
  { id; name; kind; area }

let is_exclusive m = m.kind = Exclusive

let kind_to_string = function Inclusive -> "inclusive" | Exclusive -> "exclusive"

(* Does the movebound's area entirely contain the rectangle (i.e. is a cell
   covering [r] legally inside M)? *)
let contains_rect m r = Rect_set.covers_rect m.area r

let pp fmt m =
  Format.fprintf fmt "%s(%s):%a" m.name (kind_to_string m.kind) Rect_set.pp m.area
