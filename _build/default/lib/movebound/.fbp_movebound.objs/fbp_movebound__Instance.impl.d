lib/movebound/instance.ml: Array Fbp_geometry Fbp_netlist Movebound Printf Rect_set
