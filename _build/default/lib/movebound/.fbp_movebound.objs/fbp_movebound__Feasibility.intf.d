lib/movebound/feasibility.mli: Instance Regions
