lib/movebound/regions.ml: Array Fbp_geometry Fbp_util Hanan List Movebound Point Rect Rect_set Union_find
