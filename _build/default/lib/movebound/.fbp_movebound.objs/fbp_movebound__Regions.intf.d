lib/movebound/regions.mli: Fbp_geometry Hanan Movebound Point Rect Rect_set
