lib/movebound/legality.mli: Fbp_netlist Instance Placement
