lib/movebound/movebound.mli: Fbp_geometry Format Rect Rect_set
