lib/movebound/feasibility.ml: Array Fbp_flow Fbp_geometry Fbp_netlist Graph Instance List Maxflow Regions
