lib/movebound/movebound.ml: Fbp_geometry Format Rect_set
