lib/movebound/legality.ml: Array Design Fbp_geometry Fbp_netlist Instance List Movebound Netlist Placement Printf Rect Rect_set
