lib/movebound/instance.mli: Fbp_geometry Fbp_netlist Movebound Rect_set
