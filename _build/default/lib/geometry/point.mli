(** Points in abstract layout units (row height = 1.0). *)

type t = { x : float; y : float }

val make : float -> float -> t
val origin : t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

(** L1 (Manhattan) distance — the cost metric of the paper's flow model. *)
val dist_l1 : t -> t -> float

val dist_l2 : t -> t -> float

(** [lerp t a b] interpolates: [t = 0] gives [a], [t = 1] gives [b]. *)
val lerp : float -> t -> t -> t

(** Componentwise equality within [eps] (default 1e-9). *)
val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
