(** Finite unions of axis-parallel rectangles, kept pairwise disjoint.

    Movebound areas (Definition 1 of the paper) and regions (Definition 2)
    are finite sets of rectangles; this module supplies their boolean
    algebra: measurement, the "covers" relation, subtraction (blockages,
    exclusive areas) and point projection. *)

type t

val empty : t
val is_empty : t -> bool

(** The disjoint rectangles making up the set. *)
val rects : t -> Rect.t list

val of_rect : Rect.t -> t

(** Union of arbitrary (possibly overlapping) rectangles. *)
val of_rects : Rect.t list -> t

(** Unchecked fast path for rectangles the caller guarantees pairwise
    disjoint (e.g. Hanan cells). *)
val of_disjoint : Rect.t list -> t

(** [add t r] inserts [r], preserving disjointness. *)
val add : t -> Rect.t -> t

val union : t -> t -> t
val area : t -> float
val subtract_rect : t -> Rect.t -> t
val subtract : t -> t -> t
val intersect_rect : t -> Rect.t -> t
val intersect : t -> t -> t

(** Is the rectangle entirely inside the union? *)
val covers_rect : t -> Rect.t -> bool

(** [covers t s]: is the set [s] entirely inside [t]?  This is the
    "M covers r" relation of Definition 2. *)
val covers : t -> t -> bool

val contains_point : t -> Point.t -> bool
val overlaps_rect : t -> Rect.t -> bool
val overlaps : t -> t -> bool
val overlap_area : t -> t -> float

(** Nearest point of the set in L2. Raises [Invalid_argument] on empty. *)
val project_point : t -> Point.t -> Point.t

(** L1 distance from a point to the set ([infinity] for the empty set). *)
val dist_l1_point : t -> Point.t -> float

(** Area-weighted centroid — the embedding of region nodes in the flow
    model. Raises [Invalid_argument] on a zero-area set. *)
val center_of_gravity : t -> Point.t

(** Raises [Invalid_argument] on empty. *)
val bbox : t -> Rect.t

val pp : Format.formatter -> t -> unit
