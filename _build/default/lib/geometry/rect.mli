(** Axis-parallel rectangles — the atom of all placement geometry.

    Coordinates are [x0 <= x1], [y0 <= y1]; constructors enforce this.
    Comparisons use a 1e-9 epsilon throughout. *)

type t = { x0 : float; y0 : float; x1 : float; y1 : float }

(** Raises [Invalid_argument] on negative extent. *)
val make : x0:float -> y0:float -> x1:float -> y1:float -> t

(** Rectangle from lower-left corner and size. *)
val of_corner : x:float -> y:float -> w:float -> h:float -> t

(** Rectangle from center and size. *)
val of_center : cx:float -> cy:float -> w:float -> h:float -> t

val width : t -> float
val height : t -> float
val area : t -> float

(** True when either extent is below epsilon. *)
val is_empty : t -> bool

val center : t -> Point.t
val contains_point : t -> Point.t -> bool

(** [contains r s]: is [s] entirely inside [r]? *)
val contains : t -> t -> bool

(** Positive-area overlap; touching edges do not count. *)
val overlaps : t -> t -> bool

(** [None] when the overlap has no positive area. *)
val intersect : t -> t -> t option

val intersection_area : t -> t -> float

(** Smallest rectangle containing both. *)
val bbox : t -> t -> t

val translate : t -> dx:float -> dy:float -> t

(** Grow (or shrink, if negative) by [d] on every side. *)
val inflate : t -> float -> t

(** Nearest point of the rectangle to [p]. *)
val clamp_point : t -> Point.t -> Point.t

val dist_l1_point : t -> Point.t -> float
val dist_l2_point : t -> Point.t -> float

(** [subtract a b] decomposes [a \ b] into at most 4 disjoint rectangles. *)
val subtract : t -> t -> t list

val equal : ?eps:float -> t -> t -> bool

(** Do the rectangles share a boundary segment of positive length? *)
val adjacent : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
