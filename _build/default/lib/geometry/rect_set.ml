(* Finite unions of axis-parallel rectangles, kept pairwise disjoint.

   Movebound areas (Definition 1) and regions (Definition 2) are "finite sets
   of axis-parallel rectangles"; this module provides the boolean algebra the
   paper needs: area/capacity measurement, containment tests for the
   "M covers r" relation, subtraction for blockages and exclusive movebounds,
   and projection of points into the set (used when repositioning cells into
   their assigned region). *)

type t = Rect.t list (* invariant: pairwise non-overlapping, none empty *)

let empty = []

let is_empty t = t = []

let rects t = t

let of_rect r = if Rect.is_empty r then [] else [ r ]

(* Add one rectangle, keeping disjointness by inserting only the parts of [r]
   not already covered. *)
let add t r =
  let pieces =
    List.fold_left
      (fun pieces existing ->
        List.concat_map (fun p -> Rect.subtract p existing) pieces)
      [ r ] t
  in
  List.filter (fun p -> not (Rect.is_empty p)) pieces @ t

let of_rects rs = List.fold_left add empty rs

(* Unchecked constructor for rectangles the caller guarantees disjoint
   (e.g. Hanan cells); skips the quadratic disjointness insertion. *)
let of_disjoint rs = List.filter (fun r -> not (Rect.is_empty r)) rs

let union a b = List.fold_left add a b

let area t = List.fold_left (fun acc r -> acc +. Rect.area r) 0.0 t

(* Subtract a single rectangle from the whole set. *)
let subtract_rect t r =
  List.concat_map (fun p -> Rect.subtract p r) t
  |> List.filter (fun p -> not (Rect.is_empty p))

let subtract a b = List.fold_left subtract_rect a b

(* Clip the set to a rectangle. *)
let intersect_rect t r =
  List.filter_map (fun p -> Rect.intersect p r) t

let intersect a b = List.concat_map (fun r -> intersect_rect a r) b

(* [covers_rect t r]: is [r] entirely inside the union?  Implemented by
   subtraction: the remainder must have zero area.  This realizes the paper's
   legality test "A_(x,y)(c) ⊂ ∪ A(μ(c))". *)
let covers_rect t r =
  if Rect.is_empty r then true
  else begin
    let remainder =
      List.fold_left
        (fun pieces cover ->
          List.concat_map (fun p -> Rect.subtract p cover) pieces)
        [ r ] t
    in
    List.for_all Rect.is_empty remainder
  end

(* [covers t s]: is the set [s] entirely inside the union [t]?  This is the
   "M covers r" relation of Definition 2. *)
let covers t s = List.for_all (covers_rect t) s

let contains_point t p = List.exists (fun r -> Rect.contains_point r p) t

let overlaps_rect t r = List.exists (fun p -> Rect.overlaps p r) t

(* Overlap of two sets (positive area). *)
let overlaps a b = List.exists (overlaps_rect a) b

let overlap_area a b =
  List.fold_left
    (fun acc ra ->
      List.fold_left (fun acc rb -> acc +. Rect.intersection_area ra rb) acc b)
    0.0 a

(* Nearest point of the set to [p] in L2; raises on empty set. *)
let project_point t p =
  match t with
  | [] -> invalid_arg "Rect_set.project_point: empty set"
  | first :: rest ->
    let best = Rect.clamp_point first p in
    let bestd = Point.dist_l2 p best in
    let q, _ =
      List.fold_left
        (fun ((_, bd) as acc) r ->
          let c = Rect.clamp_point r p in
          let d = Point.dist_l2 p c in
          if d < bd then (c, d) else acc)
        (best, bestd) rest
    in
    q

let dist_l1_point t p =
  match t with
  | [] -> infinity
  | _ ->
    List.fold_left (fun acc r -> Float.min acc (Rect.dist_l1_point r p)) infinity t

(* Area-weighted center of gravity; the embedding point of region nodes in
   the flow model ("center-of-gravity of the free area"). *)
let center_of_gravity t =
  let a = area t in
  if a <= 0.0 then invalid_arg "Rect_set.center_of_gravity: empty set";
  let cx, cy =
    List.fold_left
      (fun (cx, cy) r ->
        let w = Rect.area r in
        let c = Rect.center r in
        (cx +. (w *. c.Point.x), cy +. (w *. c.Point.y)))
      (0.0, 0.0) t
  in
  Point.make (cx /. a) (cy /. a)

(* Bounding box of the set; raises on empty. *)
let bbox t =
  match t with
  | [] -> invalid_arg "Rect_set.bbox: empty set"
  | first :: rest -> List.fold_left Rect.bbox first rest

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f "; ") Rect.pp)
    t
