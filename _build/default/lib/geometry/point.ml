(* Points in the plane.  All geometry in the placer is in abstract layout
   units (one standard-cell row height = 1.0 by convention of the netlist
   generator). *)

type t = { x : float; y : float }

let make x y = { x; y }

let origin = { x = 0.0; y = 0.0 }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }
let sub a b = { x = a.x -. b.x; y = a.y -. b.y }
let scale s a = { x = s *. a.x; y = s *. a.y }

(* L1 (Manhattan) distance: the cost metric of the paper's flow model. *)
let dist_l1 a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

let dist_l2 a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let lerp t a b = { x = a.x +. (t *. (b.x -. a.x)); y = a.y +. (t *. (b.y -. a.y)) }

let equal ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps && Float.abs (a.y -. b.y) <= eps

let pp fmt p = Format.fprintf fmt "(%g, %g)" p.x p.y
let to_string p = Format.asprintf "%a" pp p
