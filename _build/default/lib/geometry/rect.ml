(* Axis-parallel rectangles, the atom of all placement geometry: cell shapes,
   movebound area pieces (Definition 1), regions (Definition 2), windows and
   blockages are all built from these. *)

type t = {
  x0 : float;
  y0 : float;
  x1 : float;
  y1 : float;
}

let eps = 1e-9

let make ~x0 ~y0 ~x1 ~y1 =
  if x1 < x0 || y1 < y0 then invalid_arg "Rect.make: negative extent";
  { x0; y0; x1; y1 }

let of_corner ~x ~y ~w ~h =
  if w < 0.0 || h < 0.0 then invalid_arg "Rect.of_corner: negative extent";
  { x0 = x; y0 = y; x1 = x +. w; y1 = y +. h }

let of_center ~cx ~cy ~w ~h =
  of_corner ~x:(cx -. (w /. 2.0)) ~y:(cy -. (h /. 2.0)) ~w ~h

let width r = r.x1 -. r.x0
let height r = r.y1 -. r.y0
let area r = width r *. height r
let is_empty r = width r <= eps || height r <= eps

let center r = Point.make ((r.x0 +. r.x1) /. 2.0) ((r.y0 +. r.y1) /. 2.0)

let contains_point r (p : Point.t) =
  p.x >= r.x0 -. eps && p.x <= r.x1 +. eps && p.y >= r.y0 -. eps && p.y <= r.y1 +. eps

(* [contains r s]: is [s] entirely inside [r] (within eps)? *)
let contains r s =
  s.x0 >= r.x0 -. eps && s.y0 >= r.y0 -. eps && s.x1 <= r.x1 +. eps && s.y1 <= r.y1 +. eps

(* Positive-area overlap (touching edges do not count). *)
let overlaps a b =
  a.x0 < b.x1 -. eps && b.x0 < a.x1 -. eps && a.y0 < b.y1 -. eps && b.y0 < a.y1 -. eps

let intersect a b =
  let x0 = Float.max a.x0 b.x0 and y0 = Float.max a.y0 b.y0 in
  let x1 = Float.min a.x1 b.x1 and y1 = Float.min a.y1 b.y1 in
  if x1 -. x0 > eps && y1 -. y0 > eps then Some { x0; y0; x1; y1 } else None

let intersection_area a b =
  match intersect a b with None -> 0.0 | Some r -> area r

let bbox a b =
  { x0 = Float.min a.x0 b.x0;
    y0 = Float.min a.y0 b.y0;
    x1 = Float.max a.x1 b.x1;
    y1 = Float.max a.y1 b.y1 }

let translate r ~dx ~dy =
  { x0 = r.x0 +. dx; y0 = r.y0 +. dy; x1 = r.x1 +. dx; y1 = r.y1 +. dy }

let inflate r d = { x0 = r.x0 -. d; y0 = r.y0 -. d; x1 = r.x1 +. d; y1 = r.y1 +. d }

(* Nearest point of [r] to [p] (the projection used for L1 distances from a
   cell to a region or window). *)
let clamp_point r (p : Point.t) =
  Point.make (Float.max r.x0 (Float.min r.x1 p.x)) (Float.max r.y0 (Float.min r.y1 p.y))

let dist_l1_point r p = Point.dist_l1 p (clamp_point r p)
let dist_l2_point r p = Point.dist_l2 p (clamp_point r p)

(* [subtract a b]: decompose [a] minus [b] into at most four disjoint
   rectangles (left, right strips full-height; bottom, top strips between). *)
let subtract a b =
  match intersect a b with
  | None -> [ a ]
  | Some i ->
    let pieces = ref [] in
    let add x0 y0 x1 y1 =
      if x1 -. x0 > eps && y1 -. y0 > eps then
        pieces := { x0; y0; x1; y1 } :: !pieces
    in
    add a.x0 a.y0 i.x0 a.y1;          (* left strip *)
    add i.x1 a.y0 a.x1 a.y1;          (* right strip *)
    add i.x0 a.y0 i.x1 i.y0;          (* bottom strip *)
    add i.x0 i.y1 i.x1 a.y1;          (* top strip *)
    !pieces

let equal ?(eps = 1e-9) a b =
  Float.abs (a.x0 -. b.x0) <= eps && Float.abs (a.y0 -. b.y0) <= eps
  && Float.abs (a.x1 -. b.x1) <= eps && Float.abs (a.y1 -. b.y1) <= eps

(* Are two rectangles 4-adjacent, i.e. do they share a boundary segment of
   positive length?  Used when merging Hanan cells into maximal regions. *)
let adjacent a b =
  let overlap lo0 hi0 lo1 hi1 = Float.min hi0 hi1 -. Float.max lo0 lo1 > eps in
  (Float.abs (a.x1 -. b.x0) <= eps || Float.abs (b.x1 -. a.x0) <= eps)
  && overlap a.y0 a.y1 b.y0 b.y1
  || (Float.abs (a.y1 -. b.y0) <= eps || Float.abs (b.y1 -. a.y0) <= eps)
     && overlap a.x0 a.x1 b.x0 b.x1

let pp fmt r = Format.fprintf fmt "[%g,%g;%g,%g]" r.x0 r.y0 r.x1 r.y1
let to_string r = Format.asprintf "%a" pp r
