lib/geometry/hanan.mli: Rect
