lib/geometry/rect_set.ml: Float Format List Point Rect
