lib/geometry/hanan.ml: Array Float List Rect
