lib/geometry/rect.ml: Float Format Point
