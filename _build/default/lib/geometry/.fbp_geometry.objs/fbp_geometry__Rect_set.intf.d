lib/geometry/rect_set.mli: Format Point Rect
