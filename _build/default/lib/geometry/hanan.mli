(** Hanan grid decomposition (Lemma 1 of the paper).

    The grid induced by the coordinates of the movebound rectangles
    decomposes the chip into O(l²) cells, each entirely inside or outside
    every input rectangle — the seed of the region decomposition. *)

type t

(** [create ~chip rects] builds the grid over the chip area from the
    coordinates of [rects] (clipped to the chip).
    Raises [Invalid_argument] on a degenerate chip. *)
val create : ?eps:float -> chip:Rect.t -> Rect.t list -> t

val n_cells : t -> int
val nx : t -> int
val ny : t -> int

(** Dense index of cell (ix, iy); raises on out-of-bounds. *)
val cell_index : t -> ix:int -> iy:int -> int

(** Inverse of [cell_index]. *)
val cell_coords : t -> int -> int * int

val cell_rect : t -> ix:int -> iy:int -> Rect.t

(** Iterate over all cells in row-major order. *)
val iter_cells : t -> (ix:int -> iy:int -> Rect.t -> unit) -> unit

(** Dense indices of the 4-neighbours of a cell. *)
val neighbors : t -> ix:int -> iy:int -> int list

(** Copies of the grid coordinates (length nx+1 / ny+1). *)
val xs : t -> float array

val ys : t -> float array

(** Cell (ix, iy) containing the point, clamped to the grid. *)
val cell_at : t -> float -> float -> int * int
