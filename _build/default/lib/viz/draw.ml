(* Figure renderers: the paper's Figures 1-4 and general placement plots. *)

open Fbp_geometry
open Fbp_netlist

(* Placement plot: cells colored by movebound class, blockages gray. *)
let placement (inst : Fbp_movebound.Instance.t) (pos : Placement.t) =
  let d = inst.Fbp_movebound.Instance.design in
  let chip = d.Design.chip in
  let svg = Svg.create ~width:(Rect.width chip) ~height:(Rect.height chip) in
  Svg.rect svg chip ~fill:"#fafafa" ~stroke:"#333" ~stroke_width:0.3 ();
  List.iter (fun b -> Svg.rect svg b ~fill:"#999" ~opacity:0.8 ()) d.Design.blockages;
  (* movebound outlines *)
  Array.iter
    (fun (m : Fbp_movebound.Movebound.t) ->
      List.iter
        (fun r ->
          Svg.rect svg r
            ~fill:(Svg.color m.Fbp_movebound.Movebound.id)
            ~stroke:(Svg.color m.Fbp_movebound.Movebound.id) ~stroke_width:0.5
            ~opacity:0.12 ())
        (Rect_set.rects m.Fbp_movebound.Movebound.area))
    inst.Fbp_movebound.Instance.movebounds;
  let nl = d.Design.netlist in
  for c = 0 to Netlist.n_cells nl - 1 do
    if not nl.Netlist.fixed.(c) then begin
      let r = Placement.cell_rect nl pos c in
      let mb = nl.Netlist.movebound.(c) in
      let fill = if mb < 0 then "#555" else Svg.color mb in
      Svg.rect svg r ~fill ~opacity:0.85 ()
    end
  done;
  svg

(* Figure 1: movebound areas (left) and the resulting maximal regions
   (right), rendered as two files. *)
let fig1_movebounds (chip : Rect.t) (movebounds : Fbp_movebound.Movebound.t array) =
  let svg = Svg.create ~width:(Rect.width chip) ~height:(Rect.height chip) in
  Svg.rect svg chip ~fill:"#ffffff" ~stroke:"#333" ~stroke_width:0.08 ();
  Array.iter
    (fun (m : Fbp_movebound.Movebound.t) ->
      List.iter
        (fun r ->
          Svg.rect svg r
            ~fill:(Svg.color m.Fbp_movebound.Movebound.id)
            ~stroke:(Svg.color m.Fbp_movebound.Movebound.id) ~stroke_width:0.1
            ~opacity:0.35 ();
          let c = Rect.center r in
          Svg.text svg ~x:(c.Point.x -. 0.2) ~y:c.Point.y ~size:0.6
            m.Fbp_movebound.Movebound.name)
        (Rect_set.rects m.Fbp_movebound.Movebound.area))
    movebounds;
  svg

let fig1_regions (chip : Rect.t) (regions : Fbp_movebound.Regions.t) =
  let svg = Svg.create ~width:(Rect.width chip) ~height:(Rect.height chip) in
  Svg.rect svg chip ~fill:"#ffffff" ~stroke:"#333" ~stroke_width:0.08 ();
  Array.iter
    (fun (r : Fbp_movebound.Regions.region) ->
      List.iter
        (fun piece ->
          Svg.rect svg piece
            ~fill:(Svg.color r.Fbp_movebound.Regions.id)
            ~opacity:0.4 ())
        (Rect_set.rects r.Fbp_movebound.Regions.area);
      let bb = Rect_set.bbox r.Fbp_movebound.Regions.area in
      let c = Rect.center bb in
      Svg.text svg ~x:c.Point.x ~y:c.Point.y ~size:0.5
        (Printf.sprintf "r%d" r.Fbp_movebound.Regions.id))
    regions.Fbp_movebound.Regions.regions;
  svg

(* Figures 2/3: the flow model's nodes and edge families.  Cell-group nodes
   as filled circles at their center of gravity, transit nodes as hollow
   squares on window boundaries, region nodes as diamonds at the free-area
   centroid; arcs drawn per family. *)
let flow_model (model : Fbp_core.Fbp_model.t) =
  let grid = model.Fbp_core.Fbp_model.grid in
  let chip = grid.Fbp_core.Grid.chip in
  let svg = Svg.create ~width:(Rect.width chip) ~height:(Rect.height chip) in
  Svg.rect svg chip ~fill:"#ffffff" ~stroke:"#333" ~stroke_width:0.08 ();
  Array.iter
    (fun (w : Fbp_core.Grid.window) ->
      Svg.rect svg w.Fbp_core.Grid.rect ~fill:"none" ~stroke:"#888" ~stroke_width:0.06 ())
    grid.Fbp_core.Grid.windows;
  (* arcs: draw per kind with distinct colors *)
  let node_pos = Hashtbl.create 64 in
  Array.iteri
    (fun gi (g : Fbp_core.Fbp_model.group) ->
      Hashtbl.replace node_pos (`G gi) g.Fbp_core.Fbp_model.cog)
    model.Fbp_core.Fbp_model.groups;
  Array.iter
    (fun (p : Fbp_core.Grid.piece) ->
      Hashtbl.replace node_pos (`P p.Fbp_core.Grid.id) p.Fbp_core.Grid.centroid)
    grid.Fbp_core.Grid.pieces;
  let transit w dir = Fbp_core.Grid.boundary_point grid w dir in
  Array.iter
    (fun (_, kind) ->
      match kind with
      | Fbp_core.Fbp_model.Cell_to_piece { group; piece } ->
        let a = Hashtbl.find node_pos (`G group) and b = Hashtbl.find node_pos (`P piece) in
        Svg.line svg ~x1:a.Point.x ~y1:a.Point.y ~x2:b.Point.x ~y2:b.Point.y
          ~stroke:"#4e79a7" ~stroke_width:0.06 ~opacity:0.7 ()
      | Fbp_core.Fbp_model.Cell_to_transit { group; dir } ->
        let a = Hashtbl.find node_pos (`G group) in
        let g = model.Fbp_core.Fbp_model.groups.(group) in
        let b = transit g.Fbp_core.Fbp_model.w dir in
        Svg.line svg ~x1:a.Point.x ~y1:a.Point.y ~x2:b.Point.x ~y2:b.Point.y
          ~stroke:"#59a14f" ~stroke_width:0.05 ~opacity:0.5 ()
      | Fbp_core.Fbp_model.Transit_to_transit { w; from_dir; to_dir; _ } ->
        let a = transit w from_dir and b = transit w to_dir in
        Svg.line svg ~x1:a.Point.x ~y1:a.Point.y ~x2:b.Point.x ~y2:b.Point.y
          ~stroke:"#bab0ac" ~stroke_width:0.04 ~opacity:0.4 ()
      | Fbp_core.Fbp_model.Transit_to_piece { w; dir; piece; _ } ->
        let a = transit w dir and b = Hashtbl.find node_pos (`P piece) in
        Svg.line svg ~x1:a.Point.x ~y1:a.Point.y ~x2:b.Point.x ~y2:b.Point.y
          ~stroke:"#edc948" ~stroke_width:0.05 ~opacity:0.5 ()
      | Fbp_core.Fbp_model.External { from_w; to_w; from_dir; _ } ->
        let a = transit from_w from_dir in
        let b = transit to_w (Fbp_core.Grid.opposite_dir from_dir) in
        Svg.arrow svg ~x1:a.Point.x ~y1:a.Point.y ~x2:b.Point.x ~y2:b.Point.y
          ~stroke:"#e15759" ~stroke_width:0.08 ())
    model.Fbp_core.Fbp_model.arcs;
  (* nodes on top *)
  Array.iter
    (fun (g : Fbp_core.Fbp_model.group) ->
      Svg.circle svg ~cx:g.Fbp_core.Fbp_model.cog.Point.x
        ~cy:g.Fbp_core.Fbp_model.cog.Point.y ~r:0.35 ~fill:"#4e79a7" ())
    model.Fbp_core.Fbp_model.groups;
  Array.iter
    (fun (p : Fbp_core.Grid.piece) ->
      Svg.circle svg ~cx:p.Fbp_core.Grid.centroid.Point.x
        ~cy:p.Fbp_core.Grid.centroid.Point.y ~r:0.3 ~fill:"#e15759" ())
    grid.Fbp_core.Grid.pieces;
  svg

(* Figure 4-style realization snapshot: the placement plus the flow-carrying
   external arcs remaining at a step. *)
let realization_snapshot (inst : Fbp_movebound.Instance.t) (pos : Placement.t)
    (grid : Fbp_core.Grid.t) (externals : Fbp_core.Fbp_model.external_flow list) =
  let svg = placement inst pos in
  Array.iter
    (fun (w : Fbp_core.Grid.window) ->
      Svg.rect svg w.Fbp_core.Grid.rect ~fill:"none" ~stroke:"#777" ~stroke_width:0.15 ())
    grid.Fbp_core.Grid.windows;
  List.iter
    (fun (e : Fbp_core.Fbp_model.external_flow) ->
      let a = Fbp_core.Grid.boundary_point grid e.Fbp_core.Fbp_model.from_w
          e.Fbp_core.Fbp_model.from_dir in
      let b =
        Rect.center grid.Fbp_core.Grid.windows.(e.Fbp_core.Fbp_model.to_w).Fbp_core.Grid.rect
      in
      Svg.arrow svg ~x1:a.Point.x ~y1:a.Point.y ~x2:b.Point.x ~y2:b.Point.y
        ~stroke:"#d62728" ~stroke_width:0.5 ())
    externals;
  svg
