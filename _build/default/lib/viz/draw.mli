(** Figure renderers: placement plots and the paper's Figures 1–4. *)

open Fbp_netlist

(** Cells colored by movebound class; movebound outlines; blockages gray. *)
val placement : Fbp_movebound.Instance.t -> Placement.t -> Svg.t

(** Figure 1 left: movebound areas with labels. *)
val fig1_movebounds :
  Fbp_geometry.Rect.t -> Fbp_movebound.Movebound.t array -> Svg.t

(** Figure 1 right: the maximal regions of the decomposition. *)
val fig1_regions : Fbp_geometry.Rect.t -> Fbp_movebound.Regions.t -> Svg.t

(** Figures 2–3: the flow model's nodes and edge families. *)
val flow_model : Fbp_core.Fbp_model.t -> Svg.t

(** Figure 4: placement plus the flow-carrying external arcs at a step. *)
val realization_snapshot :
  Fbp_movebound.Instance.t -> Placement.t -> Fbp_core.Grid.t ->
  Fbp_core.Fbp_model.external_flow list -> Svg.t
