lib/viz/svg.mli: Fbp_geometry
