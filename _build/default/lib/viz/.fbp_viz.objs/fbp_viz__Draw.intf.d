lib/viz/draw.mli: Fbp_core Fbp_geometry Fbp_movebound Fbp_netlist Placement Svg
