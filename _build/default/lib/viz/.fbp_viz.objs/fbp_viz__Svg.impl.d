lib/viz/svg.ml: Array Buffer Fbp_geometry Float Fun Printf
