lib/viz/draw.ml: Array Design Fbp_core Fbp_geometry Fbp_movebound Fbp_netlist Hashtbl List Netlist Placement Point Printf Rect Rect_set Svg
