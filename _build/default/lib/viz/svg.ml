(* Minimal SVG writer: enough for placement plots and the paper's figures.
   Coordinates are chip coordinates; the viewBox flips y so the chip origin
   sits bottom-left like in layout viewers. *)

type t = {
  buf : Buffer.t;
  width : float;
  height : float;
}

let create ~width ~height =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 %g %g\" width=\"800\" height=\"%g\">\n"
       width height (800.0 *. height /. Float.max 1e-9 width));
  { buf; width; height }

(* flip y: chip y grows upward, svg y downward *)
let fy t y = t.height -. y

let rect t (r : Fbp_geometry.Rect.t) ~fill ?(stroke = "none") ?(stroke_width = 0.0)
    ?(opacity = 1.0) () =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<rect x=\"%g\" y=\"%g\" width=\"%g\" height=\"%g\" fill=\"%s\" stroke=\"%s\" stroke-width=\"%g\" fill-opacity=\"%g\"/>\n"
       r.Fbp_geometry.Rect.x0
       (fy t r.Fbp_geometry.Rect.y1)
       (Fbp_geometry.Rect.width r) (Fbp_geometry.Rect.height r) fill stroke
       stroke_width opacity)

let line t ~x1 ~y1 ~x2 ~y2 ~stroke ?(stroke_width = 0.3) ?(opacity = 1.0) () =
  Buffer.add_string t.buf
    (Printf.sprintf
       "<line x1=\"%g\" y1=\"%g\" x2=\"%g\" y2=\"%g\" stroke=\"%s\" stroke-width=\"%g\" stroke-opacity=\"%g\"/>\n"
       x1 (fy t y1) x2 (fy t y2) stroke stroke_width opacity)

let circle t ~cx ~cy ~r ~fill () =
  Buffer.add_string t.buf
    (Printf.sprintf "<circle cx=\"%g\" cy=\"%g\" r=\"%g\" fill=\"%s\"/>\n" cx (fy t cy) r fill)

let text t ~x ~y ~size s =
  Buffer.add_string t.buf
    (Printf.sprintf "<text x=\"%g\" y=\"%g\" font-size=\"%g\" font-family=\"sans-serif\">%s</text>\n"
       x (fy t y) size s)

let arrow t ~x1 ~y1 ~x2 ~y2 ~stroke ?(stroke_width = 0.4) () =
  line t ~x1 ~y1 ~x2 ~y2 ~stroke ~stroke_width ();
  (* small arrowhead *)
  let dx = x2 -. x1 and dy = y2 -. y1 in
  let len = Float.max 1e-9 (sqrt ((dx *. dx) +. (dy *. dy))) in
  let ux = dx /. len and uy = dy /. len in
  let hx = x2 -. (2.0 *. ux) and hy = y2 -. (2.0 *. uy) in
  line t ~x1:(hx -. (0.8 *. uy)) ~y1:(hy +. (0.8 *. ux)) ~x2 ~y2 ~stroke ~stroke_width ();
  line t ~x1:(hx +. (0.8 *. uy)) ~y1:(hy -. (0.8 *. ux)) ~x2 ~y2 ~stroke ~stroke_width ()

let to_string t = Buffer.contents t.buf ^ "</svg>\n"

let write_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

(* categorical palette for regions / movebounds *)
let palette =
  [| "#4e79a7"; "#f28e2b"; "#e15759"; "#76b7b2"; "#59a14f"; "#edc948";
     "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac" |]

let color i = palette.(i mod Array.length palette)
