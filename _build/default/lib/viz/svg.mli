(** Minimal SVG writer for placement plots and the paper's figures.
    Coordinates are chip coordinates; y is flipped so the origin sits
    bottom-left as in layout viewers. *)

type t

val create : width:float -> height:float -> t

val rect :
  t -> Fbp_geometry.Rect.t -> fill:string -> ?stroke:string ->
  ?stroke_width:float -> ?opacity:float -> unit -> unit

val line :
  t -> x1:float -> y1:float -> x2:float -> y2:float -> stroke:string ->
  ?stroke_width:float -> ?opacity:float -> unit -> unit

val circle : t -> cx:float -> cy:float -> r:float -> fill:string -> unit -> unit
val text : t -> x:float -> y:float -> size:float -> string -> unit

(** Line with an arrowhead at (x2, y2). *)
val arrow :
  t -> x1:float -> y1:float -> x2:float -> y2:float -> stroke:string ->
  ?stroke_width:float -> unit -> unit

val to_string : t -> string
val write_file : string -> t -> unit

(** Categorical palette (cycles). *)
val color : int -> string
