lib/linalg/cg.mli: Csr
