lib/linalg/csr.ml: Array Float Hashtbl
