lib/linalg/cg.ml: Array Csr Float Vec
