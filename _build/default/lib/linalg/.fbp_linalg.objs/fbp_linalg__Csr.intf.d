lib/linalg/csr.mli:
