lib/linalg/vec.mli:
