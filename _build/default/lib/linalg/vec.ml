(* Dense float vectors — the few BLAS-1 kernels conjugate gradients needs. *)

type t = float array

let create n = Array.make n 0.0

let copy = Array.copy

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vec.dot: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a

(* y <- y + alpha * x *)
let axpy ~alpha x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Vec.axpy: length mismatch";
  for i = 0 to n - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

(* x <- alpha * x *)
let scale ~alpha x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- alpha *. x.(i)
  done

(* out <- a - b *)
let sub a b out =
  let n = Array.length a in
  for i = 0 to n - 1 do
    out.(i) <- a.(i) -. b.(i)
  done
