(** Dense float vectors: the BLAS-1 kernels conjugate gradients needs. *)

type t = float array

val create : int -> t
val copy : t -> t

(** Raises [Invalid_argument] on length mismatch. *)
val dot : t -> t -> float

val norm2 : t -> float
val norm_inf : t -> float

(** [axpy ~alpha x y]: y <- y + alpha * x. *)
val axpy : alpha:float -> t -> t -> unit

(** [scale ~alpha x]: x <- alpha * x. *)
val scale : alpha:float -> t -> unit

(** [sub a b out]: out <- a - b. *)
val sub : t -> t -> t -> unit
