(** Jacobi-preconditioned conjugate gradients for SPD systems. *)

type stats = {
  iterations : int;
  residual : float;  (** final ||Ax − b|| / max(1, ||b||) *)
  converged : bool;
}

(** [solve a b x] improves [x] in place toward A x = b.
    [max_iter] defaults to max(100, 2n); [tol] to 1e-7.
    Raises [Invalid_argument] on dimension mismatch. *)
val solve : ?max_iter:int -> ?tol:float -> Csr.t -> float array -> float array -> stats
