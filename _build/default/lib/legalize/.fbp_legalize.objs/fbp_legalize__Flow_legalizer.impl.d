lib/legalize/flow_legalizer.ml: Array Design Fbp_flow Fbp_movebound Fbp_netlist Fbp_util Float List Netlist Placement Rows
