lib/legalize/check.ml: Array Design Fbp_geometry Fbp_netlist Float Hashtbl List Netlist Placement Rect
