lib/legalize/legalizer.ml: Array Design Fbp_core Fbp_geometry Fbp_movebound Fbp_netlist Fbp_util Float List Netlist Placement Printf Rows Sys
