lib/legalize/legalizer.mli: Fbp_core Fbp_movebound Fbp_netlist Placement
