lib/legalize/rows.ml: Fbp_geometry Float List Rect Rect_set
