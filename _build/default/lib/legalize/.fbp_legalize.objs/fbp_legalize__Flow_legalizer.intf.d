lib/legalize/flow_legalizer.mli: Fbp_movebound Fbp_netlist
