lib/legalize/rows.mli: Fbp_geometry Rect Rect_set
