lib/legalize/check.mli: Design Fbp_netlist Placement
