(** Flow-based legalization after Brenner–Vygen [6] — the legalizer the
    paper calls: per region, a Hitchcock transportation moves cell area to
    row segments with minimum total movement, then each segment packs
    optimally in x-order (Abacus clusters).  Slower than the default
    Tetris/interval legalizer, lower displacement on dense regions; both
    are exposed so the trade-off is measurable. *)

type stats = {
  n_legalized : int;
  n_failed : int;
  avg_displacement : float;
  max_displacement : float;
  time : float;
}

(** Legalize in place (cells grouped by the region containing their
    position). *)
val run :
  Fbp_movebound.Instance.t -> Fbp_movebound.Regions.t -> Fbp_netlist.Placement.t ->
  stats
