(** Placement legality audits: overlaps, row alignment, chip and blockage
    containment.  Together with {!Fbp_movebound.Legality} this decides the
    tables' "legal" column. *)

open Fbp_netlist

type report = {
  n_overlaps : int;
  n_off_row : int;
  n_outside_chip : int;
  n_on_blockage : int;
  legal : bool;
}

val audit : Design.t -> Placement.t -> report
