(** Movebound-aware legalization (Section III): per-region Tetris/Abacus
    with interval packing on a site lattice, spill into admissible regions,
    compaction and cross-class eviction for stragglers. *)

open Fbp_netlist

type stats = {
  n_legalized : int;
  n_spilled : int;  (** placed outside their assigned region (still legal) *)
  n_failed : int;  (** cells with no admissible space anywhere *)
  avg_displacement : float;
  max_displacement : float;
  time : float;
}

(** Legalize in place.  Cells are grouped by the global region of their
    assigned piece (the paper's ρ : C → R); cells without a piece fall back
    to the region containing their position.  [movebound_aware:false] lets
    spills land in any region (the RQL baseline's behaviour — violations
    then possible and counted upstream). *)
val run :
  ?movebound_aware:bool ->
  Fbp_movebound.Instance.t ->
  Fbp_movebound.Regions.t ->
  Placement.t ->
  piece_of_cell:int array ->
  grid:Fbp_core.Grid.t option ->
  stats
