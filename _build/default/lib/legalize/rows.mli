(** Row segments: free intervals of standard-cell rows inside a rectangle
    set, after subtracting blockages.  A segment exists only where the
    region covers the row's full height (cells must be entirely inside
    their movebound). *)

open Fbp_geometry

type segment = {
  row : int;  (** row index from the chip bottom *)
  y : float;  (** row center y *)
  x0 : float;
  x1 : float;
  region : int;  (** owning region id, -1 when built region-free *)
}

val width : segment -> float

(** Segments of [area] clipped to rows, minus blockages; sorted
    bottom-to-top, left-to-right. *)
val build :
  chip:Rect.t -> row_height:float -> blockages:Rect.t list -> ?region:int ->
  Rect_set.t -> segment list

val total_width : segment list -> float
