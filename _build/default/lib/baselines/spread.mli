(** Shared spreading machinery for the force-directed baselines:
    capacity-proportional remapping of cell coordinates per bin-row and
    bin-column. *)

open Fbp_geometry
open Fbp_netlist

type bins = {
  nx : int;
  ny : int;
  usage : float array;  (** row-major *)
  cap : float array;
}

val compute_bins : Design.t -> Placement.t -> nx:int -> ny:int -> bins

(** Worst bin usage/capacity ratio. *)
val max_overflow_ratio : bins -> float

(** One damped spreading pass; returns target coordinates and the bins. *)
val targets :
  Design.t -> Placement.t -> nx:int -> ny:int -> theta:float ->
  float array * float array * bins

(** Project a target into an admissible area (soft movebound handling). *)
val clip_into : Rect_set.t -> float -> float -> float * float
