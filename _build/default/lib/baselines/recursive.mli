(** Classic recursive 2×2 partitioning (old BonnPlace [5], [27]) — the
    ablation comparator for Section IV's drawbacks: local decisions, no
    global view, capacity overruns from rounding. *)

open Fbp_netlist

type report = {
  placement : Placement.t;
  overflow_events : int;  (** cells force-assigned past subwindow capacity *)
  global_time : float;
  hpwl : float;  (** global (pre-legalization) *)
}

val place : ?config:Fbp_core.Config.t -> Fbp_movebound.Instance.t -> (report, string) result
