(* Shared spreading machinery for the force-directed baselines.

   Capacity-proportional remapping: per bin-row (resp. bin-column), map each
   cell's x (resp. y) through F_cap^{-1} . F_util, where F_util is the
   cumulative utilization profile along the row and F_cap the cumulative
   capacity profile.  Overfull stretches of the profile get spread into
   under-used ones; a damping factor theta blends the mapped position with
   the current one (the "relaxed" in relaxed quadratic spreading). *)

open Fbp_geometry
open Fbp_netlist

type bins = {
  nx : int;
  ny : int;
  usage : float array;  (* nx*ny, row-major *)
  cap : float array;
}

let compute_bins (design : Design.t) (pos : Placement.t) ~nx ~ny =
  let usage, cap = Fbp_core.Density.bin_utilization design pos ~nx ~ny in
  { nx; ny; usage; cap }

(* Worst bin overflow ratio: max over bins of usage / max(cap, eps). *)
let max_overflow_ratio b =
  let worst = ref 0.0 in
  Array.iteri
    (fun i u ->
      let c = b.cap.(i) in
      if c > 1e-9 then worst := Float.max !worst (u /. c)
      else if u > 1e-9 then worst := Float.max !worst 10.0)
    b.usage;
  !worst

(* Piecewise-linear inverse: given cumulative array cum.(0..n) over
   boundaries xs.(0..n), find x where cum reaches value v. *)
let pwl_inverse xs cum v =
  let n = Array.length cum - 1 in
  if v <= cum.(0) then xs.(0)
  else if v >= cum.(n) then xs.(n)
  else begin
    let i = ref 0 in
    while cum.(!i + 1) < v && !i < n - 1 do
      incr i
    done;
    let c0 = cum.(!i) and c1 = cum.(!i + 1) in
    if c1 -. c0 <= 1e-12 then xs.(!i)
    else xs.(!i) +. ((v -. c0) /. (c1 -. c0) *. (xs.(!i + 1) -. xs.(!i)))
  end

(* interpolate cumulative value at x *)
let pwl_eval xs cum x =
  let n = Array.length cum - 1 in
  if x <= xs.(0) then cum.(0)
  else if x >= xs.(n) then cum.(n)
  else begin
    let i = ref 0 in
    while xs.(!i + 1) < x && !i < n - 1 do
      incr i
    done;
    let x0 = xs.(!i) and x1 = xs.(!i + 1) in
    if x1 -. x0 <= 1e-12 then cum.(!i)
    else cum.(!i) +. ((x -. x0) /. (x1 -. x0) *. (cum.(!i + 1) -. cum.(!i)))
  end

(* One spreading pass: returns target positions (not yet applied). *)
let targets (design : Design.t) (pos : Placement.t) ~nx ~ny ~theta =
  let chip = design.Design.chip in
  let nl = design.Design.netlist in
  let b = compute_bins design pos ~nx ~ny in
  let n = Netlist.n_cells nl in
  let tx = Array.copy pos.Placement.x and ty = Array.copy pos.Placement.y in
  let bw = Rect.width chip /. float_of_int nx in
  let bh = Rect.height chip /. float_of_int ny in
  let xs = Array.init (nx + 1) (fun i -> chip.Rect.x0 +. (float_of_int i *. bw)) in
  let ys = Array.init (ny + 1) (fun j -> chip.Rect.y0 +. (float_of_int j *. bh)) in
  (* per bin-row: remap x through capacity profile *)
  let remap_axis ~along_x =
    let outer = if along_x then ny else nx in
    let inner = if along_x then nx else ny in
    Array.init outer (fun o ->
        let cum_u = Array.make (inner + 1) 0.0 in
        let cum_c = Array.make (inner + 1) 0.0 in
        for i = 0 to inner - 1 do
          let idx = if along_x then (o * nx) + i else (i * nx) + o in
          cum_u.(i + 1) <- cum_u.(i) +. b.usage.(idx);
          cum_c.(i + 1) <- cum_c.(i) +. b.cap.(idx)
        done;
        (* scale capacity profile to the same total mass as utilization so
           the mapping is a bijection of the row *)
        let total_u = cum_u.(inner) and total_c = cum_c.(inner) in
        if total_u > 1e-9 && total_c > 1e-9 then begin
          let scale = total_u /. total_c in
          Array.iteri (fun i v -> cum_c.(i) <- v *. scale) (Array.copy cum_c)
        end;
        (cum_u, cum_c))
  in
  let rows = remap_axis ~along_x:true in
  let cols = remap_axis ~along_x:false in
  for c = 0 to n - 1 do
    if not nl.Netlist.fixed.(c) then begin
      let x = pos.Placement.x.(c) and y = pos.Placement.y.(c) in
      let bj =
        max 0 (min (ny - 1) (int_of_float ((y -. chip.Rect.y0) /. bh)))
      in
      let bi =
        max 0 (min (nx - 1) (int_of_float ((x -. chip.Rect.x0) /. bw)))
      in
      let cum_u_row, cum_c_row = rows.(bj) in
      let v = pwl_eval xs cum_u_row x in
      let mapped_x = pwl_inverse xs cum_c_row v in
      let cum_u_col, cum_c_col = cols.(bi) in
      let vy = pwl_eval ys cum_u_col y in
      let mapped_y = pwl_inverse ys cum_c_col vy in
      tx.(c) <- x +. (theta *. (mapped_x -. x));
      ty.(c) <- y +. (theta *. (mapped_y -. y))
    end
  done;
  (tx, ty, b)

(* Clip a target into an admissible area (soft movebound handling). *)
let clip_into (area : Rect_set.t) x y =
  let p = Point.make x y in
  if Rect_set.contains_point area p then (x, y)
  else begin
    let q = Rect_set.project_point area p in
    (q.Point.x, q.Point.y)
  end
