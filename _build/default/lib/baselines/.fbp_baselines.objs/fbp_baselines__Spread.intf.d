lib/baselines/spread.mli: Design Fbp_geometry Fbp_netlist Placement Rect_set
