lib/baselines/kraftwerk.ml: Array Design Fbp_core Fbp_geometry Fbp_legalize Fbp_movebound Fbp_netlist Fbp_util Float Hpwl Netlist Placement Rect Spread
