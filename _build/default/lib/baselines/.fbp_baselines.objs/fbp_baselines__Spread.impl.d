lib/baselines/spread.ml: Array Design Fbp_core Fbp_geometry Fbp_netlist Float Netlist Placement Point Rect Rect_set
