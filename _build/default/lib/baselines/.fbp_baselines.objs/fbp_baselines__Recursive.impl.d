lib/baselines/recursive.ml: Array Design Fbp_core Fbp_flow Fbp_geometry Fbp_movebound Fbp_netlist Fbp_util Hashtbl Hpwl List Netlist Placement Point Rect Rect_set
