lib/baselines/rql.mli: Fbp_movebound Fbp_netlist Placement
