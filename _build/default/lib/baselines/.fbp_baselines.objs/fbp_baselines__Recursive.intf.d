lib/baselines/recursive.mli: Fbp_core Fbp_movebound Fbp_netlist Placement
