lib/baselines/kraftwerk.mli: Fbp_movebound Fbp_netlist Placement
