(** RQL-style baseline [25]: relaxed quadratic spreading with
    linearization, soft movebound handling (clip-to-bound); can violate
    movebounds on hard instances — exactly the Table IV/V phenomenon. *)

open Fbp_netlist

type params = {
  max_iterations : int;
  theta : float;  (** spreading damping *)
  anchor_base : float;
  stop_overflow : float;  (** stop when the worst bin ratio is below this *)
  bins_per_axis : int;  (** 0 = auto (≈10 rows per bin) *)
}

val default_params : params

type report = {
  placement : Placement.t;
  iterations : int;
  global_time : float;
  legalize_time : float;
  hpwl : float;  (** legal placement HPWL *)
}

val place : ?params:params -> Fbp_movebound.Instance.t -> (report, string) result
