(** Kraftwerk2-style baseline [21]: force-directed quadratic placement with
    a Poisson demand-and-supply potential (Gauss–Seidel).  The Table VII
    comparator. *)

open Fbp_netlist

type params = {
  max_iterations : int;
  step : float;
  anchor_weight : float;
  stop_overflow : float;
  bins_per_axis : int;  (** 0 = auto *)
  gs_sweeps : int;
}

val default_params : params

type report = {
  placement : Placement.t;
  iterations : int;
  global_time : float;
  legalize_time : float;
  hpwl : float;
}

(** Solve ∇²φ = ρ on a grid (Dirichlet boundary), for tests. *)
val poisson : nx:int -> ny:int -> sweeps:int -> float array -> float array

val place : ?params:params -> Fbp_movebound.Instance.t -> (report, string) result
