(** Reproduction of the paper's Tables I–VII: generate workloads, run the
    placers, render paper-shaped ASCII tables with the paper's own ratios
    alongside. *)

open Fbp_util

(** Table I: FBP sizes/runtimes per grid level on a movebound design
    (default: the erhard scenario). Returns the table and the FBP metrics. *)
val table1 : ?design:string -> unit -> Table.t * Runner.metrics

type row2 = {
  name : string;
  n_cells : int;
  rql : Runner.metrics;
  fbp : Runner.metrics;
  paper_pct : float;
  paper_speedup : float;
}

(** Table II: RQL vs FBP without movebounds ([names] restricts designs). *)
val table2 : ?names:string list -> unit -> Table.t * row2 list

(** Table III: movebound scenario statistics; returns the instances too. *)
val table3 :
  ?scenarios:Mb_gen.scenario list -> unit ->
  Table.t * (Mb_gen.scenario * Fbp_movebound.Instance.t) list

type row_mb = {
  mname : string;
  mrql : Runner.metrics;
  mfbp : Runner.metrics;
}

(** Table IV: inclusive movebounds. *)
val table4 : ?scenarios:Mb_gen.scenario list -> unit -> Table.t * row_mb list

(** Table V: exclusive movebounds (non-nested scenarios). *)
val table5 : ?designs:string list -> unit -> Table.t * row_mb list

(** Table VI: global vs legalization split of Table IV's FBP runs. *)
val table6 : row_mb list -> Table.t

(** Table VII: ISPD-2006-style contest scoring vs the Kraftwerk2 baseline. *)
val table7 : ?specs:Ispd.spec list -> unit -> Table.t
