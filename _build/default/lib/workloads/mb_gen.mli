(** Movebound scenario generation for Tables III–VI: voltage islands,
    flattened hierarchies (F), and overlapping/nested bounds (O), with
    per-scenario coverage and density caps. *)

type shape =
  | Islands of int
  | Flatten of int
  | Overlapping of int

type scenario = {
  design : string;  (** Designs spec name *)
  shape : shape;
  coverage : float;  (** fraction of cells bound *)
  max_density : float;  (** per-movebound density cap *)
  kind : Fbp_movebound.Movebound.kind;
}

(** The 8 rows of Table III (inclusive). *)
val table3_scenarios : scenario list

(** The 5 Table V designs (exclusive variants). *)
val table5_designs : string list

val shape_count : shape -> int
val is_overlapping : shape -> bool
val is_flattened : shape -> bool

(** Attach a scenario to a design (mutates the netlist's movebound column);
    deterministic per (design, scenario). *)
val attach : scenario -> Fbp_netlist.Design.t -> Fbp_movebound.Instance.t

type stats = {
  n_movebounds : int;
  n_cells : int;
  pct_bound : float;
  max_mb_density : float;
  overlapping : bool;
  flattened : bool;
}

(** Table III statistics of an attached instance. *)
val stats_of : scenario -> Fbp_movebound.Instance.t -> stats

(** Like {!attach}, but backs off the coverage until the row-aware
    Theorem-2 feasibility check passes (needed for exclusive scenarios).
    Returns the coverage actually used. *)
val attach_feasible : scenario -> Fbp_netlist.Design.t -> Fbp_movebound.Instance.t * float
