(* Movebound scenario generation for Tables III-VI.

   The paper's movebounds come from three methodologies (Section I): timing/
   voltage islands, clock-domain control, and flattened hierarchies.  The
   generator reproduces those shapes deterministically:

   - [Flatten]: recursive guillotine slicing of the chip into |M| leaves —
     the "(F) movebounds obtained from flattening hierarchy" designs;
   - [Overlapping]: the same slicing with each leaf inflated so neighbours
     overlap, plus a few nested sub-bounds — the "(O)" designs (infeasible
     when exclusive, as the paper notes);
   - [Islands]: a few disjoint voltage-island rectangles.

   Cells are bound to the movebound containing their golden position (so
   instances stay meaningful and feasible) until the requested coverage and
   the per-movebound density cap (Table III "max mb. dens") are hit. *)

open Fbp_geometry
open Fbp_netlist
open Fbp_util

type shape =
  | Islands of int
  | Flatten of int
  | Overlapping of int

type scenario = {
  design : string;  (* Designs spec name *)
  shape : shape;
  coverage : float;  (* fraction of cells bound (Table III "% cells") *)
  max_density : float;  (* per-movebound density cap *)
  kind : Fbp_movebound.Movebound.kind;
}

(* Table III rows (inclusive case; Table V reuses 5 of them as exclusive). *)
let table3_scenarios =
  [
    { design = "rabe"; shape = Islands 2; coverage = 0.043; max_density = 0.67;
      kind = Fbp_movebound.Movebound.Inclusive };
    { design = "ashraf"; shape = Flatten 12; coverage = 0.22; max_density = 0.80;
      kind = Fbp_movebound.Movebound.Inclusive };
    { design = "erhard"; shape = Flatten 16; coverage = 0.80; max_density = 0.74;
      kind = Fbp_movebound.Movebound.Inclusive };
    { design = "tomoku"; shape = Overlapping 14; coverage = 0.012; max_density = 0.74;
      kind = Fbp_movebound.Movebound.Inclusive };
    { design = "trips"; shape = Overlapping 16; coverage = 0.80; max_density = 0.81;
      kind = Fbp_movebound.Movebound.Inclusive };
    { design = "andre"; shape = Overlapping 12; coverage = 0.038; max_density = 0.73;
      kind = Fbp_movebound.Movebound.Inclusive };
    { design = "ludwig"; shape = Overlapping 10; coverage = 0.027; max_density = 0.70;
      kind = Fbp_movebound.Movebound.Inclusive };
    { design = "erik"; shape = Flatten 12; coverage = 0.70; max_density = 0.85;
      kind = Fbp_movebound.Movebound.Inclusive };
  ]

(* Table V designs: the non-nested scenarios, switched to exclusive. *)
let table5_designs = [ "rabe"; "ashraf"; "erhard"; "andre"; "erik" ]

let shape_count = function Islands n | Flatten n | Overlapping n -> n

let is_overlapping = function Overlapping _ -> true | Islands _ | Flatten _ -> false
let is_flattened = function Flatten _ | Overlapping _ -> true | Islands _ -> false

(* Recursive guillotine slicing into [n] leaves, deterministic. *)
let rec slice rng (r : Rect.t) n =
  if n <= 1 then [ r ]
  else begin
    let n1 = n / 2 in
    let n2 = n - n1 in
    let frac = 0.35 +. (0.3 *. Rng.float rng) in
    let vertical =
      if Rect.width r > 1.4 *. Rect.height r then true
      else if Rect.height r > 1.4 *. Rect.width r then false
      else Rng.bool rng
    in
    if vertical then begin
      let xm = r.Rect.x0 +. (frac *. Rect.width r) in
      slice rng (Rect.make ~x0:r.Rect.x0 ~y0:r.Rect.y0 ~x1:xm ~y1:r.Rect.y1) n1
      @ slice rng (Rect.make ~x0:xm ~y0:r.Rect.y0 ~x1:r.Rect.x1 ~y1:r.Rect.y1) n2
    end
    else begin
      let ym = r.Rect.y0 +. (frac *. Rect.height r) in
      slice rng (Rect.make ~x0:r.Rect.x0 ~y0:r.Rect.y0 ~x1:r.Rect.x1 ~y1:ym) n1
      @ slice rng (Rect.make ~x0:r.Rect.x0 ~y0:ym ~x1:r.Rect.x1 ~y1:r.Rect.y1) n2
    end
  end

let movebound_rects rng (chip : Rect.t) shape =
  match shape with
  | Islands n ->
    (* disjoint islands: slice then shrink each leaf *)
    List.map
      (fun (r : Rect.t) ->
        let dx = 0.12 *. Rect.width r and dy = 0.12 *. Rect.height r in
        Rect.make ~x0:(r.Rect.x0 +. dx) ~y0:(r.Rect.y0 +. dy) ~x1:(r.Rect.x1 -. dx)
          ~y1:(r.Rect.y1 -. dy))
      (slice rng chip n)
  | Flatten n -> slice rng chip n
  | Overlapping n ->
    (* inflate leaves so neighbours overlap, nest an extra bound inside the
       largest leaf *)
    let leaves = slice rng chip (n - 1) in
    let inflated =
      List.map
        (fun (r : Rect.t) ->
          let dx = 0.05 *. Rect.width r and dy = 0.05 *. Rect.height r in
          match Rect.intersect chip (Rect.inflate r (Float.min dx dy)) with
          | Some clipped -> clipped
          | None -> r)
        leaves
    in
    let largest =
      List.fold_left
        (fun acc r -> if Rect.area r > Rect.area acc then r else acc)
        (List.hd inflated) inflated
    in
    let nested =
      Rect.make
        ~x0:(largest.Rect.x0 +. (0.25 *. Rect.width largest))
        ~y0:(largest.Rect.y0 +. (0.25 *. Rect.height largest))
        ~x1:(largest.Rect.x1 -. (0.25 *. Rect.width largest))
        ~y1:(largest.Rect.y1 -. (0.25 *. Rect.height largest))
    in
    inflated @ [ nested ]

(* Attach a scenario to a design: mutates the netlist's movebound column and
   returns the instance.  Deterministic in (design seed, scenario). *)
let attach (scenario : scenario) (design : Design.t) =
  let rng = Rng.create (Hashtbl.hash (scenario.design, shape_count scenario.shape)) in
  let rects = movebound_rects rng design.Design.chip scenario.shape in
  (* Shrink rects so the per-movebound density approaches the scenario's
     "max mb dens" (Table III): low-coverage scenarios would otherwise bind
     a few cells inside huge areas and the density column would read ~0. *)
  let movable = Netlist.total_movable_area design.Design.netlist in
  let demand_per_mb =
    scenario.coverage *. movable /. float_of_int (max 1 (List.length rects))
  in
  let rects =
    List.map
      (fun (r : Rect.t) ->
        let target_area = demand_per_mb /. Float.max 0.05 (0.85 *. scenario.max_density) in
        if Rect.area r > 2.0 *. target_area then begin
          let f = Float.max 0.15 (sqrt (target_area /. Rect.area r)) in
          let c = Rect.center r in
          Rect.of_center ~cx:c.Point.x ~cy:c.Point.y ~w:(f *. Rect.width r)
            ~h:(f *. Rect.height r)
        end
        else r)
      rects
  in
  let movebounds =
    Array.of_list
      (List.mapi
         (fun i r ->
           Fbp_movebound.Movebound.make ~id:i
             ~name:(Printf.sprintf "%s_mb%d" scenario.design i)
             ~kind:scenario.kind [ r ])
         rects)
  in
  let nl = design.Design.netlist in
  let n = Netlist.n_cells nl in
  (* per-movebound area budget honoring the density cap *)
  (* budget against *row-usable* capacity: the legalizer can only use full
     rows inside a movebound, so the density cap must be measured there *)
  let density_model = Fbp_core.Density.create design in
  let budget =
    Array.map
      (fun (m : Fbp_movebound.Movebound.t) ->
        let usable =
          Fbp_core.Density.usable_rows_area density_model ~chip:design.Design.chip
            ~row_height:design.Design.row_height m.Fbp_movebound.Movebound.area
        in
        scenario.max_density *. Rect_set.area usable *. design.Design.target_density)
      movebounds
  in
  let used = Array.make (Array.length movebounds) 0.0 in
  (* bind cells whose golden position lies in a movebound, deterministic
     order, until coverage is reached *)
  let want = scenario.coverage *. float_of_int n in
  let bound = ref 0 in
  Array.iteri (fun c _ -> nl.Netlist.movebound.(c) <- -1) nl.Netlist.movebound;
  let order = Array.init n (fun c -> c) in
  Rng.shuffle rng order;
  Array.iter
    (fun c ->
      if float_of_int !bound < want && not nl.Netlist.fixed.(c) then begin
        let p = Placement.get design.Design.initial c in
        (* innermost (smallest) movebound containing the golden position *)
        let best = ref (-1) and best_area = ref infinity in
        Array.iteri
          (fun i (m : Fbp_movebound.Movebound.t) ->
            if Rect_set.contains_point m.Fbp_movebound.Movebound.area p then begin
              let a = Rect_set.area m.Fbp_movebound.Movebound.area in
              if a < !best_area then begin
                best_area := a;
                best := i
              end
            end)
          movebounds;
        if !best >= 0 && used.(!best) +. Netlist.size nl c <= budget.(!best) then begin
          nl.Netlist.movebound.(c) <- !best;
          used.(!best) <- used.(!best) +. Netlist.size nl c;
          incr bound
        end
      end)
    order;
  { Fbp_movebound.Instance.design; movebounds }

(* Table III statistics of an attached instance. *)
type stats = {
  n_movebounds : int;
  n_cells : int;
  pct_bound : float;
  max_mb_density : float;
  overlapping : bool;
  flattened : bool;
}

let stats_of (scenario : scenario) (inst : Fbp_movebound.Instance.t) =
  let nl = inst.Fbp_movebound.Instance.design.Design.netlist in
  let n = Netlist.n_cells nl in
  let bound = ref 0 in
  let area_per_mb = Array.make (Fbp_movebound.Instance.n_movebounds inst) 0.0 in
  for c = 0 to n - 1 do
    let mb = nl.Netlist.movebound.(c) in
    if mb >= 0 then begin
      incr bound;
      area_per_mb.(mb) <- area_per_mb.(mb) +. Netlist.size nl c
    end
  done;
  let max_density = ref 0.0 in
  Array.iteri
    (fun i (m : Fbp_movebound.Movebound.t) ->
      let cap = Rect_set.area m.Fbp_movebound.Movebound.area in
      if cap > 0.0 then max_density := Float.max !max_density (area_per_mb.(i) /. cap))
    inst.Fbp_movebound.Instance.movebounds;
  {
    n_movebounds = Fbp_movebound.Instance.n_movebounds inst;
    n_cells = n;
    pct_bound = float_of_int !bound /. float_of_int (max 1 n);
    max_mb_density = !max_density;
    overlapping = is_overlapping scenario.shape;
    flattened = is_flattened scenario.shape;
  }

(* Attach with a feasibility guarantee: if the scenario is infeasible under
   the row-aware capacity model (possible for exclusive bounds, which steal
   capacity from everyone else), back off the coverage until the Theorem-2
   check passes.  Returns the instance and the coverage actually used. *)
let attach_feasible (scenario : scenario) (design : Design.t) =
  let density_model = Fbp_core.Density.create design in
  (* 0.90: leave legalization headroom beyond the fractional bound —
     integral cells at >93% fill strand wide stragglers *)
  let capacity_of (r : Fbp_movebound.Regions.region) =
    0.90 *. design.Design.target_density
    *. Rect_set.area
         (Fbp_core.Density.usable_rows_area density_model ~chip:design.Design.chip
            ~row_height:design.Design.row_height r.Fbp_movebound.Regions.area)
  in
  let rec go coverage tries =
    let inst = attach { scenario with coverage } design in
    if tries = 0 then (inst, coverage)
    else
      match Fbp_movebound.Feasibility.check_instance ~capacity_of:(Some capacity_of) inst with
      | Ok (Fbp_movebound.Feasibility.Feasible, _) -> (inst, coverage)
      | Ok (Fbp_movebound.Feasibility.Infeasible _, _) | Error _ ->
        go (coverage *. 0.75) (tries - 1)
  in
  go scenario.coverage 6
