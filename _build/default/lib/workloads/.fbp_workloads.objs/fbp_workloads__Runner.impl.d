lib/workloads/runner.ml: Design Fbp_baselines Fbp_core Fbp_legalize Fbp_movebound Fbp_netlist Fbp_util Hpwl Placement
