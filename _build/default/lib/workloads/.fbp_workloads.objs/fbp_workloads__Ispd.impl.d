lib/workloads/ispd.ml: Array Design Designs Fbp_core Fbp_geometry Fbp_netlist Float Generator Hpwl
