lib/workloads/mb_gen.mli: Fbp_movebound Fbp_netlist
