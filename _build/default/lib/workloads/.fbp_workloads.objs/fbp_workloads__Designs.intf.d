lib/workloads/designs.mli: Fbp_netlist
