lib/workloads/runner.mli: Fbp_baselines Fbp_core Fbp_movebound Fbp_netlist Placement
