lib/workloads/mb_gen.ml: Array Design Fbp_core Fbp_geometry Fbp_movebound Fbp_netlist Fbp_util Float Hashtbl List Netlist Placement Point Printf Rect Rect_set Rng
