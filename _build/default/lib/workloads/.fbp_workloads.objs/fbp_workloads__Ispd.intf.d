lib/workloads/ispd.mli: Design Fbp_netlist Placement
