lib/workloads/tables.mli: Fbp_movebound Fbp_util Ispd Mb_gen Runner Table
