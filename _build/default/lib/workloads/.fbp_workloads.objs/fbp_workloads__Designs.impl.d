lib/workloads/designs.ml: Array Fbp_netlist Float List Sys
