lib/workloads/tables.ml: Array Designs Duration Fbp_core Fbp_movebound Fbp_netlist Fbp_util Float Ispd List Mb_gen Option Printf Runner Stats Table
