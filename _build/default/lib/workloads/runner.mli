(** Run a placer end-to-end (global + legalization) and collect the metrics
    the tables need. *)

open Fbp_netlist

type metrics = {
  tool : string;
  hpwl : float;  (** after legalization *)
  hpwl_global : float;
  global_time : float;
  legalize_time : float;
  total_time : float;
  violations : int;  (** movebound violations in the final placement *)
  legal : bool;  (** overlap/row/chip audit clean *)
  levels : Fbp_core.Placer.level_report list;  (** FBP only *)
  placement : Placement.t;
}

(** [repartition] = number of reflow sweeps after global placement
    (default 1; 0 disables — the ablation mode). *)
val run_fbp :
  ?config:Fbp_core.Config.t -> ?repartition:int -> Fbp_movebound.Instance.t ->
  (metrics, string) result

val run_rql :
  ?params:Fbp_baselines.Rql.params -> Fbp_movebound.Instance.t -> (metrics, string) result

val run_kraftwerk :
  ?params:Fbp_baselines.Kraftwerk.params -> Fbp_movebound.Instance.t ->
  (metrics, string) result
