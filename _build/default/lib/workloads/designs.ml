(* The named benchmark designs.

   One synthetic instance per row of the paper's Tables II/III, keeping the
   paper's name and relative size but scaled down (the originals are
   proprietary IBM designs of up to 9.3M cells; see the substitution table
   in DESIGN.md).  The scale is cells-per-paper-kilocell and can be set via
   the FBP_BENCH_SCALE environment variable (default 2.0, i.e. Dagmar
   50k -> 1.5k cells (floored) ... Erik 9316k -> 18.6k cells). *)

type spec = {
  name : string;
  paper_kcells : int;  (* |C| in thousands, from Table II *)
  paper_rql_hpwl : float;  (* Table II RQL HPWL (scaled units) *)
  paper_fbp_hpwl_pct : float;  (* Table II "BonnPlace FBP" HPWL % *)
  paper_fbp_speedup : float;  (* Table II speedup factor *)
  seed : int;
  macro_fraction : float;
}

(* All 21 rows of Table II. *)
let table2_specs =
  [|
    { name = "dagmar"; paper_kcells = 50; paper_rql_hpwl = 0.95; paper_fbp_hpwl_pct = 83.2; paper_fbp_speedup = 3.3; seed = 101; macro_fraction = 0.05 };
    { name = "elisa"; paper_kcells = 67; paper_rql_hpwl = 2.60; paper_fbp_hpwl_pct = 109.8; paper_fbp_speedup = 4.4; seed = 102; macro_fraction = 0.06 };
    { name = "lucius"; paper_kcells = 77; paper_rql_hpwl = 3.42; paper_fbp_hpwl_pct = 109.2; paper_fbp_speedup = 1.9; seed = 103; macro_fraction = 0.04 };
    { name = "felix"; paper_kcells = 87; paper_rql_hpwl = 8.17; paper_fbp_hpwl_pct = 94.0; paper_fbp_speedup = 5.2; seed = 104; macro_fraction = 0.08 };
    { name = "paula"; paper_kcells = 129; paper_rql_hpwl = 3.14; paper_fbp_hpwl_pct = 102.3; paper_fbp_speedup = 3.9; seed = 105; macro_fraction = 0.05 };
    { name = "rabe"; paper_kcells = 175; paper_rql_hpwl = 12.42; paper_fbp_hpwl_pct = 99.6; paper_fbp_speedup = 4.7; seed = 106; macro_fraction = 0.07 };
    { name = "julia"; paper_kcells = 190; paper_rql_hpwl = 10.65; paper_fbp_hpwl_pct = 101.8; paper_fbp_speedup = 3.9; seed = 107; macro_fraction = 0.05 };
    { name = "max"; paper_kcells = 328; paper_rql_hpwl = 17.22; paper_fbp_hpwl_pct = 104.5; paper_fbp_speedup = 2.8; seed = 108; macro_fraction = 0.06 };
    { name = "roger"; paper_kcells = 456; paper_rql_hpwl = 27.42; paper_fbp_hpwl_pct = 101.2; paper_fbp_speedup = 2.1; seed = 109; macro_fraction = 0.05 };
    { name = "ashraf"; paper_kcells = 867; paper_rql_hpwl = 61.05; paper_fbp_hpwl_pct = 100.8; paper_fbp_speedup = 5.0; seed = 110; macro_fraction = 0.08 };
    { name = "fedor"; paper_kcells = 1052; paper_rql_hpwl = 45.84; paper_fbp_hpwl_pct = 101.8; paper_fbp_speedup = 4.9; seed = 111; macro_fraction = 0.05 };
    { name = "erhard"; paper_kcells = 2578; paper_rql_hpwl = 463.76; paper_fbp_hpwl_pct = 89.2; paper_fbp_speedup = 4.4; seed = 112; macro_fraction = 0.06 };
    { name = "arijan"; paper_kcells = 3753; paper_rql_hpwl = 485.04; paper_fbp_hpwl_pct = 99.8; paper_fbp_speedup = 3.5; seed = 113; macro_fraction = 0.05 };
    { name = "philipp"; paper_kcells = 3946; paper_rql_hpwl = 358.91; paper_fbp_hpwl_pct = 95.4; paper_fbp_speedup = 4.8; seed = 114; macro_fraction = 0.04 };
    { name = "tomoku"; paper_kcells = 5296; paper_rql_hpwl = 356.44; paper_fbp_hpwl_pct = 99.4; paper_fbp_speedup = 6.7; seed = 115; macro_fraction = 0.06 };
    { name = "trips"; paper_kcells = 5747; paper_rql_hpwl = 616.05; paper_fbp_hpwl_pct = 95.7; paper_fbp_speedup = 4.6; seed = 116; macro_fraction = 0.05 };
    { name = "valentin"; paper_kcells = 5838; paper_rql_hpwl = 671.49; paper_fbp_hpwl_pct = 90.9; paper_fbp_speedup = 5.1; seed = 117; macro_fraction = 0.07 };
    { name = "andre"; paper_kcells = 6794; paper_rql_hpwl = 437.01; paper_fbp_hpwl_pct = 102.7; paper_fbp_speedup = 5.7; seed = 118; macro_fraction = 0.05 };
    { name = "ludwig"; paper_kcells = 7500; paper_rql_hpwl = 598.40; paper_fbp_hpwl_pct = 100.8; paper_fbp_speedup = 6.2; seed = 119; macro_fraction = 0.06 };
    { name = "leyla"; paper_kcells = 8472; paper_rql_hpwl = 711.90; paper_fbp_hpwl_pct = 100.9; paper_fbp_speedup = 6.4; seed = 120; macro_fraction = 0.05 };
    { name = "erik"; paper_kcells = 9316; paper_rql_hpwl = 559.34; paper_fbp_hpwl_pct = 97.9; paper_fbp_speedup = 6.3; seed = 121; macro_fraction = 0.06 };
  |]

let find_spec name =
  Array.to_list table2_specs |> List.find_opt (fun s -> s.name = name)

(* Cells per paper kilocell.  At the default 5.0, erik becomes ~46.6k
   cells; FBP_BENCH_SCALE overrides (e.g. 1.0 for a very quick pass,
   10.0 for erik at 93k). *)
let scale () =
  match Sys.getenv_opt "FBP_BENCH_SCALE" with
  | Some s -> (try Float.max 0.2 (float_of_string s) with _ -> 2.0)
  | None -> 2.0

(* Sizes are floored at 1500 cells: below that the multilevel structure the
   comparison probes does not exist (the paper's smallest design is 50k). *)
let n_cells_of_spec ?scale:(sc = -1.0) (s : spec) =
  let sc = if sc > 0.0 then sc else scale () in
  max 1500 (int_of_float (float_of_int s.paper_kcells *. sc))

let instantiate ?scale (s : spec) =
  let n = n_cells_of_spec ?scale s in
  Fbp_netlist.Generator.generate
    {
      Fbp_netlist.Generator.default_params with
      name = s.name;
      n_cells = n;
      seed = s.seed;
      macro_fraction = s.macro_fraction;
      n_macros = (if s.macro_fraction > 0.0 then 2 + (s.seed mod 3) else 0);
      target_density = 0.97;  (* the paper's setting for Tables II-VI *)
    }

(* The subset used for fast default runs (bench --quick, examples). *)
let quick_names = [ "dagmar"; "rabe"; "max" ]
