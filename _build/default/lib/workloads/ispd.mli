(** ISPD-2006-style instances and contest scoring (Table VII). *)

open Fbp_netlist

type spec = {
  name : string;
  paper_kcells : int;
  target_density : float;
  seed : int;
  macro_fraction : float;
  paper_kw2 : float * float * float;  (** Kraftwerk2 H, H+D, H+D+C *)
  paper_fbp_hpwl : float;
  paper_fbp_dens_pct : float;
  paper_fbp_cpu_pct : float;
}

(** ad5-s, nb1-s … nb7-s. *)
val specs : spec array

val instantiate : ?scale:float -> spec -> Design.t

(** Mean relative overflow of the worst 10% of 10-row bins. *)
val density_penalty : Design.t -> Placement.t -> float

(** ±4% per factor of two of runtime vs the reference, truncated at ±10%
    (negative = bonus). *)
val cpu_factor : reference:float -> time:float -> float

type score = {
  hpwl : float;
  dens_pct : float;
  cpu_pct : float;
  h_d : float;
  h_d_c : float;
}

val score : Design.t -> Placement.t -> time:float -> reference_time:float -> score
