(** Named benchmark designs: one synthetic instance per row of the paper's
    Table II, scaled via FBP_BENCH_SCALE (cells per paper-kilocell,
    default 2.0, floored at 1500 cells). *)

type spec = {
  name : string;
  paper_kcells : int;
  paper_rql_hpwl : float;
  paper_fbp_hpwl_pct : float;
  paper_fbp_speedup : float;
  seed : int;
  macro_fraction : float;
}

(** All 21 rows of Table II. *)
val table2_specs : spec array

val find_spec : string -> spec option

(** Current scale (cells per paper-kilocell). *)
val scale : unit -> float

val n_cells_of_spec : ?scale:float -> spec -> int
val instantiate : ?scale:float -> spec -> Fbp_netlist.Design.t

(** Subset for fast runs. *)
val quick_names : string list
