(* Binary min-heap keyed by floats, with a generic payload.

   Used by Dijkstra in the MinCostFlow solver and by the transportation
   algorithm's per-arc candidate heaps.  Stale entries are handled by the
   caller via lazy deletion (pop and discard), which keeps this structure a
   plain heap without decrease-key bookkeeping. *)

type 'a t = {
  mutable keys : float array;
  mutable data : 'a array;
  mutable size : int;
}

let create () = { keys = [||]; data = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let clear t = t.size <- 0

let grow t x =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let ncap = max 8 (2 * cap) in
    let nkeys = Array.make ncap 0.0 and ndata = Array.make ncap x in
    Array.blit t.keys 0 nkeys 0 t.size;
    Array.blit t.data 0 ndata 0 t.size;
    t.keys <- nkeys;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if t.keys.(p) > t.keys.(i) then begin
      let k = t.keys.(i) and d = t.data.(i) in
      t.keys.(i) <- t.keys.(p); t.data.(i) <- t.data.(p);
      t.keys.(p) <- k; t.data.(p) <- d;
      sift_up t p
    end
  end

let push t key v =
  grow t v;
  t.keys.(t.size) <- key;
  t.data.(t.size) <- v;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < t.size && t.keys.(l) < t.keys.(i) then l else i in
  let m = if r < t.size && t.keys.(r) < t.keys.(m) then r else m in
  if m <> i then begin
    let k = t.keys.(i) and d = t.data.(i) in
    t.keys.(i) <- t.keys.(m); t.data.(i) <- t.data.(m);
    t.keys.(m) <- k; t.data.(m) <- d;
    sift_down t m
  end

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) and v = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (key, v)
  end

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.data.(0))
