(** Binary min-heap keyed by floats with generic payloads.

    Stale entries are the caller's concern (lazy deletion): the heap offers
    no decrease-key, which is the usual trade for Dijkstra-style uses. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Remove all entries (O(1), keeps the backing storage). *)
val clear : 'a t -> unit

(** [push t key v] inserts payload [v] with priority [key]. *)
val push : 'a t -> float -> 'a -> unit

(** Remove and return the minimum-key entry. *)
val pop : 'a t -> (float * 'a) option

(** Return (without removing) the minimum-key entry. *)
val peek : 'a t -> (float * 'a) option
