(* Wall-clock timers for the phase instrumentation reported in Tables I and
   VI (flow computation vs realization, global placement vs legalization). *)

let now () = Unix.gettimeofday ()

type t = {
  mutable started : float;
  mutable accumulated : float;
  mutable running : bool;
}

let create () = { started = 0.0; accumulated = 0.0; running = false }

let start t =
  if not t.running then begin
    t.started <- now ();
    t.running <- true
  end

let stop t =
  if t.running then begin
    t.accumulated <- t.accumulated +. (now () -. t.started);
    t.running <- false
  end

let reset t =
  t.accumulated <- 0.0;
  t.running <- false

let elapsed t =
  if t.running then t.accumulated +. (now () -. t.started) else t.accumulated

(* Time a thunk, returning its result and the wall time it took. *)
let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* Accumulate the thunk's wall time into [t]. *)
let record t f =
  let t0 = now () in
  let r = f () in
  t.accumulated <- t.accumulated +. (now () -. t0);
  r
