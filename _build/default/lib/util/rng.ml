(* Deterministic SplitMix64 pseudo-random generator.

   Every stochastic component of the reproduction (netlist generation,
   movebound scenarios, property-test fixtures) draws from this generator so
   that results are identical across runs, OCaml versions and domains.  The
   stdlib [Random] is deliberately not used: its algorithm changed between
   compiler releases and its global state is awkward under Domains. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer (Steele et al., "Fast splittable pseudorandom number
   generators"). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Non-negative 62-bit integer. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Uniform integer in [0, n). *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

(* Uniform float in [0, 1). *)
let float t =
  let f = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  f *. (1.0 /. 9007199254740992.0)

(* Uniform float in [lo, hi). *)
let range t lo hi = lo +. ((hi -. lo) *. float t)

(* Approximate standard normal via sum of 12 uniforms (Irwin-Hall). *)
let normal t =
  let rec sum k acc = if k = 0 then acc else sum (k - 1) (acc +. float t) in
  sum 12 0.0 -. 6.0

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Derive an independent stream, e.g. one per domain or per design. *)
let split t =
  let seed = next_int64 t in
  { state = Int64.mul seed 0x2545F4914F6CDD1DL }

(* In-place Fisher-Yates shuffle. *)
let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Pick one element of a non-empty array. *)
let choose t a = a.(int t (Array.length a))
