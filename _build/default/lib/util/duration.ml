(* Formatting of wall-clock durations in the paper's h:mm:ss style. *)

let to_hms seconds =
  let s = if seconds < 0.0 then 0.0 else seconds in
  let total = int_of_float (Float.round s) in
  let h = total / 3600 in
  let m = total mod 3600 / 60 in
  let sec = total mod 60 in
  Printf.sprintf "%d:%02d:%02d" h m sec

(* Higher-resolution variant for sub-second phases (Table I rows where the
   flow computation rounds to 0:00:00). *)
let pretty seconds =
  if seconds < 1.0 then Printf.sprintf "%.3fs" seconds
  else if seconds < 60.0 then Printf.sprintf "%.2fs" seconds
  else to_hms seconds
