(** Wall-clock phase timers (Tables I and VI instrumentation). *)

type t

(** Current wall-clock time in seconds. *)
val now : unit -> float

val create : unit -> t

(** Start (or resume) the timer; no-op if already running. *)
val start : t -> unit

(** Pause the timer, adding the running span to the accumulated total. *)
val stop : t -> unit

val reset : t -> unit

(** Accumulated seconds, including the currently running span if any. *)
val elapsed : t -> float

(** [time f] runs [f ()] and returns its result with its wall time. *)
val time : (unit -> 'a) -> 'a * float

(** [record t f] runs [f ()], adding its wall time to [t]. *)
val record : t -> (unit -> 'a) -> 'a
