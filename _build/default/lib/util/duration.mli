(** Wall-clock duration formatting in the paper's table style. *)

(** [to_hms 3723.4] is ["1:02:03"]. *)
val to_hms : float -> string

(** Sub-second-aware variant: ["0.532s"], ["12.40s"], or h:mm:ss. *)
val pretty : float -> string
