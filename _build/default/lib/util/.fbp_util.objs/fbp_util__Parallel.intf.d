lib/util/parallel.mli:
