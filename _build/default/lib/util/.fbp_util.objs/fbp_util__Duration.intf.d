lib/util/duration.mli:
