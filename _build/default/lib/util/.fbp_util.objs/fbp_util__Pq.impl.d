lib/util/pq.ml: Array
