lib/util/table.mli:
