lib/util/stats.mli:
