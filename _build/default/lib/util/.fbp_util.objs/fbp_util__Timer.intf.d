lib/util/timer.mli:
