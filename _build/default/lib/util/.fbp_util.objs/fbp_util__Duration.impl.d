lib/util/duration.ml: Float Printf
