lib/util/pq.mli:
