lib/util/rng.mli:
