lib/util/parallel.ml: Array Domain List
