(** Disjoint-set forest with path halving and union by rank. *)

type t

(** [create n] makes [n] singleton sets [0 .. n-1]. *)
val create : int -> t

(** Canonical representative of the set containing [i]. *)
val find : t -> int -> int

(** Merge the sets containing the two elements. *)
val union : t -> int -> int -> unit

(** Are the two elements in the same set? *)
val same : t -> int -> int -> bool

(** [groups t] maps every element to a dense group index and returns the
    number of groups. *)
val groups : t -> int array * int
