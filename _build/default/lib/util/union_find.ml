(* Disjoint-set forest with path halving and union by rank.  Used to merge
   Hanan cells of equal coverage signature into maximal regions. *)

type t = {
  parent : int array;
  rank : int array;
}

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    (* path halving *)
    t.parent.(i) <- t.parent.(p);
    find t t.parent.(i)
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end
  end

let same t a b = find t a = find t b

(* Map every element to a dense group index in [0, #groups). *)
let groups t =
  let n = Array.length t.parent in
  let id = Array.make n (-1) in
  let next = ref 0 in
  let out = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = find t i in
    if id.(r) < 0 then begin
      id.(r) <- !next;
      incr next
    end;
    out.(i) <- id.(r)
  done;
  (out, !next)
