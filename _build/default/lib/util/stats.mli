(** Descriptive statistics used by the harness and tests. *)

val mean : float array -> float
val sum : float array -> float

(** Raises [Invalid_argument] on an empty array. *)
val min_max : float array -> float * float

(** Sample standard deviation (n−1 denominator); 0 for fewer than 2 values. *)
val stddev : float array -> float

(** [percentile a p] with [p] in [0,1], linear interpolation.
    Raises [Invalid_argument] on an empty array. *)
val percentile : float array -> float -> float

(** Geometric mean of strictly positive values. *)
val geomean : float array -> float
