(** Deterministic SplitMix64 pseudo-random generator.

    All stochastic components of the reproduction draw from this generator so
    that every run is bit-for-bit reproducible, independent of the stdlib
    [Random] implementation and of domain scheduling. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)
val create : int -> t

(** Independent copy sharing no state with the original. *)
val copy : t -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** Uniform non-negative int (62 bits). *)
val bits : t -> int

(** [int t n] is uniform in [0, n). Raises [Invalid_argument] if [n <= 0]. *)
val int : t -> int -> int

(** Uniform float in [0, 1). *)
val float : t -> float

(** [range t lo hi] is uniform in [lo, hi). *)
val range : t -> float -> float -> float

(** Approximately standard-normal deviate (Irwin–Hall sum of 12). *)
val normal : t -> float

val bool : t -> bool

(** Derive an independent stream (e.g. one per domain or per design). *)
val split : t -> t

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Uniformly pick one element of a non-empty array. *)
val choose : t -> 'a array -> 'a
