(* The BonnPlace-FBP global placement driver.

   Multilevel loop: at level l the chip is divided into a 2^l x 2^l window
   grid; a global QP (anchored to the previous level's realization) restores
   connectivity, then the flow-based partitioning assigns cells to region
   pieces respecting capacities and movebounds, and the realization turns
   the flow into concrete positions.  Levels refine until windows are a few
   rows tall; the result feeds the legalizer.

   Every level records the Table I instrumentation: flow-model size (|V|,
   |E|), window and region-piece counts, and the wall-clock split between
   flow computation and realization. *)

open Fbp_netlist
open Fbp_geometry

type level_report = {
  level : int;
  nx : int;
  ny : int;
  n_windows : int;
  n_pieces : int;
  flow_nodes : int;
  flow_edges : int;
  qp_time : float;
  flow_time : float;  (* model build + MinCostFlow *)
  realization_time : float;
  hpwl : float;
  realization : Realization.stats;
}

type report = {
  placement : Placement.t;
  piece_of_cell : int array;  (* final-level region-piece assignment *)
  regions : Fbp_movebound.Regions.t;
  final_grid : Grid.t option;
  levels : level_report list;
  total_time : float;
  hpwl : float;
}

let log_verbose (cfg : Config.t) fmt =
  if cfg.Config.verbose then Printf.eprintf fmt
  else Printf.ifprintf stderr fmt

(* Number of levels: refine while windows stay at least [min_window_rows]
   rows tall and the flow model stays tractable.  The MinCostFlow size (and
   the successive-shortest-paths cost) grows with windows x movebound
   classes, so movebound-heavy instances stop a level earlier than plain
   ones (the paper's network simplex absorbed finer grids; see DESIGN.md). *)
let n_levels (cfg : Config.t) (design : Design.t) =
  let chip_h = Rect.height design.Design.chip in
  let nl = design.Design.netlist in
  let n_movable = ref 0 in
  let classes = Hashtbl.create 8 in
  for c = 0 to Netlist.n_cells nl - 1 do
    if not nl.Netlist.fixed.(c) then begin
      incr n_movable;
      Hashtbl.replace classes nl.Netlist.movebound.(c) ()
    end
  done;
  let per_window =
    if Hashtbl.length classes > 4 then 20
    else if !n_movable < 3000 then 4  (* small designs need the finer grid *)
    else 6
  in
  let rec go l =
    let windows_h = chip_h /. float_of_int (1 lsl l) in
    if l >= cfg.Config.max_levels
       || windows_h < cfg.Config.min_window_rows *. design.Design.row_height
       || (1 lsl (2 * l)) * per_window > !n_movable
    then l - 1
    else go (l + 1)
  in
  max 1 (go 1)

let place ?(config = Config.default) ?on_level (inst0 : Fbp_movebound.Instance.t) =
  match Fbp_movebound.Instance.normalize inst0 with
  | Error e -> Error ("movebound normalization failed: " ^ e)
  | Ok inst ->
    let design = inst.Fbp_movebound.Instance.design in
    let nl = design.Design.netlist in
    let t_start = Fbp_util.Timer.now () in
    let regions =
      Fbp_movebound.Regions.decompose ~chip:design.Design.chip
        inst.Fbp_movebound.Instance.movebounds
    in
    let density = Density.create design in
    (* row-usable area per region: flow capacities must not exceed what the
       row-based legalizer can actually realize *)
    let usable =
      Array.map
        (fun (r : Fbp_movebound.Regions.region) ->
          Density.usable_rows_area density ~chip:design.Design.chip
            ~row_height:design.Design.row_height r.Fbp_movebound.Regions.area)
        regions.Fbp_movebound.Regions.regions
    in
    let cell_nets = Netlist.cell_nets nl in
    let pos = Placement.copy design.Design.initial in
    let chip_center = Rect.center design.Design.chip in
    (* Level 0: plain global QP, weakly anchored at the chip center so that
       components without fixed pins stay determined. *)
    let qp0 =
      Fbp_util.Timer.time (fun () ->
          Qp.solve_global config nl pos ~anchor:(fun _ ->
              Some (1e-6, chip_center.Point.x, 1e-6, chip_center.Point.y)))
    in
    ignore qp0;
    let levels = ref [] in
    let piece_of_cell = ref (Array.make (Netlist.n_cells nl) (-1)) in
    let final_grid = ref None in
    let max_level = n_levels config design in
    let error = ref None in
    let margin_ok = ref true in
    let anchor_pos = ref (Placement.copy pos) in
    (* anchor targets: positions after the previous realization *)
    let l = ref 1 in
    while !error = None && !l <= max_level do
      let level = !l in
      let nx = 1 lsl level and ny = 1 lsl level in
      let anchor_w = config.Config.anchor_base *. (config.Config.anchor_growth ** float_of_int level) in
      (* QP anchored to the previous level's realization *)
      let _, qp_time =
        Fbp_util.Timer.time (fun () ->
            if level > 1 then
              ignore
                (Qp.solve_global config nl pos ~anchor:(fun c ->
                     Some (anchor_w, !anchor_pos.Placement.x.(c), anchor_w,
                           !anchor_pos.Placement.y.(c)))))
      in
      (* Flow capacities carry a legalizability margin (integral rounding can
         overfill a piece by up to one cell; rows lose slivers).  If the
         margin makes a movebound class infeasible, retry without it. *)
      let build_and_solve capacity_factor capacity_slack =
        let grid =
          Grid.create ~usable ~capacity_factor ~capacity_slack
            ~chip:design.Design.chip ~nx ~ny ~regions ~density ()
        in
        let model = Fbp_model.build inst regions grid pos in
        (grid, model, Fbp_model.solve model)
      in
      (* half a typical movable cell of headroom per piece against integral
         rounding overfill *)
      let slack =
        let acc = ref 0.0 and n = ref 0 in
        for c = 0 to Netlist.n_cells nl - 1 do
          if not nl.Netlist.fixed.(c) then begin
            acc := !acc +. Netlist.size nl c;
            incr n
          end
        done;
        if !n = 0 then 0.0 else 0.5 *. !acc /. float_of_int !n
      in
      let (grid, model, sol), flow_time =
        Fbp_util.Timer.time (fun () ->
            if not !margin_ok then build_and_solve 1.0 0.0
            else
              match build_and_solve config.Config.capacity_margin slack with
              | (_, _, { Fbp_model.verdict = Fbp_flow.Mcf.Infeasible _; _ })
                when config.Config.capacity_margin < 1.0 || slack > 0.0 ->
                (* margins make this instance infeasible: drop them for the
                   remaining levels too (avoids re-solving twice each level) *)
                margin_ok := false;
                build_and_solve 1.0 0.0
              | ok -> ok)
      in
      (match sol.Fbp_model.verdict with
       | Fbp_flow.Mcf.Infeasible { unrouted } ->
         error :=
           Some
             (Printf.sprintf
                "no fractional placement with movebounds exists at level %d (unrouted %.1f; Theorem 3)"
                level unrouted)
       | Fbp_flow.Mcf.Feasible _ ->
         let r, realization_time =
           Fbp_util.Timer.time (fun () ->
               Realization.realize config inst regions sol pos ~cell_nets)
         in
         piece_of_cell := r.Realization.piece_of_cell;
         final_grid := Some grid;
         anchor_pos := Placement.copy pos;
         let hpwl = Hpwl.total nl pos in
         let rep =
           {
             level;
             nx;
             ny;
             n_windows = Grid.n_windows grid;
             n_pieces = Grid.n_pieces grid;
             flow_nodes = model.Fbp_model.n_nodes;
             flow_edges = model.Fbp_model.n_edges;
             qp_time;
             flow_time;
             realization_time;
             hpwl;
             realization = r.Realization.stats;
           }
         in
         levels := rep :: !levels;
         log_verbose config "[fbp] level %d: %dx%d windows, %d pieces, hpwl %.3e\n"
           level nx ny (Grid.n_pieces grid) hpwl;
         (match on_level with Some f -> f rep | None -> ()));
      incr l
    done;
    (match !error with
     | Some e -> Error e
     | None ->
       Ok
         {
           placement = pos;
           piece_of_cell = !piece_of_cell;
           regions;
           final_grid = !final_grid;
           levels = List.rev !levels;
           total_time = Fbp_util.Timer.now () -. t_start;
           hpwl = Hpwl.total nl pos;
         })
