(** Window grids (the Γ of Section III) and region-in-window pieces (the
    region nodes of the flow model; their count is Table I's |R|). *)

open Fbp_geometry

type window = {
  index : int;
  wx : int;
  wy : int;
  rect : Rect.t;
}

type piece = {
  id : int;  (** dense over all pieces of the level *)
  window : int;  (** owning window index *)
  region : int;  (** global region id (signature lookup) *)
  area : Rect_set.t;
  capacity : float;
  centroid : Point.t;  (** of the free area — the region-node embedding *)
}

type t = {
  chip : Rect.t;
  nx : int;
  ny : int;
  windows : window array;
  pieces : piece array;
  pieces_of_window : int list array;
}

val n_windows : t -> int
val n_pieces : t -> int
val window_index : t -> wx:int -> wy:int -> int

(** Window containing a point (clamped into the grid). *)
val window_at : t -> Point.t -> int

(** 4-neighbours as (direction, window) with 0=N 1=E 2=S 3=W. *)
val neighbors : t -> int -> (int * int) list

(** Boundary midpoint for a direction — the transit-node embedding. *)
val boundary_point : t -> int -> int -> Point.t

val opposite_dir : int -> int

(** Build the grid and its region pieces.  [usable] maps region ids to
    row-usable areas (capacities are then measured against them);
    [capacity_factor]/[capacity_slack] derate piece capacities for
    legalizability. Raises [Invalid_argument] for an empty grid. *)
val create :
  ?usable:Rect_set.t array ->
  ?capacity_factor:float ->
  ?capacity_slack:float ->
  chip:Rect.t ->
  nx:int ->
  ny:int ->
  regions:Fbp_movebound.Regions.t ->
  density:Density.t ->
  unit ->
  t
