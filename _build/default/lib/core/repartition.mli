(** Repartitioning ("reflow") post-pass over 2×2 / 3×3 window blocks: local
    QP + movebound-aware transportation among the block's pieces.  Global
    feasibility from the flow is preserved (piece capacities respected per
    block); each sweep trades runtime for a few percent of HPWL. *)

type stats = {
  n_blocks : int;
  n_moved : int;  (** cells whose piece assignment changed *)
  hpwl_before : float;
  hpwl_after : float;
  time : float;
}

(** One sweep over all [span]×[span] blocks; updates positions and
    [piece_of_cell] in place. *)
val sweep :
  ?span:int ->
  Config.t ->
  Fbp_movebound.Instance.t ->
  Fbp_movebound.Regions.t ->
  Grid.t ->
  Fbp_netlist.Placement.t ->
  piece_of_cell:int array ->
  cell_nets:int list array ->
  stats

(** [refine cfg inst report] runs [sweeps] passes over a finished
    {!Placer.place} report (no-op when the report has no final grid). *)
val refine :
  ?sweeps:int ->
  ?span:int ->
  Config.t ->
  Fbp_movebound.Instance.t ->
  Placer.report ->
  stats list
