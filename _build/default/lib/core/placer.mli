(** The BonnPlace-FBP global placement driver: multilevel QP → flow-based
    partitioning → realization, with Table I instrumentation per level. *)

type level_report = {
  level : int;
  nx : int;
  ny : int;
  n_windows : int;  (** Table I's |W| *)
  n_pieces : int;  (** Table I's |R| *)
  flow_nodes : int;  (** |V| *)
  flow_edges : int;  (** |E| *)
  qp_time : float;
  flow_time : float;  (** model build + MinCostFlow *)
  realization_time : float;
  hpwl : float;
  realization : Realization.stats;
}

type report = {
  placement : Fbp_netlist.Placement.t;
  piece_of_cell : int array;  (** final-level region-piece assignment *)
  regions : Fbp_movebound.Regions.t;
  final_grid : Grid.t option;
  levels : level_report list;
  total_time : float;
  hpwl : float;
}

(** Planned number of refinement levels for a design under a config. *)
val n_levels : Config.t -> Fbp_netlist.Design.t -> int

(** Global placement.  Returns [Error] when movebound normalization fails
    or the flow model certifies infeasibility (Theorem 3).  The result
    still needs legalization ({!Fbp_legalize.Legalizer.run}). *)
val place :
  ?config:Config.t ->
  ?on_level:(level_report -> unit) ->
  Fbp_movebound.Instance.t ->
  (report, string) result
