lib/core/repartition.ml: Array Config Design Fbp_flow Fbp_geometry Fbp_movebound Fbp_netlist Fbp_util Grid Hpwl List Netlist Placement Placer Qp Rect_set Transport
