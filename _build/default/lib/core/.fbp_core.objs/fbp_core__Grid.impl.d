lib/core/grid.ml: Array Density Fbp_geometry Fbp_movebound Float List Point Rect Rect_set
