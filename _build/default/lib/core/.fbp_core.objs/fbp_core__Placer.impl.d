lib/core/placer.ml: Array Config Density Design Fbp_flow Fbp_geometry Fbp_model Fbp_movebound Fbp_netlist Fbp_util Grid Hashtbl Hpwl List Netlist Placement Point Printf Qp Realization Rect
