lib/core/qp.mli: Config Fbp_netlist Netlist Netmodel Placement
