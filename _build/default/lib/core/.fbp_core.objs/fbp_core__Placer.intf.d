lib/core/placer.mli: Config Fbp_movebound Fbp_netlist Grid Realization
