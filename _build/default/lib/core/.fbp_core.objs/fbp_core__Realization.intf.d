lib/core/realization.mli: Config Fbp_model Fbp_movebound Fbp_netlist
