lib/core/grid.mli: Density Fbp_geometry Fbp_movebound Point Rect Rect_set
