lib/core/fbp_model.ml: Array Design Fbp_flow Fbp_geometry Fbp_movebound Fbp_netlist Float Graph Grid Hashtbl List Mcf Netlist Placement Point Rect Rect_set
