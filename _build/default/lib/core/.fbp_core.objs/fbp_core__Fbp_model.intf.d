lib/core/fbp_model.mli: Fbp_flow Fbp_geometry Fbp_movebound Fbp_netlist Graph Grid Hashtbl Mcf Point
