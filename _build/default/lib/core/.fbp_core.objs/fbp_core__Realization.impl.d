lib/core/realization.ml: Array Config Design Fbp_flow Fbp_geometry Fbp_linalg Fbp_model Fbp_movebound Fbp_netlist Fbp_util Grid Hashtbl List Netlist Netmodel Placement Point Rect Rect_set Transport
