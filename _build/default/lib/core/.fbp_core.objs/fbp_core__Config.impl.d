lib/core/config.ml:
