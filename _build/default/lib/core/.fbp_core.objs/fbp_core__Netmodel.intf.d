lib/core/netmodel.mli: Fbp_linalg Fbp_netlist Netlist Placement
