lib/core/netmodel.ml: Array Fbp_linalg Fbp_netlist Netlist Placement
