lib/core/density.mli: Fbp_geometry Fbp_netlist Point Rect Rect_set
