lib/core/density.ml: Array Fbp_geometry Fbp_netlist Float List Rect Rect_set
