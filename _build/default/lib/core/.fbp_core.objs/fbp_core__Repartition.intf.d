lib/core/repartition.mli: Config Fbp_movebound Fbp_netlist Grid Placer
