lib/core/config.mli:
