lib/core/qp.ml: Array Config Fbp_linalg Fbp_netlist Float Hashtbl List Netlist Netmodel Placement
