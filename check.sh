#!/bin/sh
# Repo health check: full build, test suite, and (when ocamlformat is
# available) the formatting gate.  Run before every push.
set -eu
cd "$(dirname "$0")"

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== dune build @lint (fbp-lint must report zero findings)"
dune build @lint

echo "== lint baseline ratchet (may shrink vs HEAD, never grow)"
if git -C . rev-parse --verify HEAD >/dev/null 2>&1; then
  git -C . show HEAD:lint-baseline.txt > "$tmp/baseline.head" 2>/dev/null \
    || : > "$tmp/baseline.head"
  sed '/^#/d;/^[[:space:]]*$/d' lint-baseline.txt | sort > "$tmp/baseline.now"
  sed '/^#/d;/^[[:space:]]*$/d' "$tmp/baseline.head" | sort > "$tmp/baseline.old"
  grown="$(comm -23 "$tmp/baseline.now" "$tmp/baseline.old")"
  if [ -n "$grown" ]; then
    echo "lint-baseline.txt grew vs HEAD (fix or suppress instead):"
    echo "$grown"
    exit 1
  fi
fi

echo "== interproc lint determinism (two runs, byte-identical, <10s each)"
lint="./_build/default/bin/fbp_lint.exe"
timeout 10 "$lint" --interproc --json lib bin bench > "$tmp/lint1.json" \
  || { echo "interproc lint run 1 failed or exceeded 10s"; exit 1; }
timeout 10 "$lint" --interproc --json lib bin bench > "$tmp/lint2.json" \
  || { echo "interproc lint run 2 failed or exceeded 10s"; exit 1; }
cmp -s "$tmp/lint1.json" "$tmp/lint2.json" \
  || { echo "interproc lint output is not byte-stable across runs"; exit 1; }

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed)"
fi

echo "== bench smoke (BENCH_pr3.json + BENCH_pr4.json + BENCH_pr5.json + BENCH_pr7.json + BENCH_pr8.json)"
FBP_BENCH_SMOKE=1 FBP_BENCH_JSON="$tmp/BENCH_pr3.json" \
  FBP_BENCH_JSON4="$tmp/BENCH_pr4.json" \
  FBP_BENCH_JSON5="$tmp/BENCH_pr5.json" \
  FBP_BENCH_JSON7="$tmp/BENCH_pr7.json" \
  FBP_BENCH_JSON8="$tmp/BENCH_pr8.json" dune exec bench/main.exe >/dev/null
for key in schema smoke designs phase_times counters histograms hpwl total_time; do
  grep -q "\"$key\"" "$tmp/BENCH_pr3.json" \
    || { echo "BENCH_pr3.json missing key: $key"; exit 1; }
done
for key in sanitizer off_time on_time overhead_pct checks_run disabled_check_ns; do
  grep -q "\"$key\"" "$tmp/BENCH_pr4.json" \
    || { echo "BENCH_pr4.json missing key: $key"; exit 1; }
done
# the sanitizer must never change results (checks only read solver state)
if grep -q '"hpwl_match":false' "$tmp/BENCH_pr4.json"; then
  echo "sanitized run changed the placement result"; exit 1
fi
# the committed artifact records the confirmed overhead: < 5% per design
awk -F'"overhead_pct":' '/overhead_pct/ { split($2, a, ","); if (a[1] + 0 >= 5.0) exit 1 }' \
  BENCH_pr4.json || { echo "committed BENCH_pr4.json records >= 5% sanitizer overhead"; exit 1; }

echo "== perf smoke (BENCH_pr5.json schema + 1-vs-N-domain HPWL equality)"
for key in schema spmv cg assemble qp_phase qp_speedup_8 scaling \
           reuse_speedup hpwl_match workers_spawned; do
  grep -q "\"$key\"" "$tmp/BENCH_pr5.json" \
    || { echo "BENCH_pr5.json missing key: $key"; exit 1; }
done
# parallel runs must be bit-identical to the sequential run: the sweep sets
# hpwl_match per domain count against domains=1, and the top-level flag
# aggregates them.  Any false fails the check.
if grep -q '"hpwl_match":false' "$tmp/BENCH_pr5.json"; then
  echo "parallel placement diverged from the 1-domain result"; exit 1
fi

echo "== realization scaling gate (BENCH_pr7.json schema + no anti-scaling)"
for key in schema smoke design reps hardware_domains scaling speedup_8 \
           pool hpwl_match; do
  grep -q "\"$key\"" "$tmp/BENCH_pr7.json" \
    || { echo "BENCH_pr7.json missing key: $key"; exit 1; }
done
grep -q '"schema":"fbp-bench-pr7"' "$tmp/BENCH_pr7.json" \
  || { echo "BENCH_pr7.json has wrong schema tag"; exit 1; }
# every sweep entry must be bit-identical to the 1-domain run
if grep -q '"hpwl_match":false' "$tmp/BENCH_pr7.json"; then
  echo "realization sweep diverged from the 1-domain result"; exit 1
fi
# On a box with real parallelism, more domains must not make the placer
# slower end to end (the PR 7 regression).  Single-core machines run the
# whole sweep sequentially under the hardware clamp, so the timing
# comparison is pure noise there — gate only when >= 4 CPUs are present.
cpus="$(nproc 2>/dev/null || echo 1)"
if [ "$cpus" -ge 4 ]; then
  awk -F'"global_s":' '/"domains":1,/ { split($2, a, ","); g1 = a[1] + 0 }
                       /"domains":8,/ { split($2, a, ","); g8 = a[1] + 0 }
                       END { exit (g8 > g1) ? 1 : 0 }' "$tmp/BENCH_pr7.json" \
    || { echo "8-domain run is slower than 1-domain (anti-scaling regressed)"; exit 1; }
fi

echo "== profiler gate (BENCH_pr8.json schema + observer properties)"
for key in schema smoke design off_time on_time overhead_pct \
           disabled_probe_ns available stw_count sum_consistency hpwl_match; do
  grep -q "\"$key\"" "$tmp/BENCH_pr8.json" \
    || { echo "BENCH_pr8.json missing key: $key"; exit 1; }
done
grep -q '"schema":"fbp-bench-pr8"' "$tmp/BENCH_pr8.json" \
  || { echo "BENCH_pr8.json has wrong schema tag"; exit 1; }
# the profiler is an observer: the armed run must be bit-identical
if grep -q '"hpwl_match":false' "$tmp/BENCH_pr8.json"; then
  echo "profiled placement diverged from the unprofiled result"; exit 1
fi
# per domain, busy + spin + park + stw must account for the wall clock
if grep -q '"sum_consistency":false' "$tmp/BENCH_pr8.json"; then
  echo "profiler occupancy does not sum to wall clock"; exit 1
fi
# the committed artifact records the confirmed costs: the disabled probe
# (what every level boundary pays in production) stays in low ns, and the
# armed tax stays under 15% (the runtime's own GC event emission dominates
# it on a contended 1-core container; the disabled path is the <5% claim)
awk -F'"disabled_probe_ns":' '/disabled_probe_ns/ { split($2, a, ","); if (a[1] + 0 >= 50.0) exit 1 }' \
  BENCH_pr8.json || { echo "committed BENCH_pr8.json records >= 50ns disabled probe"; exit 1; }
awk -F'"overhead_pct":' '/overhead_pct/ { split($2, a, ","); if (a[1] + 0 >= 15.0) exit 1 }' \
  BENCH_pr8.json || { echo "committed BENCH_pr8.json records >= 15% armed overhead"; exit 1; }

echo "== observability smoke (--trace / --metrics)"
fbp="dune exec bin/fbp_place.exe --"
$fbp generate --cells 1500 --seed 7 -o "$tmp/smoke.book" >/dev/null
$fbp place "$tmp/smoke.book" --movebounds 2 \
  --trace "$tmp/trace.json" --metrics "$tmp/metrics.json" >/dev/null
$fbp trace-check "$tmp/trace.json" >/dev/null \
  || { echo "emitted trace failed validation"; exit 1; }
for span in place.level place.qp place.flow place.realization realization.wave; do
  grep -q "\"name\":\"$span\"" "$tmp/trace.json" \
    || { echo "trace missing span: $span"; exit 1; }
done
for metric in cg.iterations mcf.dijkstra_rounds transport.pivots \
              realization.shipped_cells realization.wave_width \
              gc.major_collections gc.heap_words; do
  grep -q "\"$metric\"" "$tmp/metrics.json" \
    || { echo "metrics missing: $metric"; exit 1; }
done
$fbp metrics-check "$tmp/metrics.json" >/dev/null \
  || { echo "emitted metrics failed validation"; exit 1; }

echo "== sanitizer smoke (--sanitize clean run + exit code 8 on corruption)"
FBP_SANITIZE=1 $fbp place "$tmp/smoke.book" --movebounds 2 >/dev/null \
  || { echo "sanitized placement failed"; exit 1; }
$fbp place "$tmp/smoke.book" --movebounds 2 --sanitize >/dev/null \
  || { echo "--sanitize placement failed"; exit 1; }

echo "== flight recorder loop (--record / report / diff-record)"
$fbp place "$tmp/smoke.book" --movebounds 2 --record "$tmp/run.json" >/dev/null
for key in schema version provenance levels legalization density totals; do
  grep -q "\"$key\"" "$tmp/run.json" \
    || { echo "run.json missing key: $key"; exit 1; }
done
$fbp report "$tmp/run.json" -o "$tmp/report.html" >/dev/null
for marker in convergence phase-times density-heatmap level-row; do
  grep -q "$marker" "$tmp/report.html" \
    || { echo "report.html missing marker: $marker"; exit 1; }
done
# self-diff must be clean ...
$fbp diff-record "$tmp/run.json" "$tmp/run.json" >/dev/null \
  || { echo "diff-record regressed against itself"; exit 1; }
# ... and a deliberately worse run (larger design = higher HPWL) must gate
$fbp generate --cells 1800 --seed 8 -o "$tmp/worse.book" >/dev/null
$fbp place "$tmp/worse.book" --movebounds 2 --record "$tmp/worse.json" >/dev/null
if $fbp diff-record "$tmp/run.json" "$tmp/worse.json" >/dev/null 2>&1; then
  echo "diff-record failed to flag a regressed run"; exit 1
fi

echo "== profile smoke (fbp_place profile + FBP_PROFILE record + trajectory)"
# the profile subcommand must emit a valid trace, a schema-tagged JSON
# summary, and never fail the run even when runtime events are unavailable
$fbp profile "$tmp/smoke.book" --movebounds 2 --domains 4 \
  --json "$tmp/profile.json" --trace "$tmp/ptrace.json" >/dev/null \
  || { echo "fbp_place profile failed"; exit 1; }
$fbp trace-check "$tmp/ptrace.json" >/dev/null \
  || { echo "profile trace failed validation"; exit 1; }
for key in schema available wall_us stw_count minor_us major_us domains \
           phases top_pauses; do
  grep -q "\"$key\"" "$tmp/profile.json" \
    || { echo "profile.json missing key: $key"; exit 1; }
done
grep -q '"schema":"fbp-profile"' "$tmp/profile.json" \
  || { echo "profile.json has wrong schema tag"; exit 1; }
# the degraded path (no runtime events) must still produce a summary
FBP_PROFILE_FORCE_UNAVAILABLE=1 $fbp profile "$tmp/smoke.book" --movebounds 2 \
  --json "$tmp/profile-na.json" >/dev/null \
  || { echo "profile with runtime events unavailable failed"; exit 1; }
grep -q '"available":false' "$tmp/profile-na.json" \
  || { echo "forced-unavailable profile claims availability"; exit 1; }
# FBP_PROFILE=1 folds the summary into the run record; the report renders
# the domain lane and GC pause sections from it
FBP_PROFILE=1 $fbp place "$tmp/smoke.book" --movebounds 2 \
  --record "$tmp/prun.json" >/dev/null
grep -q '"profile"' "$tmp/prun.json" \
  || { echo "FBP_PROFILE=1 record has no profile section"; exit 1; }
grep -q '"host"' "$tmp/prun.json" \
  || { echo "record provenance has no host section"; exit 1; }
$fbp report "$tmp/prun.json" -o "$tmp/preport.html" >/dev/null
for marker in domain-timeline gc-pauses; do
  grep -q "$marker" "$tmp/preport.html" \
    || { echo "profiled report missing marker: $marker"; exit 1; }
done
# a profiled record must self-diff clean under the GC gate too
$fbp diff-record "$tmp/prun.json" "$tmp/prun.json" --max-gc-regress 0.5 >/dev/null \
  || { echo "diff-record with GC gate regressed against itself"; exit 1; }
# bench trajectory folds the committed BENCH artifacts into one trend file
FBP_BENCH_JSONT="$tmp/BENCH_trajectory.json" dune exec bench/main.exe -- trajectory >/dev/null \
  || { echo "bench trajectory failed"; exit 1; }
grep -q '"schema":"fbp-bench-trajectory"' "$tmp/BENCH_trajectory.json" \
  || { echo "BENCH_trajectory.json has wrong schema tag"; exit 1; }
$fbp report "$tmp/prun.json" --trajectory "$tmp/BENCH_trajectory.json" \
  -o "$tmp/treport.html" >/dev/null
grep -q "perf-trajectory" "$tmp/treport.html" \
  || { echo "trajectory report missing marker: perf-trajectory"; exit 1; }

echo "== fuzz smoke (seed-pinned campaign, twice: zero failures + same digest)"
# FBP_FUZZ_SMOKE=1 clamps the campaign to 50 scenarios under a hard
# wall-clock cap; the matrix crosses each scenario with every fault cell.
# Two runs must be byte-identical (the digest line folds every outcome), and
# a failure exits 1: any escaped exception, invariant violation, or
# escaped corruption fails the push gate with a shrunk repro in the log.
FBP_FUZZ_SMOKE=1 $fbp fuzz --seed 42 --count 50 --matrix --time-cap 120 \
  > "$tmp/fuzz1.txt" || { echo "fuzz smoke found failures:"; cat "$tmp/fuzz1.txt"; exit 1; }
FBP_FUZZ_SMOKE=1 $fbp fuzz --seed 42 --count 50 --matrix --time-cap 120 \
  > "$tmp/fuzz2.txt" || { echo "fuzz smoke found failures on rerun"; exit 1; }
cmp -s "$tmp/fuzz1.txt" "$tmp/fuzz2.txt" \
  || { echo "fuzz campaign is not reproducible:"; diff "$tmp/fuzz1.txt" "$tmp/fuzz2.txt" || true; exit 1; }
grep -q "failures: none" "$tmp/fuzz1.txt" \
  || { echo "fuzz smoke reported failures"; exit 1; }
# a repro artifact written by the campaign must replay to the same outcome
$fbp fuzz --seed 42 --count 6 --matrix --out "$tmp/fuzz-repros" > /dev/null || true
repro="$(ls "$tmp"/fuzz-repros/repro-*.json 2>/dev/null | head -n 1 || true)"
if [ -n "$repro" ]; then
  replay_code=0
  $fbp fuzz --replay "$repro" > "$tmp/replay.txt" 2>&1 || replay_code=$?
  [ "$replay_code" -eq 8 ] \
    || { echo "control repro must replay to the sanitizer exit (8), got $replay_code"; exit 1; }
fi

echo "== example figures (regenerates out/fig*.svg)"
dune exec examples/figures.exe >/dev/null \
  || { echo "examples/figures.exe failed"; exit 1; }
for fig in fig1_movebounds fig1_regions fig2 fig3 fig4_step1_flow fig4_step2_realized; do
  [ -s "out/$fig.svg" ] || { echo "missing figure: out/$fig.svg"; exit 1; }
done

echo "OK"
