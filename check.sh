#!/bin/sh
# Repo health check: full build, test suite, and (when ocamlformat is
# available) the formatting gate.  Run before every push.
set -eu
cd "$(dirname "$0")"

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed)"
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== bench smoke (BENCH_pr2.json)"
FBP_BENCH_SMOKE=1 FBP_BENCH_JSON="$tmp/BENCH_pr2.json" dune exec bench/main.exe >/dev/null
for key in schema designs phase_times counters histograms hpwl total_time; do
  grep -q "\"$key\"" "$tmp/BENCH_pr2.json" \
    || { echo "BENCH_pr2.json missing key: $key"; exit 1; }
done

echo "== observability smoke (--trace / --metrics)"
fbp="dune exec bin/fbp_place.exe --"
$fbp generate --cells 1500 --seed 7 -o "$tmp/smoke.book" >/dev/null
$fbp place "$tmp/smoke.book" --movebounds 2 \
  --trace "$tmp/trace.json" --metrics "$tmp/metrics.json" >/dev/null
$fbp trace-check "$tmp/trace.json" >/dev/null \
  || { echo "emitted trace failed validation"; exit 1; }
for span in place.level place.qp place.flow place.realization realization.wave; do
  grep -q "\"name\":\"$span\"" "$tmp/trace.json" \
    || { echo "trace missing span: $span"; exit 1; }
done
for metric in cg.iterations mcf.dijkstra_rounds transport.pivots \
              realization.shipped_cells realization.wave_width; do
  grep -q "\"$metric\"" "$tmp/metrics.json" \
    || { echo "metrics missing: $metric"; exit 1; }
done

echo "OK"
