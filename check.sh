#!/bin/sh
# Repo health check: full build, test suite, and (when ocamlformat is
# available) the formatting gate.  Run before every push.
set -eu
cd "$(dirname "$0")"

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt"
  dune build @fmt
else
  echo "== skipping @fmt (ocamlformat not installed)"
fi

echo "OK"
