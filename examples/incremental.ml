(* Incremental placement: FBP works from *any* initial placement.

   Section IV motivates FBP partly by the failure of recursive partitioning
   on incremental flows ("Incremental placements are often impossible
   without restarting from scratch").  This example places a design, then
   perturbs it — an ECO adds a hotspot by moving 10% of the cells to one
   corner — and re-runs FBP from the perturbed placement.  The flow model
   computes exactly the movements needed to restore feasibility instead of
   starting over.

     dune exec examples/incremental.exe *)

open Fbp_geometry
open Fbp_netlist

let place_and_legalize inst =
  match Fbp_core.Placer.place inst with
  | Error e -> failwith (Fbp_resilience.Fbp_error.to_string e)
  | Ok report ->
    let pos = report.Fbp_core.Placer.placement in
    ignore
      (Fbp_legalize.Legalizer.run inst report.Fbp_core.Placer.regions pos
         ~piece_of_cell:report.Fbp_core.Placer.piece_of_cell
         ~grid:report.Fbp_core.Placer.final_grid);
    (pos, report)

let () =
  let design = Generator.quick ~seed:19 ~name:"incremental" 3000 in
  let inst = Fbp_movebound.Instance.unconstrained design in
  let nl = design.Design.netlist in
  let pos0, _ = place_and_legalize inst in
  Printf.printf "initial placement: HPWL %.4e\n" (Hpwl.total nl pos0);

  (* the ECO: 10%% of cells dumped near the lower-left corner *)
  let rng = Fbp_util.Rng.create 23 in
  let chip = design.Design.chip in
  let perturbed = Placement.copy pos0 in
  for c = 0 to Netlist.n_cells nl - 1 do
    if (not nl.Netlist.fixed.(c)) && Fbp_util.Rng.float rng < 0.1 then
      Placement.set perturbed c
        (Point.make
           (chip.Rect.x0 +. Fbp_util.Rng.range rng 0.0 (0.15 *. Rect.width chip))
           (chip.Rect.y0 +. Fbp_util.Rng.range rng 0.0 (0.15 *. Rect.height chip)))
  done;
  Printf.printf "after ECO perturbation: HPWL %.4e (hotspot in the corner)\n"
    (Hpwl.total nl perturbed);

  (* re-place incrementally: the perturbed placement is the new initial *)
  let design' = { design with Design.initial = perturbed } in
  let inst' = Fbp_movebound.Instance.unconstrained design' in
  let t0 = Fbp_util.Timer.now () in
  let pos1, report = place_and_legalize inst' in
  Printf.printf
    "incremental re-place: HPWL %.4e in %.2fs (%d levels), avg move %.1f rows\n"
    (Hpwl.total nl pos1)
    (Fbp_util.Timer.now () -. t0)
    (List.length report.Fbp_core.Placer.levels)
    (Placement.avg_displacement perturbed pos1);
  let audit = Fbp_legalize.Check.audit design pos1 in
  Printf.printf "legal=%b\n" audit.Fbp_legalize.Check.legal
