(* Quickstart: generate a synthetic design, place it with BonnPlace FBP,
   legalize, and report quality — the smallest complete use of the API.

     dune exec examples/quickstart.exe *)

open Fbp_netlist

let () =
  (* 1. a synthetic 3000-cell design (deterministic in the seed) *)
  let design = Generator.quick ~seed:42 ~name:"quickstart" 3000 in
  Printf.printf "design %s: %d cells, %d nets, whitespace ratio %.2f\n"
    design.Design.name
    (Netlist.n_cells design.Design.netlist)
    (Netlist.n_nets design.Design.netlist)
    (Design.whitespace_ratio design);

  (* 2. wrap it as a movebound instance (none here) and place *)
  let inst = Fbp_movebound.Instance.unconstrained design in
  let report =
    match Fbp_core.Placer.place inst with
    | Ok r -> r
    | Error e -> failwith (Fbp_resilience.Fbp_error.to_string e)
  in
  Printf.printf "global placement: HPWL %.4e in %.2fs over %d levels\n"
    report.Fbp_core.Placer.hpwl report.Fbp_core.Placer.total_time
    (List.length report.Fbp_core.Placer.levels);

  (* 3. legalize (rows, no overlaps) and audit *)
  let pos = report.Fbp_core.Placer.placement in
  let lst =
    Fbp_legalize.Legalizer.run inst report.Fbp_core.Placer.regions pos
      ~piece_of_cell:report.Fbp_core.Placer.piece_of_cell
      ~grid:report.Fbp_core.Placer.final_grid
  in
  let audit = Fbp_legalize.Check.audit design pos in
  Printf.printf
    "legalized %d cells (avg displacement %.2f rows) -> legal=%b, HPWL %.4e\n"
    lst.Fbp_legalize.Legalizer.n_legalized lst.Fbp_legalize.Legalizer.avg_displacement
    audit.Fbp_legalize.Check.legal
    (Hpwl.total design.Design.netlist pos);

  (* 4. write the placement plot *)
  (try Unix.mkdir "out" 0o755 with _ -> ());
  Fbp_viz.Svg.write_file "out/quickstart.svg" (Fbp_viz.Draw.placement inst pos);
  print_endline "wrote out/quickstart.svg"
