(* Voltage islands: exclusive movebounds (Section I cites Hu et al. [10]).

   Two voltage domains get exclusive islands: their cells must live inside,
   everyone else must stay out.  The example checks feasibility with the
   Theorem-2 MaxFlow test first, places with FBP, and verifies zero
   movebound violations in the legal result.

     dune exec examples/voltage_islands.exe *)

open Fbp_geometry
open Fbp_netlist

let () =
  let design = Generator.quick ~seed:7 ~name:"voltage-islands" 4000 in
  let chip = design.Design.chip in
  let w = Rect.width chip and h = Rect.height chip in
  let island name id x0 y0 x1 y1 =
    Fbp_movebound.Movebound.make ~id ~name ~kind:Fbp_movebound.Movebound.Exclusive
      [ Rect.make ~x0:(x0 *. w) ~y0:(y0 *. h) ~x1:(x1 *. w) ~y1:(y1 *. h) ]
  in
  let movebounds =
    [| island "vdd-low" 0 0.05 0.55 0.40 0.95; island "vdd-high" 1 0.60 0.05 0.95 0.40 |]
  in
  (* assign the domains' cells: 12% to low, 10% to high, by golden position
     when possible so the netlist stays local *)
  let nl = design.Design.netlist in
  let rng = Fbp_util.Rng.create 11 in
  for c = 0 to Netlist.n_cells nl - 1 do
    let r = Fbp_util.Rng.float rng in
    if r < 0.12 then nl.Netlist.movebound.(c) <- 0
    else if r < 0.22 then nl.Netlist.movebound.(c) <- 1
  done;
  let inst = { Fbp_movebound.Instance.design; movebounds } in

  (* feasibility first (Theorems 1-2): the clustered MaxFlow check *)
  (match Fbp_movebound.Feasibility.check_instance inst with
   | Error e -> failwith e
   | Ok (Fbp_movebound.Feasibility.Feasible, regions) ->
     Printf.printf "feasible: %d maximal regions\n"
       (Fbp_movebound.Regions.n_regions regions)
   | Ok (Fbp_movebound.Feasibility.Infeasible { classes; demand; capacity }, _) ->
     Printf.printf "INFEASIBLE: classes %s demand %.0f > capacity %.0f\n"
       (String.concat "," (List.map string_of_int classes))
       demand capacity;
     exit 1);

  match Fbp_core.Placer.place inst with
  | Error e -> failwith (Fbp_resilience.Fbp_error.to_string e)
  | Ok report ->
    let pos = report.Fbp_core.Placer.placement in
    let inst_n =
      match Fbp_movebound.Instance.normalize inst with Ok i -> i | Error e -> failwith e
    in
    ignore
      (Fbp_legalize.Legalizer.run inst_n report.Fbp_core.Placer.regions pos
         ~piece_of_cell:report.Fbp_core.Placer.piece_of_cell
         ~grid:report.Fbp_core.Placer.final_grid);
    let violations = Fbp_movebound.Legality.check inst_n pos in
    let audit = Fbp_legalize.Check.audit design pos in
    Printf.printf
      "placed: HPWL %.4e, legal=%b, movebound violations=%d (must be 0)\n"
      (Hpwl.total nl pos) audit.Fbp_legalize.Check.legal
      violations.Fbp_movebound.Legality.n_violations;
    (try Unix.mkdir "out" 0o755 with _ -> ());
    Fbp_viz.Svg.write_file "out/voltage_islands.svg" (Fbp_viz.Draw.placement inst_n pos);
    print_endline "wrote out/voltage_islands.svg"
