(* Flattened SoC hierarchy: overlapping, nested inclusive movebounds.

   The paper motivates movebounds as "a compromise between flat and
   hierarchical design" (Section I, [3]): flatten the hierarchy but keep
   each unit's cells inside its floorplan slot, letting the slots overlap
   at the seams and nest for sub-units — the (O)(F) designs of Table III.

     dune exec examples/soc_hierarchy.exe *)

open Fbp_netlist

let () =
  let spec = Option.get (Fbp_workloads.Designs.find_spec "trips") in
  let design = Fbp_workloads.Designs.instantiate ~scale:1.0 spec in
  let scenario =
    List.find
      (fun (s : Fbp_workloads.Mb_gen.scenario) -> s.Fbp_workloads.Mb_gen.design = "trips")
      Fbp_workloads.Mb_gen.table3_scenarios
  in
  let inst = Fbp_workloads.Mb_gen.attach scenario design in
  let stats = Fbp_workloads.Mb_gen.stats_of scenario inst in
  Printf.printf
    "SoC instance: %d cells, %d overlapping movebounds, %.1f%% of cells bound, max density %.0f%%\n"
    stats.Fbp_workloads.Mb_gen.n_cells stats.Fbp_workloads.Mb_gen.n_movebounds
    (100.0 *. stats.Fbp_workloads.Mb_gen.pct_bound)
    (100.0 *. stats.Fbp_workloads.Mb_gen.max_mb_density);

  (* place with FBP and with the RQL baseline: the flow-based partitioning
     honors every bound; the soft-constraint baseline typically does not *)
  let fbp = Fbp_workloads.Runner.run_fbp inst in
  let rql = Fbp_workloads.Runner.run_rql inst in
  (match (fbp, rql) with
   | Ok f, Ok r ->
     Printf.printf "FBP: HPWL %.4e, %3d violations, %.1fs\n" f.Fbp_workloads.Runner.hpwl
       f.Fbp_workloads.Runner.violations f.Fbp_workloads.Runner.total_time;
     Printf.printf "RQL: HPWL %.4e, %3d violations, %.1fs\n" r.Fbp_workloads.Runner.hpwl
       r.Fbp_workloads.Runner.violations r.Fbp_workloads.Runner.total_time;
     (try Unix.mkdir "out" 0o755 with _ -> ());
     let inst_n =
       match Fbp_movebound.Instance.normalize inst with Ok i -> i | Error e -> failwith e
     in
     Fbp_viz.Svg.write_file "out/soc_fbp.svg"
       (Fbp_viz.Draw.placement inst_n f.Fbp_workloads.Runner.placement);
     Fbp_viz.Svg.write_file "out/soc_rql.svg"
       (Fbp_viz.Draw.placement inst_n r.Fbp_workloads.Runner.placement);
     print_endline "wrote out/soc_fbp.svg and out/soc_rql.svg"
   | Error e, _ | _, Error e -> failwith (Fbp_resilience.Fbp_error.to_string e));
  ignore design.Design.name
