(* HTML run reports.

   Everything is inlined — CSS, SVG charts — so the file can be mailed or
   attached to CI artifacts as-is.  Chart styling follows the repo's
   data-viz conventions: categorical hues in fixed order (blue, orange,
   aqua, yellow) for the phase breakdown, a single blue for the one-series
   convergence line, a light-to-dark blue ramp for the density heatmap with
   red reserved as an "overfilled" status (always doubled by the tooltip
   text and the legend line, never color alone), recessive grid lines, text
   in ink colors rather than series colors, and native [<title>] tooltips
   on every mark.  Light and dark surfaces both ship; the dark palette is
   its own stepping, not an automatic inversion. *)

module R = Fbp_obs.Recorder
module J = Fbp_obs.Obs.Json

let escape_html s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let fnum v =
  if Float.abs v >= 1e5 || (Float.abs v < 1e-3 && not (Float.equal v 0.0)) then
    Printf.sprintf "%.4e" v
  else Printf.sprintf "%.4g" v

let fsec v = Printf.sprintf "%.3fs" v
let fpct v = Printf.sprintf "%.3f%%" (100.0 *. v)

(* sequential blue ramp, steps 100..700 (light mode) *)
let seq_ramp =
  [| "#cde2fb"; "#b7d3f6"; "#9ec5f4"; "#86b6ef"; "#6da7ec"; "#5598e7";
     "#3987e5"; "#2a78d6"; "#256abf"; "#1c5cab"; "#184f95"; "#104281";
     "#0d366b" |]

let overflow_red = "#e34948"
let neutral_gray = "#f0efec"

(* ------------------------------------------------------------- charts *)

(* HPWL trajectory: one point per level plus the post-legalization point.
   Single series -> no legend box (the caption names it); direct label on
   the last point; <title> tooltips on every marker. *)
let convergence_svg (levels : R.level list) (leg : R.legalization option) =
  let pts =
    List.map (fun (l : R.level) -> (Printf.sprintf "L%d" l.R.level, l.R.hpwl)) levels
    @ (match leg with Some l -> [ ("legal", l.R.leg_hpwl) ] | None -> [])
  in
  match pts with
  | [] | [ _ ] -> "<p class=\"muted\">not enough snapshots for a curve</p>"
  | _ ->
    let n = List.length pts in
    let w = 640.0 and h = 260.0 in
    let ml = 86.0 and mr = 70.0 and mt = 16.0 and mb = 34.0 in
    let iw = w -. ml -. mr and ih = h -. mt -. mb in
    let ys = List.map snd pts in
    let ymin = List.fold_left Float.min Float.infinity ys in
    let ymax = List.fold_left Float.max Float.neg_infinity ys in
    let pad = Float.max (0.05 *. (ymax -. ymin)) (1e-9 +. (0.02 *. Float.abs ymax)) in
    let ymin = ymin -. pad and ymax = ymax +. pad in
    let x i = ml +. (iw *. float_of_int i /. float_of_int (n - 1)) in
    let y v = mt +. (ih *. (1.0 -. ((v -. ymin) /. (ymax -. ymin)))) in
    let b = Buffer.create 4096 in
    Printf.bprintf b
      "<svg id=\"convergence\" viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" \
       height=\"%.0f\" role=\"img\" aria-label=\"HPWL per placement level\">"
      w h w h;
    (* recessive horizontal grid + y tick labels *)
    for g = 0 to 3 do
      let vy = ymin +. ((ymax -. ymin) *. float_of_int g /. 3.0) in
      Printf.bprintf b
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" class=\"grid\"/>"
        ml (y vy) (w -. mr) (y vy);
      Printf.bprintf b
        "<text x=\"%.1f\" y=\"%.1f\" class=\"tick\" text-anchor=\"end\">%s</text>"
        (ml -. 6.0) (y vy +. 3.5) (fnum vy)
    done;
    (* x tick labels *)
    List.iteri
      (fun i (name, _) ->
        Printf.bprintf b
          "<text x=\"%.1f\" y=\"%.1f\" class=\"tick\" text-anchor=\"middle\">%s</text>"
          (x i) (h -. mb +. 16.0) (escape_html name))
      pts;
    (* the line *)
    Buffer.add_string b "<polyline class=\"series-line\" points=\"";
    List.iteri (fun i (_, v) -> Printf.bprintf b "%.1f,%.1f " (x i) (y v)) pts;
    Buffer.add_string b "\"/>";
    (* markers, each with a native tooltip *)
    List.iteri
      (fun i (name, v) ->
        Printf.bprintf b
          "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"4\" class=\"series-dot\">\
           <title>%s: HPWL %s</title></circle>"
          (x i) (y v) (escape_html name) (fnum v))
      pts;
    (* direct label on the final point *)
    (match List.rev pts with
     | (_, v) :: _ ->
       Printf.bprintf b
         "<text x=\"%.1f\" y=\"%.1f\" class=\"label\">%s</text>"
         (x (n - 1) +. 8.0) (y v +. 4.0) (fnum v)
     | [] -> ());
    Buffer.add_string b "</svg>";
    Buffer.contents b

(* Per-phase wall time: one stacked horizontal bar per level plus one for
   legalization, 2px surface gaps between segments, value label at the end
   of each row in ink (never series color). *)
let phase_svg (levels : R.level list) (leg : R.legalization option) =
  let rows =
    List.map
      (fun (l : R.level) ->
        ( Printf.sprintf "L%d" l.R.level,
          [ ("qp", l.R.qp_time, "var(--series-1)");
            ("flow", l.R.flow_time, "var(--series-2)");
            ("realization", l.R.realization_time, "var(--series-3)") ] ))
      levels
    @ (match leg with
       | Some l -> [ ("legal", [ ("legalize", l.R.leg_time, "var(--series-4)") ]) ]
       | None -> [])
  in
  if rows = [] then "<p class=\"muted\">no phase times recorded</p>"
  else begin
    let total r = List.fold_left (fun a (_, t, _) -> a +. t) 0.0 (snd r) in
    let tmax = List.fold_left (fun a r -> Float.max a (total r)) 1e-9 rows in
    let roww = 560.0 and rowh = 20.0 and gap = 8.0 and ml = 56.0 in
    let h = (float_of_int (List.length rows) *. (rowh +. gap)) +. 28.0 in
    let w = ml +. roww +. 90.0 in
    let b = Buffer.create 4096 in
    Printf.bprintf b
      "<svg id=\"phase-times\" viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" \
       height=\"%.0f\" role=\"img\" aria-label=\"wall time per phase and level\">"
      w h w h;
    List.iteri
      (fun i (name, segs) ->
        let ry = 4.0 +. (float_of_int i *. (rowh +. gap)) in
        Printf.bprintf b
          "<text x=\"%.1f\" y=\"%.1f\" class=\"tick\" text-anchor=\"end\">%s</text>"
          (ml -. 8.0) (ry +. (rowh /. 2.0) +. 3.5) (escape_html name);
        let xr = ref ml in
        List.iter
          (fun (phase, t, color) ->
            let sw = Float.max 0.0 (roww *. t /. tmax -. 2.0) in
            if sw > 0.2 then begin
              Printf.bprintf b
                "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
                 rx=\"3\" fill=\"%s\"><title>%s %s: %s</title></rect>"
                !xr ry sw rowh color (escape_html name) phase (fsec t);
              xr := !xr +. sw +. 2.0
            end)
          segs;
        Printf.bprintf b
          "<text x=\"%.1f\" y=\"%.1f\" class=\"label\">%s</text>"
          (!xr +. 6.0) (ry +. (rowh /. 2.0) +. 3.5)
          (fsec (List.fold_left (fun a (_, t, _) -> a +. t) 0.0 segs)))
      rows;
    Buffer.add_string b "</svg>";
    (* legend: categorical identity is never color-alone *)
    Buffer.add_string b
      "<div class=\"legend\">\
       <span><i style=\"background:var(--series-1)\"></i>QP</span>\
       <span><i style=\"background:var(--series-2)\"></i>flow (build + MCF)</span>\
       <span><i style=\"background:var(--series-3)\"></i>realization</span>\
       <span><i style=\"background:var(--series-4)\"></i>legalization</span>\
       </div>";
    Buffer.contents b
  end

(* Final-placement bin utilization.  Sequential single-hue ramp for
   magnitude; overfilled bins switch to the reserved status red and say so
   in their tooltip; fully blocked bins recede to neutral. *)
let heatmap_svg (d : R.density_map) =
  let cell = 14.0 and gap = 2.0 in
  let w = (float_of_int d.R.dnx *. (cell +. gap)) +. gap in
  let h = (float_of_int d.R.dny *. (cell +. gap)) +. gap in
  let b = Buffer.create 8192 in
  Printf.bprintf b
    "<svg id=\"density-heatmap\" viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" \
     height=\"%.0f\" role=\"img\" aria-label=\"density heatmap\">" w h w h;
  for by = 0 to d.R.dny - 1 do
    for bx = 0 to d.R.dnx - 1 do
      let i = (by * d.R.dnx) + bx in
      let u = d.R.usage.(i) and c = d.R.capacity.(i) in
      let util = if c > 0.0 then u /. c else 0.0 in
      (* a legal row-based placement routinely exceeds tiny fine-grain bins
         by a sliver (boundary-straddling cells); only flag real hotspots *)
      let fill, status =
        if c <= 0.0 then (neutral_gray, "blocked")
        else if util > 1.05 then (overflow_red, "OVERFILLED")
        else
          let steps = Array.length seq_ramp in
          let k =
            min (steps - 1) (int_of_float (util *. float_of_int steps))
          in
          (seq_ramp.(k), "ok")
      in
      (* y flipped: row 0 is the chip's bottom row, drawn at the bottom *)
      let x = gap +. (float_of_int bx *. (cell +. gap)) in
      let y = gap +. (float_of_int (d.R.dny - 1 - by) *. (cell +. gap)) in
      Printf.bprintf b
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" rx=\"2\" \
         fill=\"%s\"><title>bin (%d,%d): %.1f%% of capacity [%s]</title></rect>"
        x y cell cell fill bx by (100.0 *. util) status
    done
  done;
  Buffer.add_string b "</svg>";
  Buffer.add_string b
    "<p class=\"muted\">utilization, light &#8594; dark = 0&#8594;100% of bin \
     capacity; <span class=\"overflow-chip\">red</span> = overfilled (&gt;105%); \
     gray = blocked.</p>";
  Buffer.contents b

(* Per-domain utilization lane from the profiler summary: one stacked
   horizontal bar per domain, busy / spin / park in categorical hues and
   GC/STW in the reserved status red (doubled by tooltip text). *)
let domain_svg (s : Fbp_obs.Profiler.summary) =
  let module P = Fbp_obs.Profiler in
  if s.P.s_domains = [] then
    "<p class=\"muted\">no domain samples captured</p>"
  else begin
    let roww = 560.0 and rowh = 20.0 and gap = 8.0 and ml = 64.0 in
    let n = List.length s.P.s_domains in
    let h = (float_of_int n *. (rowh +. gap)) +. 28.0 in
    let w = ml +. roww +. 110.0 in
    let b = Buffer.create 4096 in
    Printf.bprintf b
      "<svg id=\"domain-timeline\" viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" \
       height=\"%.0f\" role=\"img\" aria-label=\"per-domain utilization\">"
      w h w h;
    let role (d : P.domain_summary) =
      if d.P.d_wid = -1 then "main"
      else if d.P.d_wid = -2 then Printf.sprintf "d%d" d.P.d_tid
      else Printf.sprintf "w%d" d.P.d_wid
    in
    List.iteri
      (fun i (d : P.domain_summary) ->
        let ry = 4.0 +. (float_of_int i *. (rowh +. gap)) in
        Printf.bprintf b
          "<text x=\"%.1f\" y=\"%.1f\" class=\"tick\" text-anchor=\"end\">%s</text>"
          (ml -. 8.0) (ry +. (rowh /. 2.0) +. 3.5) (escape_html (role d));
        let wall = Float.max d.P.d_wall_us 1e-9 in
        let xr = ref ml in
        List.iter
          (fun (label, us, color) ->
            let sw = Float.max 0.0 ((roww *. us /. wall) -. 2.0) in
            if sw > 0.2 then begin
              Printf.bprintf b
                "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
                 rx=\"3\" fill=\"%s\"><title>%s %s: %.1fms (%.1f%%)</title></rect>"
                !xr ry sw rowh color (escape_html (role d)) label (us /. 1e3)
                (100.0 *. us /. wall);
              xr := !xr +. sw +. 2.0
            end)
          [ ("busy", d.P.d_busy_us, "var(--series-1)");
            ("spin", d.P.d_spin_us, "var(--series-4)");
            ("park", d.P.d_park_us, "var(--surface-2)");
            ("gc/stw", d.P.d_stw_us, overflow_red) ];
        Printf.bprintf b
          "<text x=\"%.1f\" y=\"%.1f\" class=\"label\">%.0f%% busy</text>"
          (ml +. roww +. 8.0)
          (ry +. (rowh /. 2.0) +. 3.5)
          (100.0 *. d.P.d_busy_us /. wall))
      s.P.s_domains;
    Buffer.add_string b "</svg>";
    Buffer.add_string b
      (Printf.sprintf
         "<div class=\"legend\">\
          <span><i style=\"background:var(--series-1)\"></i>busy</span>\
          <span><i style=\"background:var(--series-4)\"></i>spin</span>\
          <span><i style=\"background:var(--surface-2)\"></i>parked</span>\
          <span><i style=\"background:%s\"></i>GC / stop-the-world</span>\
          </div>"
         overflow_red);
    Buffer.contents b
  end

(* GC pause breakdown: phase attribution plus the longest merged pauses. *)
let gc_pauses_html (s : Fbp_obs.Profiler.summary) =
  let module P = Fbp_obs.Profiler in
  let b = Buffer.create 2048 in
  Buffer.add_string b "<div id=\"gc-pauses\">";
  Printf.bprintf b
    "<p class=\"muted\">%d stop-the-world rendezvous &#183; minor %.1fms \
     &#183; major %.1fms &#183; %d runtime events%s%s</p>"
    s.P.s_stw_count (s.P.s_minor_us /. 1e3) (s.P.s_major_us /. 1e3)
    s.P.s_events
    (if s.P.s_lost > 0 then Printf.sprintf " &#183; %d LOST" s.P.s_lost else "")
    (if s.P.s_available then ""
     else " &#183; runtime events unavailable (pool occupancy only)");
  if s.P.s_phases <> [] then begin
    Buffer.add_string b
      "<table class=\"metrics\"><thead><tr><th>phase</th><th>wall</th>\
       <th>GC pause</th><th>pauses</th><th>GC %</th></tr></thead><tbody>";
    List.iter
      (fun (ph : P.phase_summary) ->
        Printf.bprintf b
          "<tr><td>%s</td><td>%.1fms</td><td>%.1fms</td><td>%d</td>\
           <td>%.2f%%</td></tr>"
          (escape_html ph.P.ph_name)
          (ph.P.ph_wall_us /. 1e3)
          (ph.P.ph_gc_us /. 1e3)
          ph.P.ph_gc_n
          (if ph.P.ph_wall_us > 0.0 then
             100.0 *. ph.P.ph_gc_us /. ph.P.ph_wall_us
           else 0.0))
      s.P.s_phases;
    Buffer.add_string b "</tbody></table>"
  end;
  if s.P.s_top_pauses <> [] then begin
    Buffer.add_string b "<h3>Longest pauses</h3><ul class=\"muted\">";
    List.iter
      (fun (p : P.pause) ->
        Printf.bprintf b "<li>domain %d: %s, %.2fms at t=%.1fms</li>" p.P.p_tid
          (escape_html p.P.p_kind) (p.P.p_dur_us /. 1e3) (p.P.p_ts_us /. 1e3))
      s.P.s_top_pauses;
    Buffer.add_string b "</ul>"
  end;
  Buffer.add_string b "</div>";
  Buffer.contents b

(* Per-PR performance trajectory (bench trajectory output): a sparkline of
   global placement time across committed BENCH artifacts plus the table. *)
let trajectory_html (j : J.t) =
  let entries =
    match J.member "entries" j with Some (J.Arr es) -> es | _ -> []
  in
  let num k o = match J.member k o with Some (J.Num f) -> Some f | _ -> None in
  let rows =
    List.filter_map
      (fun e ->
        match num "pr" e with
        | Some pr ->
          Some
            (int_of_float pr, num "qp_s" e, num "realization_s" e,
             num "global_s" e)
        | None -> None)
      entries
  in
  if rows = [] then "<p class=\"muted\">no trajectory entries</p>"
  else begin
    let b = Buffer.create 2048 in
    Buffer.add_string b "<div id=\"perf-trajectory\">";
    (* sparkline over the PRs that have a global time *)
    let gpts =
      List.filter_map
        (fun (pr, _, _, g) -> match g with Some g -> Some (pr, g) | None -> None)
        rows
    in
    if List.length gpts >= 2 then begin
      let n = List.length gpts in
      let w = 420.0 and h = 80.0 and ml = 10.0 and mt = 8.0 in
      let iw = w -. (2.0 *. ml) and ih = h -. (2.0 *. mt) -. 14.0 in
      let gmax =
        List.fold_left (fun a (_, g) -> Float.max a g) 1e-9 gpts
      in
      let x i = ml +. (iw *. float_of_int i /. float_of_int (n - 1)) in
      let y g = mt +. (ih *. (1.0 -. (g /. gmax))) in
      Printf.bprintf b
        "<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" height=\"%.0f\" \
         role=\"img\" aria-label=\"global placement time per PR\">"
        w h w h;
      Buffer.add_string b "<polyline class=\"series-line\" points=\"";
      List.iteri (fun i (_, g) -> Printf.bprintf b "%.1f,%.1f " (x i) (y g)) gpts;
      Buffer.add_string b "\"/>";
      List.iteri
        (fun i (pr, g) ->
          Printf.bprintf b
            "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" class=\"series-dot\">\
             <title>PR %d: global %.3fs</title></circle>"
            (x i) (y g) pr g;
          Printf.bprintf b
            "<text x=\"%.1f\" y=\"%.1f\" class=\"tick\" \
             text-anchor=\"middle\">pr%d</text>"
            (x i) (h -. 4.0) pr)
        gpts;
      Buffer.add_string b "</svg>"
    end;
    Buffer.add_string b
      "<table class=\"metrics\"><thead><tr><th>PR</th><th>qp</th>\
       <th>realization</th><th>global</th></tr></thead><tbody>";
    let cell = function Some v -> fsec v | None -> "&#8212;" in
    List.iter
      (fun (pr, q, r, g) ->
        Printf.bprintf b
          "<tr><td>pr%d</td><td>%s</td><td>%s</td><td>%s</td></tr>" pr (cell q)
          (cell r) (cell g))
      rows;
    Buffer.add_string b "</tbody></table>";
    Buffer.add_string b
      "<p class=\"muted\">times are the committed BENCH artifacts' 1-domain \
       smoke numbers; machines differ across PRs, so read trends, not \
       absolutes.</p>";
    Buffer.add_string b "</div>";
    Buffer.contents b
  end

(* -------------------------------------------------------------- tables *)

let levels_table (levels : R.level list) =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "<table><thead><tr><th>level</th><th>grid</th><th>|W|</th><th>|R|</th>\
     <th>|V|</th><th>|E|</th><th>HPWL</th><th>overflow</th><th>viol</th>\
     <th>CG it</th><th>residual</th><th>MCF cost</th><th>rounds</th>\
     <th>waves</th><th>shipped</th><th>QP</th><th>flow</th><th>realize</th>\
     <th>GC maj</th></tr></thead><tbody>";
  List.iter
    (fun (l : R.level) ->
      Printf.bprintf b
        "<tr class=\"level-row\"><td>%d</td><td>%dx%d</td><td>%d</td>\
         <td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td><td>%d</td>\
         <td>%d</td><td>%.2e</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td>\
         <td>%s</td><td>%s</td><td>%s</td><td>%d</td></tr>"
        l.R.level l.R.nx l.R.ny l.R.n_windows l.R.n_pieces l.R.flow_nodes
        l.R.flow_edges (fnum l.R.hpwl) (fpct l.R.density_overflow)
        l.R.mb_violations l.R.cg_iterations l.R.cg_residual (fnum l.R.mcf_cost)
        l.R.mcf_rounds l.R.waves l.R.shipped_cells (fsec l.R.qp_time)
        (fsec l.R.flow_time) (fsec l.R.realization_time)
        l.R.gc.R.major_collections)
    levels;
  Buffer.add_string b "</tbody></table>";
  Buffer.contents b

let metrics_tables (m : J.t) =
  let b = Buffer.create 4096 in
  (match J.member "counters" m with
   | Some (J.Obj cs) when cs <> [] ->
     Buffer.add_string b
       "<h3>Counters</h3><table class=\"metrics\"><thead><tr><th>counter</th>\
        <th>value</th></tr></thead><tbody>";
     List.iter
       (fun (k, v) ->
         match v with
         | J.Num f ->
           Printf.bprintf b "<tr><td>%s</td><td>%.0f</td></tr>" (escape_html k) f
         | _ -> ())
       cs;
     Buffer.add_string b "</tbody></table>"
   | _ -> ());
  (match J.member "histograms" m with
   | Some (J.Obj hs) when hs <> [] ->
     Buffer.add_string b
       "<h3>Histograms</h3><table class=\"metrics\"><thead><tr>\
        <th>histogram</th><th>count</th><th>mean</th><th>p50</th><th>p90</th>\
        <th>p99</th><th>max</th></tr></thead><tbody>";
     List.iter
       (fun (k, summary) ->
         let num field =
           match J.member field summary with
           | Some (J.Num f) -> fnum f
           | _ -> "&#8212;"
         in
         Printf.bprintf b
           "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td>\
            <td>%s</td><td>%s</td></tr>"
           (escape_html k) (num "count") (num "mean") (num "p50") (num "p90")
           (num "p99") (num "max"))
       hs;
     Buffer.add_string b "</tbody></table>"
   | _ -> ());
  Buffer.contents b

(* ---------------------------------------------------------------- page *)

let stat_tile label value = Printf.sprintf
    "<div class=\"tile\"><div class=\"tile-value\">%s</div>\
     <div class=\"tile-label\">%s</div></div>" value label

let css =
  {css|
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #73726e;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --grid-line: #e4e3df;
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.45 system-ui, sans-serif;
  max-width: 980px; margin: 0 auto; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --surface-2: #262625;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #908f89;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --grid-line: #383835;
  }
}
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
h3 { font-size: 14px; margin: 18px 0 6px; }
.muted { color: var(--text-muted); font-size: 12px; }
.provenance { color: var(--text-secondary); margin-bottom: 18px; }
.provenance code { background: var(--surface-2); padding: 1px 5px; border-radius: 4px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.tile { background: var(--surface-2); border-radius: 8px; padding: 10px 16px; min-width: 120px; }
.tile-value { font-size: 20px; font-weight: 600; }
.tile-label { font-size: 12px; color: var(--text-secondary); }
svg { display: block; margin: 8px 0; max-width: 100%; }
svg text { font: 11px system-ui, sans-serif; }
.grid { stroke: var(--grid-line); stroke-width: 1; }
.tick { fill: var(--text-secondary); }
.label { fill: var(--text-primary); font-weight: 600; }
.series-line { fill: none; stroke: var(--series-1); stroke-width: 2; }
.series-dot { fill: var(--series-1); stroke: var(--surface-1); stroke-width: 2; }
.legend { display: flex; gap: 16px; font-size: 12px; color: var(--text-secondary); margin: 4px 0 12px; }
.legend i { display: inline-block; width: 10px; height: 10px; border-radius: 2px; margin-right: 5px; }
.overflow-chip { color: #b51f1f; font-weight: 600; }
table { border-collapse: collapse; font-size: 12px; width: 100%; }
th, td { text-align: right; padding: 4px 8px; border-bottom: 1px solid var(--grid-line); }
th:first-child, td:first-child { text-align: left; }
thead th { color: var(--text-secondary); font-weight: 600; }
table.metrics { max-width: 640px; }
|css}

let render ?trajectory (t : R.t) =
  let b = Buffer.create 16384 in
  let p = t.R.provenance in
  Buffer.add_string b
    "<!DOCTYPE html><html><head><meta charset=\"utf-8\">\
     <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">";
  Printf.bprintf b "<title>fbp run report — %s</title>" (escape_html p.R.design);
  Printf.bprintf b "<style>%s</style></head><body class=\"viz-root\">" css;
  Printf.bprintf b "<h1>Placement run report</h1>";
  Printf.bprintf b
    "<div class=\"provenance\"><code>%s</code> &#183; %d cells &#183; %d nets \
     &#183; %d movebounds &#183; tool %s%s &#183; run-record v%d%s</div>"
    (escape_html p.R.design) p.R.cells p.R.nets p.R.movebounds
    (escape_html p.R.tool)
    (match p.R.seed with Some s -> Printf.sprintf " &#183; seed %d" s | None -> "")
    t.R.version
    ((if p.R.config = [] then ""
      else
        " &#183; "
        ^ String.concat ", "
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "%s=%s" (escape_html k) (escape_html v))
               p.R.config))
     ^
     match p.R.host with
     | None -> ""
     | Some h ->
       Printf.sprintf
         " &#183; host: %d hw domains%s, %d effective%s" h.R.hardware_domains
         (if h.R.hw_clamp then " (clamped)" else "")
         h.R.eff_domains
         (match h.R.peak_rss_kb with
          | Some kb -> Printf.sprintf ", peak RSS %d MB" (kb / 1024)
          | None -> ""));
  (match t.R.totals with
   | Some tt ->
     Buffer.add_string b "<div class=\"tiles\">";
     Buffer.add_string b (stat_tile "final HPWL" (fnum tt.R.hpwl));
     Buffer.add_string b (stat_tile "total time" (fsec tt.R.total_time));
     Buffer.add_string b
       (stat_tile "legality"
          (if tt.R.legal then "&#10003; legal" else "&#10007; ILLEGAL"));
     Buffer.add_string b
       (stat_tile "movebound violations" (string_of_int tt.R.violations));
     Buffer.add_string b
       (stat_tile "levels" (string_of_int (List.length t.R.levels)));
     Buffer.add_string b "</div>"
   | None -> ());
  Buffer.add_string b "<h2>HPWL convergence</h2>";
  Buffer.add_string b (convergence_svg t.R.levels t.R.legalization);
  Buffer.add_string b "<h2>Wall time by phase</h2>";
  Buffer.add_string b (phase_svg t.R.levels t.R.legalization);
  (match t.R.density with
   | Some d ->
     Buffer.add_string b "<h2>Final density</h2>";
     Buffer.add_string b (heatmap_svg d)
   | None -> ());
  (match t.R.profile with
   | Some s ->
     Buffer.add_string b "<h2>Domain utilization</h2>";
     Buffer.add_string b (domain_svg s);
     Buffer.add_string b "<h2>GC pauses</h2>";
     Buffer.add_string b (gc_pauses_html s)
   | None -> ());
  (match trajectory with
   | Some j ->
     Buffer.add_string b "<h2>Performance trajectory</h2>";
     Buffer.add_string b (trajectory_html j)
   | None -> ());
  Buffer.add_string b "<h2>Levels</h2>";
  Buffer.add_string b (levels_table t.R.levels);
  (match t.R.legalization with
   | Some l ->
     Buffer.add_string b "<h2>Legalization</h2>";
     Printf.bprintf b
       "<table><thead><tr><th>HPWL</th><th>overflow</th><th>viol</th>\
        <th>time</th><th>spilled</th><th>failed</th><th>avg disp</th>\
        <th>max disp</th></tr></thead><tbody><tr><td>%s</td><td>%s</td>\
        <td>%d</td><td>%s</td><td>%d</td><td>%d</td><td>%.2f</td>\
        <td>%.2f</td></tr></tbody></table>"
       (fnum l.R.leg_hpwl) (fpct l.R.leg_density_overflow)
       l.R.leg_mb_violations (fsec l.R.leg_time) l.R.spilled l.R.failed
       l.R.avg_displacement l.R.max_displacement
   | None -> ());
  (match t.R.metrics with
   | Some m ->
     Buffer.add_string b "<h2>Metrics</h2>";
     Buffer.add_string b (metrics_tables m)
   | None -> ());
  Buffer.add_string b "</body></html>\n";
  Buffer.contents b
