(** Self-contained HTML run reports from flight-recorder records.

    {!render} turns a {!Fbp_obs.Recorder.t} into one HTML document with no
    external assets: provenance header, headline stat tiles, an
    HPWL-vs-level convergence curve (inline SVG), the per-phase wall-time
    breakdown as stacked bars, the final-placement density heatmap, and
    the per-level / counter / histogram tables.  Records carrying a
    [profile] section additionally get a per-domain utilization lane and a
    GC-pause breakdown; [?trajectory] (a parsed BENCH_trajectory.json from
    [bench trajectory]) folds in a per-PR performance sparkline.
    [fbp_place report run.json -o report.html] is the CLI wrapper. *)

val render : ?trajectory:Fbp_obs.Obs.Json.t -> Fbp_obs.Recorder.t -> string
