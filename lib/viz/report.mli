(** Self-contained HTML run reports from flight-recorder records.

    {!render} turns a {!Fbp_obs.Recorder.t} into one HTML document with no
    external assets: provenance header, headline stat tiles, an
    HPWL-vs-level convergence curve (inline SVG), the per-phase wall-time
    breakdown as stacked bars, the final-placement density heatmap, and
    the per-level / counter / histogram tables.  [fbp_place report run.json
    -o report.html] is the CLI wrapper. *)

val render : Fbp_obs.Recorder.t -> string
