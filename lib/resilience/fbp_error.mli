(** Typed failure taxonomy of the placement pipeline.

    Every stage of the solver chain (parsing, QP/CG, flow partitioning,
    realization, deadlines) reports failure as one of these variants, each
    carrying enough context to act on: retry, relax, fall back, or surface
    to the user with a meaningful exit code. *)

(** CG solve statistics, mirrored from [Fbp_linalg.Cg.stats] so this module
    stays at the bottom of the dependency order (the linalg library itself
    hosts a fault-injection site and must be able to depend on us). *)
type cg_stats = {
  iterations : int;
  residual : float;  (** final ||Ax − b|| / max(1, ||b||) *)
  converged : bool;
}

type t =
  | Infeasible_flow of { unrouted : float; level : int }
      (** MinCostFlow could not route [unrouted] cell area at grid level
          [level] — by Theorem 3 a certificate that no fractional placement
          with movebounds exists (after any attempted relaxation). *)
  | Cg_diverged of cg_stats
      (** Conjugate gradients failed to converge even after a safeguarded
          restart with stronger anchors. *)
  | Parse_error of { file : string; line : int; msg : string }
      (** Malformed design input, positioned. *)
  | Deadline_exceeded of { elapsed : float; budget : float; level : int }
      (** The per-run wall-clock budget ran out before level [level]. *)
  | Capacity_overflow of { demand : float; capacity : float; classes : int list }
      (** Movebound classes demand more area than their regions hold
          (Theorems 1–2 preprocessing check). *)
  | Invalid_input of string
      (** Structural input problem (e.g. movebound normalization failure). *)
  | Internal of { site : string; msg : string }
      (** Unexpected exception escaping stage [site]. *)
  | Sanitizer_violation of { site : string; invariant : string; detail : string }
      (** A checked runtime invariant (sanitizer mode, [--sanitize] /
          [FBP_SANITIZE=1]) failed at [site]: the named [invariant] does
          not hold, with the offending numbers in [detail].  Always a
          bug report, never degradable. *)

val to_string : t -> string

(** Stable process exit code per error class (0 is success, 1 reserved for
    generic/CLI errors): infeasible/capacity 2, parse 3, deadline 4,
    invalid input 5, CG divergence 6, internal 7, sanitizer violation 8. *)
val exit_code : t -> int

(** Typed errors as an exception, for call stacks that cannot thread a
    [result] (deep solver loops, sanitizer checks).  [of_exn] unwraps it
    back to the payload, so values raised with {!raise_error} surface
    intact at the stage boundary. *)
exception Error of t

val raise_error : t -> 'a

(** Wrap an escaped exception as [Internal], keeping its message. *)
val of_exn : site:string -> exn -> t
