(* Sanitizer switch and check runner.  Atomics, not refs: the realization
   runs worker domains, and a test may flip the switch around a parallel
   region. *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "FBP_SANITIZE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let counter = Atomic.make 0

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let checks_run () = Atomic.get counter

let check ~site ~invariant f =
  if Atomic.get enabled_flag then begin
    Atomic.incr counter;
    match f () with
    | Ok () -> ()
    | Error detail ->
      Fbp_error.raise_error
        (Fbp_error.Sanitizer_violation { site; invariant; detail })
  end
