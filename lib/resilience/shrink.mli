(** Greedy deterministic shrinking for property-based fuzzing.

    Given a failing value, [minimize] repeatedly asks [steps] for smaller
    candidate values and keeps the first candidate on which [still_fails]
    holds, restarting from it; the walk ends when no candidate preserves
    the failure or the attempt budget runs out.  With deterministic
    [steps] and [still_fails] the result is deterministic, so a shrunk
    repro replays bit-for-bit. *)

type 'a outcome = {
  value : 'a;  (** the minimized value (the input when nothing shrank) *)
  shrink_steps : int;  (** accepted reductions *)
  attempts : int;  (** total [still_fails] evaluations *)
}

(** [minimize ~steps ~still_fails v] greedily minimizes the failing value
    [v].  [steps v'] must return candidate reductions of [v'], most
    aggressive first (the greedy walk tries them in order).  [still_fails]
    must be true on [v] itself — the caller established the failure; it is
    never re-evaluated on [v].  [max_attempts] bounds the total number of
    candidate evaluations (default 256). *)
val minimize :
  ?max_attempts:int ->
  steps:('a -> 'a list) ->
  still_fails:('a -> bool) ->
  'a ->
  'a outcome
