(* Deterministic fault-injection registry.  See the interface for the
   contract; the implementation is a site-keyed table of firing schedules
   with a global enabled flag so un-instrumented runs pay one read. *)

type site = Mcf | Cg | Parse | Level | Transport | Legalize

type fault =
  | Infeasible of float
  | Stagnate
  | Corrupt
  | Raise of string
  | Delay of float

exception Injected of string

type armed = {
  fault : fault;
  after : int;
  mutable remaining : int;  (* -1 = unlimited *)
  prob : float option;
  rng : Fbp_util.Rng.t;
  mutable hits : int;
}

let sites : (site, armed) Hashtbl.t = Hashtbl.create 8
let enabled = ref false

let arm ?(seed = 1) ?(after = 0) ?times ?prob site fault =
  Hashtbl.replace sites site
    {
      fault;
      after;
      remaining = (match times with Some t -> max 0 t | None -> -1);
      prob;
      rng = Fbp_util.Rng.create seed;
      hits = 0;
    };
  enabled := true

let disarm site =
  Hashtbl.remove sites site;
  if Hashtbl.length sites = 0 then enabled := false

let reset () =
  Hashtbl.reset sites;
  enabled := false

let hits site =
  match Hashtbl.find_opt sites site with Some a -> a.hits | None -> 0

let active () = !enabled

let fire site =
  if not !enabled then None
  else
    match Hashtbl.find_opt sites site with
    | None -> None
    | Some a ->
      a.hits <- a.hits + 1;
      if a.hits <= a.after || a.remaining = 0 then None
      else if
        match a.prob with
        | None -> true
        | Some p -> Fbp_util.Rng.float a.rng < p
      then begin
        if a.remaining > 0 then a.remaining <- a.remaining - 1;
        Some a.fault
      end
      else None
