(** Flow-invariant sanitizer mode.

    When enabled ([fbp_place place --sanitize], env [FBP_SANITIZE=1], or
    {!set_enabled}), solver stages run checked invariants at their
    boundaries — MCF flow conservation and capacity bounds, transport
    row/column balance, CSR well-formedness, post-realization movebound
    containment — and a failure is raised as
    {!Fbp_error.Sanitizer_violation} (exit code 8), never degraded.

    When disabled, {!check} is one atomic read; the invariant thunk is not
    evaluated, so production runs pay no traversal cost. *)

(** True when sanitizer checks run (initially from [FBP_SANITIZE]:
    ["1"], ["true"], ["yes"] or ["on"] enable it). *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Number of checks executed since process start (sanity signal for the
    bench/CI smoke: a sanitized run must report a nonzero count). *)
val checks_run : unit -> int

(** [check ~site ~invariant f] runs [f ()] when enabled; [Error detail]
    raises {!Fbp_error.Error} with [Sanitizer_violation {site; invariant;
    detail}]. *)
val check :
  site:string -> invariant:string -> (unit -> (unit, string) result) -> unit
