(** Deterministic fault injection for the placement pipeline.

    Solver stages poll {!fire} at instrumented sites; tests arm a site with
    a fault and a firing schedule, then drive the pipeline and assert that
    every degradation path produces a usable placement or a typed error.
    Scheduling is deterministic: hit counting plus an optional
    {!Fbp_util.Rng}-seeded firing probability, so a failing run replays
    bit-for-bit.

    The registry is global mutable state intended for single-domain test
    runs ([dune runtest]); production code pays one [bool] read per site
    when nothing is armed. *)

(** Instrumented sites. *)
type site =
  | Mcf  (** entry of {!Fbp_flow.Mcf.solve} *)
  | Cg  (** entry of {!Fbp_linalg.Cg.solve} *)
  | Parse  (** each input line of {!Fbp_netlist.Bookshelf.read_channel} *)
  | Level
      (** polled 3x per placer refinement level: at level start, after the
          QP solve and after the flow solve (the two mid-level deadline
          checks) *)
  | Transport
      (** entry of {!Fbp_flow.Transport.solve}; supports [Raise] (solver
          failure) and [Corrupt] (tamper the assignment after solving, so
          the balance audit sees a wrong answer) *)
  | Legalize
      (** entry of {!Fbp_legalize.Legalizer.run}; supports [Raise]
          (legalizer failure) and [Corrupt] (displace a legalized cell
          outside the chip, so the containment audit sees a wrong
          answer) *)

type fault =
  | Infeasible of float
      (** [Mcf]: report [Infeasible] with this unrouted amount. *)
  | Stagnate  (** [Cg]: return immediately with [converged = false]. *)
  | Corrupt
      (** [Parse]: positioned parse error at the current line.
          [Mcf]/[Transport]/[Legalize]: silently tamper the stage's output
          (the sanitizer's control case). *)
  | Raise of string  (** any site: raise {!Injected}. *)
  | Delay of float
      (** [Level]: add virtual seconds to the placer's deadline clock. *)

(** Raised by a [Raise] fault — a stand-in for an arbitrary domain
    exception escaping a solver stage. *)
exception Injected of string

(** [arm site fault] makes {!fire} return [fault] at [site].
    [after] skips the first [after] hits (default 0); [times] limits how
    often the fault fires (default unlimited); [prob] fires each eligible
    hit with that probability, drawn from a SplitMix64 stream seeded with
    [seed] (default: always fire).  Re-arming a site replaces its previous
    schedule and resets its hit counter. *)
val arm : ?seed:int -> ?after:int -> ?times:int -> ?prob:float -> site -> fault -> unit

val disarm : site -> unit

(** Disarm every site and reset all counters. *)
val reset : unit -> unit

(** Number of times [site] was polled since it was armed. *)
val hits : site -> int

(** True when any site is armed (the fast-path check). *)
val active : unit -> bool

(** Called by instrumented code: polls the site's schedule. *)
val fire : site -> fault option
