(* Typed failure taxonomy of the placement pipeline.  See the interface for
   the semantics of each variant; this module sits below every solver
   library so they can all raise/return these without dependency cycles. *)

type cg_stats = {
  iterations : int;
  residual : float;
  converged : bool;
}

type t =
  | Infeasible_flow of { unrouted : float; level : int }
  | Cg_diverged of cg_stats
  | Parse_error of { file : string; line : int; msg : string }
  | Deadline_exceeded of { elapsed : float; budget : float; level : int }
  | Capacity_overflow of { demand : float; capacity : float; classes : int list }
  | Invalid_input of string
  | Internal of { site : string; msg : string }
  | Sanitizer_violation of { site : string; invariant : string; detail : string }

exception Error of t

let raise_error e = raise (Error e)

let to_string = function
  | Infeasible_flow { unrouted; level } ->
    Printf.sprintf
      "infeasible flow at level %d: %.3f cell area unroutable (Theorem 3: no \
       fractional placement with movebounds exists)"
      level unrouted
  | Cg_diverged { iterations; residual; _ } ->
    Printf.sprintf "CG diverged: residual %.3e after %d iterations" residual
      iterations
  | Parse_error { file; line; msg } -> Printf.sprintf "%s:%d: %s" file line msg
  | Deadline_exceeded { elapsed; budget; level } ->
    Printf.sprintf "deadline exceeded before level %d: %.2fs elapsed of %.2fs budget"
      level elapsed budget
  | Capacity_overflow { demand; capacity; classes } ->
    Printf.sprintf "capacity overflow: classes [%s] demand %.1f > capacity %.1f"
      (String.concat ";" (List.map string_of_int classes))
      demand capacity
  | Invalid_input msg -> "invalid input: " ^ msg
  | Internal { site; msg } -> Printf.sprintf "internal failure in %s: %s" site msg
  | Sanitizer_violation { site; invariant; detail } ->
    Printf.sprintf "sanitizer violation in %s: invariant '%s' broken: %s" site
      invariant detail

let exit_code = function
  | Infeasible_flow _ | Capacity_overflow _ -> 2
  | Parse_error _ -> 3
  | Deadline_exceeded _ -> 4
  | Invalid_input _ -> 5
  | Cg_diverged _ -> 6
  | Internal _ -> 7
  | Sanitizer_violation _ -> 8

let of_exn ~site = function
  | Error e -> e
  | Failure msg -> Internal { site; msg }
  | Invalid_argument msg -> Internal { site; msg = "invalid argument: " ^ msg }
  | e -> Internal { site; msg = Printexc.to_string e }
