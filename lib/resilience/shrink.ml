(* Greedy deterministic shrinking: from the current failing value, try the
   candidate reductions in order and restart from the first one that still
   fails.  Termination: the attempt budget is finite and each accepted
   step must come from the (finite) candidate list of the new value, so
   the walk either exhausts candidates or the budget. *)

type 'a outcome = {
  value : 'a;
  shrink_steps : int;
  attempts : int;
}

let minimize ?(max_attempts = 256) ~steps ~still_fails v0 =
  let attempts = ref 0 in
  let rec walk v accepted =
    let rec try_candidates = function
      | [] -> { value = v; shrink_steps = accepted; attempts = !attempts }
      | c :: rest ->
        if !attempts >= max_attempts then
          { value = v; shrink_steps = accepted; attempts = !attempts }
        else begin
          incr attempts;
          if still_fails c then walk c (accepted + 1) else try_candidates rest
        end
    in
    try_candidates (steps v)
  in
  walk v0 0
