(* Movebound-aware legalization (Section III).

   The paper legalizes per *region*: after the partitioning rho : C -> R,
   the cells of each region are legalized inside that region's area — which
   handles overlapping movebounds simultaneously, because by construction
   every cell admissible in a region may use all of it.  Within a region we
   run a Tetris/Abacus-style greedy: cells in left-to-right order, each
   placed at the displacement-minimal feasible spot, searching rows outward
   from the cell's position.  Cells that do not fit in their region
   (capacity lost to partial rows at movebound boundaries) spill into the
   nearest admissible region, against the same shared occupancy state.

   This replaces the Brenner–Vygen minimum-movement legalizer [6]; the
   substitution is recorded in DESIGN.md. *)

open Fbp_netlist

type stats = {
  n_legalized : int;
  n_spilled : int;  (* placed outside their assigned region (still legal) *)
  n_failed : int;  (* cells that found no space anywhere admissible *)
  avg_displacement : float;
  max_displacement : float;
  time : float;
}

(* mutable per-segment fill state: the list of free x-intervals (kept
   sorted, non-overlapping).  Interval packing avoids the permanent gap
   waste of the classic cursor-based Tetris when regions run nearly full. *)
type slot = {
  seg : Rows.segment;
  mutable free : (float * float) list;
  mutable placed : (int * float * float) list;  (* cell, x0, width *)
}

(* Segments of one region bucketed by row for outward search. *)
type pool = {
  by_row : slot list array;  (* index = row *)
  n_rows : int;
  row_height : float;
  chip_y0 : float;
  site : float;  (* placement lattice pitch within segments *)
}

let make_pool ~chip ~row_height ?(site = 0.0) segments =
  let site = if site > 0.0 then site else row_height in
  let n_rows =
    int_of_float (Float.round (Fbp_geometry.Rect.height chip /. row_height))
  in
  let by_row = Array.make (max 1 n_rows) [] in
  List.iter
    (fun (seg : Rows.segment) ->
      if seg.Rows.row >= 0 && seg.Rows.row < n_rows then
        by_row.(seg.Rows.row) <-
          { seg; free = [ (seg.Rows.x0, seg.Rows.x1) ]; placed = [] }
          :: by_row.(seg.Rows.row))
    segments;
  (* deterministic: left-to-right within each row *)
  Array.iteri
    (fun i l ->
      by_row.(i) <- List.sort (fun a b -> Float.compare a.seg.Rows.x0 b.seg.Rows.x0) l)
    by_row;
  { by_row; n_rows = max 1 n_rows; row_height; chip_y0 = chip.Fbp_geometry.Rect.y0; site }

(* Try to place a cell of width [w] desired at (cx, cy) into one of the
   pools (searched in order); returns the chosen slot and x0 or None. *)
let find_spot pools ~w ~cx ~cy =
  let best = ref None and best_cost = ref infinity in
  List.iter
    (fun pool ->
      let desired_row =
        int_of_float (Float.floor ((cy -. pool.chip_y0) /. pool.row_height))
      in
      let desired_row = max 0 (min (pool.n_rows - 1) desired_row) in
      let try_row row =
        if row >= 0 && row < pool.n_rows then
          List.iter
            (fun slot ->
              (* placements snap to the segment's site lattice: with
                 integer-site cell widths, splits stay on the lattice and
                 100%-density rows pack without fragmentation waste *)
              let base = slot.seg.Rows.x0 in
              let site = pool.site in
              List.iter
                (fun (f0, f1) ->
                  if f1 -. f0 >= w -. 1e-9 then begin
                    let kmin = Float.ceil ((f0 -. base) /. site -. 1e-9) in
                    let kmax = Float.floor ((f1 -. w -. base) /. site +. 1e-9) in
                    if kmax >= kmin then begin
                      let kdes = Float.round ((cx -. (w /. 2.0) -. base) /. site) in
                      let k = Float.max kmin (Float.min kmax kdes) in
                      let x0 = base +. (k *. site) in
                      let cost =
                        Float.abs (x0 +. (w /. 2.0) -. cx)
                        +. Float.abs (slot.seg.Rows.y -. cy)
                      in
                      if cost < !best_cost then begin
                        best_cost := cost;
                        best := Some (slot, x0)
                      end
                    end
                  end)
                slot.free)
            pool.by_row.(row)
      in
      (* outward row search; once the pure y-distance of the next ring
         exceeds the best cost, no further row can win *)
      let dr = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let y_penalty = float_of_int (!dr - 1) *. pool.row_height in
        if !dr > 0 && y_penalty > !best_cost then continue_ := false
        else begin
          try_row (desired_row - !dr);
          if !dr > 0 then try_row (desired_row + !dr);
          incr dr;
          if !dr >= pool.n_rows then continue_ := false
        end
      done)
    pools;
  match !best with
  | Some (slot, x0) -> Some (slot, x0)
  | None -> None

(* carve [x0, x0+w) out of the slot's free intervals *)
let occupy slot x0 w =
  let x1 = x0 +. w in
  slot.free <-
    List.concat_map
      (fun (f0, f1) ->
        if x1 <= f0 +. 1e-12 || x0 >= f1 -. 1e-12 then [ (f0, f1) ]
        else begin
          let pieces = ref [] in
          if x0 -. f0 > 1e-9 then pieces := (f0, x0) :: !pieces;
          if f1 -. x1 > 1e-9 then pieces := (x1, f1) :: !pieces;
          !pieces
        end)
      slot.free

let place_cell (nl : Netlist.t) (pos : Placement.t) pools c =
  let w = nl.Netlist.widths.(c) in
  match find_spot pools ~w ~cx:pos.Placement.x.(c) ~cy:pos.Placement.y.(c) with
  | None -> false
  | Some (slot, x0) ->
    pos.Placement.x.(c) <- x0 +. (w /. 2.0);
    pos.Placement.y.(c) <- slot.seg.Rows.y;
    occupy slot x0 w;
    slot.placed <- (c, x0, w) :: slot.placed;
    true

(* Last resort for a cell no free interval can host: find an admissible
   segment whose *total* free width suffices, left-compact it (closing the
   fragmentation gaps), and append the cell.  Shifts a handful of already
   legalized cells; only runs for the rare overflow stragglers. *)
let evict_and_compact (nl : Netlist.t) (pos : Placement.t) pools c =
  let w = nl.Netlist.widths.(c) in
  let cy = pos.Placement.y.(c) in
  let best = ref None and best_cost = ref infinity in
  List.iter
    (fun pool ->
      Array.iter
        (fun slots ->
          List.iter
            (fun slot ->
              let total_free =
                List.fold_left (fun acc (f0, f1) -> acc +. (f1 -. f0)) 0.0 slot.free
              in
              if total_free >= w -. 1e-9 then begin
                let cost = Float.abs (slot.seg.Rows.y -. cy) in
                if cost < !best_cost then begin
                  best_cost := cost;
                  best := Some slot
                end
              end)
            slots)
        pool.by_row)
    pools;
  match !best with
  | None -> false
  | Some slot ->
    (* left-compact all placed cells, then append the newcomer *)
    let ordered =
      List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) slot.placed
    in
    let cursor = ref slot.seg.Rows.x0 in
    let replaced =
      List.map
        (fun (pc, _, pw) ->
          let x0 = !cursor in
          cursor := !cursor +. pw;
          pos.Placement.x.(pc) <- x0 +. (pw /. 2.0);
          (pc, x0, pw))
        ordered
    in
    let x0 = !cursor in
    cursor := !cursor +. w;
    pos.Placement.x.(c) <- x0 +. (w /. 2.0);
    pos.Placement.y.(c) <- slot.seg.Rows.y;
    slot.placed <- (c, x0, w) :: replaced;
    slot.free <-
      (if slot.seg.Rows.x1 -. !cursor > 1e-9 then [ (!cursor, slot.seg.Rows.x1) ] else []);
    true

(* Rebuild a slot's free intervals from its placed list. *)
let rebuild_free slot =
  let placed = List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) slot.placed in
  let free = ref [] in
  let cursor = ref slot.seg.Rows.x0 in
  List.iter
    (fun (_, x0, w) ->
      if x0 -. !cursor > 1e-9 then free := (!cursor, x0) :: !free;
      cursor := Float.max !cursor (x0 +. w))
    placed;
  if slot.seg.Rows.x1 -. !cursor > 1e-9 then free := (!cursor, slot.seg.Rows.x1) :: !free;
  slot.free <- List.rev !free

(* Cross-class eviction: a constrained cell that fits nowhere admissible may
   push *unconstrained* cells (admissible anywhere) out of one of its
   segments; the evicted cells are re-placed through the unconstrained
   pools, where the chip's global whitespace lives.  Returns the evicted
   cells still to be re-placed, or None if no segment can host [c]. *)
let evict_cross_class (nl : Netlist.t) (pos : Placement.t) pools c =
  let own_mb = nl.Netlist.movebound.(c) in
  let w_in = nl.Netlist.widths.(c) in
  (* prefer evicting unconstrained cells; other classes and strictly
     narrower same-class cells as a last resort (narrower victims re-place
     easily, and the strict-width ordering guarantees termination) *)
  let evictable pc =
    nl.Netlist.movebound.(pc) <> own_mb || nl.Netlist.widths.(pc) < w_in -. 1e-9
  in
  let victim_order (a, _, wa) (b, _, wb) =
    let unc v = if nl.Netlist.movebound.(v) < 0 then 0 else 1 in
    match Int.compare (unc a) (unc b) with 0 -> Float.compare wa wb | c -> c
  in
  let w = nl.Netlist.widths.(c) in
  let cy = pos.Placement.y.(c) in
  let best = ref None and best_cost = ref infinity in
  List.iter
    (fun pool ->
      Array.iter
        (fun slots ->
          List.iter
            (fun slot ->
              let total_free =
                List.fold_left (fun acc (f0, f1) -> acc +. (f1 -. f0)) 0.0 slot.free
              in
              let evictable_w =
                List.fold_left
                  (fun acc (pc, _, pw) -> if evictable pc then acc +. pw else acc)
                  0.0 slot.placed
              in
              if total_free +. evictable_w >= w -. 1e-9 then begin
                let cost = Float.abs (slot.seg.Rows.y -. cy) in
                if cost < !best_cost then begin
                  best_cost := cost;
                  best := Some slot
                end
              end)
            slots)
        pool.by_row)
    pools;
  match !best with
  | None -> None
  | Some slot ->
    (* evict narrowest unconstrained cells until the newcomer fits *)
    let total_free =
      List.fold_left (fun acc (f0, f1) -> acc +. (f1 -. f0)) 0.0 slot.free
    in
    let deficit = ref (w -. total_free) in
    let victims = ref [] in
    let keep = ref [] in
    List.iter
      (fun ((pc, _, pw) as entry) ->
        if !deficit > 1e-9 && evictable pc then begin
          victims := pc :: !victims;
          deficit := !deficit -. pw
        end
        else keep := entry :: !keep)
      (List.sort victim_order slot.placed);
    slot.placed <- !keep;
    rebuild_free slot;
    (* left-compact and append the newcomer *)
    let ordered = List.sort (fun (_, a, _) (_, b, _) -> Float.compare a b) slot.placed in
    let cursor = ref slot.seg.Rows.x0 in
    let replaced =
      List.map
        (fun (pc, _, pw) ->
          let x0 = !cursor in
          cursor := !cursor +. pw;
          pos.Placement.x.(pc) <- x0 +. (pw /. 2.0);
          (pc, x0, pw))
        ordered
    in
    let x0 = !cursor in
    pos.Placement.x.(c) <- x0 +. (w /. 2.0);
    pos.Placement.y.(c) <- slot.seg.Rows.y;
    slot.placed <- (c, x0, w) :: replaced;
    rebuild_free slot;
    Some !victims

(* [run inst regions pos ~piece_of_cell ~grid] legalizes in place.  Cells
   are grouped by the *global region* of their assigned piece (the paper's
   rho : C -> R); unassigned cells fall back to the region containing their
   current position. *)
(* [movebound_aware]: when false, spills may land in any region (emulating
   placers whose legalization does not reserve capacity per movebound —
   the RQL baseline); violations are then possible and counted upstream. *)
let run_impl ?(movebound_aware = true) (inst : Fbp_movebound.Instance.t)
    (regions : Fbp_movebound.Regions.t) (pos : Placement.t)
    ~(piece_of_cell : int array) ~(grid : Fbp_core.Grid.t option) =
  let t0 = Fbp_util.Timer.now () in
  let design = inst.Fbp_movebound.Instance.design in
  let nl = design.Design.netlist in
  let k = Fbp_movebound.Instance.n_movebounds inst in
  let before = Placement.copy pos in
  let n_regions = Fbp_movebound.Regions.n_regions regions in
  (* one shared pool per region *)
  let pool_of_region =
    Array.init n_regions (fun rid ->
        let region = regions.Fbp_movebound.Regions.regions.(rid) in
        let segments =
          Rows.build ~chip:design.Design.chip ~row_height:design.Design.row_height
            ~blockages:design.Design.blockages ~region:rid
            region.Fbp_movebound.Regions.area
        in
        make_pool ~chip:design.Design.chip ~row_height:design.Design.row_height
          segments)
  in
  (* admissible pools per movebound class, for spills *)
  let admissible_pools =
    Array.init (k + 1) (fun m ->
        let mb = if m = k then -1 else m in
        List.filter_map
          (fun (r : Fbp_movebound.Regions.region) ->
            if (not movebound_aware) || Fbp_movebound.Regions.admissible r ~mb then
              Some pool_of_region.(r.Fbp_movebound.Regions.id)
            else None)
          (Array.to_list regions.Fbp_movebound.Regions.regions))
  in
  (* group movable cells by assigned global region *)
  let groups = Array.make n_regions [] in
  for c = Netlist.n_cells nl - 1 downto 0 do
    if not nl.Netlist.fixed.(c) then begin
      let region =
        match grid with
        | Some g when c < Array.length piece_of_cell && piece_of_cell.(c) >= 0 ->
          g.Fbp_core.Grid.pieces.(piece_of_cell.(c)).Fbp_core.Grid.region
        | _ ->
          (Fbp_movebound.Regions.region_at regions (Placement.get pos c)).Fbp_movebound.Regions.id
      in
      groups.(region) <- c :: groups.(region)
    end
  done;
  let n_failed = ref 0 and n_legalized = ref 0 and n_spilled = ref 0 in
  let pending_failures = ref [] in
  Array.iteri
    (fun rid cells ->
      if cells <> [] then begin
        (* left-to-right order stabilizes the Tetris sweep *)
        let order =
          List.sort (fun a b -> Float.compare pos.Placement.x.(a) pos.Placement.x.(b)) cells
        in
        let pool = pool_of_region.(rid) in
        List.iter
          (fun c ->
            if place_cell nl pos [ pool ] c then incr n_legalized
            else begin
              (* spill: any region admissible for this cell's movebound *)
              let mb = nl.Netlist.movebound.(c) in
              let m = if mb < 0 then k else mb in
              (* spill chain: free slot anywhere admissible → segment
                 compaction → eviction (re-homing victims recursively, with
                 a depth bound against cross-class ping-pong) *)
              let rec place_hard depth v =
                let vm =
                  let mb = nl.Netlist.movebound.(v) in
                  if mb < 0 then k else mb
                in
                place_cell nl pos admissible_pools.(vm) v
                || evict_and_compact nl pos admissible_pools.(vm) v
                || (depth < 3
                   &&
                   match evict_cross_class nl pos admissible_pools.(vm) v with
                   | None -> false
                   | Some victims ->
                     List.iter
                       (fun v' ->
                         if not (place_hard (depth + 1) v') then
                           pending_failures := v' :: !pending_failures)
                       victims;
                     true)
              in
              if place_hard 0 c then begin
                incr n_legalized;
                incr n_spilled
              end
              else begin
                (if Sys.getenv_opt "FBP_LEGALIZE_DEBUG" <> None then begin
                   let wc = nl.Netlist.widths.(c) in
                   let maxfree = ref 0.0 and total = ref 0.0 and npools = ref 0 in
                   List.iter
                     (fun pool ->
                       incr npools;
                       Array.iter
                         (fun slots ->
                           List.iter
                             (fun slot ->
                               List.iter
                                 (fun (f0, f1) ->
                                   total := !total +. (f1 -. f0);
                                   if f1 -. f0 > !maxfree then maxfree := f1 -. f0)
                                 slot.free)
                             slots)
                         pool.by_row)
                     admissible_pools.(m);
                   Printf.eprintf
                     "[legalize-debug] cell %d class %d w %.1f: %d pools, max contiguous %.2f, total free %.1f\n"
                     c m wc !npools !maxfree !total
                 end);
                pending_failures := c :: !pending_failures
              end
            end)
          order
      end)
    groups;
  (* final retry rounds: earlier compactions and evictions changed the
     landscape, so stragglers often fit on a later pass *)
  let retry_round cells =
    List.filter
      (fun c ->
        let m =
          let mb = nl.Netlist.movebound.(c) in
          if mb < 0 then k else mb
        in
        if place_cell nl pos admissible_pools.(m) c
           || evict_and_compact nl pos admissible_pools.(m) c
        then begin
          incr n_legalized;
          incr n_spilled;
          false
        end
        else true)
      cells
  in
  let rec retry rounds cells =
    if rounds = 0 || cells = [] then cells
    else begin
      let remaining = retry_round (List.sort_uniq Int.compare cells) in
      if List.length remaining = List.length cells then remaining
      else retry (rounds - 1) remaining
    end
  in
  let final_failures = retry 3 !pending_failures in
  n_failed := List.length final_failures;
  let avg = Placement.avg_displacement before pos in
  let worst = Placement.max_displacement before pos in
  ( {
      n_legalized = !n_legalized;
      n_spilled = !n_spilled;
      n_failed = !n_failed;
      avg_displacement = avg;
      max_displacement = worst;
      time = Fbp_util.Timer.now () -. t0;
    },
    final_failures )

(* Deterministically damage a legalized placement: displace the first
   successfully legalized movable cell outside the chip.  Models a
   legalizer bug for the sanitizer tests. *)
let corrupt_placement (inst : Fbp_movebound.Instance.t) (pos : Placement.t)
    ~failed =
  let design = inst.Fbp_movebound.Instance.design in
  let nl = design.Design.netlist in
  let chip = design.Design.chip in
  let victim = ref (-1) in
  for c = Netlist.n_cells nl - 1 downto 0 do
    if (not nl.Netlist.fixed.(c)) && not (List.exists (Int.equal c) failed) then
      victim := c
  done;
  if !victim >= 0 then begin
    pos.Placement.x.(!victim) <-
      chip.Fbp_geometry.Rect.x1 +. (2.0 *. design.Design.row_height);
    pos.Placement.y.(!victim) <-
      chip.Fbp_geometry.Rect.y1 +. (2.0 *. design.Design.row_height)
  end

(* Fault-injection shim + post-legalization containment audit: a [Raise]
   fault models a legalizer failure; [Corrupt] displaces a cell off-chip
   after the sweep so the sanitizer's audit sees a wrong answer.  Cells
   the legalizer itself reported as failed are excused from the audit —
   they stay at their (possibly arbitrary) pre-legalization spots and are
   already counted in [n_failed]. *)
let run ?movebound_aware inst regions pos ~piece_of_cell ~grid =
  Fbp_obs.Obs.span "legalize.run" (fun () ->
      match Fbp_resilience.Inject.fire Fbp_resilience.Inject.Legalize with
      | Some (Fbp_resilience.Inject.Raise msg) ->
        (* fbp-lint: allow error-taxonomy — fires only when the fuzz harness arms the registry, which converts it; CLI runs never arm *)
        raise (Fbp_resilience.Inject.Injected msg)
      | fired ->
        let stats, failed =
          run_impl ?movebound_aware inst regions pos ~piece_of_cell ~grid
        in
        (match fired with
        | Some Fbp_resilience.Inject.Corrupt ->
          corrupt_placement inst pos ~failed
        | _ -> ());
        Fbp_resilience.Sanitize.check ~site:"legalize.run"
          ~invariant:"chip containment" (fun () ->
            Fbp_movebound.Legality.audit_containment
              ~ignore:(fun c -> List.exists (Int.equal c) failed)
              inst pos);
        Fbp_obs.Obs.count ~n:stats.n_spilled "legalize.spilled_cells";
        Fbp_obs.Obs.count ~n:stats.n_failed "legalize.failed_cells";
        stats)
