(* Row segments: the free intervals of standard-cell rows available inside a
   rectangle set (a region, or the whole chip), after subtracting blockages.

   Movable cells are one row tall (the generator and the industrial designs
   the paper uses are standard-cell designs; taller movable macros are fixed
   before legalization).  A segment belongs to a region only where the
   region covers the row's full height — a cell must be *entirely* inside
   its movebound. *)

open Fbp_geometry

type segment = {
  row : int;  (* row index from the chip bottom *)
  y : float;  (* row center y *)
  x0 : float;
  x1 : float;
  region : int;  (* owning region id (or -1 when built region-free) *)
}

let width s = s.x1 -. s.x0

(* Segments of [area] clipped to rows, minus blockages. *)
let build ~(chip : Rect.t) ~row_height ~(blockages : Rect.t list) ?(region = -1)
    (area : Rect_set.t) =
  let n_rows = int_of_float (Float.round (Rect.height chip /. row_height)) in
  let segments = ref [] in
  for row = 0 to n_rows - 1 do
    let ry0 = chip.Rect.y0 +. (float_of_int row *. row_height) in
    let ry1 = ry0 +. row_height in
    let y = (ry0 +. ry1) /. 2.0 in
    List.iter
      (fun (r : Rect.t) ->
        (* full row height must be covered *)
        if r.Rect.y0 <= ry0 +. 1e-9 && r.Rect.y1 >= ry1 -. 1e-9 then begin
          (* subtract blockages overlapping this row span *)
          let strip = Rect.make ~x0:r.Rect.x0 ~y0:ry0 ~x1:r.Rect.x1 ~y1:ry1 in
          let free =
            List.fold_left
              (fun pieces b ->
                List.concat_map (fun piece -> Rect.subtract piece b) pieces)
              [ strip ] blockages
          in
          List.iter
            (fun (f : Rect.t) ->
              (* keep only full-height remnants (horizontal cuts by a
                 blockage leave unusable slivers) *)
              if f.Rect.y0 <= ry0 +. 1e-9 && f.Rect.y1 >= ry1 -. 1e-9
                 && Rect.width f > 1e-9 then
                segments :=
                  { row; y; x0 = f.Rect.x0; x1 = f.Rect.x1; region } :: !segments)
            free
        end)
      (Rect_set.rects area)
  done;
  (* deterministic order: bottom-to-top, left-to-right *)
  let sorted = List.sort
      (fun a b ->
        match Int.compare a.row b.row with
        | 0 -> Float.compare a.x0 b.x0
        | c -> c)
      !segments in
  (* merge touching same-row segments: region areas arrive as unions of
     Hanan-grid strips, and without merging a contiguous row would be
     chopped into fragments no wide cell can use *)
  let rec merge = function
    | a :: b :: rest when a.row = b.row && b.x0 -. a.x1 <= 1e-6 ->
      merge ({ a with x1 = Float.max a.x1 b.x1 } :: rest)
    | a :: rest -> a :: merge rest
    | [] -> []
  in
  merge sorted

let total_width segments =
  List.fold_left (fun acc s -> acc +. width s) 0.0 segments
