(* Placement legality audits: row alignment, overlap-freeness, chip and
   blockage containment.  Together with Fbp_movebound.Legality this decides
   whether a final placement counts as "legal" in the tables. *)

open Fbp_geometry
open Fbp_netlist

type report = {
  n_overlaps : int;
  n_off_row : int;
  n_outside_chip : int;
  n_on_blockage : int;
  legal : bool;
}

let audit (design : Design.t) (pos : Placement.t) =
  let nl = design.Design.netlist in
  let chip = design.Design.chip in
  let rh = design.Design.row_height in
  let movable = ref [] in
  for c = Netlist.n_cells nl - 1 downto 0 do
    if not nl.Netlist.fixed.(c) then movable := c :: !movable
  done;
  let movable = !movable in
  let n_off_row = ref 0 and n_outside = ref 0 and n_blocked = ref 0 in
  List.iter
    (fun c ->
      let r = Placement.cell_rect nl pos c in
      if not (Rect.contains chip r) then incr n_outside;
      (* row alignment: bottom edge on a row boundary *)
      let rel = (r.Rect.y0 -. chip.Rect.y0) /. rh in
      if Float.abs (rel -. Float.round rel) > 1e-6 then incr n_off_row;
      if List.exists (fun b -> Rect.overlaps b r) design.Design.blockages then
        incr n_blocked)
    movable;
  (* overlaps: bucket by row index, sweep by x *)
  let by_row = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let r = Placement.cell_rect nl pos c in
      let row = int_of_float (Float.round ((r.Rect.y0 -. chip.Rect.y0) /. rh)) in
      Hashtbl.replace by_row row
        (c :: (try Hashtbl.find by_row row with Not_found -> [])))
    movable;
  let n_overlaps = ref 0 in
  Hashtbl.iter
    (fun _ cells ->
      (* sweep by left edge, tracking the furthest right edge seen: catches
         overlaps even across non-adjacent cells of different widths *)
      let sorted =
        List.sort
          (fun a b ->
            Float.compare
              (Placement.cell_rect nl pos a).Rect.x0
              (Placement.cell_rect nl pos b).Rect.x0)
          cells
      in
      let reach = ref neg_infinity in
      List.iter
        (fun c ->
          let r = Placement.cell_rect nl pos c in
          if r.Rect.x0 < !reach -. 1e-9 then incr n_overlaps;
          if r.Rect.x1 > !reach then reach := r.Rect.x1)
        sorted)
    by_row;
  {
    n_overlaps = !n_overlaps;
    n_off_row = !n_off_row;
    n_outside_chip = !n_outside;
    n_on_blockage = !n_blocked;
    legal = !n_overlaps = 0 && !n_off_row = 0 && !n_outside = 0 && !n_blocked = 0;
  }
