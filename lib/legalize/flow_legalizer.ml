(* Flow-based legalization, after Brenner–Vygen [6] ("Legalizing a placement
   with minimum total movement") — the legalizer the paper actually calls.

   The full algorithm partitions the chip into zones and solves a min-cost
   flow that moves cell *area* between overfull and underfull zones with
   minimum total movement, then realizes the flow within rows.  This module
   implements the same structure at our scale:

   1. per region (Section III again: regions make overlapping movebounds
      independent), a Hitchcock transportation between the region's cells
      and its row segments, capacities = segment widths, cost = L1 distance
      from the cell to the segment interval — the zone flow;
   2. per segment, the assigned cells are packed in x-order at minimum
      displacement (a single-row optimal packing under ordering).

   Compared with the default Tetris/interval legalizer this produces lower
   total movement on dense regions at higher cost (the transportation runs
   over all cells x segments of a region); the harness exposes both so the
   trade-off is measurable. *)

open Fbp_netlist

type stats = {
  n_legalized : int;
  n_failed : int;
  avg_displacement : float;
  max_displacement : float;
  time : float;
}

(* Pack [cells] (already assigned to this segment) in x-order with minimum
   total |x - desired| subject to non-overlap and the segment bounds: a
   classic single-row problem; the greedy-with-collapse (Abacus cluster)
   solution is optimal for the L1 objective with unit weights. *)
let pack_segment (nl : Netlist.t) (pos : Placement.t) (seg : Rows.segment) cells =
  (* order by desired x *)
  let order =
    List.sort (fun a b -> Float.compare pos.Placement.x.(a) pos.Placement.x.(b)) cells
  in
  (* clusters: (total width, desired positions sum offsets) collapsed left
     to right; each cluster's optimal start is the median-like balance
     point, here approximated by the mean of (desired_x0 - offset) clamped
     to the segment *)
  let rec place_clusters placed = function
    | [] -> List.rev placed
    | c :: rest ->
      let w = nl.Netlist.widths.(c) in
      let desired = pos.Placement.x.(c) -. (w /. 2.0) in
      (* cluster = (start, width, members, sum_desired_minus_offset, count) *)
      let cluster = (desired, w, [ (c, 0.0) ], desired, 1) in
      let rec absorb (start, cw, members, sum_d, k) placed =
        (* clamp into the segment *)
        let start = Float.max seg.Rows.x0 (Float.min (seg.Rows.x1 -. cw) start) in
        match placed with
        | (pstart, pw, pmembers, psum, pk) :: tail
          when pstart +. pw > start +. 1e-12 ->
          (* overlap with the previous cluster: merge *)
          let members' =
            pmembers @ List.map (fun (m, off) -> (m, off +. pw)) members
          in
          let sum' = psum +. (sum_d -. (float_of_int k *. pw)) in
          let k' = pk + k in
          absorb (sum' /. float_of_int k', pw +. cw, members', sum', k') tail
        | _ -> ((start, cw, members, sum_d, k), placed)
      in
      let cluster', placed' = absorb cluster placed in
      place_clusters (cluster' :: placed') rest
  in
  let clusters = place_clusters [] order in
  List.iter
    (fun (start, cw, members, _, _) ->
      let start = Float.max seg.Rows.x0 (Float.min (seg.Rows.x1 -. cw) start) in
      List.iter
        (fun (c, off) ->
          pos.Placement.x.(c) <- start +. off +. (nl.Netlist.widths.(c) /. 2.0);
          pos.Placement.y.(c) <- seg.Rows.y)
        members)
    clusters

let run (inst : Fbp_movebound.Instance.t) (regions : Fbp_movebound.Regions.t)
    (pos : Placement.t) =
  let t0 = Fbp_util.Timer.now () in
  let design = inst.Fbp_movebound.Instance.design in
  let nl = design.Design.netlist in
  let before = Placement.copy pos in
  let n_failed = ref 0 and n_legalized = ref 0 in
  (* group movable cells by the region containing their position *)
  let groups = Array.make (Fbp_movebound.Regions.n_regions regions) [] in
  for c = Netlist.n_cells nl - 1 downto 0 do
    if not nl.Netlist.fixed.(c) then begin
      let r = Fbp_movebound.Regions.region_at regions (Placement.get pos c) in
      groups.(r.Fbp_movebound.Regions.id) <- c :: groups.(r.Fbp_movebound.Regions.id)
    end
  done;
  Array.iteri
    (fun rid cells ->
      if cells <> [] then begin
        let region = regions.Fbp_movebound.Regions.regions.(rid) in
        let segments =
          Rows.build ~chip:design.Design.chip ~row_height:design.Design.row_height
            ~blockages:design.Design.blockages ~region:rid
            region.Fbp_movebound.Regions.area
          |> Array.of_list
        in
        if Array.length segments = 0 then n_failed := !n_failed + List.length cells
        else begin
          let cells = Array.of_list (List.sort Int.compare cells) in
          (* zone flow: cells -> segments *)
          let cost i j =
            let c = cells.(i) and seg = segments.(j) in
            let cx = pos.Placement.x.(c) and cy = pos.Placement.y.(c) in
            let dx =
              if cx < seg.Rows.x0 then seg.Rows.x0 -. cx
              else if cx > seg.Rows.x1 then cx -. seg.Rows.x1
              else 0.0
            in
            dx +. Float.abs (cy -. seg.Rows.y)
          in
          let problem =
            {
              Fbp_flow.Transport.sizes =
                Array.map (fun c -> nl.Netlist.widths.(c)) cells;
              capacities = Array.map Rows.width segments;
              cost;
            }
          in
          match Fbp_flow.Transport.solve problem with
          | Error _ -> n_failed := !n_failed + Array.length cells
          | Ok assignment ->
            let choice = Fbp_flow.Transport.round_integral assignment in
            let per_segment = Array.make (Array.length segments) [] in
            let load = Array.make (Array.length segments) 0.0 in
            Array.iteri
              (fun i c ->
                let j = choice.(i) in
                if j >= 0 then begin
                  per_segment.(j) <- c :: per_segment.(j);
                  load.(j) <- load.(j) +. nl.Netlist.widths.(c);
                  incr n_legalized
                end
                else incr n_failed)
              cells;
            (* integral rounding can overfill a segment: shed the narrowest
               members to the most-slack segment that fits them *)
            Array.iteri
              (fun j _ ->
                while load.(j) > Rows.width segments.(j) +. 1e-9
                      && per_segment.(j) <> [] do
                  let victim =
                    List.fold_left
                      (fun best c ->
                        if nl.Netlist.widths.(c) < nl.Netlist.widths.(best) then c
                        else best)
                      (List.hd per_segment.(j))
                      per_segment.(j)
                  in
                  per_segment.(j) <- List.filter (fun c -> c <> victim) per_segment.(j);
                  load.(j) <- load.(j) -. nl.Netlist.widths.(victim);
                  (* most slack target with room *)
                  let target = ref (-1) and slack = ref 0.0 in
                  Array.iteri
                    (fun j' _ ->
                      let s = Rows.width segments.(j') -. load.(j') in
                      if j' <> j && s > !slack && s >= nl.Netlist.widths.(victim) then begin
                        slack := s;
                        target := j'
                      end)
                    segments;
                  if !target >= 0 then begin
                    per_segment.(!target) <- victim :: per_segment.(!target);
                    load.(!target) <- load.(!target) +. nl.Netlist.widths.(victim)
                  end
                  else begin
                    decr n_legalized;
                    incr n_failed
                  end
                done)
              segments;
            Array.iteri
              (fun j members ->
                if members <> [] then pack_segment nl pos segments.(j) members)
              per_segment
        end
      end)
    groups;
  {
    n_legalized = !n_legalized;
    n_failed = !n_failed;
    avg_displacement = Placement.avg_displacement before pos;
    max_displacement = Placement.max_displacement before pos;
    time = Fbp_util.Timer.now () -. t0;
  }
