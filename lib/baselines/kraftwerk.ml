(* Kraftwerk2-style baseline: force-directed quadratic placement with a
   demand-and-supply potential (after Spindler, Schlichtmann, Johannes,
   TCAD'08 [21]).

   Each iteration solves the discretized Poisson equation
   laplacian(phi) = -(demand - supply) on a bin grid by Gauss-Seidel; the
   negated gradient of phi is the move force, implemented as a fixed anchor
   pulling every cell from its current position along the force vector.
   Iterations stop when the worst bin overflow falls under a threshold.
   Used as the Table VII comparator. *)

open Fbp_geometry
open Fbp_netlist

type params = {
  max_iterations : int;
  step : float;  (* force-to-distance scaling *)
  anchor_weight : float;
  stop_overflow : float;
  bins_per_axis : int;  (* 0 = auto *)
  gs_sweeps : int;  (* Gauss-Seidel sweeps per iteration *)
}

let default_params =
  {
    max_iterations = 40;
    step = 0.9;
    anchor_weight = 0.06;
    stop_overflow = 1.04;
    bins_per_axis = 0;
    gs_sweeps = 60;
  }

type report = {
  placement : Placement.t;
  iterations : int;
  global_time : float;
  legalize_time : float;
  hpwl : float;
}

(* Solve laplacian(phi) = rho on an nx*ny grid (Dirichlet 0 boundary) by
   Gauss-Seidel; returns phi. *)
let poisson ~nx ~ny ~sweeps (rho : float array) =
  let phi = Array.make (nx * ny) 0.0 in
  for _ = 1 to sweeps do
    for j = 0 to ny - 1 do
      for i = 0 to nx - 1 do
        let idx = (j * nx) + i in
        let get di dj =
          let i' = i + di and j' = j + dj in
          if i' < 0 || i' >= nx || j' < 0 || j' >= ny then 0.0
          else phi.((j' * nx) + i')
        in
        phi.(idx) <-
          0.25
          *. (get (-1) 0 +. get 1 0 +. get 0 (-1) +. get 0 1 -. rho.(idx))
      done
    done
  done;
  phi

let place ?(params = default_params) (inst0 : Fbp_movebound.Instance.t) =
  match Fbp_movebound.Instance.normalize inst0 with
  | Error e -> Error e
  | Ok inst ->
    let design = inst.Fbp_movebound.Instance.design in
    let nl = design.Design.netlist in
    let chip = design.Design.chip in
    let t0 = Fbp_util.Timer.now () in
    let nb =
      if params.bins_per_axis > 0 then params.bins_per_axis
      else max 8 (min 48 (Design.n_rows design / 10))
    in
    let pos = Placement.copy design.Design.initial in
    let cfg = Fbp_core.Config.default in
    let bw = Rect.width chip /. float_of_int nb in
    let bh = Rect.height chip /. float_of_int nb in
    let k = Fbp_movebound.Instance.n_movebounds inst in
    let iter = ref 0 in
    let converged = ref false in
    let targets_x = ref (Array.copy pos.Placement.x) in
    let targets_y = ref (Array.copy pos.Placement.y) in
    let have_force = ref false in
    while (not !converged) && !iter < params.max_iterations do
      incr iter;
      let txs = !targets_x and tys = !targets_y and forced = !have_force in
      ignore
        (Fbp_core.Qp.solve_global cfg nl pos ~anchor:(fun c ->
             if not forced then None
             else Some (params.anchor_weight, txs.(c), params.anchor_weight, tys.(c)))
           ());
      (* demand - supply *)
      let bins = Spread.compute_bins design pos ~nx:nb ~ny:nb in
      let rho =
        Array.mapi
          (fun i u ->
            let c = bins.Spread.cap.(i) in
            (* normalized excess demand; negative where there is room *)
            (u -. c) /. Float.max 1.0 (bw *. bh))
          bins.Spread.usage
      in
      let phi = poisson ~nx:nb ~ny:nb ~sweeps:params.gs_sweeps rho in
      (* force = -grad(phi): move cells downhill *)
      let tx = Array.copy pos.Placement.x and ty = Array.copy pos.Placement.y in
      for c = 0 to Netlist.n_cells nl - 1 do
        if not nl.Netlist.fixed.(c) then begin
          let x = pos.Placement.x.(c) and y = pos.Placement.y.(c) in
          let bi = max 0 (min (nb - 1) (int_of_float ((x -. chip.Rect.x0) /. bw))) in
          let bj = max 0 (min (nb - 1) (int_of_float ((y -. chip.Rect.y0) /. bh))) in
          let p di dj =
            let i' = bi + di and j' = bj + dj in
            if i' < 0 || i' >= nb || j' < 0 || j' >= nb then 0.0
            else phi.((j' * nb) + i')
          in
          let gx = (p 1 0 -. p (-1) 0) /. (2.0 *. bw) in
          let gy = (p 0 1 -. p 0 (-1)) /. (2.0 *. bh) in
          let x' = x -. (params.step *. gx *. bw *. float_of_int nb) in
          let y' = y -. (params.step *. gy *. bh *. float_of_int nb) in
          (* keep on chip; soft movebound clip like the RQL baseline *)
          let x' = Float.max chip.Rect.x0 (Float.min chip.Rect.x1 x') in
          let y' = Float.max chip.Rect.y0 (Float.min chip.Rect.y1 y') in
          let mb = nl.Netlist.movebound.(c) in
          let x', y' =
            if mb < 0 then (x', y')
            else
              Spread.clip_into
                inst.Fbp_movebound.Instance.movebounds.(mb).Fbp_movebound.Movebound.area
                x' y'
          in
          tx.(c) <- x';
          ty.(c) <- y'
        end
      done;
      targets_x := tx;
      targets_y := ty;
      have_force := true;
      ignore k;
      if Spread.max_overflow_ratio bins <= params.stop_overflow then converged := true
    done;
    let global_time = Fbp_util.Timer.now () -. t0 in
    let t1 = Fbp_util.Timer.now () in
    let regions =
      Fbp_movebound.Regions.decompose ~chip inst.Fbp_movebound.Instance.movebounds
    in
    ignore
      (Fbp_legalize.Legalizer.run ~movebound_aware:false inst regions pos
         ~piece_of_cell:(Array.make (Netlist.n_cells nl) (-1))
         ~grid:None);
    let legalize_time = Fbp_util.Timer.now () -. t1 in
    Ok
      {
        placement = pos;
        iterations = !iter;
        global_time;
        legalize_time;
        hpwl = Hpwl.total nl pos;
      }
