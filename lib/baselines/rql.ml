(* RQL-style baseline: relaxed quadratic spreading with linearization
   (after Viswanathan et al., DAC'07 [25]).

   Iterates: quadratic solve with pseudo-net anchors -> capacity-
   proportional cell spreading -> re-anchor cells at their spread positions
   with weights damped by 1/distance (the "linearization").  Movebounds are
   handled *softly*: a cell's spread target is clipped into its admissible
   area, but nothing reserves capacity per movebound — which is exactly why
   this family of placers can end up with movebound violations on hard
   instances (Tables IV/V of the paper).

   Legalization is row-based but *not* flow-partitioned: cells are grouped
   by the region their final global position lies in, and spills ignore
   movebound admissibility.  Remaining violations are counted by the
   harness. *)

open Fbp_netlist

type params = {
  max_iterations : int;
  theta : float;  (* spreading damping *)
  anchor_base : float;
  stop_overflow : float;  (* stop when max bin utilization ratio below *)
  bins_per_axis : int;  (* 0 = auto *)
}

let default_params =
  {
    max_iterations = 60;
    theta = 0.8;
    anchor_base = 0.05;
    stop_overflow = 1.03;
    bins_per_axis = 0;
  }

type report = {
  placement : Placement.t;
  iterations : int;
  global_time : float;
  legalize_time : float;
  hpwl : float;  (* legal placement HPWL *)
}

(* bins at roughly 10 rows per side, matching the granularity density is
   judged at (the ISPD scoring and the FBP window floor) *)
let auto_bins (design : Design.t) =
  max 8 (min 64 (Design.n_rows design / 10))

let place ?(params = default_params) (inst0 : Fbp_movebound.Instance.t) =
  match Fbp_movebound.Instance.normalize inst0 with
  | Error e -> Error e
  | Ok inst ->
    let design = inst.Fbp_movebound.Instance.design in
    let nl = design.Design.netlist in
    let t0 = Fbp_util.Timer.now () in
    let nb =
      if params.bins_per_axis > 0 then params.bins_per_axis else auto_bins design
    in
    let pos = Placement.copy design.Design.initial in
    let cfg = Fbp_core.Config.default in
    (* admissible area per class, for the soft clip *)
    let k = Fbp_movebound.Instance.n_movebounds inst in
    let class_area =
      Array.init (k + 1) (fun m ->
          if m = k then begin
            (* unconstrained: chip minus exclusive areas *)
            let excl =
              Array.fold_left
                (fun acc (mb : Fbp_movebound.Movebound.t) ->
                  if Fbp_movebound.Movebound.is_exclusive mb then
                    Fbp_geometry.Rect_set.union acc mb.Fbp_movebound.Movebound.area
                  else acc)
                Fbp_geometry.Rect_set.empty inst.Fbp_movebound.Instance.movebounds
            in
            Fbp_geometry.Rect_set.subtract
              (Fbp_geometry.Rect_set.of_rect design.Design.chip)
              excl
          end
          else inst.Fbp_movebound.Instance.movebounds.(m).Fbp_movebound.Movebound.area)
    in
    let anchors_x = ref (Array.copy pos.Placement.x) in
    let anchors_y = ref (Array.copy pos.Placement.y) in
    let anchor_weight = ref 0.0 in
    let iter = ref 0 in
    let converged = ref false in
    while (not !converged) && !iter < params.max_iterations do
      incr iter;
      (* quadratic solve with linearized pseudo-net anchors *)
      let ax = !anchors_x and ay = !anchors_y and aw = !anchor_weight in
      ignore
        (Fbp_core.Qp.solve_global cfg nl pos ~anchor:(fun c ->
             if aw <= 0.0 then None
             else begin
               (* linearization: weight / max(1, distance to anchor) *)
               let d =
                 Float.abs (pos.Placement.x.(c) -. ax.(c))
                 +. Float.abs (pos.Placement.y.(c) -. ay.(c))
               in
               let w = aw /. Float.max 1.0 d in
               Some (w, ax.(c), w, ay.(c))
             end) ());
      (* spreading *)
      let tx, ty, bins = Spread.targets design pos ~nx:nb ~ny:nb ~theta:params.theta in
      (* soft movebound clip *)
      for c = 0 to Netlist.n_cells nl - 1 do
        if not nl.Netlist.fixed.(c) then begin
          let mb = nl.Netlist.movebound.(c) in
          let m = if mb < 0 then k else mb in
          let x, y = Spread.clip_into class_area.(m) tx.(c) ty.(c) in
          tx.(c) <- x;
          ty.(c) <- y
        end
      done;
      anchors_x := tx;
      anchors_y := ty;
      anchor_weight :=
        params.anchor_base *. (1.0 +. (0.3 *. float_of_int !iter));
      (* move cells toward their targets (damped) *)
      for c = 0 to Netlist.n_cells nl - 1 do
        if not nl.Netlist.fixed.(c) then begin
          pos.Placement.x.(c) <- tx.(c);
          pos.Placement.y.(c) <- ty.(c)
        end
      done;
      if Spread.max_overflow_ratio bins <= params.stop_overflow then converged := true
    done;
    let global_time = Fbp_util.Timer.now () -. t0 in
    (* legalization: row-based, grouped by current position, spills ignore
       movebounds (see module header) *)
    let t1 = Fbp_util.Timer.now () in
    let regions =
      Fbp_movebound.Regions.decompose ~chip:design.Design.chip
        inst.Fbp_movebound.Instance.movebounds
    in
    ignore
      (Fbp_legalize.Legalizer.run ~movebound_aware:false inst regions pos
         ~piece_of_cell:(Array.make (Netlist.n_cells nl) (-1))
         ~grid:None);
    let legalize_time = Fbp_util.Timer.now () -. t1 in
    Ok
      {
        placement = pos;
        iterations = !iter;
        global_time;
        legalize_time;
        hpwl = Hpwl.total nl pos;
      }
