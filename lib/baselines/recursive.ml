(* Classic recursive partitioning (old BonnPlace style [5], [27]) — the
   ablation comparator for Section IV's claims.

   Each window is recursively quadrisected: a QP restores connectivity, then
   the window's cells are split among its four subwindows by the
   transportation algorithm with subwindow capacities.  All decisions are
   *local to the window*: once cells are committed to a subwindow they never
   leave it, which is precisely the drawback the flow-based partitioning
   removes (local rounding can make a subproblem infeasible, and there is no
   global view).  Cells that do not fit their subwindow are force-assigned
   to the least-loaded one ("rounding effects" in the paper's words); the
   count of such overflow events is reported. *)

open Fbp_geometry
open Fbp_netlist

type report = {
  placement : Placement.t;
  overflow_events : int;  (* cells force-assigned past subwindow capacity *)
  global_time : float;
  hpwl : float;  (* global (pre-legalization) *)
}

let place ?(config = Fbp_core.Config.default) (inst0 : Fbp_movebound.Instance.t) =
  match Fbp_movebound.Instance.normalize inst0 with
  | Error e -> Error e
  | Ok inst ->
    let design = inst.Fbp_movebound.Instance.design in
    let nl = design.Design.netlist in
    let t0 = Fbp_util.Timer.now () in
    let density = Fbp_core.Density.create design in
    let pos = Placement.copy design.Design.initial in
    let chip_center = Rect.center design.Design.chip in
    ignore
      (Fbp_core.Qp.solve_global config nl pos ~anchor:(fun _ ->
           Some (1e-6, chip_center.Point.x, 1e-6, chip_center.Point.y)) ());
    let overflow_events = ref 0 in
    let max_level = Fbp_core.Placer.n_levels config design in
    (* window assignment per cell, refined level by level *)
    let assigned = Array.make (Netlist.n_cells nl) (Rect.of_corner ~x:design.Design.chip.Rect.x0 ~y:design.Design.chip.Rect.y0 ~w:(Rect.width design.Design.chip) ~h:(Rect.height design.Design.chip)) in
    let anchor_pos = ref (Placement.copy pos) in
    for level = 1 to max_level do
      let anchor_w =
        config.Fbp_core.Config.anchor_base
        *. (config.Fbp_core.Config.anchor_growth ** float_of_int level)
      in
      if level > 1 then begin
        let ap = !anchor_pos in
        ignore
          (Fbp_core.Qp.solve_global config nl pos ~anchor:(fun c ->
               Some (anchor_w, ap.Placement.x.(c), anchor_w, ap.Placement.y.(c)))
             ())
      end;
      (* group cells by current assigned window, then split each window *)
      let groups = Hashtbl.create 64 in
      for c = 0 to Netlist.n_cells nl - 1 do
        if not nl.Netlist.fixed.(c) then begin
          let key = assigned.(c) in
          Hashtbl.replace groups key
            (c :: (try Hashtbl.find groups key with Not_found -> []))
        end
      done;
      Hashtbl.iter
        (fun (win : Rect.t) cells ->
          let cells = Array.of_list (List.sort Int.compare cells) in
          (* quadrants *)
          let cx = (win.Rect.x0 +. win.Rect.x1) /. 2.0 in
          let cy = (win.Rect.y0 +. win.Rect.y1) /. 2.0 in
          let quads =
            [|
              Rect.make ~x0:win.Rect.x0 ~y0:win.Rect.y0 ~x1:cx ~y1:cy;
              Rect.make ~x0:cx ~y0:win.Rect.y0 ~x1:win.Rect.x1 ~y1:cy;
              Rect.make ~x0:win.Rect.x0 ~y0:cy ~x1:cx ~y1:win.Rect.y1;
              Rect.make ~x0:cx ~y0:cy ~x1:win.Rect.x1 ~y1:win.Rect.y1;
            |]
          in
          let caps = Array.map (Fbp_core.Density.capacity_rect density) quads in
          (* movebound admissibility: cell of movebound M may go to a
             quadrant only if the quadrant intersects A(M); purely local,
             no global capacity reasoning (the baseline's weakness) *)
          let admissible i q =
            let mb = nl.Netlist.movebound.(i) in
            if mb < 0 then true
            else
              Rect_set.overlaps_rect
                inst.Fbp_movebound.Instance.movebounds.(mb).Fbp_movebound.Movebound.area
                q
          in
          let cost i j =
            if not (admissible cells.(i) quads.(j)) then infinity
            else Rect.dist_l1_point quads.(j) (Placement.get pos cells.(i))
          in
          let sizes = Array.map (fun c -> Netlist.size nl c) cells in
          let problem =
            { Fbp_flow.Transport.sizes; capacities = caps; cost }
          in
          let choice =
            match Fbp_flow.Transport.solve problem with
            | Ok a -> Fbp_flow.Transport.round_integral a
            | Error _ ->
              (* some cell has no admissible quadrant: fall back greedily *)
              Array.mapi
                (fun i _ ->
                  let best = ref 0 and bestc = ref infinity in
                  for j = 0 to 3 do
                    let c = cost i j in
                    let c = if Float.equal c infinity then 1e18 else c in
                    if c < !bestc then begin
                      bestc := c;
                      best := j
                    end
                  done;
                  !best)
                cells
          in
          (* commit: clamp into quadrant; count capacity overruns *)
          let load = Array.make 4 0.0 in
          Array.iteri
            (fun i c ->
              let j = if choice.(i) >= 0 then choice.(i) else 0 in
              load.(j) <- load.(j) +. sizes.(i);
              if load.(j) > caps.(j) +. 1e-6 then incr overflow_events;
              assigned.(c) <- quads.(j);
              let p = Rect.clamp_point quads.(j) (Placement.get pos c) in
              Placement.set pos c p)
            cells)
        groups;
      anchor_pos := Placement.copy pos
    done;
    Ok
      {
        placement = pos;
        overflow_events = !overflow_events;
        global_time = Fbp_util.Timer.now () -. t0;
        hpwl = Hpwl.total nl pos;
      }
