(** Descriptive statistics used by the harness and tests. *)

val mean : float array -> float
val sum : float array -> float

(** Raises [Invalid_argument] on an empty array or NaN input. *)
val min_max : float array -> float * float

(** Sample standard deviation (n−1 denominator); 0 for fewer than 2 values. *)
val stddev : float array -> float

(** [percentile a p] with [p] clamped to [0,1], linear interpolation.
    Raises [Invalid_argument] on an empty array, NaN input, or NaN [p]. *)
val percentile : float array -> float -> float

(** Geometric mean of strictly positive values. *)
val geomean : float array -> float
