(** Process memory gauges for provenance and profiling artifacts. *)

(** Peak resident set size in kilobytes ([VmHWM] from [/proc/self/status]).
    [None] off Linux or when the field is unreadable — callers must treat
    it as an optional gauge, never a hard requirement. *)
val peak_rss_kb : unit -> int option

(** Parse one [/proc/self/status] line; exposed for tests. *)
val parse_vmhwm : string -> int option
