(* Plain-text table rendering for the benchmark harness: every reproduced
   paper table is printed as an aligned ASCII grid with a title line. *)

type align = Left | Right

type t = {
  title : string;
  header : string list;
  aligns : align list;
  mutable rows : string list list;  (* reverse order *)
}

let create ~title ~header ?aligns () =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length header then
        invalid_arg "Table.create: aligns/header length mismatch";
      a
    | None -> List.map (fun _ -> Right) header
  in
  { title; header; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: wrong number of columns";
  t.rows <- row :: t.rows

(* Separator row rendered as a dashed line. *)
let add_sep t = t.rows <- [] :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length h) rows)
      t.header
  in
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        let a = List.nth t.aligns i in
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad a w cell))
      cells;
    Buffer.add_string buf " |\n"
  in
  let dash () =
    Buffer.add_char buf '+';
    List.iter
      (fun w -> Buffer.add_string buf (String.make (w + 2) '-'); Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  dash ();
  line t.header;
  dash ();
  List.iter (function [] -> dash () | row -> line row) rows;
  dash ();
  Buffer.contents buf

(* Common cell formatters. *)
let fmt_float ?(digits = 2) v = Printf.sprintf "%.*f" digits v
let fmt_pct v = Printf.sprintf "%.1f%%" (100.0 *. v)
let fmt_int v = string_of_int v
let fmt_k v =
  if v >= 1_000_000 then Printf.sprintf "%.1fM" (float_of_int v /. 1e6)
  else if v >= 1000 then Printf.sprintf "%dk" (v / 1000)
  else string_of_int v
