(** Deterministic fork-join parallelism over the persistent domain pool
    ({!Pool}).

    Work is split into contiguous chunks joined in index order, so results
    equal the sequential execution — the determinism property the paper's
    parallel realization preserves.  Worker domains are spawned once and
    reused across calls. *)

(** Set the default number of domains used when [?domains] is omitted
    (delegates to {!Pool.set_default_domains}). *)
val set_default_domains : int -> unit

val get_default_domains : unit -> int

(** Parallel [Array.map]. [f] must be safe to run concurrently on distinct
    indices.  If [f] raises in any chunk, every chunk still runs and the
    first exception (in chunk order) is re-raised — no worker domain is
    ever lost and the pool stays reusable. *)
val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** Parallel [Array.iter]. [f] must only touch state private to its index. *)
val iter_array : ?domains:int -> ('a -> unit) -> 'a array -> unit

(** Parallel [Array.init]. *)
val init : ?domains:int -> int -> (int -> 'a) -> 'a array
