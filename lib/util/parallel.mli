(** Deterministic fork-join parallelism over OCaml 5 domains.

    Work is split into contiguous chunks joined in index order, so results
    equal the sequential execution — the determinism property the paper's
    parallel realization preserves. *)

(** Set the default number of domains used when [?domains] is omitted. *)
val set_default_domains : int -> unit

val get_default_domains : unit -> int

(** Parallel [Array.map]. [f] must be safe to run concurrently on distinct
    indices.  If [f] raises in any chunk, all spawned domains are still
    joined before the first exception (in chunk order) is re-raised — no
    domain is ever leaked. *)
val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** Parallel [Array.iter]. [f] must only touch state private to its index. *)
val iter_array : ?domains:int -> ('a -> unit) -> 'a array -> unit

(** Parallel [Array.init]. *)
val init : ?domains:int -> int -> (int -> 'a) -> 'a array
