(** Persistent worker-domain pool with deterministic chunking.

    Worker domains are spawned once (lazily, up to an internal cap), parked
    on condition variables, and handed to parallel regions from a free
    list: a region costs two mutex handoffs per worker instead of a
    [Domain.spawn]/[join] pair.  Acquisition never blocks — nested regions
    (e.g. a local CG running on a realization worker) find no free workers
    and execute on their own domain, so deadlock is impossible by
    construction.

    Determinism contract: results are bit-identical for any domain count.
    Chunk count and boundaries depend only on the problem size, and
    {!reduce} combines per-chunk partials in a fixed-shape binary tree over
    chunk order; dynamic scheduling affects wall-clock only.

    The default domain count is [FBP_DOMAINS] when set (clamped to the
    pool cap), else [min 8 (Domain.recommended_domain_count ())]. *)

val set_default_domains : int -> unit
val get_default_domains : unit -> int

(** Number of chunks for [n] items at the given [grain] (target items per
    chunk), capped so partial arrays stay tiny.  Pure in [n] and [grain] —
    never a function of the domain count. *)
val n_chunks : grain:int -> int -> int

(** [chunk_bounds ~n ~n_chunks c] is the half-open range of chunk [c]. *)
val chunk_bounds : n:int -> n_chunks:int -> int -> int * int

(** [run_chunks ~domains ~n_chunks body] executes [body c] for every chunk
    [c] in [0, n_chunks), distributing chunks over up to [domains] domains
    (the caller plus free pool workers).  [body] must only write state
    private to its chunk.  If bodies raise, every chunk still runs and the
    first failure in chunk order is re-raised — no worker is ever lost and
    the pool is immediately reusable. *)
val run_chunks : ?domains:int -> n_chunks:int -> (int -> unit) -> unit

(** [fork2 f g] runs the two thunks concurrently when a worker is free
    (and [domains] resolves to at least 2), else sequentially.  If both
    raise, [f]'s exception wins (deterministic precedence). *)
val fork2 : ?domains:int -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b

(** [reduce ~grain ~n chunk combine] computes [chunk lo hi] partials over
    the deterministic chunking of [0, n) and combines them in a fixed-shape
    binary tree over chunk order, so the result is bit-identical for any
    domain count even when [combine] is float addition.  [None] iff
    [n <= 0]. *)
val reduce :
  ?domains:int ->
  grain:int ->
  n:int ->
  (int -> int -> 'a) ->
  ('a -> 'a -> 'a) ->
  'a option

(** Domains the hardware can actually run at once
    ([Domain.recommended_domain_count], at least 1).  Callers sizing
    throughput parallelism should clamp to this: domains beyond the core
    count only time-slice and add wakeup latency.  Correctness never
    depends on it — the determinism contract holds at any domain count. *)
val hardware_domains : int

(** {1 Reusable leases}

    A lease holds acquired workers across many consecutive parallel
    regions (e.g. realization waves): helpers stay resident — spinning
    briefly, then parked — between {!lease_run} calls, so each region
    costs one batch submission instead of a per-region
    acquire/dispatch/release cycle per worker. *)

type lease

(** [lease ~domains ()] acquires up to [domains - 1] free workers as
    resident helpers.  Acquisition never blocks: with no free workers the
    lease has zero helpers and every {!lease_run} executes sequentially.
    Must be paired with {!release_lease}. *)
val lease : ?domains:int -> unit -> lease

(** Number of helper workers held by the lease (0 on an exhausted pool). *)
val lease_helpers : lease -> int

(** [lease_run l ~n_chunks body] executes [body c] for every chunk [c] in
    [0, n_chunks) across the lease's helpers plus the calling domain.
    Same contract as {!run_chunks}: [body] writes only chunk-private
    state; every chunk runs even under exceptions and the first failure
    in chunk order is re-raised, leaving the lease reusable.  Raises
    [Invalid_argument] after {!release_lease}. *)
val lease_run : lease -> n_chunks:int -> (int -> unit) -> unit

(** Stops the helpers and returns them to the pool's free list.
    Idempotent. *)
val release_lease : lease -> unit

(** [prewarm n] eagerly spawns (and parks) the workers that [n]-domain
    regions clamped to {!hardware_domains} will actually use, so
    domain-spawn cost never lands inside a timed or latency-sensitive
    path.  Never spawns beyond the core count: every live domain joins
    each minor-GC stop-the-world rendezvous, so surplus parked domains
    measurably tax sequential code on small machines. *)
val prewarm : int -> unit

(** Number of worker domains spawned so far (for tests/metrics). *)
val n_workers_spawned : unit -> int

(** {1 Profiling hook}

    Occupancy telemetry for [Fbp_obs.Profiler]: every worker scheduling
    transition (parked / spinning / running a batch, per-chunk start and
    stop, lease submission) is pushed through one optional process-global
    hook.  Disabled cost is a single [Atomic.get] per transition, and
    transitions happen per wave / per chunk — never per element. *)

type profile_kind =
  | Pe_park_begin  (** worker blocks on its condition variable *)
  | Pe_park_end
  | Pe_spin_begin  (** lease helper spinning on the epoch atomic *)
  | Pe_spin_end
  | Pe_run_begin  (** a dispatched job / lease batch starts executing *)
  | Pe_run_end
  | Pe_chunk_begin of int  (** chunk index within the current region *)
  | Pe_chunk_end of int
  | Pe_submit of int  (** lease batch submitted; payload is the new epoch *)

type profile_event = {
  pe_wid : int;  (** worker id; [-1] is the calling (owner) domain *)
  pe_domain : int;  (** [Domain.self] of the emitting domain *)
  pe_kind : profile_kind;
}

(** Install the hook.  The callback runs on worker domains (sometimes while
    holding a worker's own mutex), so it must be fast, never raise, and
    touch shared state only through a lock or atomics — fbp-lint's
    [domain-safety] rule walks closures passed here like any other pool
    entry point. *)
val set_profile_hook : (profile_event -> unit) -> unit

val clear_profile_hook : unit -> unit

(** Worker handoffs since process start: one per parked-worker job
    dispatch plus one per {!lease_run} batch submission.  Callers can
    record deltas to assert dispatch amortization (e.g. realization's
    [pool.dispatches] counter). *)
val n_dispatches : unit -> int
