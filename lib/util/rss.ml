(* Peak resident set size, read from /proc/self/status (VmHWM).  Linux
   only by design: the profiler and run-record provenance treat it as an
   optional gauge, and [None] on other platforms is the honest answer. *)

let parse_vmhwm line =
  let prefix = "VmHWM:" in
  let np = String.length prefix in
  if String.length line > np && String.sub line 0 np = prefix then begin
    let rest = String.sub line np (String.length line - np) in
    (* the field reads "VmHWM:   12345 kB" *)
    let num =
      match String.index_opt rest 'k' with
      | Some i -> String.sub rest 0 i
      | None -> rest
    in
    int_of_string_opt (String.trim num)
  end
  else None

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> None
          | line -> (
            match parse_vmhwm line with Some kb -> Some kb | None -> go ())
        in
        go ())
