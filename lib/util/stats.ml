(* Small descriptive-statistics helpers used by the harness and tests. *)

let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let sum = Array.fold_left ( +. ) 0.0

let has_nan = Array.exists Float.is_nan

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty";
  if has_nan a then invalid_arg "Stats.min_max: NaN input";
  Array.fold_left
    (fun (lo, hi) v -> (Float.min lo v, Float.max hi v))
    (a.(0), a.(0)) a

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun acc v -> acc +. ((v -. m) *. (v -. m))) 0.0 a in
    sqrt (acc /. float_of_int (n - 1))
  end

(* Percentile with linear interpolation; [p] clamped to [0, 1].  NaN (in
   the data or as [p]) is rejected: polymorphic [compare] sorts NaN
   arbitrarily and an unclamped [p] would index out of bounds. *)
let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if has_nan a then invalid_arg "Stats.percentile: NaN input";
  if Float.is_nan p then invalid_arg "Stats.percentile: NaN p";
  let p = Float.max 0.0 (Float.min 1.0 p) in
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

(* Geometric mean of strictly positive values — the standard aggregate for
   normalized HPWL ratios. *)
let geomean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc v -> acc +. log v) 0.0 a in
    exp (acc /. float_of_int n)
  end
