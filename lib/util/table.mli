(** Aligned ASCII table rendering for the benchmark harness. *)

type align = Left | Right

type t

(** [create ~title ~header ()] starts an empty table. [aligns] defaults to
    all-[Right]. Raises [Invalid_argument] on a length mismatch. *)
val create : title:string -> header:string list -> ?aligns:align list -> unit -> t

(** Append a row; must have as many cells as the header. *)
val add_row : t -> string list -> unit

(** Append a horizontal separator. *)
val add_sep : t -> unit

(** Render to a string (ends with a newline after the final rule); the
    caller decides where it goes — lib code never prints. *)
val render : t -> string

val fmt_float : ?digits:int -> float -> string

(** [fmt_pct 0.993] is ["99.3%"]. *)
val fmt_pct : float -> string

val fmt_int : int -> string

(** Compact thousands formatting: [fmt_k 2578246] is ["2578k"]. *)
val fmt_k : int -> string
