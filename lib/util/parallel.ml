(* Deterministic fork-join parallelism over the persistent domain pool.

   The FBP realization (paper Section IV-B) processes independent external
   flow edges in parallel "waves": within a wave, work items touch disjoint
   coarse windows, so they commute.  We split each wave into contiguous
   chunks keyed by index and join results in index order, which makes the
   result identical to the sequential execution — the determinism property
   the paper emphasizes ("preserves deterministic behavior").

   Since PR 5 the execution runs on [Fbp_util.Pool]: worker domains are
   spawned once and reused, so a wave costs mutex handoffs instead of
   [Domain.spawn]/[join] pairs.  Exception semantics are unchanged — every
   chunk runs, all workers survive, and the first failure in chunk order is
   re-raised. *)

let set_default_domains = Pool.set_default_domains
let get_default_domains = Pool.get_default_domains

(* [map_array ~domains f a]: like [Array.map f a] but evaluated over
   contiguous index chunks on the pool.  [f] must be safe to run
   concurrently on distinct indices.  Results are assembled in index
   order. *)
let map_array ?domains f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let d = match domains with Some d -> max 1 d | None -> Pool.get_default_domains () in
    if d = 1 || n = 1 then Array.map f a
    else begin
      let k = min d n in
      let parts = Array.make k [||] in
      Pool.run_chunks ~domains:d ~n_chunks:k (fun c ->
          let lo, hi = Pool.chunk_bounds ~n ~n_chunks:k c in
          parts.(c) <- Array.init (hi - lo) (fun i -> f a.(lo + i)));
      let out = Array.make n parts.(0).(0) in
      let cursor = ref 0 in
      Array.iter
        (fun part ->
          Array.blit part 0 out !cursor (Array.length part);
          cursor := !cursor + Array.length part)
        parts;
      out
    end
  end

(* [iter_array ~domains f a]: parallel [Array.iter]; [f] must only write to
   state private to its index (e.g. disjoint slices of shared arrays). *)
let iter_array ?domains f a =
  let n = Array.length a in
  if n > 0 then begin
    let d = match domains with Some d -> max 1 d | None -> Pool.get_default_domains () in
    if d = 1 || n = 1 then Array.iter f a
    else begin
      let k = min d n in
      Pool.run_chunks ~domains:d ~n_chunks:k (fun c ->
          let lo, hi = Pool.chunk_bounds ~n ~n_chunks:k c in
          for i = lo to hi - 1 do
            f a.(i)
          done)
    end
  end

(* [init ~domains n f]: parallel [Array.init]. *)
let init ?domains n f =
  map_array ?domains f (Array.init n (fun i -> i))
