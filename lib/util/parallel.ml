(* Deterministic fork-join parallelism over OCaml 5 domains.

   The FBP realization (paper Section IV-B) processes independent external
   flow edges in parallel "waves": within a wave, work items touch disjoint
   coarse windows, so they commute.  We split each wave into contiguous
   chunks, run one domain per chunk and join in order, which makes the result
   identical to the sequential execution — the determinism property the paper
   emphasizes ("preserves deterministic behavior"). *)

let default_domains =
  Atomic.make (max 1 (min 8 (Domain.recommended_domain_count ())))

let set_default_domains n = Atomic.set default_domains (max 1 n)

let get_default_domains () = Atomic.get default_domains

(* [map_array ~domains f a]: like [Array.map f a] but evaluated by [domains]
   domains over contiguous chunks.  [f] must be safe to run concurrently on
   distinct indices.  Results are assembled in index order. *)
let map_array ?domains f a =
  let domains = match domains with Some d -> max 1 d | None -> Atomic.get default_domains in
  let n = Array.length a in
  if n = 0 then [||]
  else if domains = 1 || n = 1 then Array.map f a
  else begin
    let k = min domains n in
    let chunk = (n + k - 1) / k in
    let work lo hi = Array.init (hi - lo) (fun i -> f a.(lo + i)) in
    let spawned =
      List.init (k - 1) (fun d ->
          let lo = (d + 1) * chunk in
          let hi = min n (lo + chunk) in
          if lo >= hi then None
          else Some (Domain.spawn (fun () -> (lo, work lo hi))))
    in
    (* Run the main-thread chunk and join *every* spawned domain before
       propagating any exception — an early re-raise would leak running
       domains (and any exception they raise in turn).  The first failure in
       chunk order (main chunk, then spawned chunks) wins. *)
    let main =
      try Ok (work 0 (min chunk n))
      with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    let joined =
      List.map
        (function
          | None -> None
          | Some d ->
            Some
              (try Ok (Domain.join d)
               with e -> Error (e, Printexc.get_raw_backtrace ())))
        spawned
    in
    let reraise (e, bt) = Printexc.raise_with_backtrace e bt in
    (match main with
     | Error eb -> reraise eb
     | Ok first ->
       (match
          List.find_map (function Some (Error eb) -> Some eb | _ -> None) joined
        with
        | Some eb -> reraise eb
        | None ->
          let out = Array.make n first.(0) in
          Array.blit first 0 out 0 (Array.length first);
          List.iter
            (function
              | Some (Ok (lo, part)) -> Array.blit part 0 out lo (Array.length part)
              | _ -> ())
            joined;
          out))
  end

(* [iter_array ~domains f a]: parallel [Array.iter]; [f] must only write to
   state private to its index (e.g. disjoint slices of shared arrays). *)
let iter_array ?domains f a =
  ignore (map_array ?domains (fun x -> f x) a)

(* [init ~domains n f]: parallel [Array.init]. *)
let init ?domains n f =
  map_array ?domains f (Array.init n (fun i -> i))
