(* Persistent worker-domain pool with deterministic chunking.

   [Domain.spawn] costs tens of microseconds and a GC handshake; the seed
   paid it for every parallel realization wave and would have paid it per
   CG kernel call.  This pool spawns each worker domain once, parks it on a
   condition variable, and hands out idle workers to parallel regions from
   a free list — so a region costs two mutex handoffs per worker instead of
   a spawn/join pair, and nested regions (a realization worker running a
   local CG) simply find no free workers and run on their own domain: no
   blocking acquire, hence no deadlock by construction.

   Determinism contract (the property PR 4's lint and sanitizer enforce):
   results must be bit-identical for any domain count.  Two mechanisms:

   - work is split into chunks whose count and boundaries depend only on
     the problem size ([n_chunks] / [chunk_bounds]), never on how many
     domains execute them;
   - reductions combine per-chunk partials in a fixed-shape binary tree
     over the chunk index order ([reduce]), so float summation order is a
     function of the size alone.

   Which domain executes which chunk is scheduled dynamically (an atomic
   cursor), but every chunk writes only its own slot, so scheduling cannot
   influence results — only wall-clock. *)

type worker = {
  wid : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;  (* guarded by [mutex] *)
}

(* Completion latch of one parallel region. *)
type region = {
  rmutex : Mutex.t;
  rcond : Condition.t;
  mutable pending : int;
}

(* Hard cap on pool workers (domains beyond the caller's).  Far above any
   sane [FBP_DOMAINS]; placement kernels are memory-bound long before. *)
let max_workers = 30

type state = {
  lock : Mutex.t;
  workers : worker option array;  (* slot i <-> worker i, spawned lazily *)
  mutable n_spawned : int;
  mutable free : int list;  (* idle worker ids *)
}

let state =
  {
    lock = Mutex.create ();
    workers = Array.make max_workers None;
    n_spawned = 0;
    free = [];
  }

let default_domains =
  let fallback () = max 1 (min 8 (Domain.recommended_domain_count ())) in
  Atomic.make
    (match Sys.getenv_opt "FBP_DOMAINS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n (max_workers + 1)
      | _ -> fallback ())
    | None -> fallback ())

let set_default_domains n =
  Atomic.set default_domains (max 1 (min n (max_workers + 1)))

let get_default_domains () = Atomic.get default_domains

let resolve = function
  | Some d -> max 1 (min d (max_workers + 1))
  | None -> Atomic.get default_domains

(* Domains the hardware can actually run at once.  Callers sizing
   *throughput* parallelism (the realization lease) clamp to this: extra
   domains beyond the core count only time-slice one core and add wakeup
   latency — the PR7 anti-scaling root.  Correctness never depends on it
   (the determinism contract holds at any domain count). *)
let hardware_domains = max 1 (Domain.recommended_domain_count ())

(* Worker handoffs since process start: one per [dispatch] (a job handed to
   a parked worker) plus one per [lease_run] submission (a whole batch
   enters the lease's helpers as a single event).  Exposed so callers can
   assert dispatch amortization — e.g. realization records the per-call
   delta as the [pool.dispatches] counter. *)
let dispatches = Atomic.make 0

let n_dispatches () = Atomic.get dispatches

(* -------------------------------------------------------- profiling hook *)

(* Occupancy telemetry for the profiler: every scheduling transition a
   worker makes (parked / spinning / running, per-chunk start/stop, lease
   batch submission) is pushed through one optional hook.  The disabled
   path is a single [Atomic.get] per transition — the same budget as an
   [Obs] probe — and transitions happen per wave / per chunk, never per
   element, so an armed hook stays out of the kernels' way too. *)

type profile_kind =
  | Pe_park_begin  (* worker blocks on its condition variable *)
  | Pe_park_end
  | Pe_spin_begin  (* lease helper spinning on the epoch atomic *)
  | Pe_spin_end
  | Pe_run_begin  (* a dispatched job / lease batch starts executing *)
  | Pe_run_end
  | Pe_chunk_begin of int  (* chunk index within the current region *)
  | Pe_chunk_end of int
  | Pe_submit of int  (* lease batch submitted; payload is the new epoch *)

type profile_event = {
  pe_wid : int;  (* worker id; -1 is the calling (owner) domain *)
  pe_domain : int;  (* [Domain.self] of the emitting domain *)
  pe_kind : profile_kind;
}

let profile_hook : (profile_event -> unit) option Atomic.t = Atomic.make None
let set_profile_hook f = Atomic.set profile_hook (Some f)
let clear_profile_hook () = Atomic.set profile_hook None

let[@inline] emit pe_wid pe_kind =
  match Atomic.get profile_hook with
  | None -> ()
  | Some f -> f { pe_wid; pe_domain = (Domain.self () :> int); pe_kind }

(* Workers loop forever: jobs are exception-safe wrappers built by
   [run_chunks]/[fork2], so nothing can escape into the loop.  A worker
   parked in [Condition.wait] does not keep the process alive: the runtime
   exits with the main domain. *)
let rec worker_loop (w : worker) =
  Mutex.lock w.mutex;
  if w.job = None then begin
    emit w.wid Pe_park_begin;
    while w.job = None do
      Condition.wait w.cond w.mutex
    done;
    emit w.wid Pe_park_end
  end;
  let job = w.job in
  w.job <- None;
  Mutex.unlock w.mutex;
  (match job with Some j -> j () | None -> ());
  worker_loop w

let spawn_worker wid =
  let w = { wid; mutex = Mutex.create (); cond = Condition.create (); job = None } in
  ignore (Domain.spawn (fun () -> worker_loop w) : unit Domain.t);
  w

(* Take up to [k] idle workers without blocking, spawning new domains while
   below the cap.  Returns fewer (possibly none) when the pool is busy —
   the caller then runs those shares itself. *)
let acquire k =
  if k <= 0 then []
  else begin
    Mutex.lock state.lock;
    let rec go k acc =
      if k = 0 then acc
      else
        match state.free with
        | id :: tl ->
          state.free <- tl;
          let w = match state.workers.(id) with Some w -> w | None -> assert false in
          go (k - 1) (w :: acc)
        | [] ->
          if state.n_spawned < max_workers then begin
            let id = state.n_spawned in
            let w = spawn_worker id in
            state.workers.(id) <- Some w;
            state.n_spawned <- state.n_spawned + 1;
            go (k - 1) (w :: acc)
          end
          else acc
    in
    let ws = go k [] in
    Mutex.unlock state.lock;
    ws
  end

let release ws =
  Mutex.lock state.lock;
  List.iter (fun w -> state.free <- w.wid :: state.free) ws;
  Mutex.unlock state.lock

let dispatch w job =
  Atomic.incr dispatches;
  Mutex.lock w.mutex;
  w.job <- Some job;
  Condition.signal w.cond;
  Mutex.unlock w.mutex

let region_done r =
  Mutex.lock r.rmutex;
  r.pending <- r.pending - 1;
  if r.pending = 0 then Condition.signal r.rcond;
  Mutex.unlock r.rmutex

let region_wait r =
  Mutex.lock r.rmutex;
  while r.pending > 0 do
    Condition.wait r.rcond r.rmutex
  done;
  Mutex.unlock r.rmutex

let region_reset r n =
  Mutex.lock r.rmutex;
  r.pending <- n;
  Mutex.unlock r.rmutex

(* ------------------------------------------------ deterministic chunking *)

(* Chunk-count cap: partial arrays stay tiny and the reduction tree shallow
   while chunks keep growing with n.  Must stay a pure function of n. *)
let max_chunks = 64

let n_chunks ~grain n =
  if n <= 0 then 0 else min max_chunks ((n + grain - 1) / grain)

let chunk_bounds ~n ~n_chunks c = (c * n / n_chunks, (c + 1) * n / n_chunks)

(* ------------------------------------------------------ parallel regions *)

let reraise (e, bt) = Printexc.raise_with_backtrace e bt

(* First recorded failure in chunk order; every chunk always runs (no
   cancellation), so which exception wins is deterministic. *)
let check_errors errs =
  match Array.find_map Fun.id errs with Some eb -> reraise eb | None -> ()

let run_chunks ?domains ~n_chunks:k body =
  if k > 0 then begin
    let d = min (resolve domains) k in
    if d <= 1 then
      for c = 0 to k - 1 do
        body c
      done
    else begin
      let helpers = acquire (d - 1) in
      if helpers = [] then
        for c = 0 to k - 1 do
          body c
        done
      else begin
        let errs = Array.make k None in
        let next = Atomic.make 0 in
        let rec drain wid =
          let c = Atomic.fetch_and_add next 1 in
          if c < k then begin
            emit wid (Pe_chunk_begin c);
            (try body c
             with e -> errs.(c) <- Some (e, Printexc.get_raw_backtrace ()));
            emit wid (Pe_chunk_end c);
            drain wid
          end
        in
        let r =
          { rmutex = Mutex.create (); rcond = Condition.create ();
            pending = List.length helpers }
        in
        List.iter
          (fun w ->
            dispatch w (fun () ->
                emit w.wid Pe_run_begin;
                drain w.wid;
                emit w.wid Pe_run_end;
                region_done r))
          helpers;
        drain (-1);
        region_wait r;
        release helpers;
        check_errors errs
      end
    end
  end

(* ------------------------------------------------------ reusable leases *)

(* A lease holds acquired workers across many consecutive parallel regions
   (realization waves), so a region costs one submission instead of a
   per-wave acquire / dispatch-each-worker / release cycle.  Helpers run a
   resident loop: after draining a submission they spin briefly on the
   epoch atomic (consecutive waves are usually microseconds apart, so the
   next batch lands while they are still hot), then park on a condition
   variable.  Submissions are strictly serialized by the completion latch
   — the owner cannot submit epoch N+1 until every helper finished epoch N
   — so helpers can never miss a batch.  Error semantics are identical to
   [run_chunks]: every chunk runs, the first failure in chunk order is
   re-raised, and the lease stays usable afterwards. *)
type lease = {
  lhelpers : worker list;
  n_helpers : int;
  lmutex : Mutex.t;  (* parks helpers between submissions *)
  lcond : Condition.t;
  lepoch : int Atomic.t;  (* bumped once per submission (and once to stop) *)
  lstop : bool Atomic.t;
  lcursor : int Atomic.t;
  llatch : region;
  (* submission slots: written by the owner strictly between submissions
     (all helpers idle), published by the [lepoch] bump *)
  mutable lk : int;
  mutable lbody : int -> unit;
  mutable lerrs : (exn * Printexc.raw_backtrace) option array;
}

(* ~1–2 µs of [cpu_relax] before parking; waves inside one realization call
   are typically closer together than a futex wakeup costs. *)
let lease_spin_budget = 4096

let lease_drain ?(wid = -1) (l : lease) =
  let k = l.lk and body = l.lbody and errs = l.lerrs in
  let rec go () =
    let c = Atomic.fetch_and_add l.lcursor 1 in
    if c < k then begin
      emit wid (Pe_chunk_begin c);
      (try body c
       with e -> errs.(c) <- Some (e, Printexc.get_raw_backtrace ()));
      emit wid (Pe_chunk_end c);
      go ()
    end
  in
  go ()

let lease_helper (l : lease) wid =
  let rec spin_wait seen spin =
    if Atomic.get l.lepoch = seen && spin > 0 then begin
      Domain.cpu_relax ();
      spin_wait seen (spin - 1)
    end
  in
  let await seen =
    if Atomic.get l.lepoch = seen then begin
      emit wid Pe_spin_begin;
      spin_wait seen lease_spin_budget;
      emit wid Pe_spin_end;
      if Atomic.get l.lepoch = seen then begin
        emit wid Pe_park_begin;
        Mutex.lock l.lmutex;
        while Atomic.get l.lepoch = seen do
          Condition.wait l.lcond l.lmutex
        done;
        Mutex.unlock l.lmutex;
        emit wid Pe_park_end
      end
    end
  in
  let rec go seen =
    await seen;
    let e = Atomic.get l.lepoch in
    if Atomic.get l.lstop then region_done l.llatch
    else begin
      emit wid Pe_run_begin;
      lease_drain ~wid l;
      emit wid Pe_run_end;
      region_done l.llatch;
      go e
    end
  in
  go 0

let lease ?domains () =
  let d = resolve domains in
  let helpers = acquire (d - 1) in
  let l =
    {
      lhelpers = helpers;
      n_helpers = List.length helpers;
      lmutex = Mutex.create ();
      lcond = Condition.create ();
      lepoch = Atomic.make 0;
      lstop = Atomic.make false;
      lcursor = Atomic.make 0;
      llatch =
        { rmutex = Mutex.create (); rcond = Condition.create (); pending = 0 };
      lk = 0;
      lbody = ignore;
      lerrs = [||];
    }
  in
  List.iter (fun w -> dispatch w (fun () -> lease_helper l w.wid)) helpers;
  l

let lease_helpers l = l.n_helpers

let lease_submit (l : lease) =
  Mutex.lock l.lmutex;
  Atomic.incr l.lepoch;
  Condition.broadcast l.lcond;
  Mutex.unlock l.lmutex

let lease_run (l : lease) ~n_chunks:k body =
  if k > 0 then begin
    if Atomic.get l.lstop then
      invalid_arg "Pool.lease_run: lease was already released"
    else if l.n_helpers = 0 || k = 1 then
      for c = 0 to k - 1 do
        body c
      done
    else begin
      l.lk <- k;
      l.lbody <- body;
      l.lerrs <- Array.make k None;
      Atomic.set l.lcursor 0;
      region_reset l.llatch l.n_helpers;
      Atomic.incr dispatches;
      emit (-1) (Pe_submit (Atomic.get l.lepoch + 1));
      lease_submit l;
      emit (-1) Pe_run_begin;
      lease_drain l;
      emit (-1) Pe_run_end;
      region_wait l.llatch;
      let errs = l.lerrs in
      l.lbody <- ignore;
      l.lerrs <- [||];
      check_errors errs
    end
  end

let release_lease (l : lease) =
  if not (Atomic.get l.lstop) then begin
    if l.n_helpers > 0 then begin
      region_reset l.llatch l.n_helpers;
      Atomic.set l.lstop true;
      lease_submit l;
      region_wait l.llatch;
      release l.lhelpers
    end
    else Atomic.set l.lstop true
  end

(* Spawn (and immediately park) the helper workers that [n]-domain regions
   clamped to the hardware will actually use, so domain-spawn cost never
   lands inside a timed or latency-sensitive path.  Deliberately capped at
   [hardware_domains - 1]: on OCaml 5 every live domain — parked or not —
   joins each minor-GC stop-the-world rendezvous, so surplus domains tax
   *sequential* code on small machines (measured ~4x on one core with 7
   parked workers). *)
let prewarm n = release (acquire (min (min n hardware_domains) max_workers - 1))

let fork2 ?domains f g =
  if resolve domains < 2 then
    let a = f () in
    let b = g () in
    (a, b)
  else
    match acquire 1 with
    | [] ->
      let a = f () in
      let b = g () in
      (a, b)
    | w :: _ as ws ->
      let res_g = ref None in
      let err_g = ref None in
      let r =
        { rmutex = Mutex.create (); rcond = Condition.create (); pending = 1 }
      in
      dispatch w (fun () ->
          emit w.wid Pe_run_begin;
          (try res_g := Some (g ())
           with e -> err_g := Some (e, Printexc.get_raw_backtrace ()));
          emit w.wid Pe_run_end;
          region_done r);
      let res_f =
        try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      region_wait r;
      release ws;
      (* deterministic precedence: the first task's failure wins *)
      (match res_f with
      | Error eb -> reraise eb
      | Ok a -> (
        match !err_g with
        | Some eb -> reraise eb
        | None -> (
          match !res_g with Some b -> (a, b) | None -> assert false)))

let reduce ?domains ~grain ~n chunk combine =
  let k = n_chunks ~grain n in
  if k = 0 then None
  else if k = 1 then Some (chunk 0 n)
  else begin
    let parts = Array.make k None in
    run_chunks ?domains ~n_chunks:k (fun c ->
        let lo, hi = chunk_bounds ~n ~n_chunks:k c in
        parts.(c) <- Some (chunk lo hi));
    (* fixed-shape binary tree over chunk order: the combine shape depends
       only on k, never on the executing domain count *)
    let rec tree lo hi =
      if hi - lo = 1 then
        match parts.(lo) with Some v -> v | None -> assert false
      else begin
        let mid = lo + (((hi - lo) + 1) / 2) in
        let l = tree lo mid in
        let r = tree mid hi in
        combine l r
      end
    in
    Some (tree 0 k)
  end

let n_workers_spawned () =
  Mutex.lock state.lock;
  let n = state.n_spawned in
  Mutex.unlock state.lock;
  n
