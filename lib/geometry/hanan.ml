(* Hanan grids (Lemma 1 of the paper).

   Given the rectangles encoding all movebound areas, the Hanan grid induced
   by their x- and y-coordinates decomposes the chip area into O(l^2) cells,
   each of which lies entirely inside or entirely outside every movebound
   rectangle.  Those cells are the starting point of the region decomposition
   (Definition 2): adjacent cells of equal coverage signature are merged into
   maximal regions elsewhere. *)

type t = {
  xs : float array;  (* sorted, deduplicated x-coordinates, >= 2 entries *)
  ys : float array;
  nx : int;          (* number of columns = |xs| - 1 *)
  ny : int;
}

let dedup_sorted eps a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = ref [ a.(0) ] in
    for i = 1 to n - 1 do
      match !out with
      | last :: _ when a.(i) -. last > eps -> out := a.(i) :: !out
      | _ -> ()
    done;
    Array.of_list (List.rev !out)
  end

(* Build the grid over [chip] from the coordinates of [rects], clipping all
   coordinates into the chip area. *)
let create ?(eps = 1e-9) ~(chip : Rect.t) rects =
  let clip_x x = Float.max chip.Rect.x0 (Float.min chip.Rect.x1 x) in
  let clip_y y = Float.max chip.Rect.y0 (Float.min chip.Rect.y1 y) in
  let xs = ref [ chip.Rect.x0; chip.Rect.x1 ] in
  let ys = ref [ chip.Rect.y0; chip.Rect.y1 ] in
  List.iter
    (fun (r : Rect.t) ->
      xs := clip_x r.Rect.x0 :: clip_x r.Rect.x1 :: !xs;
      ys := clip_y r.Rect.y0 :: clip_y r.Rect.y1 :: !ys)
    rects;
  let xs = Array.of_list !xs and ys = Array.of_list !ys in
  Array.sort Float.compare xs;
  Array.sort Float.compare ys;
  let xs = dedup_sorted eps xs and ys = dedup_sorted eps ys in
  if Array.length xs < 2 || Array.length ys < 2 then
    invalid_arg "Hanan.create: degenerate chip area";
  { xs; ys; nx = Array.length xs - 1; ny = Array.length ys - 1 }

let n_cells t = t.nx * t.ny

let cell_index t ~ix ~iy =
  if ix < 0 || ix >= t.nx || iy < 0 || iy >= t.ny then
    invalid_arg "Hanan.cell_index: out of bounds";
  (iy * t.nx) + ix

let cell_coords t idx =
  if idx < 0 || idx >= n_cells t then invalid_arg "Hanan.cell_coords";
  (idx mod t.nx, idx / t.nx)

let cell_rect t ~ix ~iy =
  Rect.make ~x0:t.xs.(ix) ~y0:t.ys.(iy) ~x1:t.xs.(ix + 1) ~y1:t.ys.(iy + 1)

let iter_cells t f =
  for iy = 0 to t.ny - 1 do
    for ix = 0 to t.nx - 1 do
      f ~ix ~iy (cell_rect t ~ix ~iy)
    done
  done

(* 4-neighbourhood of a cell, as cell indices. *)
let neighbors t ~ix ~iy =
  let out = ref [] in
  if ix > 0 then out := cell_index t ~ix:(ix - 1) ~iy :: !out;
  if ix < t.nx - 1 then out := cell_index t ~ix:(ix + 1) ~iy :: !out;
  if iy > 0 then out := cell_index t ~ix ~iy:(iy - 1) :: !out;
  if iy < t.ny - 1 then out := cell_index t ~ix ~iy:(iy + 1) :: !out;
  !out

let nx t = t.nx
let ny t = t.ny

let xs t = Array.copy t.xs
let ys t = Array.copy t.ys

(* Column index of the cell containing x (clamped to the grid). *)
let locate sorted v =
  let n = Array.length sorted in
  if v <= sorted.(0) then 0
  else if v >= sorted.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: sorted.(lo) <= v < sorted.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v < sorted.(mid) then hi := mid else lo := mid
    done;
    !lo
  end

let cell_at t (x : float) (y : float) =
  (locate t.xs x, locate t.ys y)
