(* Unbalanced Hitchcock transportation between cells and a small set of
   sinks (regions / subwindows / transit buffer nodes).

   This is the local partitioning engine of Sections III and IV-B: given n
   cells with sizes and k << n sinks with capacities, find a fractional
   assignment respecting capacities that minimizes mass-weighted movement
   cost, where cost(i, j) may be [infinity] when cell i's movebound does not
   cover sink j.

   The algorithm follows the structure of Brenner's unbalanced-transportation
   algorithm [4] as used by BonnPlace: start from the independently cheapest
   assignment, then repeatedly route overload along shortest paths in the
   *sink graph*, whose arc (u, v) is weighted by the cheapest per-unit
   relocation delta  min_i { cost(i,v) - cost(i,u) : cell i currently at u }.
   Per-arc candidate heaps with lazy invalidation give the amortized
   efficiency; Bellman-Ford over the k sinks finds the path (k is tiny).
   Moves are fractional, so whenever a fractional solution exists the result
   respects capacities exactly; most cells stay unsplit, matching the
   "almost integral" guarantee the paper inherits from [4]. *)

let eps = 1e-9

type problem = {
  sizes : float array;  (* cell sizes (mass) *)
  capacities : float array;  (* sink capacities *)
  cost : int -> int -> float;  (* per-unit cost; [infinity] = inadmissible *)
}

type assignment = {
  frac : (int * float) list array;
      (* cell -> [(sink, fraction)] with fractions summing to 1 *)
  load : float array;  (* resulting mass per sink *)
  cost : float;  (* mass-weighted total cost *)
  converged : bool;  (* false if the iteration guard tripped *)
}

let n_cells p = Array.length p.sizes
let n_sinks p = Array.length p.capacities

let total_cost p frac =
  let acc = ref 0.0 in
  Array.iteri
    (fun i fs ->
      List.iter (fun (j, f) -> acc := !acc +. (f *. p.sizes.(i) *. p.cost i j)) fs)
    frac;
  !acc

let loads p frac =
  let load = Array.make (n_sinks p) 0.0 in
  Array.iteri
    (fun i fs ->
      List.iter (fun (j, f) -> load.(j) <- load.(j) +. (f *. p.sizes.(i))) fs)
    frac;
  load

let max_overflow p a =
  let worst = ref 0.0 in
  Array.iteri
    (fun j l -> worst := Float.max !worst (l -. p.capacities.(j)))
    a.load;
  !worst

(* Number of cells assigned to more than one sink. *)
let n_fractional a =
  Array.fold_left
    (fun acc fs -> if List.length fs > 1 then acc + 1 else acc)
    0 a.frac

(* Per-cell fraction lists are int-keyed; keep the lookups monomorphic. *)
let frac_at frac i j =
  let rec find = function
    | [] -> 0.0
    | (j', f) :: rest -> if Int.equal j' j then f else find rest
  in
  find frac.(i)

let set_frac frac i j f =
  let rest = List.filter (fun (j', _) -> not (Int.equal j' j)) frac.(i) in
  frac.(i) <- if f > eps then (j, f) :: rest else rest

exception No_admissible_sink of int

let solve_impl ?(max_steps = 0) p =
  let n = n_cells p and k = n_sinks p in
  if k = 0 then invalid_arg "Transport.solve: no sinks";
  let max_steps = if max_steps > 0 then max_steps else 64 * (n + (k * k)) in
  let frac = Array.make n [] in
  let load = Array.make k 0.0 in
  (* Per-(from, to) candidate heaps keyed by the per-unit relocation delta;
     entries are cell ids, validated lazily on pop. *)
  let heaps = Array.init (k * k) (fun _ -> (Fbp_util.Pq.create () : int Fbp_util.Pq.t)) in
  let heap u v = heaps.((u * k) + v) in
  let enqueue_cell i u =
    let cu = p.cost i u in
    for v = 0 to k - 1 do
      if v <> u then begin
        let cv = p.cost i v in
        if cv < infinity then Fbp_util.Pq.push (heap u v) (cv -. cu) i
      end
    done
  in
  (try
     (* Greedy initial assignment: independently cheapest admissible sink. *)
     for i = 0 to n - 1 do
       let best = ref (-1) and bestc = ref infinity in
       for j = 0 to k - 1 do
         let c = p.cost i j in
         if c < !bestc then begin
           bestc := c;
           best := j
         end
       done;
       if !best < 0 then raise (No_admissible_sink i);
       frac.(i) <- [ (!best, 1.0) ];
       load.(!best) <- load.(!best) +. p.sizes.(i);
       enqueue_cell i !best
     done;
     let total_mass = Array.fold_left ( +. ) 0.0 p.sizes in
     let tol = 1e-7 *. Float.max 1.0 total_mass in
     (* Valid cheapest entry of heap (u, v): cell must still sit at u. *)
     let rec arc_weight u v =
       match Fbp_util.Pq.peek (heap u v) with
       | None -> None
       | Some (key, i) ->
         if frac_at frac i u > eps && Float.abs (key -. (p.cost i v -. p.cost i u)) <= 1e-9
         then Some key
         else begin
           ignore (Fbp_util.Pq.pop (heap u v));
           arc_weight u v
         end
     in
     (* Move up to [need] mass from u to v, cheapest cells first.  Returns the
        mass actually moved (= need unless u runs out of movable mass). *)
     let move_mass u v need =
       let moved = ref 0.0 in
       while !moved < need -. eps &&
             (match Fbp_util.Pq.peek (heap u v) with Some _ -> true | None -> false) do
         match Fbp_util.Pq.pop (heap u v) with
         | None -> ()
         | Some (key, i) ->
           let fu = frac_at frac i u in
           if fu > eps && Float.abs (key -. (p.cost i v -. p.cost i u)) <= 1e-9 then begin
             let available = fu *. p.sizes.(i) in
             let take = Float.min available (need -. !moved) in
             let df = take /. p.sizes.(i) in
             set_frac frac i u (fu -. df);
             set_frac frac i v (frac_at frac i v +. df);
             load.(u) <- load.(u) -. take;
             load.(v) <- load.(v) +. take;
             moved := !moved +. take;
             enqueue_cell i v;
             (* Remainder still at u keeps its (already popped) candidacy. *)
             if frac_at frac i u > eps then Fbp_util.Pq.push (heap u v) key i
           end
       done;
       !moved
     in
     (* Layered Bellman-Ford: dist.(r).(v) is the cheapest *walk* of at most
        [r] arcs from the overloaded sink to [v].  Relocation deltas can be
        negative once cells are displaced off their cheapest sink, so the
        sink graph may contain negative cycles; a plain predecessor array
        would then cycle during path reconstruction.  Layer-indexed
        predecessors make the walk-back strictly decrease the layer, which
        guarantees termination (moving mass along a walk that revisits a
        node is operationally fine — each hop is an independent shift). *)
     let layers = k in
     let dist = Array.make_matrix (layers + 1) k infinity in
     let pred = Array.make_matrix (layers + 1) k (-1) in
     (* pred = -1: unreached; -2: carried from previous layer; >= 0: via arc *)
     let steps = ref 0 in
     let converged = ref true in
     let find_overloaded () =
       let best = ref (-1) and worst = ref tol in
       for j = 0 to k - 1 do
         let o = load.(j) -. p.capacities.(j) in
         if o > !worst then begin
           worst := o;
           best := j
         end
       done;
       !best
     in
     let rec rebalance () =
       let u0 = find_overloaded () in
       if u0 >= 0 then begin
         incr steps;
         if !steps > max_steps then converged := false
         else begin
           for r = 0 to layers do
             Array.fill dist.(r) 0 k infinity;
             Array.fill pred.(r) 0 k (-1)
           done;
           dist.(0).(u0) <- 0.0;
           for r = 1 to layers do
             for v = 0 to k - 1 do
               if dist.(r - 1).(v) < infinity then begin
                 dist.(r).(v) <- dist.(r - 1).(v);
                 pred.(r).(v) <- -2
               end
             done;
             for u = 0 to k - 1 do
               if dist.(r - 1).(u) < infinity then
                 for v = 0 to k - 1 do
                   if v <> u then
                     match arc_weight u v with
                     | Some w when dist.(r - 1).(u) +. w < dist.(r).(v) -. 1e-12 ->
                       dist.(r).(v) <- dist.(r - 1).(u) +. w;
                       pred.(r).(v) <- u
                     | _ -> ()
                 done
             done
           done;
           (* Cheapest reachable sink with slack (at the deepest layer). *)
           let t = ref (-1) and bestd = ref infinity in
           for j = 0 to k - 1 do
             if p.capacities.(j) -. load.(j) > tol && dist.(layers).(j) < !bestd then begin
               bestd := dist.(layers).(j);
               t := j
             end
           done;
           if !t < 0 then converged := false
           else begin
             (* Walk back through the layers, collecting arcs to shift. *)
             let path = ref [] in
             let v = ref !t and r = ref layers in
             while !r > 0 do
               (match pred.(!r).(!v) with
                | -2 -> ()
                | -1 -> assert false
                | u ->
                  path := (u, !v) :: !path;
                  v := u);
               decr r
             done;
             assert (!v = u0);
             let delta =
               Float.min (load.(u0) -. p.capacities.(u0)) (p.capacities.(!t) -. load.(!t))
             in
             let remaining = ref delta in
             List.iter
               (fun (a, b) ->
                 remaining := if !remaining > eps then move_mass a b !remaining else 0.0)
               !path;
             (* [remaining] is now the mass that made it all the way to [t].
                Zero progress means some heap went stale-empty mid-path: stop
                rather than spin (the caller sees [converged = false]). *)
             if !remaining > eps then rebalance () else converged := false
           end
         end
       end
     in
     rebalance ();
     (* Improvement phase: the rebalancing stops at the first feasible
        solution, which can leave negative cycles in the sink graph (cost
        can still drop without changing loads).  Cancel them: layered
        multi-source Bellman-Ford detects a cycle, then the cheapest movable
        cells shift one hop each around it.  Every cancellation strictly
        decreases cost.

        The budget must stay linear in [k]: each iteration runs a layered
        Bellman-Ford over the k x k sink graph whose arc weights pop lazy
        heaps that *grow* with every cancellation, so a quadratic budget
        (the previous 8k^2) turns degenerate instances — many equal-cost
        cells piled on the same sinks, exactly what a dense QP placement
        feeds the flow legalizer — into multi-hour stalls on instances as
        small as 500 cells x 62 segments.  Together with the minimum-gain
        cutoff in [cancel_cycle] this phase is a polish pass, not a
        correctness requirement: feasibility is already established. *)
     let improve_budget = ref ((4 * k) + 64) in
     let find_negative_cycle () =
       for r = 0 to layers do
         Array.fill dist.(r) 0 k infinity;
         Array.fill pred.(r) 0 k (-1)
       done;
       Array.fill dist.(0) 0 k 0.0;
       for r = 1 to layers do
         for v = 0 to k - 1 do
           if dist.(r - 1).(v) < infinity then begin
             dist.(r).(v) <- dist.(r - 1).(v);
             pred.(r).(v) <- -2
           end
         done;
         for u = 0 to k - 1 do
           for v = 0 to k - 1 do
             if v <> u then
               match arc_weight u v with
               | Some w when dist.(r - 1).(u) +. w < dist.(r).(v) -. 1e-9 ->
                 dist.(r).(v) <- dist.(r - 1).(u) +. w;
                 pred.(r).(v) <- u
               | _ -> ()
           done
         done
       done;
       (* A strict improvement at the deepest layer certifies a negative
          cycle on the walk; walking the layered preds back visits k+1 node
          instances, so some node repeats — that loop is the cycle. *)
       let witness = ref (-1) in
       for v = 0 to k - 1 do
         if dist.(layers).(v) < dist.(layers - 1).(v) -. 1e-9 && !witness < 0 then
           witness := v
       done;
       if !witness < 0 then None
       else begin
         let walk = Array.make (layers + 1) (-1) in
         let v = ref !witness in
         walk.(layers) <- !v;
         let r = ref layers in
         while !r > 0 do
           (match pred.(!r).(!v) with
            | -2 -> ()
            | -1 -> v := -1
            | u -> v := u);
           decr r;
           walk.(!r) <- !v
         done;
         (* find a repeated node in walk.(0..layers) *)
         let cycle = ref None in
         for i = 0 to layers do
           for j = i + 1 to layers do
             if !cycle = None && walk.(i) >= 0 && walk.(i) = walk.(j) then begin
               (* arcs between layers i..j-1, skipping carries (same node) *)
               let arcs = ref [] in
               for t = j downto i + 1 do
                 if walk.(t) <> walk.(t - 1) && walk.(t - 1) >= 0 then
                   arcs := (walk.(t - 1), walk.(t)) :: !arcs
               done;
               if !arcs <> [] then cycle := Some !arcs
             end
           done
         done;
         !cycle
       end
     in
     let cancel_cycle arcs =
       (* Verify the cycle is still strictly improving, then shift the
          largest mass supported by every arc's cheapest cell. *)
       let total_w = ref 0.0 and amount = ref infinity in
       let tops =
         List.filter_map
           (fun (u, v) ->
             match arc_weight u v with
             | None -> None
             | Some w ->
               (match Fbp_util.Pq.peek (heap u v) with
                | Some (_, i) ->
                  total_w := !total_w +. w;
                  amount := Float.min !amount (frac_at frac i u *. p.sizes.(i));
                  Some (u, v)
                | None -> None))
           arcs
       in
       (* A cycle that is negative only by an epsilon, or that can shift
          only an epsilon of mass, "improves" the cost by noise while still
          burning a full Bellman-Ford per round and growing every heap it
          touches; treat it as converged instead of cancelling it. *)
       let gain_tol = 1e-7 *. Float.max 1.0 total_mass in
       if
         List.length tops <> List.length arcs
         || !total_w >= -1e-9
         || !amount <= eps
         || -.(!total_w *. !amount) <= gain_tol
       then false
       else begin
         List.iter (fun (u, v) -> ignore (move_mass u v !amount)) tops;
         true
       end
     in
     let rec improve () =
       if !improve_budget > 0 then begin
         decr improve_budget;
         match find_negative_cycle () with
         | None -> ()
         | Some arcs -> if cancel_cycle arcs then improve ()
       end
     in
     improve ();
     Fbp_obs.Obs.observe "transport.pivots" (float_of_int !steps);
     Ok { frac; load; cost = total_cost p frac; converged = !converged }
   with No_admissible_sink i ->
     Error (Printf.sprintf "cell %d has no admissible sink" i))

(* Checked invariants of an assignment (sanitizer mode; also exposed for
   tests).  Rows: every cell's fractions are positive, name in-range sinks
   and sum to 1.  Columns: the reported per-sink loads equal the
   recomputed mass sums. *)
let audit p a =
  let k = n_sinks p in
  let load = Array.make k 0.0 in
  let bad = ref None in
  let report msg = if Option.is_none !bad then bad := Some msg in
  Array.iteri
    (fun i fs ->
      let sum = ref 0.0 in
      List.iter
        (fun (j, f) ->
          if j < 0 || j >= k then
            report (Printf.sprintf "cell %d: sink %d out of range" i j)
          else begin
            if f <= 0.0 || f > 1.0 +. 1e-9 then
              report (Printf.sprintf "cell %d: fraction %.9g outside (0, 1]" i f);
            load.(j) <- load.(j) +. (f *. p.sizes.(i));
            sum := !sum +. f
          end)
        fs;
      if Float.abs (!sum -. 1.0) > 1e-6 then
        report (Printf.sprintf "cell %d: fractions sum to %.9g, not 1" i !sum))
    a.frac;
  if Array.length a.load <> k then
    report
      (Printf.sprintf "load vector has %d entries for %d sinks"
         (Array.length a.load) k)
  else
    Array.iteri
      (fun j l ->
        let tol = 1e-6 *. Float.max 1.0 (Float.abs l) in
        if Float.abs (l -. a.load.(j)) > tol then
          report
            (Printf.sprintf
               "sink %d: reported load %.9g but fractions carry %.9g" j
               a.load.(j) l))
      load;
  match !bad with None -> Ok () | Some msg -> Error msg

(* Deterministically damage a computed assignment: inflate the first
   sink's reported load so the column audit no longer matches the
   fractions.  Models a solver bug for the sanitizer tests. *)
let corrupt_assignment a =
  if Array.length a.load > 0 then a.load.(0) <- a.load.(0) +. 1.0

(* Fault-injection shim: tests can force a domain exception or a
   post-solve assignment corruption (caught by the sanitizer) here to
   exercise the fault matrix. *)
let solve ?max_steps p =
  Fbp_obs.Obs.count "transport.solves";
  Fbp_obs.Obs.span "transport.solve"
    ~args:(fun () ->
      [ ("cells", string_of_int (n_cells p)); ("sinks", string_of_int (n_sinks p)) ])
    (fun () ->
      match Fbp_resilience.Inject.fire Fbp_resilience.Inject.Transport with
      | Some (Fbp_resilience.Inject.Raise msg) ->
        raise (Fbp_resilience.Inject.Injected msg)
      | fired ->
        let r = solve_impl ?max_steps p in
        (match r with
        | Ok a ->
          (match fired with
          | Some Fbp_resilience.Inject.Corrupt -> corrupt_assignment a
          | _ -> ());
          Fbp_resilience.Sanitize.check ~site:"transport.solve"
            ~invariant:"row/column balance" (fun () -> audit p a)
        | Error _ -> ());
        r)

(* Round a fractional assignment to an integral one: each split cell goes to
   its largest-fraction sink.  Sinks may end up overfull by strictly less
   than one cell each — the "almost integral" slack the paper absorbs in
   legalization. *)
let round_integral a =
  Array.map
    (fun fs ->
      match fs with
      | [] -> -1
      | (j0, f0) :: rest ->
        let j, _ =
          List.fold_left (fun ((_, bf) as acc) (j, f) -> if f > bf then (j, f) else acc)
            (j0, f0) rest
        in
        j)
    a.frac

(* Exact reference solver via min-cost flow with one node per cell; only for
   small instances (tests, ablations). *)
let solve_exact p =
  let n = n_cells p and k = n_sinks p in
  let g = Graph.create (n + k) in
  let arc = Array.make_matrix n k (-1) in
  let max_cost = ref 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to k - 1 do
      let c = p.cost i j in
      if c < infinity then max_cost := Float.max !max_cost c
    done
  done;
  for i = 0 to n - 1 do
    for j = 0 to k - 1 do
      let c = p.cost i j in
      if c < infinity then
        arc.(i).(j) <- Graph.add_edge g ~u:i ~v:(n + j) ~cap:p.sizes.(i) ~cost:c
    done
  done;
  let supply = Array.make (n + k) 0.0 in
  Array.iteri (fun i s -> supply.(i) <- s) p.sizes;
  Array.iteri (fun j c -> supply.(n + j) <- -.c) p.capacities;
  match Mcf.solve g ~supply with
  | Infeasible _ -> Error "no fractional assignment exists"
  | Feasible { cost } ->
    let frac = Array.make n [] in
    for i = 0 to n - 1 do
      for j = 0 to k - 1 do
        let a = arc.(i).(j) in
        if a >= 0 then begin
          let f = Graph.flow g a /. p.sizes.(i) in
          if f > eps then frac.(i) <- (j, f) :: frac.(i)
        end
      done
    done;
    Ok { frac; load = loads p frac; cost; converged = true }
