(** Unbalanced Hitchcock transportation: n cells to k << n sinks.

    The local partitioning engine of Sections III and IV-B, following the
    structure of Brenner's algorithm [4]: greedy initial assignment, then
    overload routed along shortest paths in the sink graph whose arcs carry
    per-unit relocation deltas maintained in lazily-invalidated heaps.
    Fractional moves make the result respect capacities exactly whenever a
    fractional solution exists; most cells remain unsplit ("almost
    integral"). *)

type problem = {
  sizes : float array;  (** cell sizes (mass) *)
  capacities : float array;  (** sink capacities *)
  cost : int -> int -> float;
      (** per-unit movement cost; [infinity] marks an inadmissible pair
          (movebound of the cell does not cover the sink) *)
}

type assignment = {
  frac : (int * float) list array;
      (** cell → [(sink, fraction)]; fractions sum to 1 per cell *)
  load : float array;  (** resulting mass per sink *)
  cost : float;  (** mass-weighted total cost *)
  converged : bool;  (** [false] if the iteration guard tripped *)
}

(** Heuristic solver; [Error] when some cell has no admissible sink.
    [max_steps] caps rebalancing augmentations (default scales with n, k). *)
val solve : ?max_steps:int -> problem -> (assignment, string) result

(** Exact reference via min-cost flow with one node per cell — O(n·k) arcs,
    only for small instances (tests, ablations). *)
val solve_exact : problem -> (assignment, string) result

(** Each split cell goes to its largest-fraction sink; sinks can exceed
    capacity by strictly less than one cell. Entry is [-1] only for cells
    with an empty fraction list (cannot happen on solver output). *)
val round_integral : assignment -> int array

(** Mass-weighted cost of an arbitrary fractional assignment. *)
val total_cost : problem -> (int * float) list array -> float

(** Worst per-sink load excess over capacity (0 or less means feasible). *)
val max_overflow : problem -> assignment -> float

(** Number of cells split across more than one sink. *)
val n_fractional : assignment -> int

(** Checked invariants (sanitizer mode): every row's fractions are
    positive, in-range and sum to 1; the reported per-sink loads match the
    recomputed mass sums.  Returns the first violation. *)
val audit : problem -> assignment -> (unit, string) result
