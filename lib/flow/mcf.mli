(** Minimum-cost b-flow by successive shortest paths with potentials.

    The exact solver behind the FBP model (Section IV-A); replaces the
    paper's network simplex (see DESIGN.md substitution table). Arc costs
    must be non-negative. After a call the graph holds the computed flow
    (read per-arc with {!Graph.flow}). *)

type result =
  | Feasible of { cost : float }
  | Infeasible of { unrouted : float }
      (** Total supply that cannot reach any deficit — by Theorem 3 a
          certificate that no fractional placement with movebounds exists. *)

(** Solver effort counters, for the quality flight recorder
    ({!Fbp_obs.Recorder}) and the Table I instrumentation. *)
type stats = { rounds : int  (** multi-source Dijkstra rounds *) }

(** [solve g ~supply] computes a min-cost flow satisfying node balances:
    [supply.(v) > 0] is supply, [< 0] demand. Total supply may be less than
    total demand (demands are upper bounds). Raises [Invalid_argument] on a
    length mismatch or negative arc cost. *)
val solve : Graph.t -> supply:float array -> result

(** {!solve} plus the solver effort counters of the run. *)
val solve_stats : Graph.t -> supply:float array -> result * stats

(** Audit: does the residual network contain no negative cycle (i.e. is the
    current flow of minimum cost)? Used by property tests. *)
val check_optimal : Graph.t -> bool

(** Checked flow invariants (sanitizer mode): per-arc capacity bounds and
    per-node conservation against [supply].  [exact] additionally requires
    every supply node fully routed (the solver reported [Feasible]).
    Returns the first violation. *)
val check_flow :
  Graph.t -> supply:float array -> exact:bool -> (unit, string) Stdlib.result
