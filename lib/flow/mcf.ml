(* Minimum-cost flow by successive shortest paths with Johnson potentials.

   This is the solver behind the global FBP model of Section IV-A.  The
   paper used a (sequential) network simplex; any exact solver produces a
   min-cost b-flow with the same cost, and at FBP instance sizes (|V|, |E|
   linear in the number of windows — Table I) successive shortest paths with
   a Dijkstra core is fast and much simpler.  The substitution is recorded in
   DESIGN.md.

   Input arc costs must be non-negative (true for the FBP model: L1 distances
   and zero-cost external arcs); residual twins get negative costs but the
   potential invariant keeps all reduced costs non-negative, so Dijkstra
   remains valid throughout. *)

let eps = 1e-7

type result =
  | Feasible of { cost : float }
  | Infeasible of { unrouted : float }
      (** Total supply that cannot reach any deficit node.  By Theorem 3 this
          certifies that no (fractional) placement with movebounds exists. *)

type stats = { rounds : int }

let solve_real g ~supply =
  let n = Graph.n_nodes g in
  if Array.length supply <> n then invalid_arg "Mcf.solve: supply length";
  Graph.iter_edges g (fun a ->
      if Graph.cost g a < 0.0 then
        invalid_arg "Mcf.solve: negative arc cost");
  let excess = Array.copy supply in
  let pi = Array.make n 0.0 in
  let dist = Array.make n infinity in
  let parent_arc = Array.make n (-1) in
  let visited = Array.make n false in
  let pq : int Fbp_util.Pq.t = Fbp_util.Pq.create () in
  let total_cost = ref 0.0 in
  let unrouted = ref 0.0 in
  (* Each round runs a *multi-source* Dijkstra from all excess nodes at once:
     starting at a single source would let arcs out of other (unreached)
     supply nodes violate the non-negative-reduced-cost invariant. *)
  let remaining_excess () =
    Array.fold_left (fun acc e -> if e > eps then acc +. e else acc) 0.0 excess
  in
  let continue_ = ref (remaining_excess () > eps) in
  let rounds = ref 0 in
  while !continue_ do
    incr rounds;
    Array.fill dist 0 n infinity;
    Array.fill visited 0 n false;
    Fbp_util.Pq.clear pq;
    for v = 0 to n - 1 do
      if excess.(v) > eps then begin
        dist.(v) <- 0.0;
        parent_arc.(v) <- -1;
        Fbp_util.Pq.push pq 0.0 v
      end
    done;
    let target = ref (-1) in
    (try
       let rec scan () =
         match Fbp_util.Pq.pop pq with
         | None -> ()
         | Some (_, u) ->
           if not visited.(u) then begin
             visited.(u) <- true;
             if excess.(u) < -.eps then begin
               target := u;
               raise Exit
             end;
             Graph.iter_out g u (fun a ->
                 if Graph.capacity g a > eps then begin
                   let v = Graph.dst g a in
                   if not visited.(v) then begin
                     let rc = Graph.cost g a +. pi.(u) -. pi.(v) in
                     let nd = dist.(u) +. (if rc < 0.0 then 0.0 else rc) in
                     if nd < dist.(v) -. 1e-12 then begin
                       dist.(v) <- nd;
                       parent_arc.(v) <- a;
                       Fbp_util.Pq.push pq nd v
                     end
                   end
                 end)
           end;
           scan ()
       in
       scan ()
     with Exit -> ());
    if !target < 0 then begin
      (* No deficit reachable from any excess node: the rest is unroutable. *)
      unrouted := !unrouted +. remaining_excess ();
      continue_ := false
    end
    else begin
      let t = !target in
      let dt = dist.(t) in
      (* Potential update keeps reduced costs non-negative.  Nodes that were
         not labeled before the early exit (dist = infinity, min picks [dt])
         must also be lifted by [dt]: otherwise an arc from such a node into
         a labeled one can acquire negative reduced cost and poison a later
         Dijkstra round. *)
      for v = 0 to n - 1 do
        pi.(v) <- pi.(v) +. Float.min dist.(v) dt
      done;
      (* Walk back to the originating excess node, collecting the bottleneck. *)
      let delta = ref (-.excess.(t)) in
      let v = ref t in
      while parent_arc.(!v) >= 0 do
        let a = parent_arc.(!v) in
        delta := Float.min !delta (Graph.capacity g a);
        v := Graph.src g a
      done;
      let s = !v in
      let d = Float.min !delta excess.(s) in
      let v = ref t in
      while parent_arc.(!v) >= 0 do
        let a = parent_arc.(!v) in
        Graph.push g a d;
        total_cost := !total_cost +. (d *. Graph.cost g a);
        v := Graph.src g a
      done;
      excess.(s) <- excess.(s) -. d;
      excess.(t) <- excess.(t) +. d;
      if remaining_excess () <= eps then continue_ := false
    end
  done;
  Fbp_obs.Obs.count "mcf.solves";
  Fbp_obs.Obs.observe "mcf.dijkstra_rounds" (float_of_int !rounds);
  let verdict =
    if !unrouted > eps then Infeasible { unrouted = !unrouted }
    else Feasible { cost = !total_cost }
  in
  (verdict, { rounds = !rounds })

let solve_real g ~supply =
  Fbp_obs.Obs.span "mcf.solve" (fun () -> solve_real g ~supply)

(* Checked invariants of a computed flow (sanitizer mode; also exposed for
   tests).  Per forward arc: 0 <= flow <= original capacity.  Per node:
   conservation against the supply vector — supply nodes route out at most
   their supply (exactly, when the solver reported [Feasible]), deficit
   nodes absorb at most their demand, transshipment nodes balance to zero.
   Tolerances scale with the magnitudes involved. *)
let check_flow g ~supply ~exact =
  let n = Graph.n_nodes g in
  let tol v = 1e-6 *. Float.max 1.0 (Float.abs v) in
  let net = Array.make n 0.0 in
  let bad = ref None in
  let report msg = if Option.is_none !bad then bad := Some msg in
  Graph.iter_edges g (fun a ->
      let f = Graph.flow g a and c0 = Graph.original_capacity g a in
      if f < -.(tol c0) then
        report
          (Printf.sprintf "arc %d (%d->%d): negative flow %.9g" a
             (Graph.src g a) (Graph.dst g a) f)
      else if f > c0 +. tol c0 then
        report
          (Printf.sprintf "arc %d (%d->%d): flow %.9g exceeds capacity %.9g"
             a (Graph.src g a) (Graph.dst g a) f c0);
      net.(Graph.src g a) <- net.(Graph.src g a) +. f;
      net.(Graph.dst g a) <- net.(Graph.dst g a) -. f);
  for v = 0 to n - 1 do
    let b = supply.(v) and o = net.(v) in
    let t = tol b in
    if b > t then begin
      (* supply node: 0 <= net out <= supply, = supply when fully routed *)
      if o < -.t || o > b +. t then
        report
          (Printf.sprintf "supply node %d: net outflow %.9g outside [0, %.9g]"
             v o b)
      else if exact && Float.abs (o -. b) > t then
        report
          (Printf.sprintf
             "supply node %d: net outflow %.9g <> routed supply %.9g" v o b)
    end
    else if b < -.t then begin
      (* deficit node: absorbs at most its demand *)
      if o > t || o < b -. t then
        report
          (Printf.sprintf "deficit node %d: net outflow %.9g outside [%.9g, 0]"
             v o b)
    end
    else if Float.abs o > tol o then
      report
        (Printf.sprintf "transshipment node %d: net outflow %.9g <> 0" v o)
  done;
  match !bad with None -> Ok () | Some msg -> Error msg

(* Deterministically damage the computed flow: push extra units over the
   first arc with residual room (or force the first arc over capacity).
   Models a solver bug for the sanitizer tests. *)
let corrupt_flow g =
  let n = Graph.n_arcs g in
  let victim = ref (-1) in
  Graph.iter_edges g (fun a ->
      if !victim < 0 && Graph.capacity g a > 1e-3 then victim := a);
  if !victim >= 0 then Graph.push g !victim (0.5 *. Graph.capacity g !victim)
  else if n > 0 then Graph.push g 0 1.0

(* Fault-injection shim: tests can force an infeasibility verdict, a domain
   exception, or a post-solve flow corruption (caught by the sanitizer)
   here to exercise the placer's degradation ladder. *)
let solve_stats g ~supply =
  match Fbp_resilience.Inject.fire Fbp_resilience.Inject.Mcf with
  | Some (Fbp_resilience.Inject.Infeasible unrouted) ->
    (Infeasible { unrouted }, { rounds = 0 })
  | Some (Fbp_resilience.Inject.Raise msg) ->
    raise (Fbp_resilience.Inject.Injected msg)
  | fired ->
    (* Callers may pre-seed flow on the graph and pass only the residual
       supply (the FBP model's greedy seeding does); conservation then
       holds against residual supply plus the seeded per-node imbalance,
       so snapshot that imbalance before solving. *)
    let seeded =
      if Fbp_resilience.Sanitize.enabled () then begin
        let net = Array.make (Graph.n_nodes g) 0.0 in
        Graph.iter_edges g (fun a ->
            let f = Graph.flow g a in
            net.(Graph.src g a) <- net.(Graph.src g a) +. f;
            net.(Graph.dst g a) <- net.(Graph.dst g a) -. f);
        net
      end
      else [||]
    in
    let ((verdict, _) as out) = solve_real g ~supply in
    (match fired with
    | Some Fbp_resilience.Inject.Corrupt -> corrupt_flow g
    | _ -> ());
    let exact = match verdict with Feasible _ -> true | Infeasible _ -> false in
    Fbp_resilience.Sanitize.check ~site:"mcf.solve"
      ~invariant:"flow conservation and capacity bounds" (fun () ->
        let balance = Array.mapi (fun v b -> b +. seeded.(v)) supply in
        check_flow g ~supply:balance ~exact);
    out

let solve g ~supply = fst (solve_stats g ~supply)

(* Optimality audit used by property tests: a flow is min-cost iff the
   residual network contains no arc with negative reduced cost under some
   potential; we verify with Bellman-Ford that the residual network has no
   negative cycle. Returns [true] when optimal. *)
let check_optimal g =
  let n = Graph.n_nodes g in
  let dist = Array.make n 0.0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    for u = 0 to n - 1 do
      Graph.iter_out g u (fun a ->
          if Graph.capacity g a > eps then begin
            let v = Graph.dst g a in
            if dist.(u) +. Graph.cost g a < dist.(v) -. 1e-6 then begin
              dist.(v) <- dist.(u) +. Graph.cost g a;
              changed := true
            end
          end)
    done
  done;
  not !changed
