(* Minimum-cost flow by successive shortest paths with Johnson potentials.

   This is the solver behind the global FBP model of Section IV-A.  The
   paper used a (sequential) network simplex; any exact solver produces a
   min-cost b-flow with the same cost, and at FBP instance sizes (|V|, |E|
   linear in the number of windows — Table I) successive shortest paths with
   a Dijkstra core is fast and much simpler.  The substitution is recorded in
   DESIGN.md.

   Input arc costs must be non-negative (true for the FBP model: L1 distances
   and zero-cost external arcs); residual twins get negative costs but the
   potential invariant keeps all reduced costs non-negative, so Dijkstra
   remains valid throughout. *)

let eps = 1e-7

type result =
  | Feasible of { cost : float }
  | Infeasible of { unrouted : float }
      (** Total supply that cannot reach any deficit node.  By Theorem 3 this
          certifies that no (fractional) placement with movebounds exists. *)

type stats = { rounds : int }

let solve_real g ~supply =
  let n = Graph.n_nodes g in
  if Array.length supply <> n then invalid_arg "Mcf.solve: supply length";
  Graph.iter_edges g (fun a ->
      if Graph.cost g a < 0.0 then
        invalid_arg "Mcf.solve: negative arc cost");
  let excess = Array.copy supply in
  let pi = Array.make n 0.0 in
  let dist = Array.make n infinity in
  let parent_arc = Array.make n (-1) in
  let visited = Array.make n false in
  let pq : int Fbp_util.Pq.t = Fbp_util.Pq.create () in
  let total_cost = ref 0.0 in
  let unrouted = ref 0.0 in
  (* Each round runs a *multi-source* Dijkstra from all excess nodes at once:
     starting at a single source would let arcs out of other (unreached)
     supply nodes violate the non-negative-reduced-cost invariant. *)
  let remaining_excess () =
    Array.fold_left (fun acc e -> if e > eps then acc +. e else acc) 0.0 excess
  in
  let continue_ = ref (remaining_excess () > eps) in
  let rounds = ref 0 in
  while !continue_ do
    incr rounds;
    Array.fill dist 0 n infinity;
    Array.fill visited 0 n false;
    Fbp_util.Pq.clear pq;
    for v = 0 to n - 1 do
      if excess.(v) > eps then begin
        dist.(v) <- 0.0;
        parent_arc.(v) <- -1;
        Fbp_util.Pq.push pq 0.0 v
      end
    done;
    let target = ref (-1) in
    (try
       let rec scan () =
         match Fbp_util.Pq.pop pq with
         | None -> ()
         | Some (_, u) ->
           if not visited.(u) then begin
             visited.(u) <- true;
             if excess.(u) < -.eps then begin
               target := u;
               raise Exit
             end;
             Graph.iter_out g u (fun a ->
                 if Graph.capacity g a > eps then begin
                   let v = Graph.dst g a in
                   if not visited.(v) then begin
                     let rc = Graph.cost g a +. pi.(u) -. pi.(v) in
                     let nd = dist.(u) +. (if rc < 0.0 then 0.0 else rc) in
                     if nd < dist.(v) -. 1e-12 then begin
                       dist.(v) <- nd;
                       parent_arc.(v) <- a;
                       Fbp_util.Pq.push pq nd v
                     end
                   end
                 end)
           end;
           scan ()
       in
       scan ()
     with Exit -> ());
    if !target < 0 then begin
      (* No deficit reachable from any excess node: the rest is unroutable. *)
      unrouted := !unrouted +. remaining_excess ();
      continue_ := false
    end
    else begin
      let t = !target in
      let dt = dist.(t) in
      (* Potential update keeps reduced costs non-negative.  Nodes that were
         not labeled before the early exit (dist = infinity, min picks [dt])
         must also be lifted by [dt]: otherwise an arc from such a node into
         a labeled one can acquire negative reduced cost and poison a later
         Dijkstra round. *)
      for v = 0 to n - 1 do
        pi.(v) <- pi.(v) +. Float.min dist.(v) dt
      done;
      (* Walk back to the originating excess node, collecting the bottleneck. *)
      let delta = ref (-.excess.(t)) in
      let v = ref t in
      while parent_arc.(!v) >= 0 do
        let a = parent_arc.(!v) in
        delta := Float.min !delta (Graph.capacity g a);
        v := Graph.src g a
      done;
      let s = !v in
      let d = Float.min !delta excess.(s) in
      let v = ref t in
      while parent_arc.(!v) >= 0 do
        let a = parent_arc.(!v) in
        Graph.push g a d;
        total_cost := !total_cost +. (d *. Graph.cost g a);
        v := Graph.src g a
      done;
      excess.(s) <- excess.(s) -. d;
      excess.(t) <- excess.(t) +. d;
      if remaining_excess () <= eps then continue_ := false
    end
  done;
  Fbp_obs.Obs.count "mcf.solves";
  Fbp_obs.Obs.observe "mcf.dijkstra_rounds" (float_of_int !rounds);
  let verdict =
    if !unrouted > eps then Infeasible { unrouted = !unrouted }
    else Feasible { cost = !total_cost }
  in
  (verdict, { rounds = !rounds })

let solve_real g ~supply =
  Fbp_obs.Obs.span "mcf.solve" (fun () -> solve_real g ~supply)

(* Fault-injection shim: tests can force an infeasibility verdict or a
   domain exception here to exercise the placer's degradation ladder. *)
let solve_stats g ~supply =
  match Fbp_resilience.Inject.fire Fbp_resilience.Inject.Mcf with
  | Some (Fbp_resilience.Inject.Infeasible unrouted) ->
    (Infeasible { unrouted }, { rounds = 0 })
  | Some (Fbp_resilience.Inject.Raise msg) ->
    raise (Fbp_resilience.Inject.Injected msg)
  | _ -> solve_real g ~supply

let solve g ~supply = fst (solve_stats g ~supply)

(* Optimality audit used by property tests: a flow is min-cost iff the
   residual network contains no arc with negative reduced cost under some
   potential; we verify with Bellman-Ford that the residual network has no
   negative cycle. Returns [true] when optimal. *)
let check_optimal g =
  let n = Graph.n_nodes g in
  let dist = Array.make n 0.0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    for u = 0 to n - 1 do
      Graph.iter_out g u (fun a ->
          if Graph.capacity g a > eps then begin
            let v = Graph.dst g a in
            if dist.(u) +. Graph.cost g a < dist.(v) -. 1e-6 then begin
              dist.(v) <- dist.(u) +. Graph.cost g a;
              changed := true
            end
          end)
    done
  done;
  not !changed
