(* Quadratic net models: turn nets into springs and assemble the SPD systems
   that quadratic placement minimizes.

   Small nets use the clique model with weight 2w/p per pin pair; larger
   nets a star with an auxiliary center variable (keeps the system sparse).
   Pin offsets enter the right-hand side, fixed pins and cells outside the
   movable set contribute constants — which is exactly what the realization
   needs for its local QP "with fixed cells outside W" (Section IV-B). *)

open Fbp_netlist

type system = {
  n_vars : int;  (* movable-cell vars first, then star vars *)
  var_of_cell : int array;  (* -1 when the cell is fixed for this solve *)
  cells : int array;  (* var -> cell id, -1 for star vars *)
  ax : Fbp_linalg.Csr.t;
  bx : float array;
  ay : Fbp_linalg.Csr.t;
  by : float array;
}

(* Symbolic-structure cache: across QP rounds of the same placement run the
   net topology and movable set are fixed, so the triplet (row, col) stream
   per axis repeats exactly.  We capture it once and re-assemble later
   rounds as a flat value sweep.  Safety does not depend on the caller
   guessing right: [Csr.refreeze] verifies the full stream every time and
   we fall back to a fresh capture on any mismatch (anchors appearing or
   vanishing, a different net subset, a changed movable set...). *)
type cache = {
  mutable sx : Fbp_linalg.Csr.structure option;
  mutable sy : Fbp_linalg.Csr.structure option;
}

let create_cache () = { sx = None; sy = None }

let freeze_cached slot store bld =
  match
    match slot with
    | Some s -> Fbp_linalg.Csr.refreeze s bld
    | None -> None
  with
  | Some t ->
    Fbp_obs.Obs.count "netmodel.refreeze_hits";
    t
  | None ->
    let t, s = Fbp_linalg.Csr.freeze_capture bld in
    store s;
    Fbp_obs.Obs.count "netmodel.refreeze_misses";
    t

(* [assemble nl pos ~movable ~nets ~clique_max_degree ~anchor] builds both
   axis systems.  [anchor cell] returns optional (wx, tx, wy, ty) pulling the
   cell toward (tx, ty). *)
let assemble (nl : Netlist.t) (pos : Placement.t) ?cache ~(movable : int array)
    ?(nets : int array = [||]) ~(clique_max_degree : int)
    ~(anchor : int -> (float * float * float * float) option) () =
  let n = Netlist.n_cells nl in
  let var_of_cell = Array.make n (-1) in
  Array.iteri (fun v c -> var_of_cell.(c) <- v) movable;
  let n_cell_vars = Array.length movable in
  let net_ids =
    if Array.length nets > 0 then nets
    else Array.init (Netlist.n_nets nl) (fun i -> i)
  in
  (* star variables: one per sufficiently wide net with >= 1 movable pin *)
  let star_var = Array.make (Array.length net_ids) (-1) in
  let n_vars = ref n_cell_vars in
  Array.iteri
    (fun k ni ->
      let net = nl.Netlist.nets.(ni) in
      let p = Array.length net.Netlist.pins in
      if p > clique_max_degree then begin
        let has_movable =
          Array.exists
            (fun (pin : Netlist.pin) -> pin.Netlist.cell >= 0 && var_of_cell.(pin.Netlist.cell) >= 0)
            net.Netlist.pins
        in
        if has_movable then begin
          star_var.(k) <- !n_vars;
          incr n_vars
        end
      end)
    net_ids;
  let nv = !n_vars in
  let bldx = Fbp_linalg.Csr.builder nv and bldy = Fbp_linalg.Csr.builder nv in
  let bx = Array.make nv 0.0 and by = Array.make nv 0.0 in
  (* One spring between two pin endpoints.  Endpoint = (var, offset) with
     var = -1 meaning fixed at absolute coordinate [abs]. *)
  let spring axis_bld rhs w (va, da, pa) (vb, db, pb) =
    if va >= 0 && vb >= 0 then begin
      if va <> vb then begin
        Fbp_linalg.Csr.add_spring axis_bld va vb w;
        rhs.(va) <- rhs.(va) +. (w *. (db -. da));
        rhs.(vb) <- rhs.(vb) +. (w *. (da -. db))
      end
    end
    else if va >= 0 then begin
      Fbp_linalg.Csr.add_diag axis_bld va w;
      rhs.(va) <- rhs.(va) +. (w *. (pb -. da))
    end
    else if vb >= 0 then begin
      Fbp_linalg.Csr.add_diag axis_bld vb w;
      rhs.(vb) <- rhs.(vb) +. (w *. (pa -. db))
    end
  in
  (* Endpoint descriptors per axis for a pin. *)
  let endpoint_x (pin : Netlist.pin) =
    if pin.Netlist.cell < 0 then (-1, 0.0, pin.Netlist.dx)
    else
      let v = var_of_cell.(pin.Netlist.cell) in
      if v >= 0 then (v, pin.Netlist.dx, 0.0)
      else (-1, 0.0, pos.Placement.x.(pin.Netlist.cell) +. pin.Netlist.dx)
  in
  let endpoint_y (pin : Netlist.pin) =
    if pin.Netlist.cell < 0 then (-1, 0.0, pin.Netlist.dy)
    else
      let v = var_of_cell.(pin.Netlist.cell) in
      if v >= 0 then (v, pin.Netlist.dy, 0.0)
      else (-1, 0.0, pos.Placement.y.(pin.Netlist.cell) +. pin.Netlist.dy)
  in
  Array.iteri
    (fun k ni ->
      let net = nl.Netlist.nets.(ni) in
      let pins = net.Netlist.pins in
      let p = Array.length pins in
      if p >= 2 then begin
        let w_pair = 2.0 *. net.Netlist.weight /. float_of_int p in
        if star_var.(k) < 0 then begin
          (* clique (also used for wide all-fixed nets, which cost nothing) *)
          for i = 0 to p - 1 do
            for j = i + 1 to p - 1 do
              spring bldx bx w_pair (endpoint_x pins.(i)) (endpoint_x pins.(j));
              spring bldy by w_pair (endpoint_y pins.(i)) (endpoint_y pins.(j))
            done
          done
        end
        else begin
          let s = star_var.(k) in
          let w_star = w_pair *. float_of_int p /. float_of_int (p - 1) in
          for i = 0 to p - 1 do
            spring bldx bx w_star (endpoint_x pins.(i)) (s, 0.0, 0.0);
            spring bldy by w_star (endpoint_y pins.(i)) (s, 0.0, 0.0)
          done
        end
      end)
    net_ids;
  (* anchors and regularization *)
  Array.iteri
    (fun v c ->
      (match anchor c with
       | Some (wx, tx, wy, ty) ->
         Fbp_linalg.Csr.add_diag bldx v wx;
         bx.(v) <- bx.(v) +. (wx *. tx);
         Fbp_linalg.Csr.add_diag bldy v wy;
         by.(v) <- by.(v) +. (wy *. ty)
       | None -> ());
      (* tiny regularizer keeps isolated cells solvable, pinned where they are *)
      let reg = 1e-9 in
      Fbp_linalg.Csr.add_diag bldx v reg;
      bx.(v) <- bx.(v) +. (reg *. pos.Placement.x.(c));
      Fbp_linalg.Csr.add_diag bldy v reg;
      by.(v) <- by.(v) +. (reg *. pos.Placement.y.(c)))
    movable;
  (* star vars regularization (in case every pin of the net is fixed-0) *)
  for v = n_cell_vars to nv - 1 do
    Fbp_linalg.Csr.add_diag bldx v 1e-9;
    Fbp_linalg.Csr.add_diag bldy v 1e-9
  done;
  let cells = Array.make nv (-1) in
  Array.iteri (fun v c -> cells.(v) <- c) movable;
  let ax, ay =
    match cache with
    | None -> (Fbp_linalg.Csr.freeze bldx, Fbp_linalg.Csr.freeze bldy)
    | Some c ->
      ( freeze_cached c.sx (fun s -> c.sx <- Some s) bldx,
        freeze_cached c.sy (fun s -> c.sy <- Some s) bldy )
  in
  { n_vars = nv; var_of_cell; cells; ax; bx; ay; by }
