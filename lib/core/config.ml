(* Tuning knobs of the global placer.  Defaults follow the paper's setup
   where it is specific (97% density, 2x3/3x2 realization windows, parallel
   realization) and common analytic-placement practice elsewhere. *)

type t = {
  max_levels : int;  (* hard cap on grid refinement levels *)
  min_window_rows : float;  (* stop refining when windows get this short *)
  clique_max_degree : int;  (* nets up to this degree use the clique model *)
  anchor_base : float;  (* anchor weight at level 1 *)
  anchor_growth : float;  (* multiplicative growth per level *)
  cg_tol : float;
  cg_max_iter : int;
  coarse_span : int;  (* realization window reaches this many windows out *)
  domains : int;  (* parallel domains for realization (1 = sequential) *)
  hw_clamp : bool;  (* clamp [domains] to physical cores in hot paths;
                       results are identical either way — disable only to
                       exercise parallel paths on small machines (tests) *)
  local_qp : bool;  (* run the local QP connectivity step in realization *)
  capacity_margin : float;  (* flow capacities derated for legalizability *)
  deadline : float option;  (* wall-clock budget (s) for global placement *)
  strict : bool;  (* fail with a typed error instead of degrading *)
  verbose : bool;
}

let default =
  {
    max_levels = 10;
    min_window_rows = 2.5;
    clique_max_degree = 3;
    anchor_base = 0.02;
    anchor_growth = 2.6;
    cg_tol = 1e-5;
    cg_max_iter = 300;
    coarse_span = 1;
    domains = Fbp_util.Pool.get_default_domains ();
    hw_clamp = true;
    local_qp = true;
    capacity_margin = 0.94;
    deadline = None;
    strict = false;
    verbose = false;
  }
