(* Window grids (the Gamma of Section III) and region-in-window pieces.

   A level's grid partitions the chip into nx * ny rectangular windows.  The
   FBP flow model needs, per window, the pieces of the global maximal regions
   intersecting it: those pieces are the region nodes (and their count is the
   |R| column of Table I). *)

open Fbp_geometry

type window = {
  index : int;
  wx : int;
  wy : int;
  rect : Rect.t;
}

type piece = {
  id : int;  (* dense over all pieces of the level *)
  window : int;  (* owning window index *)
  region : int;  (* global region id (signature lookup) *)
  area : Rect_set.t;
  capacity : float;
  centroid : Point.t;  (* of the free area: embedding of the region node *)
}

type t = {
  chip : Rect.t;
  nx : int;
  ny : int;
  windows : window array;
  pieces : piece array;
  pieces_of_window : int list array;  (* window -> piece ids *)
}

let n_windows t = Array.length t.windows
let n_pieces t = Array.length t.pieces

let window_index t ~wx ~wy = (wy * t.nx) + wx

let window_at t (p : Point.t) =
  let fx = (p.Point.x -. t.chip.Rect.x0) /. Rect.width t.chip in
  let fy = (p.Point.y -. t.chip.Rect.y0) /. Rect.height t.chip in
  let wx = max 0 (min (t.nx - 1) (int_of_float (fx *. float_of_int t.nx))) in
  let wy = max 0 (min (t.ny - 1) (int_of_float (fy *. float_of_int t.ny))) in
  window_index t ~wx ~wy

(* 4-neighbour window indices with their direction (0=N,1=E,2=S,3=W). *)
let neighbors t w =
  let win = t.windows.(w) in
  let out = ref [] in
  if win.wy < t.ny - 1 then out := (0, window_index t ~wx:win.wx ~wy:(win.wy + 1)) :: !out;
  if win.wx < t.nx - 1 then out := (1, window_index t ~wx:(win.wx + 1) ~wy:win.wy) :: !out;
  if win.wy > 0 then out := (2, window_index t ~wx:win.wx ~wy:(win.wy - 1)) :: !out;
  if win.wx > 0 then out := (3, window_index t ~wx:(win.wx - 1) ~wy:win.wy) :: !out;
  !out

(* Midpoint of a window boundary for a direction — the embedding of transit
   nodes (Section IV-A). *)
let boundary_point t w dir =
  let r = t.windows.(w).rect in
  match dir with
  | 0 -> Point.make ((r.Rect.x0 +. r.Rect.x1) /. 2.0) r.Rect.y1  (* N *)
  | 1 -> Point.make r.Rect.x1 ((r.Rect.y0 +. r.Rect.y1) /. 2.0)  (* E *)
  | 2 -> Point.make ((r.Rect.x0 +. r.Rect.x1) /. 2.0) r.Rect.y0  (* S *)
  | 3 -> Point.make r.Rect.x0 ((r.Rect.y0 +. r.Rect.y1) /. 2.0)  (* W *)
  | _ -> invalid_arg "Grid.boundary_point: direction must be 0..3"

let opposite_dir = function 0 -> 2 | 1 -> 3 | 2 -> 0 | 3 -> 1 | _ -> invalid_arg "Grid.opposite_dir: direction must be 0..3"

(* [usable] optionally maps a global region id to its row-usable area; when
   given, piece capacities are measured against it (see Density), so the
   flow model never prescribes more than legalization can realize. *)
(* [capacity_slack] is subtracted from every piece's capacity (clamped at
   0): integral rounding can overfill each piece by up to one cell, so half
   a typical cell of headroom per piece keeps legalization feasible. *)
let create ?(usable : Rect_set.t array option) ?(capacity_factor = 1.0)
    ?(capacity_slack = 0.0) ~(chip : Rect.t) ~nx ~ny
    ~(regions : Fbp_movebound.Regions.t) ~(density : Density.t) () =
  if nx < 1 || ny < 1 then invalid_arg "Grid.create: need at least one window";
  let wwidth = Rect.width chip /. float_of_int nx in
  let wheight = Rect.height chip /. float_of_int ny in
  let windows =
    Array.init (nx * ny) (fun index ->
        let wx = index mod nx and wy = index / nx in
        let rect =
          Rect.make
            ~x0:(chip.Rect.x0 +. (float_of_int wx *. wwidth))
            ~y0:(chip.Rect.y0 +. (float_of_int wy *. wheight))
            ~x1:(chip.Rect.x0 +. (float_of_int (wx + 1) *. wwidth))
            ~y1:(chip.Rect.y0 +. (float_of_int (wy + 1) *. wheight))
        in
        { index; wx; wy; rect })
  in
  let pieces = ref [] in
  let pieces_of_window = Array.make (nx * ny) [] in
  let next = ref 0 in
  Array.iter
    (fun win ->
      Array.iter
        (fun (r : Fbp_movebound.Regions.region) ->
          let inter = Rect_set.intersect_rect r.Fbp_movebound.Regions.area win.rect in
          if Rect_set.area inter > 1e-9 then begin
            let raw =
              match usable with
              | None -> Density.capacity_set density inter
              | Some u ->
                density.Density.density
                *. Rect_set.area
                     (Rect_set.intersect_rect u.(r.Fbp_movebound.Regions.id) win.rect)
            in
            let capacity = Float.max 0.0 ((capacity_factor *. raw) -. capacity_slack) in
            let centroid = Density.free_centroid density inter in
            let piece =
              { id = !next; window = win.index; region = r.Fbp_movebound.Regions.id;
                area = inter; capacity; centroid }
            in
            incr next;
            pieces := piece :: !pieces;
            pieces_of_window.(win.index) <- piece.id :: pieces_of_window.(win.index)
          end)
        regions.Fbp_movebound.Regions.regions)
    windows;
  let pieces = Array.of_list (List.rev !pieces) in
  (* keep per-window lists in ascending piece order for determinism *)
  let pieces_of_window = Array.map List.rev pieces_of_window in
  { chip; nx; ny; windows; pieces; pieces_of_window }
