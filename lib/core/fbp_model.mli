(** The flow-based partitioning model (Section IV-A): cell-group, transit
    and region nodes per window, the four internal edge families plus
    zero-cost external transit arcs, solved as a MinCostFlow whose size is
    linear in |W| + |R| (Table I's property — independent of cell count). *)

open Fbp_geometry
open Fbp_flow

type group = {
  w : int;  (** window *)
  m : int;  (** class: movebound id, or [n_movebounds] for unconstrained *)
  cells : int list;
  total : float;  (** total cell area (the node's supply) *)
  cog : Point.t;  (** center of gravity (the node's embedding) *)
}

type arc_kind =
  | Cell_to_piece of { group : int; piece : int }  (** E^cr *)
  | Cell_to_transit of { group : int; dir : int }  (** E^ct *)
  | Transit_to_transit of { w : int; m : int; from_dir : int; to_dir : int }
      (** E^tt *)
  | Transit_to_piece of { w : int; m : int; dir : int; piece : int }  (** E^tr *)
  | External of { m : int; from_w : int; to_w : int; from_dir : int }
      (** E^ext (zero cost) *)

type t = {
  grid : Grid.t;
  n_classes : int;
  groups : group array;
  group_index : (int * int, int) Hashtbl.t;
  graph : Graph.t;
  supply : float array;
  arcs : (int * arc_kind) array;
  n_nodes : int;
  n_edges : int;  (** forward arcs (Table I's |E|) *)
  relaxed : bool;
      (** built with [relax_penalty]: arcs into inadmissible pieces exist,
          so a cell may legitimately land outside its movebound *)
}

type external_flow = {
  xm : int;  (** class *)
  from_w : int;
  to_w : int;
  from_dir : int;
  amount : float;
}

type solution = {
  model : t;
  verdict : Mcf.result;
  mcf_rounds : int;  (** Dijkstra rounds the MinCostFlow solve took *)
  allot : float array;
      (** area of class m prescribed to piece p at [p * n_classes + m] *)
  externals : external_flow list;  (** flow-carrying external arcs (a DAG) *)
}

(** Build the instance from current cell positions.  [relax_penalty] (the
    degradation ladder's movebound slack relaxation) also adds arcs into
    inadmissible pieces at base cost plus the penalty, so infeasibility can
    only come from genuine capacity shortage. *)
val build :
  ?relax_penalty:float ->
  Fbp_movebound.Instance.t -> Fbp_movebound.Regions.t -> Grid.t ->
  Fbp_netlist.Placement.t -> t

(** Solve; [exact] disables the greedy local-absorption seeding (slower,
    exactly optimal — the ablation/testing mode).  Zero-cost external
    cycles are cancelled so [externals] is acyclic per class.  Verdict
    [Infeasible] certifies (Theorem 3) that no fractional movebounded
    placement exists. *)
val solve : ?exact:bool -> t -> solution

(** Flow prescribed from class [m] into piece [piece]. *)
val allotment : solution -> piece:int -> m:int -> float

(** Remove zero-cost directed flow cycles among external arcs (already
    called by [solve]). *)
val cancel_external_cycles : t -> unit
