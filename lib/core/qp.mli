(** Quadratic placement solves (global and local, Section IV-B). *)

open Fbp_netlist

type stats = {
  vars : int;
  cg_iterations : int;
  residual : float;
  converged : bool;  (** both CG solves (x and y) converged *)
}

(** Solve an assembled system, writing cell positions back into the
    placement (star variables are discarded). *)
val solve_system : Config.t -> Netmodel.system -> Placement.t -> stats

(** All movable cell ids of a netlist. *)
val all_movable : Netlist.t -> int array

(** Global QP over every movable cell. *)
val solve_global :
  Config.t -> Netlist.t -> Placement.t ->
  anchor:(int -> (float * float * float * float) option) -> stats

(** Local QP over [cells] only, everything else fixed; [cell_nets] is the
    cached incidence map from {!Netlist.cell_nets}. *)
val solve_local :
  Config.t -> Netlist.t -> Placement.t ->
  cell_nets:int list array -> cells:int array ->
  anchor:(int -> (float * float * float * float) option) -> stats
