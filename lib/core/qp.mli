(** Quadratic placement solves (global and local, Section IV-B). *)

open Fbp_netlist

type stats = {
  vars : int;
  cg_iterations : int;
  residual : float;
  converged : bool;  (** both CG solves (x and y) converged *)
}

(** Solve an assembled system, writing cell positions back into the
    placement (star variables are discarded).  The x- and y-axis CG solves
    run concurrently on the domain pool; metrics are recorded after the
    join in fixed x-then-y order, so observation streams stay
    deterministic. *)
val solve_system : Config.t -> Netmodel.system -> Placement.t -> stats

(** All movable cell ids of a netlist. *)
val all_movable : Netlist.t -> int array

(** Global QP over every movable cell.  [cache] enables symbolic-structure
    reuse across rounds (see {!Netmodel.cache}). *)
val solve_global :
  Config.t -> Netlist.t -> Placement.t ->
  ?cache:Netmodel.cache ->
  anchor:(int -> (float * float * float * float) option) -> unit -> stats

(** Reusable net-dedup scratch for {!solve_local}: stamp array over net
    ids plus a growable buffer — allocation-free dedup, deterministic
    collection order.  Not safe for concurrent use; give each sequential
    caller its own. *)
type scratch

val create_scratch : unit -> scratch

(** Deduplicated, sorted ids of every net incident to [cells].  Epoch-stamp
    dedup over the scratch — no per-call allocation beyond the result
    array.  Exposed for realization's per-node net collection. *)
val dedup_nets :
  scratch -> n_nets:int -> cell_nets:int list array -> cells:int array ->
  int array

(** Local QP over [cells] only, everything else fixed; [cell_nets] is the
    cached incidence map from {!Netlist.cell_nets}.  [scratch] reuses the
    net-dedup arrays across calls (one is allocated per call otherwise). *)
val solve_local :
  Config.t -> Netlist.t -> Placement.t ->
  ?scratch:scratch ->
  cell_nets:int list array -> cells:int array ->
  anchor:(int -> (float * float * float * float) option) -> unit -> stats
