(* The BonnPlace-FBP global placement driver.

   Multilevel loop: at level l the chip is divided into a 2^l x 2^l window
   grid; a global QP (anchored to the previous level's realization) restores
   connectivity, then the flow-based partitioning assigns cells to region
   pieces respecting capacities and movebounds, and the realization turns
   the flow into concrete positions.  Levels refine until windows are a few
   rows tall; the result feeds the legalizer.

   Every level records the Table I instrumentation: flow-model size (|V|,
   |E|), window and region-piece counts, and the wall-clock split between
   flow computation and realization.

   Failure semantics (see DESIGN.md "Failure semantics"): the placement
   after each successful level is a checkpoint.  When a level fails — the
   flow certifies infeasibility even after the degradation ladder, CG
   breaks down, the deadline runs out, or an exception escapes a solver —
   the placer restores the checkpoint and returns it with a degradation
   report instead of crashing.  [Config.strict] turns every degradation
   into a typed error instead. *)

open Fbp_netlist
open Fbp_geometry
module Err = Fbp_resilience.Fbp_error
module Inject = Fbp_resilience.Inject

type level_report = {
  level : int;
  nx : int;
  ny : int;
  n_windows : int;
  n_pieces : int;
  flow_nodes : int;
  flow_edges : int;
  qp_time : float;
  flow_time : float;  (* model build + MinCostFlow *)
  realization_time : float;
  hpwl : float;
  cg_iterations : int;
  cg_residual : float;
  cg_converged : bool;  (* this level's QP solves converged *)
  mcf_cost : float;
  mcf_rounds : int;
  realization : Realization.stats;
}

type degradation =
  | Margin_dropped of { level : int }
  | Cg_restarted of { level : int; stats : Err.cg_stats }
  | Movebounds_relaxed of { level : int; unrouted : float }
  | Bisection_fallback of { reason : Err.t }
  | Level_aborted of { level : int; reason : Err.t }
  | Deadline_stop of { level : int; elapsed : float; budget : float }

type report = {
  placement : Placement.t;
  piece_of_cell : int array;  (* final-level region-piece assignment *)
  regions : Fbp_movebound.Regions.t;
  final_grid : Grid.t option;
  levels : level_report list;
  levels_planned : int;
  degradations : degradation list;  (* chronological *)
  total_time : float;
  hpwl : float;
}

let degradation_to_string = function
  | Margin_dropped { level } ->
    Printf.sprintf
      "level %d: legalizability margin made a movebound class infeasible; \
       capacity margin dropped"
      level
  | Cg_restarted { level; stats } ->
    Printf.sprintf
      "level %d: CG diverged (residual %.2e after %d iters); safeguarded \
       restart with stronger anchors"
      level stats.Err.residual stats.Err.iterations
  | Movebounds_relaxed { level; unrouted } ->
    Printf.sprintf
      "level %d: flow infeasible (%.1f area unrouted); movebound slack \
       relaxation applied"
      level unrouted
  | Bisection_fallback { reason } ->
    Printf.sprintf "fell back to recursive bisection placement: %s"
      (Err.to_string reason)
  | Level_aborted { level; reason } ->
    Printf.sprintf "level %d aborted, returning last-good checkpoint: %s" level
      (Err.to_string reason)
  | Deadline_stop { level; elapsed; budget } ->
    Printf.sprintf
      "deadline: stopped before level %d (%.2fs elapsed of %.2fs budget); \
       returning last-good checkpoint"
      level elapsed budget

let log_verbose (cfg : Config.t) fmt =
  if cfg.Config.verbose then Printf.eprintf fmt
  else Printf.ifprintf stderr fmt

(* Number of levels: refine while windows stay at least [min_window_rows]
   rows tall and the flow model stays tractable.  The MinCostFlow size (and
   the successive-shortest-paths cost) grows with windows x movebound
   classes, so movebound-heavy instances stop a level earlier than plain
   ones (the paper's network simplex absorbed finer grids; see DESIGN.md). *)
let n_levels (cfg : Config.t) (design : Design.t) =
  let chip_h = Rect.height design.Design.chip in
  let nl = design.Design.netlist in
  let n_movable = ref 0 in
  let classes = Hashtbl.create 8 in
  for c = 0 to Netlist.n_cells nl - 1 do
    if not nl.Netlist.fixed.(c) then begin
      incr n_movable;
      Hashtbl.replace classes nl.Netlist.movebound.(c) ()
    end
  done;
  let per_window =
    if Hashtbl.length classes > 4 then 20
    else if !n_movable < 3000 then 4  (* small designs need the finer grid *)
    else 6
  in
  let rec go l =
    let windows_h = chip_h /. float_of_int (1 lsl l) in
    if l >= cfg.Config.max_levels
       || windows_h < cfg.Config.min_window_rows *. design.Design.row_height
       || (1 lsl (2 * l)) * per_window > !n_movable
    then l - 1
    else go (l + 1)
  in
  max 1 (go 1)

let cg_stats_of (s : Qp.stats) =
  {
    Err.iterations = s.Qp.cg_iterations;
    residual = s.Qp.residual;
    converged = s.Qp.converged;
  }

let blit_placement ~(src : Placement.t) ~(dst : Placement.t) =
  Array.blit src.Placement.x 0 dst.Placement.x 0 (Array.length src.Placement.x);
  Array.blit src.Placement.y 0 dst.Placement.y 0 (Array.length src.Placement.y)

(* How much stronger the anchors get on a safeguarded CG restart: the extra
   diagonal mass reconditions the system while pulling toward the last-good
   positions the restart resumes from. *)
let cg_restart_factor = 8.0

exception Abort of Err.t

let place ?(config = Config.default) ?on_level ?fallback
    (inst0 : Fbp_movebound.Instance.t) =
  match Fbp_movebound.Instance.normalize inst0 with
  | Error e -> Error (Err.Invalid_input ("movebound normalization failed: " ^ e))
  | Ok inst ->
    let design = inst.Fbp_movebound.Instance.design in
    let nl = design.Design.netlist in
    let t_start = Fbp_util.Timer.now () in
    (* deadline clock; fault injection can add virtual seconds *)
    let injected_delay = ref 0.0 in
    let elapsed () = Fbp_util.Timer.now () -. t_start +. !injected_delay in
    let degradations = ref [] in
    let degrade d = degradations := d :: !degradations in
    let regions =
      Fbp_movebound.Regions.decompose ~chip:design.Design.chip
        inst.Fbp_movebound.Instance.movebounds
    in
    let density = Density.create design in
    (* row-usable area per region: flow capacities must not exceed what the
       row-based legalizer can actually realize *)
    let usable =
      Array.map
        (fun (r : Fbp_movebound.Regions.region) ->
          Density.usable_rows_area density ~chip:design.Design.chip
            ~row_height:design.Design.row_height r.Fbp_movebound.Regions.area)
        regions.Fbp_movebound.Regions.regions
    in
    let cell_nets = Netlist.cell_nets nl in
    (* Symbolic-structure cache for the global QPs: every round assembles
       the same net topology over the same movable set, so after the first
       capture each assembly is a flat value sweep (verified, never
       trusted blindly — see Netmodel.cache). *)
    let qp_cache = Netmodel.create_cache () in
    let pos = Placement.copy design.Design.initial in
    let chip_center = Rect.center design.Design.chip in
    (* Level 0: plain global QP, weakly anchored at the chip center so that
       components without fixed pins stay determined.  A diverged solve is
       restarted once from the initial positions with stronger anchors. *)
    let solve_qp0 w =
      Qp.solve_global config nl pos ~cache:qp_cache ~anchor:(fun _ ->
          Some (w, chip_center.Point.x, w, chip_center.Point.y)) ()
    in
    let pre_qp0 = Placement.copy pos in
    let qp0 = solve_qp0 1e-6 in
    let qp0 =
      if qp0.Qp.converged then qp0
      else begin
        degrade (Cg_restarted { level = 0; stats = cg_stats_of qp0 });
        blit_placement ~src:pre_qp0 ~dst:pos;
        solve_qp0 1e-3
      end
    in
    if (not qp0.Qp.converged) && config.Config.strict then
      Error (Err.Cg_diverged (cg_stats_of qp0))
    else begin
      if not qp0.Qp.converged then
        log_verbose config "[fbp] level 0: CG not converged (residual %.2e)\n"
          qp0.Qp.residual;
      let levels = ref [] in
      let piece_of_cell = ref (Array.make (Netlist.n_cells nl) (-1)) in
      let final_grid = ref None in
      let max_level = n_levels config design in
      let stop = ref None in  (* terminal typed error (strict mode) *)
      let halted = ref false in  (* graceful stop: checkpoint is the result *)
      let margin_ok = ref true in
      (* checkpoint: positions after the previous successful realization *)
      let anchor_pos = ref (Placement.copy pos) in
      let handle_failure level reason =
        match reason with
        (* A sanitizer violation means solver state is corrupt: degradation
           would launder a wrong answer into a "successful" run.  Hard stop
           regardless of strictness. *)
        | Err.Sanitizer_violation _ -> stop := Some reason
        | _ ->
        if config.Config.strict then stop := Some reason
        else
          match (reason, fallback) with
          | Err.Deadline_exceeded { elapsed; budget; _ }, _ ->
            (* mid-level deadline: the level is half-done (QP may have moved
               cells), so restore the checkpoint like any aborted level, but
               report it as a deadline stop rather than a failure *)
            blit_placement ~src:!anchor_pos ~dst:pos;
            degrade (Deadline_stop { level; elapsed; budget });
            halted := true
          | Err.Infeasible_flow _, Some fb when !levels = [] ->
            (* nothing realized yet: a checkpoint return would be the raw QP
               solution (fully overlapped) — recursive bisection degrades
               more usefully *)
            (match fb () with
             | Ok p ->
               blit_placement ~src:p ~dst:pos;
               degrade (Bisection_fallback { reason });
               halted := true
             | Error msg ->
               stop := Some (Err.Internal { site = "bisection fallback"; msg }))
          | _ ->
            blit_placement ~src:!anchor_pos ~dst:pos;
            degrade (Level_aborted { level; reason });
            halted := true
      in
      let l = ref 1 in
      while (not !halted) && !stop = None && !l <= max_level do
        let level = !l in
        let nx = 1 lsl level and ny = 1 lsl level in
        (* fault-injection hook for this level; [Raise] fires inside the
           protected body below so it exercises the real recovery path *)
        let injected_exn = ref None in
        (match Inject.fire Inject.Level with
         | Some (Inject.Delay s) -> injected_delay := !injected_delay +. s
         | Some (Inject.Raise msg) -> injected_exn := Some msg
         | _ -> ());
        (match config.Config.deadline with
         | Some budget when elapsed () > budget ->
           if config.Config.strict then
             stop := Some (Err.Deadline_exceeded { elapsed = elapsed (); budget; level })
           else begin
             degrade (Deadline_stop { level; elapsed = elapsed (); budget });
             halted := true
           end
         | _ ->
           (try
              Fbp_obs.Obs.span "place.level"
                ~args:(fun () ->
                  [ ("level", string_of_int level);
                    ("nx", string_of_int nx); ("ny", string_of_int ny) ])
                (fun () ->
              (match !injected_exn with
               | Some msg -> raise (Inject.Injected msg)
               | None -> ());
              (* Mid-level deadline checks: with only the boundary check, one
                 slow QP or flow solve can overshoot the budget by a whole
                 level.  Also polls the Level injection site, so the site is
                 hit 3x per level (start, post-QP, post-flow) and fault
                 schedules can target these checks deterministically. *)
              let check_deadline () =
                (match Inject.fire Inject.Level with
                 | Some (Inject.Delay s) -> injected_delay := !injected_delay +. s
                 | Some (Inject.Raise msg) -> raise (Inject.Injected msg)
                 | _ -> ());
                match config.Config.deadline with
                | Some budget when elapsed () > budget ->
                  raise (Abort (Err.Deadline_exceeded { elapsed = elapsed (); budget; level }))
                | _ -> ()
              in
              let anchor_w =
                config.Config.anchor_base
                *. (config.Config.anchor_growth ** float_of_int level)
              in
              (* QP anchored to the previous level's realization.  A diverged
                 solve is restarted from the checkpoint with stronger anchors
                 (safeguarded restart); a second divergence is fatal only in
                 strict mode. *)
              let qp_stats, qp_time =
                Fbp_util.Timer.time (fun () ->
                    Fbp_obs.Profiler.with_phase "qp" @@ fun () ->
                    Fbp_obs.Obs.span "place.qp"
                      ~args:(fun () -> [ ("level", string_of_int level) ])
                      (fun () ->
                    if level > 1 then begin
                      let solve w =
                        Qp.solve_global config nl pos ~cache:qp_cache
                          ~anchor:(fun c ->
                            Some (w, !anchor_pos.Placement.x.(c), w,
                                  !anchor_pos.Placement.y.(c))) ()
                      in
                      let s = solve anchor_w in
                      if s.Qp.converged then s
                      else begin
                        degrade (Cg_restarted { level; stats = cg_stats_of s });
                        blit_placement ~src:!anchor_pos ~dst:pos;
                        solve (anchor_w *. cg_restart_factor)
                      end
                    end
                    else
                      { Qp.vars = 0; cg_iterations = 0; residual = 0.0; converged = true }))
              in
              check_deadline ();
              if not qp_stats.Qp.converged then begin
                if config.Config.strict then
                  raise (Abort (Err.Cg_diverged (cg_stats_of qp_stats)));
                log_verbose config
                  "[fbp] level %d: CG not converged (residual %.2e after %d iters)\n"
                  level qp_stats.Qp.residual qp_stats.Qp.cg_iterations
              end;
              (* Flow capacities carry a legalizability margin (integral
                 rounding can overfill a piece by up to one cell; rows lose
                 slivers).  The degradation ladder on infeasibility: drop the
                 margin, then relax movebound admissibility with a distance
                 penalty, then (caller-provided) recursive bisection. *)
              let build_and_solve ?relax_penalty capacity_factor capacity_slack =
                let grid =
                  Grid.create ~usable ~capacity_factor ~capacity_slack
                    ~chip:design.Design.chip ~nx ~ny ~regions ~density ()
                in
                let model = Fbp_model.build ?relax_penalty inst regions grid pos in
                (grid, model, Fbp_model.solve model)
              in
              (* half a typical movable cell of headroom per piece against
                 integral rounding overfill *)
              let slack =
                let acc = ref 0.0 and n = ref 0 in
                for c = 0 to Netlist.n_cells nl - 1 do
                  if not nl.Netlist.fixed.(c) then begin
                    acc := !acc +. Netlist.size nl c;
                    incr n
                  end
                done;
                if !n = 0 then 0.0 else 0.5 *. !acc /. float_of_int !n
              in
              let (grid, model, sol), flow_time =
                Fbp_util.Timer.time (fun () ->
                    Fbp_obs.Profiler.with_phase "flow" @@ fun () ->
                    Fbp_obs.Obs.span "place.flow"
                      ~args:(fun () -> [ ("level", string_of_int level) ])
                      (fun () ->
                    let attempt =
                      if not !margin_ok then build_and_solve 1.0 0.0
                      else
                        match build_and_solve config.Config.capacity_margin slack with
                        | (_, _, { Fbp_model.verdict = Fbp_flow.Mcf.Infeasible _; _ })
                          when config.Config.capacity_margin < 1.0 || slack > 0.0 ->
                          (* margins make this instance infeasible: drop them
                             for the remaining levels too (avoids re-solving
                             twice each level) *)
                          margin_ok := false;
                          degrade (Margin_dropped { level });
                          build_and_solve 1.0 0.0
                        | ok -> ok
                    in
                    match attempt with
                    | (_, _, { Fbp_model.verdict = Fbp_flow.Mcf.Infeasible { unrouted }; _ })
                      when not config.Config.strict ->
                      (* movebound slack relaxation: allow out-of-bound pieces
                         at a penalty of one chip half-perimeter per unit *)
                      let pen =
                        2.0 *. (Rect.width design.Design.chip +. Rect.height design.Design.chip)
                      in
                      (match build_and_solve ~relax_penalty:pen 1.0 0.0 with
                       | (_, _, { Fbp_model.verdict = Fbp_flow.Mcf.Feasible _; _ }) as ok ->
                         degrade (Movebounds_relaxed { level; unrouted });
                         ok
                       | failed -> failed)
                    | a -> a))
              in
              check_deadline ();
              match sol.Fbp_model.verdict with
              | Fbp_flow.Mcf.Infeasible { unrouted } ->
                raise (Abort (Err.Infeasible_flow { unrouted; level }))
              | Fbp_flow.Mcf.Feasible { cost = mcf_cost } ->
                let r, realization_time =
                  Fbp_util.Timer.time (fun () ->
                      Fbp_obs.Profiler.with_phase "realization" @@ fun () ->
                      Fbp_obs.Obs.span "place.realization"
                        ~args:(fun () -> [ ("level", string_of_int level) ])
                        (fun () ->
                          Realization.realize config inst regions sol pos ~cell_nets))
                in
                piece_of_cell := r.Realization.piece_of_cell;
                final_grid := Some grid;
                blit_placement ~src:pos ~dst:!anchor_pos;
                let hpwl = Hpwl.total nl pos in
                let rep =
                  {
                    level;
                    nx;
                    ny;
                    n_windows = Grid.n_windows grid;
                    n_pieces = Grid.n_pieces grid;
                    flow_nodes = model.Fbp_model.n_nodes;
                    flow_edges = model.Fbp_model.n_edges;
                    qp_time;
                    flow_time;
                    realization_time;
                    hpwl;
                    cg_iterations = qp_stats.Qp.cg_iterations;
                    cg_residual = qp_stats.Qp.residual;
                    cg_converged = qp_stats.Qp.converged;
                    mcf_cost;
                    mcf_rounds = sol.Fbp_model.mcf_rounds;
                    realization = r.Realization.stats;
                  }
                in
                levels := rep :: !levels;
                (* level boundary: GC gauges for the metrics export, and a
                   flight-recorder snapshot when [--record] armed it (the
                   density/legality audits only run in that case) *)
                Fbp_obs.Obs.sample_gc ();
                (* drain the runtime-events ring at each level so overflow
                   stays bounded and trace injection is incremental *)
                Fbp_obs.Profiler.poll ();
                if Fbp_obs.Recorder.enabled () then begin
                  let module R = Fbp_obs.Recorder in
                  R.record_level
                    {
                      R.level;
                      nx;
                      ny;
                      n_windows = rep.n_windows;
                      n_pieces = rep.n_pieces;
                      flow_nodes = rep.flow_nodes;
                      flow_edges = rep.flow_edges;
                      hpwl;
                      density_overflow =
                        Density.overflow_fraction design pos ~nx ~ny;
                      mb_violations =
                        (Fbp_movebound.Legality.check inst pos)
                          .Fbp_movebound.Legality.n_violations;
                      cg_iterations = qp_stats.Qp.cg_iterations;
                      cg_residual = qp_stats.Qp.residual;
                      cg_converged = qp_stats.Qp.converged;
                      mcf_cost;
                      mcf_rounds = sol.Fbp_model.mcf_rounds;
                      waves = r.Realization.stats.Realization.n_waves;
                      shipped_cells =
                        r.Realization.stats.Realization.n_shipped_cells;
                      fallback_cells =
                        r.Realization.stats.Realization.n_fallback_cells;
                      qp_time;
                      flow_time;
                      realization_time;
                      gc = R.gc_boundary ();
                    }
                end;
                log_verbose config "[fbp] level %d: %dx%d windows, %d pieces, hpwl %.3e\n"
                  level nx ny (Grid.n_pieces grid) hpwl;
                (match on_level with Some f -> f rep | None -> ()))
            with
            | Abort reason -> handle_failure level reason
            | Inject.Injected msg ->
              handle_failure level (Err.Internal { site = "injected"; msg })
            | e -> handle_failure level (Err.of_exn ~site:(Printf.sprintf "level %d" level) e)));
        incr l
      done;
      List.iter
        (fun d -> log_verbose config "[fbp] degraded: %s\n" (degradation_to_string d))
        (List.rev !degradations);
      match !stop with
      | Some e -> Error e
      | None ->
        Ok
          {
            placement = pos;
            piece_of_cell = !piece_of_cell;
            regions;
            final_grid = !final_grid;
            levels = List.rev !levels;
            levels_planned = max_level;
            degradations = List.rev !degradations;
            total_time = Fbp_util.Timer.now () -. t_start;
            hpwl = Hpwl.total nl pos;
          }
    end
