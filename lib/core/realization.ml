(* Realization of a flow solution (Section IV-B).

   The MinCostFlow prescribes aggregate movements; the realization decides
   *which* concrete cells follow them.  Flow-carrying external arcs form a
   DAG over (window, class) nodes after zero-cycle cancellation; processing
   nodes in topological order guarantees that when (w, M) is handled, every
   cell that the flow routes into w has already arrived (buffered at w's
   transit side).  For each node we:

   1. solve a local QP over the node's cells (everything else fixed) for
      connectivity information;
   2. run the movebound-aware transportation: sinks are the window's region
      pieces with their flow allotments for this class, plus one temporary
      region per outgoing external arc located at the window boundary with
      capacity equal to the arc's flow — exactly the transit-node buffer
      capacities of Eq. (2);
   3. round the fractional assignment; shipped cells move just across the
      boundary and join the target window's buffer, staying cells project
      into their assigned piece.

   Nodes of one topological wave are independent (their cell sets are
   disjoint and arrivals only materialize at the wave commit), so waves run
   in parallel over domains with a deterministic commit order — the paper's
   deterministic parallel realization. *)

open Fbp_geometry
open Fbp_netlist
open Fbp_flow

type step = {
  node_w : int;
  node_m : int;
  n_cells : int;
  shipped : float;  (* area sent over external arcs *)
  stayed : float;
}

type stats = {
  n_steps : int;
  n_waves : int;
  n_shipped_cells : int;
  n_fallback_cells : int;  (* cells placed without a flow prescription *)
  max_piece_overfill : float;  (* worst piece load minus allotted capacity *)
}

type result = {
  piece_of_cell : int array;  (* cell -> piece id (-1 for fixed cells) *)
  stats : stats;
}

let eps = 1e-7

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> n
    | _ -> default)

(* Waves whose total cell count is below this run on the calling domain:
   a handful of tiny transportation problems finishes before a worker
   wakeup would even land.  Most realization waves are this small — the
   per-wave fork/join on them is what made PR5 anti-scale. *)
let seq_wave_cells = env_int "FBP_REAL_SEQ_CELLS" 512

(* Target cells (not nodes) per parallel chunk.  Nodes are wildly
   heterogeneous — one 300-cell node costs more than fifty 2-cell ones —
   so chunking by node count (what [Parallel.map_array] did) starves some
   domains and overloads others. *)
let wave_grain_cells = env_int "FBP_REAL_GRAIN_CELLS" 128

let max_wave_chunks = 64

(* Compact snapshot of the given cells' positions.  O(cells of the wave),
   replacing the seed's per-wave [Placement.copy pos] — O(design) per
   wave was the dominant anti-scaling term, and it hurt at *every* domain
   count. *)
let snapshot (pos : Placement.t) (cells : int array) =
  ( Array.map (fun c -> pos.Placement.x.(c)) cells,
    Array.map (fun c -> pos.Placement.y.(c)) cells )

(* A destination decided for one cell during a step. *)
type dest =
  | To_piece of int
  | To_buffer of { to_w : int; x : float; y : float }

(* Read-only inputs of one (window, class) node, gathered on the
   coordinating domain between waves.  [nqx]/[nqy] seed the node's local
   QP and are mutated in place by it — node-private by construction. *)
type node_input = {
  nw : int;
  nm : int;
  ncells : int array;  (* sorted member cell ids *)
  nqx : float array;  (* compact pre-wave position snapshot *)
  nqy : float array;
  narcs : Fbp_model.external_flow list;  (* outgoing external arcs *)
}

let realize ?(on_step : (step -> unit) option) (cfg : Config.t)
    (inst : Fbp_movebound.Instance.t) (regions : Fbp_movebound.Regions.t)
    (sol : Fbp_model.solution) (pos : Placement.t)
    ~(cell_nets : int list array) =
  let model = sol.Fbp_model.model in
  let grid = model.Fbp_model.grid in
  let nl = inst.Fbp_movebound.Instance.design.Design.netlist in
  let k = Fbp_movebound.Instance.n_movebounds inst in
  let n_classes = model.Fbp_model.n_classes in
  let piece_of_cell = Array.make (Netlist.n_cells nl) (-1) in
  (* current members of each (window, class) node *)
  let members : (int * int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (g : Fbp_model.group) ->
      Hashtbl.replace members (g.Fbp_model.w, g.Fbp_model.m) (ref g.Fbp_model.cells))
    model.Fbp_model.groups;
  (* outgoing external arcs per node, incoming degree per node *)
  let outgoing : (int * int, Fbp_model.external_flow list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let indegree : (int * int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let touch tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r = ref v in
      Hashtbl.add tbl key r;
      r
  in
  List.iter
    (fun (e : Fbp_model.external_flow) ->
      let o = touch outgoing (e.Fbp_model.from_w, e.Fbp_model.xm) [] in
      o := e :: !o;
      incr (touch indegree (e.Fbp_model.to_w, e.Fbp_model.xm) 0);
      ignore (touch indegree (e.Fbp_model.from_w, e.Fbp_model.xm) 0))
    sol.Fbp_model.externals;
  (* node set: anything with cells or participating in external flow *)
  let nodes : (int * int, unit) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter (fun key _ -> Hashtbl.replace nodes key ()) members;
  Hashtbl.iter (fun key _ -> Hashtbl.replace nodes key ()) indegree;
  let compare_wm (w1, m1) (w2, m2) =
    match Int.compare w1 w2 with 0 -> Int.compare m1 m2 | c -> c
  in
  let node_list =
    Hashtbl.fold (fun key () acc -> key :: acc) nodes []
    |> List.sort compare_wm
  in
  let indeg (w, m) = match Hashtbl.find_opt indegree (w, m) with Some r -> !r | None -> 0 in
  (* Kahn waves *)
  let waves = ref [] in
  let remaining = Hashtbl.copy nodes in
  let degree = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace degree n (indeg n)) node_list;
  let n_waves = ref 0 in
  while Hashtbl.length remaining > 0 do
    let ready =
      List.filter
        (fun n -> Hashtbl.mem remaining n && Hashtbl.find degree n = 0)
        node_list
    in
    if ready = [] then begin
      (* should not happen after cycle cancellation; break ties by releasing
         the smallest node to avoid deadlock on numerical residue *)
      let n = List.find (Hashtbl.mem remaining) node_list in
      Hashtbl.replace degree n 0;
      ignore n
    end
    else begin
      incr n_waves;
      waves := ready :: !waves;
      List.iter
        (fun n ->
          Hashtbl.remove remaining n;
          match Hashtbl.find_opt outgoing n with
          | None -> ()
          | Some arcs ->
            List.iter
              (fun (e : Fbp_model.external_flow) ->
                let succ = (e.Fbp_model.to_w, e.Fbp_model.xm) in
                match Hashtbl.find_opt degree succ with
                | Some d -> Hashtbl.replace degree succ (d - 1)
                | None -> ())
              !arcs)
        ready
    end
  done;
  let waves = List.rev !waves in
  (* statistics *)
  let n_steps = ref 0 and n_shipped = ref 0 and n_fallback = ref 0 in
  let max_overfill = ref 0.0 in
  (* fallback piece: nearest admissible piece in/near the window *)
  let fallback_piece w m (pt : Point.t) =
    let mb = if m = k then -1 else m in
    let best = ref (-1) and bestd = ref infinity in
    let consider pid =
      let p = grid.Grid.pieces.(pid) in
      let reg = regions.Fbp_movebound.Regions.regions.(p.Grid.region) in
      if Fbp_movebound.Regions.admissible reg ~mb then begin
        let d = Rect_set.dist_l1_point p.Grid.area pt in
        if d < !bestd then begin
          bestd := d;
          best := pid
        end
      end
    in
    List.iter consider grid.Grid.pieces_of_window.(w);
    if !best < 0 then
      (* widen to the whole grid (rare: window fully inadmissible) *)
      Array.iter (fun (p : Grid.piece) -> consider p.Grid.id) grid.Grid.pieces;
    !best
  in
  (* Fallback placement: nearest admissible piece, with the position
     projected into its area so the post-realization invariants (cell inside
     its assigned piece) hold even off the flow path. *)
  let fallback_move w m c (pt : Point.t) =
    let pid = fallback_piece w m pt in
    if pid < 0 then (c, pt.Point.x, pt.Point.y, To_piece pid, true)
    else begin
      let proj = Rect_set.project_point grid.Grid.pieces.(pid).Grid.area pt in
      (c, proj.Point.x, proj.Point.y, To_piece pid, true)
    end
  in
  let n_nets = Netlist.n_nets nl in
  (* Inputs of one node, snapshotted from the shared [members]/[outgoing]
     tables *before* the parallel map: worker domains must never touch the
     mutable tables (unsynchronized Hashtbl reads race with the commit
     phase's writes between waves).  The position snapshot is compact —
     only the node's own cells — because [pos] itself is not mutated
     during a wave's map phase (commits happen post-join), so everything
     a worker needs beyond its private QP seeds can be read from [pos]
     directly. *)
  let node_input (w, m) =
    let cells =
      match Hashtbl.find_opt members (w, m) with
      | Some r -> Array.of_list (List.sort_uniq Int.compare !r)
      | None -> [||]
    in
    let transit_arcs =
      match Hashtbl.find_opt outgoing (w, m) with
      | None -> []
      | Some arcs -> !arcs
    in
    let nqx, nqy = snapshot pos cells in
    { nw = w; nm = m; ncells = cells; nqx; nqy; narcs = transit_arcs }
  in
  (* process one node against read-only inputs; returns the moves plus the
     local-QP solver stats (recorded by the caller post-join in wave order,
     so the metrics stream stays deterministic at any domain count).
     [scratch] is chunk-private (net-dedup stamp arrays). *)
  let process_node ~scratch ni =
    let w = ni.nw and m = ni.nm in
    let cells = ni.ncells and transit_arcs = ni.narcs in
    if Array.length cells = 0 then ((w, m), [||], None)
    else begin
      let qp_stats = ref None in
      (* 1. local QP for connectivity (optional) *)
      let qx = ni.nqx and qy = ni.nqy in
      if cfg.Config.local_qp && Array.length cells > 1 then begin
        let nets = Qp.dedup_nets scratch ~n_nets ~cell_nets ~cells in
        let win_rect = grid.Grid.windows.(w).Grid.rect in
        let ctr = Rect.center win_rect in
        let sys =
          Netmodel.assemble nl pos ~movable:cells ~nets
            ~clique_max_degree:cfg.Config.clique_max_degree
            ~anchor:(fun _ -> Some (1e-4, ctr.Point.x, 1e-4, ctr.Point.y))
            ()
        in
        let xv = Array.make sys.Netmodel.n_vars 0.0 in
        let yv = Array.make sys.Netmodel.n_vars 0.0 in
        Array.iteri
          (fun v c ->
            if c >= 0 then begin
              xv.(v) <- pos.Placement.x.(c);
              yv.(v) <- pos.Placement.y.(c)
            end)
          sys.Netmodel.cells;
        let st_x =
          Fbp_linalg.Cg.solve ~record:false ~max_iter:60 ~tol:1e-4
            sys.Netmodel.ax sys.Netmodel.bx xv
        in
        let st_y =
          Fbp_linalg.Cg.solve ~record:false ~max_iter:60 ~tol:1e-4
            sys.Netmodel.ay sys.Netmodel.by yv
        in
        qp_stats := Some (st_x, st_y);
        Array.iteri
          (fun i _ ->
            qx.(i) <- xv.(i);
            qy.(i) <- yv.(i))
          cells
      end;
      (* 2. transportation sinks: region pieces + outgoing transit buffers *)
      let piece_sinks =
        List.filter_map
          (fun pid ->
            let a = sol.Fbp_model.allot.((pid * n_classes) + m) in
            if a > eps then Some (`Piece pid, a) else None)
          grid.Grid.pieces_of_window.(w)
      in
      let transit_sinks =
        List.map
          (fun (e : Fbp_model.external_flow) ->
            (`Transit e, e.Fbp_model.amount))
          transit_arcs
      in
      let sinks = Array.of_list (piece_sinks @ transit_sinks) in
      let total_size =
        Array.fold_left (fun acc c -> acc +. Netlist.size nl c) 0.0 cells
      in
      let total_cap = Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 sinks in
      if Array.length sinks = 0 then begin
        (* no prescription (numerical residue): everything falls back *)
        ((w, m),
         Array.mapi
           (fun i c -> fallback_move w m c (Point.make qx.(i) qy.(i)))
           cells,
         !qp_stats)
      end
      else begin
        (* integral rounding can make cells outgrow the prescriptions:
           inflate sink capacities proportionally so transport stays
           feasible; legalization absorbs the slack *)
        let scale = if total_cap < total_size then total_size /. total_cap +. 1e-6 else 1.0 in
        let sink_caps = Array.map (fun (_, c) -> c *. scale) sinks in
        let sink_cost i j =
          let pt = Point.make qx.(i) qy.(i) in
          match fst sinks.(j) with
          | `Piece pid -> Rect_set.dist_l1_point grid.Grid.pieces.(pid).Grid.area pt
          | `Transit (e : Fbp_model.external_flow) ->
            Point.dist_l1 pt (Grid.boundary_point grid w e.Fbp_model.from_dir)
        in
        let problem =
          {
            Transport.sizes = Array.map (fun c -> Netlist.size nl c) cells;
            capacities = sink_caps;
            cost = sink_cost;
          }
        in
        match Transport.solve problem with
        | Error _ ->
          ((w, m),
           Array.mapi
             (fun i c -> fallback_move w m c (Point.make qx.(i) qy.(i)))
             cells,
           !qp_stats)
        | Ok assignment ->
          let choice = Transport.round_integral assignment in
          (* Cells staying in a piece are not merely projected (that piles
             them on the nearest boundary): each piece-group's QP positions
             are linearly remapped into the piece's bounding box, preserving
             relative order — then projected into the (possibly non-convex)
             piece area. *)
          let remap = Hashtbl.create 8 in
          Array.iteri
            (fun i _ ->
              let j = choice.(i) in
              if j >= 0 then
                match fst sinks.(j) with
                | `Piece pid ->
                  Hashtbl.replace remap pid (i :: (try Hashtbl.find remap pid with Not_found -> []))
                | `Transit _ -> ())
            cells;
          let remap_fn = Hashtbl.create 8 in
          Hashtbl.iter
            (fun pid idxs ->
              let p = grid.Grid.pieces.(pid) in
              let bb = Rect_set.bbox p.Grid.area in
              let x0 = ref infinity and x1 = ref neg_infinity in
              let y0 = ref infinity and y1 = ref neg_infinity in
              List.iter
                (fun i ->
                  if qx.(i) < !x0 then x0 := qx.(i);
                  if qx.(i) > !x1 then x1 := qx.(i);
                  if qy.(i) < !y0 then y0 := qy.(i);
                  if qy.(i) > !y1 then y1 := qy.(i))
                idxs;
              let sx = !x1 -. !x0 and sy = !y1 -. !y0 in
              let f (pt : Point.t) =
                let fx = if sx > 1e-9 then (pt.Point.x -. !x0) /. sx else 0.5 in
                let fy = if sy > 1e-9 then (pt.Point.y -. !y0) /. sy else 0.5 in
                Point.make
                  (bb.Rect.x0 +. (fx *. Rect.width bb))
                  (bb.Rect.y0 +. (fy *. Rect.height bb))
              in
              Hashtbl.replace remap_fn pid f)
            remap;
          ((w, m),
           Array.mapi
             (fun i c ->
               let j = choice.(i) in
               if j < 0 then fallback_move w m c (Point.make qx.(i) qy.(i))
               else
                 match fst sinks.(j) with
                 | `Piece pid ->
                   let p = grid.Grid.pieces.(pid) in
                   let mapped = (Hashtbl.find remap_fn pid) (Point.make qx.(i) qy.(i)) in
                   let proj = Rect_set.project_point p.Grid.area mapped in
                   (c, proj.Point.x, proj.Point.y, To_piece pid, false)
                 | `Transit (e : Fbp_model.external_flow) ->
                   (* land just inside the target window, near the boundary *)
                   let b = Grid.boundary_point grid w e.Fbp_model.from_dir in
                   let tr = grid.Grid.windows.(e.Fbp_model.to_w).Grid.rect in
                   let step_x = 0.05 *. Rect.width tr and step_y = 0.05 *. Rect.height tr in
                   let land_ =
                     match e.Fbp_model.from_dir with
                     | 0 -> Point.make b.Point.x (b.Point.y +. step_y)
                     | 1 -> Point.make (b.Point.x +. step_x) b.Point.y
                     | 2 -> Point.make b.Point.x (b.Point.y -. step_y)
                     | _ -> Point.make (b.Point.x -. step_x) b.Point.y
                   in
                   let land_ = Rect.clamp_point tr land_ in
                   (c, land_.Point.x, land_.Point.y,
                    To_buffer { to_w = e.Fbp_model.to_w; x = land_.Point.x; y = land_.Point.y },
                    false))
             cells,
           !qp_stats)
      end
    end
  in
  (* piece loads for the overfill audit *)
  let piece_load = Array.make (Grid.n_pieces grid) 0.0 in
  (* Clamp to physical cores: beyond them, extra domains only time-slice
     and add wakeup latency (results are domain-count-invariant anyway).
     One resident lease serves every wave — workers park between waves
     instead of paying a fork/join pair per wave. *)
  let eff_domains =
    if cfg.Config.hw_clamp then
      min cfg.Config.domains Fbp_util.Pool.hardware_domains
    else cfg.Config.domains
  in
  let lease =
    if eff_domains > 1 then Some (Fbp_util.Pool.lease ~domains:eff_domains ())
    else None
  in
  let helpers =
    match lease with Some l -> Fbp_util.Pool.lease_helpers l | None -> 0
  in
  let d0 = Fbp_util.Pool.n_dispatches () in
  (* Chunk-private net-dedup scratches, persistent across waves (slot [c]
     is only ever touched by the owner of chunk [c - 1]; the lease's
     completion latch orders cross-wave reuse).  Slot 0 backs the
     sequential fast path. *)
  let scratches = Array.make (max_wave_chunks + 1) None in
  let scratch_for slot =
    match scratches.(slot) with
    | Some s -> s
    | None ->
      let s = Qp.create_scratch () in
      scratches.(slot) <- Some s;
      s
  in
  let run_wave wave_arr =
    let n_nodes = Array.length wave_arr in
    let total_cells =
      Array.fold_left (fun acc ni -> acc + Array.length ni.ncells) 0 wave_arr
    in
    Fbp_obs.Obs.count ~n:total_cells "realization.snapshot_cells";
    let out = Array.make n_nodes ((0, 0), [||], None) in
    if helpers > 0 && n_nodes > 1 && total_cells >= seq_wave_cells then begin
      let l = Option.get lease in
      (* contiguous chunks balanced by cumulative cell count *)
      let max_k = min max_wave_chunks (4 * (helpers + 1)) in
      let target = max wave_grain_cells (1 + (total_cells / max_k)) in
      let starts = Array.make (max_k + 1) n_nodes in
      starts.(0) <- 0;
      let k = ref 1 and acc = ref 0 in
      for i = 0 to n_nodes - 1 do
        acc := !acc + Array.length wave_arr.(i).ncells;
        if !acc >= target && i < n_nodes - 1 && !k < max_k then begin
          starts.(!k) <- i + 1;
          incr k;
          acc := 0
        end
      done;
      Fbp_util.Pool.lease_run l ~n_chunks:!k (fun c ->
          let scratch = scratch_for (c + 1) in
          for i = starts.(c) to starts.(c + 1) - 1 do
            out.(i) <- process_node ~scratch wave_arr.(i)
          done)
    end
    else begin
      (* sequential fast path: same map-all-then-commit shape as the
         parallel path, so results are bitwise identical *)
      let scratch = scratch_for 0 in
      for i = 0 to n_nodes - 1 do
        out.(i) <- process_node ~scratch wave_arr.(i)
      done
    end;
    out
  in
  Fun.protect
    ~finally:(fun () ->
      (match lease with
      | Some l -> Fbp_util.Pool.release_lease l
      | None -> ());
      Fbp_obs.Obs.count
        ~n:(Fbp_util.Pool.n_dispatches () - d0)
        "pool.dispatches")
  @@ fun () ->
  List.iteri
    (fun wi wave ->
      Fbp_obs.Obs.span "realization.wave"
        ~args:(fun () ->
          [ ("wave", string_of_int wi);
            ("nodes", string_of_int (List.length wave));
            ("domains", string_of_int eff_domains) ])
        (fun () ->
      Fbp_obs.Obs.observe "realization.wave_width" (float_of_int (List.length wave));
      let wave_arr = Array.of_list (List.map node_input wave) in
      let results = run_wave wave_arr in
      (* deterministic commit in wave order *)
      Array.iter
        (fun ((w, m), moves, qp_stats) ->
          (match qp_stats with
          | Some (st_x, st_y) ->
            Fbp_linalg.Cg.record_stats st_x;
            Fbp_linalg.Cg.record_stats st_y
          | None -> ());
          if Array.length moves > 0 then begin
            incr n_steps;
            let shipped = ref 0.0 and stayed = ref 0.0 in
            Array.iter
              (fun (c, x, y, dest, fallback) ->
                pos.Placement.x.(c) <- x;
                pos.Placement.y.(c) <- y;
                if fallback then incr n_fallback;
                match dest with
                | To_piece pid ->
                  piece_of_cell.(c) <- pid;
                  if pid >= 0 then
                    piece_load.(pid) <- piece_load.(pid) +. Netlist.size nl c;
                  stayed := !stayed +. Netlist.size nl c
                | To_buffer { to_w; x = bx; y = by } ->
                  incr n_shipped;
                  shipped := !shipped +. Netlist.size nl c;
                  pos.Placement.x.(c) <- bx;
                  pos.Placement.y.(c) <- by;
                  let r = touch members (to_w, m) [] in
                  r := c :: !r)
              moves;
            (* this node's members are consumed *)
            Hashtbl.replace members (w, m) (ref []);
            match on_step with
            | Some f ->
              f { node_w = w; node_m = m; n_cells = Array.length moves;
                  shipped = !shipped; stayed = !stayed }
            | None -> ()
          end)
        results))
    waves;
  (* The deadlock tie-break above can release a node of a residual cycle
     before its predecessor commits.  Cells the predecessor then ships over
     the external arc land in a members buffer whose node was already
     consumed, so no wave ever processes them: they kept piece_of_cell = -1
     and were silently dropped.  Flush any such residue through the fallback
     path so every movable cell ends in an admissible piece. *)
  let residue =
    Hashtbl.fold
      (fun key r acc ->
        match !r with
        | [] -> acc
        | cells -> (key, List.sort_uniq Int.compare cells) :: acc)
      members []
    |> List.sort (fun (a, _) (b, _) -> compare_wm a b)
  in
  List.iter
    (fun ((w, m), cells) ->
      List.iter
        (fun c ->
          if piece_of_cell.(c) < 0 then begin
            let pt = Point.make pos.Placement.x.(c) pos.Placement.y.(c) in
            let pid = fallback_piece w m pt in
            piece_of_cell.(c) <- pid;
            incr n_fallback;
            Fbp_obs.Obs.count "realization.flushed_cells";
            if pid >= 0 then begin
              let proj = Rect_set.project_point grid.Grid.pieces.(pid).Grid.area pt in
              pos.Placement.x.(c) <- proj.Point.x;
              pos.Placement.y.(c) <- proj.Point.y;
              piece_load.(pid) <- piece_load.(pid) +. Netlist.size nl c
            end
          end)
        cells)
    residue;
  (* Sanitizer: every movable cell must end in a piece whose region admits
     its movebound class, at a position inside the piece area.  A model
     built with [relax_penalty] (the Movebounds_relaxed degradation)
     legitimately routes cells into inadmissible pieces, so only the
     positional half of the invariant applies then. *)
  Fbp_resilience.Sanitize.check ~site:"realization.commit"
    ~invariant:"movebound containment" (fun () ->
      let bad = ref None in
      let report msg = if Option.is_none !bad then bad := Some msg in
      Array.iteri
        (fun c pid ->
          if not nl.Netlist.fixed.(c) then begin
            if pid < 0 then
              report (Printf.sprintf "movable cell %d has no piece" c)
            else begin
              let p = grid.Grid.pieces.(pid) in
              let reg = regions.Fbp_movebound.Regions.regions.(p.Grid.region) in
              let mb = nl.Netlist.movebound.(c) in
              if
                (not model.Fbp_model.relaxed)
                && not (Fbp_movebound.Regions.admissible reg ~mb)
              then
                report
                  (Printf.sprintf
                     "cell %d (movebound %d) assigned to inadmissible piece %d"
                     c mb pid);
              let pt = Point.make pos.Placement.x.(c) pos.Placement.y.(c) in
              if Rect_set.dist_l1_point p.Grid.area pt > 1e-6 then
                report
                  (Printf.sprintf
                     "cell %d at (%.6g, %.6g) lies outside piece %d" c
                     pos.Placement.x.(c)
                     pos.Placement.y.(c) pid)
            end
          end)
        piece_of_cell;
      match !bad with None -> Ok () | Some msg -> Error msg);
  (* overfill audit: compare piece loads against capacities *)
  Array.iter
    (fun (p : Grid.piece) ->
      let over = piece_load.(p.Grid.id) -. p.Grid.capacity in
      if over > !max_overfill then max_overfill := over)
    grid.Grid.pieces;
  Fbp_obs.Obs.count ~n:!n_shipped "realization.shipped_cells";
  Fbp_obs.Obs.count ~n:!n_fallback "realization.fallback_cells";
  Fbp_obs.Obs.observe "realization.piece_overfill" !max_overfill;
  {
    piece_of_cell;
    stats =
      {
        n_steps = !n_steps;
        n_waves = !n_waves;
        n_shipped_cells = !n_shipped;
        n_fallback_cells = !n_fallback;
        max_piece_overfill = !max_overfill;
      };
  }
