(** Capacity model: how much cell area fits in a piece of chip —
    the "capa" of the paper's Section II. *)

open Fbp_geometry

type t = {
  blockages : Rect_set.t;
  density : float;
}

val create : Fbp_netlist.Design.t -> t
val of_parts : blockages:Rect.t list -> density:float -> t

(** (area − blockage overlap) × density, clamped at 0. *)
val capacity_rect : t -> Rect.t -> float

val capacity_set : t -> Rect_set.t -> float

(** Non-blocked sub-area. *)
val free_area : t -> Rect_set.t -> Rect_set.t

(** Centroid of the free area (region-node embedding, Section IV-A);
    falls back to the raw centroid when fully blocked. *)
val free_centroid : t -> Rect_set.t -> Point.t

(** Union of full-height row strips inside the set, minus blockage
    x-extents: exactly the area a row legalizer can use. *)
val usable_rows_area : t -> chip:Rect.t -> row_height:float -> Rect_set.t -> Rect_set.t

(** Per-bin (usage, capacity) of movable cells under a placement. *)
val bin_utilization :
  Fbp_netlist.Design.t -> Fbp_netlist.Placement.t -> nx:int -> ny:int ->
  float array * float array

(** Fraction of total bin capacity exceeded by usage (0 = no bin overfull);
    the scalar density-overflow trajectory the flight recorder snapshots. *)
val overflow_fraction :
  Fbp_netlist.Design.t -> Fbp_netlist.Placement.t -> nx:int -> ny:int -> float
