(* The flow-based partitioning model (Section IV-A).

   Given a window grid, the region pieces per window, and the current cell
   positions, build the MinCostFlow instance whose solution prescribes how
   much cell area of each movebound class moves where:

   - one *cell-group* node per (window, class) with cells present, embedded
     at the group's center of gravity, supplying its total cell area;
   - four *transit* nodes per (window, class), embedded at the window
     boundary midpoints, with zero balance — the buffer regions of the
     realization;
   - one *region* node per region-in-window piece (shared by all classes),
     demanding its capacity;
   - edge families E^cr, E^ct, E^tt, E^tr inside each window with
     L1-distance costs, plus zero-cost external arcs between facing transit
     nodes of 4-adjacent windows (both directions).

   Transit (and cell-group) nodes of a class are restricted to the windows
   of a rectangular range covering both the class's area and its current
   cells (the paper restricts to the movebound's bounding box; cells may
   start outside it for incremental placements, so the range is widened to
   include them).  |V| and |E| stay linear in |W| + |R| — the property
   Table I demonstrates.

   The unconstrained cells form class index [n_movebounds] whose "area" is
   the whole chip. *)

open Fbp_geometry
open Fbp_flow
open Fbp_netlist

type group = {
  w : int;  (* window *)
  m : int;  (* class: movebound id, or n_movebounds for unconstrained *)
  cells : int list;
  total : float;
  cog : Point.t;
}

type arc_kind =
  | Cell_to_piece of { group : int; piece : int }
  | Cell_to_transit of { group : int; dir : int }
  | Transit_to_transit of { w : int; m : int; from_dir : int; to_dir : int }
  | Transit_to_piece of { w : int; m : int; dir : int; piece : int }
  | External of { m : int; from_w : int; to_w : int; from_dir : int }

type t = {
  grid : Grid.t;
  n_classes : int;  (* n_movebounds + 1 *)
  groups : group array;
  group_index : (int * int, int) Hashtbl.t;  (* (w, m) -> group id *)
  graph : Graph.t;
  supply : float array;
  arcs : (int * arc_kind) array;  (* (arc id, kind) *)
  n_nodes : int;
  n_edges : int;  (* forward arcs *)
  relaxed : bool;  (* built with [relax_penalty] (inadmissible arcs exist) *)
}

type external_flow = {
  xm : int;  (* class *)
  from_w : int;
  to_w : int;
  from_dir : int;  (* direction leaving from_w *)
  amount : float;
}

type solution = {
  model : t;
  verdict : Mcf.result;
  mcf_rounds : int;
  (* area of class m prescribed to land in piece p: allot.(p * n_classes + m) *)
  allot : float array;
  externals : external_flow list;
}

let eps = 1e-7

(* Window-index range (inclusive) of a class: covers the class area's
   bounding box and every window currently holding one of its cells. *)
let class_range (grid : Grid.t) (area_bbox : Rect.t option) cell_windows =
  let nx = grid.Grid.nx and ny = grid.Grid.ny in
  let x0 = ref max_int and x1 = ref min_int and y0 = ref max_int and y1 = ref min_int in
  let add_window w =
    let win = grid.Grid.windows.(w) in
    if win.Grid.wx < !x0 then x0 := win.Grid.wx;
    if win.Grid.wx > !x1 then x1 := win.Grid.wx;
    if win.Grid.wy < !y0 then y0 := win.Grid.wy;
    if win.Grid.wy > !y1 then y1 := win.Grid.wy
  in
  (match area_bbox with
   | None ->
     (* unconstrained class: whole grid *)
     x0 := 0; x1 := nx - 1; y0 := 0; y1 := ny - 1
   | Some bb ->
     add_window (Grid.window_at grid (Point.make bb.Rect.x0 bb.Rect.y0));
     add_window (Grid.window_at grid (Point.make bb.Rect.x1 bb.Rect.y1)));
  List.iter add_window cell_windows;
  (!x0, !x1, !y0, !y1)

let in_range (x0, x1, y0, y1) (win : Grid.window) =
  win.Grid.wx >= x0 && win.Grid.wx <= x1 && win.Grid.wy >= y0 && win.Grid.wy <= y1

let build ?relax_penalty (inst : Fbp_movebound.Instance.t)
    (regions : Fbp_movebound.Regions.t) (grid : Grid.t) (pos : Placement.t) =
  let nl = inst.Fbp_movebound.Instance.design.Design.netlist in
  let k = Fbp_movebound.Instance.n_movebounds inst in
  let n_classes = k + 1 in
  let nw = Grid.n_windows grid in
  (* cells per (window, class) *)
  let group_cells : (int * int, int list ref) Hashtbl.t = Hashtbl.create 256 in
  for c = Netlist.n_cells nl - 1 downto 0 do
    if not nl.Netlist.fixed.(c) then begin
      let w = Grid.window_at grid (Placement.get pos c) in
      let mb = nl.Netlist.movebound.(c) in
      let m = if mb < 0 then k else mb in
      match Hashtbl.find_opt group_cells (w, m) with
      | Some l -> l := c :: !l
      | None -> Hashtbl.add group_cells (w, m) (ref [ c ])
    end
  done;
  let groups =
    Hashtbl.fold
      (fun (w, m) cells acc ->
        let cells = !cells in
        let total = List.fold_left (fun a c -> a +. Netlist.size nl c) 0.0 cells in
        let cog =
          match Placement.center_of_gravity nl pos cells with
          | Some p -> p
          | None -> Rect.center grid.Grid.windows.(w).Grid.rect
        in
        { w; m; cells; total; cog } :: acc)
      group_cells []
    |> List.sort (fun a b ->
           match Int.compare a.w b.w with 0 -> Int.compare a.m b.m | c -> c)
    |> Array.of_list
  in
  let group_index = Hashtbl.create (Array.length groups) in
  Array.iteri (fun i g -> Hashtbl.add group_index (g.w, g.m) i) groups;
  (* class ranges *)
  let cell_windows_of_class = Array.make n_classes [] in
  Array.iter
    (fun g -> cell_windows_of_class.(g.m) <- g.w :: cell_windows_of_class.(g.m))
    groups;
  let ranges =
    Array.init n_classes (fun m ->
        let bbox =
          if m = k then None
          else
            Some (Rect_set.bbox inst.Fbp_movebound.Instance.movebounds.(m).Fbp_movebound.Movebound.area)
        in
        class_range grid bbox cell_windows_of_class.(m))
  in
  (* a class is "present" only if it has cells; absent classes need no nodes *)
  let present = Array.map (fun ws -> ws <> []) cell_windows_of_class in
  (* node numbering: groups, then transits, then pieces *)
  let n_groups = Array.length groups in
  let transit_node = Hashtbl.create 256 in
  let next = ref n_groups in
  for w = 0 to nw - 1 do
    for m = 0 to n_classes - 1 do
      if present.(m) && in_range ranges.(m) grid.Grid.windows.(w) then
        for dir = 0 to 3 do
          Hashtbl.add transit_node (w, m, dir) !next;
          incr next
        done
    done
  done;
  let piece_base = !next in
  let n_nodes = piece_base + Grid.n_pieces grid in
  let graph = Graph.create n_nodes in
  let supply = Array.make n_nodes 0.0 in
  Array.iteri (fun i g -> supply.(i) <- g.total) groups;
  Array.iter
    (fun (p : Grid.piece) -> supply.(piece_base + p.Grid.id) <- -.p.Grid.capacity)
    grid.Grid.pieces;
  let arcs = ref [] in
  (* "uncapacitated" arcs get a finite bound (total supply) so residual
     bookkeeping stays NaN-free *)
  let big =
    1.0 +. Array.fold_left (fun acc g -> acc +. g.total) 0.0 groups
  in
  let add_arc ~u ~v ~cost kind =
    let a = Graph.add_edge graph ~u ~v ~cap:big ~cost in
    arcs := (a, kind) :: !arcs
  in
  let admissible_piece m (p : Grid.piece) =
    let mb = if m = k then -1 else m in
    Fbp_movebound.Regions.admissible regions.Fbp_movebound.Regions.regions.(p.Grid.region) ~mb
  in
  (* Movebound slack relaxation (degradation ladder): with [relax_penalty]
     set, arcs into inadmissible pieces exist too, at base cost plus the
     penalty — the flow prefers admissible placements but can always route,
     so only genuine capacity shortage stays infeasible. *)
  let piece_cost m (p : Grid.piece) base =
    if admissible_piece m p then Some base
    else match relax_penalty with Some pen -> Some (base +. pen) | None -> None
  in
  (* intra-window edges *)
  Array.iteri
    (fun gi g ->
      (* E^cr *)
      List.iter
        (fun pid ->
          let p = grid.Grid.pieces.(pid) in
          match piece_cost g.m p (Point.dist_l1 g.cog p.Grid.centroid) with
          | Some cost ->
            add_arc ~u:gi ~v:(piece_base + pid) ~cost
              (Cell_to_piece { group = gi; piece = pid })
          | None -> ())
        grid.Grid.pieces_of_window.(g.w);
      (* E^ct *)
      for dir = 0 to 3 do
        match Hashtbl.find_opt transit_node (g.w, g.m, dir) with
        | Some tn ->
          add_arc ~u:gi ~v:tn
            ~cost:(Point.dist_l1 g.cog (Grid.boundary_point grid g.w dir))
            (Cell_to_transit { group = gi; dir })
        | None -> ()
      done)
    groups;
  (* transit-side edges per (window, class) *)
  for w = 0 to nw - 1 do
    for m = 0 to n_classes - 1 do
      if present.(m) && in_range ranges.(m) grid.Grid.windows.(w) then begin
        (* E^tt *)
        for d1 = 0 to 3 do
          for d2 = 0 to 3 do
            if d1 <> d2 then begin
              let u = Hashtbl.find transit_node (w, m, d1) in
              let v = Hashtbl.find transit_node (w, m, d2) in
              add_arc ~u ~v
                ~cost:
                  (Point.dist_l1 (Grid.boundary_point grid w d1)
                     (Grid.boundary_point grid w d2))
                (Transit_to_transit { w; m; from_dir = d1; to_dir = d2 })
            end
          done
        done;
        (* E^tr *)
        for dir = 0 to 3 do
          let u = Hashtbl.find transit_node (w, m, dir) in
          List.iter
            (fun pid ->
              let p = grid.Grid.pieces.(pid) in
              match
                piece_cost m p
                  (Point.dist_l1 (Grid.boundary_point grid w dir) p.Grid.centroid)
              with
              | Some cost ->
                add_arc ~u ~v:(piece_base + pid) ~cost
                  (Transit_to_piece { w; m; dir; piece = pid })
              | None -> ())
            grid.Grid.pieces_of_window.(w)
        done;
        (* E^ext: arcs to 4-neighbours inside the class range (one direction
           here; the neighbour's own iteration adds the reverse) *)
        List.iter
          (fun (dir, w') ->
            if in_range ranges.(m) grid.Grid.windows.(w') then begin
              let u = Hashtbl.find transit_node (w, m, dir) in
              let v = Hashtbl.find transit_node (w', m, Grid.opposite_dir dir) in
              add_arc ~u ~v ~cost:0.0 (External { m; from_w = w; to_w = w'; from_dir = dir })
            end)
          (Grid.neighbors grid w)
      end
    done
  done;
  let arcs = Array.of_list (List.rev !arcs) in
  {
    grid;
    n_classes;
    groups;
    group_index;
    graph;
    supply;
    arcs;
    n_nodes;
    n_edges = Array.length arcs;
    relaxed = Option.is_some relax_penalty;
  }

(* Cancel directed flow cycles among external arcs: the min-cost solution
   can route flow around zero-cost external cycles (e.g. the two opposite
   arcs of a window pair both carrying flow).  Such cycles are pure churn —
   removing the common amount changes no balance and no cost — and the
   realization needs the external-arc graph acyclic for its topological
   order (Section IV-B). *)
let cancel_external_cycles (t : t) =
  (* graph on (window, class) with the external arcs *)
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (a, kind) ->
      match kind with
      | External { m; from_w; to_w; _ } when Graph.flow t.graph a > eps ->
        Hashtbl.replace tbl (from_w, m) ((to_w, a) :: (try Hashtbl.find tbl (from_w, m) with Not_found -> []))
      | _ -> ())
    t.arcs;
  (* iterative DFS-based cycle elimination *)
  let rec strip_cycles () =
    let color = Hashtbl.create 64 in  (* 0 absent = white, 1 = gray, 2 = black *)
    let found = ref None in
    let rec dfs node path =
      if !found = None then begin
        Hashtbl.replace color node 1;
        let outs = try Hashtbl.find tbl node with Not_found -> [] in
        List.iter
          (fun ((to_w, a) : int * int) ->
            if !found = None && Graph.flow t.graph a > eps then begin
              let m = snd node in
              let nxt = (to_w, m) in
              match Hashtbl.find_opt color nxt with
              | Some 1 ->
                (* cycle: the part of [path] from nxt to node, plus a *)
                let cycle = ref [ a ] in
                let rec collect = function
                  | [] -> ()
                  | (n, arc) :: rest ->
                    if n = nxt then () else begin
                      cycle := arc :: !cycle;
                      collect rest
                    end
                in
                (* path holds (node, arc-into-node) pairs, most recent first *)
                let rec collect2 acc = function
                  | [] -> acc
                  | (n, arc) :: rest ->
                    if n = nxt then arc :: acc else collect2 (arc :: acc) rest
                in
                ignore collect;
                cycle := collect2 [ a ] path;
                found := Some !cycle
              | Some _ -> ()
              | None -> dfs nxt ((nxt, a) :: path)
            end)
          outs;
        if !found = None then Hashtbl.replace color node 2
      end
    in
    Hashtbl.iter (fun node _ -> if !found = None && not (Hashtbl.mem color node) then dfs node []) tbl;
    match !found with
    | None -> ()
    | Some cycle_arcs ->
      let amount =
        List.fold_left (fun acc a -> Float.min acc (Graph.flow t.graph a)) infinity cycle_arcs
      in
      List.iter (fun a -> Graph.push t.graph a (-.amount)) cycle_arcs;
      strip_cycles ()
  in
  strip_cycles ()

(* Greedy local absorption: before the exact flow computation, push each
   cell group's supply into its *own window's* admissible pieces, cheapest
   arc first.  Most supply is absorbed where it already sits, leaving the
   expensive successive-shortest-path phase only the genuine overflow.  The
   combined flow can be slightly suboptimal (the residual graph acquires
   negative-reduced-cost twins that the Dijkstra clamps), which is invisible
   at placement level; [exact] disables the seeding for the ablation bench
   and the optimality tests. *)
let greedy_seed (t : t) =
  let supply = Array.copy t.supply in
  (* remaining piece capacity, indexed by graph node *)
  let arcs_of_group = Array.make (Array.length t.groups) [] in
  Array.iter
    (fun (a, kind) ->
      match kind with
      | Cell_to_piece { group; piece } ->
        let cost = Graph.cost t.graph a in
        arcs_of_group.(group) <- (cost, a, piece) :: arcs_of_group.(group)
      | _ -> ())
    t.arcs;
  Array.iteri
    (fun gi arcs ->
      let arcs =
        List.sort
          (fun (c1, a1, _) (c2, a2, _) ->
            match Float.compare c1 c2 with 0 -> Int.compare a1 a2 | c -> c)
          arcs
      in
      List.iter
        (fun (_, a, _) ->
          let piece_node = Graph.dst t.graph a in
          let available = -.supply.(piece_node) in
          let want = supply.(gi) in
          let push = Float.min want available in
          if push > eps then begin
            Graph.push t.graph a push;
            supply.(gi) <- supply.(gi) -. push;
            supply.(piece_node) <- supply.(piece_node) +. push
          end)
        arcs)
    arcs_of_group;
  supply

let solve ?(exact = false) (t : t) =
  let supply = if exact then t.supply else greedy_seed t in
  let verdict, mcf_stats = Mcf.solve_stats t.graph ~supply in
  (match verdict with Mcf.Feasible _ -> cancel_external_cycles t | Mcf.Infeasible _ -> ());
  let allot = Array.make (Grid.n_pieces t.grid * t.n_classes) 0.0 in
  let externals = ref [] in
  Array.iter
    (fun (a, kind) ->
      let f = Graph.flow t.graph a in
      if f > eps then
        match kind with
        | Cell_to_piece { group; piece } ->
          let m = t.groups.(group).m in
          allot.((piece * t.n_classes) + m) <- allot.((piece * t.n_classes) + m) +. f
        | Transit_to_piece { m; piece; _ } ->
          allot.((piece * t.n_classes) + m) <- allot.((piece * t.n_classes) + m) +. f
        | External { m; from_w; to_w; from_dir } ->
          externals := { xm = m; from_w; to_w; from_dir; amount = f } :: !externals
        | Cell_to_transit _ | Transit_to_transit _ -> ())
    t.arcs;
  { model = t; verdict; mcf_rounds = mcf_stats.Mcf.rounds; allot;
    externals = List.rev !externals }

let allotment (s : solution) ~piece ~m = s.allot.((piece * s.model.n_classes) + m)
