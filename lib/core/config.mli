(** Tuning knobs of the global placer. *)

type t = {
  max_levels : int;  (** hard cap on grid refinement levels *)
  min_window_rows : float;  (** stop refining when windows get this short *)
  clique_max_degree : int;  (** nets up to this degree use the clique model *)
  anchor_base : float;  (** QP anchor weight at level 1 *)
  anchor_growth : float;  (** multiplicative anchor growth per level *)
  cg_tol : float;
  cg_max_iter : int;
  coarse_span : int;  (** realization window reach, in windows *)
  domains : int;
      (** parallel domains for realization (1 = sequential).  The default
          follows {!Fbp_util.Pool.get_default_domains}, i.e. [FBP_DOMAINS]
          when set.  Results are bit-identical at any value. *)
  hw_clamp : bool;
      (** clamp [domains] to {!Fbp_util.Pool.hardware_domains} in hot
          paths — domains beyond the core count only time-slice and add
          wakeup latency.  Results are bit-identical either way; disable
          to force parallel code paths on small machines (tests do). *)
  local_qp : bool;  (** run the local QP connectivity step in realization *)
  capacity_margin : float;
      (** flow capacities derated for legalizability; automatic fallback to
          1.0 when the margin makes a movebound class infeasible *)
  deadline : float option;
      (** wall-clock budget in seconds for global placement; when it runs
          out the placer returns the last-good per-level checkpoint (or, in
          [strict] mode, a typed [Deadline_exceeded] error) *)
  strict : bool;
      (** disable graceful degradation: movebound relaxation, bisection
          fallback, checkpoint returns and CG safeguard failures become
          typed errors instead *)
  verbose : bool;
}

(** Paper-faithful defaults (97% density etc.). *)
val default : t
