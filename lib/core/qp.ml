(* Quadratic placement solves.

   [solve_global] relaxes all movable cells at once (the QP step between
   partitioning rounds); [solve_local] relaxes only a given cell subset with
   everything else fixed — the local connectivity step of the realization
   (Section IV-B, "a local QP (considering all cells outside W as fixed)
   will be computed first to obtain more connectivity information"). *)

open Fbp_netlist

type stats = {
  vars : int;
  cg_iterations : int;
  residual : float;
  converged : bool;  (* both CG solves (x and y) converged *)
}

let solve_system (cfg : Config.t) (sys : Netmodel.system) (pos : Placement.t) =
  let nv = sys.Netmodel.n_vars in
  let x = Array.make nv 0.0 and y = Array.make nv 0.0 in
  (* warm start from current positions; star vars start at the mean of their
     net, approximated by 0 + regularizer pull (harmless) *)
  for v = 0 to nv - 1 do
    let c = sys.Netmodel.cells.(v) in
    if c >= 0 then begin
      x.(v) <- pos.Placement.x.(c);
      y.(v) <- pos.Placement.y.(c)
    end
  done;
  let sx = Fbp_linalg.Cg.solve ~max_iter:cfg.Config.cg_max_iter ~tol:cfg.Config.cg_tol
      sys.Netmodel.ax sys.Netmodel.bx x in
  let sy = Fbp_linalg.Cg.solve ~max_iter:cfg.Config.cg_max_iter ~tol:cfg.Config.cg_tol
      sys.Netmodel.ay sys.Netmodel.by y in
  for v = 0 to nv - 1 do
    let c = sys.Netmodel.cells.(v) in
    if c >= 0 then begin
      pos.Placement.x.(c) <- x.(v);
      pos.Placement.y.(c) <- y.(v)
    end
  done;
  {
    vars = nv;
    cg_iterations = sx.Fbp_linalg.Cg.iterations + sy.Fbp_linalg.Cg.iterations;
    residual = Float.max sx.Fbp_linalg.Cg.residual sy.Fbp_linalg.Cg.residual;
    converged = sx.Fbp_linalg.Cg.converged && sy.Fbp_linalg.Cg.converged;
  }

let all_movable (nl : Netlist.t) =
  let out = ref [] in
  for c = Netlist.n_cells nl - 1 downto 0 do
    if not nl.Netlist.fixed.(c) then out := c :: !out
  done;
  Array.of_list !out

(* Global QP over every movable cell. *)
let solve_global (cfg : Config.t) (nl : Netlist.t) (pos : Placement.t) ~anchor =
  Fbp_obs.Obs.span "qp.global"
    ~args:(fun () -> [ ("cells", string_of_int (Netlist.n_cells nl)) ])
    (fun () ->
      let movable = all_movable nl in
      let sys =
        Netmodel.assemble nl pos ~movable ~clique_max_degree:cfg.Config.clique_max_degree
          ~anchor ()
      in
      solve_system cfg sys pos)

(* Local QP over [cells] only; [cell_nets] is the cached incidence map.
   Only nets touching a movable cell are assembled. *)
let solve_local (cfg : Config.t) (nl : Netlist.t) (pos : Placement.t)
    ~(cell_nets : int list array) ~(cells : int array) ~anchor =
  if Array.length cells = 0 then
    { vars = 0; cg_iterations = 0; residual = 0.0; converged = true }
  else begin
    let seen = Hashtbl.create 64 in
    Array.iter
      (fun c ->
        List.iter (fun ni -> if not (Hashtbl.mem seen ni) then Hashtbl.add seen ni ()) cell_nets.(c))
      cells;
    let nets = Array.of_seq (Hashtbl.to_seq_keys seen) in
    Array.sort Int.compare nets;  (* determinism *)
    let sys =
      Netmodel.assemble nl pos ~movable:cells ~nets
        ~clique_max_degree:cfg.Config.clique_max_degree ~anchor ()
    in
    solve_system cfg sys pos
  end
