(* Quadratic placement solves.

   [solve_global] relaxes all movable cells at once (the QP step between
   partitioning rounds); [solve_local] relaxes only a given cell subset with
   everything else fixed — the local connectivity step of the realization
   (Section IV-B, "a local QP (considering all cells outside W as fixed)
   will be computed first to obtain more connectivity information"). *)

open Fbp_netlist

type stats = {
  vars : int;
  cg_iterations : int;
  residual : float;
  converged : bool;  (* both CG solves (x and y) converged *)
}

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> n
    | _ -> default)

(* Below this many variables the two axis solves run sequentially: a CG on
   a small system finishes in less time than a cross-domain wakeup costs,
   so [fork2] only adds latency (BENCH_pr5: qp_s *rose* from 1 to 4
   domains on a ~500-cell design).  Results are bit-identical either way —
   the x and y systems are independent. *)
let qp_seq_vars = env_int "FBP_QP_SEQ_VARS" 4096

let solve_system (cfg : Config.t) (sys : Netmodel.system) (pos : Placement.t) =
  let nv = sys.Netmodel.n_vars in
  let x = Array.make nv 0.0 and y = Array.make nv 0.0 in
  (* warm start from current positions; star vars start at the mean of their
     net, approximated by 0 + regularizer pull (harmless) *)
  for v = 0 to nv - 1 do
    let c = sys.Netmodel.cells.(v) in
    if c >= 0 then begin
      x.(v) <- pos.Placement.x.(c);
      y.(v) <- pos.Placement.y.(c)
    end
  done;
  (* The two axis systems are independent, so they run concurrently on the
     pool.  Each solve defers its metrics ([record:false]); we record them
     after the join in fixed x-then-y order, keeping observation streams
     deterministic regardless of interleaving. *)
  let solve a b v () =
    Fbp_linalg.Cg.solve ~record:false ~max_iter:cfg.Config.cg_max_iter
      ~tol:cfg.Config.cg_tol a b v
  in
  let sx, sy =
    if nv < qp_seq_vars || Fbp_util.Pool.hardware_domains < 2 then
      ( solve sys.Netmodel.ax sys.Netmodel.bx x (),
        solve sys.Netmodel.ay sys.Netmodel.by y () )
    else
      Fbp_util.Pool.fork2
        (solve sys.Netmodel.ax sys.Netmodel.bx x)
        (solve sys.Netmodel.ay sys.Netmodel.by y)
  in
  Fbp_linalg.Cg.record_stats sx;
  Fbp_linalg.Cg.record_stats sy;
  for v = 0 to nv - 1 do
    let c = sys.Netmodel.cells.(v) in
    if c >= 0 then begin
      pos.Placement.x.(c) <- x.(v);
      pos.Placement.y.(c) <- y.(v)
    end
  done;
  {
    vars = nv;
    cg_iterations = sx.Fbp_linalg.Cg.iterations + sy.Fbp_linalg.Cg.iterations;
    residual = Float.max sx.Fbp_linalg.Cg.residual sy.Fbp_linalg.Cg.residual;
    converged = sx.Fbp_linalg.Cg.converged && sy.Fbp_linalg.Cg.converged;
  }

let all_movable (nl : Netlist.t) =
  let out = ref [] in
  for c = Netlist.n_cells nl - 1 downto 0 do
    if not nl.Netlist.fixed.(c) then out := c :: !out
  done;
  Array.of_list !out

(* Global QP over every movable cell. *)
let solve_global (cfg : Config.t) (nl : Netlist.t) (pos : Placement.t) ?cache
    ~anchor () =
  Fbp_obs.Obs.span "qp.global"
    ~args:(fun () -> [ ("cells", string_of_int (Netlist.n_cells nl)) ])
    (fun () ->
      let movable = all_movable nl in
      let sys =
        Netmodel.assemble nl pos ?cache ~movable
          ~clique_max_degree:cfg.Config.clique_max_degree ~anchor ()
      in
      solve_system cfg sys pos)

(* Reusable net-dedup scratch for [solve_local]: a stamp array over net ids
   (stamp.(ni) = current epoch means "already collected") plus a growable
   id buffer.  Replaces the seed's per-call [Hashtbl]: no hashing, no
   rehash allocations, and collection order is deterministic by
   construction (cells in order, each cell's net list in order). *)
type scratch = {
  mutable stamp : int array;
  mutable buf : int array;
  mutable epoch : int;
}

let create_scratch () = { stamp = [||]; buf = Array.make 64 0; epoch = 0 }

let dedup_nets scratch ~n_nets ~(cell_nets : int list array)
    ~(cells : int array) =
  if Array.length scratch.stamp < n_nets then begin
    scratch.stamp <- Array.make n_nets 0;
    scratch.epoch <- 0
  end;
  scratch.epoch <- scratch.epoch + 1;
  let epoch = scratch.epoch and stamp = scratch.stamp in
  let count = ref 0 in
  let push ni =
    if Array.unsafe_get stamp ni <> epoch then begin
      Array.unsafe_set stamp ni epoch;
      if !count = Array.length scratch.buf then begin
        let buf' = Array.make (2 * !count) 0 in
        Array.blit scratch.buf 0 buf' 0 !count;
        scratch.buf <- buf'
      end;
      scratch.buf.(!count) <- ni;
      incr count
    end
  in
  Array.iter (fun c -> List.iter push cell_nets.(c)) cells;
  let nets = Array.sub scratch.buf 0 !count in
  Array.sort Int.compare nets;  (* determinism: fixed assembly order *)
  nets

(* Local QP over [cells] only; [cell_nets] is the cached incidence map.
   Only nets touching a movable cell are assembled.  [scratch] lets a
   sequential caller (the repartitioner) reuse the dedup arrays across
   windows. *)
let solve_local (cfg : Config.t) (nl : Netlist.t) (pos : Placement.t) ?scratch
    ~(cell_nets : int list array) ~(cells : int array) ~anchor () =
  if Array.length cells = 0 then
    { vars = 0; cg_iterations = 0; residual = 0.0; converged = true }
  else begin
    let scratch =
      match scratch with Some s -> s | None -> create_scratch ()
    in
    let nets =
      dedup_nets scratch ~n_nets:(Netlist.n_nets nl) ~cell_nets ~cells
    in
    let sys =
      Netmodel.assemble nl pos ~movable:cells ~nets
        ~clique_max_degree:cfg.Config.clique_max_degree ~anchor ()
    in
    solve_system cfg sys pos
  end
