(* Repartitioning (the "Reflow"/"Repartitioning" refinement of [5], [17],
   [27], discussed in Sections III-IV).

   After the flow-based partitioning has produced a feasible assignment,
   quality can still be recovered locally: for every 2x2 (or 3x3) block of
   windows, re-solve a local QP over the block's cells and re-run the
   movebound-aware transportation among the block's region pieces.  Unlike
   the historic reflow this is a *post-pass* — the global feasibility is
   already guaranteed by the flow, so every block step preserves it (piece
   capacities are respected by construction).

   The paper notes that FBP "can only compensate these problems partially"
   about reflow in the classic recursive scheme; here it is the optional
   extension knob: [Placer]-produced assignments are already feasible, and
   one or two repartition sweeps trade extra runtime for a few percent of
   HPWL. *)

open Fbp_geometry
open Fbp_netlist
open Fbp_flow

type stats = {
  n_blocks : int;
  n_moved : int;  (* cells whose piece assignment changed *)
  hpwl_before : float;
  hpwl_after : float;
  time : float;
}

(* One sweep over all [span] x [span] window blocks (stride = span so each
   window is visited once per sweep). *)
let sweep ?(span = 2) (cfg : Config.t) (inst : Fbp_movebound.Instance.t)
    (regions : Fbp_movebound.Regions.t) (grid : Grid.t) (pos : Placement.t)
    ~(piece_of_cell : int array) ~(cell_nets : int list array) =
  let t0 = Fbp_util.Timer.now () in
  let nl = inst.Fbp_movebound.Instance.design.Design.netlist in
  (* net-dedup scratch shared across this sweep's local QPs *)
  let qp_scratch = Qp.create_scratch () in
  let k = Fbp_movebound.Instance.n_movebounds inst in
  let hpwl_before = Hpwl.total nl pos in
  let n_blocks = ref 0 and n_moved = ref 0 in
  (* cells per piece, from the current assignment *)
  let cells_of_piece = Array.make (Grid.n_pieces grid) [] in
  for c = Netlist.n_cells nl - 1 downto 0 do
    let p = piece_of_cell.(c) in
    if p >= 0 then cells_of_piece.(p) <- c :: cells_of_piece.(p)
  done;
  let bx = ref 0 in
  while !bx < grid.Grid.nx do
    let by = ref 0 in
    while !by < grid.Grid.ny do
      (* the block's windows and pieces *)
      let windows = ref [] in
      for dx = 0 to span - 1 do
        for dy = 0 to span - 1 do
          if !bx + dx < grid.Grid.nx && !by + dy < grid.Grid.ny then
            windows := Grid.window_index grid ~wx:(!bx + dx) ~wy:(!by + dy) :: !windows
        done
      done;
      let pieces =
        List.concat_map (fun w -> grid.Grid.pieces_of_window.(w)) !windows
      in
      let cells =
        List.concat_map (fun p -> cells_of_piece.(p)) pieces
        |> List.sort Int.compare |> Array.of_list
      in
      if Array.length cells > 1 && List.length pieces > 1 then begin
        incr n_blocks;
        (* local QP over the block (everything else fixed) *)
        if cfg.Config.local_qp then
          ignore
            (Qp.solve_local cfg nl pos ~scratch:qp_scratch ~cell_nets ~cells
               ~anchor:(fun _ -> None) ());
        (* transportation among the block's pieces; capacities = the piece
           capacities (global feasibility already holds, so the block's
           cells fit its pieces by induction) *)
        let piece_arr = Array.of_list pieces in
        let admissible c pid =
          let mb = nl.Netlist.movebound.(c) in
          let mbi = if mb < 0 then -1 else mb in
          ignore k;
          Fbp_movebound.Regions.admissible
            regions.Fbp_movebound.Regions.regions.(grid.Grid.pieces.(pid).Grid.region)
            ~mb:mbi
        in
        let cost i j =
          let c = cells.(i) and pid = piece_arr.(j) in
          if not (admissible c pid) then infinity
          else Rect_set.dist_l1_point grid.Grid.pieces.(pid).Grid.area (Placement.get pos c)
        in
        let sizes = Array.map (fun c -> Netlist.size nl c) cells in
        let caps = Array.map (fun pid -> grid.Grid.pieces.(pid).Grid.capacity) piece_arr in
        (* the incoming assignment may exceed nominal capacities by the
           rounding slack; inflate proportionally so the block problem is
           feasible and the slack stays spread instead of concentrating *)
        let total_size = Array.fold_left ( +. ) 0.0 sizes in
        let total_cap = Array.fold_left ( +. ) 0.0 caps in
        let scale = if total_cap < total_size then total_size /. total_cap +. 1e-6 else 1.0 in
        let problem =
          {
            Transport.sizes;
            capacities = Array.map (fun c -> c *. scale) caps;
            cost;
          }
        in
        match Transport.solve problem with
        | Error _ -> ()
        | Ok assignment ->
          let choice = Transport.round_integral assignment in
          Array.iteri
            (fun i c ->
              let j = choice.(i) in
              if j >= 0 then begin
                let pid = piece_arr.(j) in
                if piece_of_cell.(c) <> pid then begin
                  (* move between pieces: update bookkeeping *)
                  cells_of_piece.(piece_of_cell.(c)) <-
                    List.filter (fun x -> x <> c) cells_of_piece.(piece_of_cell.(c));
                  cells_of_piece.(pid) <- c :: cells_of_piece.(pid);
                  piece_of_cell.(c) <- pid;
                  incr n_moved
                end;
                let proj =
                  Rect_set.project_point grid.Grid.pieces.(pid).Grid.area
                    (Placement.get pos c)
                in
                Placement.set pos c proj
              end)
            cells
      end;
      by := !by + span
    done;
    bx := !bx + span
  done;
  {
    n_blocks = !n_blocks;
    n_moved = !n_moved;
    hpwl_before;
    hpwl_after = Hpwl.total nl pos;
    time = Fbp_util.Timer.now () -. t0;
  }

(* Run [sweeps] repartition passes over a finished placer report, shifting
   the block origin between sweeps so window boundaries get revisited. *)
let refine ?(sweeps = 1) ?(span = 2) (cfg : Config.t)
    (inst : Fbp_movebound.Instance.t) (report : Placer.report) =
  match report.Placer.final_grid with
  | None -> []
  | Some grid ->
    let nl = inst.Fbp_movebound.Instance.design.Design.netlist in
    let cell_nets = Netlist.cell_nets nl in
    List.init sweeps (fun i ->
        ignore i;
        sweep ~span cfg inst report.Placer.regions grid report.Placer.placement
          ~piece_of_cell:report.Placer.piece_of_cell ~cell_nets)
