(** Quadratic net models: nets become springs, assembled into the SPD
    systems quadratic placement minimizes (clique for small nets, star with
    an auxiliary variable for wide ones; pin offsets on the right-hand
    side; fixed pins and non-movable cells as constants). *)

open Fbp_netlist

type system = {
  n_vars : int;  (** movable-cell vars first, then star vars *)
  var_of_cell : int array;  (** -1 when the cell is fixed for this solve *)
  cells : int array;  (** var → cell id, -1 for star vars *)
  ax : Fbp_linalg.Csr.t;
  bx : float array;
  ay : Fbp_linalg.Csr.t;
  by : float array;
}

(** Symbolic-structure cache for repeated assemblies with a fixed net
    topology and movable set (the global QP rounds).  The cached sparsity
    is verified against the fresh triplet stream on every reuse, so a
    stale cache degrades to a full assembly — never to a wrong matrix. *)
type cache

val create_cache : unit -> cache

(** [assemble nl pos ~movable ~nets ~clique_max_degree ~anchor ()] builds
    both axis systems.  [nets] restricts assembly to a net subset (default:
    all); [anchor cell] returns an optional [(wx, tx, wy, ty)] pulling the
    cell toward [(tx, ty)].  Cells outside [movable] contribute constants
    evaluated at [pos] — the "fixed cells outside W" of the local QP.
    [cache] enables symbolic sparsity reuse across calls; results are
    bit-identical with or without it. *)
val assemble :
  Netlist.t ->
  Placement.t ->
  ?cache:cache ->
  movable:int array ->
  ?nets:int array ->
  clique_max_degree:int ->
  anchor:(int -> (float * float * float * float) option) ->
  unit ->
  system
