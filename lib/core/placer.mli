(** The BonnPlace-FBP global placement driver: multilevel QP → flow-based
    partitioning → realization, with Table I instrumentation per level and
    graceful degradation on solver failure (see DESIGN.md "Failure
    semantics"). *)

type level_report = {
  level : int;
  nx : int;
  ny : int;
  n_windows : int;  (** Table I's |W| *)
  n_pieces : int;  (** Table I's |R| *)
  flow_nodes : int;  (** |V| *)
  flow_edges : int;  (** |E| *)
  qp_time : float;
  flow_time : float;  (** model build + MinCostFlow *)
  realization_time : float;
  hpwl : float;
  cg_iterations : int;  (** CG iterations of this level's QP solve *)
  cg_residual : float;  (** final CG residual *)
  cg_converged : bool;  (** this level's QP solves converged *)
  mcf_cost : float;  (** MinCostFlow objective ([nan] before level 1) *)
  mcf_rounds : int;  (** successive-shortest-paths Dijkstra rounds *)
  realization : Realization.stats;
}

(** One graceful-degradation event.  The ladder on MinCostFlow
    infeasibility: drop the legalizability capacity margin
    ([Margin_dropped]), relax movebound admissibility with a distance
    penalty ([Movebounds_relaxed]), then hand over to the caller-provided
    recursive-bisection fallback ([Bisection_fallback]) or return the
    last-good checkpoint ([Level_aborted]).  CG divergence triggers one
    safeguarded restart from the checkpoint with stronger anchors
    ([Cg_restarted]); an expired deadline returns the checkpoint
    ([Deadline_stop]). *)
type degradation =
  | Margin_dropped of { level : int }
  | Cg_restarted of { level : int; stats : Fbp_resilience.Fbp_error.cg_stats }
  | Movebounds_relaxed of { level : int; unrouted : float }
  | Bisection_fallback of { reason : Fbp_resilience.Fbp_error.t }
  | Level_aborted of { level : int; reason : Fbp_resilience.Fbp_error.t }
  | Deadline_stop of { level : int; elapsed : float; budget : float }

val degradation_to_string : degradation -> string

type report = {
  placement : Fbp_netlist.Placement.t;
  piece_of_cell : int array;  (** final-level region-piece assignment *)
  regions : Fbp_movebound.Regions.t;
  final_grid : Grid.t option;
  levels : level_report list;  (** successfully completed levels *)
  levels_planned : int;  (** what {!n_levels} asked for *)
  degradations : degradation list;  (** chronological; empty = clean run *)
  total_time : float;
  hpwl : float;
}

(** Planned number of refinement levels for a design under a config. *)
val n_levels : Config.t -> Fbp_netlist.Design.t -> int

(** Global placement.  The result still needs legalization
    ({!Fbp_legalize.Legalizer.run}).

    By default the placer degrades gracefully: after every level the
    placement is checkpointed, and on flow infeasibility (after the
    relaxation ladder), CG breakdown, an expired [Config.deadline] or an
    escaped exception it returns the last-good checkpoint, with the events
    listed in [report.degradations].  [fallback] (typically
    {!Fbp_baselines.Recursive.place}, wired in by
    {!Fbp_workloads.Runner.run_fbp}) is consulted when the *first* level's
    flow is infeasible, where no realized checkpoint exists yet.

    With [Config.strict] set, any degradation beyond the capacity-margin
    drop is reported as a typed [Error] instead — including the Theorem 3
    infeasibility certificate ([Infeasible_flow]).  [Error] is also
    returned (in both modes) when movebound normalization fails or the
    bisection fallback itself fails. *)
val place :
  ?config:Config.t ->
  ?on_level:(level_report -> unit) ->
  ?fallback:(unit -> (Fbp_netlist.Placement.t, string) result) ->
  Fbp_movebound.Instance.t ->
  (report, Fbp_resilience.Fbp_error.t) result
