(** Realization of a flow solution (Section IV-B): topological processing
    of flow-carrying external arcs, local QP + movebound-aware
    transportation with Eq. (2) transit-buffer capacities, deterministic
    parallel waves. *)

type step = {
  node_w : int;
  node_m : int;
  n_cells : int;
  shipped : float;  (** area sent over external arcs *)
  stayed : float;
}

type stats = {
  n_steps : int;
  n_waves : int;
  n_shipped_cells : int;
  n_fallback_cells : int;  (** cells placed without a flow prescription *)
  max_piece_overfill : float;  (** worst piece load minus capacity *)
}

type result = {
  piece_of_cell : int array;  (** cell → piece id (-1 for fixed cells) *)
  stats : stats;
}

(** [snapshot pos cells] is the compact per-wave position snapshot — the
    x and y coordinates of exactly [cells], in order.  O(|cells|), not
    O(design); exported for the wave-snapshot unit tests. *)
val snapshot :
  Fbp_netlist.Placement.t -> int array -> float array * float array

(** Realize the flow, updating [pos] in place; [on_step] is the Figure-4
    trace hook.  [cell_nets] is the {!Fbp_netlist.Netlist.cell_nets}
    cache.  With [cfg.domains > 1] waves run in parallel with a
    deterministic commit order (bit-identical results). *)
val realize :
  ?on_step:(step -> unit) ->
  Config.t ->
  Fbp_movebound.Instance.t ->
  Fbp_movebound.Regions.t ->
  Fbp_model.solution ->
  Fbp_netlist.Placement.t ->
  cell_nets:int list array ->
  result
