(* Capacity model: how much cell area fits in a piece of chip.

   capa(A) = (area of A minus blockage overlap) * target density — the
   "capacity" of the paper's Section II, used for region demands in the flow
   model, window capacities, and the feasibility checks. *)

open Fbp_geometry

type t = {
  blockages : Rect_set.t;
  density : float;
}

let create (d : Fbp_netlist.Design.t) =
  {
    blockages = Rect_set.of_rects d.Fbp_netlist.Design.blockages;
    density = d.Fbp_netlist.Design.target_density;
  }

let of_parts ~blockages ~density = { blockages = Rect_set.of_rects blockages; density }

let capacity_rect t (r : Rect.t) =
  let blocked =
    Rect_set.area (Rect_set.intersect_rect t.blockages r)
  in
  Float.max 0.0 ((Rect.area r -. blocked) *. t.density)

let capacity_set t (s : Rect_set.t) =
  List.fold_left (fun acc r -> acc +. capacity_rect t r) 0.0 (Rect_set.rects s)

(* Free (non-blocked) sub-area of [s], as a rectangle set. *)
let free_area t (s : Rect_set.t) = Rect_set.subtract s t.blockages

(* Center of gravity of the free area — the embedding point of region nodes
   ("center-of-gravity of the free area of the region", Section IV-A).
   Falls back to the raw centroid when fully blocked. *)
let free_centroid t (s : Rect_set.t) =
  let free = free_area t s in
  if Rect_set.area free > 1e-9 then Rect_set.center_of_gravity free
  else Rect_set.center_of_gravity s

(* Row-usable area of a rectangle set: the union of full-height row strips
   inside the set, minus the x-extents of blockages touching each strip.
   This is exactly the area a row-based legalizer can use; computing flow
   capacities from it (instead of raw area) stops the partitioning from
   overcommitting regions whose boundaries cut rows. *)
let usable_rows_area t ~(chip : Rect.t) ~row_height (s : Rect_set.t) =
  let n_rows = int_of_float (Float.round (Rect.height chip /. row_height)) in
  let strips = ref [] in
  for row = 0 to n_rows - 1 do
    let ry0 = chip.Rect.y0 +. (float_of_int row *. row_height) in
    let ry1 = ry0 +. row_height in
    List.iter
      (fun (r : Rect.t) ->
        if r.Rect.y0 <= ry0 +. 1e-9 && r.Rect.y1 >= ry1 -. 1e-9 then begin
          let strip = Rect.make ~x0:r.Rect.x0 ~y0:ry0 ~x1:r.Rect.x1 ~y1:ry1 in
          (* a blockage overlapping the strip kills its x-extent for the
             whole row (cells are full-row-height) *)
          let free =
            List.fold_left
              (fun pieces (b : Rect.t) ->
                if Rect.overlaps b strip then begin
                  let killer =
                    Rect.make ~x0:b.Rect.x0 ~y0:ry0 ~x1:b.Rect.x1 ~y1:ry1
                  in
                  List.concat_map (fun piece -> Rect.subtract piece killer) pieces
                end
                else pieces)
              [ strip ] (Rect_set.rects t.blockages)
          in
          strips := free @ !strips
        end)
      (Rect_set.rects s)
  done;
  Rect_set.of_disjoint !strips

(* Utilization audit: per-bin movable-area over capacity, for overflow
   metrics and the ISPD-style density penalty. *)
let bin_utilization (d : Fbp_netlist.Design.t) (p : Fbp_netlist.Placement.t) ~nx ~ny =
  let t = create d in
  let chip = d.Fbp_netlist.Design.chip in
  let nl = d.Fbp_netlist.Design.netlist in
  let bw = Rect.width chip /. float_of_int nx in
  let bh = Rect.height chip /. float_of_int ny in
  let usage = Array.make (nx * ny) 0.0 in
  let cap = Array.make (nx * ny) 0.0 in
  for by = 0 to ny - 1 do
    for bx = 0 to nx - 1 do
      let r =
        Rect.make
          ~x0:(chip.Rect.x0 +. (float_of_int bx *. bw))
          ~y0:(chip.Rect.y0 +. (float_of_int by *. bh))
          ~x1:(chip.Rect.x0 +. (float_of_int (bx + 1) *. bw))
          ~y1:(chip.Rect.y0 +. (float_of_int (by + 1) *. bh))
      in
      cap.((by * nx) + bx) <- capacity_rect t r
    done
  done;
  (* spread each movable cell's area over the bins it overlaps *)
  for c = 0 to Fbp_netlist.Netlist.n_cells nl - 1 do
    if not nl.Fbp_netlist.Netlist.fixed.(c) then begin
      let r = Fbp_netlist.Placement.cell_rect nl p c in
      let bx0 = max 0 (int_of_float ((r.Rect.x0 -. chip.Rect.x0) /. bw)) in
      let bx1 = min (nx - 1) (int_of_float ((r.Rect.x1 -. chip.Rect.x0) /. bw)) in
      let by0 = max 0 (int_of_float ((r.Rect.y0 -. chip.Rect.y0) /. bh)) in
      let by1 = min (ny - 1) (int_of_float ((r.Rect.y1 -. chip.Rect.y0) /. bh)) in
      for by = by0 to by1 do
        for bx = bx0 to bx1 do
          let bin =
            Rect.make
              ~x0:(chip.Rect.x0 +. (float_of_int bx *. bw))
              ~y0:(chip.Rect.y0 +. (float_of_int by *. bh))
              ~x1:(chip.Rect.x0 +. (float_of_int (bx + 1) *. bw))
              ~y1:(chip.Rect.y0 +. (float_of_int (by + 1) *. bh))
          in
          usage.((by * nx) + bx) <-
            usage.((by * nx) + bx) +. Rect.intersection_area r bin
        done
      done
    end
  done;
  (usage, cap)

(* Scalar overflow figure for the flight recorder's per-level trajectory:
   the fraction of total capacity that sits above per-bin capacity. *)
let overflow_fraction d p ~nx ~ny =
  let usage, cap = bin_utilization d p ~nx ~ny in
  let over = ref 0.0 and total = ref 0.0 in
  Array.iteri
    (fun i u ->
      over := !over +. Float.max 0.0 (u -. cap.(i));
      total := !total +. cap.(i))
    usage;
  if !total <= 0.0 then 0.0 else !over /. !total
