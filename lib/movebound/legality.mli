(** Movebound legality audit — the "viol." column of Tables IV/V. *)

open Fbp_netlist

type violation = { cell : int; reason : string }

type report = {
  violations : violation list;
  n_violations : int;  (** may exceed the cell count (multiple reasons) *)
  checked : int;  (** number of movable cells audited *)
}

val check : Instance.t -> Placement.t -> report
val is_legal : Instance.t -> Placement.t -> bool

(** Sanitizer containment audit: [Ok ()] iff every movable cell not
    excused by [ignore] lies entirely on the chip; [Error detail] names
    the first offender.  [ignore] defaults to excusing nothing. *)
val audit_containment :
  ?ignore:(int -> bool) -> Instance.t -> Placement.t -> (unit, string) result

(** Movable cells not entirely inside the chip area. *)
val count_outside_chip : Instance.t -> Placement.t -> int
