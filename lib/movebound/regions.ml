(* Region decomposition (Definition 2 + Lemma 1).

   A region is a rectangle set that, for every movebound, is either entirely
   inside or entirely outside its area.  We build the Hanan grid of all
   movebound rectangles (O(l^2) cells, Lemma 1), stamp every Hanan cell with
   its *coverage signature* — which exclusive movebound owns it (at most one
   after Instance.normalize) and which inclusive movebounds contain it — and
   merge 4-adjacent cells of equal signature with union-find.  The merged
   groups are the maximal regions of Figure 1. *)

open Fbp_geometry
open Fbp_util

type signature = {
  exclusive_owner : int;  (* movebound id, -1 = none *)
  inclusive : int list;  (* sorted ids of inclusive movebounds covering *)
}

let default_signature = { exclusive_owner = -1; inclusive = [] }

let signature_equal a b =
  a.exclusive_owner = b.exclusive_owner && a.inclusive = b.inclusive

type region = {
  id : int;
  area : Rect_set.t;
  signature : signature;
}

type t = {
  regions : region array;
  hanan : Hanan.t;
  region_of_cell : int array;  (* hanan cell -> region id *)
}

let n_regions t = Array.length t.regions

(* May a cell of movebound [mb] ([-1] = unconstrained) be placed in [r]? *)
let admissible r ~mb =
  if r.signature.exclusive_owner >= 0 then mb = r.signature.exclusive_owner
  else if mb < 0 then true
  else List.exists (Int.equal mb) r.signature.inclusive

(* Which movebound ids "cover" region [r] in the sense of Definition 2
   (area of r contained in A(M))? *)
let covering_movebounds r =
  if r.signature.exclusive_owner >= 0 then [ r.signature.exclusive_owner ]
  else r.signature.inclusive

let decompose ~(chip : Rect.t) (movebounds : Movebound.t array) =
  let all_rects =
    Array.to_list movebounds
    |> List.concat_map (fun (m : Movebound.t) -> Rect_set.rects m.Movebound.area)
  in
  let hanan = Hanan.create ~chip all_rects in
  let n = Hanan.n_cells hanan in
  (* Signature per Hanan cell.  A Hanan cell is entirely inside or outside
     every movebound rectangle, so coverage = positive-area overlap. *)
  let signatures =
    Array.init n (fun idx ->
        let ix, iy = Hanan.cell_coords hanan idx in
        let cell = Hanan.cell_rect hanan ~ix ~iy in
        let excl = ref (-1) and incl = ref [] in
        Array.iter
          (fun (m : Movebound.t) ->
            if Rect_set.overlaps_rect m.Movebound.area cell then
              if Movebound.is_exclusive m then begin
                (* after normalization at most one exclusive owner *)
                if !excl < 0 then excl := m.Movebound.id
              end
              else incl := m.Movebound.id :: !incl)
          movebounds;
        if !excl >= 0 then { exclusive_owner = !excl; inclusive = [] }
        else { exclusive_owner = -1; inclusive = List.sort Int.compare !incl })
  in
  (* Merge adjacent equal-signature cells. *)
  let uf = Union_find.create n in
  Hanan.iter_cells hanan (fun ~ix ~iy _ ->
      let idx = Hanan.cell_index hanan ~ix ~iy in
      List.iter
        (fun nb ->
          if signature_equal signatures.(idx) signatures.(nb) then
            Union_find.union uf idx nb)
        (Hanan.neighbors hanan ~ix ~iy));
  let region_of_cell, n_groups = Union_find.groups uf in
  let rects_per_group = Array.make n_groups [] in
  let sig_per_group = Array.make n_groups default_signature in
  Hanan.iter_cells hanan (fun ~ix ~iy rect ->
      let idx = Hanan.cell_index hanan ~ix ~iy in
      let g = region_of_cell.(idx) in
      rects_per_group.(g) <- rect :: rects_per_group.(g);
      sig_per_group.(g) <- signatures.(idx));
  let regions =
    Array.init n_groups (fun g ->
        { id = g; area = Rect_set.of_disjoint rects_per_group.(g); signature = sig_per_group.(g) })
  in
  { regions; hanan; region_of_cell }

(* Region containing a point (signature lookup for placements). *)
let region_at t (p : Point.t) =
  let ix, iy = Hanan.cell_at t.hanan p.Point.x p.Point.y in
  let idx = Hanan.cell_index t.hanan ~ix ~iy in
  t.regions.(t.region_of_cell.(idx))
