(* Movebound legality audit: Definition 1's condition that every cell lie
   entirely inside the area of its movebound, and outside every foreign
   exclusive movebound.  This is the "viol." column of Tables IV and V. *)

open Fbp_geometry
open Fbp_netlist

type violation = {
  cell : int;
  reason : string;
}

type report = {
  violations : violation list;
  n_violations : int;
  checked : int;
}

let check (inst : Instance.t) (p : Placement.t) =
  let nl = inst.Instance.design.Design.netlist in
  let violations = ref [] in
  let count = ref 0 in
  let checked = ref 0 in
  for c = 0 to Netlist.n_cells nl - 1 do
    if not nl.Netlist.fixed.(c) then begin
      incr checked;
      let r = Placement.cell_rect nl p c in
      (* inside own movebound? *)
      (match Instance.movebound_of_cell inst c with
       | Some m ->
         if not (Movebound.contains_rect m r) then begin
           incr count;
           violations :=
             { cell = c;
               reason = Printf.sprintf "outside own movebound %s" m.Movebound.name }
             :: !violations
         end
       | None -> ());
      (* overlapping a foreign exclusive movebound? *)
      Array.iter
        (fun (m : Movebound.t) ->
          if Movebound.is_exclusive m
             && nl.Netlist.movebound.(c) <> m.Movebound.id
             && Rect_set.overlaps_rect m.Movebound.area r
          then begin
            incr count;
            violations :=
              { cell = c;
                reason = Printf.sprintf "overlaps exclusive movebound %s" m.Movebound.name }
              :: !violations
          end)
        inst.Instance.movebounds
    end
  done;
  { violations = List.rev !violations; n_violations = !count; checked = !checked }

let is_legal inst p = (check inst p).n_violations = 0

(* Result-returning containment audit for sanitizer use: every movable
   cell not excused by [ignore] lies entirely on the chip.  Stops at the
   first offender so the sanitizer's violation detail stays small. *)
let audit_containment ?(ignore = fun _ -> false) (inst : Instance.t)
    (p : Placement.t) =
  let d = inst.Instance.design in
  let nl = d.Design.netlist in
  let bad = ref None in
  for c = 0 to Netlist.n_cells nl - 1 do
    if Option.is_none !bad && (not nl.Netlist.fixed.(c)) && not (ignore c) then
      if not (Rect.contains d.Design.chip (Placement.cell_rect nl p c)) then
        bad :=
          Some
            (Printf.sprintf "cell %d at (%.6g, %.6g) outside the chip" c
               p.Placement.x.(c) p.Placement.y.(c))
  done;
  match !bad with None -> Ok () | Some msg -> Error msg

(* Chip containment audit (cells entirely on the chip). *)
let count_outside_chip (inst : Instance.t) (p : Placement.t) =
  let d = inst.Instance.design in
  let nl = d.Design.netlist in
  let n = ref 0 in
  for c = 0 to Netlist.n_cells nl - 1 do
    if not nl.Netlist.fixed.(c) then
      if not (Rect.contains d.Design.chip (Placement.cell_rect nl p c)) then incr n
  done;
  !n
