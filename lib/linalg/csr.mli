(** Compressed-sparse-row matrices assembled from triplets (duplicates are
    accumulated), for the QP's Laplacian-plus-diagonal systems. *)

type t

type builder

(** [builder n] starts an empty n×n assembly. *)
val builder : int -> builder

(** Add a triplet; zero values are dropped. Raises on out-of-range. *)
val add : builder -> row:int -> col:int -> float -> unit

(** Laplacian stencil of a spring between [i] and [j] with stiffness [w]. *)
val add_spring : builder -> int -> int -> float -> unit

(** Add [w] to the diagonal entry [i] (anchors, fixed-pin stiffness). *)
val add_diag : builder -> int -> float -> unit

(** Assemble into CSR: rows sorted by column, duplicates accumulated.
    In sanitizer mode the result is validated (site ["csr.freeze"]). *)
val freeze : builder -> t

(** Checked invariants (sanitizer mode; also exposed for tests): monotone
    row pointers, strictly increasing in-range columns per row, finite
    values.  Returns the first violation. *)
val validate : t -> (unit, string) result

val dim : t -> int
val nnz : t -> int

(** [mul a x out]: out <- A x. Raises on dimension mismatch. *)
val mul : t -> float array -> float array -> unit

val diagonal : t -> float array

(** Entry lookup (linear in the row's nnz); for tests. *)
val get : t -> int -> int -> float

val is_symmetric : ?eps:float -> t -> bool
