(** Compressed-sparse-row matrices assembled from triplets (duplicates are
    accumulated), for the QP's Laplacian-plus-diagonal systems.

    The builder stores triplets in growable unboxed arrays; {!freeze} dedups
    rows with stamp arrays (no per-row hashing).  Because the QP sparsity
    pattern is fixed across rounds, {!freeze_capture} records the symbolic
    structure once and {!refreeze} re-assembles later rounds as a flat value
    sweep — bit-identical to a fresh {!freeze}.  {!mul} is row-chunked over
    the domain pool and deterministic at any domain count. *)

type t

type builder

(** Symbolic sparsity structure captured by {!freeze_capture}: the raw
    triplet (row, col) stream plus the mapping from triplet slot to CSR
    slot.  Valid for any later builder producing the same stream. *)
type structure

(** [builder n] starts an empty n×n assembly. *)
val builder : int -> builder

(** Add a triplet; zero values are dropped. Raises on out-of-range. *)
val add : builder -> row:int -> col:int -> float -> unit

(** Laplacian stencil of a spring between [i] and [j] with stiffness [w]. *)
val add_spring : builder -> int -> int -> float -> unit

(** Add [w] to the diagonal entry [i] (anchors, fixed-pin stiffness). *)
val add_diag : builder -> int -> float -> unit

val builder_dim : builder -> int

(** Number of triplets currently stored. *)
val builder_count : builder -> int

(** Drop all triplets, keeping the capacity (for builder reuse). *)
val reset : builder -> unit

(** Assemble into CSR: rows sorted by column, duplicates accumulated.
    In sanitizer mode the result is validated (site ["csr.freeze"]). *)
val freeze : builder -> t

(** Like {!freeze}, but also captures the symbolic structure for
    {!refreeze}. *)
val freeze_capture : builder -> t * structure

(** [refreeze s b] re-assembles [b] against the captured structure [s] as a
    flat value scatter (no sorting, no dedup bookkeeping), sharing the
    frozen index arrays.  Returns [None] when [b]'s triplet stream differs
    from the captured one — callers must then fall back to a full
    {!freeze_capture}.  When it succeeds the result is bit-identical to
    [freeze b]: value accumulation order is insertion order per duplicate
    group in both paths. *)
val refreeze : structure -> builder -> t option

(** Checked invariants (sanitizer mode; also exposed for tests): monotone
    row pointers, strictly increasing in-range columns per row, finite
    values.  Returns the first violation. *)
val validate : t -> (unit, string) result

val dim : t -> int
val nnz : t -> int

(** [mul a x out]: out <- A x. Raises on dimension mismatch.  Rows are
    chunked over the domain pool; each row is a fixed sequential sum, so
    the product is independent of the domain count. *)
val mul : t -> float array -> float array -> unit

val diagonal : t -> float array

(** Entry lookup (linear in the row's nnz); for tests. *)
val get : t -> int -> int -> float

(** Iterate stored entries in CSR order: [f row col value].  Used by the
    benchmark harness to replay a matrix through other assembly paths. *)
val iter_entries : t -> (int -> int -> float -> unit) -> unit

val is_symmetric : ?eps:float -> t -> bool
