(** Dense float vectors: the BLAS-1 kernels conjugate gradients needs.

    Reductions are chunked deterministically (chunk shape is a pure
    function of the length; partials combine in a fixed tree over chunk
    order), so every result is bit-identical for any domain count.  The
    fused kernels save memory passes inside CG. *)

type t = float array

val create : int -> t
val copy : t -> t

(** Raises [Invalid_argument] on length mismatch. *)
val dot : t -> t -> float

(** [dot a a] without the square root. *)
val sqnorm2 : t -> float

val norm2 : t -> float
val norm_inf : t -> float

(** [axpy ~alpha x y]: y <- y + alpha * x. *)
val axpy : alpha:float -> t -> t -> unit

(** [xpby ~beta x y]: y <- x + beta * y (the CG direction update). *)
val xpby : beta:float -> t -> t -> unit

(** [scale ~alpha x]: x <- alpha * x. *)
val scale : alpha:float -> t -> unit

(** [sub a b out]: out <- a - b. *)
val sub : t -> t -> t -> unit

(** [precond_dot2 d r z]: z <- d*r elementwise; returns [(r.z, r.r)]
    computed in the same sweep. *)
val precond_dot2 : t -> t -> t -> float * float

(** [update_residual ~alpha ap r d z]: r <- r - alpha*ap, z <- d*r, and
    returns [(r.z, r.r)] — one memory pass for the whole CG residual
    update. *)
val update_residual : alpha:float -> t -> t -> t -> t -> float * float
