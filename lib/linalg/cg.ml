(* Jacobi-preconditioned conjugate gradients for the symmetric
   positive-definite systems produced by the quadratic net models.

   The QP matrices are Laplacians plus positive diagonal (fixed pins and
   anchors), hence SPD whenever every connected component touches something
   fixed — which the placer guarantees by always adding at least a weak
   anchor per movable cell.

   PR 5 restructured the iteration around the fused [Vec] kernels: the
   residual update, preconditioner application and both dot products
   (r·z for beta, r·r for the convergence check) happen in one memory pass
   ([Vec.update_residual]), and the residual norm is tracked from that
   recurrence instead of re-running [Vec.norm2 r] — the seed recomputed it
   twice per iteration (once for the check, once for the final stats).
   ||r|| is now computed exactly once per convergence check, and the final
   reported residual reuses the tracked value. *)

type stats = {
  iterations : int;
  residual : float;  (* final ||Ax - b|| / max(1, ||b||) *)
  converged : bool;
}

let solve_real ~max_iter ~tol (a : Csr.t) (b : float array) (x : float array) =
  let n = Csr.dim a in
  let inv_diag =
    Array.map (fun d -> if Float.abs d > 1e-30 then 1.0 /. d else 1.0) (Csr.diagonal a)
  in
  let r = Vec.create n and z = Vec.create n and p = Vec.create n and ap = Vec.create n in
  (* r = b - A x *)
  Csr.mul a x ap;
  Vec.sub b ap r;
  let bnorm = Float.max 1.0 (Vec.norm2 b) in
  (* z = D^-1 r, with rz = r.z and rr = r.r from the same sweep *)
  let rz0, rr0 = Vec.precond_dot2 inv_diag r z in
  Array.blit z 0 p 0 n;
  let rz = ref rz0 and rr = ref rr0 in
  let iter = ref 0 in
  let finished = ref (sqrt !rr /. bnorm <= tol) in
  while (not !finished) && !iter < max_iter do
    incr iter;
    Csr.mul a p ap;
    let pap = Vec.dot p ap in
    if pap <= 0.0 then
      (* matrix not SPD along p (numerical breakdown): stop with current x *)
      finished := true
    else begin
      let alpha = !rz /. pap in
      Vec.axpy ~alpha p x;
      (* r -= alpha*ap; z = D^-1 r; rz' = r.z; rr' = r.r — one pass *)
      let rz', rr' = Vec.update_residual ~alpha ap r inv_diag z in
      rr := rr';
      if sqrt rr' /. bnorm <= tol then finished := true
      else begin
        let beta = rz' /. !rz in
        rz := rz';
        Vec.xpby ~beta z p
      end
    end
  done;
  let residual = sqrt !rr /. bnorm in
  let converged = residual <= tol *. 10.0 in
  { iterations = !iter; residual; converged }

let record_stats s =
  Fbp_obs.Obs.count "cg.solves";
  if not s.converged then Fbp_obs.Obs.count "cg.nonconverged";
  Fbp_obs.Obs.observe "cg.iterations" (float_of_int s.iterations)

(* Fault-injection shim: tests can simulate numerical stagnation (the
   iterate is left untouched, as after a breakdown-stop) or a domain
   exception, to exercise the placer's safeguarded-restart path.

   [record:false] defers metric recording to the caller (via
   [record_stats]): the QP solves the x- and y-systems concurrently, and
   observation order must stay deterministic. *)
let solve ?(record = true) ?(max_iter = 0) ?(tol = 1e-7) (a : Csr.t)
    (b : float array) (x : float array) =
  let n = Csr.dim a in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Cg.solve: dimension mismatch";
  let max_iter = if max_iter > 0 then max_iter else max 100 (2 * n) in
  match Fbp_resilience.Inject.fire Fbp_resilience.Inject.Cg with
  | Some Fbp_resilience.Inject.Stagnate ->
    { iterations = max_iter; residual = 1.0; converged = false }
  | Some (Fbp_resilience.Inject.Raise msg) ->
    (* fbp-lint: allow error-taxonomy — fires only when the fuzz harness arms the registry, which converts it; CLI runs never arm *)
    raise (Fbp_resilience.Inject.Injected msg)
  | _ ->
    let s = solve_real ~max_iter ~tol a b x in
    if record then record_stats s;
    s
