(* Jacobi-preconditioned conjugate gradients for the symmetric
   positive-definite systems produced by the quadratic net models.

   The QP matrices are Laplacians plus positive diagonal (fixed pins and
   anchors), hence SPD whenever every connected component touches something
   fixed — which the placer guarantees by always adding at least a weak
   anchor per movable cell. *)

type stats = {
  iterations : int;
  residual : float;  (* final ||Ax - b|| / max(1, ||b||) *)
  converged : bool;
}

let solve_real ~max_iter ~tol (a : Csr.t) (b : float array) (x : float array) =
  let n = Csr.dim a in
  let inv_diag =
    Array.map (fun d -> if Float.abs d > 1e-30 then 1.0 /. d else 1.0) (Csr.diagonal a)
  in
  let r = Vec.create n and z = Vec.create n and p = Vec.create n and ap = Vec.create n in
  (* r = b - A x *)
  Csr.mul a x ap;
  Vec.sub b ap r;
  let bnorm = Float.max 1.0 (Vec.norm2 b) in
  let apply_precond () =
    for i = 0 to n - 1 do
      z.(i) <- inv_diag.(i) *. r.(i)
    done
  in
  apply_precond ();
  Array.blit z 0 p 0 n;
  let rz = ref (Vec.dot r z) in
  let iter = ref 0 in
  let finished = ref (Vec.norm2 r /. bnorm <= tol) in
  while (not !finished) && !iter < max_iter do
    incr iter;
    Csr.mul a p ap;
    let pap = Vec.dot p ap in
    if pap <= 0.0 then
      (* matrix not SPD along p (numerical breakdown): stop with current x *)
      finished := true
    else begin
      let alpha = !rz /. pap in
      Vec.axpy ~alpha p x;
      Vec.axpy ~alpha:(-.alpha) ap r;
      if Vec.norm2 r /. bnorm <= tol then finished := true
      else begin
        apply_precond ();
        let rz' = Vec.dot r z in
        let beta = rz' /. !rz in
        rz := rz';
        for i = 0 to n - 1 do
          p.(i) <- z.(i) +. (beta *. p.(i))
        done
      end
    end
  done;
  let residual = Vec.norm2 r /. bnorm in
  let converged = residual <= tol *. 10.0 in
  Fbp_obs.Obs.count "cg.solves";
  if not converged then Fbp_obs.Obs.count "cg.nonconverged";
  Fbp_obs.Obs.observe "cg.iterations" (float_of_int !iter);
  { iterations = !iter; residual; converged }

(* Fault-injection shim: tests can simulate numerical stagnation (the
   iterate is left untouched, as after a breakdown-stop) or a domain
   exception, to exercise the placer's safeguarded-restart path. *)
let solve ?(max_iter = 0) ?(tol = 1e-7) (a : Csr.t) (b : float array) (x : float array) =
  let n = Csr.dim a in
  if Array.length b <> n || Array.length x <> n then
    invalid_arg "Cg.solve: dimension mismatch";
  let max_iter = if max_iter > 0 then max_iter else max 100 (2 * n) in
  match Fbp_resilience.Inject.fire Fbp_resilience.Inject.Cg with
  | Some Fbp_resilience.Inject.Stagnate ->
    { iterations = max_iter; residual = 1.0; converged = false }
  | Some (Fbp_resilience.Inject.Raise msg) ->
    raise (Fbp_resilience.Inject.Injected msg)
  | _ -> solve_real ~max_iter ~tol a b x
