(* Dense float vectors — the BLAS-1 kernels conjugate gradients needs.

   Reductions (dot / norm) are chunked through [Fbp_util.Pool.reduce]: the
   chunk count and boundaries are a pure function of the vector length, and
   per-chunk partials are combined in a fixed-shape tree over chunk order,
   so results are bit-identical for any domain count — sequential execution
   included, because the sequential path uses the same chunking.  Elementwise
   kernels write disjoint slices and are trivially deterministic.

   The fused kernels ([precond_dot2], [update_residual]) exist for CG:
   folding the preconditioner application and both residual dot products
   into one sweep saves three memory passes per iteration, which is where a
   memory-bound solve spends its time. *)

module Pool = Fbp_util.Pool

type t = float array

let create n = Array.make n 0.0

let copy = Array.copy

(* Items per chunk for both reductions and elementwise sweeps: small enough
   to parallelize the QP systems, large enough that per-chunk overhead
   vanishes.  Changing it changes float summation shape (and hence last-bit
   results), so treat it as part of the numerical contract. *)
let grain = 4096

let dot_range a b lo hi =
  let acc = ref 0.0 in
  for i = lo to hi - 1 do
    acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !acc

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Vec.dot: length mismatch";
  match Pool.reduce ~grain ~n (dot_range a b) ( +. ) with
  | Some v -> v
  | None -> 0.0

let sqnorm2 a = dot a a

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a

(* Elementwise sweeps share one chunked driver; each chunk owns a disjoint
   slice. *)
let sweep n body =
  let k = Pool.n_chunks ~grain n in
  if k <= 1 then body 0 n
  else
    Pool.run_chunks ~n_chunks:k (fun c ->
        let lo, hi = Pool.chunk_bounds ~n ~n_chunks:k c in
        body lo hi)

(* y <- y + alpha * x *)
let axpy ~alpha x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Vec.axpy: length mismatch";
  sweep n (fun lo hi ->
      for i = lo to hi - 1 do
        Array.unsafe_set y i
          (Array.unsafe_get y i +. (alpha *. Array.unsafe_get x i))
      done)

(* y <- x + beta * y  (the CG direction update) *)
let xpby ~beta x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Vec.xpby: length mismatch";
  sweep n (fun lo hi ->
      for i = lo to hi - 1 do
        Array.unsafe_set y i
          (Array.unsafe_get x i +. (beta *. Array.unsafe_get y i))
      done)

(* x <- alpha * x *)
let scale ~alpha x =
  sweep (Array.length x) (fun lo hi ->
      for i = lo to hi - 1 do
        Array.unsafe_set x i (alpha *. Array.unsafe_get x i)
      done)

(* out <- a - b *)
let sub a b out =
  let n = Array.length a in
  if Array.length b <> n || Array.length out <> n then
    invalid_arg "Vec.sub: length mismatch";
  sweep n (fun lo hi ->
      for i = lo to hi - 1 do
        Array.unsafe_set out i (Array.unsafe_get a i -. Array.unsafe_get b i)
      done)

let add2 (a1, b1) (a2, b2) = (a1 +. a2, b1 +. b2)

(* z <- d * r (Jacobi preconditioner); returns (r.z, r.r) in one sweep. *)
let precond_dot2 d r z =
  let n = Array.length r in
  if Array.length d <> n || Array.length z <> n then
    invalid_arg "Vec.precond_dot2: length mismatch";
  let chunk lo hi =
    let rz = ref 0.0 and rr = ref 0.0 in
    for i = lo to hi - 1 do
      let ri = Array.unsafe_get r i in
      let zi = Array.unsafe_get d i *. ri in
      Array.unsafe_set z i zi;
      rz := !rz +. (ri *. zi);
      rr := !rr +. (ri *. ri)
    done;
    (!rz, !rr)
  in
  match Pool.reduce ~grain ~n chunk add2 with Some v -> v | None -> (0.0, 0.0)

(* r <- r - alpha * ap;  z <- d * r;  returns (r.z, r.r) — the whole CG
   residual update in one memory pass. *)
let update_residual ~alpha ap r d z =
  let n = Array.length r in
  if Array.length ap <> n || Array.length d <> n || Array.length z <> n then
    invalid_arg "Vec.update_residual: length mismatch";
  let chunk lo hi =
    let rz = ref 0.0 and rr = ref 0.0 in
    for i = lo to hi - 1 do
      let ri =
        Array.unsafe_get r i -. (alpha *. Array.unsafe_get ap i)
      in
      Array.unsafe_set r i ri;
      let zi = Array.unsafe_get d i *. ri in
      Array.unsafe_set z i zi;
      rz := !rz +. (ri *. zi);
      rr := !rr +. (ri *. ri)
    done;
    (!rz, !rr)
  in
  match Pool.reduce ~grain ~n chunk add2 with Some v -> v | None -> (0.0, 0.0)
