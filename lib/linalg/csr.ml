(* Compressed-sparse-row matrices, assembled from (row, col, value) triplets.

   The QP net models (clique/star) generate Laplacian-plus-diagonal systems;
   assembly accumulates duplicate triplets, then freezes into CSR for the
   matrix-vector products inside conjugate gradients.

   PR 5 rebuilt the assembly path for speed while keeping results
   bit-identical:

   - the builder stores triplets in growable unboxed [int]/[float] arrays
     (the seed used three boxed lists: ~3 allocations per triplet and a
     full unspool at freeze);
   - [freeze] dedups each row with a stamp array over column ids instead of
     a per-row [Hashtbl] (O(1) per entry, allocation-free), and sorts row
     segments with an in-place dual-array quicksort instead of boxing
     (col, val) tuples;
   - across QP rounds the sparsity pattern is fixed (same nets, same
     movable set), so [freeze_capture] additionally records the symbolic
     structure — the raw triplet (row, col) sequence plus a permutation
     from triplet slot to CSR slot — and [refreeze] re-assembles the next
     round as a flat value sweep: verify the triplet stream matches
     (O(count) int compares, falling back to a full freeze when the
     topology changed), zero the values, scatter-accumulate.  Value
     accumulation order equals the fresh-freeze order (insertion order per
     duplicate group), so a reused and a fresh assembly are bit-identical.

   [mul] runs row-chunked on the domain pool; each row's accumulation is a
   fixed sequential sum, so the product does not depend on the domain
   count. *)

module Pool = Fbp_util.Pool

type t = {
  n : int;                 (* square dimension *)
  row_start : int array;   (* length n+1 *)
  col : int array;
  value : float array;
}

type builder = {
  dim : int;
  mutable rows : int array;   (* triplets, insertion order *)
  mutable cols : int array;
  mutable vals : float array;
  mutable count : int;
}

type structure = {
  s_dim : int;
  s_rows : int array;      (* expected raw triplet stream *)
  s_cols : int array;
  s_perm : int array;      (* triplet slot -> CSR slot *)
  s_row_start : int array; (* shared with every refrozen matrix *)
  s_col : int array;
}

let builder n =
  { dim = n; rows = Array.make 64 0; cols = Array.make 64 0;
    vals = Array.make 64 0.0; count = 0 }

let grow b =
  let cap = Array.length b.rows in
  let cap' = cap * 2 in
  let rows' = Array.make cap' 0 and cols' = Array.make cap' 0 in
  let vals' = Array.make cap' 0.0 in
  Array.blit b.rows 0 rows' 0 cap;
  Array.blit b.cols 0 cols' 0 cap;
  Array.blit b.vals 0 vals' 0 cap;
  b.rows <- rows';
  b.cols <- cols';
  b.vals <- vals'

let add b ~row ~col v =
  if row < 0 || row >= b.dim || col < 0 || col >= b.dim then
    invalid_arg "Csr.add: index out of range";
  if not (Float.equal v 0.0) then begin
    if b.count = Array.length b.rows then grow b;
    Array.unsafe_set b.rows b.count row;
    Array.unsafe_set b.cols b.count col;
    Array.unsafe_set b.vals b.count v;
    b.count <- b.count + 1
  end

(* Symmetric convenience: adds the four entries of a spring between i and j
   with stiffness w (Laplacian stencil). *)
let add_spring b i j w =
  add b ~row:i ~col:i w;
  add b ~row:j ~col:j w;
  add b ~row:i ~col:j (-.w);
  add b ~row:j ~col:i (-.w)

(* Diagonal-only convenience (anchors / fixed-pin stiffness). *)
let add_diag b i w = add b ~row:i ~col:i w

let builder_dim b = b.dim
let builder_count b = b.count

let reset b = b.count <- 0

(* Structural well-formedness: monotone row pointers, strictly increasing
   in-range columns per row, finite values.  Returns the first violation. *)
let validate t =
  let bad = ref None in
  let report msg = if Option.is_none !bad then bad := Some msg in
  let m = Array.length t.col in
  if Array.length t.row_start <> t.n + 1 then
    report
      (Printf.sprintf "row_start has %d entries for dimension %d"
         (Array.length t.row_start) t.n)
  else begin
    if t.row_start.(0) <> 0 then
      report (Printf.sprintf "row_start.(0) = %d, not 0" t.row_start.(0));
    if t.row_start.(t.n) <> m then
      report
        (Printf.sprintf "row_start.(n) = %d but %d stored entries"
           t.row_start.(t.n) m);
    for r = 0 to t.n - 1 do
      if t.row_start.(r) > t.row_start.(r + 1) then
        report
          (Printf.sprintf "row %d: row_start decreases (%d > %d)" r
             t.row_start.(r)
             t.row_start.(r + 1))
    done
  end;
  if Array.length t.value <> m then
    report
      (Printf.sprintf "col/value length mismatch (%d vs %d)" m
         (Array.length t.value));
  for r = 0 to t.n - 1 do
    if r + 1 < Array.length t.row_start then begin
      let lo = max 0 t.row_start.(r) and hi = min m t.row_start.(r + 1) in
      for k = lo to hi - 1 do
        let c = t.col.(k) in
        if c < 0 || c >= t.n then
          report (Printf.sprintf "row %d: column %d out of range" r c)
        else if k > lo && t.col.(k - 1) >= c then
          report
            (Printf.sprintf
               "row %d: columns not strictly increasing (%d then %d)" r
               t.col.(k - 1) c);
        if not (Float.is_finite t.value.(k)) then
          report (Printf.sprintf "row %d: non-finite value at slot %d" r k)
      done
    end
  done;
  match !bad with None -> Ok () | Some msg -> Error msg

(* In-place quicksort of cols.(lo..hi) with vals permuted alongside —
   avoids the boxed (col, val) pairs the seed sorted.  Row segments are
   usually tiny; star rows can be wide, hence quicksort over insertion
   sort. *)
let rec sort_segment cols vals lo hi =
  if hi - lo > 8 then begin
    let pivot = cols.((lo + hi) / 2) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while cols.(!i) < pivot do incr i done;
      while cols.(!j) > pivot do decr j done;
      if !i <= !j then begin
        let tc = cols.(!i) in
        cols.(!i) <- cols.(!j);
        cols.(!j) <- tc;
        let tv = vals.(!i) in
        vals.(!i) <- vals.(!j);
        vals.(!j) <- tv;
        incr i;
        decr j
      end
    done;
    sort_segment cols vals lo !j;
    sort_segment cols vals !i hi
  end
  else
    for i = lo + 1 to hi do
      let c = cols.(i) and v = vals.(i) in
      let j = ref (i - 1) in
      while !j >= lo && cols.(!j) > c do
        cols.(!j + 1) <- cols.(!j);
        vals.(!j + 1) <- vals.(!j);
        decr j
      done;
      cols.(!j + 1) <- c;
      vals.(!j + 1) <- v
    done

(* Shared freeze core: returns the CSR plus (when [capture]) the raw
   triplet copy needed for symbolic reuse. *)
let freeze_core b =
  let n = b.dim in
  let m = b.count in
  (* counting sort by row; the scatter is stable, so within a row the
     insertion order is preserved (duplicate accumulation order below is
     therefore the insertion order — the determinism contract [refreeze]
     relies on) *)
  let count = Array.make (n + 1) 0 in
  for k = 0 to m - 1 do
    let r = Array.unsafe_get b.rows k in
    count.(r + 1) <- count.(r + 1) + 1
  done;
  for i = 1 to n do
    count.(i) <- count.(i) + count.(i - 1)
  done;
  let gcol = Array.make m 0 and gval = Array.make m 0.0 in
  let cursor = Array.copy count in
  for k = 0 to m - 1 do
    let r = Array.unsafe_get b.rows k in
    let at = cursor.(r) in
    Array.unsafe_set gcol at (Array.unsafe_get b.cols k);
    Array.unsafe_set gval at (Array.unsafe_get b.vals k);
    cursor.(r) <- at + 1
  done;
  (* per-row dedup via stamp arrays over column ids: stamp.(c) = r marks
     column c as seen in row r, slot_of.(c) its accumulation slot *)
  let row_start = Array.make (n + 1) 0 in
  let col_acc = Array.make m 0 and val_acc = Array.make m 0.0 in
  let stamp = Array.make n (-1) and slot_of = Array.make n 0 in
  let nnz = ref 0 in
  for r = 0 to n - 1 do
    row_start.(r) <- !nnz;
    for idx = count.(r) to count.(r + 1) - 1 do
      let c = Array.unsafe_get gcol idx in
      if Array.unsafe_get stamp c = r then begin
        let slot = Array.unsafe_get slot_of c in
        Array.unsafe_set val_acc slot
          (Array.unsafe_get val_acc slot +. Array.unsafe_get gval idx)
      end
      else begin
        Array.unsafe_set stamp c r;
        Array.unsafe_set slot_of c !nnz;
        Array.unsafe_set col_acc !nnz c;
        Array.unsafe_set val_acc !nnz (Array.unsafe_get gval idx);
        incr nnz
      end
    done
  done;
  row_start.(n) <- !nnz;
  (* sort columns within each row: deterministic layout independent of
     triplet insertion order, and strictly-increasing columns become a
     checkable invariant (see [validate]) *)
  for r = 0 to n - 1 do
    let lo = row_start.(r) and hi = row_start.(r + 1) in
    if hi - lo > 1 then sort_segment col_acc val_acc lo (hi - 1)
  done;
  {
    n;
    row_start;
    col = Array.sub col_acc 0 !nnz;
    value = Array.sub val_acc 0 !nnz;
  }

let check_frozen ~site t =
  Fbp_resilience.Sanitize.check ~site ~invariant:"CSR well-formedness"
    (fun () -> validate t)

let freeze b =
  let t = freeze_core b in
  check_frozen ~site:"csr.freeze" t;
  t

(* Binary search for [c] in the sorted row segment [lo, hi). *)
let find_slot col lo hi c =
  let lo = ref lo and hi = ref (hi - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let cm = Array.unsafe_get col mid in
    if cm = c then found := mid
    else if cm < c then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let freeze_capture b =
  let t = freeze_core b in
  check_frozen ~site:"csr.freeze" t;
  let m = b.count in
  let perm = Array.make m 0 in
  for k = 0 to m - 1 do
    let r = Array.unsafe_get b.rows k in
    let slot =
      find_slot t.col t.row_start.(r) t.row_start.(r + 1)
        (Array.unsafe_get b.cols k)
    in
    (* every triplet was folded into exactly one slot of its row *)
    assert (slot >= 0);
    perm.(k) <- slot
  done;
  let s =
    {
      s_dim = b.dim;
      s_rows = Array.sub b.rows 0 m;
      s_cols = Array.sub b.cols 0 m;
      s_perm = perm;
      s_row_start = t.row_start;
      s_col = t.col;
    }
  in
  (t, s)

let structure_matches s b =
  b.dim = s.s_dim && b.count = Array.length s.s_rows
  && begin
    let ok = ref true in
    let m = b.count in
    let k = ref 0 in
    while !ok && !k < m do
      if
        Array.unsafe_get b.rows !k <> Array.unsafe_get s.s_rows !k
        || Array.unsafe_get b.cols !k <> Array.unsafe_get s.s_cols !k
      then ok := false;
      incr k
    done;
    !ok
  end

let refreeze s b =
  if not (structure_matches s b) then None
  else begin
    let nnz = Array.length s.s_col in
    let value = Array.make nnz 0.0 in
    let perm = s.s_perm in
    for k = 0 to b.count - 1 do
      let slot = Array.unsafe_get perm k in
      Array.unsafe_set value slot
        (Array.unsafe_get value slot +. Array.unsafe_get b.vals k)
    done;
    let t = { n = s.s_dim; row_start = s.s_row_start; col = s.s_col; value } in
    check_frozen ~site:"csr.refreeze" t;
    Some t
  end

let dim t = t.n
let nnz t = t.row_start.(t.n)

(* Rows per parallel chunk in [mul]; each row is an independent fixed
   sequential accumulation, so chunking never affects the product. *)
let mul_grain = 2048

(* out <- A x *)
let mul t x out =
  if Array.length x <> t.n || Array.length out <> t.n then
    invalid_arg "Csr.mul: dimension mismatch";
  let row_start = t.row_start and col = t.col and value = t.value in
  let rows lo hi =
    for r = lo to hi - 1 do
      let acc = ref 0.0 in
      for k = Array.unsafe_get row_start r to Array.unsafe_get row_start (r + 1) - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get value k
              *. Array.unsafe_get x (Array.unsafe_get col k))
      done;
      Array.unsafe_set out r !acc
    done
  in
  let k = Fbp_util.Pool.n_chunks ~grain:mul_grain t.n in
  if k <= 1 then rows 0 t.n
  else
    Pool.run_chunks ~n_chunks:k (fun c ->
        let lo, hi = Pool.chunk_bounds ~n:t.n ~n_chunks:k c in
        rows lo hi)

let diagonal t =
  let d = Array.make t.n 0.0 in
  for r = 0 to t.n - 1 do
    for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
      if t.col.(k) = r then d.(r) <- d.(r) +. t.value.(k)
    done
  done;
  d

let get t r c =
  let acc = ref 0.0 in
  for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
    if t.col.(k) = c then acc := !acc +. t.value.(k)
  done;
  !acc

let iter_entries t f =
  for r = 0 to t.n - 1 do
    for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
      f r t.col.(k) t.value.(k)
    done
  done

let is_symmetric ?(eps = 1e-9) t =
  let ok = ref true in
  for r = 0 to t.n - 1 do
    for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
      let c = t.col.(k) in
      if Float.abs (t.value.(k) -. get t c r) > eps then ok := false
    done
  done;
  !ok
