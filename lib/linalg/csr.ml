(* Compressed-sparse-row matrices, assembled from (row, col, value) triplets.

   The QP net models (clique/star) generate Laplacian-plus-diagonal systems;
   assembly accumulates duplicate triplets, then freezes into CSR for the
   matrix-vector products inside conjugate gradients. *)

type t = {
  n : int;                 (* square dimension *)
  row_start : int array;   (* length n+1 *)
  col : int array;
  value : float array;
}

type builder = {
  dim : int;
  mutable rows : int list;  (* triplets, reversed *)
  mutable cols : int list;
  mutable vals : float list;
  mutable count : int;
}

let builder n = { dim = n; rows = []; cols = []; vals = []; count = 0 }

let add b ~row ~col v =
  if row < 0 || row >= b.dim || col < 0 || col >= b.dim then
    invalid_arg "Csr.add: index out of range";
  if not (Float.equal v 0.0) then begin
    b.rows <- row :: b.rows;
    b.cols <- col :: b.cols;
    b.vals <- v :: b.vals;
    b.count <- b.count + 1
  end

(* Symmetric convenience: adds the four entries of a spring between i and j
   with stiffness w (Laplacian stencil). *)
let add_spring b i j w =
  add b ~row:i ~col:i w;
  add b ~row:j ~col:j w;
  add b ~row:i ~col:j (-.w);
  add b ~row:j ~col:i (-.w)

(* Diagonal-only convenience (anchors / fixed-pin stiffness). *)
let add_diag b i w = add b ~row:i ~col:i w

(* Structural well-formedness: monotone row pointers, strictly increasing
   in-range columns per row, finite values.  Returns the first violation. *)
let validate t =
  let bad = ref None in
  let report msg = if Option.is_none !bad then bad := Some msg in
  let m = Array.length t.col in
  if Array.length t.row_start <> t.n + 1 then
    report
      (Printf.sprintf "row_start has %d entries for dimension %d"
         (Array.length t.row_start) t.n)
  else begin
    if t.row_start.(0) <> 0 then
      report (Printf.sprintf "row_start.(0) = %d, not 0" t.row_start.(0));
    if t.row_start.(t.n) <> m then
      report
        (Printf.sprintf "row_start.(n) = %d but %d stored entries"
           t.row_start.(t.n) m);
    for r = 0 to t.n - 1 do
      if t.row_start.(r) > t.row_start.(r + 1) then
        report
          (Printf.sprintf "row %d: row_start decreases (%d > %d)" r
             t.row_start.(r)
             t.row_start.(r + 1))
    done
  end;
  if Array.length t.value <> m then
    report
      (Printf.sprintf "col/value length mismatch (%d vs %d)" m
         (Array.length t.value));
  for r = 0 to t.n - 1 do
    if r + 1 < Array.length t.row_start then begin
      let lo = max 0 t.row_start.(r) and hi = min m t.row_start.(r + 1) in
      for k = lo to hi - 1 do
        let c = t.col.(k) in
        if c < 0 || c >= t.n then
          report (Printf.sprintf "row %d: column %d out of range" r c)
        else if k > lo && t.col.(k - 1) >= c then
          report
            (Printf.sprintf
               "row %d: columns not strictly increasing (%d then %d)" r
               t.col.(k - 1) c);
        if not (Float.is_finite t.value.(k)) then
          report (Printf.sprintf "row %d: non-finite value at slot %d" r k)
      done
    end
  done;
  match !bad with None -> Ok () | Some msg -> Error msg

let freeze b =
  let n = b.dim in
  let m = b.count in
  let rows = Array.make m 0 and cols = Array.make m 0 and vals = Array.make m 0.0 in
  let rec fill i rl cl vl =
    match (rl, cl, vl) with
    | r :: rl, c :: cl, v :: vl ->
      rows.(i) <- r;
      cols.(i) <- c;
      vals.(i) <- v;
      fill (i - 1) rl cl vl
    | [], [], [] -> ()
    | _ -> assert false
  in
  fill (m - 1) b.rows b.cols b.vals;
  (* Counting sort by row. *)
  let count = Array.make (n + 1) 0 in
  for k = 0 to m - 1 do
    count.(rows.(k) + 1) <- count.(rows.(k) + 1) + 1
  done;
  for i = 1 to n do
    count.(i) <- count.(i) + count.(i - 1)
  done;
  let order = Array.make m 0 in
  let cursor = Array.copy count in
  for k = 0 to m - 1 do
    let r = rows.(k) in
    order.(cursor.(r)) <- k;
    cursor.(r) <- cursor.(r) + 1
  done;
  (* Within each row, accumulate duplicates via a per-row scratch map. *)
  let row_start = Array.make (n + 1) 0 in
  let col_acc = Array.make m 0 and val_acc = Array.make m 0.0 in
  let nnz = ref 0 in
  let scratch = Hashtbl.create 16 in
  for r = 0 to n - 1 do
    Hashtbl.reset scratch;
    row_start.(r) <- !nnz;
    for idx = count.(r) to count.(r + 1) - 1 do
      let k = order.(idx) in
      let c = cols.(k) in
      match Hashtbl.find_opt scratch c with
      | Some slot -> val_acc.(slot) <- val_acc.(slot) +. vals.(k)
      | None ->
        Hashtbl.add scratch c !nnz;
        col_acc.(!nnz) <- c;
        val_acc.(!nnz) <- vals.(k);
        incr nnz
    done
  done;
  row_start.(n) <- !nnz;
  (* Sort columns within each row: deterministic layout independent of
     triplet insertion order, and strictly-increasing columns become a
     checkable invariant (see [validate]). *)
  let pair = Array.make !nnz (0, 0.0) in
  for r = 0 to n - 1 do
    let lo = row_start.(r) and hi = row_start.(r + 1) in
    for k = lo to hi - 1 do
      pair.(k) <- (col_acc.(k), val_acc.(k))
    done;
    let seg = Array.sub pair lo (hi - lo) in
    Array.sort (fun (a, _) (b, _) -> Int.compare a b) seg;
    Array.iteri
      (fun i (c, v) ->
        col_acc.(lo + i) <- c;
        val_acc.(lo + i) <- v)
      seg
  done;
  let t =
    {
      n;
      row_start;
      col = Array.sub col_acc 0 !nnz;
      value = Array.sub val_acc 0 !nnz;
    }
  in
  Fbp_resilience.Sanitize.check ~site:"csr.freeze"
    ~invariant:"CSR well-formedness" (fun () -> validate t);
  t

let dim t = t.n
let nnz t = t.row_start.(t.n)

(* out <- A x *)
let mul t x out =
  if Array.length x <> t.n || Array.length out <> t.n then
    invalid_arg "Csr.mul: dimension mismatch";
  for r = 0 to t.n - 1 do
    let acc = ref 0.0 in
    for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
      acc := !acc +. (t.value.(k) *. x.(t.col.(k)))
    done;
    out.(r) <- !acc
  done

let diagonal t =
  let d = Array.make t.n 0.0 in
  for r = 0 to t.n - 1 do
    for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
      if t.col.(k) = r then d.(r) <- d.(r) +. t.value.(k)
    done
  done;
  d

let get t r c =
  let acc = ref 0.0 in
  for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
    if t.col.(k) = c then acc := !acc +. t.value.(k)
  done;
  !acc

let is_symmetric ?(eps = 1e-9) t =
  let ok = ref true in
  for r = 0 to t.n - 1 do
    for k = t.row_start.(r) to t.row_start.(r + 1) - 1 do
      let c = t.col.(k) in
      if Float.abs (t.value.(k) -. get t c r) > eps then ok := false
    done
  done;
  !ok
