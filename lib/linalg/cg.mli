(** Jacobi-preconditioned conjugate gradients for SPD systems.

    The iteration uses the fused {!Vec} kernels: residual update,
    preconditioner application, and both dot products run in a single
    memory pass, and the residual norm is tracked from the recurrence —
    computed exactly once per convergence check, never re-derived from a
    separate [norm2] sweep. *)

type stats = {
  iterations : int;
  residual : float;  (** final ||Ax − b|| / max(1, ||b||) *)
  converged : bool;
}

(** [solve a b x] improves [x] in place toward A x = b.
    [max_iter] defaults to max(100, 2n); [tol] to 1e-7.
    [record] (default true) controls whether solver metrics are recorded
    immediately; pass [~record:false] when solves run concurrently and
    call {!record_stats} afterwards in a deterministic order.
    Raises [Invalid_argument] on dimension mismatch. *)
val solve :
  ?record:bool -> ?max_iter:int -> ?tol:float -> Csr.t -> float array ->
  float array -> stats

(** Record the per-solve metrics ([cg.solves] / [cg.nonconverged] counters,
    [cg.iterations] histogram) for a solve run with [~record:false]. *)
val record_stats : stats -> unit
