(* Reproduction of every table in the paper's evaluation section.

   Each [tableN] function generates the workloads, runs the placers and
   renders an ASCII table shaped like the paper's, with the paper's own
   numbers alongside for comparison.  Absolute values differ (synthetic
   scaled instances, different machine — see DESIGN.md); the quantities to
   compare are the ratios. *)

open Fbp_util


let fmt_hpwl_k v = Printf.sprintf "%.1f" (v /. 1e3)

let or_fail = function
  | Ok v -> v
  | Error e -> Fbp_resilience.Fbp_error.raise_error e

(* ---------------------------------------------------------------- Table I *)

(* FBP instance sizes and runtimes per grid level, on the largest movebound
   design (the paper uses Erhard: 2.58M cells, 43 movebounds). *)
let table1 ?(design = "erhard") () =
  let spec =
    match Designs.find_spec design with
    | Some s -> s
    | None ->
      Fbp_resilience.Fbp_error.raise_error
        (Fbp_resilience.Fbp_error.Invalid_input ("unknown design " ^ design))
  in
  let d = Designs.instantiate spec in
  let scenario =
    List.find (fun (s : Mb_gen.scenario) -> s.Mb_gen.design = design)
      Mb_gen.table3_scenarios
  in
  let inst = Mb_gen.attach scenario d in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "TABLE I: FBP instance sizes and runtimes per grid level (%s-s: %d cells, %d movebounds; paper: Erhard 2 578 246 cells, 43 movebounds)"
           design
           (Fbp_netlist.Netlist.n_cells d.Fbp_netlist.Design.netlist)
           (Fbp_movebound.Instance.n_movebounds inst))
      ~header:[ "|V|"; "|E|"; "|E|/|V|"; "|W|"; "|R|"; "flow-comp"; "realization" ]
      ()
  in
  let metrics = or_fail (Runner.run_fbp inst) in
  List.iter
    (fun (lr : Fbp_core.Placer.level_report) ->
      Table.add_row t
        [
          Table.fmt_k lr.Fbp_core.Placer.flow_nodes;
          Table.fmt_k lr.Fbp_core.Placer.flow_edges;
          Printf.sprintf "%.1f"
            (float_of_int lr.Fbp_core.Placer.flow_edges
            /. float_of_int (max 1 lr.Fbp_core.Placer.flow_nodes));
          string_of_int lr.Fbp_core.Placer.n_windows;
          string_of_int lr.Fbp_core.Placer.n_pieces;
          Duration.pretty lr.Fbp_core.Placer.flow_time;
          Duration.pretty lr.Fbp_core.Placer.realization_time;
        ])
    metrics.Runner.levels;
  (t, metrics)

(* --------------------------------------------------------------- Table II *)

type row2 = {
  name : string;
  n_cells : int;
  rql : Runner.metrics;
  fbp : Runner.metrics;
  paper_pct : float;
  paper_speedup : float;
}

let run_table2_design (spec : Designs.spec) =
  let d = Designs.instantiate spec in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let rql = or_fail (Runner.run_rql inst) in
  let fbp = or_fail (Runner.run_fbp inst) in
  {
    name = spec.Designs.name;
    n_cells = Fbp_netlist.Netlist.n_cells d.Fbp_netlist.Design.netlist;
    rql;
    fbp;
    paper_pct = spec.Designs.paper_fbp_hpwl_pct;
    paper_speedup = spec.Designs.paper_fbp_speedup;
  }

let table2 ?(names : string list option) () =
  let specs =
    match names with
    | None -> Array.to_list Designs.table2_specs
    | Some ns ->
      List.filter_map Designs.find_spec ns
  in
  let rows = List.map run_table2_design specs in
  let t =
    Table.create
      ~title:
        "TABLE II: instances without movebounds — RQL (repro) vs BonnPlace FBP (repro); 'paper%' / 'paper x' are the original Table II ratios"
      ~header:
        [ "chip"; "|C|"; "RQL HPWL"; "RQL t"; "FBP HPWL"; "FBP t"; "FBP %";
          "paper %"; "speedup"; "paper x" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun r ->
      let pct = 100.0 *. r.fbp.Runner.hpwl /. r.rql.Runner.hpwl in
      let speedup = r.rql.Runner.total_time /. Float.max 1e-6 r.fbp.Runner.total_time in
      Table.add_row t
        [
          r.name;
          Table.fmt_k r.n_cells;
          fmt_hpwl_k r.rql.Runner.hpwl;
          Duration.pretty r.rql.Runner.total_time;
          fmt_hpwl_k r.fbp.Runner.hpwl;
          Duration.pretty r.fbp.Runner.total_time;
          Printf.sprintf "%.1f%%" pct;
          Printf.sprintf "%.1f%%" r.paper_pct;
          Printf.sprintf "%.1fx" speedup;
          Printf.sprintf "%.1fx" r.paper_speedup;
        ])
    rows;
  Table.add_sep t;
  let total_rql = List.fold_left (fun a r -> a +. r.rql.Runner.hpwl) 0.0 rows in
  let total_fbp = List.fold_left (fun a r -> a +. r.fbp.Runner.hpwl) 0.0 rows in
  let time_rql = List.fold_left (fun a r -> a +. r.rql.Runner.total_time) 0.0 rows in
  let time_fbp = List.fold_left (fun a r -> a +. r.fbp.Runner.total_time) 0.0 rows in
  Table.add_row t
    [
      "Total"; "";
      fmt_hpwl_k total_rql;
      Duration.pretty time_rql;
      fmt_hpwl_k total_fbp;
      Duration.pretty time_fbp;
      Printf.sprintf "%.1f%%" (100.0 *. total_fbp /. total_rql);
      "99.3%";
      Printf.sprintf "%.1fx" (time_rql /. Float.max 1e-6 time_fbp);
      "5.5x";
    ];
  (t, rows)

(* -------------------------------------------------------------- Table III *)

let table3 ?(scenarios = Mb_gen.table3_scenarios) () =
  let t =
    Table.create
      ~title:"TABLE III: movebound instance statistics (synthetic scenarios mirroring the paper rows)"
      ~header:[ "chip"; "|M|"; "|C|"; "% cells w/ mb"; "max mb dens"; "remarks" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      ()
  in
  let instances =
    List.map
      (fun (sc : Mb_gen.scenario) ->
        let spec = Option.get (Designs.find_spec sc.Mb_gen.design) in
        let d = Designs.instantiate spec in
        let inst = Mb_gen.attach sc d in
        let st = Mb_gen.stats_of sc inst in
        Table.add_row t
          [
            sc.Mb_gen.design;
            string_of_int st.Mb_gen.n_movebounds;
            Table.fmt_k st.Mb_gen.n_cells;
            Printf.sprintf "%.1f%%" (100.0 *. st.Mb_gen.pct_bound);
            Printf.sprintf "%.0f%%" (100.0 *. st.Mb_gen.max_mb_density);
            (if st.Mb_gen.overlapping && st.Mb_gen.flattened then "(O)(F)"
             else if st.Mb_gen.overlapping then "(O)"
             else if st.Mb_gen.flattened then "(F)"
             else "");
          ];
        (sc, inst))
      scenarios
  in
  (t, instances)

(* ------------------------------------------------------- Tables IV, V, VI *)

type row_mb = {
  mname : string;
  mrql : Runner.metrics;
  mfbp : Runner.metrics;
}

let paper_pct_t4 =
  [ ("rabe", 74.6); ("ashraf", nan); ("erhard", 90.8); ("tomoku", 49.8);
    ("trips", 86.9); ("andre", 45.2); ("ludwig", 51.7); ("erik", 68.0) ]

let paper_pct_t5 =
  [ ("rabe", 76.8); ("ashraf", 69.1); ("erhard", 81.9); ("andre", 43.2); ("erik", 72.3) ]

let run_movebound_rows ~(kind : Fbp_movebound.Movebound.kind)
    (scenarios : Mb_gen.scenario list) =
  List.filter_map
    (fun (sc : Mb_gen.scenario) ->
      let sc = { sc with Mb_gen.kind } in
      let spec = Option.get (Designs.find_spec sc.Mb_gen.design) in
      let d = Designs.instantiate spec in
      let inst, _coverage = Mb_gen.attach_feasible sc d in
      match (Runner.run_rql inst, Runner.run_fbp inst) with
      | Ok mrql, Ok mfbp -> Some { mname = sc.Mb_gen.design; mrql; mfbp }
      | Error e, _ | _, Error e ->
        Printf.eprintf "[tables] %s (%s): %s\n" sc.Mb_gen.design
          (Fbp_movebound.Movebound.kind_to_string kind)
          (Fbp_resilience.Fbp_error.to_string e);
        None)
    scenarios

let render_movebound_table ~title ~paper_pct rows =
  let t =
    Table.create ~title
      ~header:
        [ "chip"; "RQL HPWL"; "RQL t"; "RQL viol"; "FBP HPWL"; "FBP t"; "FBP viol";
          "FBP %"; "paper %"; "speedup" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  List.iter
    (fun r ->
      let pct = 100.0 *. r.mfbp.Runner.hpwl /. r.mrql.Runner.hpwl in
      let paper =
        match
          List.find_map
            (fun (k, v) -> if String.equal k r.mname then Some v else None)
            paper_pct
        with
        | Some v when not (Float.is_nan v) -> Printf.sprintf "%.1f%%" v
        | _ -> "(crashed)"
      in
      Table.add_row t
        [
          r.mname;
          fmt_hpwl_k r.mrql.Runner.hpwl;
          Duration.pretty r.mrql.Runner.total_time;
          string_of_int r.mrql.Runner.violations;
          fmt_hpwl_k r.mfbp.Runner.hpwl;
          Duration.pretty r.mfbp.Runner.total_time;
          string_of_int r.mfbp.Runner.violations;
          Printf.sprintf "%.1f%%" pct;
          paper;
          Printf.sprintf "%.1fx"
            (r.mrql.Runner.total_time /. Float.max 1e-6 r.mfbp.Runner.total_time);
        ])
    rows;
  Table.add_sep t;
  let tr = List.fold_left (fun a r -> a +. r.mrql.Runner.hpwl) 0.0 rows in
  let tf = List.fold_left (fun a r -> a +. r.mfbp.Runner.hpwl) 0.0 rows in
  let trt = List.fold_left (fun a r -> a +. r.mrql.Runner.total_time) 0.0 rows in
  let tft = List.fold_left (fun a r -> a +. r.mfbp.Runner.total_time) 0.0 rows in
  Table.add_row t
    [
      "Total"; fmt_hpwl_k tr; Duration.pretty trt;
      string_of_int (List.fold_left (fun a r -> a + r.mrql.Runner.violations) 0 rows);
      fmt_hpwl_k tf; Duration.pretty tft;
      string_of_int (List.fold_left (fun a r -> a + r.mfbp.Runner.violations) 0 rows);
      Printf.sprintf "%.1f%%" (100.0 *. tf /. tr);
      "";
      Printf.sprintf "%.1fx" (trt /. Float.max 1e-6 tft);
    ];
  t

let table4 ?(scenarios = Mb_gen.table3_scenarios) () =
  let rows = run_movebound_rows ~kind:Fbp_movebound.Movebound.Inclusive scenarios in
  ( render_movebound_table
      ~title:
        "TABLE IV: inclusive movebounds — RQL (repro) vs BonnPlace FBP (repro); paper totals: FBP = 64.5% HPWL, 9.6x faster"
      ~paper_pct:paper_pct_t4 rows,
    rows )

let table5 ?(designs = Mb_gen.table5_designs) () =
  (* Exclusive movebounds must not tile the chip (they are blockages to
     everyone else), so Table V runs each design's scenario with the bounds
     turned into disjoint *islands* — the paper likewise notes that the
     nested/overlapping designs are infeasible in the exclusive case. *)
  let scenarios =
    List.filter_map
      (fun name ->
        List.find_opt (fun (sc : Mb_gen.scenario) -> sc.Mb_gen.design = name)
          Mb_gen.table3_scenarios
        |> Option.map (fun (sc : Mb_gen.scenario) ->
               { sc with Mb_gen.shape = Mb_gen.Islands (Mb_gen.shape_count sc.Mb_gen.shape) }))
      designs
  in
  let rows = run_movebound_rows ~kind:Fbp_movebound.Movebound.Exclusive scenarios in
  ( render_movebound_table
      ~title:
        "TABLE V: exclusive movebounds — RQL (repro) vs BonnPlace FBP (repro); paper totals: FBP = 67.1% HPWL, 20.9x faster"
      ~paper_pct:paper_pct_t5 rows,
    rows )

(* Table VI: runtime split of the FBP runs of Table IV. *)
let table6 (rows : row_mb list) =
  let t =
    Table.create
      ~title:
        "TABLE VI: BonnPlace FBP (repro) with inclusive movebounds — global placement vs legalization wall time (paper total: 48.8% global)"
      ~header:[ "chip"; "global"; "legalization"; "total"; "global/total" ]
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ()
  in
  let tg = ref 0.0 and tl = ref 0.0 in
  List.iter
    (fun r ->
      let g = r.mfbp.Runner.global_time and l = r.mfbp.Runner.legalize_time in
      tg := !tg +. g;
      tl := !tl +. l;
      Table.add_row t
        [
          r.mname;
          Duration.pretty g;
          Duration.pretty l;
          Duration.pretty (g +. l);
          Printf.sprintf "%.1f%%" (100.0 *. g /. Float.max 1e-6 (g +. l));
        ])
    rows;
  Table.add_sep t;
  Table.add_row t
    [
      "Total"; Duration.pretty !tg; Duration.pretty !tl; Duration.pretty (!tg +. !tl);
      Printf.sprintf "%.1f%%" (100.0 *. !tg /. Float.max 1e-6 (!tg +. !tl));
    ];
  t

(* -------------------------------------------------------------- Table VII *)

let table7 ?(specs = Array.to_list Ispd.specs) () =
  let t =
    Table.create
      ~title:
        "TABLE VII: ISPD-2006-style benchmarks — Kraftwerk2 (repro) vs BonnPlace FBP (repro), contest scoring; paper ratios ~99.4-99.5%"
      ~header:
        [ "chip"; "KW2 H"; "KW2 H+D"; "FBP H"; "FBP D%"; "FBP C%"; "FBP H+D";
          "FBP H+D+C"; "ratio H+D"; "ratio H+D+C"; "paper H" ]
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      ()
  in
  let ratios_hd = ref [] and ratios_hdc = ref [] in
  List.iter
    (fun (s : Ispd.spec) ->
      let d = Ispd.instantiate s in
      let inst = Fbp_movebound.Instance.unconstrained d in
      match (Runner.run_kraftwerk inst, Runner.run_fbp inst) with
      | Ok kw, Ok fbp ->
        (* contest scoring: density penalty from the legal placements; the
           CPU factor is measured against the Kraftwerk2 runtime (the
           reference tool), so KW2 itself has C = 0 *)
        let kw_score =
          Ispd.score d kw.Runner.placement ~time:kw.Runner.total_time
            ~reference_time:kw.Runner.total_time
        in
        let fbp_score =
          Ispd.score d fbp.Runner.placement ~time:fbp.Runner.total_time
            ~reference_time:kw.Runner.total_time
        in
        let ratio_hd = 100.0 *. fbp_score.Ispd.h_d /. kw_score.Ispd.h_d in
        let ratio_hdc = 100.0 *. fbp_score.Ispd.h_d_c /. kw_score.Ispd.h_d_c in
        ratios_hd := ratio_hd :: !ratios_hd;
        ratios_hdc := ratio_hdc :: !ratios_hdc;
        Table.add_row t
          [
            s.Ispd.name;
            fmt_hpwl_k kw_score.Ispd.hpwl;
            fmt_hpwl_k kw_score.Ispd.h_d;
            fmt_hpwl_k fbp_score.Ispd.hpwl;
            Printf.sprintf "%.2f%%" fbp_score.Ispd.dens_pct;
            Printf.sprintf "%.1f%%" fbp_score.Ispd.cpu_pct;
            fmt_hpwl_k fbp_score.Ispd.h_d;
            fmt_hpwl_k fbp_score.Ispd.h_d_c;
            Printf.sprintf "%.1f%%" ratio_hd;
            Printf.sprintf "%.1f%%" ratio_hdc;
            Printf.sprintf "%.1f%%"
              (100.0 *. s.Ispd.paper_fbp_hpwl /. (let a, _, _ = s.Ispd.paper_kw2 in a));
          ]
      | Error e, _ | _, Error e ->
        Printf.eprintf "[tables] %s: %s\n" s.Ispd.name
          (Fbp_resilience.Fbp_error.to_string e))
    specs;
  Table.add_sep t;
  let hd = Array.of_list !ratios_hd and hdc = Array.of_list !ratios_hdc in
  Table.add_row t
    [
      "Average"; ""; ""; ""; ""; ""; ""; "";
      (if Array.length hd > 0 then Printf.sprintf "%.1f%%" (Stats.mean hd) else "-");
      (if Array.length hdc > 0 then Printf.sprintf "%.1f%%" (Stats.mean hdc) else "-");
      "99.4%";
    ];
  t
