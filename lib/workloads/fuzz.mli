(** Property-based scenario fuzzer for the placement pipeline.

    Generates random design / movebound / fault configurations (the
    "scenario zoo": macro-heavy floorplans with dead space, non-convex and
    overlapping movebounds, inclusive+exclusive mixes, degenerate grids,
    near-full utilization), runs each through the full placer with the
    sanitizer enabled, and checks every run against the sanitizer
    invariants plus the feasibility promise of Theorems 1–3.  Crossing
    scenarios with the {!Fbp_resilience.Inject} fault axis gives the fault
    matrix: every scenario × fault combination must terminate with a
    documented taxonomy exit code, never an uncaught exception.

    All randomness routes through {!Fbp_util.Rng} (SplitMix64), so a seed
    reproduces the whole campaign bit-for-bit; failing scenarios are
    shrunk ({!Fbp_resilience.Shrink}) and written as self-contained JSON
    repro artifacts replayable with [fbp_place fuzz --replay]. *)

type mb_shape =
  | No_movebounds
  | Islands  (** disjoint voltage-island rectangles *)
  | Flatten  (** guillotine partition of the chip *)
  | Overlapping  (** inflated guillotine leaves plus a nested bound *)
  | Mixed  (** overlapping shapes with alternating inclusive/exclusive *)

type fault_site = Mcf | Cg | Parse | Level | Transport | Legalize
type fault_kind = Infeasible | Stagnate | Corrupt | Raise | Delay

type fault_plan = {
  site : fault_site;
  kind : fault_kind;
  fault_after : int;  (** skip the first N polls of the site *)
}

(** A self-contained, serializable test case: everything needed to rebuild
    the design, the movebound configuration, the placer config and the
    injected fault. *)
type scenario = {
  seed : int;  (** netlist-generator seed; unique per scenario *)
  n_cells : int;
  utilization : float;
  n_macros : int;
  macro_fraction : float;
  avg_net_degree : float;
  locality : float;
  mb_shape : mb_shape;
  n_movebounds : int;
  coverage : float;  (** fraction of cells bound to a movebound *)
  mb_density : float;  (** per-movebound density cap *)
  exclusive : bool;  (** all movebounds exclusive (when not [Mixed]) *)
  max_levels : int;  (** 1 = degenerate single-level grid *)
  strict : bool;
  deadline : float option;
  round_trip : bool;  (** write/parse through Bookshelf (the Parse stage) *)
  fault : fault_plan option;
}

(** Outcome of one scenario run. *)
type outcome =
  | Passed  (** placer succeeded and every fuzz invariant held *)
  | Typed of Fbp_resilience.Fbp_error.t  (** documented taxonomy failure *)
  | Invariant of string  (** run "succeeded" but an invariant is violated *)
  | Uncaught of string  (** an undocumented exception escaped *)

type run_result = {
  outcome : outcome;
  fault_fired : bool;  (** the armed fault was actually reached *)
}

(** A shrunk finding: either a real failure (invariant violation, uncaught
    exception, escaped corruption) or a control (an injected corruption
    correctly caught by the sanitizer, kept as a replayable artifact). *)
type finding = {
  original : scenario;
  shrunk : scenario;
  signature : string;  (** failure class; preserved by shrinking *)
  detail : string;  (** outcome label of the shrunk run *)
  shrink_steps : int;
  artifacts : string list;  (** files written (repro JSON, run record) *)
}

type report = {
  fuzz_seed : int;
  total_scenarios : int;
  total_runs : int;  (** > scenarios in matrix mode *)
  n_passed : int;
  n_typed : int;
  typed_by_class : (string * int) list;  (** sorted by class name *)
  n_controls : int;  (** sanitizer catches of injected corruption *)
  controls : finding list;  (** shrunk controls (artifact cap applies) *)
  failures : finding list;  (** real failures — must be empty *)
  digest : int;  (** order-sensitive hash of all run outcomes *)
  truncated : bool;  (** the time cap expired before [count] scenarios *)
}

(** The scenario × fault matrix cells: every (site, kind) combination the
    pipeline documents. *)
val matrix_cells : (fault_site * fault_kind) list

(** Draw one scenario from the zoo distribution; [seed] becomes the
    scenario's generator seed. *)
val gen_scenario : Fbp_util.Rng.t -> seed:int -> scenario

(** Attach a fault-matrix cell, forcing the preconditions it needs
    (Parse faults need [round_trip]; [Delay] needs a deadline). *)
val with_fault : scenario -> fault_site * fault_kind -> scenario

(** Run one scenario end to end (generate → optional Bookshelf round-trip
    → movebound attach → feasibility preflight → place → legalize) with
    the sanitizer forced on and the scenario's fault armed.  Restores the
    global sanitizer flag and injection registry afterwards. *)
val run_scenario : scenario -> run_result

val outcome_label : outcome -> string

(** Run a fuzzing campaign.  [matrix] additionally runs every generated
    scenario against all {!matrix_cells}.  [time_cap] is a wall-clock
    bound in seconds — generation stops early (reported as [truncated])
    but never mid-scenario.  [out_dir] enables repro/record artifact
    writing.  [max_shrink_attempts] bounds each finding's shrink budget. *)
val run :
  ?matrix:bool ->
  ?time_cap:float ->
  ?out_dir:string ->
  ?max_shrink_attempts:int ->
  seed:int ->
  count:int ->
  unit ->
  report

(** Human-readable report (no timing — byte-stable for a given seed). *)
val render_report : report -> string

(** Serialize a finding as a self-contained repro artifact. *)
val repro_to_json : finding -> string

(** Parse the shrunk scenario back out of a repro artifact. *)
val repro_of_json : string -> (scenario, string) result

val scenario_to_json : scenario -> string
val scenario_of_json : string -> (scenario, string) result
