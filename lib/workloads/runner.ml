(* Run a placer on an instance and collect the metrics every table needs:
   legal-placement HPWL, wall time split into global and legalization,
   movebound violations, and the legality audit.

   Failures are typed ({!Fbp_resilience.Fbp_error}); [run_fbp] also wires
   the recursive-bisection fallback of the degradation ladder into the
   placer, so an infeasible first level degrades instead of failing. *)

open Fbp_netlist
module Err = Fbp_resilience.Fbp_error

type metrics = {
  tool : string;
  hpwl : float;  (* after legalization *)
  hpwl_global : float;  (* before legalization *)
  global_time : float;
  legalize_time : float;
  total_time : float;
  violations : int;
  legal : bool;  (* overlap/row/chip-audit clean *)
  levels : Fbp_core.Placer.level_report list;  (* FBP only *)
  degradations : Fbp_core.Placer.degradation list;  (* FBP only *)
  placement : Placement.t;  (* final legal placement *)
}

let audit_of (inst : Fbp_movebound.Instance.t) pos =
  let design = inst.Fbp_movebound.Instance.design in
  let a = Fbp_legalize.Check.audit design pos in
  let v = Fbp_movebound.Legality.check inst pos in
  (a.Fbp_legalize.Check.legal, v.Fbp_movebound.Legality.n_violations)

let normalized inst =
  match Fbp_movebound.Instance.normalize inst with
  | Ok i -> i
  | Error _ -> inst (* caller deals with infeasibility downstream *)

let run_fbp ?(config = Fbp_core.Config.default) ?(repartition = 1)
    (inst : Fbp_movebound.Instance.t) =
  let nl = inst.Fbp_movebound.Instance.design.Design.netlist in
  (* last rung of the degradation ladder: classic recursive bisection for
     instances whose first-level flow is infeasible *)
  let fallback () =
    match Fbp_baselines.Recursive.place ~config inst with
    | Ok r -> Ok r.Fbp_baselines.Recursive.placement
    | Error e -> Error e
  in
  (* post-place phase (repartition, legalization, audits), factored so the
     match below can wrap it in exception protection *)
  let post_place (rep : Fbp_core.Placer.report) =
    (* reflow post-pass (Repartition): a sweep or two of 2x2 block
       re-optimization recovers HPWL at negligible cost *)
    let repartition_time =
      if repartition > 0 then begin
        let t0 = Fbp_util.Timer.now () in
        ignore (Fbp_core.Repartition.refine ~sweeps:repartition config inst rep);
        Fbp_util.Timer.now () -. t0
      end
      else 0.0
    in
    let pos = rep.Fbp_core.Placer.placement in
    let hpwl_global = Hpwl.total nl pos in
    let inst_n = normalized inst in
    let lst =
      Fbp_legalize.Legalizer.run inst_n rep.Fbp_core.Placer.regions pos
        ~piece_of_cell:rep.Fbp_core.Placer.piece_of_cell
        ~grid:rep.Fbp_core.Placer.final_grid
    in
    let legal, violations = audit_of inst_n pos in
    let m =
      {
        tool = "BonnPlace FBP (repro)";
        hpwl = Hpwl.total nl pos;
        hpwl_global;
        global_time = rep.Fbp_core.Placer.total_time +. repartition_time;
        legalize_time = lst.Fbp_legalize.Legalizer.time;
        total_time =
          rep.Fbp_core.Placer.total_time +. repartition_time
          +. lst.Fbp_legalize.Legalizer.time;
        violations;
        legal = legal && lst.Fbp_legalize.Legalizer.n_failed = 0;
        levels = rep.Fbp_core.Placer.levels;
        degradations = rep.Fbp_core.Placer.degradations;
        placement = pos;
      }
    in
    (* flight recorder: the legalization snapshot, the final-placement
       density heatmap, and the run totals (only when [--record] armed it) *)
    if Fbp_obs.Recorder.enabled () then begin
      let module R = Fbp_obs.Recorder in
      let design = inst_n.Fbp_movebound.Instance.design in
      let hnx, hny = (24, 24) in
      let usage, capacity =
        Fbp_core.Density.bin_utilization design pos ~nx:hnx ~ny:hny
      in
      R.record_legalization
        {
          R.leg_hpwl = m.hpwl;
          leg_density_overflow =
            Fbp_core.Density.overflow_fraction design pos ~nx:hnx ~ny:hny;
          leg_mb_violations = violations;
          leg_time = lst.Fbp_legalize.Legalizer.time;
          spilled = lst.Fbp_legalize.Legalizer.n_spilled;
          failed = lst.Fbp_legalize.Legalizer.n_failed;
          avg_displacement = lst.Fbp_legalize.Legalizer.avg_displacement;
          max_displacement = lst.Fbp_legalize.Legalizer.max_displacement;
        };
      R.set_density { R.dnx = hnx; dny = hny; usage; capacity };
      (* host provenance last: Pool.hardware_domains and VmHWM are only
         meaningful once the run has actually exercised the pool *)
      R.set_host
        {
          R.hw_clamp = config.Fbp_core.Config.hw_clamp;
          hardware_domains = Fbp_util.Pool.hardware_domains;
          eff_domains = config.Fbp_core.Config.domains;
          peak_rss_kb = Fbp_util.Rss.peak_rss_kb ();
        };
      R.set_totals
        {
          R.hpwl = m.hpwl;
          global_time = m.global_time;
          legalize_time = m.legalize_time;
          total_time = m.total_time;
          legal = m.legal;
          violations = m.violations;
        }
    end;
    Ok m
  in
  match Fbp_core.Placer.place ~config ~fallback inst with
  | Error e -> Error e
  | Ok rep -> (
    (* The post-place phase runs outside the placer's own exception
       protection; convert anything escaping it — an injected fault, a
       sanitizer violation raised as [Err.Error] — into the typed taxonomy
       so callers still see a [result] and the recorder/trace exit paths
       still run. *)
    try post_place rep with e -> Error (Err.of_exn ~site:"runner.post_place" e))

let run_rql ?params (inst : Fbp_movebound.Instance.t) =
  match Fbp_baselines.Rql.place ?params inst with
  | Error e -> Error (Err.Invalid_input e)
  | Ok rep ->
    let inst_n = normalized inst in
    let legal, violations = audit_of inst_n rep.Fbp_baselines.Rql.placement in
    Ok
      {
        tool = "RQL (repro)";
        hpwl = rep.Fbp_baselines.Rql.hpwl;
        hpwl_global = rep.Fbp_baselines.Rql.hpwl;
        global_time = rep.Fbp_baselines.Rql.global_time;
        legalize_time = rep.Fbp_baselines.Rql.legalize_time;
        total_time =
          rep.Fbp_baselines.Rql.global_time +. rep.Fbp_baselines.Rql.legalize_time;
        violations;
        legal;
        levels = [];
        degradations = [];
        placement = rep.Fbp_baselines.Rql.placement;
      }

let run_kraftwerk ?params (inst : Fbp_movebound.Instance.t) =
  match Fbp_baselines.Kraftwerk.place ?params inst with
  | Error e -> Error (Err.Invalid_input e)
  | Ok rep ->
    let inst_n = normalized inst in
    let legal, violations = audit_of inst_n rep.Fbp_baselines.Kraftwerk.placement in
    Ok
      {
        tool = "Kraftwerk2 (repro)";
        hpwl = rep.Fbp_baselines.Kraftwerk.hpwl;
        hpwl_global = rep.Fbp_baselines.Kraftwerk.hpwl;
        global_time = rep.Fbp_baselines.Kraftwerk.global_time;
        legalize_time = rep.Fbp_baselines.Kraftwerk.legalize_time;
        total_time =
          rep.Fbp_baselines.Kraftwerk.global_time
          +. rep.Fbp_baselines.Kraftwerk.legalize_time;
        violations;
        legal;
        levels = [];
        degradations = [];
        placement = rep.Fbp_baselines.Kraftwerk.placement;
      }
