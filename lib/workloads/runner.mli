(** Run a placer end-to-end (global + legalization) and collect the metrics
    the tables need.  Failures are typed ({!Fbp_resilience.Fbp_error}). *)

open Fbp_netlist

type metrics = {
  tool : string;
  hpwl : float;  (** after legalization *)
  hpwl_global : float;
  global_time : float;
  legalize_time : float;
  total_time : float;
  violations : int;  (** movebound violations in the final placement *)
  legal : bool;  (** overlap/row/chip audit clean *)
  levels : Fbp_core.Placer.level_report list;  (** FBP only *)
  degradations : Fbp_core.Placer.degradation list;
      (** FBP only; non-empty when the placer degraded gracefully *)
  placement : Placement.t;
}

(** [repartition] = number of reflow sweeps after global placement
    (default 1; 0 disables — the ablation mode).  Wires
    {!Fbp_baselines.Recursive.place} into the placer as the bisection
    fallback of the degradation ladder. *)
val run_fbp :
  ?config:Fbp_core.Config.t -> ?repartition:int -> Fbp_movebound.Instance.t ->
  (metrics, Fbp_resilience.Fbp_error.t) result

val run_rql :
  ?params:Fbp_baselines.Rql.params -> Fbp_movebound.Instance.t ->
  (metrics, Fbp_resilience.Fbp_error.t) result

val run_kraftwerk :
  ?params:Fbp_baselines.Kraftwerk.params -> Fbp_movebound.Instance.t ->
  (metrics, Fbp_resilience.Fbp_error.t) result
