(* Property-based scenario fuzzer: the scenario zoo, the fault matrix, the
   per-run invariant checks, shrinking and repro artifacts.  See the
   interface for the contract and DESIGN.md ("Fuzzing & fault matrix") for
   the generator distribution and shrinking strategy.

   Determinism: every random draw routes through Fbp_util.Rng seeded from
   the campaign seed, scenario seeds are derived arithmetically, and the
   report's digest folds the (scenario, outcome) stream — two runs with
   the same seed are bit-identical. *)

open Fbp_netlist
module Err = Fbp_resilience.Fbp_error
module Inject = Fbp_resilience.Inject
module Sanitize = Fbp_resilience.Sanitize
module Shrink = Fbp_resilience.Shrink
module Rng = Fbp_util.Rng
module J = Fbp_obs.Obs.Json

type mb_shape = No_movebounds | Islands | Flatten | Overlapping | Mixed
type fault_site = Mcf | Cg | Parse | Level | Transport | Legalize
type fault_kind = Infeasible | Stagnate | Corrupt | Raise | Delay

type fault_plan = {
  site : fault_site;
  kind : fault_kind;
  fault_after : int;
}

type scenario = {
  seed : int;
  n_cells : int;
  utilization : float;
  n_macros : int;
  macro_fraction : float;
  avg_net_degree : float;
  locality : float;
  mb_shape : mb_shape;
  n_movebounds : int;
  coverage : float;
  mb_density : float;
  exclusive : bool;
  max_levels : int;
  strict : bool;
  deadline : float option;
  round_trip : bool;
  fault : fault_plan option;
}

type outcome =
  | Passed
  | Typed of Err.t
  | Invariant of string
  | Uncaught of string

type run_result = {
  outcome : outcome;
  fault_fired : bool;
}

type finding = {
  original : scenario;
  shrunk : scenario;
  signature : string;
  detail : string;
  shrink_steps : int;
  artifacts : string list;
}

type report = {
  fuzz_seed : int;
  total_scenarios : int;
  total_runs : int;
  n_passed : int;
  n_typed : int;
  typed_by_class : (string * int) list;
  n_controls : int;
  controls : finding list;
  failures : finding list;
  digest : int;
  truncated : bool;
}

(* ---------------------------------------------------------------- names *)

let site_to_string = function
  | Mcf -> "mcf"
  | Cg -> "cg"
  | Parse -> "parse"
  | Level -> "level"
  | Transport -> "transport"
  | Legalize -> "legalize"

let site_of_string = function
  | "mcf" -> Some Mcf
  | "cg" -> Some Cg
  | "parse" -> Some Parse
  | "level" -> Some Level
  | "transport" -> Some Transport
  | "legalize" -> Some Legalize
  | _ -> None

let kind_to_string = function
  | Infeasible -> "infeasible"
  | Stagnate -> "stagnate"
  | Corrupt -> "corrupt"
  | Raise -> "raise"
  | Delay -> "delay"

let kind_of_string = function
  | "infeasible" -> Some Infeasible
  | "stagnate" -> Some Stagnate
  | "corrupt" -> Some Corrupt
  | "raise" -> Some Raise
  | "delay" -> Some Delay
  | _ -> None

let shape_to_string = function
  | No_movebounds -> "none"
  | Islands -> "islands"
  | Flatten -> "flatten"
  | Overlapping -> "overlapping"
  | Mixed -> "mixed"

let shape_of_string = function
  | "none" -> Some No_movebounds
  | "islands" -> Some Islands
  | "flatten" -> Some Flatten
  | "overlapping" -> Some Overlapping
  | "mixed" -> Some Mixed
  | _ -> None

(* Taxonomy class label (stable; used in the digest and the report). *)
let err_class = function
  | Err.Infeasible_flow _ -> "infeasible-flow"
  | Err.Cg_diverged _ -> "cg-diverged"
  | Err.Parse_error _ -> "parse-error"
  | Err.Deadline_exceeded _ -> "deadline"
  | Err.Capacity_overflow _ -> "capacity-overflow"
  | Err.Invalid_input _ -> "invalid-input"
  | Err.Internal _ -> "internal"
  | Err.Sanitizer_violation { site; _ } -> "sanitizer:" ^ site

let outcome_label = function
  | Passed -> "ok"
  | Typed e -> "typed:" ^ err_class e
  | Invariant msg -> "invariant:" ^ msg
  | Uncaught msg -> "uncaught:" ^ msg

(* ----------------------------------------------------------- generation *)

let matrix_cells =
  [
    (Mcf, Infeasible);
    (Mcf, Corrupt);
    (Mcf, Raise);
    (Cg, Stagnate);
    (Cg, Raise);
    (Parse, Corrupt);
    (Parse, Raise);
    (Level, Delay);
    (Level, Raise);
    (Transport, Corrupt);
    (Transport, Raise);
    (Legalize, Corrupt);
    (Legalize, Raise);
  ]

let with_fault s (site, kind) =
  let fault_after = s.seed land 3 in
  {
    s with
    fault = Some { site; kind; fault_after };
    (* Parse faults only fire on the Bookshelf read path; Delay only bites
       against a deadline (virtual seconds dwarf the wall clock, so the
       outcome stays deterministic) *)
    round_trip = (match site with Parse -> true | _ -> s.round_trip);
    deadline =
      (match (kind, s.deadline) with
      | Delay, None -> Some 0.4
      | _, d -> d);
  }

let gen_scenario rng ~seed =
  (* four floorplan profiles: plain, macro-heavy dead space, near-full
     utilization, degenerate single-level grid *)
  let profile = Rng.int rng 4 in
  let n_cells, utilization, n_macros, macro_fraction, max_levels =
    match profile with
    | 0 ->
      ( 40 + Rng.int rng 180,
        0.55 +. (0.20 *. Rng.float rng),
        Rng.int rng 3,
        0.04 +. (0.05 *. Rng.float rng),
        4 + Rng.int rng 3 )
    | 1 ->
      ( 40 + Rng.int rng 140,
        0.45 +. (0.15 *. Rng.float rng),
        2 + Rng.int rng 5,
        0.25 +. (0.20 *. Rng.float rng),
        4 + Rng.int rng 3 )
    | 2 ->
      ( 40 + Rng.int rng 140,
        0.85 +. (0.10 *. Rng.float rng),
        Rng.int rng 2,
        0.04 +. (0.04 *. Rng.float rng),
        4 + Rng.int rng 3 )
    | _ ->
      ( 16 + Rng.int rng 40,
        0.50 +. (0.20 *. Rng.float rng),
        0,
        0.0,
        1 + Rng.int rng 2 )
  in
  let mb_shape =
    match Rng.int rng 8 with
    | 0 | 1 -> No_movebounds
    | 2 -> Islands
    | 3 | 4 -> Flatten
    | 5 | 6 -> Overlapping
    | _ -> Mixed
  in
  let n_movebounds =
    match mb_shape with
    | No_movebounds -> 0
    | Islands -> 2 + Rng.int rng 3
    | Flatten | Overlapping | Mixed -> 2 + Rng.int rng 7
  in
  let exclusive =
    (* exclusive overlapping bounds are structurally invalid (the paper's
       preprocessing assumption); the zoo reaches that path via [Mixed] *)
    match mb_shape with
    | Islands | Flatten -> Rng.int rng 4 = 0
    | No_movebounds | Overlapping | Mixed -> false
  in
  {
    seed;
    n_cells;
    utilization;
    n_macros;
    macro_fraction;
    avg_net_degree = 2.6 +. (1.6 *. Rng.float rng);
    locality = 0.5 +. (0.45 *. Rng.float rng);
    mb_shape;
    n_movebounds;
    coverage = 0.05 +. (0.70 *. Rng.float rng);
    mb_density = 0.60 +. (0.30 *. Rng.float rng);
    exclusive;
    max_levels;
    strict = Rng.int rng 4 = 0;
    deadline = None;
    round_trip = Rng.int rng 5 = 0;
    fault = None;
  }

let gen_scenario rng ~seed =
  let s = gen_scenario rng ~seed in
  (* even outside --matrix mode, ~30% of the zoo carries an injected fault
     so plain campaigns exercise the taxonomy and the sanitizer controls *)
  if Rng.int rng 10 < 3 then
    with_fault s (Rng.choose rng (Array.of_list matrix_cells))
  else s

(* ------------------------------------------------------------- building *)

let build_design (s : scenario) =
  Generator.generate
    {
      Generator.default_params with
      name = Printf.sprintf "fuzz-%d" s.seed;
      n_cells = s.n_cells;
      utilization = s.utilization;
      n_macros = s.n_macros;
      macro_fraction = s.macro_fraction;
      avg_net_degree = s.avg_net_degree;
      locality = s.locality;
      n_pads = min 32 (max 4 (s.n_cells / 4));
      cluster_size = max 4 (min 48 (s.n_cells / 4));
      seed = s.seed;
    }

(* Write/read through the Bookshelf text format — the Parse fault site
   lives on the read path.  The re-read design keeps the original name:
   [read_file_result] names it after the (random) temp-file basename, and
   the name seeds the movebound generator, so leaking it would make the
   campaign depend on temp-file naming. *)
let round_trip design =
  let path = Filename.temp_file "fbp-fuzz" ".book" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Bookshelf.write_file path design;
      match Bookshelf.read_file_result path with
      | Ok d -> Ok { d with Design.name = design.Design.name }
      | Error _ as e -> e)

let instance_of (s : scenario) design =
  match s.mb_shape with
  | No_movebounds -> Fbp_movebound.Instance.unconstrained design
  | shape ->
    let mb_shape =
      match shape with
      | Islands -> Mb_gen.Islands (max 1 s.n_movebounds)
      | Flatten -> Mb_gen.Flatten (max 1 s.n_movebounds)
      | Overlapping | Mixed -> Mb_gen.Overlapping (max 2 s.n_movebounds)
      | No_movebounds -> Mb_gen.Flatten 1
    in
    let kind =
      if s.exclusive then Fbp_movebound.Movebound.Exclusive
      else Fbp_movebound.Movebound.Inclusive
    in
    let inst =
      Mb_gen.attach
        {
          Mb_gen.design = design.Design.name;
          shape = mb_shape;
          coverage = s.coverage;
          max_density = s.mb_density;
          kind;
        }
        design
    in
    (match shape with
    | Mixed ->
      (* inclusive+exclusive mix: flip every other bound to exclusive
         (overlapping exclusives exercise the validation/normalization
         error paths) *)
      let movebounds =
        Array.map
          (fun (m : Fbp_movebound.Movebound.t) ->
            if m.Fbp_movebound.Movebound.id land 1 = 1 then
              Fbp_movebound.Movebound.make ~id:m.Fbp_movebound.Movebound.id
                ~name:m.Fbp_movebound.Movebound.name
                ~kind:Fbp_movebound.Movebound.Exclusive
                (Fbp_geometry.Rect_set.rects m.Fbp_movebound.Movebound.area)
            else m)
          inst.Fbp_movebound.Instance.movebounds
      in
      { inst with Fbp_movebound.Instance.movebounds }
    | _ -> inst)

(* -------------------------------------------------------------- running *)

let inject_site = function
  | Mcf -> Inject.Mcf
  | Cg -> Inject.Cg
  | Parse -> Inject.Parse
  | Level -> Inject.Level
  | Transport -> Inject.Transport
  | Legalize -> Inject.Legalize

let inject_fault = function
  | Infeasible -> Inject.Infeasible 8.0
  | Stagnate -> Inject.Stagnate
  | Corrupt -> Inject.Corrupt
  | Raise -> Inject.Raise "fuzz-injected fault"
  | Delay -> Inject.Delay 4.0

let classify_exn = function
  | Err.Error t -> Typed t
  | Inject.Injected msg -> Typed (Err.Internal { site = "injected"; msg })
  | e -> Uncaught (Printexc.to_string e)

let finite (p : Placement.t) =
  let ok = ref true in
  Array.iter (fun v -> if not (Float.is_finite v) then ok := false) p.Placement.x;
  Array.iter (fun v -> if not (Float.is_finite v) then ok := false) p.Placement.y;
  !ok

(* Fuzz invariants on a run the placer reported as successful. *)
let check_invariants (s : scenario) ~feasible ~checks_before
    (m : Runner.metrics) =
  let clean =
    Option.is_none s.fault && feasible && not s.strict
    && (match m.Runner.degradations with [] -> true | _ :: _ -> false)
  in
  if not (finite m.Runner.placement) then
    Invariant "non-finite coordinate in final placement"
  else if Option.is_none s.fault && Sanitize.checks_run () <= checks_before
  then Invariant "sanitizer ran no checks on a completed run"
  else if clean && m.Runner.legal && m.Runner.violations > 0 then
    Invariant
      (Printf.sprintf "%d movebound violations on a clean feasible run"
         m.Runner.violations)
  else Passed

let run_scenario (s : scenario) =
  let was_sanitize = Sanitize.enabled () in
  Inject.reset ();
  Sanitize.set_enabled true;
  let fired = ref false in
  let note_fired () =
    match s.fault with
    | Some f -> fired := Inject.hits (inject_site f.site) > f.fault_after
    | None -> ()
  in
  Fun.protect
    ~finally:(fun () ->
      Inject.reset ();
      Sanitize.set_enabled was_sanitize)
    (fun () ->
      let outcome =
        try
          let design0 = build_design s in
          (* Parse faults must be armed before the round-trip; solver
             faults are armed after the feasibility preflight so the
             preflight itself stays clean. *)
          let arm_if p =
            match s.fault with
            | Some f when p f.site ->
              Inject.arm ~after:f.fault_after (inject_site f.site)
                (inject_fault f.kind)
            | _ -> ()
          in
          arm_if (function Parse -> true | _ -> false);
          let design =
            if s.round_trip then
              match round_trip design0 with
              | Ok d -> d
              | Error e -> Err.raise_error e
            else design0
          in
          let inst = instance_of s design in
          let feasible =
            match Fbp_movebound.Feasibility.check_instance inst with
            | Ok (Fbp_movebound.Feasibility.Feasible, _) -> true
            | Ok (Fbp_movebound.Feasibility.Infeasible _, _) | Error _ ->
              false
          in
          arm_if (function Parse -> false | _ -> true);
          let config =
            {
              Fbp_core.Config.default with
              max_levels = s.max_levels;
              deadline = s.deadline;
              strict = s.strict;
            }
          in
          let checks_before = Sanitize.checks_run () in
          match Runner.run_fbp ~config ~repartition:0 inst with
          | Ok m -> check_invariants s ~feasible ~checks_before m
          | Error e ->
            (* the Theorems 1–3 promise: a feasible instance run gracefully
               with no injected fault must yield a placement *)
            if Option.is_none s.fault && feasible && not s.strict then
              Invariant ("feasible graceful run failed: " ^ Err.to_string e)
            else Typed e
        with e -> classify_exn e
      in
      note_fired ();
      { outcome; fault_fired = !fired })

(* ------------------------------------------------------------- verdicts *)

type verdict =
  | V_pass
  | V_control of string  (* expected sanitizer catch of injected corruption *)
  | V_fail of string

let verdict_of (s : scenario) (rr : run_result) =
  match rr.outcome with
  | Invariant msg -> V_fail ("invariant: " ^ msg)
  | Uncaught msg -> V_fail ("uncaught: " ^ msg)
  | Typed (Err.Sanitizer_violation { site; _ }) -> (
    match s.fault with
    | Some { kind = Corrupt; _ } when rr.fault_fired ->
      V_control ("control:sanitizer:" ^ site)
    | Some _ | None ->
      (* the sanitizer tripping without injected corruption is a real
         solver bug surfaced by the zoo *)
      V_fail ("sanitizer-violation: " ^ site))
  | Typed _ | Passed -> (
    match s.fault with
    | Some { kind = Corrupt; site = (Mcf | Transport | Legalize) as site; _ }
      when rr.fault_fired ->
      V_fail ("escaped-corruption: " ^ site_to_string site)
    | _ -> V_pass)

let signature_of_verdict = function
  | V_pass -> None
  | V_control s | V_fail s -> Some s

(* ------------------------------------------------------------ shrinking *)

(* Candidate reductions, most aggressive first; every candidate stays a
   well-formed scenario (generator floor of 8 cells, shape arities). *)
let shrink_candidates (s : scenario) =
  let cands = ref [] in
  let add c = cands := c :: !cands in
  (match s.mb_shape with
  | No_movebounds -> ()
  | _ ->
    add
      {
        s with
        mb_shape = No_movebounds;
        n_movebounds = 0;
        coverage = 0.0;
        exclusive = false;
      });
  if s.n_cells > 16 then add { s with n_cells = max 16 (s.n_cells / 2) };
  if s.n_macros > 0 then add { s with n_macros = 0; macro_fraction = 0.0 };
  (match s.mb_shape with
  | Mixed -> add { s with mb_shape = Overlapping }
  | _ -> ());
  if s.n_movebounds > 2 then
    add { s with n_movebounds = max 2 (s.n_movebounds / 2) };
  if s.coverage > 0.1 then add { s with coverage = s.coverage /. 2.0 };
  if s.utilization > 0.6 then add { s with utilization = 0.55 };
  if s.max_levels > 1 then add { s with max_levels = s.max_levels - 1 };
  (if s.round_trip then
     match s.fault with
     | Some { site = Parse; _ } -> ()
     | Some _ | None -> add { s with round_trip = false });
  if s.strict then add { s with strict = false };
  if s.n_cells > 16 then add { s with n_cells = s.n_cells - (s.n_cells / 4) };
  List.rev !cands

let shrink ~max_attempts (s : scenario) signature =
  Shrink.minimize ~max_attempts ~steps:shrink_candidates
    ~still_fails:(fun c ->
      match signature_of_verdict (verdict_of c (run_scenario c)) with
      | Some sig' -> String.equal sig' signature
      | None -> false)
    s

(* ------------------------------------------------------------ artifacts *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let scenario_to_json (s : scenario) =
  let fault =
    match s.fault with
    | None -> "null"
    | Some f ->
      Printf.sprintf "{\"site\":\"%s\",\"kind\":\"%s\",\"after\":%d}"
        (site_to_string f.site) (kind_to_string f.kind) f.fault_after
  in
  let deadline =
    match s.deadline with None -> "null" | Some d -> Printf.sprintf "%.17g" d
  in
  Printf.sprintf
    "{\"seed\":%d,\"n_cells\":%d,\"utilization\":%.17g,\"n_macros\":%d,\"macro_fraction\":%.17g,\"avg_net_degree\":%.17g,\"locality\":%.17g,\"mb_shape\":\"%s\",\"n_movebounds\":%d,\"coverage\":%.17g,\"mb_density\":%.17g,\"exclusive\":%b,\"max_levels\":%d,\"strict\":%b,\"deadline\":%s,\"round_trip\":%b,\"fault\":%s}"
    s.seed s.n_cells s.utilization s.n_macros s.macro_fraction
    s.avg_net_degree s.locality
    (shape_to_string s.mb_shape)
    s.n_movebounds s.coverage s.mb_density s.exclusive s.max_levels s.strict
    deadline s.round_trip fault

exception Bad_repro of string

let scenario_of_jobj j =
  let bad msg = raise (Bad_repro msg) in
  let num k =
    match J.member k j with
    | Some (J.Num f) -> f
    | _ -> bad ("missing number " ^ k)
  in
  let int_ k = int_of_float (num k) in
  let bool_ k =
    match J.member k j with
    | Some (J.Bool b) -> b
    | _ -> bad ("missing bool " ^ k)
  in
  let str k =
    match J.member k j with
    | Some (J.Str s) -> s
    | _ -> bad ("missing string " ^ k)
  in
  let fault =
    match J.member "fault" j with
    | None | Some J.Null -> None
    | Some (J.Obj _ as fj) ->
      let fsite =
        match J.member "site" fj with
        | Some (J.Str s) -> s
        | _ -> bad "missing fault site"
      in
      let fkind =
        match J.member "kind" fj with
        | Some (J.Str s) -> s
        | _ -> bad "missing fault kind"
      in
      let after =
        match J.member "after" fj with
        | Some (J.Num f) -> int_of_float f
        | _ -> bad "missing fault after"
      in
      let site =
        match site_of_string fsite with
        | Some s -> s
        | None -> bad ("unknown fault site " ^ fsite)
      in
      let kind =
        match kind_of_string fkind with
        | Some k -> k
        | None -> bad ("unknown fault kind " ^ fkind)
      in
      Some { site; kind; fault_after = after }
    | Some _ -> bad "fault must be an object or null"
  in
  {
    seed = int_ "seed";
    n_cells = int_ "n_cells";
    utilization = num "utilization";
    n_macros = int_ "n_macros";
    macro_fraction = num "macro_fraction";
    avg_net_degree = num "avg_net_degree";
    locality = num "locality";
    mb_shape =
      (let s = str "mb_shape" in
       match shape_of_string s with
       | Some v -> v
       | None -> bad ("unknown mb_shape " ^ s));
    n_movebounds = int_ "n_movebounds";
    coverage = num "coverage";
    mb_density = num "mb_density";
    exclusive = bool_ "exclusive";
    max_levels = int_ "max_levels";
    strict = bool_ "strict";
    deadline =
      (match J.member "deadline" j with
      | None | Some J.Null -> None
      | Some (J.Num f) -> Some f
      | Some _ -> bad "deadline must be a number or null");
    round_trip = bool_ "round_trip";
    fault;
  }

let scenario_of_json text =
  match J.parse text with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok j -> (
    try Ok (scenario_of_jobj j) with Bad_repro msg -> Error msg)

let repro_schema = "fbp-fuzz-repro"

let repro_to_json (f : finding) =
  Printf.sprintf
    "{\"schema\":\"%s\",\"version\":1,\"signature\":\"%s\",\"detail\":\"%s\",\"shrink_steps\":%d,\"scenario\":%s,\"original\":%s}"
    repro_schema (json_escape f.signature) (json_escape f.detail)
    f.shrink_steps
    (scenario_to_json f.shrunk)
    (scenario_to_json f.original)

let repro_of_json text =
  match J.parse text with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok j -> (
    match J.member "schema" j with
    | Some (J.Str s) when String.equal s repro_schema -> (
      match J.member "scenario" j with
      | Some (J.Obj _ as sj) -> (
        try Ok (scenario_of_jobj sj) with Bad_repro msg -> Error msg)
      | _ -> Error "repro has no scenario object")
    | _ -> Error ("not a " ^ repro_schema ^ " document"))

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write_text path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

(* Write the repro JSON plus a flight-recorder run record of the shrunk
   scenario (the post-mortem pair: what to replay and what happened). *)
let write_artifacts ~dir (f : finding) =
  ensure_dir dir;
  let repro = Filename.concat dir (Printf.sprintf "repro-%d.json" f.shrunk.seed) in
  write_text repro (repro_to_json f);
  let record =
    Filename.concat dir (Printf.sprintf "record-%d.json" f.shrunk.seed)
  in
  let module Rec = Fbp_obs.Recorder in
  let rec_was = Rec.enabled () in
  Rec.reset ();
  Rec.enable ();
  Rec.set_provenance
    {
      Rec.design = Printf.sprintf "fuzz-%d" f.shrunk.seed;
      cells = f.shrunk.n_cells;
      nets = 0;
      movebounds = f.shrunk.n_movebounds;
      seed = Some f.shrunk.seed;
      tool = "fbp-fuzz";
      config = [ ("signature", f.signature) ];
      host = None;
    };
  ignore (run_scenario f.shrunk);
  Rec.write_current record;
  if not rec_was then Rec.disable ();
  { f with artifacts = [ repro; record ] }

(* ------------------------------------------------------------- campaign *)

let run ?(matrix = false) ?time_cap ?out_dir ?(max_shrink_attempts = 24)
    ~seed ~count () =
  let rng = Rng.create seed in
  let t0 = Fbp_util.Timer.now () in
  let out_of_time () =
    match time_cap with
    | Some cap -> Fbp_util.Timer.now () -. t0 > cap
    | None -> false
  in
  let truncated = ref false in
  let digest = ref 0 in
  let total_runs = ref 0 in
  let n_passed = ref 0 and n_typed = ref 0 in
  let typed_by_class : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let failures = ref [] and controls = ref [] in
  let n_controls = ref 0 in
  (* artifact/shrink budget for expected controls: real failures always
     shrink, controls only up to this cap (they are confirmations, not
     bugs — the cap keeps big campaigns bounded) *)
  let control_budget = ref 8 in
  let finish_finding ~collect s signature =
    let m = shrink ~max_attempts:max_shrink_attempts s signature in
    let shrunk = m.Shrink.value in
    let detail =
      outcome_label (run_scenario shrunk).outcome
    in
    let f =
      {
        original = s;
        shrunk;
        signature;
        detail;
        shrink_steps = m.Shrink.shrink_steps;
        artifacts = [];
      }
    in
    let f = match out_dir with Some dir -> write_artifacts ~dir f | None -> f in
    collect := f :: !collect
  in
  let handle s =
    incr total_runs;
    let rr = run_scenario s in
    digest := Hashtbl.hash (!digest, s.seed, outcome_label rr.outcome);
    (match rr.outcome with
    | Passed -> incr n_passed
    | Typed e ->
      incr n_typed;
      let k = err_class e in
      Hashtbl.replace typed_by_class k
        (1 + Option.value ~default:0 (Hashtbl.find_opt typed_by_class k))
    | Invariant _ | Uncaught _ -> ());
    match verdict_of s rr with
    | V_pass -> ()
    | V_control signature ->
      incr n_controls;
      if !control_budget > 0 then begin
        decr control_budget;
        finish_finding ~collect:controls s signature
      end
    | V_fail signature -> finish_finding ~collect:failures s signature
  in
  let scenarios_done = ref 0 in
  (let i = ref 1 in
   while !i <= count && not !truncated do
     if out_of_time () then truncated := true
     else begin
       let s = gen_scenario rng ~seed:((seed * 1_000_003) + !i) in
       incr scenarios_done;
       if matrix then begin
         handle { s with fault = None };
         List.iter (fun cell -> handle (with_fault s cell)) matrix_cells
       end
       else handle s
     end;
     incr i
   done);
  {
    fuzz_seed = seed;
    total_scenarios = !scenarios_done;
    total_runs = !total_runs;
    n_passed = !n_passed;
    n_typed = !n_typed;
    typed_by_class =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) typed_by_class []);
    n_controls = !n_controls;
    controls = List.rev !controls;
    failures = List.rev !failures;
    digest = !digest land 0x3FFFFFFF;
    truncated = !truncated;
  }

(* ------------------------------------------------------------ reporting *)

let exit_code_of_class cls =
  if String.length cls >= 9 && String.equal (String.sub cls 0 9) "sanitizer"
  then 8
  else
    match cls with
    | "infeasible-flow" | "capacity-overflow" -> 2
    | "parse-error" -> 3
    | "deadline" -> 4
    | "invalid-input" -> 5
    | "cg-diverged" -> 6
    | "internal" -> 7
    | _ -> 1

let render_finding b tag (f : finding) =
  Buffer.add_string b
    (Printf.sprintf "  %s %s\n    shrunk (%d steps): %s\n" tag f.signature
       f.shrink_steps (scenario_to_json f.shrunk));
  List.iter
    (fun path -> Buffer.add_string b (Printf.sprintf "    wrote %s\n" path))
    f.artifacts

let render_report (r : report) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "fuzz: seed %d, %d scenarios, %d runs%s\n" r.fuzz_seed
       r.total_scenarios r.total_runs
       (if r.truncated then " (truncated by time cap)" else ""));
  Buffer.add_string b
    (Printf.sprintf "  ok %d, typed %d, corruption controls caught %d\n"
       r.n_passed r.n_typed r.n_controls);
  List.iter
    (fun (cls, n) ->
      Buffer.add_string b
        (Printf.sprintf "    %-24s %5d  [exit %d]\n" cls n
           (exit_code_of_class cls)))
    r.typed_by_class;
  List.iter (fun f -> render_finding b "control" f) r.controls;
  (match r.failures with
  | [] -> Buffer.add_string b "  failures: none\n"
  | fs ->
    Buffer.add_string b (Printf.sprintf "  FAILURES: %d\n" (List.length fs));
    List.iter (fun f -> render_finding b "FAIL" f) fs);
  Buffer.add_string b (Printf.sprintf "  digest: %08x\n" r.digest);
  Buffer.contents b
