(* ISPD-2006-style benchmark instances and contest scoring (Table VII).

   The contest netlists are not redistributable; one synthetic mixed-size
   instance stands in per contest circuit (`ad5-s` for adaptec5, `nb1-s` ..
   `nb7-s` for newblue1-7), with the contest's per-circuit target densities.
   The scoring reimplements the published formulas:

   - density penalty (D): the mean relative overflow of the worst 10% of
     bins (bins at 10 rows per side), as a percentage added to HPWL:
       H+D = HPWL * (1 + penalty);
   - CPU factor (C): ±4% per factor of two of runtime versus the reference
     tool, truncated at ±10% exactly as the contest (and the paper's Table
     VII footnote about the -10% truncation) specifies:
       H+D+C = (H+D) * (1 + C). *)

open Fbp_netlist

type spec = {
  name : string;
  paper_kcells : int;
  target_density : float;
  seed : int;
  macro_fraction : float;
  (* Table VII reference values for Kraftwerk2: HPWL, H+D, H+D+C *)
  paper_kw2 : float * float * float;
  (* Table VII values for BonnPlace FBP: HPWL, DENS%, CPU%, ratios *)
  paper_fbp_hpwl : float;
  paper_fbp_dens_pct : float;
  paper_fbp_cpu_pct : float;
}

let specs =
  [|
    { name = "ad5-s"; paper_kcells = 843; target_density = 0.50; seed = 201; macro_fraction = 0.12;
      paper_kw2 = (433.84, 449.48, 407.46); paper_fbp_hpwl = 430.43; paper_fbp_dens_pct = 1.81; paper_fbp_cpu_pct = -9.52 };
    { name = "nb1-s"; paper_kcells = 330; target_density = 0.80; seed = 202; macro_fraction = 0.20;
      paper_kw2 = (65.92, 66.22, 60.67); paper_fbp_hpwl = 69.05; paper_fbp_dens_pct = 2.04; paper_fbp_cpu_pct = -10.0 };
    { name = "nb2-s"; paper_kcells = 441; target_density = 0.90; seed = 203; macro_fraction = 0.15;
      paper_kw2 = (203.91, 206.53, 185.88); paper_fbp_hpwl = 200.77; paper_fbp_dens_pct = 1.92; paper_fbp_cpu_pct = -8.16 };
    { name = "nb3-s"; paper_kcells = 494; target_density = 0.80; seed = 204; macro_fraction = 0.10;
      paper_kw2 = (278.51, 279.57, 251.62); paper_fbp_hpwl = 273.48; paper_fbp_dens_pct = 1.15; paper_fbp_cpu_pct = -8.25 };
    { name = "nb4-s"; paper_kcells = 646; target_density = 0.50; seed = 205; macro_fraction = 0.10;
      paper_kw2 = (304.24, 309.44, 282.74); paper_fbp_hpwl = 313.72; paper_fbp_dens_pct = 2.27; paper_fbp_cpu_pct = -10.0 };
    { name = "nb5-s"; paper_kcells = 1233; target_density = 0.50; seed = 206; macro_fraction = 0.08;
      paper_kw2 = (548.38, 563.15, 509.65); paper_fbp_hpwl = 545.82; paper_fbp_dens_pct = 1.31; paper_fbp_cpu_pct = -10.0 };
    { name = "nb6-s"; paper_kcells = 1255; target_density = 0.80; seed = 207; macro_fraction = 0.08;
      paper_kw2 = (528.59, 537.59, 484.42); paper_fbp_hpwl = 520.19; paper_fbp_dens_pct = 1.42; paper_fbp_cpu_pct = -9.42 };
    { name = "nb7-s"; paper_kcells = 2507; target_density = 0.80; seed = 208; macro_fraction = 0.10;
      paper_kw2 = (1126.58, 1162.12, 1056.84); paper_fbp_hpwl = 1075.98; paper_fbp_dens_pct = 0.97; paper_fbp_cpu_pct = -8.35 };
  |]

(* ISPD instances are scaled like the Table II designs. *)
let instantiate ?scale (s : spec) =
  let sc = match scale with Some v -> v | None -> Designs.scale () in
  let n = max 1500 (int_of_float (float_of_int s.paper_kcells *. sc)) in
  Generator.generate
    {
      Generator.default_params with
      name = s.name;
      n_cells = n;
      seed = s.seed;
      macro_fraction = s.macro_fraction;
      n_macros = 3 + (s.seed mod 4);
      target_density = s.target_density;
      (* the contest designs are whitespace-rich *)
      utilization = 0.5;
    }

(* Density penalty: mean relative overflow of the worst 10% of bins. *)
let density_penalty (design : Design.t) pos =
  let chip = design.Design.chip in
  let rows10 = 10.0 *. design.Design.row_height in
  let nx = max 4 (int_of_float (Fbp_geometry.Rect.width chip /. rows10)) in
  let ny = max 4 (int_of_float (Fbp_geometry.Rect.height chip /. rows10)) in
  let usage, cap = Fbp_core.Density.bin_utilization design pos ~nx ~ny in
  let overflow =
    Array.mapi
      (fun i u ->
        let allowed = design.Design.target_density *. cap.(i) in
        if allowed > 1e-9 then Float.max 0.0 ((u -. allowed) /. allowed) else 0.0)
      usage
  in
  Array.sort (fun a b -> Float.compare b a) overflow;
  let top = max 1 (Array.length overflow / 10) in
  let acc = ref 0.0 in
  for i = 0 to top - 1 do
    acc := !acc +. overflow.(i)
  done;
  !acc /. float_of_int top

(* CPU factor versus a reference runtime: ±4% per factor of two, truncated
   at ±10% (negative = bonus for being faster). *)
let cpu_factor ~reference ~time =
  if reference <= 0.0 || time <= 0.0 then 0.0
  else begin
    let f = 0.04 *. (log (time /. reference) /. log 2.0) in
    Float.max (-0.10) (Float.min 0.10 f)
  end

type score = {
  hpwl : float;
  dens_pct : float;  (* density penalty in percent *)
  cpu_pct : float;  (* CPU factor in percent *)
  h_d : float;  (* HPWL with density penalty *)
  h_d_c : float;  (* with CPU factor *)
}

let score (design : Design.t) pos ~time ~reference_time =
  let h = Hpwl.total design.Design.netlist pos in
  let d = density_penalty design pos in
  let c = cpu_factor ~reference:reference_time ~time in
  {
    hpwl = h;
    dens_pct = 100.0 *. d;
    cpu_pct = 100.0 *. c;
    h_d = h *. (1.0 +. d);
    h_d_c = h *. (1.0 +. d) *. (1.0 +. c);
  }
