(* Synthetic design generator.

   The paper's testbed (proprietary IBM designs, ISPD-2006 netlists) is not
   redistributable, so the harness substitutes deterministic synthetic
   instances (see DESIGN.md).  The generator reproduces the structural knobs
   that drive placement difficulty:

   - a clustered "golden" placement from which net locality is derived
     (placers can rediscover good placements, so HPWL comparisons are
     meaningful rather than noise over random graphs);
   - a Rent-style net-degree distribution (many 2-3 pin nets, a tail of
     wider nets) with mostly-local, occasionally-global connections;
   - fixed macros acting as blockages, boundary pads, standard-cell rows of
     height 1.0, and a target density.

   Everything is driven by a SplitMix64 seed: the same parameters always
   yield the same design, on any machine. *)

open Fbp_geometry
open Fbp_util

type params = {
  name : string;
  n_cells : int;
  utilization : float;  (* movable area / chip capacity *)
  n_macros : int;
  macro_fraction : float;  (* fraction of chip area covered by macros *)
  n_pads : int;
  avg_net_degree : float;  (* controls #nets = n_cells * 4 / avg_degree *)
  locality : float;  (* probability that a net pin stays in-cluster *)
  cluster_size : int;
  target_density : float;
  seed : int;
}

let default_params =
  {
    name = "synthetic";
    n_cells = 1000;
    utilization = 0.7;
    n_macros = 2;
    macro_fraction = 0.08;
    n_pads = 32;
    avg_net_degree = 3.4;
    locality = 0.8;
    cluster_size = 48;
    target_density = 0.97;
    seed = 1;
  }

(* Net degree sampler: geometric-ish tail capped at 12 pins, matching the
   classic 2-3 pin dominance of standard-cell netlists. *)
let sample_degree rng =
  let r = Rng.float rng in
  if r < 0.55 then 2
  else if r < 0.78 then 3
  else if r < 0.89 then 4
  else if r < 0.94 then 5
  else 6 + Rng.int rng 7

let generate (p : params) =
  if p.n_cells < 2 then invalid_arg "Generator.generate: need at least 2 cells";
  let rng = Rng.create p.seed in
  let row_height = 1.0 in
  (* Cell shapes: widths 1..5 rows wide, height one row. *)
  let widths = Array.init p.n_cells (fun _ -> 1.0 +. float_of_int (Rng.int rng 4)) in
  let heights = Array.make p.n_cells row_height in
  let movable_area = Array.fold_left ( +. ) 0.0 widths in
  (* Chip area sized so movable cells fill [utilization] of the non-macro,
     density-scaled capacity. *)
  let free_needed = movable_area /. p.utilization /. p.target_density in
  let chip_area = free_needed /. (1.0 -. p.macro_fraction) in
  let side = sqrt chip_area in
  let n_rows = max 4 (int_of_float (Float.round (side /. row_height))) in
  let chip_h = float_of_int n_rows *. row_height in
  let chip_w = chip_area /. chip_h in
  let chip = Rect.of_corner ~x:0.0 ~y:0.0 ~w:chip_w ~h:chip_h in
  (* Macros: non-overlapping fixed blocks, placed by rejection sampling. *)
  let macro_area_each =
    if p.n_macros = 0 then 0.0 else chip_area *. p.macro_fraction /. float_of_int p.n_macros
  in
  let macros = ref [] in
  let attempts = ref 0 in
  while List.length !macros < p.n_macros && !attempts < 1000 do
    incr attempts;
    let aspect = Rng.range rng 0.6 1.7 in
    let w = sqrt (macro_area_each *. aspect) and h = sqrt (macro_area_each /. aspect) in
    if w < chip_w /. 2.0 && h < chip_h /. 2.0 then begin
      let x = Rng.range rng 0.0 (chip_w -. w) in
      (* snap to row grid so rows are cleanly blocked *)
      let y = Float.round (Rng.range rng 0.0 (chip_h -. h)) in
      let r = Rect.of_corner ~x ~y ~w ~h in
      if Rect.contains chip r && not (List.exists (Rect.overlaps (Rect.inflate r 2.0)) !macros)
      then macros := r :: !macros
    end
  done;
  let macros = !macros in
  (* Golden placement: clusters of [cluster_size] cells around random
     centers avoiding macros. *)
  let n_clusters = max 1 ((p.n_cells + p.cluster_size - 1) / p.cluster_size) in
  let free_center () =
    let rec try_ k =
      let pt = Point.make (Rng.range rng 0.0 chip_w) (Rng.range rng 0.0 chip_h) in
      if k = 0 || not (List.exists (fun m -> Rect.contains_point m pt) macros) then pt
      else try_ (k - 1)
    in
    try_ 20
  in
  let cluster_centers = Array.init n_clusters (fun _ -> free_center ()) in
  let cluster_radius = sqrt (chip_area /. float_of_int n_clusters) *. 0.6 in
  let cluster_of = Array.init p.n_cells (fun _ -> Rng.int rng n_clusters) in
  let clamp lo hi v = Float.max lo (Float.min hi v) in
  let x = Array.make p.n_cells 0.0 and y = Array.make p.n_cells 0.0 in
  for c = 0 to p.n_cells - 1 do
    let ctr = cluster_centers.(cluster_of.(c)) in
    x.(c) <- clamp (widths.(c) /. 2.0) (chip_w -. (widths.(c) /. 2.0))
               (ctr.Point.x +. (Rng.normal rng *. cluster_radius));
    y.(c) <- clamp (row_height /. 2.0) (chip_h -. (row_height /. 2.0))
               (ctr.Point.y +. (Rng.normal rng *. cluster_radius))
  done;
  (* Cells grouped per cluster, for local pin selection. *)
  let members = Array.make n_clusters [] in
  Array.iteri (fun c k -> members.(k) <- c :: members.(k)) cluster_of;
  let members = Array.map Array.of_list members in
  (* Pads on the chip boundary. *)
  let pad_position i =
    let t = float_of_int i /. float_of_int (max 1 p.n_pads) in
    let perim = 2.0 *. (chip_w +. chip_h) in
    let d = t *. perim in
    if d < chip_w then (d, 0.0)
    else if d < chip_w +. chip_h then (chip_w, d -. chip_w)
    else if d < (2.0 *. chip_w) +. chip_h then ((2.0 *. chip_w) +. chip_h -. d, chip_h)
    else (0.0, perim -. d)
  in
  (* Nets. *)
  let n_nets =
    max 1 (int_of_float (float_of_int p.n_cells *. 4.0 /. p.avg_net_degree))
  in
  let nets = ref [] in
  for ni = 0 to n_nets - 1 do
    let deg = sample_degree rng in
    let anchor = Rng.int rng p.n_cells in
    let home = cluster_of.(anchor) in
    let pin_of_cell c =
      let dx = Rng.range rng (-.widths.(c) /. 2.0) (widths.(c) /. 2.0) in
      { Netlist.cell = c; dx; dy = 0.0 }
    in
    let pins = ref [ pin_of_cell anchor ] in
    for _ = 2 to deg do
      if p.n_pads > 0 && Rng.float rng < 0.02 then begin
        (* occasional IO connection *)
        let px, py = pad_position (Rng.int rng p.n_pads) in
        pins := { Netlist.cell = -1; dx = px; dy = py } :: !pins
      end
      else begin
        let c =
          if Rng.float rng < p.locality && Array.length members.(home) > 1 then
            Rng.choose rng members.(home)
          else Rng.int rng p.n_cells
        in
        pins := pin_of_cell c :: !pins
      end
    done;
    (* Drop degenerate nets where all pins landed on the anchor. *)
    let distinct =
      List.sort_uniq Int.compare (List.map (fun pin -> pin.Netlist.cell) !pins)
    in
    if List.length distinct > 1 then
      nets := { Netlist.pins = Array.of_list !pins; weight = 1.0 } :: !nets
    else ignore ni
  done;
  let netlist =
    {
      Netlist.n_cells = p.n_cells;
      names = Array.init p.n_cells (Printf.sprintf "c%d");
      widths;
      heights;
      fixed = Array.make p.n_cells false;
      movebound = Array.make p.n_cells (-1);
      nets = Array.of_list !nets;
    }
  in
  let initial = { Placement.x; y } in
  {
    Design.name = p.name;
    chip;
    row_height;
    netlist;
    blockages = macros;
    initial;
    target_density = p.target_density;
  }

(* Convenience: a small design keyed only by size and seed, used heavily by
   tests and examples. *)
let quick ?(seed = 1) ?(name = "quick") n_cells =
  generate { default_params with n_cells; seed; name }
