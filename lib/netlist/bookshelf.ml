(* Plain-text interchange format for designs, loosely modelled on the
   Bookshelf files of the ISPD contests but self-contained in one file.

   Grammar (one record per line, '#' starts a comment):

     chip <x0> <y0> <x1> <y1>
     rowheight <h>
     density <d>
     cells <n>
     cell <name> <w> <h> <x> <y> <movable|fixed> <mbid|->
     nets <m>
     net <weight> <npins>
     pin <cellindex> <dx> <dy>        (cellindex -1 = pad, dx/dy absolute)
     blockages <k>
     blockage <x0> <y0> <x1> <y1>

   The writer emits records in exactly this order; the reader accepts them in
   any order as long as counts precede their items. *)

open Fbp_geometry

let write_channel oc (d : Design.t) =
  let nl = d.netlist in
  let p = d.initial in
  Printf.fprintf oc "# fbp design: %s\n" d.Design.name;
  Printf.fprintf oc "chip %.17g %.17g %.17g %.17g\n" d.chip.Rect.x0 d.chip.Rect.y0
    d.chip.Rect.x1 d.chip.Rect.y1;
  Printf.fprintf oc "rowheight %.17g\n" d.row_height;
  Printf.fprintf oc "density %.17g\n" d.target_density;
  Printf.fprintf oc "cells %d\n" nl.Netlist.n_cells;
  for c = 0 to nl.Netlist.n_cells - 1 do
    Printf.fprintf oc "cell %s %.17g %.17g %.17g %.17g %s %s\n" nl.Netlist.names.(c)
      nl.Netlist.widths.(c) nl.Netlist.heights.(c) p.Placement.x.(c)
      p.Placement.y.(c)
      (if nl.Netlist.fixed.(c) then "fixed" else "movable")
      (if nl.Netlist.movebound.(c) < 0 then "-" else string_of_int nl.Netlist.movebound.(c))
  done;
  Printf.fprintf oc "nets %d\n" (Array.length nl.Netlist.nets);
  Array.iter
    (fun (net : Netlist.net) ->
      Printf.fprintf oc "net %.17g %d\n" net.Netlist.weight (Array.length net.Netlist.pins);
      Array.iter
        (fun (pin : Netlist.pin) ->
          Printf.fprintf oc "pin %d %.17g %.17g\n" pin.Netlist.cell pin.Netlist.dx
            pin.Netlist.dy)
        net.Netlist.pins)
    nl.Netlist.nets;
  Printf.fprintf oc "blockages %d\n" (List.length d.blockages);
  List.iter
    (fun (b : Rect.t) ->
      Printf.fprintf oc "blockage %.17g %.17g %.17g %.17g\n" b.Rect.x0 b.Rect.y0 b.Rect.x1
        b.Rect.y1)
    d.blockages

let write_file path d =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write_channel oc d)

exception Parse_error of int * string

let parse_failure line msg = raise (Parse_error (line, msg))

let read_channel ?(name = "from-file") ic =
  let chip = ref None in
  let row_height = ref 1.0 in
  let density = ref 1.0 in
  let cells = ref [] and n_cells = ref 0 in
  let nets = ref [] and n_nets = ref None in
  let blockages = ref [] and n_blockages = ref None in
  let pending_pins = ref 0 in
  let current_net = ref None in
  let lineno = ref 0 in
  let float_of s ln =
    match float_of_string_opt s with
    | Some f when Float.is_nan f -> parse_failure ln (Printf.sprintf "NaN value %S" s)
    | Some f when not (Float.is_finite f) ->
      parse_failure ln (Printf.sprintf "non-finite value %S" s)
    | Some f -> f
    | None -> parse_failure ln (Printf.sprintf "bad number %S" s)
  in
  (* cell/blockage dimensions must be usable by the density and flow models *)
  let dim_of s ln =
    let f = float_of s ln in
    if f < 0.0 then parse_failure ln (Printf.sprintf "negative dimension %S" s);
    f
  in
  let int_of s ln =
    match int_of_string_opt s with
    | Some i -> i
    | None -> parse_failure ln (Printf.sprintf "bad integer %S" s)
  in
  let count_of s ln =
    let i = int_of s ln in
    if i < 0 then parse_failure ln (Printf.sprintf "negative count %S" s);
    i
  in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       let ln = !lineno in
       (match Fbp_resilience.Inject.fire Fbp_resilience.Inject.Parse with
        | Some Fbp_resilience.Inject.Corrupt -> parse_failure ln "injected corruption"
        | Some (Fbp_resilience.Inject.Raise msg) ->
          (* fbp-lint: allow error-taxonomy — fires only when the fuzz harness arms the registry, which converts it; CLI runs never arm *)
          raise (Fbp_resilience.Inject.Injected msg)
        | _ -> ());
       let line =
         match String.index_opt line '#' with
         | Some i -> String.sub line 0 i
         | None -> line
       in
       let tokens =
         String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
       in
       match tokens with
       | [] -> ()
       | "chip" :: [ a; b; c; d ] ->
         let r = Rect.make ~x0:(float_of a ln) ~y0:(float_of b ln)
             ~x1:(float_of c ln) ~y1:(float_of d ln) in
         if r.Rect.x1 <= r.Rect.x0 || r.Rect.y1 <= r.Rect.y0 then
           parse_failure ln "empty chip rectangle";
         chip := Some r
       | "rowheight" :: [ h ] ->
         let h = float_of h ln in
         if h <= 0.0 then parse_failure ln "rowheight must be positive";
         row_height := h
       | "density" :: [ d ] ->
         let d = float_of d ln in
         if d <= 0.0 then parse_failure ln "density must be positive";
         density := d
       | "cells" :: [ n ] -> n_cells := count_of n ln
       | "cell" :: [ nm; w; h; x; y; mv; mb ] ->
         let movebound = if mb = "-" then -1 else int_of mb ln in
         if movebound < -1 then parse_failure ln "negative movebound id";
         if mv <> "fixed" && mv <> "movable" then
           parse_failure ln (Printf.sprintf "bad mobility %S (fixed|movable)" mv);
         cells :=
           (nm, dim_of w ln, dim_of h ln, float_of x ln, float_of y ln,
            mv = "fixed", movebound)
           :: !cells
       | "nets" :: [ n ] -> n_nets := Some (count_of n ln)
       | "net" :: [ w; np ] ->
         (match !current_net with
          | Some _ when !pending_pins > 0 -> parse_failure ln "previous net incomplete"
          | _ -> ());
         (match !current_net with
          | Some (w', pins) ->
            nets := { Netlist.weight = w'; pins = Array.of_list (List.rev pins) } :: !nets
          | None -> ());
         let w = float_of w ln in
         if w < 0.0 then parse_failure ln "negative net weight";
         current_net := Some (w, []);
         pending_pins := count_of np ln
       | "pin" :: [ c; dx; dy ] ->
         (match !current_net with
          | None -> parse_failure ln "pin outside net"
          | Some (w, pins) ->
            if !pending_pins <= 0 then parse_failure ln "too many pins for net";
            let cell = int_of c ln in
            if cell < -1 then parse_failure ln "bad pin cell index";
            current_net :=
              Some (w, { Netlist.cell; dx = float_of dx ln; dy = float_of dy ln } :: pins);
            decr pending_pins)
       | "blockages" :: [ n ] -> n_blockages := Some (count_of n ln)
       | "blockage" :: [ a; b; c; d ] ->
         let r = Rect.make ~x0:(float_of a ln) ~y0:(float_of b ln)
             ~x1:(float_of c ln) ~y1:(float_of d ln) in
         if r.Rect.x1 < r.Rect.x0 || r.Rect.y1 < r.Rect.y0 then
           parse_failure ln "inverted blockage rectangle";
         blockages := r :: !blockages
       | ("chip" | "rowheight" | "density" | "cells" | "cell" | "nets" | "net"
         | "pin" | "blockages" | "blockage") :: _ as toks ->
         parse_failure ln
           (Printf.sprintf "malformed %S record (wrong field count)" (List.hd toks))
       | tok :: _ -> parse_failure ln (Printf.sprintf "unknown record %S" tok)
     done
   with End_of_file -> ());
  (match !current_net with
   | Some (w, pins) ->
     if !pending_pins > 0 then
       parse_failure !lineno "truncated file: last net incomplete";
     nets := { Netlist.weight = w; pins = Array.of_list (List.rev pins) } :: !nets
   | None -> ());
  let cells = Array.of_list (List.rev !cells) in
  if Array.length cells <> !n_cells then
    parse_failure !lineno
      (Printf.sprintf "truncated file: expected %d cells, got %d" !n_cells
         (Array.length cells));
  (match !n_nets with
   | Some m when m <> List.length !nets ->
     parse_failure !lineno
       (Printf.sprintf "truncated file: expected %d nets, got %d" m (List.length !nets))
   | _ -> ());
  (match !n_blockages with
   | Some m when m <> List.length !blockages ->
     parse_failure !lineno
       (Printf.sprintf "expected %d blockages, got %d" m (List.length !blockages))
   | _ -> ());
  let chip =
    match !chip with Some c -> c | None -> parse_failure !lineno "missing chip record"
  in
  let n = Array.length cells in
  (* pin indices can only be checked once the cell count is known *)
  List.iter
    (fun (net : Netlist.net) ->
      Array.iter
        (fun (p : Netlist.pin) ->
          if p.Netlist.cell >= n then
            parse_failure !lineno
              (Printf.sprintf "pin references cell %d of %d" p.Netlist.cell n))
        net.Netlist.pins)
    !nets;
  let netlist =
    {
      Netlist.n_cells = n;
      names = Array.map (fun (nm, _, _, _, _, _, _) -> nm) cells;
      widths = Array.map (fun (_, w, _, _, _, _, _) -> w) cells;
      heights = Array.map (fun (_, _, h, _, _, _, _) -> h) cells;
      fixed = Array.map (fun (_, _, _, _, _, f, _) -> f) cells;
      movebound = Array.map (fun (_, _, _, _, _, _, mb) -> mb) cells;
      nets = Array.of_list (List.rev !nets);
    }
  in
  let initial =
    {
      Placement.x = Array.map (fun (_, _, _, x, _, _, _) -> x) cells;
      y = Array.map (fun (_, _, _, _, y, _, _) -> y) cells;
    }
  in
  {
    Design.name;
    chip;
    row_height = !row_height;
    netlist;
    blockages = List.rev !blockages;
    initial;
    target_density = !density;
  }

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read_channel ~name:(Filename.remove_extension (Filename.basename path)) ic)

let read_file_result path =
  match read_file path with
  | d -> Ok d
  | exception Parse_error (line, msg) ->
    Error (Fbp_resilience.Fbp_error.Parse_error { file = path; line; msg })
  | exception Sys_error msg -> Error (Fbp_resilience.Fbp_error.Invalid_input msg)
