(* BestChoice clustering (Nam et al. [17], as used by the paper's
   experimental setup: "Both tools used BestChoice for clustering with
   cluster ratio 5" for Tables II-VI, ratio 2 for ISPD).

   Score-based bottom-up clustering: each pair of connected cells (u, v)
   scores sum over shared nets of w_e / |e|, divided by the combined area;
   repeatedly merge the globally best pair until the number of cells drops
   to n / ratio.  We implement the standard lazy-update variant: a global
   heap of candidate pairs, entries revalidated on pop against the current
   cluster generation.

   Clustering produces a coarse netlist plus the maps to expand a coarse
   placement back to the original cells (each original cell at its cluster's
   position — the placer's multilevel refinement and the legalizer then
   spread them). *)

open Fbp_util

type t = {
  coarse : Netlist.t;
  cluster_of : int array;  (* original cell -> coarse cell *)
  members : int list array;  (* coarse cell -> original cells *)
}

(* Union-find with cluster area and generation counters for lazy heap
   entries. *)
let best_choice ?(ratio = 5.0) ?(max_cluster_area = infinity) (nl : Netlist.t) =
  let n = Netlist.n_cells nl in
  let target = max 1 (int_of_float (float_of_int n /. Float.max 1.0 ratio)) in
  let uf = Union_find.create n in
  let area = Array.init n (fun c -> Netlist.size nl c) in
  let generation = Array.make n 0 in
  let alive = ref n in
  (* fixed cells never merge (macros keep their identity) *)
  let mergeable c = not nl.Netlist.fixed.(c) in
  (* adjacency with weights: for each net, each pin pair gets w/(p-1) *)
  let adj = Hashtbl.create (4 * n) in
  Array.iter
    (fun (net : Netlist.net) ->
      let pins =
        Array.to_list net.Netlist.pins
        |> List.filter_map (fun (p : Netlist.pin) ->
               if p.Netlist.cell >= 0 && mergeable p.Netlist.cell then
                 Some p.Netlist.cell
               else None)
        |> List.sort_uniq Int.compare
      in
      let p = List.length pins in
      if p >= 2 && p <= 10 then begin
        let w = net.Netlist.weight /. float_of_int (p - 1) in
        List.iteri
          (fun i u ->
            List.iteri
              (fun j v ->
                if i < j then begin
                  let key = (min u v, max u v) in
                  Hashtbl.replace adj key
                    (w +. (try Hashtbl.find adj key with Not_found -> 0.0))
                end)
              pins)
          pins
      end)
    nl.Netlist.nets;
  (* heap of candidate merges; keys are negated scores (min-heap) *)
  let pq : (int * int * int * int) Pq.t = Pq.create () in
  let score u v w = w /. (area.(u) +. area.(v)) in
  Hashtbl.iter
    (fun (u, v) w -> Pq.push pq (-.score u v w) (u, v, generation.(u), generation.(v)))
    adj;
  let find = Union_find.find uf in
  let continue_ = ref true in
  while !alive > target && !continue_ do
    match Pq.pop pq with
    | None -> continue_ := false
    | Some (neg_score, (u, v, gu, gv)) ->
      let ru = find u and rv = find v in
      if ru <> rv && generation.(ru) = gu && generation.(rv) = gv
         && ru = u && rv = v
         && area.(u) +. area.(v) <= max_cluster_area
      then begin
        (* commit the merge: u absorbs v *)
        ignore neg_score;
        Union_find.union uf u v;
        let r = find u in
        let other = if r = u then v else u in
        area.(r) <- area.(u) +. area.(v);
        generation.(r) <- generation.(r) + 1;
        generation.(other) <- generation.(other) + 1;
        decr alive;
        (* refresh candidate pairs incident to the merged cluster *)
        Hashtbl.iter
          (fun (a, b) w ->
            let ra = find a and rb = find b in
            if ra <> rb && (ra = r || rb = r) then
              Pq.push pq
                (-.score ra rb w)
                (min ra rb, max ra rb, generation.(min ra rb), generation.(max ra rb)))
          adj
      end
  done;
  (* build the coarse netlist *)
  let cluster_of_raw, n_coarse = Union_find.groups uf in
  let members = Array.make n_coarse [] in
  Array.iteri (fun c g -> members.(g) <- c :: members.(g)) cluster_of_raw;
  let widths = Array.make n_coarse 0.0 in
  let heights = Array.make n_coarse 0.0 in
  let fixed = Array.make n_coarse false in
  let movebound = Array.make n_coarse (-1) in
  let names = Array.make n_coarse "" in
  Array.iteri
    (fun g mems ->
      let total = List.fold_left (fun a c -> a +. Netlist.size nl c) 0.0 mems in
      let h = List.fold_left (fun a c -> Float.max a nl.Netlist.heights.(c)) 0.0 mems in
      heights.(g) <- h;
      widths.(g) <- total /. Float.max 1e-9 h;
      fixed.(g) <- List.exists (fun c -> nl.Netlist.fixed.(c)) mems;
      (* a cluster inherits a movebound only if all members agree *)
      (match mems with
       | first :: rest ->
         let mb = nl.Netlist.movebound.(first) in
         movebound.(g) <-
           (if List.for_all (fun c -> nl.Netlist.movebound.(c) = mb) rest then mb else -1);
         names.(g) <- nl.Netlist.names.(first) ^ if rest = [] then "" else "+"
       | [] -> ()))
    members;
  (* nets: pins re-target clusters; degenerate nets (all pins in one
     cluster) are dropped *)
  let nets =
    Array.to_list nl.Netlist.nets
    |> List.filter_map (fun (net : Netlist.net) ->
           let pins =
             Array.map
               (fun (p : Netlist.pin) ->
                 if p.Netlist.cell < 0 then p
                 else { p with Netlist.cell = cluster_of_raw.(p.Netlist.cell) })
               net.Netlist.pins
           in
           let distinct =
             Array.to_list pins
             |> List.map (fun (p : Netlist.pin) -> p.Netlist.cell)
             |> List.sort_uniq Int.compare
           in
           if List.length distinct >= 2 then Some { net with Netlist.pins = pins }
           else None)
    |> Array.of_list
  in
  {
    coarse =
      {
        Netlist.n_cells = n_coarse;
        names;
        widths;
        heights;
        fixed;
        movebound;
        nets;
      };
    cluster_of = cluster_of_raw;
    members;
  }

(* Coarse placement for a clustering: each cluster at the area-weighted
   centroid of its members' positions. *)
let coarse_placement (t : t) (nl : Netlist.t) (pos : Placement.t) =
  let out = Placement.create t.coarse.Netlist.n_cells in
  Array.iteri
    (fun g mems ->
      let sx = ref 0.0 and sy = ref 0.0 and m = ref 0.0 in
      List.iter
        (fun c ->
          let a = Netlist.size nl c in
          sx := !sx +. (a *. pos.Placement.x.(c));
          sy := !sy +. (a *. pos.Placement.y.(c));
          m := !m +. a)
        mems;
      if !m > 0.0 then begin
        out.Placement.x.(g) <- !sx /. !m;
        out.Placement.y.(g) <- !sy /. !m
      end)
    t.members;
  out

(* Expand a coarse placement back to the original cells: every member lands
   at its cluster's position (the fine levels / legalization spread them). *)
let expand (t : t) (coarse_pos : Placement.t) (out : Placement.t) =
  Array.iteri
    (fun c g ->
      out.Placement.x.(c) <- coarse_pos.Placement.x.(g);
      out.Placement.y.(c) <- coarse_pos.Placement.y.(g))
    t.cluster_of
