(** Plain-text design interchange, loosely Bookshelf-style (one file per
    design; see the grammar in the implementation header). *)

(** Raised by readers with the line number and a message. *)
exception Parse_error of int * string

val write_channel : out_channel -> Design.t -> unit
val write_file : string -> Design.t -> unit

(** Raises {!Parse_error} on malformed input: unknown or malformed records,
    NaN/non-finite numbers, negative dimensions or counts, out-of-range pin
    indices, and truncated files (declared cell/net/blockage counts not
    met, or an incomplete trailing net). *)
val read_channel : ?name:string -> in_channel -> Design.t

val read_file : string -> Design.t

(** [read_file] with the failure reified as a typed error
    ([Parse_error] for malformed content, [Invalid_input] for I/O). *)
val read_file_result :
  string -> (Design.t, Fbp_resilience.Fbp_error.t) result
