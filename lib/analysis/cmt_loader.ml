(* Typed-AST loading for the interprocedural lint pass.

   `dune build @check` leaves a .cmt (binary-annotated typedtree) next to
   every compiled module under _build/default/**/.objs/byte/.  This module
   scans a set of roots for those files, decodes them with the in-process
   compiler-libs, and canonicalizes dune's name mangling
   (Fbp_util__Pool -> Fbp_util.Pool, Dune__exe__Fbp_place -> Fbp_place)
   so the rest of the analysis can speak in source-level module paths. *)

type unit_info = {
  name : string list;  (** canonical module path, e.g. [["Fbp_util"; "Pool"]] *)
  source : string;  (** workspace-relative source path, e.g. "lib/util/pool.ml" *)
  structure : Typedtree.structure;
}

(* Split a compilation-unit name on dune's "__" separator.  Single
   underscores (ordinary OCaml names) are untouched. *)
let split_mangled s =
  let n = String.length s in
  let out = ref [] and start = ref 0 and i = ref 0 in
  while !i + 1 < n do
    if s.[!i] = '_' && s.[!i + 1] = '_' then begin
      out := String.sub s !start (!i - !start) :: !out;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  out := String.sub s !start (n - !start) :: !out;
  List.filter (fun x -> not (String.equal x "")) (List.rev !out)

(* Canonical module path of one (possibly mangled) name component. *)
let canon_component s =
  match split_mangled s with
  | "Dune" :: "exe" :: rest -> rest
  | parts -> parts

let canon_unit_name modname =
  match canon_component modname with [] -> None | parts -> Some parts

(* ------------------------------------------------------------- scanning *)

(* Unlike the source gatherer this walk must descend into dune's hidden
   .objs directories — that is where every .cmt lives. *)
let gather_cmts roots =
  let acc = ref [] in
  let rec visit path =
    match Sys.is_directory path with
    | true ->
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.iter (fun e -> visit (Filename.concat path e)) entries
    | false ->
      if String.ends_with ~suffix:".cmt" path then acc := path :: !acc
    | exception Sys_error _ -> ()
  in
  List.iter (fun root -> if Sys.file_exists root then visit root) roots;
  List.sort String.compare !acc

let load_one path =
  let infos = Cmt_format.read_cmt path in
  match infos.Cmt_format.cmt_annots with
  | Cmt_format.Implementation structure -> (
    match canon_unit_name infos.Cmt_format.cmt_modname with
    | None -> None
    | Some name ->
      let source =
        match infos.Cmt_format.cmt_sourcefile with
        | Some s -> s
        | None -> path
      in
      Some { name; source; structure })
  | _ -> None

let scan ~roots =
  let seen = Hashtbl.create 64 in
  let units = ref [] and errors = ref [] in
  List.iter
    (fun path ->
      match load_one path with
      | None -> ()
      | Some u ->
        let key = String.concat "." u.name in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          units := u :: !units
        end
      | exception exn ->
        (* version-skewed or truncated .cmt: report, keep going *)
        errors := (path, Printexc.to_string exn) :: !errors)
    (gather_cmts roots);
  let units =
    List.sort (fun a b -> List.compare String.compare a.name b.name) !units
  in
  (units, List.rev !errors)

(* Where to look for .cmt files given the source roots the user passed:
   from the workspace root the artifacts live under _build/default/<root>,
   while inside a dune rule (cwd is already the build context) the root
   itself contains the .objs directories. *)
let default_roots paths =
  List.map
    (fun p ->
      let built = Filename.concat (Filename.concat "_build" "default") p in
      if Sys.file_exists built then built else p)
    paths
