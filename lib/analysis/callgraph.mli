(** Deterministic cross-module call graph over effect summaries. *)

type t

val build : Effects.t list -> t

val find : t -> string -> Effects.t option
val ids : t -> string list  (** sorted *)

val succs : t -> string -> string list
(** Callees that exist in the graph, sorted and deduplicated. *)

val matches_prefix : string list -> string -> bool
(** Does the id equal or start with one of the prefixes? *)

val reach_from : t -> prefixes:string list -> (string, string list) Hashtbl.t
(** Multi-source BFS from every node matching a prefix.  Maps each
    reachable node to a deterministic entry-to-node chain. *)

val chain :
  t ->
  src:string ->
  stop:(Effects.t -> bool) ->
  skip:(string -> bool) ->
  string list option
(** Shortest deterministic chain from [src] to a node satisfying [stop],
    never passing through nodes matched by [skip]. *)

val render_chain : string list -> string
