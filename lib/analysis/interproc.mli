(** Interprocedural effect inference over [.cmt] typed ASTs (fbp-lint v2).

    Propagates per-function effect summaries to a fixpoint through the
    cross-module call graph and runs the semantic versions of the
    domain-safety, determinism and error-taxonomy rules.

    Soundness caveats (documented in DESIGN.md §8): calls through
    higher-order arguments and functor instantiations are approximated by
    the may-call edge set (every resolved identifier occurrence); custom
    mutable record types handed into closures are only tracked through
    the known stdlib container set; array/bytes/bigarray element stores
    are treated as the sanctioned chunk-disjoint pattern and never
    flagged. *)

type config = {
  cmt_roots : string list;  (** directories scanned for [.cmt] files *)
  det_entries : string list;
      (** dotted prefixes whose call cone must be deterministic *)
  cli_entries : string list;
      (** dotted prefixes whose escaping raises must be typed *)
  sanctioned_nondet : string list;
      (** source-path suffixes allowed to touch nondeterminism sources *)
  trusted : string list;
      (** dotted prefixes of the synchronization layer: shared-state
          propagation is cut at these units *)
  sanctioned_exns : string list;
      (** exception names (canonical or short) allowed to escape CLI
          entries *)
}

val default_config : cmt_roots:string list -> config

type result = {
  diagnostics : Diagnostic.t list;  (** sorted, deduplicated *)
  units_loaded : int;
  covered_sources : string list;
      (** sorted source paths that have typed coverage *)
  signatures : (string * string) list;
      (** function -> rendered effect signature, e.g.
          ["writes_shared(2) raises(Overflow)"] or ["pure"] *)
  load_errors : (string * string) list;
}

val analyze : config -> result

val analyze_units :
  config -> Cmt_loader.unit_info list -> (string * string) list -> result
(** Like {!analyze} over already-loaded units (used by tests). *)
