(** Per-function local effect summaries extracted from typed ASTs.

    One summary per toplevel binding; {!Interproc} propagates these to a
    fixpoint over the call graph.  Ref-class mutable state only — array/
    bytes/bigarray element stores are the sanctioned chunk-disjoint
    parallel-write pattern and are deliberately not tracked. *)

type site = {
  sfile : string;
  sline : int;
  scol : int;
  swhat : string;  (** human description, e.g. ["writes 'Pool.state'"] *)
}

val compare_site : site -> site -> int

(** Exception filter contributed by one enclosing handler. *)
type filter = Catch_all | Catch of string list

val compare_filter : filter -> filter -> int

type call = {
  callee : string;  (** canonical dotted path *)
  csite : site;
  catches : filter list;  (** handlers active around the call site *)
}

type closure_info = {
  k_site : site;
  k_refs : call list;
      (** functions referenced inside the parallel closure *)
  k_captured : site list;
      (** direct mutation/read of state captured from the enclosing fn *)
  k_global : site list;  (** direct mutation/read of module-level state *)
  k_mut_args : (string * string * site) list;
      (** (callee, captured var, site): mutable container hand-off *)
}

type region = {
  r_entry : string;  (** e.g. ["Fbp_util.Pool.run_chunks"] *)
  r_site : site;
  r_closures : closure_info list;
}

type t = {
  fn : string;  (** canonical dotted path of the binding *)
  src : string;
  fn_line : int;
  writes_global : site list;
  reads_global : site list;
  writes_args : site list;
  io : site list;
  nondet : site list;
  raises : (string * site) list;  (** exceptions escaping lexically *)
  handlers : filter list;
      (** every handler appearing anywhere in the node, lexical or not.
          Lambdas defer their body to call time, so a handler wrapping
          [Obs.span "x" (fun () -> risky ())] is not lexically above the
          risky call — yet in this codebase such a handler does catch at
          run time.  Raises propagating into the node through calls are
          filtered against this set; the cost is masking the rare raise
          that happens sequentially before its handler. *)
  calls : call list;
  regions : region list;
}

val compare_raise : string * site -> string * site -> int

val caught_by : filter list -> string -> bool
(** Is an exception with this canonical name stopped by the given handler
    stack? *)

val of_units :
  sanctioned:(string -> bool) -> Cmt_loader.unit_info list -> t list
(** Extract summaries for every toplevel binding of every unit.
    [sanctioned src] suppresses nondeterminism sites for blessed sources
    (the rng/timer wrappers). *)
