(* Lint driver: file gathering, parsing, suppression, baselining,
   rendering.  Pure except for reading source files — printing and exit
   codes belong to bin/fbp_lint. *)

type report = {
  files_scanned : int;
  diagnostics : Diagnostic.t list;
  baselined : int;
  errors : (string * string) list;
}

let parse ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  Ppxlib.Parse.implementation lexbuf

let lint_string ~path src =
  let st = parse ~path src in
  let findings = Rules.run ~file:path st in
  let sups, malformed = Suppress.scan ~file:path src in
  List.sort Diagnostic.compare
    (Suppress.apply ~file:path sups (findings @ malformed))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path =
  match read_file path with
  | exception Sys_error why -> Error why
  | src -> (
    match lint_string ~path src with
    | diags -> Ok diags
    | exception exn -> Error (Printexc.to_string exn))

(* ------------------------------------------------------------- gathering *)

let skip_dir name =
  String.equal name "_build" || String.equal name "_opam"
  || (String.length name > 0 && name.[0] = '.')

let gather_files roots =
  let acc = ref [] in
  let rec visit path =
    if Sys.is_directory path then begin
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          if not (skip_dir entry) then visit (Filename.concat path entry))
        entries
    end
    else if String.ends_with ~suffix:".ml" path then acc := path :: !acc
  in
  List.iter
    (fun root -> if Sys.file_exists root then visit root else acc := !acc)
    roots;
  List.sort String.compare !acc

(* -------------------------------------------------------------- baseline *)

let load_baseline = function
  | None -> []
  | Some path -> (
    match read_file path with
    | exception Sys_error _ -> []
    | content ->
      String.split_on_char '\n' content
      |> List.filter_map (fun line ->
             let line = String.trim line in
             if String.equal line "" || line.[0] = '#' then None else Some line)
    )

let baseline_of diags =
  let keys =
    List.sort_uniq String.compare (List.map Diagnostic.key diags)
  in
  String.concat "" (List.map (fun k -> k ^ "\n") keys)

(* ------------------------------------------------------------------- run *)

let run_paths ?baseline roots =
  let keys = load_baseline baseline in
  let in_baseline d = List.exists (String.equal (Diagnostic.key d)) keys in
  let files = gather_files roots in
  let diags = ref [] and errors = ref [] and hidden = ref 0 in
  List.iter
    (fun file ->
      match lint_file file with
      | Error why -> errors := (file, why) :: !errors
      | Ok ds ->
        List.iter
          (fun d -> if in_baseline d then incr hidden else diags := d :: !diags)
          ds)
    files;
  {
    files_scanned = List.length files;
    diagnostics = List.sort Diagnostic.compare !diags;
    baselined = !hidden;
    errors = List.rev !errors;
  }

let failed r =
  (match r.diagnostics with [] -> false | _ -> true)
  || match r.errors with [] -> false | _ -> true

(* ------------------------------------------------------------- rendering *)

let summary_line r =
  Printf.sprintf
    "fbp-lint: %d file%s scanned, %d finding%s%s%s"
    r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    (List.length r.diagnostics)
    (if List.length r.diagnostics = 1 then "" else "s")
    (if r.baselined > 0 then Printf.sprintf ", %d baselined" r.baselined
     else "")
    (match r.errors with
    | [] -> ""
    | es -> Printf.sprintf ", %d file error%s" (List.length es)
              (if List.length es = 1 then "" else "s"))

let render_text r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Diagnostic.to_text d);
      Buffer.add_char buf '\n')
    r.diagnostics;
  List.iter
    (fun (file, why) ->
      Buffer.add_string buf (Printf.sprintf "%s: error: %s\n" file why))
    r.errors;
  Buffer.add_string buf (summary_line r);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"findings\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Diagnostic.to_json d))
    r.diagnostics;
  Buffer.add_string buf "],\"errors\":[";
  List.iteri
    (fun i (file, why) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"file\":%s,\"error\":%s}"
           (Diagnostic.json_string file)
           (Diagnostic.json_string why)))
    r.errors;
  Buffer.add_string buf
    (Printf.sprintf "],\"files_scanned\":%d,\"baselined\":%d,\"clean\":%b}"
       r.files_scanned r.baselined
       (not (failed r)));
  Buffer.add_char buf '\n';
  Buffer.contents buf
