(* Lint driver: file gathering, parsing, suppression, baselining,
   rendering.  Pure except for reading source files — printing and exit
   codes belong to bin/fbp_lint. *)

type report = {
  files_scanned : int;
  diagnostics : Diagnostic.t list;
  baselined : int;
  errors : (string * string) list;
  interproc_units : int;  (* typed units loaded; 0 in syntactic-only runs *)
}

let parse ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  Ppxlib.Parse.implementation lexbuf

let lint_string ~path src =
  let st = parse ~path src in
  let findings = Rules.run ~file:path st in
  let sups, malformed = Suppress.scan ~file:path src in
  List.sort Diagnostic.compare
    (Suppress.apply ~file:path sups (findings @ malformed))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path =
  match read_file path with
  | exception Sys_error why -> Error why
  | src -> (
    match lint_string ~path src with
    | diags -> Ok diags
    | exception exn -> Error (Printexc.to_string exn))

(* ------------------------------------------------------------- gathering *)

let skip_dir name =
  String.equal name "_build" || String.equal name "_opam"
  || (String.length name > 0 && name.[0] = '.')

let gather_files roots =
  let acc = ref [] in
  let rec visit path =
    if Sys.is_directory path then begin
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          if not (skip_dir entry) then visit (Filename.concat path entry))
        entries
    end
    else if String.ends_with ~suffix:".ml" path then acc := path :: !acc
  in
  List.iter
    (fun root -> if Sys.file_exists root then visit root else acc := !acc)
    roots;
  List.sort String.compare !acc

(* -------------------------------------------------------------- baseline *)

let load_baseline = function
  | None -> []
  | Some path -> (
    match read_file path with
    | exception Sys_error _ -> []
    | content ->
      String.split_on_char '\n' content
      |> List.filter_map (fun line ->
             let line = String.trim line in
             if String.equal line "" || line.[0] = '#' then None else Some line)
    )

let baseline_of diags =
  let keys =
    List.sort_uniq String.compare (List.map Diagnostic.key diags)
  in
  String.concat "" (List.map (fun k -> k ^ "\n") keys)

(* ------------------------------------------------------------------- run *)

(* The interprocedural pass reports source paths as the compiler recorded
   them (workspace-relative); the gatherer sees them relative to the cwd.
   Suffix-tolerant equality bridges the two without a path-normalization
   dependency. *)
let same_source a b =
  String.equal a b
  || String.ends_with ~suffix:("/" ^ b) a
  || String.ends_with ~suffix:("/" ^ a) b

(* Rules the interprocedural pass owns the semantic version of.  In a
   syntactic-only run, suppressions naming them are never reported
   unused: only a run with both passes can declare them stale. *)
let semantic_rules = [ "domain-safety"; "determinism"; "error-taxonomy" ]

let run_paths ?baseline ?interproc roots =
  let keys = load_baseline baseline in
  let in_baseline d = List.exists (String.equal (Diagnostic.key d)) keys in
  let files = gather_files roots in
  let ip = Option.map Interproc.analyze interproc in
  let covered file =
    match ip with
    | None -> false
    | Some r ->
      List.exists (same_source file) r.Interproc.covered_sources
  in
  (* interprocedural findings for one gathered file, rekeyed to the
     gathered path so suppressions and baselines match *)
  let matched = Hashtbl.create 16 in
  let ip_diags_for file =
    match ip with
    | None -> []
    | Some r ->
      List.filter_map
        (fun (d : Diagnostic.t) ->
          if same_source d.Diagnostic.file file then begin
            Hashtbl.replace matched d.Diagnostic.file ();
            Some { d with Diagnostic.file }
          end
          else None)
        r.Interproc.diagnostics
  in
  let defer =
    match ip with
    | Some _ -> fun _ -> false
    | None ->
      fun rules ->
        List.exists
          (fun r -> List.exists (String.equal r) semantic_rules)
          rules
  in
  let diags = ref [] and errors = ref [] and hidden = ref 0 in
  List.iter
    (fun file ->
      let result =
        match read_file file with
        | exception Sys_error why -> Error why
        | src -> (
          try
            let st = parse ~path:file src in
            let findings =
              Rules.run ~closure_capture:(not (covered file)) ~file st
            in
            let sups, malformed = Suppress.scan ~file src in
            Ok
              (List.sort Diagnostic.compare
                 (Suppress.apply ~defer ~file sups
                    (findings @ malformed @ ip_diags_for file)))
          with exn -> Error (Printexc.to_string exn))
      in
      match result with
      | Error why -> errors := (file, why) :: !errors
      | Ok ds ->
        List.iter
          (fun d -> if in_baseline d then incr hidden else diags := d :: !diags)
          ds)
    files;
  (* interprocedural findings in sources outside the gathered roots (or
     whose path never matched) must not be dropped silently *)
  (match ip with
  | None -> ()
  | Some r ->
    List.iter
      (fun (d : Diagnostic.t) ->
        if not (Hashtbl.mem matched d.Diagnostic.file) then
          if in_baseline d then incr hidden else diags := d :: !diags)
      r.Interproc.diagnostics);
  (match ip with
  | None -> ()
  | Some r ->
    List.iter
      (fun (path, why) -> errors := (path, why) :: !errors)
      r.Interproc.load_errors);
  {
    files_scanned = List.length files;
    diagnostics = List.sort Diagnostic.compare !diags;
    baselined = !hidden;
    errors = List.rev !errors;
    interproc_units =
      (match ip with None -> 0 | Some r -> r.Interproc.units_loaded);
  }

let failed r =
  (match r.diagnostics with [] -> false | _ -> true)
  || match r.errors with [] -> false | _ -> true

(* -------------------------------------------------------------- ratchet *)

type ratchet = {
  kept : string list;  (* old keys still firing: the new baseline *)
  retired : string list;  (* old keys no longer firing: shrinkage *)
  rejected : string list;  (* current findings absent from the old file *)
}

(* The committed baseline may shrink but never grow: an --update-baseline
   run keeps only the intersection and refuses outright if any current
   finding is not already baselined. *)
let ratchet ~old_keys ~current =
  let current_keys =
    List.sort_uniq String.compare (List.map Diagnostic.key current)
  in
  let mem k l = List.exists (String.equal k) l in
  {
    kept = List.filter (fun k -> mem k current_keys) old_keys;
    retired = List.filter (fun k -> not (mem k current_keys)) old_keys;
    rejected = List.filter (fun k -> not (mem k old_keys)) current_keys;
  }

(* ------------------------------------------------------------- rendering *)

let summary_line r =
  Printf.sprintf "fbp-lint: %d file%s scanned, %d finding%s%s%s%s"
    r.files_scanned
    (if r.files_scanned = 1 then "" else "s")
    (List.length r.diagnostics)
    (if List.length r.diagnostics = 1 then "" else "s")
    (if r.interproc_units > 0 then
       Printf.sprintf " (%d typed units)" r.interproc_units
     else "")
    (if r.baselined > 0 then Printf.sprintf ", %d baselined" r.baselined
     else "")
    (match r.errors with
    | [] -> ""
    | es ->
      Printf.sprintf ", %d file error%s" (List.length es)
        (if List.length es = 1 then "" else "s"))

let render_text r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string buf (Diagnostic.to_text d);
      Buffer.add_char buf '\n')
    r.diagnostics;
  List.iter
    (fun (file, why) ->
      Buffer.add_string buf (Printf.sprintf "%s: error: %s\n" file why))
    r.errors;
  Buffer.add_string buf (summary_line r);
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"findings\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Diagnostic.to_json d))
    r.diagnostics;
  Buffer.add_string buf "],\"errors\":[";
  List.iteri
    (fun i (file, why) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"file\":%s,\"error\":%s}"
           (Diagnostic.json_string file)
           (Diagnostic.json_string why)))
    r.errors;
  Buffer.add_string buf
    (Printf.sprintf
       "],\"files_scanned\":%d,\"baselined\":%d,\"interproc_units\":%d,\"clean\":%b}"
       r.files_scanned r.baselined r.interproc_units
       (not (failed r)));
  Buffer.add_char buf '\n';
  Buffer.contents buf
