(** Lint diagnostics: span-accurate findings emitted by the {!Rules} pass.

    Each diagnostic names the rule that produced it, the source span it
    covers, a human message and (when the rule knows one) the monomorphic /
    safe replacement to reach for. *)

type t = {
  rule : string;  (** rule id, e.g. ["float-discipline"] *)
  file : string;  (** path as given to the linter (repo-relative) *)
  line : int;  (** 1-based start line *)
  col : int;  (** 0-based start column *)
  end_line : int;
  end_col : int;
  msg : string;
  hint : string option;  (** suggested replacement, if any *)
}

val make :
  rule:string -> file:string -> loc:Ppxlib.Location.t -> ?hint:string ->
  string -> t

(** Construct from raw line/column (used by passes that do not carry a
    ppxlib location, e.g. the interprocedural analysis over [.cmt]s). *)
val make_pos :
  rule:string -> file:string -> line:int -> col:int -> ?hint:string ->
  string -> t

(** [file:line:col-endcol: [rule] msg (hint: ...)] — one line per finding. *)
val to_text : t -> string

(** JSON object with rule/file/span/msg/hint fields (stable key order). *)
val to_json : t -> string

(** Baseline key: [file:line:rule]. *)
val key : t -> string

(** Escape and quote a string as a JSON literal (shared by report
    rendering). *)
val json_string : string -> string

(** Sort by file, then start position, then rule. *)
val compare : t -> t -> int
