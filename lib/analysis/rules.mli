(** The fbp-lint rule set: compiler-AST checks over one parsed module.

    Rules (see DESIGN.md "Static analysis & sanitizers" for the catalogue
    and rationale):

    - [domain-safety] — mutable state ([ref], [Hashtbl], mutable fields)
      captured by closures passed to [Fbp_util.Parallel] entry points, and
      module-level mutable bindings in domain-parallel modules.  Use
      [Atomic], a [Mutex], or restructure so the closure only sees
      immutable snapshots.
    - [float-discipline] — polymorphic [compare] / [List.assoc] family /
      [List.mem] / [=] against float-bearing operands ([nan] comparisons
      included).  Use the monomorphic [Float.compare] / [Int.compare] /
      keyed helpers.
    - [determinism] — [Random.*], [Sys.time], [Unix.gettimeofday] outside
      [lib/util/rng.ml] and [lib/util/timer.ml]; the run-record regression
      gate needs bit-reproducible runs.
    - [error-taxonomy] — bare [failwith] / [exit] / anonymous [invalid_arg]
      in [lib/] outside [Fbp_resilience]; pipeline failures go through the
      typed {!Fbp_resilience.Fbp_error} taxonomy, preconditions must name
      their function ("Module.fn: ...").
    - [io-discipline] — [Printf.printf] / [print_endline] and friends in
      [lib/]; output belongs to the CLI, bench, or [Fbp_obs].
    - [obs-discipline] — raw [Obs.span_begin] / [Obs.span_end] outside
      [lib/obs]; an exception between the pair unbalances the trace, so
      callers use the scoped [Obs.span] (or [Obs.record_interval] for
      already-measured intervals). *)

(** [(id, summary)] for every rule, including the [lint-directive]
    meta-rule for malformed/unused suppressions. *)
val catalogue : (string * string) list

(** Run every rule over one parsed implementation.  [file] is the
    repo-relative path; it decides which scopes ([lib/], [bin/], [bench/])
    apply.  [closure_capture] (default true) controls the syntactic
    closure-capture sub-check of [domain-safety]; the driver turns it off
    for files covered by the interprocedural pass, which supersedes it
    with a transitive version (module-level-mutable detection always
    runs). *)
val run :
  ?closure_capture:bool -> file:string -> Ppxlib.structure ->
  Diagnostic.t list
