(** Inline lint suppressions.

    A finding is silenced by a comment on the same line or the line above:

    {[ (* fbp-lint: allow float-discipline — total order incl. nan wanted *) ]}

    Several rules may be listed, comma-separated.  The reason (after the
    dash/colon separator) is mandatory: a suppression without one, or a
    comment that name-drops [fbp-lint:] without matching the grammar, is
    itself reported under the [lint-directive] rule — as is a suppression
    that no finding ever used (dead suppressions rot). *)

type t = {
  line : int;  (** line the comment sits on *)
  rules : string list;
  reason : string;
  mutable used : bool;
}

(** Scan raw source text; also returns diagnostics for malformed
    directives. *)
val scan : file:string -> string -> t list * Diagnostic.t list

(** [apply ~file sups diags] drops suppressed findings (same line or the
    line directly below the comment), marks the suppressions used, and
    appends a [lint-directive] finding per unused suppression.  [defer]
    (default: never) silences the unused report for suppressions whose
    rule list it accepts — the driver uses this in syntactic-only runs
    for the rules the interprocedural pass may yet match, so a
    suppression is only declared stale once both passes have run. *)
val apply :
  ?defer:(string list -> bool) -> file:string -> t list ->
  Diagnostic.t list -> Diagnostic.t list
