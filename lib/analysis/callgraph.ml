(* Deterministic cross-module call graph over effect summaries.

   Nodes are canonical dotted function paths; edges are the may-call
   references Effects collected.  Everything is kept sorted so BFS
   orders — and therefore diagnostic chains — are byte-stable. *)

type t = {
  tbl : (string, Effects.t) Hashtbl.t;
  ids : string list;  (* sorted *)
}

let build summaries =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (s : Effects.t) ->
      if not (Hashtbl.mem tbl s.Effects.fn) then Hashtbl.replace tbl s.fn s)
    summaries;
  let ids =
    List.sort_uniq String.compare
      (List.map (fun (s : Effects.t) -> s.Effects.fn) summaries)
  in
  { tbl; ids }

let find g id = Hashtbl.find_opt g.tbl id
let ids g = g.ids

(* Successors that exist in the graph, sorted and deduplicated. *)
let succs g id =
  match find g id with
  | None -> []
  | Some s ->
    List.sort_uniq String.compare
      (List.filter_map
         (fun (c : Effects.call) ->
           if Hashtbl.mem g.tbl c.Effects.callee then Some c.callee else None)
         s.Effects.calls)

let matches_prefix prefixes id =
  List.exists
    (fun p -> String.equal id p || String.starts_with ~prefix:p id)
    prefixes

(* Multi-source BFS from every node matching one of [prefixes].  Returns
   a map node -> path (entry first, node last); entries map to [entry].
   Sources are visited in sorted order, so the chain each node gets is
   deterministic (first discovered wins). *)
let reach_from g ~prefixes =
  let paths = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun id ->
      if matches_prefix prefixes id && not (Hashtbl.mem paths id) then begin
        Hashtbl.replace paths id [ id ];
        Queue.add id queue
      end)
    g.ids;
  while not (Queue.is_empty queue) do
    let id = Queue.take queue in
    let path = Hashtbl.find paths id in
    List.iter
      (fun nxt ->
        if not (Hashtbl.mem paths nxt) then begin
          Hashtbl.replace paths nxt (path @ [ nxt ]);
          Queue.add nxt queue
        end)
      (succs g id)
  done;
  paths

(* Shortest deterministic chain from [src] to any node satisfying [stop],
   skipping nodes matched by [skip].  Returns the node path including both
   endpoints. *)
let chain g ~src ~stop ~skip =
  if not (Hashtbl.mem g.tbl src) then None
  else if skip src then None
  else begin
    let paths = Hashtbl.create 16 in
    let queue = Queue.create () in
    Hashtbl.replace paths src [ src ];
    Queue.add src queue;
    let found = ref None in
    (try
       while not (Queue.is_empty queue) do
         let id = Queue.take queue in
         let path = Hashtbl.find paths id in
         (match find g id with
         | Some s when stop s ->
           found := Some (List.rev path);
           raise Exit
         | _ -> ());
         List.iter
           (fun nxt ->
             if (not (Hashtbl.mem paths nxt)) && not (skip nxt) then begin
               Hashtbl.replace paths nxt (nxt :: path);
               Queue.add nxt queue
             end)
           (succs g id)
       done
     with Exit -> ());
    !found
  end

let render_chain path = String.concat " -> " path
