(** Typed-AST ([.cmt]) loading for the interprocedural lint pass. *)

type unit_info = {
  name : string list;  (** canonical module path, e.g. [["Fbp_util"; "Pool"]] *)
  source : string;  (** workspace-relative source path, e.g. "lib/util/pool.ml" *)
  structure : Typedtree.structure;
}

val canon_component : string -> string list
(** Canonical module path of one possibly dune-mangled name component:
    ["Fbp_util__Pool"] becomes [["Fbp_util"; "Pool"]] and the
    ["Dune__exe__"] executable-wrapper prefix is stripped. *)

val scan : roots:string list -> unit_info list * (string * string) list
(** Load every implementation [.cmt] found under the given roots
    (descending into dune's hidden [.objs] directories).  Returns units
    sorted by canonical name, deduplicated on first occurrence, plus a
    list of [(path, error)] pairs for files that failed to decode. *)

val default_roots : string list -> string list
(** Map source roots to the corresponding build-context directories when
    invoked from the workspace root ([lib] -> [_build/default/lib]). *)
