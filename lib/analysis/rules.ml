(* The fbp-lint rules, implemented as passes over the ppxlib parsetree.

   Everything here is *syntactic*: we lint the untyped AST, so the rules
   favour precision on the idioms this codebase actually uses (see the
   interface for the catalogue).  False negatives are acceptable; false
   positives are not — anything legitimately flagged but intended gets an
   inline suppression with a reason. *)

open Ppxlib

let catalogue =
  [
    ( "domain-safety",
      "mutable state captured by closures passed to Fbp_util.Parallel; use \
       Atomic/Mutex or pass immutable snapshots" );
    ( "float-discipline",
      "polymorphic compare/equality on float-bearing values; use monomorphic \
       Float.compare / Int.compare / keyed helpers" );
    ( "determinism",
      "wall-clock or stdlib randomness outside lib/util/{rng,timer}.ml; runs \
       must be bit-reproducible" );
    ( "error-taxonomy",
      "bare failwith/exit/anonymous invalid_arg in lib/; failures go through \
       Fbp_resilience.Fbp_error" );
    ( "io-discipline",
      "stdout printing in lib/; output belongs to the CLI, bench, or Fbp_obs" );
    ( "obs-discipline",
      "raw Obs.span_begin/span_end outside lib/obs; use Obs.span (scoped, \
       exception-safe) or Obs.record_interval" );
    ("lint-directive", "malformed or unused suppression comment");
  ]

(* ------------------------------------------------------------ path scope *)

type scope = { file : string; in_lib : bool }

let scope_of_file file =
  let parts = String.split_on_char '/' file in
  let has name = List.exists (String.equal name) parts in
  { file; in_lib = has "lib" }

let path_has_dir sc dir =
  List.exists (String.equal dir) (String.split_on_char '/' sc.file)

(* ---------------------------------------------------------------- helpers *)

let rec lid_parts (l : Longident.t) =
  match l with
  | Lident s -> [ s ]
  | Ldot (l, s) -> lid_parts l @ [ s ]
  | Lapply (a, _) -> lid_parts a

let path_is parts spec = List.equal String.equal parts spec

(* Qualified name modulo an optional [Stdlib.] prefix. *)
let stdlib_path parts spec =
  path_is parts spec || path_is parts ("Stdlib" :: spec)

let one_of members s = List.exists (String.equal s) members

(* Collect every string constant in an expression subtree (used to decide
   whether an [invalid_arg] message names its function). *)
let string_literals e =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_constant (Pconst_string (s, _, _)) -> acc := s :: !acc
        | _ -> ());
        super#expression e
    end
  in
  it#expression e;
  !acc

(* "Module.fn: ..." — a precondition message that names its site. *)
let names_a_function s =
  match String.index_opt s '.' with
  | None | Some 0 -> false
  | Some i ->
    let ok = ref (s.[0] >= 'A' && s.[0] <= 'Z') in
    for j = 1 to i - 1 do
      match s.[j] with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> ()
      | _ -> ok := false
    done;
    !ok

(* Variables bound by a pattern. *)
let pattern_vars p =
  let acc = ref [] in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! pattern p =
        (match p.ppat_desc with
        | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
        | _ -> ());
        super#pattern p
    end
  in
  it#pattern p;
  !acc

module StrSet = Set.Make (String)

let add_pattern_vars set p =
  List.fold_left (fun acc v -> StrSet.add v acc) set (pattern_vars p)

(* Apply [f] once to every direct subexpression of [e] (one level of
   expression nesting; intervening patterns/bindings are crossed). *)
let iter_child_exprs f e =
  let root = e in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e' = if e' == root then super#expression e' else f e'
    end
  in
  it#expression root

(* Is [e] syntactically float-valued?  Conservative: float constants, the
   float special values, float arithmetic and conversions. *)
let floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> (
    match lid_parts txt with
    | [ ( "nan" | "infinity" | "neg_infinity" | "epsilon_float" | "max_float"
        | "min_float" ) ] ->
      true
    | [ "Float";
        ( "nan" | "infinity" | "neg_infinity" | "epsilon" | "pi" | "max_float"
        | "min_float" ) ] ->
      true
    | _ -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match lid_parts txt with
    | [ ( "+." | "-." | "*." | "/." | "**" | "~-." | "float_of_int"
        | "float_of_string" | "sqrt" | "abs_float" ) ] ->
      true
    | "Float" :: _ -> true
    | _ -> false)
  | _ -> false

let is_nan_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    match lid_parts txt with
    | [ "nan" ] | [ "Float"; "nan" ] -> true
    | _ -> false)
  | _ -> false

(* Diagnostic sink threaded through every rule. *)
type adder =
  rule:string -> loc:Location.t -> ?hint:string -> string -> unit

(* ------------------------------------------------- per-expression rules *)

let assoc_family =
  [ "assoc"; "assoc_opt"; "mem_assoc"; "remove_assoc"; "mem"; "memq" ]

let stdout_printers =
  [ "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_int"; "print_float" ]

(* Rules that look at a single identifier occurrence. *)
let check_ident ~sc ~(add : adder) ~loc parts =
  (* float-discipline: bare polymorphic structural comparison *)
  if stdlib_path parts [ "compare" ] then
    add ~rule:"float-discipline" ~loc
      ~hint:
        "use Int.compare / Float.compare / String.compare or a keyed \
         comparator; polymorphic compare orders nan inconsistently and \
         traverses whole structures"
      "bare polymorphic 'compare'"
  else begin
    (match parts with
    | [ "List"; fn ] when one_of assoc_family fn ->
      add ~rule:"float-discipline" ~loc
        ~hint:
          "use a monomorphic helper (List.exists with an explicit equal, or \
           an int-keyed array/Hashtbl); these use polymorphic equality"
        (Printf.sprintf "polymorphic List.%s" fn)
    | [ "Array"; ("mem" | "memq") ] ->
      add ~rule:"float-discipline" ~loc
        ~hint:"use Array.exists with an explicit equality"
        "polymorphic Array.mem"
    | _ -> ());
    (* determinism *)
    let det_allowed =
      String.ends_with ~suffix:"lib/util/rng.ml" sc.file
      || String.equal sc.file "lib/util/rng.ml"
      || String.ends_with ~suffix:"lib/util/timer.ml" sc.file
      || String.equal sc.file "lib/util/timer.ml"
    in
    if not det_allowed then begin
      match parts with
      | "Random" :: _ :: _ | "Stdlib" :: "Random" :: _ ->
        add ~rule:"determinism" ~loc
          ~hint:"thread a seeded Fbp_util.Rng.t instead"
          "stdlib Random: global, unseeded state breaks run reproducibility"
      | [ "Sys"; "time" ] | [ "Stdlib"; "Sys"; "time" ] ->
        add ~rule:"determinism" ~loc ~hint:"use Fbp_util.Timer.now"
          "Sys.time outside lib/util/timer.ml"
      | [ "Unix"; ("gettimeofday" | "time") ]
      | [ "Stdlib"; "Unix"; ("gettimeofday" | "time") ] ->
        add ~rule:"determinism" ~loc ~hint:"use Fbp_util.Timer.now"
          "Unix wall clock outside lib/util/timer.ml"
      | _ -> ()
    end;
    (* io-discipline: stdout printing from library code *)
    if sc.in_lib then begin
      match parts with
      | [ p ] when one_of stdout_printers p ->
        add ~rule:"io-discipline" ~loc
          ~hint:"return a string (render) and let the CLI/bench print it"
          (Printf.sprintf "'%s' writes to stdout from lib/" p)
      | [ ("Printf" | "Format"); "printf" ] ->
        add ~rule:"io-discipline" ~loc
          ~hint:"use sprintf/eprintf, or route through Fbp_obs"
          "printf writes to stdout from lib/"
      | _ -> ()
    end;
    (* error-taxonomy: bare failwith in lib/ outside the taxonomy itself *)
    if sc.in_lib && not (path_has_dir sc "resilience") then
      if stdlib_path parts [ "failwith" ] then
        add ~rule:"error-taxonomy" ~loc
          ~hint:
            "raise a typed error: Fbp_resilience.Fbp_error.raise_error \
             (Invalid_input ...) / (Internal ...)"
          "bare failwith in lib/";
    (* obs-discipline: raw begin/end span markers outside lib/obs — they
       unbalance the trace on any exception path; Obs.span is scoped *)
    (match List.rev parts with
    | (("span_begin" | "span_end") as fn) :: "Obs" :: _
      when not (path_has_dir sc "obs") ->
      add ~rule:"obs-discipline" ~loc
        ~hint:
          "use Obs.span (scoped and exception-safe) or, for measured \
           intervals, Obs.record_interval"
        (Printf.sprintf "raw Obs.%s outside lib/obs" fn)
    | _ -> ())
  end

(* Rules that need the application's arguments. *)
let check_apply ~sc ~(add : adder) ~loc parts args =
  let nolabel =
    List.filter_map
      (fun (l, a) -> match l with Nolabel -> Some a | _ -> None)
      args
  in
  (match parts with
  | [ ("=" | "<>" | "==" | "!=") ] -> (
    match nolabel with
    | [ a; b ] ->
      if is_nan_ident a || is_nan_ident b then
        add ~rule:"float-discipline" ~loc ~hint:"use Float.is_nan"
          "comparison against nan is always false"
      else if floatish a || floatish b then
        add ~rule:"float-discipline" ~loc
          ~hint:"use Float.equal / Float.compare (nan-aware, monomorphic)"
          "polymorphic equality on float operands"
    | _ -> ())
  | _ -> ());
  if sc.in_lib && not (path_has_dir sc "resilience") then begin
    match parts with
    | [ "exit" ] | [ "Stdlib"; "exit" ] ->
      add ~rule:"error-taxonomy" ~loc
        ~hint:
          "return a typed Fbp_error and let bin/fbp_place map it to an exit \
           code"
        "calling exit from lib/"
    | [ "invalid_arg" ] | [ "Stdlib"; "invalid_arg" ] ->
      let named =
        List.exists
          (fun a -> List.exists names_a_function (string_literals a))
          nolabel
      in
      if not named then
        add ~rule:"error-taxonomy" ~loc
          ~hint:"name the precondition site: invalid_arg \"Module.fn: ...\""
          "invalid_arg without a \"Module.fn: ...\" message"
    | _ -> ()
  end

let expression_rules ~sc ~(add : adder) st =
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } -> check_ident ~sc ~add ~loc (lid_parts txt)
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
          check_apply ~sc ~add ~loc:e.pexp_loc (lid_parts txt) args
        | _ -> ());
        super#expression e
    end
  in
  it#structure st

(* --------------------------------------------------- domain-safety rule *)

(* Names of Fbp_util.Parallel entry points that take a work closure. *)
let parallel_entries = [ "map_array"; "iter_array"; "init" ]

(* Fbp_util.Pool entry points whose closures run on worker domains.  Every
   positional argument is a closure there ([fork2] takes two, [reduce]'s
   combiner also runs on workers; [set_profile_hook]'s callback fires on
   every worker's scheduling transitions). *)
let pool_entries =
  [ "run_chunks"; "fork2"; "reduce"; "lease_run"; "set_profile_hook" ]

let is_parallel_entry parts =
  match List.rev parts with
  | fn :: "Parallel" :: _ -> one_of parallel_entries fn
  | fn :: "Pool" :: _ -> one_of pool_entries fn
  | _ -> false

(* Does the module touch domain-parallel machinery at all?  Scopes the
   module-level mutable-state check. *)
let uses_parallelism st =
  let found = ref false in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_ident { txt; _ } ->
          let parts = lid_parts txt in
          if is_parallel_entry parts then found := true;
          (match parts with
          | [ "Domain"; ("spawn" | "join") ] -> found := true
          | _ -> ())
        | _ -> ());
        super#expression e
    end
  in
  it#structure st;
  !found

(* Module-level mutable bindings (ref cells, Hashtbls) in a module that
   spawns domains: racy by construction. *)
let module_level_mutables ~(add : adder) st =
  let check_binding vb =
    match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
    | ( Ppat_var { txt = name; _ },
        Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ) ->
      let parts = lid_parts txt in
      if stdlib_path parts [ "ref" ] then
        add ~rule:"domain-safety" ~loc:vb.pvb_loc
          ~hint:"use Atomic.t (Atomic.make/get/set) or guard with a Mutex"
          (Printf.sprintf
             "module-level ref '%s' in a module using domain parallelism" name)
      else if stdlib_path parts [ "Hashtbl"; "create" ] then
        add ~rule:"domain-safety" ~loc:vb.pvb_loc
          ~hint:"use a Mutex-guarded table or per-domain tables"
          (Printf.sprintf
             "module-level Hashtbl '%s' in a module using domain parallelism"
             name)
    | _ -> ()
  in
  let rec items its = List.iter item its
  and item si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter check_binding vbs
    | Pstr_module mb -> module_expr mb.pmb_expr
    | Pstr_recmodule mbs -> List.iter (fun mb -> module_expr mb.pmb_expr) mbs
    | _ -> ()
  and module_expr me =
    match me.pmod_desc with
    | Pmod_structure st -> items st
    | Pmod_functor (_, me) -> module_expr me
    | Pmod_constraint (me, _) -> module_expr me
    | _ -> ()
  in
  items st

(* Every [let name = expr] in the file (any nesting), for resolving a
   function passed by name — or partially applied — to a Parallel entry
   point.  Shadowing keeps the last binding, which is good enough for a
   lint. *)
let binding_env st =
  let env : (string, expression) Hashtbl.t = Hashtbl.create 64 in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        (match vb.pvb_pat.ppat_desc with
        | Ppat_var { txt; _ } -> Hashtbl.replace env txt vb.pvb_expr
        | _ -> ());
        super#value_binding vb
    end
  in
  it#structure st;
  env

let hashtbl_mutators =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]

let hashtbl_readers =
  [ "find"; "find_opt"; "find_all"; "mem"; "iter"; "fold"; "length"; "copy";
    "to_seq"; "to_seq_keys"; "to_seq_values" ]

(* Walk the body of a closure that runs on worker domains, tracking locally
   bound names; report reads/writes of mutable state that is *free* in the
   closure (i.e. shared across domains). *)
let check_closure_body ~report bound0 body =
  let free_name bound (l : Longident.t) =
    match l with
    | Lident x -> if StrSet.mem x bound then None else Some x
    | l -> Some (String.concat "." (lid_parts l))
  in
  let rec walk bound e =
    let sub = walk bound in
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, args) ->
      let parts = lid_parts txt in
      let first_ident () =
        match args with
        | (_, { pexp_desc = Pexp_ident { txt = v; _ }; _ }) :: _ ->
          free_name bound v
        | _ -> None
      in
      (match parts with
      | [ "!" ] -> (
        match first_ident () with
        | Some x ->
          report loc
            (Printf.sprintf
               "parallel closure dereferences ref '%s' from the enclosing \
                scope"
               x)
        | None -> ())
      | [ ":=" ] -> (
        match first_ident () with
        | Some x ->
          report loc
            (Printf.sprintf
               "parallel closure assigns ref '%s' from the enclosing scope" x)
        | None -> ())
      | [ ("incr" | "decr") ] -> (
        match first_ident () with
        | Some x ->
          report loc
            (Printf.sprintf
               "parallel closure mutates counter ref '%s' from the enclosing \
                scope"
               x)
        | None -> ())
      | [ "Hashtbl"; op ] when one_of hashtbl_mutators op -> (
        match first_ident () with
        | Some x ->
          report loc
            (Printf.sprintf
               "parallel closure mutates shared Hashtbl '%s' (Hashtbl.%s)" x op)
        | None -> ())
      | [ "Hashtbl"; op ] when one_of hashtbl_readers op -> (
        match first_ident () with
        | Some x ->
          report loc
            (Printf.sprintf
               "parallel closure reads shared Hashtbl '%s' (Hashtbl.%s); \
                unsynchronized reads race with any resize"
               x op)
        | None -> ())
      | _ -> ());
      List.iter (fun (_, a) -> sub a) args
    | Pexp_setfield (({ pexp_desc = Pexp_ident { txt = v; _ }; _ } as b), _, rhs)
      ->
      (match free_name bound v with
      | Some x ->
        report e.pexp_loc
          (Printf.sprintf
             "parallel closure writes a mutable field of '%s' from the \
              enclosing scope"
             x)
      | None -> ());
      sub b;
      sub rhs
    | Pexp_let (rf, vbs, body) ->
      let bound' =
        List.fold_left (fun acc vb -> add_pattern_vars acc vb.pvb_pat) bound vbs
      in
      let inner = match rf with Recursive -> bound' | Nonrecursive -> bound in
      List.iter (fun vb -> walk inner vb.pvb_expr) vbs;
      walk bound' body
    | Pexp_function (params, _, fbody) ->
      let bound' =
        List.fold_left
          (fun acc p ->
            match p.pparam_desc with
            | Pparam_val (_, _, pat) -> add_pattern_vars acc pat
            | Pparam_newtype _ -> acc)
          bound params
      in
      (match fbody with
      | Pfunction_body e -> walk bound' e
      | Pfunction_cases (cases, _, _) ->
        List.iter
          (fun c ->
            let b = add_pattern_vars bound' c.pc_lhs in
            Option.iter (walk b) c.pc_guard;
            walk b c.pc_rhs)
          cases)
    | Pexp_match (e0, cases) | Pexp_try (e0, cases) ->
      sub e0;
      List.iter
        (fun c ->
          let b = add_pattern_vars bound c.pc_lhs in
          Option.iter (walk b) c.pc_guard;
          walk b c.pc_rhs)
        cases
    | Pexp_for (pat, lo, hi, _, body) ->
      sub lo;
      sub hi;
      walk (add_pattern_vars bound pat) body
    | _ ->
      (* No new binders at this node: recurse one level down.  Binder
         constructs not handled above (letop, objects, local modules) do
         not occur in this codebase's parallel closures. *)
      iter_child_exprs sub e
  in
  walk bound0 body

(* Analyze the work argument of a Parallel entry point.  The argument may
   be a literal [fun], a named function, or a partial application of one;
   for the latter two we resolve the name through the whole-file binding
   environment.  All of the function's own parameters count as bound —
   partially-applied prefix arguments come from the enclosing scope, but
   what matters is how the *body* touches what it captures. *)
let rec check_work_arg ~report env e =
  match e.pexp_desc with
  | Pexp_function (params, _, fbody) ->
    let bound =
      List.fold_left
        (fun acc p ->
          match p.pparam_desc with
          | Pparam_val (_, _, pat) -> add_pattern_vars acc pat
          | Pparam_newtype _ -> acc)
        StrSet.empty params
    in
    (match fbody with
    | Pfunction_body body -> check_closure_body ~report bound body
    | Pfunction_cases (cases, _, _) ->
      List.iter
        (fun c ->
          let b = add_pattern_vars bound c.pc_lhs in
          Option.iter (check_closure_body ~report b) c.pc_guard;
          check_closure_body ~report b c.pc_rhs)
        cases)
  | Pexp_ident { txt = Lident name; _ } -> (
    match Hashtbl.find_opt env name with
    | Some ({ pexp_desc = Pexp_function _; _ } as f) ->
      check_work_arg ~report env f
    | _ -> ())
  | Pexp_apply (head, _) -> check_work_arg ~report env head
  | _ -> ()

let domain_safety ~closure_capture ~(add : adder) st =
  if uses_parallelism st then module_level_mutables ~add st;
  if closure_capture then begin
  let env = binding_env st in
  let it =
    object
      inherit Ast_traverse.iter as super

      method! expression e =
        (match e.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
          when is_parallel_entry (lid_parts txt) ->
          let entry =
            match List.rev (lid_parts txt) with f :: _ -> f | [] -> ""
          in
          let nolabel =
            List.filter_map
              (fun (l, a) -> match l with Nolabel -> Some a | _ -> None)
              args
          in
          let works =
            match (entry, nolabel) with
            | "init", _ :: f :: _ -> [ f ]
            | ( ( "run_chunks" | "fork2" | "reduce" | "lease_run"
                | "set_profile_hook" ),
                fs ) ->
              fs
            | _, f :: _ -> [ f ]
            | _ -> []
          in
          let report loc msg =
            add ~rule:"domain-safety" ~loc
              ~hint:
                "snapshot the data into immutable structures before the \
                 parallel region, or protect it with Atomic/Mutex"
              msg
          in
          List.iter (check_work_arg ~report env) works
        | _ -> ());
        super#expression e
    end
  in
  it#structure st
  end

(* ------------------------------------------------------------------ run *)

let run ?(closure_capture = true) ~file st =
  let sc = scope_of_file file in
  let diags = ref [] in
  let add ~rule ~loc ?hint msg =
    diags := Diagnostic.make ~rule ~file ~loc ?hint msg :: !diags
  in
  expression_rules ~sc ~add st;
  domain_safety ~closure_capture ~add st;
  List.sort_uniq Diagnostic.compare !diags
