(* Inline suppression comments, parsed from raw source text (comments never
   reach the parsetree, so this pass works on lines).  See the interface for
   the grammar.

   Note the marker string is assembled from two halves everywhere in this
   module: these sources are linted too, and a literal marker inside a
   string constant would otherwise read as a (malformed) directive. *)

type t = {
  line : int;
  rules : string list;
  reason : string;
  mutable used : bool;
}

let marker = "fbp-" ^ "lint:"
let directive_rule = "lint-directive"

let is_rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-'

(* Parse the text following the marker on one line.  Returns [Ok (rules,
   reason)] or [Error what]. *)
let parse_directive rest =
  let n = String.length rest in
  let pos = ref 0 in
  let skip_spaces () =
    while !pos < n && (rest.[!pos] = ' ' || rest.[!pos] = '\t') do incr pos done
  in
  let word () =
    let start = !pos in
    while !pos < n && is_rule_char rest.[!pos] do incr pos done;
    String.sub rest start (!pos - start)
  in
  skip_spaces ();
  if word () <> "allow" then Error "expected 'allow' after the marker"
  else begin
    let rules = ref [] in
    let rec rule_list () =
      skip_spaces ();
      let r = word () in
      if r = "" then Error "empty rule name"
      else begin
        rules := r :: !rules;
        skip_spaces ();
        if !pos < n && rest.[!pos] = ',' then begin
          incr pos;
          rule_list ()
        end
        else Ok ()
      end
    in
    match rule_list () with
    | Error e -> Error e
    | Ok () ->
      skip_spaces ();
      (* separator: an em-dash, one or more '-', or ':' *)
      let sep =
        if !pos + 2 < n && String.sub rest !pos 3 = "\xe2\x80\x94" then begin
          pos := !pos + 3;
          true
        end
        else if !pos < n && rest.[!pos] = '-' then begin
          while !pos < n && rest.[!pos] = '-' do incr pos done;
          true
        end
        else if !pos < n && rest.[!pos] = ':' then begin
          incr pos;
          true
        end
        else false
      in
      if not sep then Error "missing separator before the reason"
      else begin
        let tail = String.sub rest !pos (n - !pos) in
        let reason =
          match String.index_opt tail '*' with
          | Some i when i + 1 < String.length tail && tail.[i + 1] = ')' ->
            String.sub tail 0 i
          | _ -> tail
        in
        let reason = String.trim reason in
        if reason = "" then Error "missing reason"
        else Ok (List.rev !rules, reason)
      end
  end

let find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some i
    else go (i + 1)
  in
  go 0

let scan ~file src =
  let sups = ref [] and diags = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      match find_sub line marker with
      | None -> ()
      (* Only a marker inside a comment counts: a "(*" must open on the
         same line before it.  This keeps the marker usable in ordinary
         string literals (the CLI's own summary line says fbp-lint). *)
      | Some at
        when (match find_sub (String.sub line 0 at) "(*" with
             | Some _ -> false
             | None -> true) ->
        ()
      | Some at ->
        let rest = String.sub line (at + String.length marker)
            (String.length line - at - String.length marker)
        in
        (match parse_directive rest with
         | Ok (rules, reason) ->
           sups := { line = lnum; rules; reason; used = false } :: !sups
         | Error what ->
           let loc = Ppxlib.Location.none in
           let d =
             { (Diagnostic.make ~rule:directive_rule ~file ~loc
                  (Printf.sprintf "malformed suppression directive: %s" what))
               with Diagnostic.line = lnum; end_line = lnum; col = at;
                    end_col = at }
           in
           diags := d :: !diags))
    lines;
  (List.rev !sups, List.rev !diags)

let apply ?(defer = fun _ -> false) ~file sups diags =
  let survives (d : Diagnostic.t) =
    String.equal d.Diagnostic.rule directive_rule
    ||
    not
      (List.exists
         (fun s ->
           (s.line = d.Diagnostic.line || s.line = d.Diagnostic.line - 1)
           && List.exists (String.equal d.Diagnostic.rule) s.rules
           && begin
                s.used <- true;
                true
              end)
         sups)
  in
  let kept = List.filter survives diags in
  let unused =
    List.filter_map
      (fun s ->
        if s.used || defer s.rules then None
        else
          let loc = Ppxlib.Location.none in
          Some
            { (Diagnostic.make ~rule:directive_rule ~file ~loc
                 (Printf.sprintf "unused suppression for [%s]: no finding on this or the next line"
                    (String.concat ", " s.rules)))
              with Diagnostic.line = s.line; end_line = s.line; col = 0;
                   end_col = 0 }
      )
      sups
  in
  kept @ unused
