(* Per-function effect summaries extracted from typed ASTs.

   For every toplevel binding of every loaded unit we compute a *local*
   summary: which module-level mutable state it writes or reads (ref-class
   only — chunk-disjoint array/bytes/bigarray stores are the sanctioned
   parallel-write pattern and are deliberately out of scope), whether it
   performs io or consults a nondeterminism source, which exceptions
   escape it lexically (try/match-with-exception handlers are applied at
   record time), which functions it references (the may-call edge set used
   by the fixpoint), and which parallel regions it opens (closures handed
   to the Pool/Parallel entry points, with their captured-state profile).

   Interproc combines these local summaries into whole-program signatures;
   this module never looks across function boundaries. *)

open Typedtree

type site = { sfile : string; sline : int; scol : int; swhat : string }

let compare_site a b =
  let c = String.compare a.sfile b.sfile in
  if c <> 0 then c
  else
    let c = Int.compare a.sline b.sline in
    if c <> 0 then c
    else
      let c = Int.compare a.scol b.scol in
      if c <> 0 then c else String.compare a.swhat b.swhat

(* Exception filter contributed by one enclosing try/match-with-exception. *)
type filter = Catch_all | Catch of string list

let compare_filter a b =
  match (a, b) with
  | Catch_all, Catch_all -> 0
  | Catch_all, Catch _ -> -1
  | Catch _, Catch_all -> 1
  | Catch xs, Catch ys -> List.compare String.compare xs ys

type call = {
  callee : string;  (* canonical dotted path *)
  csite : site;
  catches : filter list;  (* handlers active around the call site, innermost first *)
}

type closure_info = {
  k_site : site;
  k_refs : call list;  (* functions referenced inside the parallel closure *)
  k_captured : site list;  (* direct mutation/read of state captured from the enclosing fn *)
  k_global : site list;  (* direct mutation/read of module-level state *)
  k_mut_args : (string * string * site) list;  (* callee, captured var, site *)
}

type region = { r_entry : string; r_site : site; r_closures : closure_info list }

type t = {
  fn : string;
  src : string;
  fn_line : int;
  writes_global : site list;
  reads_global : site list;
  writes_args : site list;
  io : site list;
  nondet : site list;
  raises : (string * site) list;
  handlers : filter list;
  calls : call list;
  regions : region list;
}

let compare_call (a : call) (b : call) =
  let c = String.compare a.callee b.callee in
  if c <> 0 then c
  else
    let c = compare_site a.csite b.csite in
    if c <> 0 then c else List.compare compare_filter a.catches b.catches

let compare_raise (na, sa) (nb, sb) =
  let c = String.compare na nb in
  if c <> 0 then c else compare_site sa sb

(* ------------------------------------------------------------ resolution *)

type uctx = {
  vals : (string, string list) Hashtbl.t;  (* Ident.unique_name -> canonical path *)
  mods : (string, string list) Hashtbl.t;
}

let dotted = String.concat "."

let rec resolve ctx (p : Path.t) : string list option =
  match p with
  | Path.Pident id -> (
    let key = Ident.unique_name id in
    match Hashtbl.find_opt ctx.mods key with
    | Some parts -> Some parts
    | None -> (
      match Hashtbl.find_opt ctx.vals key with
      | Some parts -> Some parts
      | None ->
        let n = Ident.name id in
        if String.length n > 0 && n.[0] >= 'A' && n.[0] <= 'Z' then
          Some (Cmt_loader.canon_component n)
        else None))
  | Path.Pdot (p', s) -> (
    match resolve ctx p' with
    | Some pre -> Some (pre @ Cmt_loader.canon_component s)
    | None -> None)
  | Path.Papply (a, _) -> resolve ctx a
  | Path.Pextra_ty (p', _) -> resolve ctx p'

let strip_stdlib = function "Stdlib" :: rest -> rest | parts -> parts
let mem_s x l = List.exists (String.equal x) l

(* --------------------------------------------------- effect classification *)

let is_nondet parts =
  match strip_stdlib parts with
  | "Random" :: "State" :: rest -> rest = [ "make_self_init" ]
  | [ "Random"; _ ] -> true
  | [ "Sys"; "time" ] -> true
  | [ "Unix"; ("gettimeofday" | "time") ] -> true
  | _ -> false

let io_simple =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_float"; "print_char"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_int"; "read_line"; "read_int";
    "read_int_opt"; "read_float"; "read_float_opt"; "output_string";
    "output_bytes"; "output_char"; "output_value"; "output_binary_int";
    "open_in"; "open_in_bin"; "open_in_gen"; "open_out"; "open_out_bin";
    "open_out_gen";
  ]

let is_io parts =
  match strip_stdlib parts with
  | [ f ] -> mem_s f io_simple
  | [ "Printf"; ("printf" | "eprintf") ] -> true
  | [ "Format"; ("printf" | "eprintf") ] -> true
  | "In_channel" :: _ | "Out_channel" :: _ -> true
  | [ "Sys"; "command" ] -> true
  | [ "Unix"; ("system" | "sleep" | "sleepf") ] -> true
  | _ -> false

(* ref-class mutators/readers keyed on the stripped head. `None` in the
   write position means "not a write through argument 0". *)
let ref_write_op = function
  | [ (":=" | "incr" | "decr") ] -> true
  | "Hashtbl" :: [ op ] ->
    mem_s op
      [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]
  | "Queue" :: [ op ] ->
    mem_s op [ "push"; "add"; "pop"; "take"; "clear"; "transfer" ]
  | "Stack" :: [ op ] -> mem_s op [ "push"; "pop"; "clear" ]
  | "Buffer" :: [ op ] ->
    mem_s op
      [
        "add_string"; "add_char"; "add_bytes"; "add_substring"; "add_subbytes";
        "add_buffer"; "clear"; "reset"; "truncate";
      ]
  | _ -> false

let ref_read_op = function
  | [ "!" ] -> true
  | "Hashtbl" :: [ op ] ->
    mem_s op
      [
        "find"; "find_opt"; "find_all"; "mem"; "iter"; "fold"; "length";
        "copy"; "to_seq"; "to_seq_keys"; "to_seq_values";
      ]
  | _ -> false

let is_alloc_head parts =
  match strip_stdlib parts with
  | [ "ref" ] -> true
  | "Array" :: [ op ] ->
    mem_s op
      [
        "make"; "create_float"; "init"; "copy"; "append"; "sub"; "of_list";
        "map"; "mapi"; "make_matrix"; "concat";
      ]
  | [ "Hashtbl"; ("create" | "copy") ] -> true
  | [ "Buffer"; "create" ] -> true
  | "Bytes" :: [ op ] ->
    mem_s op [ "create"; "make"; "copy"; "of_string"; "sub" ]
  | [ "Queue"; "create" ] | [ "Stack"; "create" ] | [ "Atomic"; "make" ] ->
    true
  | [ "Float"; "Array"; ("create" | "make") ] -> true
  | _ -> false

let is_raise_head = function
  | [ ("raise" | "raise_notrace") ] | [ "Printexc"; "raise_with_backtrace" ]
    ->
    true
  | _ -> false

(* The parallel entry points whose closure arguments run on worker
   domains.  `snd` is how many leading positional args to skip before the
   closure arguments start. *)
let region_entries =
  [
    ("Fbp_util.Pool.run_chunks", 0); ("Fbp_util.Pool.fork2", 0);
    ("Fbp_util.Pool.reduce", 0); ("Fbp_util.Pool.lease_run", 1);
    ("Fbp_util.Pool.set_profile_hook", 0); ("Fbp_util.Parallel.map_array", 0);
    ("Fbp_util.Parallel.iter_array", 0); ("Fbp_util.Parallel.init", 1);
  ]

(* Stateful containers whose free-variable hand-off into a parallel
   closure is worth tracking (beyond these we cannot see mutability in
   the type without an environment lookup — documented caveat). *)
let is_mutable_tycon ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
    match Path.name p with
    | "ref" | "Stdlib.ref" -> true
    | n ->
      List.exists
        (fun s -> String.equal n s || String.ends_with ~suffix:("." ^ s) n)
        [ "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t" ])
  | _ -> false

(* --------------------------------------------------------- pattern binders *)

let rec pattern_vars : type k. k general_pattern -> Ident.t list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ id ]
  | Tpat_alias (p', id, _) -> id :: pattern_vars p'
  | Tpat_tuple ps -> List.concat_map pattern_vars ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pattern_vars ps
  | Tpat_record (fields, _) ->
    List.concat_map (fun (_, _, p') -> pattern_vars p') fields
  | Tpat_array ps -> List.concat_map pattern_vars ps
  | Tpat_or (a, b, _) -> pattern_vars a @ pattern_vars b
  | Tpat_lazy p' -> pattern_vars p'
  | Tpat_variant (_, Some p', _) -> pattern_vars p'
  | Tpat_value v -> pattern_vars (v :> value general_pattern)
  | Tpat_exception p' -> pattern_vars p'
  | _ -> []

(* Collect every ident bound anywhere inside [expr] (params, lets, for
   loops), plus the subset let-bound to a fresh allocation.  Used both for
   the per-node scope table and for the per-closure scope table. *)
let collect_bound ctx expr =
  let bound = Hashtbl.create 32 and allocs = Hashtbl.create 8 in
  let is_alloc e =
    match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
      match resolve ctx p with Some parts -> is_alloc_head parts | None -> false)
    | Texp_record _ | Texp_array _ -> true
    | _ -> false
  in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) sub (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_var (id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
          | Tpat_alias (_, id, _) ->
            Hashtbl.replace bound (Ident.unique_name id) ()
          | _ -> ());
          Tast_iterator.default_iterator.pat sub p);
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_for (id, _, _, _, _, _) ->
            Hashtbl.replace bound (Ident.unique_name id) ()
          | Texp_letmodule (Some id, _, _, _, _) ->
            Hashtbl.replace bound (Ident.unique_name id) ()
          | Texp_function { param; _ } ->
            Hashtbl.replace bound (Ident.unique_name param) ()
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
      value_binding =
        (fun sub vb ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) when is_alloc vb.vb_expr ->
            Hashtbl.replace allocs (Ident.unique_name id) ()
          | _ -> ());
          Tast_iterator.default_iterator.value_binding sub vb);
    }
  in
  it.expr it expr;
  (bound, allocs)

(* ------------------------------------------------------------- unit pass A *)

type node = { n_id : string; n_line : int; n_expr : expression }

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let collect_nodes (u : Cmt_loader.unit_info) ctx =
  let nodes = ref [] and anon = ref 0 in
  let rec do_structure prefix str = List.iter (do_item prefix) str.str_items
  and do_item prefix item =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun vb ->
          match pattern_vars vb.vb_pat with
          | [] ->
            incr anon;
            nodes :=
              {
                n_id = dotted prefix ^ Printf.sprintf ".<top:%d>" !anon;
                n_line = line_of vb.vb_loc;
                n_expr = vb.vb_expr;
              }
              :: !nodes
          | first :: _ as ids ->
            let nid = prefix @ [ Ident.name first ] in
            List.iter
              (fun id -> Hashtbl.replace ctx.vals (Ident.unique_name id) nid)
              ids;
            nodes :=
              {
                n_id = dotted nid;
                n_line = line_of vb.vb_loc;
                n_expr = vb.vb_expr;
              }
              :: !nodes)
        vbs
    | Tstr_eval (e, _) ->
      incr anon;
      nodes :=
        {
          n_id = dotted prefix ^ Printf.sprintf ".<top:%d>" !anon;
          n_line = line_of item.str_loc;
          n_expr = e;
        }
        :: !nodes
    | Tstr_module mb -> do_module prefix mb
    | Tstr_recmodule mbs -> List.iter (do_module prefix) mbs
    | Tstr_exception te -> (
      let ec = te.tyexn_constructor in
      match ec.ext_kind with
      | Text_rebind (p, _) -> (
        match resolve ctx p with
        | Some parts ->
          Hashtbl.replace ctx.vals (Ident.unique_name ec.ext_id) parts
        | None -> ())
      | _ ->
        Hashtbl.replace ctx.vals
          (Ident.unique_name ec.ext_id)
          (prefix @ [ Ident.name ec.ext_id ]))
    | _ -> ()
  and do_module prefix mb =
    match mb.mb_id with
    | None -> ()
    | Some id -> (
      let name = Ident.name id in
      let rec peel me =
        match me.mod_desc with
        | Tmod_constraint (me', _, _, _) -> peel me'
        | d -> d
      in
      match peel mb.mb_expr with
      | Tmod_structure str ->
        Hashtbl.replace ctx.mods (Ident.unique_name id) (prefix @ [ name ]);
        do_structure (prefix @ [ name ]) str
      | Tmod_ident (p, _) ->
        let target =
          match resolve ctx p with
          | Some parts -> parts
          | None -> prefix @ [ name ]
        in
        Hashtbl.replace ctx.mods (Ident.unique_name id) target
      | _ ->
        (* functors / applications / unpacks: opaque prefix (caveat) *)
        Hashtbl.replace ctx.mods (Ident.unique_name id) (prefix @ [ name ]))
  in
  do_structure u.name u.structure;
  List.rev !nodes

(* ------------------------------------------------------------- unit pass C *)

type env = {
  ctx : uctx;
  src : string;
  sanctioned : bool;  (* nondet sources allowed in this unit (rng/timer) *)
  bound : (string, unit) Hashtbl.t;
  allocs : (string, unit) Hashtbl.t;
  mutable filters : filter list;
  mutable hs : filter list;  (* every handler seen anywhere in the node *)
  mutable wg : site list;
  mutable rg : site list;
  mutable wa : site list;
  mutable io_sites : site list;
  mutable nd : site list;
  mutable rs : (string * site) list;
  mutable cs : call list;
  mutable regions : region list;
}

let site_of env (loc : Location.t) what =
  let p = loc.Location.loc_start in
  {
    sfile = env.src;
    sline = p.Lexing.pos_lnum;
    scol = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    swhat = what;
  }

let exn_of_construct ctx (cd : Types.constructor_description) =
  match cd.Types.cstr_tag with
  | Types.Cstr_extension (path, _) -> Option.map dotted (resolve ctx path)
  | _ -> None

let caught_by filters name =
  List.exists
    (function Catch_all -> true | Catch l -> mem_s name l)
    filters

(* Does the handler body re-raise the exception bound as [id]?  Used to
   keep `| e -> raise e` (and backtrace-preserving variants) from being
   treated as a swallowing catch-all. *)
let reraises_ident ctx id rhs =
  let hit = ref false in
  let key = Ident.unique_name id in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            match resolve ctx p with
            | Some parts when is_raise_head (strip_stdlib parts) -> (
              let first_pos =
                List.find_map
                  (function
                    | Asttypes.Nolabel, Some a -> Some a | _ -> None)
                  args
              in
              match first_pos with
              | Some { exp_desc = Texp_ident (Path.Pident id', _, _); _ }
                when String.equal (Ident.unique_name id') key ->
                hit := true
              | _ -> ())
            | _ -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it rhs;
  !hit

(* Exception filter contributed by the handlers of a try (value cases). *)
let filter_of_handlers ctx cases =
  let names = ref [] and all = ref false in
  List.iter
    (fun c ->
      if c.c_guard <> None then () (* guarded: may decline — assume no catch *)
      else
        let rec go : type k. k general_pattern -> unit =
         fun p ->
          match p.pat_desc with
          | Tpat_or (a, b, _) ->
            go a;
            go b
          | Tpat_alias (p', id, _) ->
            if reraises_ident ctx id c.c_rhs then () else go p'
          | Tpat_construct (_, cd, _, _) -> (
            match exn_of_construct ctx cd with
            | Some n -> names := n :: !names
            | None -> ())
          | Tpat_var (id, _) ->
            if not (reraises_ident ctx id c.c_rhs) then all := true
          | Tpat_any -> all := true
          | Tpat_value v -> go (v :> value general_pattern)
          | Tpat_exception p' -> go p'
          | _ -> ()
        in
        go c.c_lhs)
    cases;
  if !all then Catch_all else Catch (List.sort_uniq String.compare !names)

(* Filter from a match whose cases include `exception ...` patterns, or
   None when the match handles no exceptions at all. *)
let filter_of_match ctx cases =
  let names = ref [] and all = ref false and any = ref false in
  List.iter
    (fun c ->
      let rec go : type k. k general_pattern -> unit =
       fun p ->
        match p.pat_desc with
        | Tpat_exception p' ->
          any := true;
          if c.c_guard <> None then ()
          else
            let rec inner : type j. j general_pattern -> unit =
             fun q ->
              match q.pat_desc with
              | Tpat_or (a, b, _) ->
                inner a;
                inner b
              | Tpat_alias (q', _, _) -> inner q'
              | Tpat_construct (_, cd, _, _) -> (
                match exn_of_construct ctx cd with
                | Some n -> names := n :: !names
                | None -> ())
              | Tpat_var _ | Tpat_any -> all := true
              | _ -> ()
            in
            inner p'
        | Tpat_or (a, b, _) ->
          go a;
          go b
        | Tpat_value v -> go (v :> value general_pattern)
        | _ -> ()
      in
      go c.c_lhs)
    cases;
  if not !any then None
  else if !all then Some Catch_all
  else Some (Catch (List.sort_uniq String.compare !names))

(* Root of an lvalue: what object does this read/write ultimately touch? *)
type root =
  | Rlocal  (* let-bound fresh allocation: chunk-private, fine *)
  | Rbound of string  (* some binder in this function (param or let) *)
  | Rglobal of string  (* module-level state, ours or another unit's *)
  | Rarr  (* derived from an array element: sanctioned chunk-disjoint *)
  | Runknown

let rec root_of ~bound ~allocs ctx e =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    match p with
    | Path.Pident id ->
      let key = Ident.unique_name id in
      if Hashtbl.mem allocs key then Rlocal
      else if Hashtbl.mem bound key then Rbound (Ident.name id)
      else (
        match resolve ctx p with
        | Some parts -> Rglobal (dotted parts)
        | None -> Runknown)
    | _ -> (
      match resolve ctx p with
      | Some parts -> Rglobal (dotted parts)
      | None -> Runknown))
  | Texp_field (e', _, _) -> root_of ~bound ~allocs ctx e'
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
    match Option.map strip_stdlib (resolve ctx p) with
    | Some [ "Array"; ("get" | "unsafe_get") ]
    | Some [ "Bytes"; ("get" | "unsafe_get") ]
    | Some ("Bigarray" :: _) ->
      Rarr
    | _ -> Runknown)
  | _ -> Runknown

let first_nolabel args =
  List.find_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

let nolabel_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

(* ------------------------------------------------------- closure analysis *)

let analyze_work_arg env warg =
  let bc, bc_allocs = collect_bound env.ctx warg in
  let refs = ref []
  and captured = ref []
  and global = ref []
  and mut_args = ref [] in
  let classify e =
    (* scope decision order: closure-local first, then enclosing fn, then
       module level *)
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
      let key = Ident.unique_name id in
      if Hashtbl.mem bc_allocs key then Rlocal
      else if Hashtbl.mem bc key then Rbound (Ident.name id)
      else if Hashtbl.mem env.bound key then
        if Hashtbl.mem env.allocs key then Rbound (Ident.name id)
        else Rbound (Ident.name id)
      else root_of ~bound:bc ~allocs:bc_allocs env.ctx e
    | _ -> root_of ~bound:bc ~allocs:bc_allocs env.ctx e
  in
  (* is this ident free in the closure but bound in the enclosing fn? *)
  let enclosing_free id =
    let key = Ident.unique_name id in
    (not (Hashtbl.mem bc key)) && Hashtbl.mem env.bound key
  in
  let record_touch e loc what =
    match classify e with
    | Rlocal | Rarr | Runknown -> ()
    | Rbound name -> (
      match e.exp_desc with
      | Texp_ident (Path.Pident id, _, _) when enclosing_free id ->
        captured :=
          site_of env loc (Printf.sprintf "%s '%s'" what name) :: !captured
      | _ -> () (* bound inside the closure itself: chunk-private *))
    | Rglobal g ->
      global := site_of env loc (Printf.sprintf "%s '%s'" what g) :: !global
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> (
            match resolve env.ctx p with
            | Some parts when not (is_raise_head (strip_stdlib parts)) ->
              refs :=
                {
                  callee = dotted parts;
                  csite = site_of env e.exp_loc "reference";
                  catches = [];
                }
                :: !refs
            | _ -> ())
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            match resolve env.ctx p with
            | Some parts ->
              let stripped = strip_stdlib parts in
              if ref_write_op stripped then
                Option.iter
                  (fun a -> record_touch a e.exp_loc "writes")
                  (first_nolabel args)
              else if ref_read_op stripped then
                Option.iter
                  (fun a -> record_touch a e.exp_loc "reads")
                  (first_nolabel args)
              else
                (* hand-off of a captured mutable container to a callee *)
                List.iter
                  (fun a ->
                    match a.exp_desc with
                    | Texp_ident (Path.Pident id, _, _)
                      when enclosing_free id && is_mutable_tycon a.exp_type ->
                      mut_args :=
                        ( dotted parts,
                          Ident.name id,
                          site_of env a.exp_loc
                            (Printf.sprintf "passes captured '%s'"
                               (Ident.name id)) )
                        :: !mut_args
                    | _ -> ())
                  (nolabel_args args)
            | None -> ())
          | Texp_setfield (obj, _, _, _) ->
            record_touch obj e.exp_loc "writes field of"
          | Texp_field (obj, _, ld) when ld.Types.lbl_mut = Asttypes.Mutable
            ->
            record_touch obj e.exp_loc "reads mutable field of"
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it warg;
  {
    k_site = site_of env warg.exp_loc "closure";
    k_refs = List.sort_uniq compare_call (List.rev !refs);
    k_captured = List.sort_uniq compare_site (List.rev !captured);
    k_global = List.sort_uniq compare_site (List.rev !global);
    k_mut_args =
      List.sort_uniq
        (fun (ca, va, sa) (cb, vb, sb) ->
          let c = String.compare ca cb in
          if c <> 0 then c
          else
            let c = String.compare va vb in
            if c <> 0 then c else compare_site sa sb)
        (List.rev !mut_args);
  }

(* ------------------------------------------------------------- node walk *)

let walk_node env expr =
  let record_raise name loc =
    if not (caught_by env.filters name) then
      env.rs <- (name, site_of env loc ("raise " ^ name)) :: env.rs
  in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          match e.exp_desc with
          | Texp_try (body, handlers) ->
            let f = filter_of_handlers env.ctx handlers in
            let saved = env.filters in
            env.hs <- f :: env.hs;
            env.filters <- f :: saved;
            sub.Tast_iterator.expr sub body;
            env.filters <- saved;
            List.iter
              (fun c ->
                Option.iter (sub.Tast_iterator.expr sub) c.c_guard;
                sub.Tast_iterator.expr sub c.c_rhs)
              handlers
          | Texp_match (scrut, cases, _) ->
            let saved = env.filters in
            (match filter_of_match env.ctx cases with
            | Some f ->
              env.hs <- f :: env.hs;
              env.filters <- f :: saved
            | None -> ());
            sub.Tast_iterator.expr sub scrut;
            env.filters <- saved;
            List.iter
              (fun c ->
                Option.iter (sub.Tast_iterator.expr sub) c.c_guard;
                sub.Tast_iterator.expr sub c.c_rhs)
              cases
          | Texp_function _ ->
            (* lexical try handlers do not guard the body of a lambda —
               it runs at call time *)
            let saved = env.filters in
            env.filters <- [];
            Tast_iterator.default_iterator.expr sub e;
            env.filters <- saved
          | Texp_ident (p, _, _) ->
            (match resolve env.ctx p with
            | Some parts ->
              let stripped = strip_stdlib parts in
              if is_nondet stripped then (
                if not env.sanctioned then
                  env.nd <-
                    site_of env e.exp_loc (dotted stripped) :: env.nd)
              else if is_io stripped then
                env.io_sites <-
                  site_of env e.exp_loc (dotted stripped) :: env.io_sites
              else if
                (not (is_raise_head stripped))
                && (match parts with "Stdlib" :: _ -> false | _ -> true)
              then
                env.cs <-
                  {
                    callee = dotted parts;
                    csite = site_of env e.exp_loc "call";
                    catches = env.filters;
                  }
                  :: env.cs
            | None -> ());
            Tast_iterator.default_iterator.expr sub e
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
            (match resolve env.ctx p with
            | Some parts -> (
              let stripped = strip_stdlib parts in
              (if is_raise_head stripped then
                 match first_nolabel args with
                 | Some { exp_desc = Texp_construct (_, cd, _); _ } ->
                   Option.iter
                     (fun n -> record_raise n e.exp_loc)
                     (exn_of_construct env.ctx cd)
                 | _ -> () (* dynamic re-raise: handled via call edges *)
               else
                 match stripped with
                 | [ "failwith" ] -> record_raise "Failure" e.exp_loc
                 | [ "invalid_arg" ] ->
                   record_raise "Invalid_argument" e.exp_loc
                 | _ -> ());
              (if ref_write_op stripped then
                 match first_nolabel args with
                 | Some a -> (
                   match root_of ~bound:env.bound ~allocs:env.allocs env.ctx a
                   with
                   | Rglobal g ->
                     env.wg <-
                       site_of env e.exp_loc ("writes '" ^ g ^ "'") :: env.wg
                   | Rbound name ->
                     env.wa <-
                       site_of env e.exp_loc ("writes '" ^ name ^ "'")
                       :: env.wa
                   | Rlocal | Rarr | Runknown -> ())
                 | None -> ()
               else if ref_read_op stripped then
                 match first_nolabel args with
                 | Some a -> (
                   match root_of ~bound:env.bound ~allocs:env.allocs env.ctx a
                   with
                   | Rglobal g ->
                     env.rg <-
                       site_of env e.exp_loc ("reads '" ^ g ^ "'") :: env.rg
                   | _ -> ())
                 | None -> ());
              match
                List.find_map
                  (fun (entry, skip) ->
                    if String.equal entry (dotted parts) then Some skip
                    else None)
                  region_entries
              with
              | Some skip ->
                let work = nolabel_args args in
                let work =
                  if List.length work > skip then
                    List.filteri (fun i _ -> i >= skip) work
                  else work
                in
                let closures = List.map (analyze_work_arg env) work in
                env.regions <-
                  {
                    r_entry = dotted parts;
                    r_site = site_of env e.exp_loc "parallel region";
                    r_closures = closures;
                  }
                  :: env.regions
              | None -> ())
            | None -> ());
            Tast_iterator.default_iterator.expr sub e
          | Texp_setfield (obj, _, _, _) ->
            (match root_of ~bound:env.bound ~allocs:env.allocs env.ctx obj with
            | Rglobal g ->
              env.wg <-
                site_of env e.exp_loc ("writes field of '" ^ g ^ "'")
                :: env.wg
            | Rbound name ->
              env.wa <-
                site_of env e.exp_loc ("writes field of '" ^ name ^ "'")
                :: env.wa
            | Rlocal | Rarr | Runknown -> ());
            Tast_iterator.default_iterator.expr sub e
          | Texp_field (obj, _, ld) when ld.Types.lbl_mut = Asttypes.Mutable
            ->
            (match root_of ~bound:env.bound ~allocs:env.allocs env.ctx obj with
            | Rglobal g ->
              env.rg <-
                site_of env e.exp_loc ("reads mutable field of '" ^ g ^ "'")
                :: env.rg
            | _ -> ());
            Tast_iterator.default_iterator.expr sub e
          | _ -> Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it expr

(* --------------------------------------------------------------- assembly *)

let of_unit ~sanctioned (u : Cmt_loader.unit_info) =
  let ctx = { vals = Hashtbl.create 64; mods = Hashtbl.create 16 } in
  let nodes = collect_nodes u ctx in
  List.map
    (fun node ->
      let bound, allocs = collect_bound ctx node.n_expr in
      let env =
        {
          ctx;
          src = u.source;
          sanctioned = sanctioned u.source;
          bound;
          allocs;
          filters = [];
          hs = [];
          wg = [];
          rg = [];
          wa = [];
          io_sites = [];
          nd = [];
          rs = [];
          cs = [];
          regions = [];
        }
      in
      walk_node env node.n_expr;
      let handlers = List.sort_uniq compare_filter env.hs in
      {
        fn = node.n_id;
        src = u.source;
        fn_line = node.n_line;
        writes_global = List.sort_uniq compare_site (List.rev env.wg);
        reads_global = List.sort_uniq compare_site (List.rev env.rg);
        writes_args = List.sort_uniq compare_site (List.rev env.wa);
        io = List.sort_uniq compare_site (List.rev env.io_sites);
        nondet = List.sort_uniq compare_site (List.rev env.nd);
        raises =
          List.sort_uniq compare_raise
            (List.filter
               (fun (n, _) -> not (caught_by handlers n))
               (List.rev env.rs));
        calls = List.sort_uniq compare_call (List.rev env.cs);
        regions = List.rev env.regions;
        handlers;
      })
    nodes

let of_units ~sanctioned units =
  List.concat_map (of_unit ~sanctioned) units
