(* Interprocedural effect inference: fbp-lint v2.

   Loads every .cmt under the configured roots, extracts local effect
   summaries (Effects), builds the cross-module call graph (Callgraph),
   propagates effects to a fixpoint, and runs the three semantic rules:

   - domain-safety: mutable state reached *transitively* by any closure
     handed to the Pool/Parallel entry points (not just directly
     captured).  The pool/parallel machinery itself is the trusted
     synchronization layer: its own mutex-guarded internals are the
     implementation of the safe abstraction, so propagation is cut at
     those units.
   - determinism: Random/Sys.time/Unix.gettimeofday taint, reported on
     every function reachable from the placer or fuzzer entry points,
     outside the sanctioned rng/timer wrappers.
   - error-taxonomy: every raise that can escape a CLI entry point must
     resolve to the typed Fbp_error taxonomy (or a sanctioned
     programming-error exception), keeping exit codes stable.

   All output orders are deterministic: summaries are sorted, BFS runs
   over sorted adjacency, diagnostics are sorted before returning. *)

module SiteSet = Set.Make (struct
  type t = Effects.site

  let compare = Effects.compare_site
end)

module RaiseSet = Set.Make (struct
  type t = string * Effects.site

  let compare = Effects.compare_raise
end)

type config = {
  cmt_roots : string list;
  det_entries : string list;  (* dotted prefixes *)
  cli_entries : string list;  (* dotted prefixes *)
  sanctioned_nondet : string list;  (* source-path suffixes *)
  trusted : string list;  (* dotted prefixes cut from shared-state propagation *)
  sanctioned_exns : string list;  (* canonical or short exception names *)
}

let default_config ~cmt_roots =
  {
    cmt_roots;
    det_entries = [ "Fbp_core.Placer.place"; "Fbp_workloads.Fuzz." ];
    cli_entries = [ "Fbp_place." ];
    sanctioned_nondet = [ "lib/util/rng.ml"; "lib/util/timer.ml" ];
    trusted = [ "Fbp_util.Pool."; "Fbp_util.Parallel." ];
    sanctioned_exns =
      [ "Fbp_resilience.Fbp_error.Error"; "Invalid_argument"; "Assert_failure" ];
  }

type result = {
  diagnostics : Diagnostic.t list;
  units_loaded : int;
  covered_sources : string list;  (* sorted source paths with typed coverage *)
  signatures : (string * string) list;  (* fn -> rendered effect signature *)
  load_errors : (string * string) list;
}

(* ---------------------------------------------------------------- fixpoint *)

type state = {
  mutable wg : SiteSet.t;
  mutable rg : SiteSet.t;
  mutable wa : SiteSet.t;
  mutable io : SiteSet.t;
  mutable nd : SiteSet.t;
  mutable rs : RaiseSet.t;
}

let state_of_summary (s : Effects.t) =
  {
    wg = SiteSet.of_list s.writes_global;
    rg = SiteSet.of_list s.reads_global;
    wa = SiteSet.of_list s.writes_args;
    io = SiteSet.of_list s.io;
    nd = SiteSet.of_list s.nondet;
    rs = RaiseSet.of_list s.raises;
  }

let fixpoint cfg g =
  let states = Hashtbl.create 256 in
  List.iter
    (fun id ->
      match Callgraph.find g id with
      | Some s -> Hashtbl.replace states id (state_of_summary s)
      | None -> ())
    (Callgraph.ids g);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun id ->
        match Callgraph.find g id with
        | None -> ()
        | Some summary ->
          let st = Hashtbl.find states id in
          List.iter
            (fun (c : Effects.call) ->
              match Hashtbl.find_opt states c.Effects.callee with
              | None -> ()
              | Some cs ->
                let add_sites get set =
                  let merged = SiteSet.union (get st) (get cs) in
                  if SiteSet.cardinal merged > SiteSet.cardinal (get st) then begin
                    set st merged;
                    changed := true
                  end
                in
                (* raises survive the call only if no enclosing handler at
                   the call site stops them; the caller's node-level
                   handler set also applies, covering handlers that wrap
                   the call dynamically (lambda bodies, local helpers
                   defined inside the try) rather than lexically *)
                let escaping =
                  RaiseSet.filter
                    (fun (n, _) ->
                      (not (Effects.caught_by c.catches n))
                      && not
                           (Effects.caught_by summary.Effects.handlers n))
                    cs.rs
                in
                let merged_rs = RaiseSet.union st.rs escaping in
                if RaiseSet.cardinal merged_rs > RaiseSet.cardinal st.rs
                then begin
                  st.rs <- merged_rs;
                  changed := true
                end;
                if not (Callgraph.matches_prefix cfg.trusted c.callee) then begin
                  add_sites (fun s -> s.wg) (fun s v -> s.wg <- v);
                  add_sites (fun s -> s.rg) (fun s v -> s.rg <- v);
                  add_sites (fun s -> s.wa) (fun s v -> s.wa <- v);
                  add_sites (fun s -> s.io) (fun s v -> s.io <- v);
                  add_sites (fun s -> s.nd) (fun s v -> s.nd <- v)
                end)
            summary.Effects.calls)
      (Callgraph.ids g)
  done;
  states

(* -------------------------------------------------------------- signatures *)

let short_exn n =
  match String.rindex_opt n '.' with
  | Some i -> String.sub n (i + 1) (String.length n - i - 1)
  | None -> n

let signature_of st =
  let parts = ref [] in
  let add s = parts := s :: !parts in
  if not (SiteSet.is_empty st.wg) then
    add (Printf.sprintf "writes_shared(%d)" (SiteSet.cardinal st.wg));
  if not (SiteSet.is_empty st.rg) then
    add (Printf.sprintf "reads_mutable(%d)" (SiteSet.cardinal st.rg));
  if not (SiteSet.is_empty st.wa) then
    add (Printf.sprintf "writes_args(%d)" (SiteSet.cardinal st.wa));
  if not (SiteSet.is_empty st.io) then add "io";
  if not (SiteSet.is_empty st.nd) then add "nondeterministic";
  if not (RaiseSet.is_empty st.rs) then
    add
      (Printf.sprintf "raises(%s)"
         (String.concat "|"
            (List.sort_uniq String.compare
               (List.map
                  (fun (n, _) -> short_exn n)
                  (RaiseSet.elements st.rs)))));
  match !parts with [] -> "pure" | ps -> String.concat " " (List.rev ps)

(* ------------------------------------------------------------------- rules *)

let has_local_shared (s : Effects.t) =
  s.Effects.writes_global <> [] || s.Effects.reads_global <> []

let min_site set = SiteSet.min_elt_opt set

let diag_of_site ~rule ?hint (s : Effects.site) msg =
  Diagnostic.make_pos ~rule ~file:s.Effects.sfile ~line:s.Effects.sline
    ~col:s.Effects.scol ?hint msg

let domain_safety cfg g states =
  let hint =
    "keep worker state chunk-private (allocate inside the closure), use \
     Atomic, or write into disjoint pre-sized slots"
  in
  let out = ref [] in
  List.iter
    (fun id ->
      match Callgraph.find g id with
      | None -> ()
      | Some summary ->
        List.iter
          (fun (r : Effects.region) ->
            List.iter
              (fun (k : Effects.closure_info) ->
                List.iter
                  (fun (s : Effects.site) ->
                    out :=
                      diag_of_site ~rule:"domain-safety" ~hint s
                        (Printf.sprintf
                           "closure passed to %s %s captured from the \
                            enclosing function; mutable captures race \
                            across worker domains"
                           r.r_entry s.swhat)
                      :: !out)
                  k.k_captured;
                List.iter
                  (fun (s : Effects.site) ->
                    out :=
                      diag_of_site ~rule:"domain-safety" ~hint s
                        (Printf.sprintf
                           "closure passed to %s %s; module-level mutable \
                            state is shared across worker domains"
                           r.r_entry s.swhat)
                      :: !out)
                  k.k_global;
                let seen = Hashtbl.create 8 in
                List.iter
                  (fun (c : Effects.call) ->
                    if
                      (not (Hashtbl.mem seen c.Effects.callee))
                      && (not
                            (Callgraph.matches_prefix cfg.trusted
                               c.Effects.callee))
                      && not (String.equal c.Effects.callee id)
                    then begin
                      Hashtbl.replace seen c.Effects.callee ();
                      match Hashtbl.find_opt states c.Effects.callee with
                      | Some st
                        when not
                               (SiteSet.is_empty st.wg
                               && SiteSet.is_empty st.rg) -> (
                        match
                          Callgraph.chain g ~src:c.Effects.callee
                            ~stop:has_local_shared
                            ~skip:(Callgraph.matches_prefix cfg.trusted)
                        with
                        | Some path ->
                          let target =
                            match
                              Callgraph.find g (List.nth path (List.length path - 1))
                            with
                            | Some t -> t
                            | None -> summary
                          in
                          let site =
                            match
                              min_site
                                (SiteSet.of_list
                                   (target.Effects.writes_global
                                   @ target.Effects.reads_global))
                            with
                            | Some s -> s
                            | None -> c.Effects.csite
                          in
                          out :=
                            diag_of_site ~rule:"domain-safety" ~hint
                              c.Effects.csite
                              (Printf.sprintf
                                 "closure passed to %s transitively reaches \
                                  shared mutable state: %s (%s at %s:%d)"
                                 r.r_entry
                                 (Callgraph.render_chain path)
                                 site.Effects.swhat site.Effects.sfile
                                 site.Effects.sline)
                            :: !out
                        | None -> ())
                      | _ -> ()
                    end)
                  k.k_refs;
                List.iter
                  (fun (callee, var, site) ->
                    match Hashtbl.find_opt states callee with
                    | Some st when not (SiteSet.is_empty st.wa) ->
                      out :=
                        diag_of_site ~rule:"domain-safety" ~hint site
                          (Printf.sprintf
                             "closure passed to %s hands captured mutable \
                              '%s' to %s, which writes through its \
                              arguments"
                             r.r_entry var callee)
                        :: !out
                    | _ -> ())
                  k.k_mut_args)
              r.r_closures)
          summary.Effects.regions)
    (Callgraph.ids g);
  !out

let determinism cfg g =
  let hint =
    "route randomness through Fbp_util.Rng and timing through \
     Fbp_util.Timer so runs stay replayable"
  in
  let paths = Callgraph.reach_from g ~prefixes:cfg.det_entries in
  let out = ref [] in
  List.iter
    (fun id ->
      match Hashtbl.find_opt paths id with
      | None -> ()
      | Some path -> (
        match Callgraph.find g id with
        | None -> ()
        | Some summary ->
          List.iter
            (fun (s : Effects.site) ->
              out :=
                diag_of_site ~rule:"determinism" ~hint s
                  (Printf.sprintf
                     "nondeterminism source %s is reachable from %s: %s"
                     s.swhat (List.hd path)
                     (Callgraph.render_chain path))
                :: !out)
            summary.Effects.nondet))
    (Callgraph.ids g);
  !out

let sanctioned_exn cfg name =
  List.exists
    (fun s -> String.equal name s || String.equal (short_exn name) s)
    cfg.sanctioned_exns

let error_taxonomy cfg g states =
  let hint =
    "convert at the boundary with Fbp_resilience.Fbp_error.of_exn / \
     raise_error so the exit code stays in the documented taxonomy"
  in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun id ->
      if Callgraph.matches_prefix cfg.cli_entries id then
        match Hashtbl.find_opt states id with
        | None -> ()
        | Some st ->
          RaiseSet.iter
            (fun (name, site) ->
              if not (sanctioned_exn cfg name) then begin
                let key =
                  Printf.sprintf "%s:%s:%d:%s" name site.Effects.sfile
                    site.Effects.sline name
                in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.replace seen key ();
                  out :=
                    diag_of_site ~rule:"error-taxonomy" ~hint site
                      (Printf.sprintf
                         "raise of %s can escape CLI entry %s without \
                          resolving to the Fbp_error taxonomy"
                         name id)
                    :: !out
                end
              end)
            st.rs)
    (Callgraph.ids g);
  !out

(* ---------------------------------------------------------------- analyze *)

let analyze_units cfg units load_errors =
  let sanctioned src =
    List.exists
      (fun sfx -> String.ends_with ~suffix:sfx src)
      cfg.sanctioned_nondet
  in
  let summaries = Effects.of_units ~sanctioned units in
  let g = Callgraph.build summaries in
  let states = fixpoint cfg g in
  let diagnostics =
    List.sort_uniq Diagnostic.compare
      (domain_safety cfg g states @ determinism cfg g
     @ error_taxonomy cfg g states)
  in
  let signatures =
    List.filter_map
      (fun id ->
        Option.map (fun st -> (id, signature_of st)) (Hashtbl.find_opt states id))
      (Callgraph.ids g)
  in
  let covered_sources =
    List.sort_uniq String.compare
      (List.map (fun (u : Cmt_loader.unit_info) -> u.source) units)
  in
  {
    diagnostics;
    units_loaded = List.length units;
    covered_sources;
    signatures;
    load_errors;
  }

let analyze cfg =
  let units, load_errors = Cmt_loader.scan ~roots:cfg.cmt_roots in
  analyze_units cfg units load_errors
