(* Lint diagnostics.  Kept deliberately flat (no Location.t in the record)
   so rendering, baselining and tests never depend on compiler-libs
   internals beyond the construction site. *)

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  end_line : int;
  end_col : int;
  msg : string;
  hint : string option;
}

let make ~rule ~file ~(loc : Ppxlib.Location.t) ?hint msg =
  let start = loc.loc_start and stop = loc.loc_end in
  {
    rule;
    file;
    line = start.pos_lnum;
    col = start.pos_cnum - start.pos_bol;
    end_line = stop.pos_lnum;
    end_col = stop.pos_cnum - stop.pos_bol;
    msg;
    hint;
  }

(* Construction from raw positions, for passes (the interprocedural one)
   that carry compiler-libs locations rather than ppxlib ones. *)
let make_pos ~rule ~file ~line ~col ?hint msg =
  { rule; file; line; col; end_line = line; end_col = col; msg; hint }

let to_text d =
  let span =
    if d.end_line = d.line then Printf.sprintf "%d:%d-%d" d.line d.col d.end_col
    else Printf.sprintf "%d:%d-%d:%d" d.line d.col d.end_line d.end_col
  in
  Printf.sprintf "%s:%s: [%s] %s%s" d.file span d.rule d.msg
    (match d.hint with None -> "" | Some h -> " (hint: " ^ h ^ ")")

(* Minimal JSON string escaping: the diagnostics only carry source snippets
   and fixed messages, so control characters and quotes cover it. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    "{\"rule\":%s,\"file\":%s,\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d,\"msg\":%s,\"hint\":%s}"
    (json_string d.rule) (json_string d.file) d.line d.col d.end_line d.end_col
    (json_string d.msg)
    (match d.hint with None -> "null" | Some h -> json_string h)

let key d = Printf.sprintf "%s:%d:%s" d.file d.line d.rule

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule
