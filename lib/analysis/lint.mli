(** Orchestration: gather sources, parse, run {!Rules}, apply
    {!Suppress} directives, compare against a committed baseline.

    The baseline file holds one {!Diagnostic.key} per line ([#] comments
    and blank lines ignored).  Policy for this repo: the committed
    baseline stays empty — new findings are fixed or suppressed inline
    with a reason, never baselined; the mechanism exists so a future
    rule can land before its cleanup. *)

type report = {
  files_scanned : int;
  diagnostics : Diagnostic.t list;  (** post-suppression, sorted *)
  baselined : int;  (** findings hidden by the baseline *)
  errors : (string * string) list;  (** (path, why) read/parse failures *)
  interproc_units : int;
      (** typed units the interprocedural pass loaded; 0 when it was off *)
}

(** Lint source text as-if at [path] (drives path-scoped rules).  Used by
    the test fixtures. *)
val lint_string : path:string -> string -> Diagnostic.t list

(** Read and lint one file. *)
val lint_file : string -> (Diagnostic.t list, string) result

(** Expand files/directories into a sorted list of [.ml] files;
    [_build], [_opam] and dot-directories are skipped. *)
val gather_files : string list -> string list

(** Lint every file under the roots; [baseline] is a path (missing or
    unreadable baseline = empty).  With [interproc], the typed
    whole-program pass also runs: its findings are merged per file
    (suffix-tolerant source matching), the syntactic closure-capture
    sub-check of [domain-safety] is superseded for covered files, and
    suppression staleness is judged against *both* passes.  Without it,
    suppressions naming the semantic-capable rules are never reported
    unused (deferred to the next combined run). *)
val run_paths :
  ?baseline:string -> ?interproc:Interproc.config -> string list -> report

(** Baseline file content for the given findings. *)
val baseline_of : Diagnostic.t list -> string

type ratchet = {
  kept : string list;  (** old keys still firing: the new baseline *)
  retired : string list;  (** old keys no longer firing *)
  rejected : string list;  (** current findings absent from the old file *)
}

(** Baseline ratchet: compare current findings against the committed
    keys.  [rejected] non-empty means the baseline would have to grow,
    which the tooling refuses. *)
val ratchet : old_keys:string list -> current:Diagnostic.t list -> ratchet

(** Parse a baseline file's keys ([None]/missing file = empty). *)
val load_baseline : string option -> string list

(** Human-readable report: one line per finding plus a summary line. *)
val render_text : report -> string

(** Machine-readable report: a single JSON object. *)
val render_json : report -> string

(** True when the report requires attention (findings or errors). *)
val failed : report -> bool
