(* Domain-level runtime profiler: one per-domain timeline merged from
   three event sources, all on the Obs trace clock —

   - OCaml 5 [Runtime_events]: minor/major GC phases and stop-the-world
     rendezvous (leader and handler roles) per domain, read from the
     self-monitoring ring through a polling cursor.  The PR 7 pathology —
     parked worker domains joining every minor-GC STW — shows up here as
     STW time on rings whose pool timeline is pure park.
   - [Fbp_util.Pool]'s occupancy hook: per-worker parked / spinning /
     running transitions, per-chunk execution and lease submissions.
   - The placer's phase registrations ({!with_phase}), so GC pauses can be
     attributed to qp / flow / realization.

   Clock bridging: Runtime_events timestamps are monotonic-clock
   nanoseconds, the Obs clock is wall microseconds since [Obs.reset].  We
   recover the offset with a calibration user event — write it and record
   [Obs.now_us] at the same instant, then match it when it comes back
   through the cursor.  Relative drift over a placement run is far below
   the resolution we emit.  If calibration events are lost to ring
   overflow, the earliest runtime event is aligned with profiler start
   instead (documented in DESIGN.md "Profiling").

   Everything degrades, nothing fails: when [Runtime_events.start] raises
   (or tests force unavailability), the profiler still collects pool
   occupancy and phases — a run never fails because its profiler could
   not start.  Ring identity: a runtime-events ring id is the owning
   domain's index, which equals [Domain.self] for the long-lived domains
   the pool manages (workers are never torn down mid-run). *)

module J = Obs.Json

(* Backstop against unbounded growth; one sample per worker scheduling
   transition, so even wave-heavy runs sit orders of magnitude below. *)
let max_pool_samples = 2_000_000
let top_pause_count = 5
let calib_name = "fbp.profiler.calib"

type Runtime_events.User.tag += Calib

let calib =
  lazy (Runtime_events.User.register calib_name Calib Runtime_events.Type.int)

(* ------------------------------------------------------------- summary *)

type domain_summary = {
  d_tid : int;
  d_wid : int;  (* worker id; -1 = main/owner domain, -2 = unknown ring *)
  d_wall_us : float;
  d_busy_us : float;
  d_spin_us : float;
  d_park_us : float;
  d_stw_us : float;  (* GC/STW time, disjoint from busy/spin/park *)
  d_stw_n : int;
  d_chunks : int;
}

type phase_summary = {
  ph_name : string;
  ph_wall_us : float;
  ph_gc_us : float;
  ph_gc_n : int;
}

type pause = { p_tid : int; p_kind : string; p_ts_us : float; p_dur_us : float }

type summary = {
  s_available : bool;  (* Runtime_events started and a cursor is live *)
  s_wall_us : float;
  s_events : int;  (* runtime events consumed from the ring *)
  s_lost : int;  (* events dropped to ring overflow *)
  s_pool_samples : int;
  s_stw_count : int;  (* stop-the-world rendezvous observed *)
  s_minor_us : float;
  s_major_us : float;
  s_submits : int;  (* lease batch submissions *)
  s_submit_latency_us : float;  (* mean submit -> first helper run *)
  s_domains : domain_summary list;
  s_phases : phase_summary list;
  s_top_pauses : pause list;
}

let empty_summary =
  {
    s_available = false;
    s_wall_us = 0.0;
    s_events = 0;
    s_lost = 0;
    s_pool_samples = 0;
    s_stw_count = 0;
    s_minor_us = 0.0;
    s_major_us = 0.0;
    s_submits = 0;
    s_submit_latency_us = 0.0;
    s_domains = [];
    s_phases = [];
    s_top_pauses = [];
  }

(* --------------------------------------------------------------- state *)

type pool_sample = {
  ps_wid : int;
  ps_tid : int;
  ps_kind : Fbp_util.Pool.profile_kind;
  ps_ts : float;  (* Obs clock, µs *)
}

(* A completed GC/STW interval.  [iv_ts] is on the *runtime* clock (µs)
   while the interval sits in [st_pending]; [flush_pending] rebases it
   onto the Obs clock before it reaches [st_intervals]. *)
type interval = {
  iv_ring : int;
  iv_kind : string;
  iv_ts : float;
  iv_dur : float;
}

type state = {
  st_lock : Mutex.t;  (* guards [st_pool]/[st_pool_n] (hook vs. main) *)
  st_available : bool;
  st_cursor : Runtime_events.cursor option;
  st_start_us : float;
  st_main_tid : int;
  st_open : (int * string, float) Hashtbl.t;  (* (ring, kind) -> rt µs *)
  mutable st_pool : pool_sample list;  (* newest first *)
  mutable st_pool_n : int;
  mutable st_pending : interval list;  (* runtime clock, newest first *)
  mutable st_intervals : interval list;  (* Obs clock, newest first *)
  mutable st_events : int;
  mutable st_lost : int;
  mutable st_offset : float;  (* obs_us = rt_us + st_offset *)
  mutable st_have_offset : bool;
  mutable st_calib : (int * float) list;  (* outstanding (seq, obs µs) *)
  mutable st_seq : int;
  mutable st_open_phases : (string * float) list;  (* stack, main only *)
  mutable st_phases : (string * float * float) list;  (* newest first *)
}

let current : state option Atomic.t = Atomic.make None

let running () =
  match Atomic.get current with Some _ -> true | None -> false

(* Pushed from worker domains through the pool hook; everything else in
   [state] is touched by the main domain only. *)
let on_pool_event st (ev : Fbp_util.Pool.profile_event) =
  let ts = Obs.now_us () in
  Mutex.lock st.st_lock;
  if st.st_pool_n < max_pool_samples then begin
    st.st_pool <-
      { ps_wid = ev.pe_wid; ps_tid = ev.pe_domain; ps_kind = ev.pe_kind;
        ps_ts = ts }
      :: st.st_pool;
    st.st_pool_n <- st.st_pool_n + 1
  end;
  Mutex.unlock st.st_lock

(* ------------------------------------------------- runtime-events glue *)

let phase_kind (ph : Runtime_events.runtime_phase) =
  match ph with
  | Runtime_events.EV_MINOR -> Some "minor"
  | Runtime_events.EV_MAJOR -> Some "major"
  | Runtime_events.EV_MAJOR_SLICE -> Some "major_slice"
  | Runtime_events.EV_STW_LEADER -> Some "stw_leader"
  | Runtime_events.EV_STW_HANDLER -> Some "stw_handler"
  | Runtime_events.EV_MINOR_LEAVE_BARRIER -> Some "minor_leave_barrier"
  | _ -> None

let ns_to_us ts =
  Int64.to_float (Runtime_events.Timestamp.to_int64 ts) /. 1e3

let callbacks st =
  let runtime_begin ring ts ph =
    match phase_kind ph with
    | None -> ()
    | Some kind -> Hashtbl.replace st.st_open (ring, kind) (ns_to_us ts)
  in
  let runtime_end ring ts ph =
    match phase_kind ph with
    | None -> ()
    | Some kind -> (
      match Hashtbl.find_opt st.st_open (ring, kind) with
      | None -> ()
      | Some t0 ->
        Hashtbl.remove st.st_open (ring, kind);
        let t1 = ns_to_us ts in
        if t1 > t0 then
          st.st_pending <-
            { iv_ring = ring; iv_kind = kind; iv_ts = t0; iv_dur = t1 -. t0 }
            :: st.st_pending)
  in
  let lost_events _ring n = st.st_lost <- st.st_lost + n in
  let cbs =
    Runtime_events.Callbacks.create ~runtime_begin ~runtime_end ~lost_events ()
  in
  Runtime_events.Callbacks.add_user_event Runtime_events.Type.int
    (fun _ring ts ev seq ->
      if String.equal (Runtime_events.User.name ev) calib_name then begin
        match
          List.find_map
            (fun (s, wall) -> if s = seq then Some wall else None)
            st.st_calib
        with
        | Some wall ->
          st.st_offset <- wall -. ns_to_us ts;
          st.st_have_offset <- true;
          st.st_calib <- List.filter (fun (s, _) -> s > seq) st.st_calib
        | None -> ()
      end)
    cbs

let write_calib st =
  if st.st_available then begin
    st.st_seq <- st.st_seq + 1;
    let wall = Obs.now_us () in
    Runtime_events.User.write (Lazy.force calib) st.st_seq;
    st.st_calib <- (st.st_seq, wall) :: st.st_calib
  end

(* Rebase pending intervals onto the Obs clock and inject each as an
   adjacent B/E pair on its ring's trace track (GC pauses then visually
   overlay realization waves in Perfetto).  Intervals stay buffered until
   a calibration offset exists. *)
let flush_pending st =
  match st.st_pending with
  | [] -> ()
  | _ when not st.st_have_offset -> ()
  | pending ->
    st.st_pending <- [];
    List.iter
      (fun iv ->
        let ts = iv.iv_ts +. st.st_offset in
        st.st_intervals <- { iv with iv_ts = ts } :: st.st_intervals;
        Obs.record_interval
          ~name:("gc." ^ iv.iv_kind)
          ~tid:iv.iv_ring ~ts_us:ts ~dur_us:iv.iv_dur [])
      (List.rev pending)

let drain st =
  match st.st_cursor with
  | None -> ()
  | Some cursor ->
    write_calib st;
    st.st_events <- st.st_events + Runtime_events.read_poll cursor (callbacks st) None;
    flush_pending st

let poll () = match Atomic.get current with None -> () | Some st -> drain st

(* -------------------------------------------------------------- phases *)

let enter_phase name =
  match Atomic.get current with
  | None -> ()
  | Some st -> st.st_open_phases <- (name, Obs.now_us ()) :: st.st_open_phases

let exit_phase name =
  match Atomic.get current with
  | None -> ()
  | Some st -> (
    match st.st_open_phases with
    | (n, t0) :: rest when String.equal n name ->
      st.st_open_phases <- rest;
      st.st_phases <- (name, t0, Obs.now_us ()) :: st.st_phases
    | _ -> ())

let with_phase name f =
  match Atomic.get current with
  | None -> f ()
  | Some _ ->
    enter_phase name;
    Fun.protect ~finally:(fun () -> exit_phase name) f

(* ----------------------------------------------------------- lifecycle *)

let force_env () =
  match Sys.getenv_opt "FBP_PROFILE_FORCE_UNAVAILABLE" with
  | Some "1" -> true
  | _ -> false

let start ?(force_unavailable = false) () =
  match Atomic.get current with
  | Some _ -> ()
  | None ->
    let cursor =
      if force_unavailable || force_env () then None
      else
        try
          Runtime_events.start ();
          (try Runtime_events.resume () with _ -> ());
          Some (Runtime_events.create_cursor None)
        with _ -> None
    in
    let st =
      {
        st_lock = Mutex.create ();
        st_available = (match cursor with Some _ -> true | None -> false);
        st_cursor = cursor;
        st_start_us = Obs.now_us ();
        st_main_tid = (Domain.self () :> int);
        st_open = Hashtbl.create 32;
        st_pool = [];
        st_pool_n = 0;
        st_pending = [];
        st_intervals = [];
        st_events = 0;
        st_lost = 0;
        st_offset = 0.0;
        st_have_offset = false;
        st_calib = [];
        st_seq = 0;
        st_open_phases = [];
        st_phases = [];
      }
    in
    Atomic.set current (Some st);
    Fbp_util.Pool.set_profile_hook (fun ev -> on_pool_event st ev);
    write_calib st

(* ----------------------------------------------------- summarization *)

(* Merge overlapping same-ring intervals into disjoint pauses, labelling
   each merged pause with its longest contributing kind (minor sits inside
   stw_leader, minor_leave_barrier inside stw_handler — the union is the
   honest "domain was not running mutator code" time). *)
let merge_pauses ivs =
  let sorted =
    List.sort (fun a b -> Float.compare a.iv_ts b.iv_ts) ivs
  in
  let close acc (t0, t1, kind, _) =
    { iv_ring = 0; iv_kind = kind; iv_ts = t0; iv_dur = t1 -. t0 } :: acc
  in
  let rec go acc cur = function
    | [] -> (match cur with None -> acc | Some c -> close acc c)
    | iv :: rest -> (
      let e = iv.iv_ts +. iv.iv_dur in
      match cur with
      | None -> go acc (Some (iv.iv_ts, e, iv.iv_kind, iv.iv_dur)) rest
      | Some (t0, t1, kind, best) ->
        if iv.iv_ts <= t1 then
          let kind, best =
            if iv.iv_dur > best then (iv.iv_kind, iv.iv_dur) else (kind, best)
          in
          go acc (Some (t0, Float.max t1 e, kind, best)) rest
        else go (close acc (t0, t1, kind, best)) (Some (iv.iv_ts, e, iv.iv_kind, iv.iv_dur)) rest)
  in
  List.rev (go [] None sorted)

(* Clamp an interval to the observation window; None when fully outside. *)
let clamp_iv ~lo ~hi iv =
  let t0 = Float.max iv.iv_ts lo in
  let t1 = Float.min (iv.iv_ts +. iv.iv_dur) hi in
  if t1 > t0 then Some { iv with iv_ts = t0; iv_dur = t1 -. t0 } else None

type occ_state = Busy | Spin | Park

(* Fold one worker's pool samples into (state, t0, t1) segments covering
   the whole window, then carve the ring's STW pauses out of whichever
   segment they land in — so busy + spin + park + stw sums to the window
   by construction. *)
let worker_occupancy ~lo ~hi samples pauses =
  let initial =
    match samples with
    | [] -> Park
    | s :: _ -> (
      match s.ps_kind with
      | Fbp_util.Pool.Pe_park_end -> Park
      | Pe_spin_end -> Spin
      | Pe_run_end | Pe_chunk_begin _ | Pe_chunk_end _ -> Busy
      | Pe_park_begin | Pe_spin_begin | Pe_run_begin | Pe_submit _ -> Park)
  in
  let segs = ref [] in
  let close state t0 t1 = if t1 > t0 then segs := (state, t0, t1) :: !segs in
  let cur = ref initial and cur_t = ref lo and chunks = ref 0 in
  List.iter
    (fun s ->
      let next =
        match s.ps_kind with
        | Fbp_util.Pool.Pe_park_begin -> Some Park
        | Pe_park_end -> Some Busy
        | Pe_spin_begin -> Some Spin
        | Pe_spin_end -> Some Busy
        | Pe_run_begin -> Some Busy
        | Pe_run_end -> Some Busy
        | Pe_chunk_begin _ ->
          incr chunks;
          None
        | Pe_chunk_end _ | Pe_submit _ -> None
      in
      match next with
      | None -> ()
      | Some state ->
        let ts = Float.max lo (Float.min s.ps_ts hi) in
        close !cur !cur_t ts;
        cur := state;
        cur_t := ts)
    samples;
  close !cur !cur_t hi;
  let segs = Array.of_list (List.rev !segs) in
  let busy = ref 0.0 and spin = ref 0.0 and park = ref 0.0 in
  Array.iter
    (fun (state, t0, t1) ->
      let d = t1 -. t0 in
      match state with
      | Busy -> busy := !busy +. d
      | Spin -> spin := !spin +. d
      | Park -> park := !park +. d)
    segs;
  (* carve out the STW pauses: both lists are time-sorted and disjoint *)
  let stw = ref 0.0 and i = ref 0 in
  let n = Array.length segs in
  List.iter
    (fun p ->
      let p0 = p.iv_ts and p1 = p.iv_ts +. p.iv_dur in
      stw := !stw +. (p1 -. p0);
      while !i < n && (match segs.(!i) with _, _, t1 -> t1 <= p0) do incr i done;
      let j = ref !i in
      while
        !j < n && (match segs.(!j) with _, t0, _ -> t0 < p1)
      do
        let state, t0, t1 = segs.(!j) in
        let ov = Float.min t1 p1 -. Float.max t0 p0 in
        if ov > 0.0 then begin
          match state with
          | Busy -> busy := !busy -. ov
          | Spin -> spin := !spin -. ov
          | Park -> park := !park -. ov
        end;
        incr j
      done)
    pauses;
  (Float.max 0.0 !busy, Float.max 0.0 !spin, Float.max 0.0 !park, !stw, !chunks)

let summarize st stop_us =
  let lo = st.st_start_us in
  let hi = Float.max stop_us lo in
  let wall = hi -. lo in
  let pool = Mutex.protect st.st_lock (fun () -> List.rev st.st_pool) in
  let ivs =
    List.filter_map (clamp_iv ~lo ~hi) (List.rev st.st_intervals)
  in
  let total kind =
    List.fold_left
      (fun acc iv -> if String.equal iv.iv_kind kind then acc +. iv.iv_dur else acc)
      0.0 ivs
  in
  let count kind =
    List.fold_left
      (fun acc iv -> if String.equal iv.iv_kind kind then acc + 1 else acc)
      0 ivs
  in
  let minor_us = total "minor" in
  let major_us = total "major" +. total "major_slice" in
  let leader_n = count "stw_leader" in
  let stw_count = if leader_n > 0 then leader_n else count "minor" in
  (* per-ring merged pauses (the "domain was stopped" union) *)
  let rings = Hashtbl.create 8 in
  List.iter
    (fun iv ->
      let l =
        match Hashtbl.find_opt rings iv.iv_ring with Some l -> l | None -> []
      in
      Hashtbl.replace rings iv.iv_ring (iv :: l))
    ivs;
  let ring_pauses =
    Hashtbl.fold
      (fun ring l acc ->
        let merged =
          List.map (fun p -> { p with iv_ring = ring }) (merge_pauses l)
        in
        (ring, merged) :: acc)
      rings []
  in
  let pauses_of ring =
    match
      List.find_map
        (fun (r, l) -> if r = ring then Some l else None)
        ring_pauses
    with
    | Some l -> l
    | None -> []
  in
  (* pool samples per worker id (wid >= 0); owner samples keep wid = -1 *)
  let by_wid = Hashtbl.create 8 in
  let wid_tid = Hashtbl.create 8 in
  let main_chunks = ref 0 in
  let submits = ref [] in
  let helper_runs = ref [] in
  List.iter
    (fun s ->
      if s.ps_wid >= 0 then begin
        Hashtbl.replace wid_tid s.ps_wid s.ps_tid;
        let l =
          match Hashtbl.find_opt by_wid s.ps_wid with Some l -> l | None -> []
        in
        Hashtbl.replace by_wid s.ps_wid (s :: l);
        match s.ps_kind with
        | Fbp_util.Pool.Pe_run_begin -> helper_runs := s.ps_ts :: !helper_runs
        | _ -> ()
      end
      else begin
        match s.ps_kind with
        | Fbp_util.Pool.Pe_chunk_begin _ ->
          if s.ps_tid = st.st_main_tid then incr main_chunks
        | Pe_submit _ ->
          if s.ps_tid = st.st_main_tid then submits := s.ps_ts :: !submits
        | _ -> ()
      end)
    pool;
  let domains = ref [] in
  let seen_rings = ref [] in
  let note_ring r = seen_rings := r :: !seen_rings in
  (* main domain: busy whenever it is not stopped in a GC rendezvous *)
  let main_pauses = pauses_of st.st_main_tid in
  let main_stw = List.fold_left (fun a p -> a +. p.iv_dur) 0.0 main_pauses in
  note_ring st.st_main_tid;
  domains :=
    {
      d_tid = st.st_main_tid;
      d_wid = -1;
      d_wall_us = wall;
      d_busy_us = Float.max 0.0 (wall -. main_stw);
      d_spin_us = 0.0;
      d_park_us = 0.0;
      d_stw_us = main_stw;
      d_stw_n = List.length main_pauses;
      d_chunks = !main_chunks;
    }
    :: !domains;
  Hashtbl.iter
    (fun wid samples ->
      let samples = List.rev samples in
      let tid =
        match Hashtbl.find_opt wid_tid wid with Some t -> t | None -> -1
      in
      let pauses = pauses_of tid in
      note_ring tid;
      let busy, spin, park, stw, chunks =
        worker_occupancy ~lo ~hi samples pauses
      in
      domains :=
        {
          d_tid = tid;
          d_wid = wid;
          d_wall_us = wall;
          d_busy_us = busy;
          d_spin_us = spin;
          d_park_us = park;
          d_stw_us = stw;
          d_stw_n = List.length pauses;
          d_chunks = chunks;
        }
        :: !domains)
    by_wid;
  (* rings with GC activity but no pool mapping: foreign or pre-existing
     parked domains — the PR 7 signature shape (pure park plus STW tax) *)
  List.iter
    (fun (ring, pauses) ->
      if not (List.exists (fun r -> r = ring) !seen_rings) then begin
        let stw = List.fold_left (fun a p -> a +. p.iv_dur) 0.0 pauses in
        domains :=
          {
            d_tid = ring;
            d_wid = -2;
            d_wall_us = wall;
            d_busy_us = 0.0;
            d_spin_us = 0.0;
            d_park_us = Float.max 0.0 (wall -. stw);
            d_stw_us = stw;
            d_stw_n = List.length pauses;
            d_chunks = 0;
          }
          :: !domains
      end)
    ring_pauses;
  let domains =
    List.sort (fun a b -> Int.compare a.d_tid b.d_tid) !domains
  in
  (* submit -> first helper run latency (mean over matched submissions) *)
  let submits_l = List.rev !submits in
  let runs = List.sort Float.compare !helper_runs in
  let lat_sum = ref 0.0 and lat_n = ref 0 in
  List.iter
    (fun s ->
      match List.find_opt (fun r -> r >= s) runs with
      | Some r ->
        lat_sum := !lat_sum +. (r -. s);
        incr lat_n
      | None -> ())
    submits_l;
  let submit_latency = if !lat_n > 0 then !lat_sum /. float_of_int !lat_n else 0.0 in
  (* phase attribution: a pause belongs to the innermost registered phase
     interval containing its midpoint *)
  let completed =
    List.rev_append st.st_phases
      (List.map (fun (n, t0) -> (n, t0, hi)) st.st_open_phases)
  in
  let phase_order = ref [] in
  let phase_tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, t0, t1) ->
      let wall0, gc, n =
        match Hashtbl.find_opt phase_tbl name with
        | Some v -> v
        | None ->
          phase_order := name :: !phase_order;
          (0.0, 0.0, 0)
      in
      Hashtbl.replace phase_tbl name (wall0 +. (t1 -. t0), gc, n))
    completed;
  let attribute p =
    let mid = p.iv_ts +. (p.iv_dur /. 2.0) in
    let best = ref None in
    List.iter
      (fun (name, t0, t1) ->
        if t0 <= mid && mid <= t1 then
          match !best with
          | Some (_, bt0) when bt0 >= t0 -> ()
          | _ -> best := Some (name, t0))
      completed;
    Option.map fst !best
  in
  let all_pauses = List.concat_map snd ring_pauses in
  List.iter
    (fun p ->
      match attribute p with
      | None -> ()
      | Some name -> (
        match Hashtbl.find_opt phase_tbl name with
        | None -> ()
        | Some (w, gc, n) ->
          Hashtbl.replace phase_tbl name (w, gc +. p.iv_dur, n + 1)))
    all_pauses;
  let phases =
    List.rev_map
      (fun name ->
        let w, gc, n =
          match Hashtbl.find_opt phase_tbl name with
          | Some v -> v
          | None -> (0.0, 0.0, 0)
        in
        { ph_name = name; ph_wall_us = w; ph_gc_us = gc; ph_gc_n = n })
      !phase_order
  in
  let top =
    let sorted =
      List.sort (fun a b -> Float.compare b.iv_dur a.iv_dur) all_pauses
    in
    List.filteri (fun i _ -> i < top_pause_count) sorted
    |> List.map (fun p ->
           { p_tid = p.iv_ring; p_kind = p.iv_kind; p_ts_us = p.iv_ts;
             p_dur_us = p.iv_dur })
  in
  {
    s_available = st.st_available;
    s_wall_us = wall;
    s_events = st.st_events;
    s_lost = st.st_lost;
    s_pool_samples = st.st_pool_n;
    s_stw_count = stw_count;
    s_minor_us = minor_us;
    s_major_us = major_us;
    s_submits = List.length submits_l;
    s_submit_latency_us = submit_latency;
    s_domains = domains;
    s_phases = phases;
    s_top_pauses = top;
  }

(* Fallback calibration when every calib event was lost to ring overflow:
   align the earliest pending runtime event with profiler start. *)
let fallback_offset st =
  if not st.st_have_offset then begin
    match List.rev st.st_pending with
    | [] -> ()
    | first :: _ ->
      st.st_offset <- st.st_start_us -. first.iv_ts;
      st.st_have_offset <- true
  end

let snapshot () =
  match Atomic.get current with
  | None -> empty_summary
  | Some st ->
    drain st;
    fallback_offset st;
    flush_pending st;
    summarize st (Obs.now_us ())

let stop () =
  match Atomic.get current with
  | None -> empty_summary
  | Some st ->
    Fbp_util.Pool.clear_profile_hook ();
    drain st;
    fallback_offset st;
    flush_pending st;
    (match st.st_cursor with
    | None -> ()
    | Some cursor ->
      (try Runtime_events.free_cursor cursor with _ -> ());
      (try Runtime_events.pause () with _ -> ()));
    let stop_us = Obs.now_us () in
    Atomic.set current None;
    summarize st stop_us

(* ---------------------------------------------------------------- JSON *)

let jnum v = J.Num v
let jint i = J.Num (float_of_int i)

let summary_json s =
  let domain d =
    J.Obj
      [
        ("tid", jint d.d_tid);
        ("wid", jint d.d_wid);
        ("wall_us", jnum d.d_wall_us);
        ("busy_us", jnum d.d_busy_us);
        ("spin_us", jnum d.d_spin_us);
        ("park_us", jnum d.d_park_us);
        ("stw_us", jnum d.d_stw_us);
        ("stw_n", jint d.d_stw_n);
        ("chunks", jint d.d_chunks);
      ]
  in
  let phase p =
    J.Obj
      [
        ("name", J.Str p.ph_name);
        ("wall_us", jnum p.ph_wall_us);
        ("gc_us", jnum p.ph_gc_us);
        ("gc_n", jint p.ph_gc_n);
      ]
  in
  let pause p =
    J.Obj
      [
        ("tid", jint p.p_tid);
        ("kind", J.Str p.p_kind);
        ("ts_us", jnum p.p_ts_us);
        ("dur_us", jnum p.p_dur_us);
      ]
  in
  J.Obj
    [
      ("schema", J.Str "fbp-profile");
      ("available", J.Bool s.s_available);
      ("wall_us", jnum s.s_wall_us);
      ("events", jint s.s_events);
      ("lost", jint s.s_lost);
      ("pool_samples", jint s.s_pool_samples);
      ("stw_count", jint s.s_stw_count);
      ("minor_us", jnum s.s_minor_us);
      ("major_us", jnum s.s_major_us);
      ("submits", jint s.s_submits);
      ("submit_latency_us", jnum s.s_submit_latency_us);
      ("domains", J.Arr (List.map domain s.s_domains));
      ("phases", J.Arr (List.map phase s.s_phases));
      ("top_pauses", J.Arr (List.map pause s.s_top_pauses));
    ]

let summary_of_json j =
  let ( let* ) = Result.bind in
  let num k o =
    match J.member k o with
    | Some (J.Num f) -> Ok f
    | _ -> Error (Printf.sprintf "profile: missing number %S" k)
  in
  let int_ k o = Result.map int_of_float (num k o) in
  let str k o =
    match J.member k o with
    | Some (J.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "profile: missing string %S" k)
  in
  let bool_ k o =
    match J.member k o with
    | Some (J.Bool b) -> Ok b
    | _ -> Error (Printf.sprintf "profile: missing bool %S" k)
  in
  let arr k o =
    match J.member k o with
    | Some (J.Arr l) -> Ok l
    | _ -> Error (Printf.sprintf "profile: missing array %S" k)
  in
  let map_m f l =
    List.fold_left
      (fun acc x ->
        let* acc = acc in
        let* v = f x in
        Ok (v :: acc))
      (Ok []) l
    |> Result.map List.rev
  in
  let domain o =
    let* d_tid = int_ "tid" o in
    let* d_wid = int_ "wid" o in
    let* d_wall_us = num "wall_us" o in
    let* d_busy_us = num "busy_us" o in
    let* d_spin_us = num "spin_us" o in
    let* d_park_us = num "park_us" o in
    let* d_stw_us = num "stw_us" o in
    let* d_stw_n = int_ "stw_n" o in
    let* d_chunks = int_ "chunks" o in
    Ok
      { d_tid; d_wid; d_wall_us; d_busy_us; d_spin_us; d_park_us; d_stw_us;
        d_stw_n; d_chunks }
  in
  let phase o =
    let* ph_name = str "name" o in
    let* ph_wall_us = num "wall_us" o in
    let* ph_gc_us = num "gc_us" o in
    let* ph_gc_n = int_ "gc_n" o in
    Ok { ph_name; ph_wall_us; ph_gc_us; ph_gc_n }
  in
  let pause o =
    let* p_tid = int_ "tid" o in
    let* p_kind = str "kind" o in
    let* p_ts_us = num "ts_us" o in
    let* p_dur_us = num "dur_us" o in
    Ok { p_tid; p_kind; p_ts_us; p_dur_us }
  in
  let* s_available = bool_ "available" j in
  let* s_wall_us = num "wall_us" j in
  let* s_events = int_ "events" j in
  let* s_lost = int_ "lost" j in
  let* s_pool_samples = int_ "pool_samples" j in
  let* s_stw_count = int_ "stw_count" j in
  let* s_minor_us = num "minor_us" j in
  let* s_major_us = num "major_us" j in
  let* s_submits = int_ "submits" j in
  let* s_submit_latency_us = num "submit_latency_us" j in
  let* domains = arr "domains" j in
  let* s_domains = map_m domain domains in
  let* phases = arr "phases" j in
  let* s_phases = map_m phase phases in
  let* pauses = arr "top_pauses" j in
  let* s_top_pauses = map_m pause pauses in
  Ok
    {
      s_available;
      s_wall_us;
      s_events;
      s_lost;
      s_pool_samples;
      s_stw_count;
      s_minor_us;
      s_major_us;
      s_submits;
      s_submit_latency_us;
      s_domains;
      s_phases;
      s_top_pauses;
    }

(* -------------------------------------------------------------- render *)

let ms us = us /. 1e3

let pct part whole = if whole > 0.0 then 100.0 *. part /. whole else 0.0

let role d =
  if d.d_wid = -1 then "main"
  else if d.d_wid = -2 then "other"
  else Printf.sprintf "w%d" d.d_wid

let render s =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "profile: wall %.1f ms, %d runtime events (%d lost), %d pool samples%s\n"
    (ms s.s_wall_us) s.s_events s.s_lost s.s_pool_samples
    (if s.s_available then "" else "  [Runtime_events unavailable]");
  add "gc: %d STW rendezvous, minor %.1f ms, major %.1f ms\n" s.s_stw_count
    (ms s.s_minor_us) (ms s.s_major_us);
  if s.s_submits > 0 then
    add "lease: %d submissions, mean epoch-bump latency %.1f us\n" s.s_submits
      s.s_submit_latency_us;
  add "%-5s %-6s %7s %7s %7s %7s %9s %7s %7s\n" "tid" "role" "busy%" "spin%"
    "park%" "stw%" "stw ms" "pauses" "chunks";
  List.iter
    (fun d ->
      add "%-5d %-6s %7.1f %7.1f %7.1f %7.1f %9.2f %7d %7d\n" d.d_tid (role d)
        (pct d.d_busy_us d.d_wall_us)
        (pct d.d_spin_us d.d_wall_us)
        (pct d.d_park_us d.d_wall_us)
        (pct d.d_stw_us d.d_wall_us)
        (ms d.d_stw_us) d.d_stw_n d.d_chunks)
    s.s_domains;
  if s.s_phases <> [] then begin
    add "%-14s %10s %9s %6s %7s\n" "phase" "wall ms" "gc ms" "gc%" "pauses";
    List.iter
      (fun p ->
        add "%-14s %10.1f %9.2f %6.1f %7d\n" p.ph_name (ms p.ph_wall_us)
          (ms p.ph_gc_us)
          (pct p.ph_gc_us p.ph_wall_us)
          p.ph_gc_n)
      s.s_phases
  end;
  if s.s_top_pauses <> [] then begin
    add "top pauses:";
    List.iter
      (fun p ->
        add " [tid %d] %s %.2f ms @ %.1f ms;" p.p_tid p.p_kind (ms p.p_dur_us)
          (ms p.p_ts_us))
      s.s_top_pauses;
    add "\n"
  end;
  Buffer.contents b
