(* Quality flight recorder: per-level placement snapshots, serialized as a
   versioned run-record JSON.

   Same discipline as [Obs]: one atomic flag guards every hook, one mutex
   guards all mutation (hooks fire at level granularity, far too rarely for
   the lock to matter).  Serialization goes through [Obs.Json] in both
   directions so write -> parse round-trips exactly (floats are emitted with
   enough digits; non-finite values map to JSON null and back to nan). *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  major_collections : int;
  compactions : int;
  heap_words : int;
}

type level = {
  level : int;
  nx : int;
  ny : int;
  n_windows : int;
  n_pieces : int;
  flow_nodes : int;
  flow_edges : int;
  hpwl : float;
  density_overflow : float;
  mb_violations : int;
  cg_iterations : int;
  cg_residual : float;
  cg_converged : bool;
  mcf_cost : float;
  mcf_rounds : int;
  waves : int;
  shipped_cells : int;
  fallback_cells : int;
  qp_time : float;
  flow_time : float;
  realization_time : float;
  gc : gc_delta;
}

type legalization = {
  leg_hpwl : float;
  leg_density_overflow : float;
  leg_mb_violations : int;
  leg_time : float;
  spilled : int;
  failed : int;
  avg_displacement : float;
  max_displacement : float;
}

type density_map = {
  dnx : int;
  dny : int;
  usage : float array;
  capacity : float array;
}

(* Execution environment: artifacts measured on a 1-core container under
   the hardware clamp must be distinguishable from real multi-core runs,
   or BENCH/profile numbers get compared across incomparable machines. *)
type host = {
  hw_clamp : bool;  (* Config.hw_clamp for this run *)
  hardware_domains : int;  (* Pool.hardware_domains on this machine *)
  eff_domains : int;  (* configured domain count after resolution *)
  peak_rss_kb : int option;  (* VmHWM; None off Linux *)
}

type provenance = {
  design : string;
  cells : int;
  nets : int;
  movebounds : int;
  seed : int option;
  tool : string;
  config : (string * string) list;
  host : host option;
}

type totals = {
  hpwl : float;
  global_time : float;
  legalize_time : float;
  total_time : float;
  legal : bool;
  violations : int;
}

type t = {
  version : int;
  provenance : provenance;
  levels : level list;
  legalization : legalization option;
  density : density_map option;
  totals : totals option;
  metrics : Obs.Json.t option;
  profile : Profiler.summary option;
}

let schema_name = "fbp-run-record"
let schema_version = 1

let no_provenance =
  { design = ""; cells = 0; nets = 0; movebounds = 0; seed = None; tool = "";
    config = []; host = None }

(* ------------------------------------------- process-global recorder *)

let enabled_flag = Atomic.make false
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let provenance_r = ref no_provenance
let levels_r : level list ref = ref []  (* reversed *)
let legalization_r : legalization option ref = ref None
let density_r : density_map option ref = ref None
let totals_r : totals option ref = ref None
let metrics_r : Obs.Json.t option ref = ref None
let profile_r : Profiler.summary option ref = ref None
(* quick_stat's minor_words is only refreshed at GC events on OCaml 5;
   Gc.minor_words reads the live allocation pointer, so the mark carries
   both *)
let gc_mark : (Gc.stat * float) option ref = ref None

let gc_now () = (Gc.quick_stat (), Gc.minor_words ())

let enabled () = Atomic.get enabled_flag

let enable () =
  Atomic.set enabled_flag true;
  with_lock (fun () -> if !gc_mark = None then gc_mark := Some (gc_now ()))

let disable () = Atomic.set enabled_flag false

let reset () =
  with_lock (fun () ->
      provenance_r := no_provenance;
      levels_r := [];
      legalization_r := None;
      density_r := None;
      totals_r := None;
      metrics_r := None;
      profile_r := None;
      gc_mark := Some (gc_now ()))

let set_provenance p = if enabled () then with_lock (fun () -> provenance_r := p)

let set_host h =
  if enabled () then
    with_lock (fun () -> provenance_r := { !provenance_r with host = Some h })

let zero_gc =
  { minor_words = 0.0; major_words = 0.0; major_collections = 0;
    compactions = 0; heap_words = 0 }

let gc_boundary () =
  if not (enabled ()) then zero_gc
  else
    let now = gc_now () in
    with_lock (fun () ->
        let (base, base_minor), (s, minor) =
          ((match !gc_mark with Some b -> b | None -> now), now)
        in
        gc_mark := Some now;
        {
          minor_words = minor -. base_minor;
          major_words = s.Gc.major_words -. base.Gc.major_words;
          major_collections = s.Gc.major_collections - base.Gc.major_collections;
          compactions = s.Gc.compactions - base.Gc.compactions;
          heap_words = s.Gc.heap_words;
        })

let record_level l = if enabled () then with_lock (fun () -> levels_r := l :: !levels_r)

let record_legalization l =
  if enabled () then with_lock (fun () -> legalization_r := Some l)

let set_density d = if enabled () then with_lock (fun () -> density_r := Some d)
let set_totals t = if enabled () then with_lock (fun () -> totals_r := Some t)
let set_metrics m = if enabled () then with_lock (fun () -> metrics_r := Some m)
let set_profile p = if enabled () then with_lock (fun () -> profile_r := Some p)

let current () =
  with_lock (fun () ->
      {
        version = schema_version;
        provenance = !provenance_r;
        levels = List.rev !levels_r;
        legalization = !legalization_r;
        density = !density_r;
        totals = !totals_r;
        metrics = !metrics_r;
        profile = !profile_r;
      })

(* ------------------------------------------------------- serialization *)

module J = Obs.Json

let jnum f = if Float.is_finite f then J.Num f else J.Null
let jint i = J.Num (float_of_int i)
let jopt enc = function Some v -> enc v | None -> J.Null

let gc_to_json g =
  J.Obj
    [
      ("minor_words", jnum g.minor_words);
      ("major_words", jnum g.major_words);
      ("major_collections", jint g.major_collections);
      ("compactions", jint g.compactions);
      ("heap_words", jint g.heap_words);
    ]

let level_to_json (l : level) =
  J.Obj
    [
      ("level", jint l.level);
      ("nx", jint l.nx);
      ("ny", jint l.ny);
      ("n_windows", jint l.n_windows);
      ("n_pieces", jint l.n_pieces);
      ("flow_nodes", jint l.flow_nodes);
      ("flow_edges", jint l.flow_edges);
      ("hpwl", jnum l.hpwl);
      ("density_overflow", jnum l.density_overflow);
      ("mb_violations", jint l.mb_violations);
      ("cg_iterations", jint l.cg_iterations);
      ("cg_residual", jnum l.cg_residual);
      ("cg_converged", J.Bool l.cg_converged);
      ("mcf_cost", jnum l.mcf_cost);
      ("mcf_rounds", jint l.mcf_rounds);
      ("waves", jint l.waves);
      ("shipped_cells", jint l.shipped_cells);
      ("fallback_cells", jint l.fallback_cells);
      ("qp_time", jnum l.qp_time);
      ("flow_time", jnum l.flow_time);
      ("realization_time", jnum l.realization_time);
      ("gc", gc_to_json l.gc);
    ]

let legalization_to_json (l : legalization) =
  J.Obj
    [
      ("hpwl", jnum l.leg_hpwl);
      ("density_overflow", jnum l.leg_density_overflow);
      ("mb_violations", jint l.leg_mb_violations);
      ("time", jnum l.leg_time);
      ("spilled", jint l.spilled);
      ("failed", jint l.failed);
      ("avg_displacement", jnum l.avg_displacement);
      ("max_displacement", jnum l.max_displacement);
    ]

let density_to_json (d : density_map) =
  J.Obj
    [
      ("nx", jint d.dnx);
      ("ny", jint d.dny);
      ("usage", J.Arr (Array.to_list (Array.map jnum d.usage)));
      ("capacity", J.Arr (Array.to_list (Array.map jnum d.capacity)));
    ]

let host_to_json (h : host) =
  J.Obj
    [
      ("hw_clamp", J.Bool h.hw_clamp);
      ("hardware_domains", jint h.hardware_domains);
      ("eff_domains", jint h.eff_domains);
      ("peak_rss_kb", jopt jint h.peak_rss_kb);
    ]

let provenance_to_json (p : provenance) =
  J.Obj
    [
      ("design", J.Str p.design);
      ("cells", jint p.cells);
      ("nets", jint p.nets);
      ("movebounds", jint p.movebounds);
      ("seed", jopt jint p.seed);
      ("tool", J.Str p.tool);
      ("config", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) p.config));
      ("host", jopt host_to_json p.host);
    ]

let totals_to_json (t : totals) =
  J.Obj
    [
      ("hpwl", jnum t.hpwl);
      ("global_time", jnum t.global_time);
      ("legalize_time", jnum t.legalize_time);
      ("total_time", jnum t.total_time);
      ("legal", J.Bool t.legal);
      ("violations", jint t.violations);
    ]

let to_json (t : t) =
  J.to_string
    (J.Obj
       [
         ("schema", J.Str schema_name);
         ("version", jint t.version);
         ("provenance", provenance_to_json t.provenance);
         ("levels", J.Arr (List.map level_to_json t.levels));
         ("legalization", jopt legalization_to_json t.legalization);
         ("density", jopt density_to_json t.density);
         ("totals", jopt totals_to_json t.totals);
         ("metrics", jopt Fun.id t.metrics);
         ("profile", jopt Profiler.summary_json t.profile);
       ])
  ^ "\n"

exception Decode of string

let dfail fmt = Printf.ksprintf (fun s -> raise (Decode s)) fmt
let mem k o = match J.member k o with Some v -> v | None -> dfail "missing %S" k

let num k o =
  match mem k o with
  | J.Num f -> f
  | J.Null -> Float.nan  (* non-finite values serialize as null *)
  | _ -> dfail "%S is not a number" k

let int_ k o =
  let f = num k o in
  if Float.is_integer f then int_of_float f else dfail "%S is not an integer" k

let str k o = match mem k o with J.Str s -> s | _ -> dfail "%S is not a string" k
let bool_ k o = match mem k o with J.Bool b -> b | _ -> dfail "%S is not a bool" k

let opt k o dec = match J.member k o with None | Some J.Null -> None | Some v -> Some (dec v)

let float_array k o =
  match mem k o with
  | J.Arr xs ->
    Array.of_list
      (List.map (function J.Num f -> f | J.Null -> Float.nan | _ -> dfail "%S has a non-number" k) xs)
  | _ -> dfail "%S is not an array" k

let gc_of_json o =
  {
    minor_words = num "minor_words" o;
    major_words = num "major_words" o;
    major_collections = int_ "major_collections" o;
    compactions = int_ "compactions" o;
    heap_words = int_ "heap_words" o;
  }

let level_of_json o =
  {
    level = int_ "level" o;
    nx = int_ "nx" o;
    ny = int_ "ny" o;
    n_windows = int_ "n_windows" o;
    n_pieces = int_ "n_pieces" o;
    flow_nodes = int_ "flow_nodes" o;
    flow_edges = int_ "flow_edges" o;
    hpwl = num "hpwl" o;
    density_overflow = num "density_overflow" o;
    mb_violations = int_ "mb_violations" o;
    cg_iterations = int_ "cg_iterations" o;
    cg_residual = num "cg_residual" o;
    cg_converged = bool_ "cg_converged" o;
    mcf_cost = num "mcf_cost" o;
    mcf_rounds = int_ "mcf_rounds" o;
    waves = int_ "waves" o;
    shipped_cells = int_ "shipped_cells" o;
    fallback_cells = int_ "fallback_cells" o;
    qp_time = num "qp_time" o;
    flow_time = num "flow_time" o;
    realization_time = num "realization_time" o;
    gc = gc_of_json (mem "gc" o);
  }

let legalization_of_json o =
  {
    leg_hpwl = num "hpwl" o;
    leg_density_overflow = num "density_overflow" o;
    leg_mb_violations = int_ "mb_violations" o;
    leg_time = num "time" o;
    spilled = int_ "spilled" o;
    failed = int_ "failed" o;
    avg_displacement = num "avg_displacement" o;
    max_displacement = num "max_displacement" o;
  }

let density_of_json o =
  let d =
    {
      dnx = int_ "nx" o;
      dny = int_ "ny" o;
      usage = float_array "usage" o;
      capacity = float_array "capacity" o;
    }
  in
  if Array.length d.usage <> d.dnx * d.dny
     || Array.length d.capacity <> d.dnx * d.dny
  then dfail "density bin arrays do not match nx*ny"
  else d

let host_of_json o =
  {
    hw_clamp = bool_ "hw_clamp" o;
    hardware_domains = int_ "hardware_domains" o;
    eff_domains = int_ "eff_domains" o;
    peak_rss_kb =
      opt "peak_rss_kb" o
        (function J.Num f -> int_of_float f | _ -> dfail "bad peak_rss_kb");
  }

let provenance_of_json o =
  {
    design = str "design" o;
    cells = int_ "cells" o;
    nets = int_ "nets" o;
    movebounds = int_ "movebounds" o;
    seed = opt "seed" o (function J.Num f -> int_of_float f | _ -> dfail "bad seed");
    tool = str "tool" o;
    config =
      (match mem "config" o with
       | J.Obj kvs ->
         List.map
           (fun (k, v) ->
             match v with J.Str s -> (k, s) | _ -> dfail "config value for %S" k)
           kvs
       | _ -> dfail "\"config\" is not an object");
    host = opt "host" o host_of_json;
  }

let totals_of_json o =
  {
    hpwl = num "hpwl" o;
    global_time = num "global_time" o;
    legalize_time = num "legalize_time" o;
    total_time = num "total_time" o;
    legal = bool_ "legal" o;
    violations = int_ "violations" o;
  }

let of_json doc =
  match J.parse doc with
  | Error msg -> Error ("JSON parse failed: " ^ msg)
  | Ok root ->
    (try
       let schema = str "schema" root in
       if schema <> schema_name then dfail "not a run record (schema %S)" schema;
       let version = int_ "version" root in
       if version > schema_version then
         dfail "run-record version %d is newer than supported %d" version
           schema_version;
       let levels =
         match mem "levels" root with
         | J.Arr ls -> List.map level_of_json ls
         | _ -> dfail "\"levels\" is not an array"
       in
       Ok
         {
           version;
           provenance = provenance_of_json (mem "provenance" root);
           levels;
           legalization = opt "legalization" root legalization_of_json;
           density = opt "density" root density_of_json;
           totals = opt "totals" root totals_of_json;
           metrics = opt "metrics" root Fun.id;
           profile =
             opt "profile" root (fun v ->
                 match Profiler.summary_of_json v with
                 | Ok s -> s
                 | Error e -> dfail "%s" e);
         }
     with Decode msg -> Error msg)

let write_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_json t))

let write_current path = write_file path (current ())

let read_file path =
  let ic = open_in_bin path in
  let doc =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json doc

(* fbp-lint: allow float-discipline — total order incl. nan: JSON null round-trips to nan and must compare equal *)
let equal (a : t) (b : t) = compare a b = 0

(* ------------------------------------------------------------ run diff *)

type regression = {
  metric : string;
  base_value : float;
  cand_value : float;
  limit : string;
}

type comparison = {
  regressions : regression list;
  lines : string list;
}

let final_hpwl (t : t) =
  match t.totals with
  | Some tt -> Some tt.hpwl
  | None ->
    (match t.legalization with
     | Some l -> Some l.leg_hpwl
     | None ->
       (match List.rev t.levels with l :: _ -> Some l.hpwl | [] -> None))

let total_time_of (t : t) =
  match t.totals with
  | Some tt -> Some tt.total_time
  | None ->
    (match t.levels with
     | [] -> None
     | ls ->
       Some
         (List.fold_left
            (fun acc (l : level) ->
              acc +. l.qp_time +. l.flow_time +. l.realization_time)
            0.0 ls))

let violations_of (t : t) =
  match t.totals with
  | Some tt -> Some tt.violations
  | None -> (match t.legalization with Some l -> Some l.leg_mb_violations | None -> None)

(* GC-pause footprint: summed merged STW time across domains.  Only
   defined when the run carried a profile section; diff gates on it only
   when both sides have one, so old records stay comparable. *)
let gc_pause_us (t : t) =
  match t.profile with
  | None -> None
  | Some s ->
    Some
      (List.fold_left
         (fun acc (d : Profiler.domain_summary) -> acc +. d.Profiler.d_stw_us)
         0.0 s.Profiler.s_domains)

let diff ?max_gc_regress ~max_hpwl_regress ~max_time_regress ~(base : t)
    ~(cand : t) () =
  let regressions = ref [] and lines = ref [] in
  let line fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let regress metric base_value cand_value limit =
    regressions := { metric; base_value; cand_value; limit } :: !regressions
  in
  let pct b c = if Float.equal b 0.0 then 0.0 else 100.0 *. (c /. b -. 1.0) in
  let ratio_gate metric limit bo co =
    match (bo, co) with
    | Some b, Some c ->
      line "%-14s %14.6e -> %14.6e  (%+.2f%%, limit %+.1f%%)" metric b c
        (pct b c) (100.0 *. limit);
      if b > 0.0 && c /. b -. 1.0 > limit then
        regress metric b c (Printf.sprintf "+%.1f%%" (100.0 *. limit))
    | Some _, None -> regress metric 0.0 0.0 "metric missing from candidate"
    | _ -> line "%-14s (absent from baseline; not gated)" metric
  in
  ratio_gate "hpwl" max_hpwl_regress (final_hpwl base) (final_hpwl cand);
  ratio_gate "total_time" max_time_regress (total_time_of base) (total_time_of cand);
  (match (max_gc_regress, gc_pause_us base, gc_pause_us cand) with
   | Some limit, Some b, Some c ->
     line "%-14s %14.6e -> %14.6e  (%+.2f%%, limit %+.1f%% + 10ms floor)"
       "gc_pause_us" b c (pct b c) (100.0 *. limit);
     (* 10ms absolute floor: tiny runs jitter by whole pauses *)
     if c > (b *. (1.0 +. limit)) +. 10_000.0 then
       regress "gc_pause_us" b c (Printf.sprintf "+%.1f%%" (100.0 *. limit))
   | Some _, _, _ ->
     line "%-14s (profile absent from one side; not gated)" "gc_pause_us"
   | None, _, _ -> ());
  (match (violations_of base, violations_of cand) with
   | Some b, Some c ->
     line "%-14s %14d -> %14d  (limit: no increase)" "violations" b c;
     if c > b then regress "violations" (float_of_int b) (float_of_int c) "no increase"
   | _ -> ());
  (match (base.totals, cand.totals) with
   | Some bt, Some ct ->
     line "%-14s %14b -> %14b" "legal" bt.legal ct.legal;
     if bt.legal && not ct.legal then regress "legal" 1.0 0.0 "must stay legal"
   | _ -> ());
  line "%-14s %14d -> %14d" "levels" (List.length base.levels)
    (List.length cand.levels);
  { regressions = List.rev !regressions; lines = List.rev !lines }
