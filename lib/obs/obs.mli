(** Structured observability for the placement pipeline.

    Three primitives, all process-global and domain-safe:

    - {b spans} — nested begin/end intervals ({!span}) exported as Chrome
      trace-event JSON ({!write_trace}, loadable in [chrome://tracing] /
      Perfetto).  Each event carries the recording domain as its [tid], so
      parallel realization waves appear as concurrent tracks.
    - {b counters} — monotonic integer counts ({!count}).
    - {b histograms} — float observations ({!observe}) summarized at export
      time (count/sum/mean/min/max/p50/p90/p99 via {!Fbp_util.Stats}).

    Instrumentation is disabled by default: every probe first reads one
    atomic flag and returns, so a fully-probed solver chain costs well under
    5% when nothing is armed.  Enable with {!enable} (the CLI does this when
    [--trace] or [--metrics] is given), then export with {!write_trace} /
    {!write_metrics}.

    The span taxonomy and metric names used by the pipeline are documented
    in DESIGN.md ("Observability"). *)

(** [true] once {!enable} was called (and {!disable} was not). *)
val enabled : unit -> bool

val enable : unit -> unit
val disable : unit -> unit

(** Drop all recorded events, counters and histograms and restart the trace
    clock.  Does not change the enabled flag. *)
val reset : unit -> unit

(** [span name f] runs [f ()]; when enabled, records a begin event before
    and an end event after (also on exception).  [args] is evaluated only
    when enabled, so argument formatting is free on the disabled path.
    Spans nest; balance is guaranteed by construction. *)
val span : ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a

(** Microseconds on the trace clock (the axis of every span timestamp);
    restarts at {!reset}.  Meaningful whether or not recording is
    enabled. *)
val now_us : unit -> float

(** Unpaired span halves for callers whose begin and end sites cannot share
    a scope.  {!span} is the discipline — fbp-lint's [obs-discipline] rule
    flags any use of these outside [lib/obs]. *)
val span_begin : ?args:(unit -> (string * string) list) -> string -> unit

val span_end : string -> unit

(** [record_interval ~name ~tid ~ts_us ~dur_us args] appends a closed
    [B]/[E] pair for an interval measured elsewhere (the profiler's GC
    pauses).  The two events are adjacent in the stream, so trace balance
    is preserved by construction. *)
val record_interval :
  name:string ->
  tid:int ->
  ts_us:float ->
  dur_us:float ->
  (string * string) list ->
  unit

(** [count name] adds [n] (default 1) to the counter [name]. *)
val count : ?n:int -> string -> unit

(** [observe name v] appends [v] to the histogram [name]. *)
val observe : string -> float -> unit

(** Sample [Gc.quick_stat] into the registry: counters
    [gc.major_collections] / [gc.compactions] (totals since the last
    {!reset}) and a [gc.heap_words] histogram observation.  Intended to be
    called at level boundaries; a no-op (one atomic read) when disabled. *)
val sample_gc : unit -> unit

(** Current counter value; 0 when the counter was never touched. *)
val counter_value : string -> int

(** All values observed for [name], in recording order. *)
val histogram_values : string -> float array

(** Number of recorded trace events (begin + end). *)
val n_events : unit -> int

(** Chrome trace-event JSON ({["traceEvents"]} array of ["B"]/["E"] pairs,
    timestamps in microseconds since the trace clock start). *)
val trace_json : unit -> string

(** Metrics JSON: {["counters"]} (name → int) and {["histograms"]} (name →
    summary object), keys sorted. *)
val metrics_json : unit -> string

val write_trace : string -> unit
val write_metrics : string -> unit

(** Minimal JSON parser — enough to validate this module's own output and
    machine-read it from tests and tooling.  Numbers are [float]s; object
    member order is preserved. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  (** Parse a complete JSON document (trailing whitespace allowed). *)
  val parse : string -> (t, string) result

  (** First member with this key, when the value is an object. *)
  val member : string -> t -> t option

  (** Serialize (compact; floats round-trip through {!parse}). *)
  val to_string : t -> string
end

(** Validate a Chrome trace document: parses, has a ["traceEvents"] array,
    and every domain's begin/end events balance with matching names in
    stack (LIFO) order.  Returns the number of balanced span pairs. *)
val validate_trace : string -> (int, string) result

(** {!validate_trace} on a file's contents. *)
val validate_trace_file : string -> (int, string) result

(** Validate a metrics document against the documented schema: a
    ["counters"] object whose values are all integral numbers, a
    ["histograms"] object whose summaries carry [count] (plus
    [sum]/[p50]/[p90]/[p99] whenever [count > 0]), and both key sets in
    sorted order.  Returns the number of metrics validated. *)
val validate_metrics : string -> (int, string) result

(** {!validate_metrics} on a file's contents. *)
val validate_metrics_file : string -> (int, string) result
