(** Quality flight recorder for placement runs.

    Where {!Obs} collects flat counters and spans, the recorder keeps the
    paper's evaluation currency: one structured snapshot per refinement
    level (HPWL, density overflow, movebound violations, CG and MinCostFlow
    effort, realization wave counts, per-phase wall times, GC deltas), one
    for legalization, plus run provenance and end-of-run totals — the
    trajectory Tables I–VII are made of.

    Like {!Obs}, the global recorder is disabled by default behind one
    atomic flag: every hook reads the flag first, so a fully-instrumented
    pipeline costs nothing until [fbp_place place --record] arms it.

    Records serialize as a versioned run-record JSON ({!to_json} /
    {!of_json} round-trip exactly), render as a self-contained HTML report
    ([Fbp_viz.Report]), and gate CI through {!diff}
    ([fbp_place diff-record]).  The schema is documented in DESIGN.md
    ("Observability"). *)

(** [Gc.quick_stat] delta across a pipeline phase ([heap_words] is the
    absolute heap size at the snapshot, not a delta). *)
type gc_delta = {
  minor_words : float;
  major_words : float;
  major_collections : int;
  compactions : int;
  heap_words : int;
}

(** One refinement level of the multilevel loop. *)
type level = {
  level : int;
  nx : int;
  ny : int;
  n_windows : int;
  n_pieces : int;
  flow_nodes : int;
  flow_edges : int;
  hpwl : float;
  density_overflow : float;
      (** overfill fraction: sum of bin usage above capacity / total capacity *)
  mb_violations : int;
  cg_iterations : int;
  cg_residual : float;
  cg_converged : bool;
  mcf_cost : float;  (** [nan] when the verdict was infeasible *)
  mcf_rounds : int;
  waves : int;
  shipped_cells : int;
  fallback_cells : int;
  qp_time : float;
  flow_time : float;
  realization_time : float;
  gc : gc_delta;
}

type legalization = {
  leg_hpwl : float;
  leg_density_overflow : float;
  leg_mb_violations : int;
  leg_time : float;
  spilled : int;
  failed : int;
  avg_displacement : float;
  max_displacement : float;
}

(** Final-placement bin utilization, row-major, for the report's heatmap. *)
type density_map = {
  dnx : int;
  dny : int;
  usage : float array;
  capacity : float array;
}

(** Execution environment the run was measured on.  Artifacts produced
    under the hardware clamp on a 1-core container are not comparable to
    real multi-core runs; recording the clamp and domain counts makes the
    distinction machine-checkable. *)
type host = {
  hw_clamp : bool;  (** [Config.hw_clamp] for this run *)
  hardware_domains : int;  (** [Pool.hardware_domains] on this machine *)
  eff_domains : int;  (** configured domain count after resolution *)
  peak_rss_kb : int option;  (** [VmHWM]; [None] off Linux *)
}

type provenance = {
  design : string;
  cells : int;
  nets : int;
  movebounds : int;
  seed : int option;
  tool : string;
  config : (string * string) list;  (** free-form key/value, emission order *)
  host : host option;
}

type totals = {
  hpwl : float;
  global_time : float;
  legalize_time : float;
  total_time : float;
  legal : bool;
  violations : int;
}

type t = {
  version : int;
  provenance : provenance;
  levels : level list;  (** chronological *)
  legalization : legalization option;
  density : density_map option;
  totals : totals option;
  metrics : Obs.Json.t option;  (** the {!Obs.metrics_json} object *)
  profile : Profiler.summary option;  (** domain-level runtime profile *)
}

val schema_version : int

(** {2 The process-global recorder} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** Drop everything recorded and restart the GC boundary clock.  Does not
    change the enabled flag. *)
val reset : unit -> unit

val set_provenance : provenance -> unit

(** Attach the execution environment to the current provenance (keeps the
    rest of the provenance intact — callers set it late, after the pool
    has resolved its domain count). *)
val set_host : host -> unit

(** [Gc.quick_stat] delta since the previous boundary (or since
    {!reset}/{!enable} for the first); advances the boundary mark.  Returns
    zeros when disabled. *)
val gc_boundary : unit -> gc_delta

val record_level : level -> unit
val record_legalization : legalization -> unit
val set_density : density_map -> unit
val set_totals : totals -> unit
val set_metrics : Obs.Json.t -> unit

(** Attach the run's {!Profiler.summary} (serialized into the record's
    [profile] section). *)
val set_profile : Profiler.summary -> unit

(** Snapshot of everything recorded so far. *)
val current : unit -> t

(** {2 Serialization} *)

val to_json : t -> string

(** Parses and decodes a run-record document; rejects unknown schema names
    and versions newer than {!schema_version}. *)
val of_json : string -> (t, string) result

val write_file : string -> t -> unit

(** [write_file path (current ())]. *)
val write_current : string -> unit

val read_file : string -> (t, string) result

(** Field-by-field equality (floats exact — {!to_json} round-trips them). *)
val equal : t -> t -> bool

(** {2 Run-diff regression gate} *)

type regression = {
  metric : string;
  base_value : float;
  cand_value : float;
  limit : string;  (** human-readable threshold that was exceeded *)
}

type comparison = {
  regressions : regression list;
  lines : string list;  (** per-metric comparison lines, for printing *)
}

(** Compare candidate against baseline.  Gates: final HPWL ratio above
    [1 + max_hpwl_regress]; total wall time ratio above
    [1 + max_time_regress]; any new movebound violations; a legal baseline
    turning illegal.  With [?max_gc_regress], additionally gates summed
    per-domain GC/STW pause time (ratio plus a 10ms absolute floor) when
    both records carry a [profile] section.  Improvements never regress. *)
val diff :
  ?max_gc_regress:float ->
  max_hpwl_regress:float -> max_time_regress:float -> base:t -> cand:t ->
  unit -> comparison
