(* Structured observability: spans, counters, histograms; Chrome trace and
   metrics JSON export.

   The fast path is a single [Atomic.get] per probe, so instrumentation left
   in hot solver code is effectively free until someone passes [--trace] /
   [--metrics].  When enabled, all mutation goes through one mutex: probes
   fire from realization worker domains concurrently, and the recording rate
   (per solve / per wave / per node, never per inner iteration) is far too
   low for the lock to matter. *)

let enabled_flag = Atomic.make false
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

type event = {
  name : string;
  ph : char;  (* 'B' begin | 'E' end *)
  ts : float;  (* microseconds since the trace clock start *)
  tid : int;  (* recording domain *)
  args : (string * string) list;
}

(* Atomic, not a ref under the lock: the pool profiler hook reads the
   trace clock from worker domains, and an atomic read that races [reset]
   merely lands on one side of it — same as [record]. *)
let epoch = Atomic.make (Fbp_util.Timer.now ())
let events : event list ref = ref []
let event_count = ref 0

(* Backstop against unbounded growth if a trace is left enabled across a
   huge run; generously above anything the bench designs produce. *)
let max_events = 4_000_000

let counters : (string, int) Hashtbl.t = Hashtbl.create 64
let histograms : (string, float list ref) Hashtbl.t = Hashtbl.create 64

let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* GC baseline for [sample_gc]: counters report collections/compactions
   since the last [reset], not since process start. *)
let gc_base : Gc.stat option ref = ref None

let reset () =
  with_lock (fun () ->
      events := [];
      event_count := 0;
      Hashtbl.reset counters;
      Hashtbl.reset histograms;
      gc_base := Some (Gc.quick_stat ());
      Atomic.set epoch (Fbp_util.Timer.now ()))

let record name ph args =
  let ts = (Fbp_util.Timer.now () -. Atomic.get epoch) *. 1e6 in
  let tid = (Domain.self () :> int) in
  with_lock (fun () ->
      if !event_count < max_events then begin
        events := { name; ph; ts; tid; args } :: !events;
        incr event_count
      end)

let span ?args name f =
  if not (enabled ()) then f ()
  else begin
    record name 'B' (match args with None -> [] | Some a -> a ());
    Fun.protect ~finally:(fun () -> record name 'E' []) f
  end

(* The trace clock, exposed so the profiler can timestamp pool-occupancy
   samples and translate Runtime_events timestamps onto the same axis. *)
let now_us () = (Fbp_util.Timer.now () -. Atomic.get epoch) *. 1e6

(* Unpaired span halves.  [span] is the discipline (balance by
   construction); these exist for callers whose begin/end sites cannot
   share a scope.  fbp-lint's [obs-discipline] rule flags any use outside
   [lib/obs] so every escape hatch is visibly justified. *)
let span_begin ?args name =
  if enabled () then record name 'B' (match args with None -> [] | Some a -> a ())

let span_end name = if enabled () then record name 'E' []

(* A closed interval injected after the fact (the profiler's GC pauses,
   which are only known once the runtime-events ring is drained).  The
   begin/end pair is appended adjacently under the lock, so the trace
   validator's per-tid LIFO balance holds by construction no matter how
   the interval interleaves in time with live spans. *)
let record_interval ~name ~tid ~ts_us ~dur_us args =
  if enabled () then
    with_lock (fun () ->
        if !event_count + 2 <= max_events then begin
          events :=
            { name; ph = 'E'; ts = ts_us +. dur_us; tid; args = [] }
            :: { name; ph = 'B'; ts = ts_us; tid; args }
            :: !events;
          event_count := !event_count + 2
        end)

let count ?(n = 1) name =
  if enabled () then
    with_lock (fun () ->
        let v = match Hashtbl.find_opt counters name with Some v -> v | None -> 0 in
        Hashtbl.replace counters name (v + n))

let observe name v =
  if enabled () then
    with_lock (fun () ->
        match Hashtbl.find_opt histograms name with
        | Some r -> r := v :: !r
        | None -> Hashtbl.add histograms name (ref [ v ]))

let sample_gc () =
  if enabled () then begin
    let s = Gc.quick_stat () in
    with_lock (fun () ->
        let base =
          match !gc_base with
          | Some b -> b
          | None ->
            gc_base := Some s;
            s
        in
        (* gauges with monotonic sampling: replace, don't accumulate *)
        Hashtbl.replace counters "gc.major_collections"
          (s.Gc.major_collections - base.Gc.major_collections);
        Hashtbl.replace counters "gc.compactions"
          (s.Gc.compactions - base.Gc.compactions);
        let r =
          match Hashtbl.find_opt histograms "gc.heap_words" with
          | Some r -> r
          | None ->
            let r = ref [] in
            Hashtbl.add histograms "gc.heap_words" r;
            r
        in
        r := float_of_int s.Gc.heap_words :: !r)
  end

let counter_value name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters name with Some v -> v | None -> 0)

let histogram_values name =
  with_lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some r -> Array.of_list (List.rev !r)
      | None -> [||])

let n_events () = with_lock (fun () -> !event_count)

(* ------------------------------------------------------------ emission *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let trace_json () =
  let evs = with_lock (fun () -> List.rev !events) in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n{\"name\":\"%s\",\"cat\":\"fbp\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
           (escape e.name) e.ph e.ts e.tid);
      if e.args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
          e.args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let summary_json values =
  let a = Array.of_list (List.rev values) in
  let n = Array.length a in
  if n = 0 then "{\"count\":0}"
  else begin
    let lo, hi = Fbp_util.Stats.min_max a in
    Printf.sprintf
      "{\"count\":%d,\"sum\":%s,\"mean\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
      n
      (float_str (Fbp_util.Stats.sum a))
      (float_str (Fbp_util.Stats.mean a))
      (float_str lo) (float_str hi)
      (float_str (Fbp_util.Stats.percentile a 0.5))
      (float_str (Fbp_util.Stats.percentile a 0.9))
      (float_str (Fbp_util.Stats.percentile a 0.99))
  end

let metrics_json () =
  let cs, hs =
    with_lock (fun () ->
        ( Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters [],
          Hashtbl.fold (fun k r acc -> (k, !r) :: acc) histograms [] ))
  in
  let cs = List.sort (fun (a, _) (b, _) -> String.compare a b) cs in
  let hs = List.sort (fun (a, _) (b, _) -> String.compare a b) hs in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n  \"%s\":%d" (escape k) v))
    cs;
  Buffer.add_string b "\n},\n\"histograms\":{";
  List.iteri
    (fun i (k, vs) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n  \"%s\":%s" (escape k) (summary_json vs)))
    hs;
  Buffer.add_string b "\n}\n}\n";
  Buffer.contents b

let write_string path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc s)

let write_trace path = write_string path (trace_json ())
let write_metrics path = write_string path (metrics_json ())

(* ------------------------------------------------------------- parsing *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let m = String.length lit in
      if !pos + m <= n && String.sub s !pos m = lit then begin
        pos := !pos + m;
        v
      end
      else fail ("bad literal, expected " ^ lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex) with Failure _ -> fail "bad \\u escape"
             in
             (* ASCII round-trips (all this module emits); anything larger
                degrades to '?' — fine for validation purposes *)
             if code < 0x80 then Buffer.add_char b (Char.chr code)
             else Buffer.add_char b '?'
           | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      if peek () = Some '-' then advance ();
      while
        !pos < n
        && (match s.[!pos] with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false)
      do
        advance ()
      done;
      let str = String.sub s start (!pos - start) in
      match float_of_string_opt str with
      | Some f -> f
      | None -> fail ("bad number " ^ str)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> Num (parse_number ())
      | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
    with Bad msg -> Error msg

  let member key = function
    | Obj kvs ->
      List.find_map (fun (k, v) -> if String.equal k key then Some v else None) kvs
    | _ -> None

  let to_string v =
    let b = Buffer.create 256 in
    let add_str s =
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    in
    let rec go = function
      | Null -> Buffer.add_string b "null"
      | Bool x -> Buffer.add_string b (string_of_bool x)
      | Num f ->
        (* %.17g round-trips any finite float through [parse] *)
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.0f" f)
        else Buffer.add_string b (Printf.sprintf "%.17g" f)
      | Str s -> add_str s
      | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          xs;
        Buffer.add_char b ']'
      | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            add_str k;
            Buffer.add_char b ':';
            go x)
          kvs;
        Buffer.add_char b '}'
    in
    go v;
    Buffer.contents b
end

let validate_trace doc =
  match Json.parse doc with
  | Error msg -> Error ("JSON parse failed: " ^ msg)
  | Ok root ->
    (match Json.member "traceEvents" root with
     | Some (Json.Arr evs) ->
       (* one LIFO stack per tid; B pushes, E must pop a matching name *)
       let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
       let stack tid =
         match Hashtbl.find_opt stacks tid with
         | Some r -> r
         | None ->
           let r = ref [] in
           Hashtbl.add stacks tid r;
           r
       in
       let pairs = ref 0 in
       let err = ref None in
       List.iteri
         (fun i ev ->
           if !err = None then begin
             let str k = match Json.member k ev with Some (Json.Str s) -> Some s | _ -> None in
             let num k = match Json.member k ev with Some (Json.Num f) -> Some f | _ -> None in
             match (str "ph", str "name", num "tid") with
             | Some ph, Some name, Some tidf ->
               let st = stack (int_of_float tidf) in
               (match ph with
                | "B" -> st := name :: !st
                | "E" ->
                  (match !st with
                   | top :: rest when top = name ->
                     st := rest;
                     incr pairs
                   | top :: _ ->
                     err :=
                       Some
                         (Printf.sprintf "event %d: end of \"%s\" but \"%s\" is open" i
                            name top)
                   | [] -> err := Some (Printf.sprintf "event %d: end of \"%s\" with no open span" i name))
                | _ -> ())
             | _ -> err := Some (Printf.sprintf "event %d: missing ph/name/tid" i)
           end)
         evs;
       (match !err with
        | Some e -> Error e
        | None ->
          let unbalanced = ref [] in
          Hashtbl.iter
            (fun tid r -> if !r <> [] then unbalanced := (tid, List.hd !r) :: !unbalanced)
            stacks;
          (match !unbalanced with
           | [] -> Ok !pairs
           | (tid, name) :: _ ->
             Error (Printf.sprintf "tid %d: span \"%s\" never closed" tid name)))
     | _ -> Error "no traceEvents array")

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let validate_trace_file path = validate_trace (read_whole_file path)

let validate_metrics doc =
  match Json.parse doc with
  | Error msg -> Error ("JSON parse failed: " ^ msg)
  | Ok root ->
    let sorted what keys =
      let rec go = function
        | a :: (b :: _ as rest) ->
          if String.compare a b > 0 then
            Error (Printf.sprintf "%s keys not sorted: %S after %S" what b a)
          else go rest
        | _ -> Ok ()
      in
      go keys
    in
    let ( let* ) = Result.bind in
    let obj what =
      match Json.member what root with
      | Some (Json.Obj kvs) -> Ok kvs
      | Some _ -> Error (Printf.sprintf "%S is not an object" what)
      | None -> Error (Printf.sprintf "no %S object" what)
    in
    let* cs = obj "counters" in
    let* hs = obj "histograms" in
    let* () = sorted "counter" (List.map fst cs) in
    let* () = sorted "histogram" (List.map fst hs) in
    let* () =
      List.fold_left
        (fun acc (k, v) ->
          let* () = acc in
          match v with
          | Json.Num f when Float.is_integer f -> Ok ()
          | _ -> Error (Printf.sprintf "counter %S is not an integer" k))
        (Ok ()) cs
    in
    let* () =
      List.fold_left
        (fun acc (k, v) ->
          let* () = acc in
          let num field =
            match Json.member field v with
            | Some (Json.Num f) -> Ok f
            | _ ->
              Error (Printf.sprintf "histogram %S summary lacks %S" k field)
          in
          let* count = num "count" in
          if not (Float.is_integer count && count >= 0.0) then
            Error (Printf.sprintf "histogram %S count is not a natural" k)
          else if Float.equal count 0.0 then Ok ()
          else
            List.fold_left
              (fun acc field ->
                let* () = acc in
                let* _ = num field in
                Ok ())
              (Ok ())
              [ "sum"; "p50"; "p90"; "p99" ])
        (Ok ()) hs
    in
    Ok (List.length cs + List.length hs)

let validate_metrics_file path = validate_metrics (read_whole_file path)
