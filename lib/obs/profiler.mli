(** Domain-level runtime profiler.

    Merges three event sources into one per-domain timeline on the Obs
    trace clock:

    - {b OCaml 5 Runtime_events} — minor/major GC phases and
      stop-the-world rendezvous (leader + handler) per domain, read from
      the process's own event ring through a polling cursor;
    - {b pool occupancy} — [Fbp_util.Pool]'s profile hook: per-worker
      parked / spinning / running transitions, per-chunk execution, lease
      submissions and epoch-bump latency;
    - {b phases} — intervals registered by the placer ({!with_phase}), so
      GC pauses are attributed to qp / flow / realization.

    Exports three ways: completed GC pauses are injected into the Chrome
    trace as per-domain [gc.*] tracks (when [Obs] is enabled), {!summary}
    serializes into the run-record's [profile] section, and {!render}
    prints the per-domain utilization table behind [fbp_place profile].

    The profiler is an observer: placement results are bit-identical with
    it on or off, and a run never fails because profiling could not start
    — when [Runtime_events] is unavailable (or forced off for tests) it
    degrades to pool occupancy and phases only, with
    [summary.s_available = false].

    Overhead: disabled, each pool transition costs one [Atomic.get];
    armed, sampling happens per scheduling transition and per GC event —
    never per element.  The ring buffer size is fixed at process start
    ([OCAMLRUNPARAM=e=N], log2 words per domain); overflow is reported
    honestly in [s_lost], never guessed around. *)

(** Per-domain occupancy over the observation window.  [d_busy_us] +
    [d_spin_us] + [d_park_us] + [d_stw_us] = [d_wall_us] by construction
    for pool workers; the main domain counts everything outside GC as
    busy. *)
type domain_summary = {
  d_tid : int;  (** domain id = runtime-events ring id *)
  d_wid : int;  (** pool worker id; [-1] main/owner, [-2] unknown ring *)
  d_wall_us : float;
  d_busy_us : float;
  d_spin_us : float;
  d_park_us : float;
  d_stw_us : float;  (** merged GC/STW pause time, disjoint from the rest *)
  d_stw_n : int;  (** merged pause count *)
  d_chunks : int;  (** chunks this worker executed *)
}

type phase_summary = {
  ph_name : string;
  ph_wall_us : float;
  ph_gc_us : float;  (** GC pause time (all domains) attributed here *)
  ph_gc_n : int;
}

type pause = { p_tid : int; p_kind : string; p_ts_us : float; p_dur_us : float }

type summary = {
  s_available : bool;  (** Runtime_events delivered events *)
  s_wall_us : float;
  s_events : int;  (** runtime events consumed *)
  s_lost : int;  (** runtime events dropped to ring overflow *)
  s_pool_samples : int;
  s_stw_count : int;  (** stop-the-world rendezvous observed *)
  s_minor_us : float;
  s_major_us : float;
  s_submits : int;  (** lease batch submissions *)
  s_submit_latency_us : float;  (** mean submit → first helper run *)
  s_domains : domain_summary list;  (** sorted by [d_tid] *)
  s_phases : phase_summary list;  (** in first-registration order *)
  s_top_pauses : pause list;  (** longest merged pauses, descending *)
}

val empty_summary : summary

(** Start profiling: subscribes to [Runtime_events] (best effort),
    installs the pool occupancy hook, anchors the observation window.
    Idempotent while running.  [force_unavailable] (or env
    [FBP_PROFILE_FORCE_UNAVAILABLE=1]) skips [Runtime_events] to exercise
    the degraded path. *)
val start : ?force_unavailable:bool -> unit -> unit

val running : unit -> bool

(** Drain the runtime-events ring (main domain only).  Cheap no-op when
    not running; the placer calls this at level boundaries so ring
    overflow stays bounded and trace injection is incremental. *)
val poll : unit -> unit

(** Phase registration (main domain only).  {!with_phase} is the
    discipline; enter/exit are exposed for non-scoped callers. *)
val enter_phase : string -> unit

val exit_phase : string -> unit
val with_phase : string -> (unit -> 'a) -> 'a

(** Summary of everything observed so far without stopping — counters are
    monotone across successive snapshots. *)
val snapshot : unit -> summary

(** Final drain, detach the pool hook, release the cursor and pause event
    collection; returns the run's summary.  {!empty_summary} when not
    running. *)
val stop : unit -> summary

val summary_json : summary -> Obs.Json.t
val summary_of_json : Obs.Json.t -> (summary, string) result

(** Human-readable per-domain utilization / GC table. *)
val render : summary -> string
