(* Tests for the property-based scenario fuzzer: generator determinism,
   scenario/repro JSON round-trips, single-run classification, global-state
   hygiene, the shrinker, fault-matrix termination, and campaign-level
   reproducibility.  Scenario counts are kept small — the seed-pinned CI
   smoke and the 1000-run acceptance campaign cover scale. *)

module Fuzz = Fbp_workloads.Fuzz
module Shrink = Fbp_resilience.Shrink
module Inject = Fbp_resilience.Inject
module Sanitize = Fbp_resilience.Sanitize
module Err = Fbp_resilience.Fbp_error
module Rng = Fbp_util.Rng

let gen_n seed n =
  let rng = Rng.create seed in
  List.init n (fun i -> Fuzz.gen_scenario rng ~seed:(1000 + i))

(* ---------- generation ---------- *)

let test_gen_deterministic () =
  let a = gen_n 7 50 and b = gen_n 7 50 in
  List.iter2
    (fun sa sb ->
      Alcotest.(check string) "same stream, same scenario"
        (Fuzz.scenario_to_json sa) (Fuzz.scenario_to_json sb))
    a b;
  let c = gen_n 8 50 in
  Alcotest.(check bool) "different seed, different stream" true
    (List.exists2
       (fun sa sc ->
         not (String.equal (Fuzz.scenario_to_json sa) (Fuzz.scenario_to_json sc)))
       a c)

let test_gen_covers_the_zoo () =
  let zoo = gen_n 42 300 in
  let some p ctx = Alcotest.(check bool) ctx true (List.exists p zoo) in
  some (fun s -> s.Fuzz.n_macros >= 2) "macro-heavy floorplans";
  some (fun s -> s.Fuzz.utilization > 0.85) "near-full utilization";
  some (fun s -> s.Fuzz.max_levels = 1) "degenerate single-level grids";
  some
    (fun s -> match s.Fuzz.mb_shape with Fuzz.Overlapping -> true | _ -> false)
    "overlapping movebounds";
  some
    (fun s -> match s.Fuzz.mb_shape with Fuzz.Mixed -> true | _ -> false)
    "inclusive+exclusive mixes";
  some (fun s -> s.Fuzz.exclusive) "exclusive movebounds";
  some (fun s -> s.Fuzz.round_trip) "bookshelf round-trips";
  some (fun s -> Option.is_some s.Fuzz.fault) "injected faults";
  some (fun s -> Option.is_none s.Fuzz.fault) "clean scenarios"

let test_with_fault_forces_preconditions () =
  let s = List.hd (gen_n 3 1) in
  let p = Fuzz.with_fault s (Fuzz.Parse, Fuzz.Corrupt) in
  Alcotest.(check bool) "parse fault forces round-trip" true p.Fuzz.round_trip;
  let d = Fuzz.with_fault { s with Fuzz.deadline = None } (Fuzz.Level, Fuzz.Delay) in
  Alcotest.(check bool) "delay fault forces a deadline" true
    (Option.is_some d.Fuzz.deadline)

(* ---------- serialization ---------- *)

let test_scenario_json_round_trip () =
  List.iter
    (fun s ->
      match Fuzz.scenario_of_json (Fuzz.scenario_to_json s) with
      | Error msg -> Alcotest.fail ("round-trip parse failed: " ^ msg)
      | Ok s2 ->
        Alcotest.(check string) "identical after round-trip"
          (Fuzz.scenario_to_json s) (Fuzz.scenario_to_json s2))
    (gen_n 11 40)

let test_scenario_json_rejects_garbage () =
  (match Fuzz.scenario_of_json "{" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated JSON accepted");
  match Fuzz.scenario_of_json {|{"seed": 1}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "incomplete scenario accepted"

let test_repro_round_trip () =
  let s = List.hd (gen_n 5 1) in
  let shrunk = { s with Fuzz.n_cells = 16 } in
  let f =
    {
      Fuzz.original = s;
      shrunk;
      signature = "invariant: \"quoted\"\nsecond line";
      detail = "typed:internal";
      shrink_steps = 3;
      artifacts = [];
    }
  in
  match Fuzz.repro_of_json (Fuzz.repro_to_json f) with
  | Error msg -> Alcotest.fail ("repro parse failed: " ^ msg)
  | Ok s2 ->
    Alcotest.(check string) "replay scenario is the shrunk one"
      (Fuzz.scenario_to_json shrunk) (Fuzz.scenario_to_json s2)

let test_repro_rejects_wrong_schema () =
  match Fuzz.repro_of_json {|{"schema":"other","scenario":{}}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted"

(* ---------- single runs ---------- *)

let small_clean () =
  let s = List.hd (gen_n 21 1) in
  {
    s with
    Fuzz.n_cells = 60;
    mb_shape = Fuzz.No_movebounds;
    n_movebounds = 0;
    utilization = 0.6;
    n_macros = 0;
    max_levels = 2;
    strict = false;
    deadline = None;
    round_trip = false;
    fault = None;
  }

let test_clean_run_passes () =
  let rr = Fuzz.run_scenario (small_clean ()) in
  (match rr.Fuzz.outcome with
  | Fuzz.Passed -> ()
  | o -> Alcotest.fail ("clean scenario must pass: " ^ Fuzz.outcome_label o));
  Alcotest.(check bool) "no fault fired" false rr.Fuzz.fault_fired

let test_run_deterministic () =
  let s = { (small_clean ()) with Fuzz.round_trip = true } in
  let a = Fuzz.run_scenario s and b = Fuzz.run_scenario s in
  Alcotest.(check string) "same outcome"
    (Fuzz.outcome_label a.Fuzz.outcome)
    (Fuzz.outcome_label b.Fuzz.outcome)

let test_run_restores_global_state () =
  let was_sanitize = Sanitize.enabled () in
  ignore (Fuzz.run_scenario (small_clean ()));
  Alcotest.(check bool) "sanitize flag restored" was_sanitize
    (Sanitize.enabled ());
  Alcotest.(check bool) "injection registry disarmed" false (Inject.active ());
  let s =
    {
      (small_clean ()) with
      Fuzz.fault = Some { Fuzz.site = Fuzz.Mcf; kind = Fuzz.Raise; fault_after = 0 };
    }
  in
  ignore (Fuzz.run_scenario s);
  Alcotest.(check bool) "registry disarmed after a fault run" false
    (Inject.active ())

let test_corruption_is_a_caught_control () =
  let s =
    {
      (small_clean ()) with
      Fuzz.fault =
        Some { Fuzz.site = Fuzz.Mcf; kind = Fuzz.Corrupt; fault_after = 0 };
    }
  in
  let rr = Fuzz.run_scenario s in
  Alcotest.(check bool) "fault fired" true rr.Fuzz.fault_fired;
  match rr.Fuzz.outcome with
  | Fuzz.Typed (Err.Sanitizer_violation { site; _ }) ->
    Alcotest.(check string) "caught at the mcf site" "mcf.solve" site
  | o -> Alcotest.fail ("expected a sanitizer catch: " ^ Fuzz.outcome_label o)

let test_fault_matrix_terminates_typed () =
  Alcotest.(check int) "all documented cells present" 13
    (List.length Fuzz.matrix_cells);
  let base = small_clean () in
  List.iter
    (fun cell ->
      let s = Fuzz.with_fault base cell in
      let rr = Fuzz.run_scenario s in
      match rr.Fuzz.outcome with
      | Fuzz.Uncaught msg ->
        Alcotest.fail
          (Printf.sprintf "cell %s escaped untyped: %s"
             (Fuzz.scenario_to_json s) msg)
      | Fuzz.Invariant msg ->
        Alcotest.fail
          (Printf.sprintf "cell %s broke an invariant: %s"
             (Fuzz.scenario_to_json s) msg)
      | Fuzz.Passed | Fuzz.Typed _ -> ())
    Fuzz.matrix_cells

(* ---------- the shrinker ---------- *)

let test_shrink_minimizes () =
  (* failing predicate: n >= 17; candidates halve — the greedy walk must
     stop exactly at the smallest failing value reachable by halving *)
  let o =
    Shrink.minimize
      ~steps:(fun n -> if n > 1 then [ n / 2; n - 1 ] else [])
      ~still_fails:(fun n -> n >= 17)
      100
  in
  Alcotest.(check int) "fully shrunk" 17 o.Shrink.value;
  Alcotest.(check bool) "steps counted" true (o.Shrink.shrink_steps > 0)

let test_shrink_respects_budget () =
  let evals = ref 0 in
  let o =
    Shrink.minimize ~max_attempts:5
      ~steps:(fun n -> [ n - 1 ])
      ~still_fails:(fun _ ->
        incr evals;
        true)
      1000
  in
  Alcotest.(check int) "stopped at the budget" 5 !evals;
  Alcotest.(check int) "partial result returned" 995 o.Shrink.value

let test_shrink_keeps_failure () =
  (* shrinking a real fuzz finding preserves its signature end to end *)
  let s =
    {
      (small_clean ()) with
      Fuzz.n_cells = 120;
      max_levels = 3;
      Fuzz.fault =
        Some { Fuzz.site = Fuzz.Transport; kind = Fuzz.Corrupt; fault_after = 0 };
    }
  in
  let fails s' =
    match (Fuzz.run_scenario s').Fuzz.outcome with
    | Fuzz.Typed (Err.Sanitizer_violation { site; _ }) ->
      String.equal site "transport.solve"
    | _ -> false
  in
  Alcotest.(check bool) "original fails" true (fails s);
  let o =
    Shrink.minimize ~max_attempts:32
      ~steps:(fun s' ->
        if s'.Fuzz.n_cells > 16 then
          [ { s' with Fuzz.n_cells = s'.Fuzz.n_cells / 2 } ]
        else [])
      ~still_fails:fails s
  in
  Alcotest.(check bool) "shrunk and still failing" true
    (o.Shrink.value.Fuzz.n_cells < 120 && fails o.Shrink.value)

(* ---------- campaigns ---------- *)

let test_campaign_reproducible () =
  let a = Fuzz.run ~seed:77 ~count:12 () in
  let b = Fuzz.run ~seed:77 ~count:12 () in
  Alcotest.(check int) "same digest" a.Fuzz.digest b.Fuzz.digest;
  Alcotest.(check string) "byte-identical report" (Fuzz.render_report a)
    (Fuzz.render_report b);
  Alcotest.(check int) "all scenarios ran" 12 a.Fuzz.total_scenarios;
  Alcotest.(check (list string)) "no unshrunk failures" []
    (List.map (fun f -> f.Fuzz.signature) a.Fuzz.failures)

let test_campaign_writes_replayable_artifacts () =
  (* find a corruption control deterministically and check the artifact it
     writes replays to the same signature *)
  let dir = Filename.temp_file "fbp-fuzz-out" "" in
  Sys.remove dir;
  let r = Fuzz.run ~matrix:true ~out_dir:dir ~seed:3 ~count:2 () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      Alcotest.(check bool) "matrix campaign caught controls" true
        (r.Fuzz.n_controls > 0);
      match r.Fuzz.controls with
      | [] -> Alcotest.fail "no control artifacts kept"
      | f :: _ ->
        let repro =
          List.find
            (fun p -> Filename.check_suffix p ".json" && String.length p > 0)
            f.Fuzz.artifacts
        in
        let ic = open_in_bin repro in
        let text = really_input_string ic (in_channel_length ic) in
        close_in ic;
        (match Fuzz.repro_of_json text with
        | Error msg -> Alcotest.fail ("artifact must parse: " ^ msg)
        | Ok s ->
          let rr = Fuzz.run_scenario s in
          Alcotest.(check string) "replay reproduces the control signature"
            f.Fuzz.detail
            (Fuzz.outcome_label rr.Fuzz.outcome)))

let test_campaign_time_cap_truncates () =
  let r = Fuzz.run ~time_cap:0.0 ~seed:9 ~count:50 () in
  Alcotest.(check bool) "marked truncated" true r.Fuzz.truncated;
  Alcotest.(check bool) "stopped early" true (r.Fuzz.total_scenarios < 50)

let suite =
  [
    Alcotest.test_case "generator deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "generator covers the zoo" `Quick test_gen_covers_the_zoo;
    Alcotest.test_case "with_fault forces preconditions" `Quick
      test_with_fault_forces_preconditions;
    Alcotest.test_case "scenario json round-trip" `Quick
      test_scenario_json_round_trip;
    Alcotest.test_case "scenario json rejects garbage" `Quick
      test_scenario_json_rejects_garbage;
    Alcotest.test_case "repro round-trip" `Quick test_repro_round_trip;
    Alcotest.test_case "repro rejects wrong schema" `Quick
      test_repro_rejects_wrong_schema;
    Alcotest.test_case "clean run passes" `Quick test_clean_run_passes;
    Alcotest.test_case "run deterministic" `Quick test_run_deterministic;
    Alcotest.test_case "run restores global state" `Quick
      test_run_restores_global_state;
    Alcotest.test_case "corruption caught as control" `Quick
      test_corruption_is_a_caught_control;
    Alcotest.test_case "fault matrix terminates typed" `Quick
      test_fault_matrix_terminates_typed;
    Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
    Alcotest.test_case "shrink respects budget" `Quick test_shrink_respects_budget;
    Alcotest.test_case "shrink keeps failure" `Quick test_shrink_keeps_failure;
    Alcotest.test_case "campaign reproducible" `Quick test_campaign_reproducible;
    Alcotest.test_case "campaign artifacts replay" `Quick
      test_campaign_writes_replayable_artifacts;
    Alcotest.test_case "campaign time cap" `Quick test_campaign_time_cap_truncates;
  ]
