(* Tests for the resilience layer: the fault-injection harness itself, the
   placer's degradation ladder (margin drop, movebound relaxation, bisection
   fallback, checkpoint returns), CG safeguarded restarts, deadline stops,
   parser hardening, Mcf eps-degenerate supplies, and the no-leaked-domains
   guarantee of Parallel.  Every test disarms the injection registry in a
   [finally] so a failure cannot poison later suites. *)

open Fbp_netlist
open Fbp_core
module Inject = Fbp_resilience.Inject
module Err = Fbp_resilience.Fbp_error

let with_inject f = Fun.protect ~finally:Inject.reset f

let small_instance ?(n_cells = 400) ?(seed = 3) () =
  let d = Generator.quick ~seed ~name:"t" n_cells in
  Fbp_movebound.Instance.unconstrained d

let place ?config ?fallback inst = Placer.place ?config ?fallback inst

let fail_err ctx e = Alcotest.fail (ctx ^ ": " ^ Err.to_string e)

let placement_finite (p : Placement.t) =
  Array.for_all Float.is_finite p.Placement.x
  && Array.for_all Float.is_finite p.Placement.y

(* ---------- the harness itself ---------- *)

let test_inject_schedule () =
  with_inject (fun () ->
      Inject.arm ~after:2 ~times:1 Inject.Parse Inject.Corrupt;
      Alcotest.(check bool) "hit 1 skipped" true (Inject.fire Inject.Parse = None);
      Alcotest.(check bool) "hit 2 skipped" true (Inject.fire Inject.Parse = None);
      Alcotest.(check bool) "hit 3 fires" true
        (Inject.fire Inject.Parse = Some Inject.Corrupt);
      Alcotest.(check bool) "budget spent" true (Inject.fire Inject.Parse = None);
      Alcotest.(check int) "hits counted" 4 (Inject.hits Inject.Parse);
      Inject.disarm Inject.Parse;
      Alcotest.(check bool) "disarmed" false (Inject.active ()))

let test_inject_prob_deterministic () =
  with_inject (fun () ->
      let run () =
        Inject.arm ~seed:42 ~prob:0.5 Inject.Mcf (Inject.Infeasible 1.0);
        let fired = ref [] in
        for _ = 1 to 32 do
          fired := (Inject.fire Inject.Mcf <> None) :: !fired
        done;
        !fired
      in
      let a = run () and b = run () in
      Alcotest.(check (list bool)) "seeded stream replays" a b;
      Alcotest.(check bool) "some fire" true (List.mem true a);
      Alcotest.(check bool) "some skip" true (List.mem false a))

(* ---------- MCF infeasibility ---------- *)

let test_mcf_injected_strict () =
  with_inject (fun () ->
      Inject.arm Inject.Mcf (Inject.Infeasible 7.5);
      match place ~config:{ Config.default with strict = true } (small_instance ()) with
      | Error (Err.Infeasible_flow { unrouted; level }) ->
        Alcotest.(check (float 1e-9)) "certificate amount" 7.5 unrouted;
        Alcotest.(check int) "at the first level" 1 level
      | Error e -> fail_err "expected Infeasible_flow" e
      | Ok _ -> Alcotest.fail "strict mode must surface injected infeasibility")

let test_mcf_injected_fallback () =
  with_inject (fun () ->
      Inject.arm Inject.Mcf (Inject.Infeasible 3.0);
      let inst = small_instance () in
      let n = Netlist.n_cells inst.Fbp_movebound.Instance.design.Design.netlist in
      let sentinel = Placement.create n in
      Array.fill sentinel.Placement.x 0 n 1.5;
      Array.fill sentinel.Placement.y 0 n 2.5;
      match place ~fallback:(fun () -> Ok sentinel) inst with
      | Error e -> fail_err "graceful mode must not fail" e
      | Ok rep ->
        Alcotest.(check bool) "fallback recorded" true
          (List.exists
             (function Placer.Bisection_fallback _ -> true | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check int) "no level completed" 0 (List.length rep.Placer.levels);
        (* the returned placement is the fallback's *)
        Alcotest.(check (float 0.0)) "fallback x" 1.5 rep.Placer.placement.Placement.x.(0);
        Alcotest.(check (float 0.0)) "fallback y" 2.5 rep.Placer.placement.Placement.y.(0))

let test_mcf_injected_no_fallback_checkpoints () =
  with_inject (fun () ->
      (* first level fails and there is no fallback: the QP-only checkpoint
         still comes back as a usable (finite) placement *)
      Inject.arm Inject.Mcf (Inject.Infeasible 3.0);
      match place (small_instance ()) with
      | Error e -> fail_err "graceful mode must not fail" e
      | Ok rep ->
        Alcotest.(check bool) "aborted recorded" true
          (List.exists
             (function
               | Placer.Level_aborted { reason = Err.Infeasible_flow _; _ } -> true
               | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check bool) "checkpoint finite" true
          (placement_finite rep.Placer.placement))

let test_mcf_relaxation_recovers () =
  with_inject (fun () ->
      (* two injected infeasibilities burn the margin drop and the plain
         rebuild; the movebound-relaxed solve is real and succeeds *)
      Inject.arm ~times:2 Inject.Mcf (Inject.Infeasible 0.25);
      match place (small_instance ()) with
      | Error e -> fail_err "relaxation should recover" e
      | Ok rep ->
        let has p = List.exists p rep.Placer.degradations in
        Alcotest.(check bool) "margin dropped" true
          (has (function Placer.Margin_dropped _ -> true | _ -> false));
        Alcotest.(check bool) "movebounds relaxed" true
          (has (function
             | Placer.Movebounds_relaxed { unrouted; _ } -> unrouted > 0.0
             | _ -> false));
        Alcotest.(check int) "all levels still completed"
          rep.Placer.levels_planned (List.length rep.Placer.levels))

(* ---------- CG divergence ---------- *)

let test_cg_stagnation_restart_level0 () =
  with_inject (fun () ->
      (* level 0's x/y solves stagnate; the restart with the stronger center
         anchor (fault budget exhausted) is real and converges *)
      Inject.arm ~times:2 Inject.Cg Inject.Stagnate;
      match place (small_instance ()) with
      | Error e -> fail_err "restart should recover" e
      | Ok rep ->
        Alcotest.(check bool) "level-0 restart recorded" true
          (List.exists
             (function
               | Placer.Cg_restarted { level = 0; stats } -> not stats.Err.converged
               | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check int) "all levels completed"
          rep.Placer.levels_planned (List.length rep.Placer.levels))

let test_cg_stagnation_restart () =
  with_inject (fun () ->
      (* arm from the level-1 report callback so the fault lands exactly on
         level 2's first x/y pair, whatever realization's own CG usage is;
         the safeguarded restart from the checkpoint is real and converges *)
      let arm_on_level (l : Placer.level_report) =
        if l.Placer.level = 1 then Inject.arm ~times:2 Inject.Cg Inject.Stagnate
      in
      match Placer.place ~on_level:arm_on_level (small_instance ()) with
      | Error e -> fail_err "restart should recover" e
      | Ok rep ->
        Alcotest.(check bool) "restart recorded" true
          (List.exists
             (function
               | Placer.Cg_restarted { level; stats } ->
                 level = 2 && not stats.Err.converged
               | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check int) "all levels completed"
          rep.Placer.levels_planned (List.length rep.Placer.levels);
        List.iter
          (fun (l : Placer.level_report) ->
            Alcotest.(check bool) "level converged after restart" true
              l.Placer.cg_converged)
          rep.Placer.levels)

let test_cg_divergence_strict () =
  with_inject (fun () ->
      Inject.arm Inject.Cg Inject.Stagnate;
      match place ~config:{ Config.default with strict = true } (small_instance ()) with
      | Error (Err.Cg_diverged stats) ->
        Alcotest.(check bool) "stats say diverged" false stats.Err.converged
      | Error e -> fail_err "expected Cg_diverged" e
      | Ok _ -> Alcotest.fail "strict mode must surface CG divergence")

let test_cg_stagnation_graceful_survives () =
  with_inject (fun () ->
      (* even permanent stagnation must still yield a finite placement and
         honest per-level convergence flags *)
      Inject.arm Inject.Cg Inject.Stagnate;
      match place (small_instance ()) with
      | Error e -> fail_err "graceful mode must not fail" e
      | Ok rep ->
        Alcotest.(check bool) "placement finite" true
          (placement_finite rep.Placer.placement);
        List.iter
          (fun (l : Placer.level_report) ->
            if l.Placer.level > 1 then
              Alcotest.(check bool) "non-convergence surfaced" false
                l.Placer.cg_converged)
          rep.Placer.levels)

(* ---------- parser ---------- *)

let with_tmp_design contents f =
  let path = Filename.temp_file "fbp_resilience" ".book" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let expect_parse_error ctx contents =
  with_tmp_design contents (fun path ->
      match Bookshelf.read_file_result path with
      | Error (Err.Parse_error { line; _ }) ->
        Alcotest.(check bool) (ctx ^ ": positioned") true (line >= 1)
      | Error e -> fail_err (ctx ^ ": expected Parse_error") e
      | Ok _ -> Alcotest.fail (ctx ^ ": malformed input accepted"))

let preamble = "chip 0 0 10 10\nrowheight 1\ndensity 1\n"

let test_parser_rejects_malformed () =
  expect_parse_error "NaN dimension"
    (preamble ^ "cells 1\ncell a nan 1 0 0 movable -\nnets 0\nblockages 0\n");
  expect_parse_error "negative dimension"
    (preamble ^ "cells 1\ncell a -2 1 0 0 movable -\nnets 0\nblockages 0\n");
  expect_parse_error "non-finite coordinate"
    (preamble ^ "cells 1\ncell a 1 1 inf 0 movable -\nnets 0\nblockages 0\n");
  expect_parse_error "truncated cells" (preamble ^ "cells 5\ncell a 1 1 0 0 movable -\n");
  expect_parse_error "net count mismatch"
    (preamble ^ "cells 1\ncell a 1 1 0 0 movable -\nnets 2\nnet 1 0\nblockages 0\n");
  expect_parse_error "pin index out of range"
    (preamble
   ^ "cells 1\ncell a 1 1 0 0 movable -\nnets 1\nnet 1 1\npin 7 0 0\nblockages 0\n");
  expect_parse_error "truncated net pins"
    (preamble ^ "cells 1\ncell a 1 1 0 0 movable -\nnets 1\nnet 1 3\npin 0 0 0\n");
  expect_parse_error "bad mobility"
    (preamble ^ "cells 1\ncell a 1 1 0 0 sideways -\nnets 0\nblockages 0\n");
  expect_parse_error "empty chip" "chip 3 3 3 3\ncells 0\nnets 0\nblockages 0\n"

let test_parser_injected_corruption () =
  with_inject (fun () ->
      let d = Generator.quick ~seed:9 ~name:"t" 40 in
      with_tmp_design "" (fun path ->
          Bookshelf.write_file path d;
          (match Bookshelf.read_file_result path with
           | Ok d2 ->
             Alcotest.(check int) "round-trips clean" 40
               (Netlist.n_cells d2.Design.netlist)
           | Error e -> fail_err "clean read" e);
          (* the site fires on the 4th physical input line *)
          Inject.arm ~after:3 Inject.Parse Inject.Corrupt;
          match Bookshelf.read_file_result path with
          | Error (Err.Parse_error { file; line; msg }) ->
            Alcotest.(check string) "file recorded" path file;
            Alcotest.(check int) "positioned at line 4" 4 line;
            Alcotest.(check bool) "says corruption" true
              (String.length msg > 0)
          | Error e -> fail_err "expected Parse_error" e
          | Ok _ -> Alcotest.fail "corrupted read must fail"))

(* ---------- deadlines ---------- *)

let deadline_config ~strict =
  { Config.default with deadline = Some 0.5; strict }

let test_deadline_returns_checkpoint () =
  with_inject (fun () ->
      (* level 1 runs clean (3 Level polls: start, post-QP, post-flow); the
         delay injected at level 2's start poll then blows the budget, so
         the run halts with level 1's realization as checkpoint *)
      Inject.arm ~after:3 Inject.Level (Inject.Delay 100.0);
      match place ~config:(deadline_config ~strict:false) (small_instance ()) with
      | Error e -> fail_err "graceful deadline must not fail" e
      | Ok rep ->
        Alcotest.(check int) "exactly one level realized" 1
          (List.length rep.Placer.levels);
        Alcotest.(check bool) "more levels were planned" true
          (rep.Placer.levels_planned > 1);
        Alcotest.(check bool) "deadline stop recorded" true
          (List.exists
             (function
               | Placer.Deadline_stop { level; elapsed; budget } ->
                 level = 2 && elapsed > budget
               | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check bool) "checkpoint finite" true
          (placement_finite rep.Placer.placement))

let test_deadline_strict () =
  with_inject (fun () ->
      Inject.arm ~after:3 Inject.Level (Inject.Delay 100.0);
      match place ~config:(deadline_config ~strict:true) (small_instance ()) with
      | Error (Err.Deadline_exceeded { elapsed; budget; level }) ->
        Alcotest.(check int) "before level 2" 2 level;
        Alcotest.(check bool) "elapsed > budget" true (elapsed > budget)
      | Error e -> fail_err "expected Deadline_exceeded" e
      | Ok _ -> Alcotest.fail "strict mode must surface the deadline")

(* The boundary check alone would let a slow QP or flow solve overshoot the
   budget by a whole level; these hit the two mid-level checks.  Poll order
   per level: start (hit 3k+1), post-QP (3k+2), post-flow (3k+3). *)
let test_deadline_mid_level_post_qp () =
  with_inject (fun () ->
      (* fires at level 2's post-QP poll: level 2 is half-done and must be
         rolled back to level 1's checkpoint *)
      Inject.arm ~after:4 Inject.Level (Inject.Delay 100.0);
      match place ~config:(deadline_config ~strict:false) (small_instance ()) with
      | Error e -> fail_err "graceful deadline must not fail" e
      | Ok rep ->
        Alcotest.(check int) "only level 1 realized" 1 (List.length rep.Placer.levels);
        Alcotest.(check bool) "deadline stop at level 2" true
          (List.exists
             (function
               | Placer.Deadline_stop { level; elapsed; budget } ->
                 level = 2 && elapsed > budget
               | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check bool) "checkpoint finite" true
          (placement_finite rep.Placer.placement))

let test_deadline_mid_level_post_flow () =
  with_inject (fun () ->
      Inject.arm ~after:5 Inject.Level (Inject.Delay 100.0);
      match place ~config:(deadline_config ~strict:true) (small_instance ()) with
      | Error (Err.Deadline_exceeded { elapsed; budget; level }) ->
        Alcotest.(check int) "inside level 2" 2 level;
        Alcotest.(check bool) "elapsed > budget" true (elapsed > budget)
      | Error e -> fail_err "expected Deadline_exceeded" e
      | Ok _ -> Alcotest.fail "strict mode must surface the mid-level deadline")

(* ---------- combined stress: deadline expiry while a fault is live ----------

   The degradation ladder and the deadline clock interact inside one level:
   a fault burns ladder rungs (margin drop, CG restart) and then the budget
   expires mid-level.  The run must still come back with the last-good
   checkpoint (graceful) or the deadline's exit code (strict) — never the
   half-recovered level or an uncaught exception. *)

let test_deadline_during_mcf_recovery_checkpoint () =
  with_inject (fun () ->
      (* level 2's flow solve is injected infeasible: the ladder drops the
         margin and re-solves (real, feasible).  The post-flow poll then
         blows the budget, so the whole half-recovered level must be rolled
         back to level 1's checkpoint. *)
      Inject.arm ~after:1 ~times:1 Inject.Mcf (Inject.Infeasible 2.0);
      Inject.arm ~after:5 Inject.Level (Inject.Delay 100.0);
      match place ~config:(deadline_config ~strict:false) (small_instance ()) with
      | Error e -> fail_err "graceful mode must not fail" e
      | Ok rep ->
        Alcotest.(check int) "only level 1 realized" 1
          (List.length rep.Placer.levels);
        Alcotest.(check bool) "ladder engaged before the deadline" true
          (List.exists
             (function Placer.Margin_dropped { level = 2 } -> true | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check bool) "deadline stop at level 2" true
          (List.exists
             (function
               | Placer.Deadline_stop { level = 2; elapsed; budget } ->
                 elapsed > budget
               | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check bool) "checkpoint finite" true
          (placement_finite rep.Placer.placement))

let test_deadline_during_cg_stagnation_checkpoint () =
  with_inject (fun () ->
      (* permanent CG stagnation (restarts keep failing) plus a delay at
         level 2's start poll: the deadline must still win and return level
         1's checkpoint, with both degradations on the record *)
      Inject.arm Inject.Cg Inject.Stagnate;
      Inject.arm ~after:3 Inject.Level (Inject.Delay 100.0);
      match place ~config:(deadline_config ~strict:false) (small_instance ()) with
      | Error e -> fail_err "graceful mode must not fail" e
      | Ok rep ->
        Alcotest.(check int) "only level 1 realized" 1
          (List.length rep.Placer.levels);
        Alcotest.(check bool) "cg restart recorded" true
          (List.exists
             (function Placer.Cg_restarted _ -> true | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check bool) "deadline stop recorded" true
          (List.exists
             (function Placer.Deadline_stop { level = 2; _ } -> true | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check bool) "checkpoint finite" true
          (placement_finite rep.Placer.placement))

let test_deadline_during_fault_strict_exit_code () =
  with_inject (fun () ->
      (* strict mode, a silent corruption in flight (sanitizer off, so it
         does not trip) and the budget expiring mid-level: the typed error
         must be the deadline, with its documented exit code *)
      Inject.arm ~after:1 ~times:1 Inject.Mcf Inject.Corrupt;
      Inject.arm ~after:5 Inject.Level (Inject.Delay 100.0);
      match place ~config:(deadline_config ~strict:true) (small_instance ()) with
      | Error (Err.Deadline_exceeded { level; elapsed; budget } as e) ->
        Alcotest.(check int) "inside level 2" 2 level;
        Alcotest.(check bool) "elapsed > budget" true (elapsed > budget);
        Alcotest.(check int) "deadline exit code" 4 (Err.exit_code e)
      | Error e -> fail_err "expected Deadline_exceeded" e
      | Ok _ -> Alcotest.fail "strict mode must surface the deadline")

(* ---------- escaped exceptions ---------- *)

let test_domain_exception_checkpointed () =
  with_inject (fun () ->
      Inject.arm ~after:3 Inject.Level (Inject.Raise "boom");
      match place (small_instance ()) with
      | Error e -> fail_err "graceful mode must not fail" e
      | Ok rep ->
        Alcotest.(check int) "level 1's checkpoint returned" 1
          (List.length rep.Placer.levels);
        Alcotest.(check bool) "abort recorded as Internal" true
          (List.exists
             (function
               | Placer.Level_aborted { level = 2; reason = Err.Internal _ } -> true
               | _ -> false)
             rep.Placer.degradations);
        Alcotest.(check bool) "checkpoint finite" true
          (placement_finite rep.Placer.placement))

let test_domain_exception_strict () =
  with_inject (fun () ->
      Inject.arm ~after:3 Inject.Level (Inject.Raise "boom");
      match place ~config:{ Config.default with strict = true } (small_instance ()) with
      | Error (Err.Internal { msg; _ }) ->
        Alcotest.(check string) "message preserved" "boom" msg
      | Error e -> fail_err "expected Internal" e
      | Ok _ -> Alcotest.fail "strict mode must surface the exception")

(* ---------- runner integration ---------- *)

let test_runner_wires_fallback () =
  with_inject (fun () ->
      (* Runner.run_fbp plugs Recursive bisection in as the fallback, so a
         permanently infeasible flow still yields a legal-izable placement
         end to end *)
      Inject.arm Inject.Mcf (Inject.Infeasible 2.0);
      match Fbp_workloads.Runner.run_fbp ~repartition:0 (small_instance ()) with
      | Error e -> fail_err "runner must degrade, not fail" e
      | Ok m ->
        Alcotest.(check bool) "fallback recorded" true
          (List.exists
             (function Placer.Bisection_fallback _ -> true | _ -> false)
             m.Fbp_workloads.Runner.degradations);
        Alcotest.(check bool) "placement finite" true
          (placement_finite m.Fbp_workloads.Runner.placement))

(* ---------- Mcf eps-degenerate supplies ---------- *)

let test_mcf_degenerate_supplies () =
  (* eps in Mcf is 1e-7: excesses below it are noise, above it must route *)
  let g = Fbp_flow.Graph.create 2 in
  (match Fbp_flow.Mcf.solve g ~supply:[| 5e-8; -5e-8 |] with
  | Fbp_flow.Mcf.Feasible _ -> ()
  | Fbp_flow.Mcf.Infeasible _ -> Alcotest.fail "sub-eps supply must be ignored");
  let g = Fbp_flow.Graph.create 2 in
  (match Fbp_flow.Mcf.solve g ~supply:[| 2e-7; -2e-7 |] with
  | Fbp_flow.Mcf.Infeasible { unrouted } ->
    Alcotest.(check (float 1e-9)) "unrouted = stranded supply" 2e-7 unrouted
  | Fbp_flow.Mcf.Feasible _ -> Alcotest.fail "no arcs: above-eps supply is stranded");
  let g = Fbp_flow.Graph.create 2 in
  ignore (Fbp_flow.Graph.add_edge g ~u:0 ~v:1 ~cap:1.0 ~cost:1.0);
  match Fbp_flow.Mcf.solve g ~supply:[| 2e-7; -2e-7 |] with
  | Fbp_flow.Mcf.Feasible _ ->
    Alcotest.(check (float 1e-12)) "near-eps flow shipped" 2e-7
      (Fbp_flow.Graph.flow g 0)
  | Fbp_flow.Mcf.Infeasible _ -> Alcotest.fail "near-eps supply must route over the arc"

(* ---------- parallel: no leaked domains ---------- *)

let test_parallel_joins_on_exception () =
  let arr = Array.init 100 Fun.id in
  let raising i = if i = 50 then failwith "kaboom" else i * 2 in
  (try
     ignore (Fbp_util.Parallel.map_array ~domains:4 raising arr);
     Alcotest.fail "exception swallowed"
   with Failure msg -> Alcotest.(check string) "original exception" "kaboom" msg);
  (* all domains were joined: the pool is immediately reusable and correct *)
  let ok = Fbp_util.Parallel.map_array ~domains:4 (fun i -> i * 2) arr in
  Alcotest.(check int) "subsequent run correct" 198 ok.(99);
  try
    Fbp_util.Parallel.iter_array ~domains:4
      (fun i -> if i = 7 then raise Exit else ())
      arr;
    Alcotest.fail "iter exception swallowed"
  with Exit -> ()

let suite =
  [
    Alcotest.test_case "inject schedule" `Quick test_inject_schedule;
    Alcotest.test_case "inject prob deterministic" `Quick test_inject_prob_deterministic;
    Alcotest.test_case "mcf injected strict" `Quick test_mcf_injected_strict;
    Alcotest.test_case "mcf injected fallback" `Quick test_mcf_injected_fallback;
    Alcotest.test_case "mcf injected checkpoint" `Quick
      test_mcf_injected_no_fallback_checkpoints;
    Alcotest.test_case "mcf relaxation recovers" `Quick test_mcf_relaxation_recovers;
    Alcotest.test_case "cg restart at level 0" `Quick test_cg_stagnation_restart_level0;
    Alcotest.test_case "cg stagnation restart" `Quick test_cg_stagnation_restart;
    Alcotest.test_case "cg divergence strict" `Quick test_cg_divergence_strict;
    Alcotest.test_case "cg stagnation graceful" `Quick test_cg_stagnation_graceful_survives;
    Alcotest.test_case "parser rejects malformed" `Quick test_parser_rejects_malformed;
    Alcotest.test_case "parser injected corruption" `Quick test_parser_injected_corruption;
    Alcotest.test_case "deadline returns checkpoint" `Quick test_deadline_returns_checkpoint;
    Alcotest.test_case "deadline strict" `Quick test_deadline_strict;
    Alcotest.test_case "deadline mid-level post-qp" `Quick test_deadline_mid_level_post_qp;
    Alcotest.test_case "deadline mid-level post-flow" `Quick
      test_deadline_mid_level_post_flow;
    Alcotest.test_case "deadline during mcf recovery" `Quick
      test_deadline_during_mcf_recovery_checkpoint;
    Alcotest.test_case "deadline during cg stagnation" `Quick
      test_deadline_during_cg_stagnation_checkpoint;
    Alcotest.test_case "deadline during fault strict exit code" `Quick
      test_deadline_during_fault_strict_exit_code;
    Alcotest.test_case "domain exception checkpointed" `Quick
      test_domain_exception_checkpointed;
    Alcotest.test_case "domain exception strict" `Quick test_domain_exception_strict;
    Alcotest.test_case "runner wires fallback" `Quick test_runner_wires_fallback;
    Alcotest.test_case "mcf degenerate supplies" `Quick test_mcf_degenerate_supplies;
    Alcotest.test_case "parallel joins on exception" `Quick
      test_parallel_joins_on_exception;
  ]
