(* Tests for fbp_workloads: design instantiation, movebound scenario
   generation (feasibility + Table III statistics), contest scoring, and
   the runner plumbing. *)

open Fbp_workloads

let check_float = Alcotest.(check (float 1e-6))

let test_specs_complete () =
  Alcotest.(check int) "all 21 Table II rows" 21 (Array.length Designs.table2_specs);
  Alcotest.(check int) "8 Table III scenarios" 8 (List.length Mb_gen.table3_scenarios);
  Alcotest.(check int) "8 ISPD specs" 8 (Array.length Ispd.specs);
  Alcotest.(check bool) "find_spec works" true (Designs.find_spec "erhard" <> None);
  Alcotest.(check bool) "unknown spec" true (Designs.find_spec "nonesuch" = None)

let test_designs_deterministic () =
  let spec = Option.get (Designs.find_spec "dagmar") in
  let d1 = Designs.instantiate ~scale:1.0 spec in
  let d2 = Designs.instantiate ~scale:1.0 spec in
  Alcotest.(check (array (float 0.0))) "same golden placement"
    d1.Fbp_netlist.Design.initial.Fbp_netlist.Placement.x
    d2.Fbp_netlist.Design.initial.Fbp_netlist.Placement.x

let test_designs_scale_monotone () =
  let spec = Option.get (Designs.find_spec "erik") in
  let small = Designs.n_cells_of_spec ~scale:1.0 spec in
  let big = Designs.n_cells_of_spec ~scale:3.0 spec in
  Alcotest.(check bool) "bigger scale, more cells" true (big > small);
  Alcotest.(check bool) "floor respected" true
    (Designs.n_cells_of_spec ~scale:0.2 (Option.get (Designs.find_spec "dagmar")) >= 1500)

let test_scenarios_feasible () =
  (* every Table III scenario must be movebound-feasible (Theorem 2) *)
  List.iter
    (fun (sc : Mb_gen.scenario) ->
      let spec = Option.get (Designs.find_spec sc.Mb_gen.design) in
      let d = Designs.instantiate ~scale:1.0 spec in
      let inst = Mb_gen.attach sc d in
      let density = Fbp_core.Density.create d in
      match
        Fbp_movebound.Feasibility.check_instance
          ~capacity_of:
            (Some
               (fun (r : Fbp_movebound.Regions.region) ->
                 Fbp_core.Density.capacity_set density r.Fbp_movebound.Regions.area))
          inst
      with
      | Error e -> Alcotest.failf "%s: %s" sc.Mb_gen.design e
      | Ok (Fbp_movebound.Feasibility.Feasible, _) -> ()
      | Ok (Fbp_movebound.Feasibility.Infeasible _, _) ->
        Alcotest.failf "%s scenario infeasible" sc.Mb_gen.design)
    Mb_gen.table3_scenarios

let test_scenario_stats_shape () =
  let sc = List.nth Mb_gen.table3_scenarios 2 (* erhard: 80% coverage *) in
  let spec = Option.get (Designs.find_spec sc.Mb_gen.design) in
  let d = Designs.instantiate ~scale:1.0 spec in
  let inst = Mb_gen.attach sc d in
  let st = Mb_gen.stats_of sc inst in
  Alcotest.(check int) "movebound count" 16 st.Mb_gen.n_movebounds;
  Alcotest.(check bool) "coverage near request" true
    (Float.abs (st.Mb_gen.pct_bound -. 0.80) < 0.15);
  Alcotest.(check bool) "density at most the cap + slack" true
    (st.Mb_gen.max_mb_density <= sc.Mb_gen.max_density +. 0.05);
  Alcotest.(check bool) "flatten flag" true st.Mb_gen.flattened;
  Alcotest.(check bool) "not overlapping" false st.Mb_gen.overlapping

let test_overlapping_scenarios_overlap () =
  let sc =
    List.find (fun (s : Mb_gen.scenario) -> Mb_gen.is_overlapping s.Mb_gen.shape)
      Mb_gen.table3_scenarios
  in
  let spec = Option.get (Designs.find_spec sc.Mb_gen.design) in
  let d = Designs.instantiate ~scale:1.0 spec in
  let inst = Mb_gen.attach sc d in
  let mbs = inst.Fbp_movebound.Instance.movebounds in
  let overlaps = ref false in
  Array.iteri
    (fun i (a : Fbp_movebound.Movebound.t) ->
      Array.iteri
        (fun j (b : Fbp_movebound.Movebound.t) ->
          if i < j
             && Fbp_geometry.Rect_set.overlaps a.Fbp_movebound.Movebound.area
                  b.Fbp_movebound.Movebound.area
          then overlaps := true)
        mbs)
    mbs;
  Alcotest.(check bool) "(O) scenarios really overlap" true !overlaps

let test_cpu_factor () =
  check_float "same time, no factor" 0.0 (Ispd.cpu_factor ~reference:10.0 ~time:10.0);
  check_float "2x faster = -4%" (-0.04) (Ispd.cpu_factor ~reference:10.0 ~time:5.0);
  check_float "truncated at -10%" (-0.10) (Ispd.cpu_factor ~reference:1000.0 ~time:1.0);
  check_float "truncated at +10%" 0.10 (Ispd.cpu_factor ~reference:1.0 ~time:1000.0)

let test_density_penalty_zero_when_spread () =
  (* a perfectly even legal-density placement has no penalty *)
  let d = Fbp_netlist.Generator.quick ~seed:51 ~name:"even" 1000 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  let regions =
    Fbp_movebound.Regions.decompose ~chip:d.Fbp_netlist.Design.chip [||]
  in
  let pos = Fbp_netlist.Placement.copy d.Fbp_netlist.Design.initial in
  ignore
    (Fbp_legalize.Legalizer.run inst regions pos
       ~piece_of_cell:(Array.make 1000 (-1)) ~grid:None);
  let pen = Ispd.density_penalty d pos in
  Alcotest.(check bool)
    (Printf.sprintf "penalty %.3f below 0.5" pen)
    true (pen < 0.5)

let test_runner_fbp_metrics () =
  let d = Fbp_netlist.Generator.quick ~seed:53 ~name:"runner" 1000 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  match Runner.run_fbp inst with
  | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
  | Ok m ->
    Alcotest.(check bool) "legal" true m.Runner.legal;
    Alcotest.(check int) "no violations" 0 m.Runner.violations;
    Alcotest.(check bool) "hpwl positive" true (m.Runner.hpwl > 0.0);
    Alcotest.(check bool) "levels recorded" true (m.Runner.levels <> []);
    Alcotest.(check bool) "times recorded" true (m.Runner.total_time > 0.0)

let test_runner_rql_metrics () =
  let d = Fbp_netlist.Generator.quick ~seed:54 ~name:"runner2" 1000 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  match Runner.run_rql inst with
  | Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)
  | Ok m ->
    Alcotest.(check bool) "legal" true m.Runner.legal;
    Alcotest.(check bool) "hpwl positive" true (m.Runner.hpwl > 0.0)

let suite =
  [
    Alcotest.test_case "specs complete" `Quick test_specs_complete;
    Alcotest.test_case "designs deterministic" `Quick test_designs_deterministic;
    Alcotest.test_case "scale monotone + floored" `Quick test_designs_scale_monotone;
    Alcotest.test_case "table-3 scenarios feasible" `Slow test_scenarios_feasible;
    Alcotest.test_case "scenario stats shape" `Quick test_scenario_stats_shape;
    Alcotest.test_case "(O) scenarios overlap" `Quick test_overlapping_scenarios_overlap;
    Alcotest.test_case "cpu factor formula" `Quick test_cpu_factor;
    Alcotest.test_case "density penalty of even placement" `Quick
      test_density_penalty_zero_when_spread;
    Alcotest.test_case "runner fbp metrics" `Slow test_runner_fbp_metrics;
    Alcotest.test_case "runner rql metrics" `Quick test_runner_rql_metrics;
  ]
