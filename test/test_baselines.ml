(* Tests for fbp_baselines: the three comparators produce legal placements
   of sane quality, and the spreading machinery behaves. *)

open Fbp_netlist

let test_spread_reduces_overflow () =
  (* pile everything on one spot; one spreading pass must reduce overflow *)
  let d = Generator.quick ~seed:71 ~name:"spread" 800 in
  let pos = Placement.copy d.Design.initial in
  let c = Fbp_geometry.Rect.center d.Design.chip in
  for i = 0 to Netlist.n_cells d.Design.netlist - 1 do
    Placement.set pos i c
  done;
  let before = Fbp_baselines.Spread.compute_bins d pos ~nx:8 ~ny:8 in
  let ov0 = Fbp_baselines.Spread.max_overflow_ratio before in
  let tx, ty, _ = Fbp_baselines.Spread.targets d pos ~nx:8 ~ny:8 ~theta:1.0 in
  Array.blit tx 0 pos.Placement.x 0 (Array.length tx);
  Array.blit ty 0 pos.Placement.y 0 (Array.length ty);
  let after = Fbp_baselines.Spread.compute_bins d pos ~nx:8 ~ny:8 in
  let ov1 = Fbp_baselines.Spread.max_overflow_ratio after in
  Alcotest.(check bool)
    (Printf.sprintf "overflow %.1f -> %.1f" ov0 ov1)
    true (ov1 < ov0)

let test_rql_places_legally () =
  let d = Generator.quick ~seed:72 ~name:"rql" 1500 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  match Fbp_baselines.Rql.place inst with
  | Error e -> Alcotest.fail e
  | Ok rep ->
    let audit = Fbp_legalize.Check.audit d rep.Fbp_baselines.Rql.placement in
    Alcotest.(check bool) "legal" true audit.Fbp_legalize.Check.legal;
    Alcotest.(check bool) "iterated" true (rep.Fbp_baselines.Rql.iterations >= 1)

let test_kraftwerk_places_legally () =
  let d = Generator.quick ~seed:73 ~name:"kw" 1500 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  match Fbp_baselines.Kraftwerk.place inst with
  | Error e -> Alcotest.fail e
  | Ok rep ->
    let audit = Fbp_legalize.Check.audit d rep.Fbp_baselines.Kraftwerk.placement in
    Alcotest.(check bool) "legal" true audit.Fbp_legalize.Check.legal

let test_rql_beats_random () =
  (* the baseline must be a real placer: much better than random positions *)
  let d = Generator.quick ~seed:74 ~name:"rql2" 1500 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  match Fbp_baselines.Rql.place inst with
  | Error e -> Alcotest.fail e
  | Ok rep ->
    let shuffled = Placement.copy d.Design.initial in
    let rng = Fbp_util.Rng.create 75 in
    let n = Netlist.n_cells d.Design.netlist in
    let perm = Array.init n (fun i -> i) in
    Fbp_util.Rng.shuffle rng perm;
    let px = Array.copy shuffled.Placement.x and py = Array.copy shuffled.Placement.y in
    Array.iteri
      (fun i j ->
        shuffled.Placement.x.(i) <- px.(j);
        shuffled.Placement.y.(i) <- py.(j))
      perm;
    let rand_hpwl = Hpwl.total d.Design.netlist shuffled in
    Alcotest.(check bool) "rql < 0.5 * random" true
      (rep.Fbp_baselines.Rql.hpwl < 0.5 *. rand_hpwl)

let test_recursive_reports_overruns () =
  let d = Generator.quick ~seed:76 ~name:"rec" 1200 in
  let inst = Fbp_movebound.Instance.unconstrained d in
  match Fbp_baselines.Recursive.place inst with
  | Error e -> Alcotest.fail e
  | Ok rep ->
    Alcotest.(check bool) "hpwl positive" true (rep.Fbp_baselines.Recursive.hpwl > 0.0);
    (* overflow events are the whole point of the ablation: the counter
       exists and is non-negative *)
    Alcotest.(check bool) "overflow events >= 0" true
      (rep.Fbp_baselines.Recursive.overflow_events >= 0)

let test_rql_soft_movebounds_can_violate () =
  (* a harsh overlapping scenario: RQL should produce violations while FBP
     stays clean (Table IV's phenomenon, in miniature) *)
  let spec = Option.get (Fbp_workloads.Designs.find_spec "rabe") in
  let d = Fbp_workloads.Designs.instantiate ~scale:1.0 spec in
  let sc =
    { Fbp_workloads.Mb_gen.design = "rabe";
      shape = Fbp_workloads.Mb_gen.Flatten 9;
      coverage = 0.7; max_density = 0.8;
      kind = Fbp_movebound.Movebound.Inclusive }
  in
  let inst = Fbp_workloads.Mb_gen.attach sc d in
  match (Fbp_workloads.Runner.run_rql inst, Fbp_workloads.Runner.run_fbp inst) with
  | Ok rql, Ok fbp ->
    Alcotest.(check bool)
      (Printf.sprintf "rql violations (%d) > fbp violations (%d)"
         rql.Fbp_workloads.Runner.violations fbp.Fbp_workloads.Runner.violations)
      true
      (rql.Fbp_workloads.Runner.violations > fbp.Fbp_workloads.Runner.violations);
    Alcotest.(check bool) "fbp near-clean" true (fbp.Fbp_workloads.Runner.violations <= 5)
  | Error e, _ | _, Error e -> Alcotest.fail (Fbp_resilience.Fbp_error.to_string e)

let suite =
  [
    Alcotest.test_case "spreading reduces overflow" `Quick test_spread_reduces_overflow;
    Alcotest.test_case "rql legal" `Slow test_rql_places_legally;
    Alcotest.test_case "kraftwerk legal" `Slow test_kraftwerk_places_legally;
    Alcotest.test_case "rql beats random" `Slow test_rql_beats_random;
    Alcotest.test_case "recursive baseline runs" `Quick test_recursive_reports_overruns;
    Alcotest.test_case "soft movebounds can violate" `Slow test_rql_soft_movebounds_can_violate;
  ]
